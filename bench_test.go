// Package idemproc's root benchmarks regenerate every table and figure of
// the paper's evaluation (run with `go test -bench=. -benchmem`); each
// benchmark reports the figure's headline aggregates as custom metrics
// and logs the full table (visible with -v). cmd/idembench prints the
// same tables directly.
//
// Pass -workers=N to fan the per-workload build/run units of each figure
// out over N goroutines (0 = GOMAXPROCS); every figure's bytes are
// identical for any width, so the flag only changes wall time. Each
// benchmark builds through a fresh engine so b.N iterations after the
// first measure the warm-cache (simulate-only) cost.
package idemproc

import (
	"context"
	"flag"
	"runtime"
	"testing"

	"idemproc/internal/buildcache"
	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/experiments"
	"idemproc/internal/limit"
	"idemproc/internal/machine"
	"idemproc/internal/workloads"
)

// benchWorkers is the worker-pool width used by every benchmark's
// experiment engine. 0 defers to GOMAXPROCS.
var benchWorkers = flag.Int("workers", 1, "experiment-engine worker pool width for benchmarks (0 = GOMAXPROCS)")

// benchEngine returns a fresh parallel engine for one benchmark, and
// logs its stage timing (compile vs simulate, cache hits) when the
// benchmark finishes under -v.
func benchEngine(b *testing.B) *experiments.Engine {
	b.Helper()
	e := experiments.NewEngine(*benchWorkers)
	b.Cleanup(func() { b.Log("\n" + e.Timing().Format()) })
	return e
}

// BenchmarkMachineStep measures the raw simulator hot loop: dynamic
// instructions per second of fault-free execution on an idempotent
// binary with the experiment cache model, the configuration every figure
// driver funnels through. It reports ns/step and steps/sec (the figure
// of merit the predecoded engine is tuned for), and b.ReportAllocs makes
// any per-step heap allocation visible as allocs/op.
func BenchmarkMachineStep(b *testing.B) {
	cache := buildcache.New()
	w, ok := workloads.ByName("gcc")
	if !ok {
		b.Fatal("workload gcc missing")
	}
	p, _, err := cache.Compile(context.Background(), w, codegen.ModuleOptions{Core: core.DefaultOptions()})
	if err != nil {
		b.Fatal(err)
	}
	cfg := machine.Config{BufferStores: true, TrackPaths: true, Cache: machine.DefaultCache()}
	b.ReportAllocs()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	var steps int64
	for i := 0; i < b.N; i++ {
		m := machine.New(p, cfg)
		if _, err := m.Run(w.Args...); err != nil {
			b.Fatal(err)
		}
		steps += m.Stats.DynInstrs
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	if steps > 0 {
		nsPerStep := float64(b.Elapsed().Nanoseconds()) / float64(steps)
		b.ReportMetric(nsPerStep, "ns/step")
		b.ReportMetric(1e3/nsPerStep, "Minstr/sec")
		// Whole-run heap allocations amortized per step: per-Machine setup
		// is a few dozen allocs over millions of steps, so any per-step
		// allocation regression shows up as a jump of six orders of
		// magnitude. The TestStepZeroAllocs guard pins the same contract.
		b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(steps), "allocs/step")
	}
}

// BenchmarkFig4LimitStudy regenerates Figure 4: dynamic idempotent path
// lengths in the limit, under the three clobber categories.
func BenchmarkFig4LimitStudy(b *testing.B) {
	e := benchEngine(b)
	for i := 0; i < b.N; i++ {
		res, err := e.Fig4(workloads.All())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Geomean[limit.Semantic], "gm-semantic")
		b.ReportMetric(res.Geomean[limit.SemanticCalls], "gm-sem+calls")
		b.ReportMetric(res.Geomean[limit.SemanticArtificial], "gm-artificial")
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkFig8PathCDF regenerates Figure 8: the execution-time-weighted
// distribution of dynamic path lengths of the constructed regions.
func BenchmarkFig8PathCDF(b *testing.B) {
	e := benchEngine(b)
	for i := 0; i < b.N; i++ {
		rows, err := e.Fig8(workloads.All())
		if err != nil {
			b.Fatal(err)
		}
		under10 := 0.0
		for _, r := range rows {
			under10 += r.FracUnder10
		}
		b.ReportMetric(100*under10/float64(len(rows)), "avg-%time-on-≤10-paths")
		if i == 0 {
			b.Log("\n" + experiments.FormatFig8(rows))
		}
	}
}

// BenchmarkFig9PathVsIdeal regenerates Figure 9: constructed vs ideal
// average path lengths.
func BenchmarkFig9PathVsIdeal(b *testing.B) {
	e := benchEngine(b)
	for i := 0; i < b.N; i++ {
		res, err := e.Fig9(workloads.All())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GeomeanConstructed, "gm-constructed")
		b.ReportMetric(res.GeomeanIdeal, "gm-ideal")
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkFig10Overheads regenerates Figure 10: execution-time and
// dynamic-instruction overheads of the idempotent compilation.
func BenchmarkFig10Overheads(b *testing.B) {
	e := benchEngine(b)
	for i := 0; i < b.N; i++ {
		res, err := e.Fig10(workloads.All())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OverallTime, "gm-time-ovh-%")
		b.ReportMetric(res.OverallInstr, "gm-instr-ovh-%")
		b.ReportMetric(res.SuiteTime[workloads.SpecInt], "specint-time-%")
		b.ReportMetric(res.SuiteTime[workloads.SpecFP], "specfp-time-%")
		b.ReportMetric(res.SuiteTime[workloads.Parsec], "parsec-time-%")
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkFig12Recovery regenerates Figure 12: recovery overheads of
// INSTRUCTION-TMR, CHECKPOINT-AND-LOG and IDEMPOTENCE over the DMR
// detection baseline.
func BenchmarkFig12Recovery(b *testing.B) {
	e := benchEngine(b)
	for i := 0; i < b.N; i++ {
		res, err := e.Fig12(workloads.All())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GeoTMR, "gm-tmr-ovh-%")
		b.ReportMetric(res.GeoCL, "gm-cl-ovh-%")
		b.ReportMetric(res.GeoIdem, "gm-idem-ovh-%")
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkTable2Classification regenerates the Table 2 instantiation:
// antidependence classification by storage resource.
func BenchmarkTable2Classification(b *testing.B) {
	e := benchEngine(b)
	for i := 0; i < b.N; i++ {
		rows, err := e.Table2(workloads.All())
		if err != nil {
			b.Fatal(err)
		}
		semantic, cuts := 0, 0
		for _, r := range rows {
			semantic += r.MemoryAntideps
			cuts += r.CutsPlaced
		}
		b.ReportMetric(float64(semantic), "semantic-antideps")
		b.ReportMetric(float64(cuts), "cuts")
		if i == 0 {
			b.Log("\n" + experiments.FormatTable2(rows))
		}
	}
}

// BenchmarkAblationLoopHeuristic measures the §4.3 loop-nesting heuristic
// (dynamic path length with it on vs off).
func BenchmarkAblationLoopHeuristic(b *testing.B) {
	e := benchEngine(b)
	for i := 0; i < b.N; i++ {
		rows, err := e.AblationLoopHeuristic(workloads.All())
		if err != nil {
			b.Fatal(err)
		}
		var on, off []float64
		for _, r := range rows {
			on = append(on, r.On)
			off = append(off, r.Off)
		}
		b.ReportMetric(experiments.Geomean(on), "gm-pathlen-on")
		b.ReportMetric(experiments.Geomean(off), "gm-pathlen-off")
		if i == 0 {
			b.Log("\n" + experiments.FormatAblation("Ablation: §4.3 loop heuristic (avg dynamic path length)", "heuristic on", "off", rows))
		}
	}
}

// BenchmarkAblationLoopUnroll measures the §5 single unroll before
// case-3 cuts.
func BenchmarkAblationLoopUnroll(b *testing.B) {
	e := benchEngine(b)
	for i := 0; i < b.N; i++ {
		rows, err := e.AblationUnroll(workloads.All())
		if err != nil {
			b.Fatal(err)
		}
		var on []float64
		for _, r := range rows {
			on = append(on, r.On)
		}
		b.ReportMetric(experiments.Geomean(on), "gm-pathlen-on")
		if i == 0 {
			b.Log("\n" + experiments.FormatAblation("Ablation: §5 loop unroll (avg dynamic path length)", "unroll on", "off", rows))
		}
	}
}

// BenchmarkAblationRedElim measures the Fig. 5 redundancy elimination
// (cuts required with it on vs off).
func BenchmarkAblationRedElim(b *testing.B) {
	e := benchEngine(b)
	for i := 0; i < b.N; i++ {
		rows, err := e.AblationRedElim(workloads.All())
		if err != nil {
			b.Fatal(err)
		}
		var on, off []float64
		for _, r := range rows {
			on = append(on, r.On)
			off = append(off, r.Off)
		}
		b.ReportMetric(experiments.Geomean(on), "gm-cuts-on")
		b.ReportMetric(experiments.Geomean(off), "gm-cuts-off")
		if i == 0 {
			b.Log("\n" + experiments.FormatAblation("Ablation: Fig. 5 redundancy elimination (cuts placed)", "redelim on", "off", rows))
		}
	}
}

// BenchmarkAblationRegalloc isolates the §4.4 allocation constraint
// (cycles with the constraint vs relaxed, same regions).
func BenchmarkAblationRegalloc(b *testing.B) {
	e := benchEngine(b)
	for i := 0; i < b.N; i++ {
		rows, err := e.AblationRegalloc(workloads.All())
		if err != nil {
			b.Fatal(err)
		}
		var ratios []float64
		for _, r := range rows {
			if r.Off > 0 {
				ratios = append(ratios, r.On/r.Off)
			}
		}
		b.ReportMetric(100*(experiments.Geomean(ratios)-1), "gm-constraint-cost-%")
		if i == 0 {
			b.Log("\n" + experiments.FormatAblation("Ablation: §4.4 allocation constraint (cycles)", "constrained", "relaxed", rows))
		}
	}
}

// BenchmarkRegionSizeSweep measures the §6.2 path-length vs overhead
// trade-off on a representative workload.
func BenchmarkRegionSizeSweep(b *testing.B) {
	e := benchEngine(b)
	w, _ := workloads.ByName("gcc")
	for i := 0; i < b.N; i++ {
		pts, err := e.RegionSizeSweep(w, []int{0, 64, 16, 4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].AvgPathLen, "pathlen-unbounded")
		b.ReportMetric(pts[3].AvgPathLen, "pathlen-cap4")
		b.ReportMetric(pts[3].TimeOvhPct, "timeovh-cap4-%")
		if i == 0 {
			b.Log("\n" + experiments.FormatSweep(w.Name, pts))
		}
	}
}

// BenchmarkAblationPureCalls measures the pure-call inter-procedural
// extension (dynamic path length with it on vs off).
func BenchmarkAblationPureCalls(b *testing.B) {
	e := benchEngine(b)
	for i := 0; i < b.N; i++ {
		rows, err := e.AblationPureCalls(workloads.All())
		if err != nil {
			b.Fatal(err)
		}
		var ratios []float64
		for _, r := range rows {
			if r.Off > 0 {
				ratios = append(ratios, r.On/r.Off)
			}
		}
		b.ReportMetric(experiments.Geomean(ratios), "gm-pathlen-gain")
		if i == 0 {
			b.Log("\n" + experiments.FormatAblation("Ablation: pure-call extension (avg dynamic path length)", "pure-calls on", "off", rows))
		}
	}
}
