// Daemon-level tests for idemfront: flag validation, the serve/route/
// drain lifecycle against live in-process replicas, and the pprof side
// listener.
package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"idemproc/internal/server"
)

const tinySource = `func main(int n) int {
	int s = 0;
	for (int i = 0; i < n; i = i + 1) { s = s + i; }
	return s;
}
`

func startReplica(t *testing.T) string {
	t.Helper()
	s := server.New(server.Config{MaxInFlight: 64})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

// launch runs realMain in a goroutine against a fresh port and waits
// for the addr file.
func launch(t *testing.T, stderr io.Writer, extra ...string) (addr string, sigs chan os.Signal, exit chan int) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	sigs = make(chan os.Signal, 2)
	exit = make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile, "-quiet"}, extra...)
	go func() { exit <- realMain(args, stderr, sigs) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		b, err := os.ReadFile(addrFile)
		if err == nil {
			return strings.TrimSpace(string(b)), sigs, exit
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never wrote its addr file")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitExit(t *testing.T, exit chan int, within time.Duration) int {
	t.Helper()
	select {
	case code := <-exit:
		return code
	case <-time.After(within):
		t.Fatal("daemon did not exit in time")
		return -1
	}
}

func TestBadFlags(t *testing.T) {
	if code := realMain([]string{"-backends", ""}, io.Discard, nil); code != 2 {
		t.Errorf("missing -backends: exit %d, want 2", code)
	}
	if code := realMain([]string{"-backends", "a,a"}, io.Discard, nil); code != 1 {
		t.Errorf("duplicate backends: exit %d, want 1", code)
	}
	if code := realMain([]string{"-backends", "x:1", "stray"}, io.Discard, nil); code != 2 {
		t.Errorf("stray args: exit %d, want 2", code)
	}
}

// TestServeRouteDrain: the daemon boots, routes to live replicas, and
// drains to exit 0 on SIGTERM — the same lifecycle contract idemd has.
func TestServeRouteDrain(t *testing.T) {
	b1, b2 := startReplica(t), startReplica(t)
	addr, sigs, exit := launch(t, io.Discard, "-backends", b1+","+b2)

	resp, err := http.Post("http://"+addr+"/v1/compile", "application/json",
		strings.NewReader(`{"source": `+string(mustQuote(t, tinySource))+`}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile via front: status %d: %s", resp.StatusCode, body)
	}

	mresp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mb), "idemfront_backend_requests_total") {
		t.Error("front /metrics lacks fleet families")
	}

	sigs <- syscall.SIGTERM
	if code := waitExit(t, exit, 10*time.Second); code != 0 {
		t.Fatalf("drain exit code %d, want 0", code)
	}
}

func mustQuote(t *testing.T, s string) []byte {
	t.Helper()
	b := make([]byte, 0, len(s)+16)
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"', '\\':
			b = append(b, '\\', c)
		case '\n':
			b = append(b, '\\', 'n')
		case '\t':
			b = append(b, '\\', 't')
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

// syncBuffer lets the test read the daemon's stderr while it writes.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestPprofSideListener: -pprof-addr exposes /debug/pprof/ on its own
// port, leaving the service listener's surface unchanged.
func TestPprofSideListener(t *testing.T) {
	b1 := startReplica(t)
	var errs syncBuffer
	addr, sigs, exit := launch(t, &errs, "-backends", b1, "-pprof-addr", "127.0.0.1:0")

	re := regexp.MustCompile(`pprof listening on http://([^/]+)/`)
	var pprofAddr string
	deadline := time.Now().Add(5 * time.Second)
	for pprofAddr == "" {
		if m := re.FindStringSubmatch(errs.String()); m != nil {
			pprofAddr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pprof address never logged; stderr: %s", errs.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Get("http://" + pprofAddr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: status %d", resp.StatusCode)
	}
	// The service listener must NOT serve pprof.
	resp2, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode == http.StatusOK {
		t.Error("service listener serves /debug/pprof/; it must stay on the side listener")
	}

	sigs <- syscall.SIGTERM
	waitExit(t, exit, 10*time.Second)
}
