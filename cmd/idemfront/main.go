// Command idemfront is the sharded front tier for an idemd replica
// fleet. It routes /v1/compile and /v1/simulate by the same content key
// the replicas' compile caches use — so each replica's bounded cache
// holds a disjoint slice of the working set — and splits /v1/batch into
// per-replica sub-batches, fanned out concurrently and reassembled in
// index order. Async jobs (/v1/jobs) split the same way: each owner
// runs its slice as a sub-job, and the front merges the per-replica
// streams behind one handle, in strict index order. Responses are
// byte-identical to a single idemd process; a dead or draining replica
// costs throughput (its keys rehash to the deterministic next owner,
// and unfinished sub-jobs resubmit there), never correctness.
//
//	idemfront -backends 127.0.0.1:7777,127.0.0.1:7778,127.0.0.1:7779
//	idemfront -addr 127.0.0.1:0 -addr-file /tmp/idemfront.addr -backends ...
//
// Endpoints: POST /v1/compile, /v1/simulate, /v1/batch; GET /healthz,
// /readyz (503 while draining or with zero healthy backends), /metrics
// (fleet-level: per-backend traffic, ring generation, rebalances,
// failovers). See docs/sharding.md for the ring algorithm and the
// determinism contract, docs/service.md for the request schema.
// SIGINT/SIGTERM drain gracefully; a second signal forces exit 3, the
// same contract idemd honors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"idemproc/internal/server"
	"idemproc/internal/shard"
)

func main() {
	// Buffered for two deliveries: the graceful drain and the hard exit.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	os.Exit(realMain(os.Args[1:], os.Stderr, sigs))
}

// exitHardStop matches idemd: second signal while draining.
const exitHardStop = 3

// realMain is main with injectable args, log stream and signal channel
// so tests can assert on exit codes and drain behavior.
func realMain(args []string, stderr io.Writer, sigs <-chan os.Signal) int {
	fs := flag.NewFlagSet("idemfront", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr             = fs.String("addr", "127.0.0.1:7700", "listen address (host:port; port 0 picks a free port)")
		addrFile         = fs.String("addr-file", "", "write the bound address to this file once listening (for scripts with -addr :0)")
		backends         = fs.String("backends", "", "comma-separated idemd replica addresses (host:port); required")
		healthInterval   = fs.Duration("health-interval", 250*time.Millisecond, "how often each backend's /readyz is probed")
		reqTimeout       = fs.Duration("request-timeout", 60*time.Second, "per-request deadline at the front, spanning all failover attempts (negative disables)")
		retries          = fs.Int("retries", 1, "per-backend retry budget before failing over to the next ring owner")
		hedgeAfter       = fs.Duration("hedge-after", 0, "launch a duplicate attempt on the same backend after this long (0 = off); siblings are verified byte-identical")
		breakerThreshold = fs.Int("breaker-threshold", 4, "consecutive failures that open a backend's circuit breaker (0 disables)")
		maxJobs          = fs.Int("max-jobs", 64, "bound on the front-side async job table (/v1/jobs); excess submissions are shed with 429")
		jobTTL           = fs.Duration("job-ttl", 10*time.Minute, "how long a finished front job stays queryable before it is reaped")
		seed             = fs.Uint64("seed", 1, "seed for the deterministic retry-jitter streams")
		drainTimeout     = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests before abandoning them")
		pprofAddr        = fs.String("pprof-addr", "", "serve net/http/pprof on this side listener (host:port; port 0 picks a free port; empty = off)")
		quiet            = fs.Bool("quiet", false, "suppress lifecycle log lines")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "idemfront: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	var reps []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			reps = append(reps, b)
		}
	}
	if len(reps) == 0 {
		fmt.Fprintln(stderr, "idemfront: -backends is required (comma-separated host:port list)")
		return 2
	}

	logf := func(format string, args ...any) { fmt.Fprintf(stderr, format+"\n", args...) }
	cfgLogf := logf
	if *quiet {
		cfgLogf = func(string, ...any) {}
	}
	front, err := shard.New(shard.Config{
		Backends:         reps,
		HealthInterval:   *healthInterval,
		RequestTimeout:   *reqTimeout,
		Retries:          *retries,
		HedgeAfter:       *hedgeAfter,
		BreakerThreshold: *breakerThreshold,
		MaxJobs:          *maxJobs,
		JobTTL:           *jobTTL,
		Seed:             *seed,
		Logf:             cfgLogf,
	})
	if err != nil {
		fmt.Fprintf(stderr, "idemfront: %v\n", err)
		return 1
	}

	if *pprofAddr != "" {
		pa, closePprof, err := server.ServePprof(*pprofAddr)
		if err != nil {
			fmt.Fprintf(stderr, "idemfront: pprof: %v\n", err)
			front.Close()
			return 1
		}
		defer closePprof()
		logf("idemfront: pprof listening on http://%s/debug/pprof/", pa)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "idemfront: listen: %v\n", err)
		front.Close()
		return 1
	}
	if *addrFile != "" {
		// Write-then-rename so a polling script never reads a partial
		// address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(l.Addr().String()+"\n"), 0o644); err != nil {
			fmt.Fprintf(stderr, "idemfront: addr-file: %v\n", err)
			l.Close()
			front.Close()
			return 1
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			fmt.Fprintf(stderr, "idemfront: addr-file: %v\n", err)
			l.Close()
			front.Close()
			return 1
		}
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- front.Serve(l) }()

	select {
	case err := <-serveErr:
		front.Close()
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "idemfront: serve: %v\n", err)
			return 1
		}
		return 0
	case <-sigs:
	}

	// First signal: graceful drain in the background so a second signal
	// can still be heard — same protocol as idemd, so supervisors and
	// smoke scripts treat the two tiers uniformly.
	logf("idemfront: draining (timeout %s)", *drainTimeout)
	drainDone := make(chan int, 1)
	go func() {
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		code := 0
		if err := front.Shutdown(dctx); err != nil {
			fmt.Fprintf(stderr, "idemfront: drain: %v\n", err)
			code = 1
		}
		if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "idemfront: serve: %v\n", err)
			code = 1
		}
		drainDone <- code
	}()
	select {
	case code := <-drainDone:
		logf("idemfront: stopped")
		return code
	case <-sigs:
		fmt.Fprintln(stderr, "idemfront: second signal during drain, forcing exit")
		front.Close()
		return exitHardStop
	}
}
