// Package fixture exercises every idemlint rule: each function is
// either a violation (name prefixed Bad) or a clean pattern (Good).
package fixture

import (
	"fmt"
	"sort"
	"strings"
)

// BadAppend leaks map order into the returned slice.
func BadAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// GoodAppendSorted restores the order before anyone consumes it.
func GoodAppendSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// GoodAnnotated asserts the caller sorts; the annotation suppresses.
func GoodAnnotated(m map[string]int) []string {
	var out []string
	//idemlint:ordered — caller sorts before emitting
	for k := range m {
		out = append(out, k)
	}
	return out
}

// BadBuilder serializes map order into a string.
func BadBuilder(m map[string]int) string {
	var b strings.Builder
	for k, v := range m {
		b.WriteString(fmt.Sprintf("%s=%d;", k, v))
	}
	return b.String()
}

// BadPrint emits map order straight to stdout.
func BadPrint(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}

// BadConcat builds a string with +=.
func BadConcat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k
	}
	return s
}

// GoodMapWrite writes an unordered sink; no order can leak.
func GoodMapWrite(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

// GoodLocalAppend appends to a loop-local slice consumed per
// iteration; nothing outlives one key.
func GoodLocalAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// GoodSum accumulates commutatively.
func GoodSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
