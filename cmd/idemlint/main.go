// Command idemlint is the repo's determinism linter. The compiler
// pipeline must be a pure function of its input — the whole build cache
// and the replay/verification machinery key on that — so any pass that
// iterates a Go map in unspecified order and lets that order reach
// order-sensitive state (an appended slice, a string being built, an
// emitted instruction stream) is a latent nondeterminism bug, even when
// today's runtime happens to iterate small maps stably.
//
// The linter flags every `range` over a map inside the pass packages
// (internal/{ssa,cfg,dataflow,alias,redelim,multicut,regalloc,codegen,core})
// whose body writes an order-sensitive sink:
//
//   - appends to a slice declared outside the loop,
//   - builds a string (+=, or Write* on a strings.Builder/bytes.Buffer
//     declared outside the loop),
//   - prints (fmt.Print*/Fprint*/Sprint* and friends).
//
// A finding is suppressed when the enclosing function visibly restores
// the order — a sort.* call after the loop mentioning the same slice —
// or when the loop carries a `//idemlint:ordered` annotation (same line
// or the line above), which asserts the consumer sorts or is itself
// order-insensitive. Order-insensitive map writes, set inserts,
// commutative accumulation (counters, min/max over keys compared
// explicitly) and worklist refills are not flagged.
//
// Usage: idemlint [-root dir] [packages...]; exits 1 if any finding
// survives. Wired into `make lint` (and through it `make test`).
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// defaultTargets are the compiler-pass packages whose output feeds the
// deterministic build contract (docs/determinism: same module, same
// options, same instruction stream).
var defaultTargets = []string{
	"internal/ssa", "internal/cfg", "internal/dataflow", "internal/alias",
	"internal/redelim", "internal/multicut", "internal/regalloc",
	"internal/codegen", "internal/core",
}

func main() {
	root := flag.String("root", ".", "repository root (directory containing go.mod)")
	flag.Parse()
	targets := flag.Args()
	if len(targets) == 0 {
		targets = defaultTargets
	}
	findings, err := run(*root, targets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "idemlint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "idemlint: %d order-sensitive map iteration(s); sort before consuming or annotate //idemlint:ordered\n", len(findings))
		os.Exit(1)
	}
}

// run lints each target package directory (relative to root) and
// returns the findings as "file:line:col: message" strings, sorted.
func run(root string, targets []string) ([]string, error) {
	ld := newLoader(root)
	var findings []string
	for _, rel := range targets {
		pkg, err := ld.load("idemproc/" + filepath.ToSlash(rel))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", rel, err)
		}
		findings = append(findings, lintPackage(ld.fset, pkg)...)
	}
	sort.Strings(findings)
	return findings, nil
}

// loader type-checks idemproc packages from source, resolving stdlib
// imports through the source importer so the tool needs nothing beyond
// GOROOT and the repo checkout.
type loader struct {
	root  string
	fset  *token.FileSet
	std   types.Importer
	cache map[string]*checkedPkg
}

type checkedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:  root,
		fset:  fset,
		std:   importer.ForCompiler(fset, "source", nil),
		cache: map[string]*checkedPkg{},
	}
}

// Import implements types.Importer over the loader, so idemproc
// packages can import each other during type-checking.
func (ld *loader) Import(path string) (*types.Package, error) {
	if strings.HasPrefix(path, "idemproc/") {
		cp, err := ld.loadChecked(path)
		if err != nil {
			return nil, err
		}
		return cp.pkg, nil
	}
	return ld.std.Import(path)
}

func (ld *loader) load(path string) (*checkedPkg, error) { return ld.loadChecked(path) }

func (ld *loader) loadChecked(path string) (*checkedPkg, error) {
	if cp, ok := ld.cache[path]; ok {
		return cp, cp.err
	}
	// Seed the cache before checking so an import cycle fails loudly
	// instead of recursing forever.
	cp := &checkedPkg{err: fmt.Errorf("import cycle through %s", path)}
	ld.cache[path] = cp

	dir := filepath.Join(ld.root, strings.TrimPrefix(path, "idemproc/"))
	ents, err := os.ReadDir(dir)
	if err != nil {
		cp.err = err
		return cp, err
	}
	var files []*ast.File
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			cp.err = err
			return cp, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		cp.err = fmt.Errorf("no Go files in %s", dir)
		return cp, cp.err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		cp.err = err
		return cp, err
	}
	cp.pkg, cp.files, cp.info, cp.err = pkg, files, info, nil
	return cp, nil
}

// lintPackage walks every function in the package looking for map
// ranges with order-sensitive bodies.
func lintPackage(fset *token.FileSet, cp *checkedPkg) []string {
	var findings []string
	for _, file := range cp.files {
		annotated := annotationLines(fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			findings = append(findings, lintFunc(fset, cp.info, fn, annotated)...)
			return true
		})
	}
	return findings
}

// annotationLines collects the line numbers carrying an
// `//idemlint:ordered` comment; a range on that line or the next is
// exempt (the author asserts ordering is restored before use).
func annotationLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "idemlint:ordered") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

func lintFunc(fset *token.FileSet, info *types.Info, fn *ast.FuncDecl, annotated map[int]bool) []string {
	var findings []string
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		line := fset.Position(rs.For).Line
		if annotated[line] || annotated[line-1] {
			return true
		}
		for _, sink := range orderSinks(info, rs) {
			if sink.obj != nil && sortedAfter(info, fn.Body, rs, sink.obj) {
				continue
			}
			pos := fset.Position(rs.For)
			findings = append(findings, fmt.Sprintf(
				"%s:%d:%d: range over map %s feeds order-sensitive %s; sort first or annotate //idemlint:ordered",
				pos.Filename, pos.Line, pos.Column, exprString(rs.X), sink.what))
		}
		return true
	})
	return findings
}

// sink is one order-sensitive write found in a range body. obj, when
// non-nil, is the slice/string object written — used to look for a
// later sort of the same object.
type sink struct {
	what string
	obj  types.Object
}

// orderSinks reports the order-sensitive writes in the loop body. At
// most one finding per loop: the first sink read top-down is enough to
// demand a sort, and one diagnostic per site keeps the report usable.
func orderSinks(info *types.Info, rs *ast.RangeStmt) []sink {
	var sinks []sink
	add := func(s sink) {
		if len(sinks) == 0 {
			sinks = append(sinks, s)
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltin(info, call, "append") || i >= len(n.Lhs) {
					continue
				}
				if obj := outerObject(info, n.Lhs[i], rs); obj != nil {
					add(sink{what: fmt.Sprintf("append to %s", obj.Name()), obj: obj})
				}
			}
			// String building: s += ..., s = s + ... on an outer string.
			if len(n.Lhs) == 1 && (n.Tok == token.ADD_ASSIGN || n.Tok == token.ASSIGN) {
				if obj := outerObject(info, n.Lhs[0], rs); obj != nil && isString(obj.Type()) {
					if n.Tok == token.ADD_ASSIGN || selfConcat(info, n.Lhs[0], n.Rhs[0]) {
						add(sink{what: fmt.Sprintf("string build of %s", obj.Name()), obj: obj})
					}
				}
			}
		case *ast.CallExpr:
			if name, ok := printCall(info, n); ok {
				add(sink{what: name})
			} else if obj, name, ok := writerCall(info, n, rs); ok {
				add(sink{what: fmt.Sprintf("%s on %s", name, obj.Name()), obj: obj})
			}
		}
		return true
	})
	return sinks
}

// outerObject resolves an lvalue identifier declared outside the range
// statement (writes to loop-local state can't leak iteration order).
func outerObject(info *types.Info, e ast.Expr, rs *ast.RangeStmt) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.ObjectOf(id)
	if obj == nil || (obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()) {
		return nil
	}
	return obj
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// selfConcat reports whether rhs is a + expression mentioning lhs
// (s = s + x and s = x + s both depend on iteration order).
func selfConcat(info *types.Info, lhs ast.Expr, rhs ast.Expr) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.ObjectOf(id)
	bin, ok := rhs.(*ast.BinaryExpr)
	if !ok || bin.Op != token.ADD || obj == nil {
		return false
	}
	found := false
	ast.Inspect(bin, func(n ast.Node) bool {
		if rid, ok := n.(*ast.Ident); ok && info.ObjectOf(rid) == obj {
			found = true
		}
		return !found
	})
	return found
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.ObjectOf(id).(*types.Builtin)
	return ok
}

// printCall reports fmt print/format calls, which serialize iteration
// order straight into output.
func printCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.ObjectOf(pkgID).(*types.PkgName)
	if !ok || pn.Imported().Path() != "fmt" {
		return "", false
	}
	switch sel.Sel.Name {
	case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf",
		"Sprint", "Sprintln", "Sprintf", "Append", "Appendf", "Appendln":
		return "fmt." + sel.Sel.Name, true
	}
	return "", false
}

// writerCall reports Write* method calls on an outer strings.Builder
// or bytes.Buffer (the two stdlib accumulators the passes use).
func writerCall(info *types.Info, call *ast.CallExpr, rs *ast.RangeStmt) (types.Object, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, "Write") {
		return nil, "", false
	}
	obj := outerObject(info, sel.X, rs)
	if obj == nil {
		return nil, "", false
	}
	t := obj.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil, "", false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return obj, named.Obj().Name() + "." + sel.Sel.Name, true
	}
	return nil, "", false
}

// sortedAfter reports whether a sort.* call mentioning obj appears in
// the function after the range loop — the collect-then-sort idiom,
// which is exactly the fix the linter wants.
func sortedAfter(info *types.Info, body *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := info.ObjectOf(pkgID).(*types.PkgName); !ok || pn.Imported().Path() != "sort" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && info.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	}
	return "expression"
}
