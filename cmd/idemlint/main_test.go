package main

import (
	"strings"
	"testing"
)

// TestFixture runs the linter over the testdata fixture package and
// checks that exactly the Bad* functions are flagged.
func TestFixture(t *testing.T) {
	findings, err := run("testdata/src", []string{"fixture"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	want := map[string]bool{
		"append to out":            false, // BadAppend
		"Builder.WriteString on b": false, // BadBuilder
		"fmt.Println":              false, // BadPrint
		"string build of s":        false, // BadConcat
	}
	for _, f := range findings {
		matched := false
		for w := range want {
			if strings.Contains(f, w) {
				want[w] = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for w, seen := range want {
		if !seen {
			t.Errorf("missing finding for %q", w)
		}
	}
	if len(findings) != len(want) {
		t.Errorf("got %d findings, want %d:\n%s", len(findings), len(want), strings.Join(findings, "\n"))
	}
}

// TestRepoClean is the live gate: the real pass packages must lint
// clean from the repo root (mirrors what `make lint` enforces).
func TestRepoClean(t *testing.T) {
	findings, err := run("../..", defaultTargets)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("pass packages have order-sensitive map iterations:\n%s", strings.Join(findings, "\n"))
	}
}
