// Command idemd serves the idempotence-analysis pipeline over HTTP/JSON:
// compile a workload (or ad-hoc source) to an idempotent-region report,
// simulate it under a recovery scheme with fault injection, or fan a batch
// of such units onto the experiment engine's worker pool. One daemon holds
// one byte-bounded compile cache, so repeated requests for the same
// (workload, options) pair coalesce onto a single build.
//
//	idemd -addr 127.0.0.1:7777
//	idemd -addr 127.0.0.1:0 -addr-file /tmp/idemd.addr   # scripts read the port
//	idemd -cache-bytes 1048576 -max-inflight 32
//	idemd -cache-dir /var/lib/idemd/artifacts            # warm restarts (docs/persistence.md)
//
// Endpoints: POST /v1/compile, /v1/simulate, /v1/batch, /v1/jobs; GET
// /v1/jobs/{id} (long-poll), /v1/jobs/{id}/stream (NDJSON), DELETE
// /v1/jobs/{id}; GET /healthz, /readyz, /metrics. See docs/service.md
// for the request schema, the metrics catalog and capacity-tuning
// guidance, docs/jobs.md for the async job API and its resume
// guarantees (with -cache-dir, a killed daemon resumes interrupted
// jobs on restart without re-executing completed units).
// SIGINT/SIGTERM drain
// gracefully: /readyz flips to 503, in-flight requests finish (up to
// -drain-timeout), then the process exits 0. A second signal during the
// drain force-closes every connection and exits 3 immediately, so a
// stuck drain can always be cut short from the outside.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"idemproc/internal/buildcache"
	"idemproc/internal/server"
)

func main() {
	// Buffered for two deliveries: the graceful drain and the hard exit.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	os.Exit(realMain(os.Args[1:], os.Stderr, sigs))
}

// exitHardStop distinguishes a forced shutdown (second signal while
// draining) from a clean drain (0) and an error (1) for supervisors.
const exitHardStop = 3

// realMain is main with injectable args, log stream and signal channel
// so tests can assert on exit codes and drain behavior.
func realMain(args []string, stderr io.Writer, sigs <-chan os.Signal) int {
	fs := flag.NewFlagSet("idemd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:7777", "listen address (host:port; port 0 picks a free port)")
		addrFile     = fs.String("addr-file", "", "write the bound address to this file once listening (for scripts with -addr :0)")
		workers      = fs.Int("workers", 0, "experiment-engine worker pool width for /v1/batch (0 = GOMAXPROCS)")
		maxInflight  = fs.Int("max-inflight", 64, "concurrent request cap on the /v1/* endpoints; excess requests are shed with 429")
		reqTimeout   = fs.Duration("request-timeout", 30*time.Second, "per-request deadline on /v1/* endpoints (negative disables)")
		cacheBytes   = fs.Int64("cache-bytes", 0, "compile-cache byte bound; LRU entries are evicted past it (0 = unbounded)")
		cacheDir     = fs.String("cache-dir", "", "persistent artifact store directory: compiles are written behind as verified artifacts and reloaded across restarts (empty = memory-only)")
		verifyMode   = fs.String("verify-mode", "off", "translation-validator mode: off, sampled (deterministic sample of fresh compiles + every disk artifact), or full (see docs/verify.md)")
		maxJobs      = fs.Int("max-jobs", 64, "bound on the async job table (/v1/jobs); excess submissions are shed with 429")
		jobTTL       = fs.Duration("job-ttl", 10*time.Minute, "how long a finished job stays queryable before it is reaped")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests before abandoning them")
		pprofAddr    = fs.String("pprof-addr", "", "serve net/http/pprof on this side listener (host:port; port 0 picks a free port; empty = off)")
		quiet        = fs.Bool("quiet", false, "suppress the per-request log line")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "idemd: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	vm, err := buildcache.ParseVerifyMode(*verifyMode)
	if err != nil {
		fmt.Fprintf(stderr, "idemd: %v\n", err)
		return 2
	}

	logf := func(format string, args ...any) { fmt.Fprintf(stderr, format+"\n", args...) }
	if *cacheDir != "" {
		// Fail fast on an unusable artifact directory: a daemon told to
		// persist should not silently run memory-only. Runtime disk errors
		// after this point degrade gracefully (see internal/buildcache).
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "idemd: cache-dir: %v\n", err)
			return 1
		}
	}
	cfg := server.Config{
		Workers:        *workers,
		MaxInFlight:    *maxInflight,
		RequestTimeout: *reqTimeout,
		CacheMaxBytes:  *cacheBytes,
		CacheDir:       *cacheDir,
		VerifyMode:     vm,
		MaxJobs:        *maxJobs,
		JobTTL:         *jobTTL,
		Logf:           logf,
	}
	if *quiet {
		cfg.Logf = func(string, ...any) {}
	}
	srv := server.New(cfg)
	if d := srv.Cache().Disk(); d != nil {
		// Warm-start scan: validate (and prune) what the store offers
		// before taking traffic, so corruption surfaces at boot rather
		// than on first request.
		scan := d.Scan()
		cfg.Logf("idemd: artifact store %s: %d artifacts, %d bytes, %d corrupt pruned",
			d.Dir(), scan.Entries, scan.Bytes, scan.Corrupt)
	}
	// Job recovery runs after the artifact scan on purpose: resumed units
	// then hit warm disk artifacts, so finishing an interrupted job costs
	// zero recompiles on top of zero re-executed units.
	srv.RecoverJobs()

	if *pprofAddr != "" {
		// Profiling stays off the service listener: the side mux carries
		// only pprof, so the main port's surface is unchanged and a
		// firewall can treat the two differently.
		pa, closePprof, err := server.ServePprof(*pprofAddr)
		if err != nil {
			fmt.Fprintf(stderr, "idemd: pprof: %v\n", err)
			return 1
		}
		defer closePprof()
		logf("idemd: pprof listening on http://%s/debug/pprof/", pa)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "idemd: listen: %v\n", err)
		return 1
	}
	if *addrFile != "" {
		// Write-then-rename so a polling script never reads a partial
		// address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(l.Addr().String()+"\n"), 0o644); err != nil {
			fmt.Fprintf(stderr, "idemd: addr-file: %v\n", err)
			l.Close()
			return 1
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			fmt.Fprintf(stderr, "idemd: addr-file: %v\n", err)
			l.Close()
			return 1
		}
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "idemd: serve: %v\n", err)
			return 1
		}
		return 0
	case <-sigs:
	}

	// First signal: graceful drain in the background so a second signal
	// can still be heard. In-flight requests run to completion (up to
	// -drain-timeout); a second signal force-closes everything —
	// connection teardown cancels request contexts, which preempts any
	// running simulations within the poll budget.
	logf("idemd: draining (timeout %s)", *drainTimeout)
	drainDone := make(chan int, 1)
	go func() {
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		code := 0
		if err := srv.Shutdown(dctx); err != nil {
			fmt.Fprintf(stderr, "idemd: drain: %v\n", err)
			code = 1
		}
		if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "idemd: serve: %v\n", err)
			code = 1
		}
		drainDone <- code
	}()
	select {
	case code := <-drainDone:
		logf("idemd: stopped")
		return code
	case <-sigs:
		fmt.Fprintln(stderr, "idemd: second signal during drain, forcing exit")
		srv.Close()
		return exitHardStop
	}
}
