package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// launch runs realMain in a goroutine against a fresh port and waits
// for the addr file, returning the bound address, the signal channel
// and the exit-code channel.
func launch(t *testing.T, extra ...string) (addr string, sigs chan os.Signal, exit chan int) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	sigs = make(chan os.Signal, 2)
	exit = make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile, "-quiet"}, extra...)
	go func() { exit <- realMain(args, io.Discard, sigs) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		b, err := os.ReadFile(addrFile)
		if err == nil {
			return strings.TrimSpace(string(b)), sigs, exit
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never wrote its addr file")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitExit(t *testing.T, exit chan int, within time.Duration) int {
	t.Helper()
	select {
	case code := <-exit:
		return code
	case <-time.After(within):
		t.Fatal("daemon did not exit in time")
		return -1
	}
}

// postJSON fires one request and returns the response body; non-200 is
// fatal.
func postJSON(t *testing.T, addr, path, body string) []byte {
	t.Helper()
	resp, err := http.Post("http://"+addr+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s: read body: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d: %s", path, resp.StatusCode, b)
	}
	return b
}

// scrapeCounter reads one counter from /metrics.
func scrapeCounter(t *testing.T, addr, name string) int64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(b), "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			var n int64
			fmt.Sscanf(v, "%d", &n)
			return n
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

// artifactPaths lists the .art files under dir.
func artifactPaths(t *testing.T, dir string) []string {
	t.Helper()
	var files []string
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".art") {
			files = append(files, path)
		}
		return nil
	})
	return files
}

// restartRequests is the fixed request set the persistence e2e tests
// replay across daemon restarts: two distinct compile keys and one
// simulation (a third key: the conventional pipeline).
var restartRequests = []struct{ path, body string }{
	{"/v1/compile", `{"workload": "bzip2"}`},
	{"/v1/compile", `{"workload": "mcf", "options": {"core": {"max_region_size": 16}}}`},
	{"/v1/simulate", `{"workload": "libquantum", "scheme": "none"}`},
}

// TestCacheDirWarmRestart is the end-to-end persistence contract: run
// idemd -cache-dir, serve a request set, SIGTERM (which flushes the
// artifact store), restart over the same directory, and assert the
// replayed requests produce byte-identical bodies with zero compiles
// and every build served from disk.
func TestCacheDirWarmRestart(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "artifacts")

	addr, sigs, exit := launch(t, "-cache-dir", cacheDir)
	bodies := make([][]byte, len(restartRequests))
	for i, rq := range restartRequests {
		bodies[i] = postJSON(t, addr, rq.path, rq.body)
	}
	firstCompiles := scrapeCounter(t, addr, "idemd_buildcache_compiles_total")
	if firstCompiles == 0 {
		t.Fatal("first run compiled nothing")
	}
	sigs <- syscall.SIGTERM
	if code := waitExit(t, exit, 15*time.Second); code != 0 {
		t.Fatalf("drain exit = %d, want 0", code)
	}
	arts := artifactPaths(t, cacheDir)
	if int64(len(arts)) != firstCompiles {
		t.Fatalf("%d artifacts persisted, want %d (one per compile)", len(arts), firstCompiles)
	}

	// Restart over the same store.
	addr, sigs, exit = launch(t, "-cache-dir", cacheDir)
	for i, rq := range restartRequests {
		got := postJSON(t, addr, rq.path, rq.body)
		if !bytes.Equal(got, bodies[i]) {
			t.Errorf("request %d (%s): body differs across restart:\n first %s\n again %s",
				i, rq.path, bodies[i], got)
		}
	}
	if n := scrapeCounter(t, addr, "idemd_buildcache_compiles_total"); n != 0 {
		t.Errorf("warm restart ran %d compiles, want 0", n)
	}
	if n := scrapeCounter(t, addr, "idemd_buildcache_disk_hits_total"); n != firstCompiles {
		t.Errorf("warm restart: %d disk hits, want %d (one per distinct key)", n, firstCompiles)
	}
	if n := scrapeCounter(t, addr, "idemd_buildcache_disk_corrupt_total"); n != 0 {
		t.Errorf("healthy store reported %d corrupt artifacts", n)
	}
	sigs <- syscall.SIGTERM
	if code := waitExit(t, exit, 15*time.Second); code != 0 {
		t.Fatalf("second drain exit = %d, want 0", code)
	}
}

// TestCacheDirCorruptArtifactHeals: a truncated or bit-flipped artifact
// must be counted corrupt, transparently recompiled to the same
// response, and re-persisted healthy.
func TestCacheDirCorruptArtifactHeals(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "artifacts")
	const path, body = "/v1/compile", `{"workload": "bzip2"}`

	addr, sigs, exit := launch(t, "-cache-dir", cacheDir)
	want := postJSON(t, addr, path, body)
	sigs <- syscall.SIGTERM
	if code := waitExit(t, exit, 15*time.Second); code != 0 {
		t.Fatalf("drain exit = %d, want 0", code)
	}

	corrupt := func(name string, mut func([]byte) []byte) {
		arts := artifactPaths(t, cacheDir)
		if len(arts) != 1 {
			t.Fatalf("%s: %d artifacts, want 1", name, len(arts))
		}
		data, err := os.ReadFile(arts[0])
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(arts[0], mut(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Bit-flip: the boot scan's checksum verification already prunes the
	// file, so the request recompiles with a plain disk miss.
	corrupt("bitflip", func(data []byte) []byte {
		out := append([]byte{}, data...)
		out[len(out)-1] ^= 0x01
		return out
	})
	addr, sigs, exit = launch(t, "-cache-dir", cacheDir)
	if got := postJSON(t, addr, path, body); !bytes.Equal(got, want) {
		t.Errorf("recompile after bit flip: body differs")
	}
	bootPruned := len(artifactPaths(t, cacheDir)) == 0 ||
		scrapeCounter(t, addr, "idemd_buildcache_disk_corrupt_total") > 0
	if !bootPruned {
		t.Error("bit-flipped artifact neither pruned at boot nor counted corrupt")
	}
	if n := scrapeCounter(t, addr, "idemd_buildcache_compiles_total"); n != 1 {
		t.Errorf("%d compiles after bit flip, want 1 (transparent recompile)", n)
	}
	sigs <- syscall.SIGTERM
	if code := waitExit(t, exit, 15*time.Second); code != 0 {
		t.Fatalf("drain exit = %d, want 0", code)
	}

	// Truncation, same contract; the drain above re-persisted a healthy
	// artifact, so there is a file to damage again.
	corrupt("truncate", func(data []byte) []byte { return data[:len(data)/3] })
	addr, sigs, exit = launch(t, "-cache-dir", cacheDir)
	if got := postJSON(t, addr, path, body); !bytes.Equal(got, want) {
		t.Errorf("recompile after truncation: body differs")
	}
	if n := scrapeCounter(t, addr, "idemd_buildcache_compiles_total"); n != 1 {
		t.Errorf("%d compiles after truncation, want 1", n)
	}
	sigs <- syscall.SIGTERM
	if code := waitExit(t, exit, 15*time.Second); code != 0 {
		t.Fatalf("final drain exit = %d, want 0", code)
	}
	// After the final drain the store is healthy again: a last restart
	// serves the key from disk with zero compiles.
	addr, sigs, exit = launch(t, "-cache-dir", cacheDir)
	if got := postJSON(t, addr, path, body); !bytes.Equal(got, want) {
		t.Errorf("healed artifact served a different body")
	}
	if n := scrapeCounter(t, addr, "idemd_buildcache_compiles_total"); n != 0 {
		t.Errorf("healed store still compiled %d times", n)
	}
	sigs <- syscall.SIGTERM
	waitExit(t, exit, 15*time.Second)
}

// TestCacheDirUnusableFailsFast: a cache-dir that cannot be created is
// a startup error, not a silent memory-only daemon.
func TestCacheDirUnusableFailsFast(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	exit := make(chan int, 1)
	go func() {
		exit <- realMain([]string{"-addr", "127.0.0.1:0", "-cache-dir", filepath.Join(file, "sub")},
			io.Discard, make(chan os.Signal))
	}()
	if code := waitExit(t, exit, 10*time.Second); code != 1 {
		t.Fatalf("unusable cache-dir exit = %d, want 1", code)
	}
}

// TestGracefulDrainExitsZero: one signal, idle daemon, clean exit.
func TestGracefulDrainExitsZero(t *testing.T) {
	addr, sigs, exit := launch(t)
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	sigs <- syscall.SIGTERM
	if code := waitExit(t, exit, 15*time.Second); code != 0 {
		t.Fatalf("graceful drain exit = %d, want 0", code)
	}
}

// TestSecondSignalForcesHardExit: a long simulation holds the drain
// open; the second SIGTERM must cut it short with the distinct hard-
// exit code instead of waiting out the drain timeout.
func TestSecondSignalForcesHardExit(t *testing.T) {
	// Long drain timeout: if the hard-exit path is broken this test
	// fails by timeout rather than passing by accident.
	addr, sigs, exit := launch(t, "-drain-timeout", "5m", "-request-timeout", "5m")

	// Park a slow simulation in the server (~200M instructions, well
	// under the step cap but minutes of wall time under -race).
	body := []byte(`{"source": "func main(int n) int {\n int s = 0;\n int t = 1;\n for (int i = 0; i < n; i = i + 1) { s = s + i; t = t + s; }\n return s + t;\n}\n", "args": [200000000]}`)
	reqErr := make(chan error, 1)
	go func() {
		resp, err := http.Post("http://"+addr+"/v1/simulate", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
		reqErr <- err
	}()

	// Wait until the simulate request is actually in flight: the scrape
	// itself counts in the gauge, so look for >= 2.
	deadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/metrics")
		inFlight := 0
		if err == nil {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			for _, line := range strings.Split(string(b), "\n") {
				if v, ok := strings.CutPrefix(line, "idemd_http_inflight_requests "); ok {
					fmt.Sscanf(v, "%d", &inFlight)
				}
			}
		}
		if inFlight >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow simulation never showed up in flight")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// First signal starts the drain (which the parked simulation holds
	// open); the second must force the hard exit immediately.
	sigs <- syscall.SIGTERM
	sigs <- syscall.SIGTERM
	if code := waitExit(t, exit, 20*time.Second); code != exitHardStop {
		t.Fatalf("hard exit code = %d, want %d", code, exitHardStop)
	}
	// The abandoned request observes a transport error, not a response.
	if err := <-reqErr; err == nil {
		t.Error("in-flight request completed cleanly despite the forced exit")
	}
}
