package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// launch runs realMain in a goroutine against a fresh port and waits
// for the addr file, returning the bound address, the signal channel
// and the exit-code channel.
func launch(t *testing.T, extra ...string) (addr string, sigs chan os.Signal, exit chan int) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	sigs = make(chan os.Signal, 2)
	exit = make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile, "-quiet"}, extra...)
	go func() { exit <- realMain(args, io.Discard, sigs) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		b, err := os.ReadFile(addrFile)
		if err == nil {
			return strings.TrimSpace(string(b)), sigs, exit
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never wrote its addr file")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitExit(t *testing.T, exit chan int, within time.Duration) int {
	t.Helper()
	select {
	case code := <-exit:
		return code
	case <-time.After(within):
		t.Fatal("daemon did not exit in time")
		return -1
	}
}

// TestGracefulDrainExitsZero: one signal, idle daemon, clean exit.
func TestGracefulDrainExitsZero(t *testing.T) {
	addr, sigs, exit := launch(t)
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	sigs <- syscall.SIGTERM
	if code := waitExit(t, exit, 15*time.Second); code != 0 {
		t.Fatalf("graceful drain exit = %d, want 0", code)
	}
}

// TestSecondSignalForcesHardExit: a long simulation holds the drain
// open; the second SIGTERM must cut it short with the distinct hard-
// exit code instead of waiting out the drain timeout.
func TestSecondSignalForcesHardExit(t *testing.T) {
	// Long drain timeout: if the hard-exit path is broken this test
	// fails by timeout rather than passing by accident.
	addr, sigs, exit := launch(t, "-drain-timeout", "5m", "-request-timeout", "5m")

	// Park a slow simulation in the server (~200M instructions, well
	// under the step cap but minutes of wall time under -race).
	body := []byte(`{"source": "func main(int n) int {\n int s = 0;\n int t = 1;\n for (int i = 0; i < n; i = i + 1) { s = s + i; t = t + s; }\n return s + t;\n}\n", "args": [200000000]}`)
	reqErr := make(chan error, 1)
	go func() {
		resp, err := http.Post("http://"+addr+"/v1/simulate", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
		reqErr <- err
	}()

	// Wait until the simulate request is actually in flight: the scrape
	// itself counts in the gauge, so look for >= 2.
	deadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/metrics")
		inFlight := 0
		if err == nil {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			for _, line := range strings.Split(string(b), "\n") {
				if v, ok := strings.CutPrefix(line, "idemd_http_inflight_requests "); ok {
					fmt.Sscanf(v, "%d", &inFlight)
				}
			}
		}
		if inFlight >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow simulation never showed up in flight")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// First signal starts the drain (which the parked simulation holds
	// open); the second must force the hard exit immediately.
	sigs <- syscall.SIGTERM
	sigs <- syscall.SIGTERM
	if code := waitExit(t, exit, 20*time.Second); code != exitHardStop {
		t.Fatalf("hard exit code = %d, want %d", code, exitHardStop)
	}
	// The abandoned request observes a transport error, not a response.
	if err := <-reqErr; err == nil {
		t.Error("in-flight request completed cleanly despite the forced exit")
	}
}
