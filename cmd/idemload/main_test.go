package main

import (
	"bytes"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"idemproc/internal/server"
	"idemproc/internal/shard"
)

// startServer boots a real idemd core on a loopback port and returns
// its address. The listener and connections die with the test.
func startServer(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Generous request timeout and a low step cap: simulations run an
	// order of magnitude slower under -race, and this test is about
	// transport faults, not simulator throughput. A step-capped run
	// still yields a deterministic 200 (the cap lands in the report's
	// error field), which is all the digest needs.
	srv := server.New(server.Config{
		RequestTimeout: 5 * time.Minute,
		MaxSimSteps:    1 << 22,
	})
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String()
}

// startFront boots a shard front over the given replica addresses.
func startFront(t *testing.T, backends []string) string {
	t.Helper()
	f, err := shard.New(shard.Config{Backends: backends})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go f.Serve(l)
	t.Cleanup(func() { f.Close() })
	return l.Addr().String()
}

// loadSummary reads a -json output file.
func loadSummary(t *testing.T, path string) map[string]any {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	return m
}

// TestChaosCampaignConverges is the end-to-end resilience proof: a
// seeded fault proxy injects latency, 500s, connection resets and
// truncated bodies, and with retries + hedging enabled the campaign
// must still finish with zero permanently failed requests, zero
// idempotence mismatches, and the *same* response digest as a
// fault-free run — recovery by re-execution, end to end. Rerunning the
// same chaos seed must reproduce the same outcome.
func TestChaosCampaignConverges(t *testing.T) {
	addr := startServer(t)
	dir := t.TempDir()

	run := func(name string, extra ...string) map[string]any {
		t.Helper()
		out := filepath.Join(dir, name+".json")
		args := append([]string{
			"-addr", addr, "-requests", "32", "-concurrency", "8",
			"-seed", "11", "-quiet", "-json", out,
		}, extra...)
		var stdout, stderr bytes.Buffer
		if code := realMain(args, &stdout, &stderr, nil); code != 0 {
			t.Fatalf("%s: exit %d\nstdout: %s\nstderr: %s", name, code, stdout.String(), stderr.String())
		}
		return loadSummary(t, out)
	}

	clean := run("clean")
	// The hedge threshold sits above typical request latency so only the
	// genuine tail hedges — hedging every heavy simulation would double
	// server work and (under -race) the test's wall time.
	chaosArgs := []string{
		"-chaos-seed", "3", "-chaos-rates", "12,8,8,8",
		"-retries", "8", "-hedge-after", "500ms",
	}
	chaotic := run("chaos", chaosArgs...)
	replay := run("chaos-replay", chaosArgs...)

	// Zero lost requests, zero mismatches, same digest as fault-free.
	if got, want := chaotic["digest"], clean["digest"]; got != want {
		t.Errorf("chaos digest %v != clean digest %v — faults changed responses", got, want)
	}
	res, ok := chaotic["resilience"].(map[string]any)
	if !ok {
		t.Fatalf("summary has no resilience section: %v", chaotic)
	}
	if mm := res["digest_mismatches"].(float64); mm != 0 {
		t.Errorf("digest_mismatches = %v, want 0", mm)
	}
	if fails := res["failures"].(float64); fails != 0 {
		t.Errorf("permanent failures = %v, want 0", fails)
	}
	if errs := chaotic["errors"].(float64); errs != 0 {
		t.Errorf("errors = %v, want 0", errs)
	}

	// The campaign must actually have injected faults — otherwise the
	// test proves nothing.
	ch, ok := chaotic["chaos"].(map[string]any)
	if !ok {
		t.Fatalf("summary has no chaos section: %v", chaotic)
	}
	inj := ch["injected"].(map[string]any)
	faults := inj["errors_500"].(float64) + inj["resets"].(float64) + inj["truncates"].(float64)
	if faults == 0 {
		t.Error("chaos proxy injected no faults; campaign was vacuous")
	}
	if res["retries"].(float64) == 0 {
		t.Error("no retries happened despite injected faults")
	}

	// Same seed, same outcome: the converged digest is reproducible.
	if got, want := replay["digest"], chaotic["digest"]; got != want {
		t.Errorf("replayed chaos digest %v != first chaos digest %v", got, want)
	}
}

// TestInterruptFlushesPartialJSON: SIGINT mid-pass must flush the
// partial summary (interrupted: true, completed < requested) and exit
// 130 instead of discarding the measurements.
func TestInterruptFlushesPartialJSON(t *testing.T) {
	addr := startServer(t)
	out := filepath.Join(t.TempDir(), "partial.json")

	sigs := make(chan os.Signal, 2)
	go func() {
		time.Sleep(300 * time.Millisecond)
		sigs <- os.Interrupt
	}()

	var stdout, stderr bytes.Buffer
	code := realMain([]string{
		"-addr", addr, "-requests", "1000000", "-concurrency", "4",
		"-seed", "2", "-quiet", "-json", out,
	}, &stdout, &stderr, sigs)
	if code != exitInterrupted {
		t.Fatalf("exit = %d, want %d\nstderr: %s", code, exitInterrupted, stderr.String())
	}

	m := loadSummary(t, out)
	if m["interrupted"] != true {
		t.Errorf("interrupted = %v, want true", m["interrupted"])
	}
	completed := m["completed_requests"].(float64)
	if completed <= 0 || completed >= 1000000 {
		t.Errorf("completed_requests = %v, want a partial count", completed)
	}
}

// TestFleetCampaignMatchesBaseline: the same seeded campaign through a
// 3-replica front must reproduce a single replica's digest exactly
// (-expect-digest), compile each distinct key exactly once fleet-wide
// (summed misses == baseline misses), spread hits across every replica
// (-require-replica-hits), and pass the same -min-hit-ratio gate the
// baseline earns — the cross-fleet identity check make shard-smoke runs
// against real processes.
func TestFleetCampaignMatchesBaseline(t *testing.T) {
	dir := t.TempDir()
	run := func(name string, args ...string) (int, map[string]any, string) {
		t.Helper()
		out := filepath.Join(dir, name+".json")
		var stdout, stderr bytes.Buffer
		code := realMain(append(args, "-quiet", "-json", out), &stdout, &stderr, nil)
		if _, err := os.Stat(out); err != nil {
			t.Fatalf("%s: no summary written: %v\nstderr: %s", name, err, stderr.String())
		}
		return code, loadSummary(t, out), stderr.String()
	}

	// Baseline: one replica, two passes (the second warms to pure hits).
	baseAddr := startServer(t)
	code, baseSum, errs := run("base",
		"-addr", baseAddr, "-requests", "40", "-concurrency", "8", "-seed", "5", "-repeat", "2")
	if code != 0 {
		t.Fatalf("baseline: exit %d\n%s", code, errs)
	}
	digest, _ := baseSum["digest"].(string)
	if digest == "" {
		t.Fatal("baseline summary has no digest")
	}
	baseCache := baseSum["cache"].(map[string]any)

	// Fleet: same campaign through the front, scraping all replicas.
	var backends []string
	for i := 0; i < 3; i++ {
		backends = append(backends, startServer(t))
	}
	frontAddr := startFront(t, backends)
	scrape := backends[0] + "," + backends[1] + "," + backends[2]
	code, fleetSum, errs := run("fleet",
		"-addr", frontAddr, "-scrape", scrape,
		"-requests", "40", "-concurrency", "8", "-seed", "5", "-repeat", "2",
		"-expect-digest", digest, "-require-replica-hits",
		"-min-hit-ratio", "0.4")
	if code != 0 {
		t.Fatalf("fleet: exit %d\n%s", code, errs)
	}
	if fleetSum["scrape_errors"].(float64) != 0 {
		t.Errorf("scrape_errors = %v, want 0", fleetSum["scrape_errors"])
	}
	fleetCache := fleetSum["cache"].(map[string]any)
	if got, want := fleetCache["misses"], baseCache["misses"]; got != want {
		t.Errorf("fleet misses %v != baseline misses %v: partitioning should compile each key exactly once", got, want)
	}
	reps, _ := fleetSum["replicas"].([]any)
	if len(reps) != 3 {
		t.Fatalf("replicas section has %d entries, want 3", len(reps))
	}
	for _, r := range reps {
		m := r.(map[string]any)
		if m["error"] != nil {
			t.Errorf("replica %v reported scrape error %v", m["target"], m["error"])
		}
	}

	// A wrong expectation must fail the run after the fact.
	code, _, _ = run("fleet-bad-digest",
		"-addr", frontAddr, "-scrape", scrape,
		"-requests", "8", "-concurrency", "4", "-seed", "5",
		"-expect-digest", "0000000000000000")
	if code != 1 {
		t.Errorf("wrong -expect-digest: exit %d, want 1", code)
	}
	if code := realMain([]string{"-addr", frontAddr, "-expect-digest", "zz"}, &bytes.Buffer{}, &bytes.Buffer{}, nil); code != 2 {
		t.Errorf("malformed -expect-digest: exit %d, want 2", code)
	}
}

// TestScrapeErrorsAreExplicit: a failing scrape target must fail the
// run, and the JSON summary must carry scrape_errors and drop the
// cache/disk sections rather than report a misleading partial sum.
func TestScrapeErrorsAreExplicit(t *testing.T) {
	addr := startServer(t)
	// Grab a port and close it again: scrapes will be refused.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()

	out := filepath.Join(t.TempDir(), "scrapefail.json")
	var stdout, stderr bytes.Buffer
	code := realMain([]string{
		"-addr", addr, "-scrape", addr + "," + dead,
		"-requests", "4", "-concurrency", "2", "-quiet", "-json", out,
	}, &stdout, &stderr, nil)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr.String())
	}
	m := loadSummary(t, out)
	if m["failure"] != "metrics scrape failed" {
		t.Errorf("failure = %v, want %q", m["failure"], "metrics scrape failed")
	}
	if m["scrape_errors"].(float64) != 1 {
		t.Errorf("scrape_errors = %v, want 1", m["scrape_errors"])
	}
	if _, present := m["cache"]; present {
		t.Error("cache section present despite a failed scrape; partial sums must not be reported")
	}
	reps := m["replicas"].([]any)
	if len(reps) != 2 {
		t.Fatalf("replicas section has %d entries, want 2", len(reps))
	}
	if reps[1].(map[string]any)["error"] == nil {
		t.Error("dead target's replica entry lacks an error field")
	}
}

// TestMidRunFailureFlushesJSON: a permanently failing run (no server
// behind the address) still writes the summary with a failure note and
// exits 1.
func TestMidRunFailureFlushesJSON(t *testing.T) {
	// Grab a port and close it again: connections will be refused.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	out := filepath.Join(t.TempDir(), "failed.json")
	var stdout, stderr bytes.Buffer
	code := realMain([]string{
		"-addr", addr, "-requests", "4", "-concurrency", "2",
		"-quiet", "-json", out,
	}, &stdout, &stderr, nil)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	m := loadSummary(t, out)
	if m["failure"] != "requests failed" {
		t.Errorf("failure = %v, want %q", m["failure"], "requests failed")
	}
	if m["errors"].(float64) == 0 {
		t.Error("errors = 0 in a failed run's summary")
	}
}
