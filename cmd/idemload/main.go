// Command idemload is a deterministic, seeded load generator for idemd.
// It fires a fixed mix of /v1/compile, /v1/simulate and /v1/batch
// requests at a running daemon, checks every response, and digests the
// response bodies in request order — so two runs with the same -seed
// against fresh daemons must produce the same digest, and -repeat N
// asserts that property in one process (the daemon's responses must be a
// pure function of the request, not of cache state or concurrency).
//
//	idemload -addr 127.0.0.1:7777 -concurrency 32 -requests 2000
//	idemload -addr $(cat /tmp/idemd.addr) -repeat 2 -min-hit-ratio 0.5
//	idemload -addr ... -json BENCH_serve.json
//
// Resilience and chaos: -retries/-hedge-after enable idempotence-
// justified re-execution through internal/resilience, and -chaos-seed
// interposes a seeded internal/chaos fault proxy between the generator
// and the daemon — together they run the end-to-end campaign that
// docs/resilience.md describes: under injected transport faults the
// client must converge to the same digest a fault-free run produces.
//
//	idemload -addr ... -chaos-seed 7 -chaos-rates 10,6,6,6 -retries 8 -hedge-after 75ms
//
// Async jobs: -jobs swaps the request mix for one deterministic batch
// submitted via POST /v1/jobs, consumed through cursor long-polls (or
// the NDJSON stream with -stream) and digested after reconstruction —
// the digest equals the one a direct /v1/batch POST produces, which
// -verify-batch asserts byte-for-byte. The campaign client survives the
// daemon being killed and restarted mid-job (submits retry, cursors
// resume), and -min-resumed-units asserts the restarted daemon really
// reloaded journaled results instead of re-executing them — the
// kill -9 resume proof scripts/jobs_smoke.sh runs (docs/jobs.md).
//
//	idemload -addr ... -jobs -verify-batch -job-units 48
//	idemload -addr ... -jobs -stream -expect-digest <hex> -max-compiles 0 -min-resumed-units 1
//
// Exit status is nonzero on any permanently failed request, any
// non-200 response, a digest or idempotence mismatch, or an unmet
// -min-hit-ratio / -min-evictions / -min-disk-hit-ratio / -max-compiles
// / -min-verified assertion (scraped from the daemon's /metrics, so
// smoke-test scripts need no curl/jq). The disk assertions drive the
// warm-restart tests against `idemd -cache-dir` (docs/persistence.md);
// -min-verified drives the translation-validation smoke against
// `idemd -verify-mode full` (docs/verify.md). SIGINT/SIGTERM flushes
// partial -json results and exits 130.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"idemproc/internal/chaos"
	"idemproc/internal/resilience"
	"idemproc/internal/server"
	"idemproc/internal/workloads"
)

func main() {
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr, sigs))
}

// exitInterrupted is the conventional 128+SIGINT code: the run was cut
// short but partial results were flushed.
const exitInterrupted = 130

func realMain(args []string, stdout, stderr io.Writer, sigs <-chan os.Signal) int {
	fs := flag.NewFlagSet("idemload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:7777", "idemd (or idemfront) address (host:port)")
		scrape       = fs.String("scrape", "", "comma-separated /metrics scrape targets (host:port; default: -addr). When driving a front tier, list every replica: counters are summed so the cache assertions gate fleet-wide behavior")
		expectDigest = fs.String("expect-digest", "", "assert the pass digest equals this 16-hex-digit value (cross-fleet identity: run a 1-replica baseline, then require the fleet to reproduce its digest)")
		replicaHits  = fs.Bool("require-replica-hits", false, "assert every scrape target reports at least one compile-cache hit (proves the ring actually spread the working set)")
		concurrency  = fs.Int("concurrency", 32, "concurrent in-flight requests")
		requests     = fs.Int("requests", 2000, "requests per pass")
		seed         = fs.Uint64("seed", 1, "request-mix seed (same seed => same requests => same digest)")
		repeat       = fs.Int("repeat", 1, "passes to run; all passes must produce the same digest")
		mix          = fs.String("mix", "45,40,15", "compile,simulate,batch weight percentages")
		timeout      = fs.Duration("timeout", 60*time.Second, "per-request client timeout")
		jsonOut      = fs.String("json", "", "write the benchmark summary to this file (BENCH_serve.json)")
		minHitRatio  = fs.Float64("min-hit-ratio", -1, "assert the daemon's compile-cache hit ratio is at least this (scraped from /metrics; <0 disables)")
		minEvictions = fs.Int64("min-evictions", -1, "assert at least this many compile-cache evictions (<0 disables)")
		minDiskRatio = fs.Float64("min-disk-hit-ratio", -1, "assert the disk-tier hit ratio (disk hits / disk lookups) is at least this; restart tests use it to prove warm starts (<0 disables)")
		maxCompiles  = fs.Int64("max-compiles", -1, "assert at most this many actual codegen runs happened (<0 disables); 0 proves a fully warm start")
		minVerified  = fs.Int64("min-verified", -1, "assert at least this many translation-validator checks ran AND none found violations (scraped idemd_verify_checked_total / idemd_verify_failed_total; <0 disables)")
		sweepAll     = fs.Bool("sweep-compiles", false, "before the seeded passes, POST /v1/compile once per built-in workload (paper-default options); with -min-verified >= 0 every swept response must also report verified=true, proving the daemon validated each build")
		quiet        = fs.Bool("quiet", false, "suppress the per-pass progress line")

		jobsMode        = fs.Bool("jobs", false, "run the async-job campaign instead of the request mix: submit one deterministic batch via POST /v1/jobs and consume results incrementally (docs/jobs.md)")
		streamMode      = fs.Bool("stream", false, "with -jobs, consume via GET /v1/jobs/{id}/stream (NDJSON) instead of cursor long-polls; broken streams reconnect at the cursor")
		jobUnits        = fs.Int("job-units", 24, "with -jobs, units in the submitted batch")
		jobSimSteps     = fs.Int64("job-sim-steps", 0, "with -jobs, make every unit a simulation of this many steps (slow, kill-window-friendly units for resume smoke tests; 0 = normal palette mix)")
		jobIDFile       = fs.String("job-id-file", "", "with -jobs, write the submitted job id to this file (smoke scripts poll/kill against it)")
		verifyBatch     = fs.Bool("verify-batch", false, "with -jobs, POST the same units to /v1/batch and assert the reconstructed job results are byte-identical")
		minResumedUnits = fs.Int64("min-resumed-units", -1, "assert at least this many unit results were reloaded from job journals instead of re-executed (scraped idemd_jobs_resumed_units_total; <0 disables)")

		retries    = fs.Int("retries", 0, "re-execute failed requests up to this many times (safe: responses are idempotent)")
		hedgeAfter = fs.Duration("hedge-after", 0, "launch a hedged duplicate if a request is still in flight after this long (0 disables)")
		breakerThr = fs.Int("breaker-threshold", 8, "open the retry circuit breaker after this many consecutive failures (0 disables)")
		chaosSeed  = fs.Uint64("chaos-seed", 0, "interpose a seeded fault-injection proxy (0 disables)")
		chaosRates = fs.String("chaos-rates", "10,6,6,6", "latency,error500,reset,truncate fault percentages for -chaos-seed")
		metricsOut = fs.String("metrics-out", "", "write client-side resilience counters (Prometheus text) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *concurrency < 1 || *requests < 1 || *repeat < 1 {
		fmt.Fprintln(stderr, "idemload: -concurrency, -requests and -repeat must be >= 1")
		return 2
	}
	if *jobsMode && *jobUnits < 1 {
		fmt.Fprintln(stderr, "idemload: -job-units must be >= 1")
		return 2
	}
	weights, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintf(stderr, "idemload: %v\n", err)
		return 2
	}
	// Scrape targets: the traffic address by default; against a front
	// tier, the replicas behind it (the front has no compile cache).
	var scrapeTargets []string
	for _, tgt := range strings.Split(*scrape, ",") {
		if tgt = strings.TrimSpace(tgt); tgt != "" {
			scrapeTargets = append(scrapeTargets, tgt)
		}
	}
	if len(scrapeTargets) == 0 {
		scrapeTargets = []string{*addr}
	}
	var expectDigestVal uint64
	if *expectDigest != "" {
		expectDigestVal, err = strconv.ParseUint(strings.TrimSpace(*expectDigest), 16, 64)
		if err != nil {
			fmt.Fprintf(stderr, "idemload: -expect-digest %q is not a 64-bit hex digest\n", *expectDigest)
			return 2
		}
	}

	// Signal handling: first signal cancels the run context; workers
	// stop picking up requests and the partial pass is flushed.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var interrupted atomic.Bool
	sigDone := make(chan struct{})
	defer close(sigDone)
	go func() {
		select {
		case <-sigs:
			interrupted.Store(true)
			cancel()
		case <-sigDone:
		}
	}()

	// The scrape always goes straight to the daemons; only /v1 traffic is
	// routed through the chaos proxy, so fault accounting and cache
	// assertions see the servers' ground truth.
	trafficBase := "http://" + *addr
	var proxy *chaos.Proxy
	if *chaosSeed != 0 {
		rates, err := parseChaosRates(*chaosRates)
		if err != nil {
			fmt.Fprintf(stderr, "idemload: %v\n", err)
			return 2
		}
		proxy, err = chaos.NewProxy(*addr, chaos.Config{
			Seed:    *chaosSeed,
			Default: rates,
			// Keep the observation plane clean even if someone scrapes
			// through the proxy.
			PerPath: map[string]chaos.Rates{"/metrics": {}, "/healthz": {}, "/readyz": {}},
		})
		if err != nil {
			fmt.Fprintf(stderr, "idemload: %v\n", err)
			return 1
		}
		defer proxy.Close()
		trafficBase = "http://" + proxy.Addr()
		if !*quiet {
			fmt.Fprintf(stdout, "chaos: proxy %s -> %s (seed %d, rates %s)\n", proxy.Addr(), *addr, *chaosSeed, *chaosRates)
		}
	}

	client := &http.Client{Timeout: *timeout}
	var rc *resilience.Client
	if *retries > 0 || *hedgeAfter > 0 {
		rc = resilience.NewClient(resilience.Policy{
			MaxRetries:       *retries,
			HedgeAfter:       *hedgeAfter,
			Seed:             *seed,
			VerifyIdentical:  *hedgeAfter > 0,
			BreakerThreshold: *breakerThr,
		})
	}

	// flush writes whatever has been measured so far; it runs on the
	// happy path, on mid-run failure and on interrupt, so a long
	// campaign never loses its measurements to a late error.
	start := time.Now()
	var digests []uint64
	var last passResult
	var jobsRes *jobsCampaignResult
	completedPasses := 0
	flush := func(failure string) {
		if *metricsOut != "" && rc != nil {
			var b bytes.Buffer
			rc.Counters().WriteProm(&b, "idemload_resilience")
			if err := os.WriteFile(*metricsOut, b.Bytes(), 0o644); err != nil {
				fmt.Fprintf(stderr, "idemload: %v\n", err)
			}
		}
		if *jsonOut == "" {
			return
		}
		benchName := "serve"
		if len(scrapeTargets) > 1 {
			benchName = "shard" // fleet campaign: multi-replica scrape
		}
		summary := map[string]any{
			"bench":              benchName,
			"requests":           *requests,
			"concurrency":        *concurrency,
			"seed":               *seed,
			"repeats":            *repeat,
			"completed_passes":   completedPasses,
			"completed_requests": last.completed,
			"interrupted":        interrupted.Load(),
			"elapsed_sec":        time.Since(start).Seconds(),
			"req_per_sec":        last.reqPerSec,
			"p50_ms":             last.p50.Seconds() * 1e3,
			"p90_ms":             last.p90.Seconds() * 1e3,
			"p99_ms":             last.p99.Seconds() * 1e3,
			"errors":             last.errors,
		}
		if failure != "" {
			summary["failure"] = failure
		}
		if len(digests) > 0 {
			summary["digest"] = fmt.Sprintf("%016x", digests[0])
		}
		// Scrape failures are explicit: scrape_errors is always present,
		// and the cache/disk sections appear only when every target
		// answered — a partial sum would quietly gate on the wrong number.
		cache, per, scrapeErrs := scrapeFleet(client, scrapeTargets)
		summary["scrape_errors"] = scrapeErrs
		if scrapeErrs == 0 {
			summary["cache"] = map[string]any{
				"hits": cache.hits, "misses": cache.misses,
				"hit_ratio": cache.hitRatio(), "evictions": cache.evictions,
				"compiles": cache.compiles,
			}
			summary["disk"] = map[string]any{
				"hits": cache.diskHits, "misses": cache.diskMisses,
				"writes": cache.diskWrites, "corrupt": cache.diskCorrupt,
				"hit_ratio": cache.diskHitRatio(),
			}
			summary["server"] = map[string]any{
				"sim_preempted":      cache.simPreempted,
				"jobs_resumed":       cache.jobsResumed,
				"jobs_resumed_units": cache.jobsResumedUnits,
			}
			summary["verify"] = map[string]any{
				"checked":            cache.verifyChecked,
				"failed":             cache.verifyFailed,
				"rejected_artifacts": cache.verifyRejected,
			}
			// verify_ns is the bench guard's cost ledger: total wall time
			// the daemon spent inside the translation validator and the
			// per-check average (scripts/bench_serve.sh, docs/verify.md).
			perCheck := int64(0)
			if cache.verifyChecked > 0 {
				perCheck = cache.verifyNanos / cache.verifyChecked
			}
			summary["verify_ns"] = map[string]any{
				"total":     cache.verifyNanos,
				"per_check": perCheck,
			}
		}
		if jobsRes != nil {
			summary["jobs"] = map[string]any{
				"id":             jobsRes.jobID,
				"units":          jobsRes.units,
				"stream":         *streamMode,
				"digest":         fmt.Sprintf("%016x", jobsRes.digest),
				"submit_retries": jobsRes.submitRetries,
				"poll_retries":   jobsRes.pollRetries,
				"stream_resumes": jobsRes.streamResumes,
				"verified_batch": jobsRes.verifiedBatch,
			}
		}
		reps := make([]map[string]any, 0, len(per))
		for _, r := range per {
			m := map[string]any{"target": r.target}
			if r.err != nil {
				m["error"] = r.err.Error()
			} else {
				m["hits"] = r.c.hits
				m["misses"] = r.c.misses
				m["hit_ratio"] = r.c.hitRatio()
				m["compiles"] = r.c.compiles
			}
			reps = append(reps, m)
		}
		summary["replicas"] = reps
		if rc != nil {
			summary["resilience"] = rc.Counters()
		}
		if proxy != nil {
			summary["chaos"] = map[string]any{
				"seed": *chaosSeed, "rates": *chaosRates, "injected": proxy.Counters(),
			}
		}
		b, _ := json.MarshalIndent(summary, "", "  ")
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "idemload: %v\n", err)
			return
		}
		if !*quiet {
			fmt.Fprintf(stdout, "wrote %s\n", *jsonOut)
		}
	}

	if *sweepAll {
		// Workload sweep: one compile per built-in workload, in catalog
		// order, so a full-verification daemon checks every program the
		// service can build — not just the seeded palette below.
		n, err := sweepCompiles(ctx, client, trafficBase, *minVerified >= 0)
		if err != nil {
			fmt.Fprintf(stderr, "idemload: %v\n", err)
			flush("workload sweep failed")
			return 1
		}
		if !*quiet {
			fmt.Fprintf(stdout, "sweep: compiled %d workloads\n", n)
		}
	}

	if *jobsMode {
		// The jobs campaign: one deterministic batch, submitted and
		// consumed through the async API. -repeat reruns the identical
		// submission, so the digest-stability check below also proves the
		// job path is a pure function of the request body.
		body := genJobBatch(*seed, *jobUnits, *jobSimSteps)
		for pass := 0; pass < *repeat; pass++ {
			t0 := time.Now()
			res, err := runJobsCampaign(ctx, client, trafficBase, body, *streamMode, *jobIDFile, *quiet, stdout)
			jobsRes = &res
			last = passResult{completed: len(res.body)} // bytes, for the partial-progress field
			if res.units > 0 {
				last.completed = res.units
			}
			if interrupted.Load() {
				fmt.Fprintf(stderr, "idemload: interrupted during job pass %d\n", pass)
				flush("interrupted")
				return exitInterrupted
			}
			if err != nil {
				fmt.Fprintf(stderr, "idemload: job pass %d: %v\n", pass, err)
				flush("job campaign failed")
				return 1
			}
			if *verifyBatch {
				if err := verifyAgainstBatch(ctx, client, trafficBase, body, jobsRes); err != nil {
					fmt.Fprintf(stderr, "idemload: job pass %d: %v\n", pass, err)
					flush("job/batch byte identity failed")
					return 1
				}
			}
			if !*quiet {
				fmt.Fprintf(stdout, "job pass %d: %d units in %s, digest %016x (submit retries %d, poll retries %d, stream resumes %d)\n",
					pass, res.units, time.Since(t0).Round(time.Millisecond), res.digest,
					res.submitRetries, res.pollRetries, res.streamResumes)
			}
			digests = append(digests, res.digest)
			completedPasses++
		}
	} else {
		send := makeSender(client, trafficBase, rc)
		for pass := 0; pass < *repeat; pass++ {
			res := runPass(ctx, send, *seed, *requests, *concurrency, weights)
			last = res
			if interrupted.Load() {
				fmt.Fprintf(stderr, "idemload: interrupted during pass %d after %d/%d requests\n", pass, res.completed, *requests)
				flush("interrupted")
				return exitInterrupted
			}
			if res.errors > 0 {
				for _, s := range res.errSamples {
					fmt.Fprintf(stderr, "idemload: %s\n", s)
				}
				fmt.Fprintf(stderr, "idemload: pass %d: %d/%d requests failed\n", pass, res.errors, *requests)
				flush("requests failed")
				return 1
			}
			if !*quiet {
				fmt.Fprintf(stdout, "pass %d: %d requests in %s (%.1f req/s), p50 %.2fms p90 %.2fms p99 %.2fms, digest %016x\n",
					pass, *requests, res.elapsed.Round(time.Millisecond), res.reqPerSec,
					res.p50.Seconds()*1e3, res.p90.Seconds()*1e3, res.p99.Seconds()*1e3, res.digest)
			}
			digests = append(digests, res.digest)
			completedPasses++
		}
	}

	for i := 1; i < len(digests); i++ {
		if digests[i] != digests[0] {
			fmt.Fprintf(stderr, "idemload: digest mismatch: pass 0 %016x != pass %d %016x (responses are not deterministic)\n",
				digests[0], i, digests[i])
			flush("digest mismatch between passes")
			return 1
		}
	}
	if *expectDigest != "" && len(digests) > 0 && digests[0] != expectDigestVal {
		fmt.Fprintf(stderr, "idemload: digest %016x does not match expected %016x (fleet diverges from the baseline run)\n",
			digests[0], expectDigestVal)
		flush("digest mismatch against -expect-digest")
		return 1
	}
	if rc != nil {
		s := rc.Counters()
		if !*quiet {
			fmt.Fprintf(stdout, "resilience: %d attempts, %d retries, %d hedges (%d wins), %d breaker opens, %d mismatches\n",
				s.Attempts, s.Retries, s.Hedges, s.HedgeWins, s.BreakerOpens, s.Mismatches)
		}
		if s.Mismatches > 0 {
			fmt.Fprintf(stderr, "idemload: %d idempotence violations: re-executed requests produced diverging responses\n", s.Mismatches)
			flush("idempotence violation")
			return 1
		}
	}
	if proxy != nil && !*quiet {
		c := proxy.Counters()
		fmt.Fprintf(stdout, "chaos: injected %d latencies, %d errors, %d resets, %d truncations over %d requests\n",
			c.Latencies, c.Errors500, c.Resets, c.Truncates, c.Requests)
	}

	// Scrape the daemons' own view of the compile cache; assertions here
	// keep smoke scripts free of curl/jq. Against a fleet the counters
	// sum across replicas, so the gates below hold fleet-wide.
	cache, per, scrapeErrs := scrapeFleet(client, scrapeTargets)
	if scrapeErrs > 0 {
		for _, r := range per {
			if r.err != nil {
				fmt.Fprintf(stderr, "idemload: metrics scrape %s: %v\n", r.target, r.err)
			}
		}
		flush("metrics scrape failed")
		return 1
	}
	if !*quiet {
		fmt.Fprintf(stdout, "cache: %d hits / %d misses (%.1f%% hit ratio), %d evictions, %d compiles\n",
			cache.hits, cache.misses, 100*cache.hitRatio(), cache.evictions, cache.compiles)
		if len(per) > 1 {
			for _, r := range per {
				fmt.Fprintf(stdout, "  replica %s: %d hits / %d misses (%.1f%% hit ratio), %d compiles\n",
					r.target, r.c.hits, r.c.misses, 100*r.c.hitRatio(), r.c.compiles)
			}
		}
		if cache.diskHits+cache.diskMisses+cache.diskWrites > 0 {
			fmt.Fprintf(stdout, "disk: %d hits / %d misses (%.1f%% hit ratio), %d writes, %d corrupt\n",
				cache.diskHits, cache.diskMisses, 100*cache.diskHitRatio(), cache.diskWrites, cache.diskCorrupt)
		}
		if cache.jobsResumed > 0 {
			fmt.Fprintf(stdout, "jobs: %d resumed, %d unit results reloaded from journals\n",
				cache.jobsResumed, cache.jobsResumedUnits)
		}
		if cache.verifyChecked+cache.verifyRejected > 0 {
			fmt.Fprintf(stdout, "verify: %d checked, %d failed, %d artifacts rejected\n",
				cache.verifyChecked, cache.verifyFailed, cache.verifyRejected)
		}
	}
	if *minHitRatio >= 0 && cache.hitRatio() < *minHitRatio {
		fmt.Fprintf(stderr, "idemload: cache hit ratio %.3f below required %.3f\n", cache.hitRatio(), *minHitRatio)
		flush("hit-ratio assertion failed")
		return 1
	}
	if *minEvictions >= 0 && cache.evictions < *minEvictions {
		fmt.Fprintf(stderr, "idemload: %d cache evictions below required %d\n", cache.evictions, *minEvictions)
		flush("eviction assertion failed")
		return 1
	}
	if *minDiskRatio >= 0 && cache.diskHitRatio() < *minDiskRatio {
		fmt.Fprintf(stderr, "idemload: disk hit ratio %.3f below required %.3f (%d hits / %d misses)\n",
			cache.diskHitRatio(), *minDiskRatio, cache.diskHits, cache.diskMisses)
		flush("disk-hit-ratio assertion failed")
		return 1
	}
	if *maxCompiles >= 0 && cache.compiles > *maxCompiles {
		fmt.Fprintf(stderr, "idemload: %d compiles above allowed %d (warm start failed)\n", cache.compiles, *maxCompiles)
		flush("compile-count assertion failed")
		return 1
	}
	if *minVerified >= 0 {
		if cache.verifyChecked < *minVerified {
			fmt.Fprintf(stderr, "idemload: %d validator checks below required %d (is -verify-mode on?)\n",
				cache.verifyChecked, *minVerified)
			flush("min-verified assertion failed")
			return 1
		}
		if cache.verifyFailed > 0 {
			fmt.Fprintf(stderr, "idemload: %d validator checks found violations — the compiler emitted a non-idempotent region\n",
				cache.verifyFailed)
			flush("verify-failed assertion failed")
			return 1
		}
	}
	if *minResumedUnits >= 0 && cache.jobsResumedUnits < *minResumedUnits {
		fmt.Fprintf(stderr, "idemload: %d journal-resumed units below required %d (jobs were re-executed instead of resumed)\n",
			cache.jobsResumedUnits, *minResumedUnits)
		flush("resumed-units assertion failed")
		return 1
	}
	if *replicaHits {
		for _, r := range per {
			if r.c.hits == 0 {
				fmt.Fprintf(stderr, "idemload: replica %s reports zero cache hits; the ring did not spread the working set\n", r.target)
				flush("replica-hits assertion failed")
				return 1
			}
		}
	}

	flush("")
	return 0
}

// parseMix parses "compile,simulate,batch" percentage weights.
func parseMix(s string) ([3]int, error) {
	parts := strings.Split(s, ",")
	var w [3]int
	if len(parts) != 3 {
		return w, fmt.Errorf("-mix wants three comma-separated weights, got %q", s)
	}
	total := 0
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return w, fmt.Errorf("-mix weight %q must be a non-negative integer", p)
		}
		w[i] = n
		total += n
	}
	if total <= 0 {
		return w, fmt.Errorf("-mix weights must not all be zero")
	}
	return w, nil
}

// parseChaosRates parses "latency,error500,reset,truncate" percentages.
func parseChaosRates(s string) (chaos.Rates, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return chaos.Rates{}, fmt.Errorf("-chaos-rates wants four comma-separated percentages, got %q", s)
	}
	var v [4]float64
	for i, p := range parts {
		n, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || n < 0 || n > 100 {
			return chaos.Rates{}, fmt.Errorf("-chaos-rates value %q must be a percentage in [0, 100]", p)
		}
		v[i] = n / 100
	}
	return chaos.Rates{Latency: v[0], Error500: v[1], Reset: v[2], Truncate: v[3]}, nil
}

// ---------------------------------------------------------------------
// One pass: fire every request, digest bodies in index order.

type passResult struct {
	digest    uint64
	elapsed   time.Duration
	reqPerSec float64
	p50       time.Duration
	p90       time.Duration
	p99       time.Duration
	// completed counts requests that got a checked 200 before the pass
	// ended; on an interrupted pass this is the partial progress.
	completed  int
	errors     int64
	errSamples []string
}

// sender executes one request (possibly with retries/hedging behind it).
// key is the request index, feeding the deterministic jitter stream.
type sender func(ctx context.Context, key uint64, path string, body []byte) (int, []byte, error)

// makeSender builds the pass's transport: a bare ctx-aware POST, or the
// same POST wrapped in the resilience client when one is configured.
// sweepCompiles posts one /v1/compile per built-in workload with the
// paper-default options, sequentially in catalog order. requireVerified
// additionally demands each response carry verified=true — the
// end-to-end proof that a -verify-mode full daemon really validated
// every program it can build (scripts/verify_smoke.sh).
func sweepCompiles(ctx context.Context, client *http.Client, base string, requireVerified bool) (int, error) {
	n := 0
	for _, w := range workloads.All() {
		body, err := json.Marshal(&server.CompileRequest{Workload: w.Name})
		if err != nil {
			panic(err) // request structs always marshal
		}
		status, resp, err := post(ctx, client, base+"/v1/compile", body)
		if err != nil {
			return n, fmt.Errorf("sweep %s: %v", w.Name, err)
		}
		if status != http.StatusOK {
			return n, fmt.Errorf("sweep %s: status %d: %s", w.Name, status, firstLine(resp))
		}
		if requireVerified {
			var rep server.CompileReport
			if err := json.Unmarshal(resp, &rep); err != nil {
				return n, fmt.Errorf("sweep %s: decoding report: %v", w.Name, err)
			}
			if !rep.Verified {
				return n, fmt.Errorf("sweep %s: response reports verified=false under a full-verification daemon", w.Name)
			}
		}
		n++
	}
	return n, nil
}

// firstLine trims an error body to its first line for diagnostics.
func firstLine(b []byte) string {
	s := strings.TrimSpace(string(b))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}

func makeSender(client *http.Client, base string, rc *resilience.Client) sender {
	if rc == nil {
		return func(ctx context.Context, _ uint64, path string, body []byte) (int, []byte, error) {
			return post(ctx, client, base+path, body)
		}
	}
	return func(ctx context.Context, key uint64, path string, body []byte) (int, []byte, error) {
		res, err := rc.Do(ctx, key, func(ctx context.Context) (int, []byte, error) {
			return post(ctx, client, base+path, body)
		})
		return res.Status, res.Body, err
	}
}

func runPass(ctx context.Context, send sender, seed uint64, n, concurrency int, weights [3]int) passResult {
	hashes := make([]uint64, n)
	lats := make([]time.Duration, n)
	done := make([]bool, n)
	var errCount atomic.Int64
	var mu sync.Mutex
	var samples []string

	if concurrency > n {
		concurrency = n
	}
	var next atomic.Int64
	next.Store(-1)
	start := time.Now()
	var wg sync.WaitGroup
	for k := 0; k < concurrency; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || ctx.Err() != nil {
					return
				}
				path, body := genRequest(seed, i, weights)
				t0 := time.Now()
				status, resp, err := send(ctx, uint64(i), path, body)
				lats[i] = time.Since(t0)
				if err != nil || status != http.StatusOK {
					if ctx.Err() != nil && (err == nil || errors.Is(err, context.Canceled)) {
						// Interrupted mid-request: not a server failure.
						return
					}
					errCount.Add(1)
					mu.Lock()
					if len(samples) < 5 {
						msg := fmt.Sprintf("request %d %s: status %d err %v", i, path, status, err)
						if len(resp) > 0 {
							msg += " body " + strings.TrimSpace(string(resp[:min(len(resp), 200)]))
						}
						samples = append(samples, msg)
					}
					mu.Unlock()
					continue
				}
				h := fnv.New64a()
				h.Write(resp)
				hashes[i] = h.Sum64()
				done[i] = true
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Aggregate the per-request hashes in index order so the digest is
	// independent of completion order.
	agg := fnv.New64a()
	var buf [8]byte
	completed := 0
	var sorted []time.Duration
	for i, hv := range hashes {
		for b := 0; b < 8; b++ {
			buf[b] = byte(hv >> (8 * b))
		}
		agg.Write(buf[:])
		if done[i] {
			completed++
			sorted = append(sorted, lats[i])
		}
	}

	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	pct := func(p float64) time.Duration {
		if len(sorted) == 0 {
			return 0
		}
		idx := int(p * float64(len(sorted)-1))
		return sorted[idx]
	}
	rate := 0.0
	if elapsed > 0 {
		rate = float64(completed) / elapsed.Seconds()
	}
	return passResult{
		digest:     agg.Sum64(),
		elapsed:    elapsed,
		reqPerSec:  rate,
		p50:        pct(0.50),
		p90:        pct(0.90),
		p99:        pct(0.99),
		completed:  completed,
		errors:     errCount.Load(),
		errSamples: samples,
	}
}

func post(ctx context.Context, client *http.Client, url string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, b, nil
}

// ---------------------------------------------------------------------
// Deterministic request generation. genRequest is a pure function of
// (seed, index, weights): no global state, so passes and processes with
// the same seed produce byte-identical request streams.

// rng is splitmix64 — tiny, seedable, and stable across Go versions
// (math/rand's stream is not part of its compatibility promise).
type rng struct{ s uint64 }

func newRNG(seed, index uint64) *rng {
	r := &rng{s: seed ^ (index+1)*0x9e3779b97f4a7c15}
	r.next() // decorrelate nearby indices
	return r
}

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// n returns a value in [0, bound).
func (r *rng) n(bound int) int { return int(r.next() % uint64(bound)) }

// The palettes are small on purpose: a bounded request vocabulary is what
// makes the compile cache's hit ratio high and measurable.
var compileWorkloads = []string{
	"bzip2", "mcf", "hmmer", "libquantum", "milc", "lbm",
	"blackscholes", "streamcluster", "swaptions", "canneal",
}

var simWorkloads = []string{
	"bzip2", "mcf", "libquantum", "milc", "blackscholes", "swaptions",
}

var schemes = []string{"none", "dmr", "tmr", "cl", "idem"}

func boolPtr(b bool) *bool { return &b }

func genCompile(r *rng) *server.CompileRequest {
	req := &server.CompileRequest{Workload: compileWorkloads[r.n(len(compileWorkloads))]}
	switch r.n(4) {
	case 0: // paper-default idempotent construction
	case 1: // conventional compilation
		req.Options = &server.OptionsSpec{Idempotent: boolPtr(false)}
	case 2: // idempotent without redundancy elimination
		req.Options = &server.OptionsSpec{Core: &server.CoreOptionsSpec{RedElim: boolPtr(false)}}
	case 3: // bounded region size
		sizes := []int{8, 16, 32, 64}
		req.Options = &server.OptionsSpec{Core: &server.CoreOptionsSpec{MaxRegionSize: sizes[r.n(len(sizes))]}}
	}
	return req
}

func genSimulate(r *rng) *server.SimulateRequest {
	req := &server.SimulateRequest{
		Workload: simWorkloads[r.n(len(simWorkloads))],
		Scheme:   schemes[r.n(len(schemes))],
	}
	if req.Scheme == "idem" {
		req.TrackPaths = true
	}
	// Half the simulations arm a register-bit-flip fault; recovery-capable
	// schemes mask it, detection-only ones report it in the digest.
	if r.n(2) == 0 {
		req.Injections = []server.InjectionSpec{{
			Model: "reg",
			Step:  int64(100 + r.n(20000)),
			Mask:  1 << uint(r.n(32)),
		}}
	}
	return req
}

func genRequest(seed uint64, index int, weights [3]int) (string, []byte) {
	r := newRNG(seed, uint64(index))
	total := weights[0] + weights[1] + weights[2]
	roll := r.n(total)
	var (
		path string
		req  any
	)
	switch {
	case roll < weights[0]:
		path, req = "/v1/compile", genCompile(r)
	case roll < weights[0]+weights[1]:
		path, req = "/v1/simulate", genSimulate(r)
	default:
		units := make([]server.BatchUnit, 2+r.n(3))
		for i := range units {
			if r.n(2) == 0 {
				units[i].Compile = genCompile(r)
			} else {
				units[i].Simulate = genSimulate(r)
			}
		}
		path, req = "/v1/batch", &server.BatchRequest{Units: units}
	}
	b, err := json.Marshal(req)
	if err != nil {
		panic(err) // request structs always marshal
	}
	return path, b
}

// ---------------------------------------------------------------------
// /metrics scrape (Prometheus text format; cache and preemption
// counters only).

type serverCounters struct {
	hits, misses, evictions int64
	compiles                int64
	simPreempted            int64
	diskHits, diskMisses    int64
	diskWrites, diskCorrupt int64
	jobsResumed             int64
	jobsResumedUnits        int64
	verifyChecked           int64
	verifyFailed            int64
	verifyRejected          int64
	verifyNanos             int64
}

func (c serverCounters) hitRatio() float64 {
	if c.hits+c.misses == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.hits+c.misses)
}

// diskHitRatio is disk hits over disk lookups (hits + misses; corrupt
// artifacts are part of the misses).
func (c serverCounters) diskHitRatio() float64 {
	if c.diskHits+c.diskMisses == 0 {
		return 0
	}
	return float64(c.diskHits) / float64(c.diskHits+c.diskMisses)
}

// replicaScrape is one target's scrape outcome, kept separate so
// failures stay visible instead of vanishing into a partial sum.
type replicaScrape struct {
	target string
	c      serverCounters
	err    error
}

// scrapeFleet scrapes every target and sums the counters. The error
// count is explicit: callers decide whether a partial fleet view is
// acceptable (the JSON summary reports it as scrape_errors either way).
func scrapeFleet(client *http.Client, targets []string) (serverCounters, []replicaScrape, int) {
	var total serverCounters
	per := make([]replicaScrape, 0, len(targets))
	errs := 0
	for _, tgt := range targets {
		c, err := scrapeServer(client, "http://"+tgt)
		per = append(per, replicaScrape{target: tgt, c: c, err: err})
		if err != nil {
			errs++
			continue
		}
		total.hits += c.hits
		total.misses += c.misses
		total.evictions += c.evictions
		total.compiles += c.compiles
		total.simPreempted += c.simPreempted
		total.diskHits += c.diskHits
		total.diskMisses += c.diskMisses
		total.diskWrites += c.diskWrites
		total.diskCorrupt += c.diskCorrupt
		total.jobsResumed += c.jobsResumed
		total.jobsResumedUnits += c.jobsResumedUnits
		total.verifyChecked += c.verifyChecked
		total.verifyFailed += c.verifyFailed
		total.verifyRejected += c.verifyRejected
		total.verifyNanos += c.verifyNanos
	}
	return total, per, errs
}

func scrapeServer(client *http.Client, base string) (serverCounters, error) {
	var out serverCounters
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("/metrics: status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		for _, m := range []struct {
			name string
			dst  *int64
		}{
			{"idemd_buildcache_hits_total ", &out.hits},
			{"idemd_buildcache_misses_total ", &out.misses},
			{"idemd_buildcache_evictions_total ", &out.evictions},
			{"idemd_buildcache_compiles_total ", &out.compiles},
			{"idemd_buildcache_disk_hits_total ", &out.diskHits},
			{"idemd_buildcache_disk_misses_total ", &out.diskMisses},
			{"idemd_buildcache_disk_writes_total ", &out.diskWrites},
			{"idemd_buildcache_disk_corrupt_total ", &out.diskCorrupt},
			{"idemd_sim_preempted_total ", &out.simPreempted},
			{"idemd_jobs_resumed_total ", &out.jobsResumed},
			{"idemd_jobs_resumed_units_total ", &out.jobsResumedUnits},
			{"idemd_verify_checked_total ", &out.verifyChecked},
			{"idemd_verify_failed_total ", &out.verifyFailed},
			{"idemd_verify_rejected_artifacts_total ", &out.verifyRejected},
			{"idemd_verify_nanos_total ", &out.verifyNanos},
		} {
			if v, ok := strings.CutPrefix(line, m.name); ok {
				n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
				if err != nil {
					return out, fmt.Errorf("parsing %q: %v", line, err)
				}
				*m.dst = n
			}
		}
	}
	return out, sc.Err()
}
