// The -jobs campaign: instead of firing the request mix, submit one
// deterministic batch via POST /v1/jobs and consume its results
// incrementally — cursor long-polls by default, the NDJSON stream with
// -stream. The client is built to survive the server being killed and
// restarted mid-job: submits retry, polls ride out transport errors,
// broken streams reconnect at the cursor, and the reconstructed
// response must still be byte-identical to a /v1/batch run (that is
// the journal-resume contract end to end, and what jobs_smoke.sh
// drives with a kill -9).
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"time"

	"idemproc/internal/jobs"
	"idemproc/internal/server"
)

// jobProgressBudget is how long the consume loop tolerates zero
// progress (daemon down, job parked) before giving up. It spans a
// kill + restart + recovery cycle with a wide margin.
const jobProgressBudget = 90 * time.Second

// jobSlowSource is a content-key-diverse, deliberately slow workload
// for -job-sim-steps campaigns: big step counts leave the kill window
// the resume smoke test needs.
func jobSlowSource(i int) string {
	return fmt.Sprintf("func main(int n) int {\n\tint s = %d;\n\tint t = 1;\n\tfor (int i = 0; i < n; i = i + 1) { s = s + i; t = t + s; }\n\treturn s + t;\n}\n", i)
}

// genJobBatch builds the campaign body: a pure function of (seed, n,
// simSteps), so two runs with the same flags submit identical bytes —
// which is what lets a restarted campaign assert -expect-digest.
func genJobBatch(seed uint64, n int, simSteps int64) []byte {
	units := make([]server.BatchUnit, n)
	for i := range units {
		r := newRNG(seed^0xa5a5a5a5a5a5a5a5, uint64(i))
		if simSteps > 0 {
			units[i].Simulate = &server.SimulateRequest{
				Source: jobSlowSource(i % 8),
				Args:   []uint64{uint64(simSteps) + uint64(i%8)},
			}
			continue
		}
		if r.n(3) == 0 {
			units[i].Simulate = genSimulate(r)
		} else {
			units[i].Compile = genCompile(r)
		}
	}
	b, err := json.Marshal(&server.BatchRequest{Units: units})
	if err != nil {
		panic(err) // request structs always marshal
	}
	return b
}

// jobsCampaignResult is what the campaign reports into the summary.
type jobsCampaignResult struct {
	jobID         string
	units         int
	digest        uint64
	body          []byte // reconstructed {"results":[...]}\n
	submitRetries int
	pollRetries   int
	streamResumes int
	verifiedBatch bool
}

// runJobsCampaign drives one job to completion. Every transient
// failure retries under the progress budget; only a terminal job state
// (canceled/failed), a vanished handle, or a dry budget is fatal.
func runJobsCampaign(ctx context.Context, client *http.Client, base string, body []byte,
	stream bool, idFile string, quiet bool, stdout io.Writer) (jobsCampaignResult, error) {
	var res jobsCampaignResult

	// Submit with retry: the daemon may be shedding (429) or restarting.
	deadline := time.Now().Add(jobProgressBudget)
	var sub server.SubmitResponse
	for {
		status, resp, err := post(ctx, client, base+"/v1/jobs", body)
		if err == nil && status == http.StatusOK {
			if err := json.Unmarshal(resp, &sub); err != nil {
				return res, fmt.Errorf("submit: malformed response: %v", err)
			}
			break
		}
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("submit: no success within %s (last: status %d err %v)", jobProgressBudget, status, err)
		}
		res.submitRetries++
		time.Sleep(500 * time.Millisecond)
	}
	res.jobID, res.units = sub.ID, sub.Units
	if !quiet {
		fmt.Fprintf(stdout, "job %s: %d units submitted\n", sub.ID, sub.Units)
	}
	if idFile != "" {
		// Write-then-rename so the smoke script never reads a partial id.
		tmp := idFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(sub.ID+"\n"), 0o644); err != nil {
			return res, fmt.Errorf("job-id-file: %v", err)
		}
		if err := os.Rename(tmp, idFile); err != nil {
			return res, fmt.Errorf("job-id-file: %v", err)
		}
	}

	var lines [][]byte
	var err error
	if stream {
		lines, err = consumeStream(ctx, base, sub, &res, quiet, stdout)
	} else {
		lines, err = consumePolls(ctx, client, base, sub, &res, quiet, stdout)
	}
	if err != nil {
		return res, err
	}
	if len(lines) != sub.Units {
		return res, fmt.Errorf("job %s: %d results for %d units", sub.ID, len(lines), sub.Units)
	}

	// Reconstruct the equivalent /v1/batch body and digest it — the same
	// FNV-64a the request-mix passes use, so -expect-digest composes.
	res.body = append(append([]byte(`{"results":[`), bytes.Join(lines, []byte(","))...), []byte("]}\n")...)
	h := fnv.New64a()
	h.Write(res.body)
	res.digest = h.Sum64()
	return res, nil
}

// consumePolls drives GET /v1/jobs/{id}?cursor=N&wait=... to the end.
func consumePolls(ctx context.Context, client *http.Client, base string, sub server.SubmitResponse,
	res *jobsCampaignResult, quiet bool, stdout io.Writer) ([][]byte, error) {
	var lines [][]byte
	cursor := 0
	lastProgress := time.Now()
	for {
		url := fmt.Sprintf("%s/v1/jobs/%s?cursor=%d&wait=10000", base, sub.ID, cursor)
		status, resp, err := httpGet(ctx, client, url)
		if ctx.Err() != nil {
			return lines, ctx.Err()
		}
		if err != nil || status != http.StatusOK {
			if status == http.StatusNotFound {
				return lines, fmt.Errorf("job %s vanished: the journal did not survive the restart", sub.ID)
			}
			if time.Since(lastProgress) > jobProgressBudget {
				return lines, fmt.Errorf("job %s: no progress within %s (last: status %d err %v)", sub.ID, jobProgressBudget, status, err)
			}
			res.pollRetries++
			time.Sleep(500 * time.Millisecond)
			continue
		}
		var rep jobs.PollResponse
		if err := json.Unmarshal(resp, &rep); err != nil {
			return lines, fmt.Errorf("job %s: malformed poll response: %v", sub.ID, err)
		}
		for _, r := range rep.Results {
			lines = append(lines, []byte(r))
		}
		if len(rep.Results) > 0 {
			cursor = rep.NextCursor
			lastProgress = time.Now()
			if !quiet {
				fmt.Fprintf(stdout, "job %s: %d/%d results\n", sub.ID, cursor, sub.Units)
			}
		}
		switch rep.State {
		case "done":
			if cursor >= sub.Units {
				return lines, nil
			}
		case "canceled", "failed":
			return lines, fmt.Errorf("job %s ended %s: %s", sub.ID, rep.State, rep.Error)
		}
	}
}

// consumeStream drives GET /v1/jobs/{id}/stream, reconnecting at the
// cursor whenever the stream breaks (server restart, connection loss).
// The stream client carries no request timeout — a healthy stream can
// legitimately outlive any fixed bound; ctx still cancels it.
func consumeStream(ctx context.Context, base string, sub server.SubmitResponse,
	res *jobsCampaignResult, quiet bool, stdout io.Writer) ([][]byte, error) {
	client := &http.Client{}
	var lines [][]byte
	lastProgress := time.Now()
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			res.streamResumes++
			time.Sleep(500 * time.Millisecond)
		}
		if ctx.Err() != nil {
			return lines, ctx.Err()
		}
		if time.Since(lastProgress) > jobProgressBudget {
			return lines, fmt.Errorf("job %s: no stream progress within %s", sub.ID, jobProgressBudget)
		}
		url := fmt.Sprintf("%s/v1/jobs/%s/stream?cursor=%d", base, sub.ID, len(lines))
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return lines, err
		}
		resp, err := client.Do(req)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusNotFound {
				return lines, fmt.Errorf("job %s vanished: the journal did not survive the restart", sub.ID)
			}
			continue
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			lines = append(lines, append([]byte(nil), line...))
			lastProgress = time.Now()
		}
		resp.Body.Close()
		if !quiet {
			fmt.Fprintf(stdout, "job %s: %d/%d results (stream attempt %d)\n", sub.ID, len(lines), sub.Units, attempt+1)
		}
		if len(lines) >= sub.Units {
			return lines, nil
		}
		// Short stream: either the connection broke (reconnect at the
		// cursor) or the job went terminal early — one poll tells which.
		status, resp2, err := httpGet(ctx, client, fmt.Sprintf("%s/v1/jobs/%s?cursor=%d", base, sub.ID, len(lines)))
		if err == nil && status == http.StatusOK {
			var rep jobs.PollResponse
			if json.Unmarshal(resp2, &rep) == nil && (rep.State == "canceled" || rep.State == "failed") {
				return lines, fmt.Errorf("job %s ended %s: %s", sub.ID, rep.State, rep.Error)
			}
		}
	}
}

// verifyAgainstBatch POSTs the same body to /v1/batch and asserts the
// reconstructed job results match it byte for byte — the determinism
// contract the whole subsystem hangs off.
func verifyAgainstBatch(ctx context.Context, client *http.Client, base string, body []byte, res *jobsCampaignResult) error {
	status, resp, err := post(ctx, client, base+"/v1/batch", body)
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("verify batch: status %d err %v", status, err)
	}
	if !bytes.Equal(resp, res.body) {
		return fmt.Errorf("job reconstruction diverges from /v1/batch (job %d bytes, batch %d bytes)", len(res.body), len(resp))
	}
	res.verifiedBatch = true
	return nil
}

// httpGet is post's GET sibling.
func httpGet(ctx context.Context, client *http.Client, url string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, b, nil
}
