// Command idembench regenerates the paper's tables and figures over the
// workload suite and prints them as text tables. Build/run units fan out
// over a worker pool with a shared compile cache (see docs/experiments.md),
// and output is byte-identical for any -workers value.
//
//	idembench -all                        # everything
//	idembench -all -workers 8 -timing     # parallel, with a stage breakdown
//	idembench -fig10 -fig12               # selected figures
//	idembench -fig4 -suite "SPEC INT"
//
// A failing figure does not abort the run: every other figure still
// prints, the error (naming the culprit workload) goes to stderr, and the
// exit status is nonzero.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"idemproc/internal/experiments"
	"idemproc/internal/fault"
	"idemproc/internal/workloads"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// figure is one runnable experiment: a flag name plus a driver returning
// the formatted table.
type figure struct {
	name string
	on   bool
	run  func(e *experiments.Engine) (string, error)
}

// realMain is main with injectable args and streams, so tests can assert
// on output bytes, error collection and exit codes.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("idembench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		all     = fs.Bool("all", false, "run every experiment")
		fig4    = fs.Bool("fig4", false, "Figure 4: limit study")
		fig8    = fs.Bool("fig8", false, "Figure 8: path length CDF")
		fig9    = fs.Bool("fig9", false, "Figure 9: constructed vs ideal paths")
		fig10   = fs.Bool("fig10", false, "Figure 10: compilation overheads")
		fig11   = fs.Bool("fig11", false, "Figure 11: recovery transforms")
		fig12   = fs.Bool("fig12", false, "Figure 12: recovery overheads")
		table2  = fs.Bool("table2", false, "Table 2: antidependence classification")
		chars   = fs.Bool("characteristics", false, "static region characteristics")
		ablate  = fs.Bool("ablations", false, "design-choice ablations")
		sweep   = fs.Bool("sweep", false, "region-size trade-off sweep (§6.2)")
		resil   = fs.Bool("resilience", false, "fault-injection resilience table (§6.3, see docs/faultengine.md)")
		rruns   = fs.Int("resilience-runs", 100, "injection runs per (workload, scheme) campaign")
		rseed   = fs.Uint64("resilience-seed", fault.DefaultSeed, "campaign seed (tables reproduce exactly from it)")
		suite   = fs.String("suite", "", "restrict to one suite (SPEC INT, SPEC FP, PARSEC)")
		bench   = fs.String("workload", "", "restrict to one workload by name")
		workers = fs.Int("workers", 0, "worker-pool width for build/run units (0 = GOMAXPROCS); output is identical for any value")
		timing  = fs.Bool("timing", false, "print a per-stage wall-time breakdown (compile vs simulate, cache hits)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ws := workloads.All()
	if *suite != "" {
		ws = workloads.BySuite(workloads.Suite(*suite))
		if len(ws) == 0 {
			fmt.Fprintf(stderr, "unknown suite %q\n", *suite)
			return 1
		}
	}
	if *bench != "" {
		w, ok := workloads.ByName(*bench)
		if !ok {
			fmt.Fprintf(stderr, "unknown workload %q\n", *bench)
			return 1
		}
		ws = []workloads.Workload{w}
	}

	figures := []figure{
		{"table2", *all || *table2, func(e *experiments.Engine) (string, error) {
			rows, err := e.Table2(ws)
			if err != nil {
				return "", err
			}
			return experiments.FormatTable2(rows), nil
		}},
		{"fig4", *all || *fig4, func(e *experiments.Engine) (string, error) {
			res, err := e.Fig4(ws)
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		}},
		{"fig8", *all || *fig8, func(e *experiments.Engine) (string, error) {
			rows, err := e.Fig8(ws)
			if err != nil {
				return "", err
			}
			return experiments.FormatFig8(rows), nil
		}},
		{"fig9", *all || *fig9, func(e *experiments.Engine) (string, error) {
			res, err := e.Fig9(ws)
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		}},
		{"fig10", *all || *fig10, func(e *experiments.Engine) (string, error) {
			res, err := e.Fig10(ws)
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		}},
		{"fig11", *all || *fig11, func(e *experiments.Engine) (string, error) {
			return experiments.Fig11(), nil
		}},
		{"fig12", *all || *fig12, func(e *experiments.Engine) (string, error) {
			res, err := e.Fig12(ws)
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		}},
		{"characteristics", *all || *chars, func(e *experiments.Engine) (string, error) {
			rows, err := e.Characteristics(ws)
			if err != nil {
				return "", err
			}
			return experiments.FormatCharacteristics(rows), nil
		}},
		{"ablations", *all || *ablate, runAblations(ws)},
		{"sweep", *all || *sweep, runSweep(ws, *bench)},
		// -resilience is opt-in only (not part of -all): campaigns run
		// 4 schemes × N injections per workload and dominate the runtime.
		{"resilience", *resil, func(e *experiments.Engine) (string, error) {
			res, err := e.Resilience(context.Background(), ws, *rruns, *rseed)
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		}},
	}

	e := experiments.NewEngine(*workers)
	ran := false
	type failure struct {
		name string
		err  error
	}
	var failures []failure
	for _, f := range figures {
		if !f.on {
			continue
		}
		ran = true
		out, err := f.run(e)
		if err != nil {
			// Collect and keep going: one broken workload/figure must not
			// discard every table that already computed.
			failures = append(failures, failure{f.name, err})
			continue
		}
		fmt.Fprintln(stdout, out)
	}

	if !ran {
		fs.Usage()
		return 2
	}
	if *timing {
		fmt.Fprintln(stdout, e.Timing().Format())
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(stderr, "idembench: %s: %v\n", f.name, f.err)
		}
		fmt.Fprintf(stderr, "idembench: %d of %d requested experiments failed\n", len(failures), countOn(figures))
		return 1
	}
	return 0
}

func countOn(figures []figure) int {
	n := 0
	for _, f := range figures {
		if f.on {
			n++
		}
	}
	return n
}

// runAblations bundles the five design-choice ablations into one figure.
func runAblations(ws []workloads.Workload) func(e *experiments.Engine) (string, error) {
	return func(e *experiments.Engine) (string, error) {
		var b []byte
		appendTable := func(s string) { b = append(b, s...); b = append(b, '\n') }
		if rows, err := e.AblationLoopHeuristic(ws); err != nil {
			return "", err
		} else {
			appendTable(experiments.FormatAblation("Ablation: §4.3 loop heuristic (avg dynamic path length)", "heuristic on", "off", rows))
		}
		if rows, err := e.AblationUnroll(ws); err != nil {
			return "", err
		} else {
			appendTable(experiments.FormatAblation("Ablation: §5 loop unroll (avg dynamic path length)", "unroll on", "off", rows))
		}
		if rows, err := e.AblationRedElim(ws); err != nil {
			return "", err
		} else {
			appendTable(experiments.FormatAblation("Ablation: Fig. 5 redundancy elimination (cuts placed)", "redelim on", "off", rows))
		}
		if rows, err := e.AblationRegalloc(ws); err != nil {
			return "", err
		} else {
			appendTable(experiments.FormatAblation("Ablation: §4.4 allocation constraint (cycles)", "constrained", "relaxed", rows))
		}
		if rows, err := e.AblationPureCalls(ws); err != nil {
			return "", err
		} else {
			appendTable(experiments.FormatAblation("Ablation: pure-call extension (avg dynamic path length)", "pure-calls on", "off", rows))
		}
		// Trim the final extra newline: each table is printed with
		// Fprintln by the caller.
		if n := len(b); n > 0 && b[n-1] == '\n' {
			b = b[:n-1]
		}
		return string(b), nil
	}
}

// runSweep renders the §6.2 region-size sweep for the representative
// workloads (or the explicitly selected one).
func runSweep(ws []workloads.Workload, bench string) func(e *experiments.Engine) (string, error) {
	return func(e *experiments.Engine) (string, error) {
		var out string
		first := true
		for _, w := range ws {
			if w.Name != "gcc" && w.Name != "lbm" && bench == "" {
				continue // the sweep is per-workload; show two representatives
			}
			pts, err := e.RegionSizeSweep(w, []int{0, 128, 32, 8, 4})
			if err != nil {
				return "", err
			}
			if !first {
				out += "\n"
			}
			first = false
			out += experiments.FormatSweep(w.Name, pts)
		}
		if out == "" {
			return "", fmt.Errorf("sweep: no representative workload in selection (use -workload)")
		}
		// Trim trailing newline; the caller Fprintln's.
		if n := len(out); n > 0 && out[n-1] == '\n' {
			out = out[:n-1]
		}
		return out, nil
	}
}
