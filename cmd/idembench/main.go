// Command idembench regenerates the paper's tables and figures over the
// workload suite and prints them as text tables.
//
//	idembench -all                 # everything
//	idembench -fig10 -fig12        # selected figures
//	idembench -fig4 -suite "SPEC INT"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"idemproc/internal/experiments"
	"idemproc/internal/fault"
	"idemproc/internal/workloads"
)

func main() {
	var (
		all    = flag.Bool("all", false, "run every experiment")
		fig4   = flag.Bool("fig4", false, "Figure 4: limit study")
		fig8   = flag.Bool("fig8", false, "Figure 8: path length CDF")
		fig9   = flag.Bool("fig9", false, "Figure 9: constructed vs ideal paths")
		fig10  = flag.Bool("fig10", false, "Figure 10: compilation overheads")
		fig11  = flag.Bool("fig11", false, "Figure 11: recovery transforms")
		fig12  = flag.Bool("fig12", false, "Figure 12: recovery overheads")
		table2 = flag.Bool("table2", false, "Table 2: antidependence classification")
		chars  = flag.Bool("characteristics", false, "static region characteristics")
		ablate = flag.Bool("ablations", false, "design-choice ablations")
		sweep  = flag.Bool("sweep", false, "region-size trade-off sweep (§6.2)")
		resil  = flag.Bool("resilience", false, "fault-injection resilience table (§6.3, see docs/faultengine.md)")
		rruns  = flag.Int("resilience-runs", 100, "injection runs per (workload, scheme) campaign")
		rseed  = flag.Uint64("resilience-seed", fault.DefaultSeed, "campaign seed (tables reproduce exactly from it)")
		suite  = flag.String("suite", "", "restrict to one suite (SPEC INT, SPEC FP, PARSEC)")
		bench  = flag.String("workload", "", "restrict to one workload by name")
	)
	flag.Parse()

	ws := workloads.All()
	if *suite != "" {
		ws = workloads.BySuite(workloads.Suite(*suite))
		if len(ws) == 0 {
			fmt.Fprintf(os.Stderr, "unknown suite %q\n", *suite)
			os.Exit(1)
		}
	}
	if *bench != "" {
		w, ok := workloads.ByName(*bench)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *bench)
			os.Exit(1)
		}
		ws = []workloads.Workload{w}
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "idembench:", err)
		os.Exit(1)
	}
	ran := false

	if *all || *table2 {
		ran = true
		rows, err := experiments.Table2(ws)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatTable2(rows))
	}
	if *all || *fig4 {
		ran = true
		res, err := experiments.Fig4(ws)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Format())
	}
	if *all || *fig8 {
		ran = true
		rows, err := experiments.Fig8(ws)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatFig8(rows))
	}
	if *all || *fig9 {
		ran = true
		res, err := experiments.Fig9(ws)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Format())
	}
	if *all || *fig10 {
		ran = true
		res, err := experiments.Fig10(ws)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Format())
	}
	if *all || *fig11 {
		ran = true
		fmt.Println(experiments.Fig11())
	}
	if *all || *fig12 {
		ran = true
		res, err := experiments.Fig12(ws)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Format())
	}
	if *all || *chars {
		ran = true
		rows, err := experiments.Characteristics(ws)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatCharacteristics(rows))
	}
	if *all || *ablate {
		ran = true
		if rows, err := experiments.AblationLoopHeuristic(ws); err != nil {
			fail(err)
		} else {
			fmt.Println(experiments.FormatAblation("Ablation: §4.3 loop heuristic (avg dynamic path length)", "heuristic on", "off", rows))
		}
		if rows, err := experiments.AblationUnroll(ws); err != nil {
			fail(err)
		} else {
			fmt.Println(experiments.FormatAblation("Ablation: §5 loop unroll (avg dynamic path length)", "unroll on", "off", rows))
		}
		if rows, err := experiments.AblationRedElim(ws); err != nil {
			fail(err)
		} else {
			fmt.Println(experiments.FormatAblation("Ablation: Fig. 5 redundancy elimination (cuts placed)", "redelim on", "off", rows))
		}
		if rows, err := experiments.AblationRegalloc(ws); err != nil {
			fail(err)
		} else {
			fmt.Println(experiments.FormatAblation("Ablation: §4.4 allocation constraint (cycles)", "constrained", "relaxed", rows))
		}
		if rows, err := experiments.AblationPureCalls(ws); err != nil {
			fail(err)
		} else {
			fmt.Println(experiments.FormatAblation("Ablation: pure-call extension (avg dynamic path length)", "pure-calls on", "off", rows))
		}
	}

	if *all || *sweep {
		ran = true
		for _, w := range ws {
			if w.Name != "gcc" && w.Name != "lbm" && *bench == "" {
				continue // the sweep is per-workload; show two representatives
			}
			pts, err := experiments.RegionSizeSweep(w, []int{0, 128, 32, 8, 4})
			if err != nil {
				fail(err)
			}
			fmt.Println(experiments.FormatSweep(w.Name, pts))
		}
	}

	// -resilience is opt-in only (not part of -all): campaigns run
	// 4 schemes × N injections per workload and dominate the runtime.
	if *resil {
		ran = true
		res, err := experiments.Resilience(context.Background(), ws, *rruns, *rseed)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Format())
	}

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
