package main

import (
	"bytes"
	"strings"
	"testing"
)

// runMain invokes realMain with captured streams.
func runMain(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = realMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestOutputByteIdenticalAcrossWorkers is the determinism contract test:
// the same figure selection must produce byte-identical stdout for a
// serial and a wide worker pool. It exercises both a build-only table
// and a build+simulate figure over a multi-workload suite so the
// parallel fan-out actually reorders completion.
func TestOutputByteIdenticalAcrossWorkers(t *testing.T) {
	sel := []string{"-table2", "-fig10", "-suite", "PARSEC"}
	code1, out1, err1 := runMain(t, append([]string{"-workers", "1"}, sel...)...)
	if code1 != 0 {
		t.Fatalf("-workers 1 exited %d, stderr:\n%s", code1, err1)
	}
	code8, out8, err8 := runMain(t, append([]string{"-workers", "8"}, sel...)...)
	if code8 != 0 {
		t.Fatalf("-workers 8 exited %d, stderr:\n%s", code8, err8)
	}
	if out1 != out8 {
		t.Fatalf("stdout differs between -workers 1 and -workers 8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", out1, out8)
	}
	if out1 == "" {
		t.Fatal("no output produced")
	}
}

// TestErrorCollectionKeepsCompletedTables checks the failure path: one
// failing figure must not discard the tables that computed, must name
// itself on stderr, and the process must exit nonzero.
func TestErrorCollectionKeepsCompletedTables(t *testing.T) {
	// -sweep has no representative workload inside PARSEC, so it fails
	// while -table2 succeeds.
	code, stdout, stderr := runMain(t, "-table2", "-sweep", "-suite", "PARSEC")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "Table 2") {
		t.Errorf("completed Table 2 missing from stdout:\n%s", stdout)
	}
	if !strings.Contains(stderr, "idembench: sweep:") {
		t.Errorf("stderr does not name the failing figure:\n%s", stderr)
	}
	if !strings.Contains(stderr, "1 of 2 requested experiments failed") {
		t.Errorf("stderr missing failure summary:\n%s", stderr)
	}
}

// TestTimingBreakdown checks -timing appends the stage breakdown after
// the figures (timing values are wall-clock and intentionally outside
// the byte-identical contract).
func TestTimingBreakdown(t *testing.T) {
	code, stdout, stderr := runMain(t, "-table2", "-workload", "mcf", "-workers", "4", "-timing")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	for _, want := range []string{"compile:", "build cache", "distinct"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("timing breakdown missing %q:\n%s", want, stdout)
		}
	}
}

// TestUsageAndSelectionErrors covers the flag/selection error exits.
func TestUsageAndSelectionErrors(t *testing.T) {
	if code, _, _ := runMain(t); code != 2 {
		t.Errorf("no figure selected: exit %d, want 2", code)
	}
	if code, _, stderr := runMain(t, "-table2", "-suite", "NOPE"); code != 1 || !strings.Contains(stderr, "unknown suite") {
		t.Errorf("unknown suite: exit %d, stderr %q", code, stderr)
	}
	if code, _, stderr := runMain(t, "-table2", "-workload", "nope"); code != 1 || !strings.Contains(stderr, "unknown workload") {
		t.Errorf("unknown workload: exit %d, stderr %q", code, stderr)
	}
	if code, _, _ := runMain(t, "-no-such-flag"); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}
