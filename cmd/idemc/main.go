// Command idemc is the compiler driver: it compiles an idc source file
// (or a built-in workload) and shows what the idempotent-processing
// pipeline does to it.
//
//	idemc -src prog.idc -dump-regions        # region decomposition per function
//	idemc -workload mcf -disasm -idem        # idempotent machine code
//	idemc -src prog.idc -dump-ir             # IR after the §4.1 transforms
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/ir"
	"idemproc/internal/lang"
	"idemproc/internal/verify"
	"idemproc/internal/workloads"
)

func main() {
	var (
		srcPath  = flag.String("src", "", "idc source file to compile")
		workload = flag.String("workload", "", "built-in workload name instead of -src")
		main_    = flag.String("main", "main", "entry function")
		mem      = flag.Int("mem", 65536, "memory words to link for")
		idem     = flag.Bool("idem", true, "idempotent compilation (false: conventional)")
		regions  = flag.Bool("dump-regions", false, "print the region decomposition per function")
		dot      = flag.Bool("dot", false, "emit the region decomposition as Graphviz dot")
		dumpIR   = flag.Bool("dump-ir", false, "print the transformed IR")
		disasm   = flag.Bool("disasm", false, "print the linked machine code")
		noLoop   = flag.Bool("no-loop-heuristic", false, "disable the §4.3 loop heuristic")
		noUnroll = flag.Bool("no-unroll", false, "disable the §5 loop unroll")
		verifyP  = flag.Bool("verify", false, "re-check the compiled program against the §2.1 criterion with the translation validator; violations exit 1")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "idemc:", err)
		os.Exit(1)
	}

	var mod *ir.Module
	switch {
	case *srcPath != "":
		data, err := os.ReadFile(*srcPath)
		if err != nil {
			fail(err)
		}
		mod, err = lang.Compile(string(data))
		if err != nil {
			fail(err)
		}
	case *workload != "":
		w, ok := workloads.ByName(*workload)
		if !ok {
			fail(fmt.Errorf("unknown workload %q", *workload))
		}
		mod = w.Module()
	default:
		flag.Usage()
		os.Exit(2)
	}

	opts := core.DefaultOptions()
	opts.LoopHeuristic = !*noLoop
	opts.UnrollLoops = !*noUnroll

	if *regions || *dot {
		for _, f := range mod.Funcs {
			res, err := core.Construct(f, opts)
			if err != nil {
				fail(err)
			}
			if *dot {
				fmt.Println(core.DotRegions(res))
			} else {
				fmt.Println(core.DumpRegions(res))
			}
		}
		return
	}

	p, st, err := codegen.CompileModuleOpts(mod, *main_, *mem, codegen.ModuleOptions{Idempotent: *idem, Core: opts})
	if err != nil {
		fail(err)
	}
	if *dumpIR {
		fmt.Println(ir.ModuleString(mod))
	}
	var rep *verify.Report
	if *verifyP {
		rep = verify.Verify(p)
	}
	if *disasm {
		fmt.Println(codegen.DisassembleAnnotated(p, rep.Annotations()))
	}
	fmt.Printf("compiled: %d instructions, %d region marks, %d spill loads, %d spill stores\n",
		st.StaticInstrs, st.Marks, st.SpillLoads, st.SpillStores)
	names := make([]string, 0, len(st.Construction))
	for name := range st.Construction {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		res := st.Construction[name]
		fmt.Printf("  @%s: %d instrs, %d regions (avg %.1f instrs), %d antideps cut, %d loops unrolled\n",
			name, res.Stats.Instructions, res.Stats.RegionCount, res.Stats.AvgRegionSize,
			res.Stats.AntidepsCut, res.Stats.LoopsUnrolled)
	}
	if rep != nil {
		fmt.Println(rep.Summary())
		if !rep.OK() {
			fmt.Fprint(os.Stderr, rep.Render(p))
			os.Exit(1)
		}
	}
}
