// Command idemsim runs compiled programs on the machine simulator, with
// optional fault injection and a choice of recovery scheme.
//
//	idemsim -workload mcf                       # conventional run + stats
//	idemsim -workload mcf -scheme idem          # idempotence-based recovery
//	idemsim -workload mcf -scheme idem -faults 25
//	idemsim -src prog.idc -args 100 -scheme cl
//
// Campaigns are parallel, seeded and resumable (see docs/faultengine.md):
//
//	idemsim -workload mcf -scheme idem -campaign 500 -seed 7 -models all \
//	        -workers 8 -checkpoint mcf.ckpt.json -json mcf.json
//	idemsim ... -campaign 500 -seed 7 -checkpoint mcf.ckpt.json -resume
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/fault"
	"idemproc/internal/lang"
	"idemproc/internal/machine"
	"idemproc/internal/workloads"
)

func main() {
	var (
		srcPath  = flag.String("src", "", "idc source file")
		workload = flag.String("workload", "", "built-in workload name")
		argsStr  = flag.String("args", "", "comma-separated integer args to main (defaults to the workload's)")
		mem      = flag.Int("mem", 65536, "memory words")
		scheme   = flag.String("scheme", "none", "recovery scheme: none, dmr, tmr, cl, idem")
		faults   = flag.Int("faults", 0, "inject N single-bit faults spread over the execution")
		branches = flag.Int("branch-faults", 0, "inject N control-flow errors (wrong-direction branches)")
		campaign = flag.Int("campaign", 0, "run an N-injection campaign and report the aggregate")
		paths    = flag.Bool("paths", false, "report dynamic region path statistics")

		seed       = flag.Uint64("seed", fault.DefaultSeed, "campaign PRNG seed (campaigns replay exactly from it)")
		workers    = flag.Int("workers", 0, "campaign worker pool size (0 = GOMAXPROCS)")
		models     = flag.String("models", "reg", "comma-separated campaign fault models: reg,burst,mem,cf,boundary,nested or 'all'")
		jsonOut    = flag.String("json", "", "write the campaign aggregate as JSON to this file ('-' for stdout)")
		records    = flag.Bool("records", false, "include per-run records in the JSON aggregate")
		checkpoint = flag.String("checkpoint", "", "campaign checkpoint file (written periodically; enables -resume)")
		ckptEvery  = flag.Int("checkpoint-every", 50, "completed runs between checkpoint writes")
		resume     = flag.Bool("resume", false, "resume the campaign from -checkpoint, skipping completed runs")
		timeout    = flag.Duration("timeout", 0, "abort the campaign after this duration (0 = none); a checkpoint is written on abort")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "idemsim:", err)
		os.Exit(1)
	}

	var (
		src      string
		runArgs  []uint64
		memWords = *mem
	)
	switch {
	case *workload != "":
		w, ok := workloads.ByName(*workload)
		if !ok {
			fail(fmt.Errorf("unknown workload %q", *workload))
		}
		src = w.Source
		runArgs = w.Args
		memWords = w.MemWords
	case *srcPath != "":
		data, err := os.ReadFile(*srcPath)
		if err != nil {
			fail(err)
		}
		src = string(data)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if *argsStr != "" {
		runArgs = nil
		for _, f := range strings.Split(*argsStr, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
			if err != nil {
				fail(err)
			}
			runArgs = append(runArgs, v)
		}
	}

	mod, err := lang.Compile(src)
	if err != nil {
		fail(err)
	}

	idem := *scheme == "idem"
	p, _, err := codegen.CompileModule(mod, "main", memWords, idem, core.DefaultOptions())
	if err != nil {
		fail(err)
	}

	cfg := machine.Config{TrackPaths: *paths || idem}
	var schemeID fault.Scheme
	hasScheme := true
	switch *scheme {
	case "none":
		hasScheme = false
	case "dmr":
		schemeID = fault.SchemeDMR
		p = fault.Apply(p, schemeID)
	case "tmr":
		schemeID = fault.SchemeTMR
		p = fault.Apply(p, schemeID)
		cfg.Recovery = machine.RecoverTMR
	case "cl":
		schemeID = fault.SchemeCheckpointLog
		p = fault.Apply(p, schemeID)
		cfg.Recovery = machine.RecoverCheckpointLog
	case "idem":
		schemeID = fault.SchemeIdempotence
		p = fault.Apply(p, schemeID)
		cfg.Recovery = machine.RecoverIdempotence
		cfg.BufferStores = true
	default:
		fail(fmt.Errorf("unknown scheme %q", *scheme))
	}

	if *campaign > 0 {
		if !hasScheme {
			fail(fmt.Errorf("-campaign requires a -scheme"))
		}
		ms, err := fault.ParseModels(*models)
		if err != nil {
			fail(err)
		}
		spec := fault.Spec{
			Scheme:          schemeID,
			Runs:            *campaign,
			Seed:            *seed,
			Workers:         *workers,
			Models:          ms,
			Args:            runArgs,
			KeepRecords:     *records,
			CheckpointPath:  *checkpoint,
			CheckpointEvery: *ckptEvery,
			Resume:          *resume,
		}

		// Ctrl-C (and an optional -timeout) cancel the campaign cleanly:
		// the engine writes a final checkpoint before returning, so the
		// run can be picked up again with -resume.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}

		res, err := fault.RunCampaign(ctx, p, spec)
		if err != nil {
			if (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) && *checkpoint != "" {
				fmt.Fprintf(os.Stderr, "idemsim: %v (checkpoint saved to %s; rerun with -resume)\n", err, *checkpoint)
				os.Exit(3)
			}
			fail(err)
		}

		fmt.Printf("campaign (%s): %d runs, %d landed, %d detected, %d recovered, %d correct\n",
			schemeID, res.Runs, res.Landed, res.Detected, res.Recovered, res.Correct)
		fmt.Printf("outcomes: %d vacuous, %d benign, %d corrected, %d SDC, %d halted, %d livelock, %d crash\n",
			res.Vacuous, res.Benign, res.Corrected, res.SDC, res.DetectedHalt, res.Livelocks, res.Crashes)
		fmt.Printf("rates: SDC %.2f%%, detection %.2f%%, recovery %.2f%%\n",
			100*res.SDCRate, 100*res.DetectionRate, 100*res.RecoveryRate)
		if res.MeanDetectLatency > 0 {
			fmt.Printf("mean detection latency: %.1f dynamic instructions\n", res.MeanDetectLatency)
		}
		fmt.Printf("mean re-execution cost: %.2f%% extra instructions (p50 %.2f%%, p90 %.2f%%, p99 %.2f%%)\n",
			res.ExtraInstrPct, res.InflationP50, res.InflationP90, res.InflationP99)
		for _, k := range fault.AllModels() {
			st, ok := res.ByModel[k.String()]
			if !ok {
				continue
			}
			fmt.Printf("  model %-8s %4d runs, %4d landed, %4d benign, %4d corrected, %4d SDC\n",
				k, st.Runs, st.Landed, st.Benign, st.Corrected, st.SDC)
		}

		if *jsonOut != "" {
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fail(err)
			}
			data = append(data, '\n')
			if *jsonOut == "-" {
				os.Stdout.Write(data)
			} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
				fail(err)
			}
		}
		return
	}

	// Fault-free dry run to size the injection campaigns (same config as
	// the real run: instrumented binaries need their scheme's machinery,
	// e.g. the checkpoint-log pointer).
	m := machine.New(p, cfg)
	if *faults > 0 || *branches > 0 {
		dry := machine.New(p, cfg)
		if _, err := dry.Run(runArgs...); err != nil {
			fail(err)
		}
		span := dry.Stats.DynInstrs
		for i := 1; i <= *faults; i++ {
			step := span * int64(i) / int64(*faults+1)
			m.InjectFault(step, uint(i*13)%63+1)
		}
		for i := 1; i <= *branches; i++ {
			m.InjectControlFlowError(span * int64(i) / int64(*branches+1))
		}
	}

	ret, err := m.Run(runArgs...)
	if err != nil {
		fail(err)
	}
	s := &m.Stats
	fmt.Printf("result:        %d\n", int64(ret))
	fmt.Printf("instructions:  %d\n", s.DynInstrs)
	fmt.Printf("cycles:        %d (IPC %.2f)\n", s.Cycles, float64(s.DynInstrs)/float64(s.Cycles))
	fmt.Printf("loads/stores:  %d / %d\n", s.Loads, s.Stores)
	fmt.Printf("mispredicts:   %d\n", s.Mispredicts)
	if s.Marks > 0 {
		fmt.Printf("region marks:  %d\n", s.Marks)
	}
	if *faults > 0 || *branches > 0 {
		fmt.Printf("faults:        %d injected, %d detected, %d recoveries\n", s.Faults, s.Detections, s.Recoveries)
	}
	if cfg.TrackPaths {
		fmt.Printf("dynamic paths: avg length %.1f\n", s.AvgPathLen())
	}
}
