#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the idemd service.
#
# Phase 1 boots idemd with an unbounded compile cache and fires a seeded
# idemload burst twice with the same seed: idemload itself asserts that
# both passes produce byte-identical response digests and that the
# compile cache's hit ratio (scraped from /metrics) cleared the bar.
# Phase 2 reboots idemd with a deliberately tiny -cache-bytes bound and
# asserts that LRU evictions actually happen. Both daemons are shut down
# with SIGTERM and must exit 0 (graceful drain).
set -eu

GO="${GO:-go}"
tmp="$(mktemp -d)"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null && wait "$pid" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

"$GO" build -o "$tmp/idemd" ./cmd/idemd
"$GO" build -o "$tmp/idemload" ./cmd/idemload

start_idemd() { # args: extra idemd flags
    rm -f "$tmp/addr"
    "$tmp/idemd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -quiet "$@" &
    pid=$!
    i=0
    while [ ! -f "$tmp/addr" ]; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && { echo "serve-smoke: idemd did not start" >&2; exit 1; }
        sleep 0.1
    done
}

stop_idemd() {
    kill -TERM "$pid"
    wait "$pid" || { echo "serve-smoke: idemd exited nonzero on drain" >&2; exit 1; }
    pid=""
}

echo "serve-smoke: phase 1 — determinism + cache hit ratio (unbounded cache)"
start_idemd
"$tmp/idemload" -addr "$(cat "$tmp/addr")" \
    -concurrency 16 -requests 200 -seed 42 -repeat 2 -min-hit-ratio 0.5
stop_idemd

echo "serve-smoke: phase 2 — LRU evictions under a small byte bound"
start_idemd -cache-bytes 262144
"$tmp/idemload" -addr "$(cat "$tmp/addr")" \
    -concurrency 16 -requests 120 -seed 7 -min-evictions 1
stop_idemd

echo "serve-smoke: OK"
