#!/bin/sh
# shard_smoke.sh — end-to-end gate for the sharded front tier.
#
# Phase 1 runs two seeded idemload campaigns against a single idemd and
# records their digests: the byte-identity reference. Phase 2 boots a
# 3-replica fleet behind idemfront and replays the first campaign; the
# fleet must reproduce the baseline digest exactly (-expect-digest),
# clear the baseline's cache hit ratio fleet-wide (-min-hit-ratio on the
# summed replica counters — routing by content key means the fleet
# compiles each key exactly once, same as one process), and show hits on
# every replica (-require-replica-hits: the ring actually partitioned
# the working set). Phase 3 replays the second campaign and SIGKILLs one
# replica mid-run: the front must absorb the crash by failing the dead
# replica's keys over to their deterministic next owner — zero failed
# requests, zero digest drift. Finally the front and the surviving
# replicas must drain cleanly on SIGTERM.
set -eu

GO="${GO:-go}"
tmp="$(mktemp -d)"
PIDS=""
cleanup() {
    for p in $PIDS; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

"$GO" build -o "$tmp/idemd" ./cmd/idemd
"$GO" build -o "$tmp/idemfront" ./cmd/idemfront
"$GO" build -o "$tmp/idemload" ./cmd/idemload

wait_addr() { # $1 = addr file
    i=0
    while [ ! -f "$1" ]; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && { echo "shard-smoke: daemon did not write $1" >&2; exit 1; }
        sleep 0.1
    done
}

echo "shard-smoke: phase 1 — single-replica baselines"
"$tmp/idemd" -addr 127.0.0.1:0 -addr-file "$tmp/addr0" -quiet &
BASE=$!; PIDS="$PIDS $BASE"
wait_addr "$tmp/addr0"
base_addr="$(cat "$tmp/addr0")"
"$tmp/idemload" -addr "$base_addr" -concurrency 16 -requests 160 -seed 42 -repeat 2 \
    -quiet -json "$tmp/base42.json"
"$tmp/idemload" -addr "$base_addr" -concurrency 16 -requests 240 -seed 7 \
    -quiet -json "$tmp/base7.json"
kill -TERM "$BASE"
wait "$BASE" || { echo "shard-smoke: baseline idemd exited nonzero on drain" >&2; exit 1; }

# First "digest" is top-level; first "hit_ratio" is the cache section's
# (top-level keys serialize alphabetically: cache before disk/replicas).
digest42=$(sed -n 's/.*"digest": "\([0-9a-f]*\)".*/\1/p' "$tmp/base42.json" | head -1)
digest7=$(sed -n 's/.*"digest": "\([0-9a-f]*\)".*/\1/p' "$tmp/base7.json" | head -1)
ratio42=$(sed -n 's/.*"hit_ratio": \([0-9.eE+-]*\),*/\1/p' "$tmp/base42.json" | head -1)
if [ -z "$digest42" ] || [ -z "$digest7" ] || [ -z "$ratio42" ]; then
    echo "shard-smoke: baseline summaries incomplete" >&2; exit 1
fi
echo "shard-smoke: baseline digests $digest42 / $digest7, cache hit ratio $ratio42"

echo "shard-smoke: phase 2 — 3-replica fleet: digest identity + partitioned caches"
reps=""
n=1
while [ "$n" -le 3 ]; do
    "$tmp/idemd" -addr 127.0.0.1:0 -addr-file "$tmp/raddr$n" -quiet &
    eval "R$n=\$!; PIDS=\"\$PIDS \$R$n\""
    wait_addr "$tmp/raddr$n"
    reps="$reps$(cat "$tmp/raddr$n"),"
    n=$((n + 1))
done
reps="${reps%,}"
"$tmp/idemfront" -addr 127.0.0.1:0 -addr-file "$tmp/faddr" -backends "$reps" -quiet &
FRONT=$!; PIDS="$PIDS $FRONT"
wait_addr "$tmp/faddr"
front_addr="$(cat "$tmp/faddr")"

"$tmp/idemload" -addr "$front_addr" -scrape "$reps" \
    -concurrency 16 -requests 160 -seed 42 -repeat 2 \
    -expect-digest "$digest42" -min-hit-ratio "$ratio42" -require-replica-hits \
    -json "$tmp/fleet42.json"

echo "shard-smoke: phase 3 — SIGKILL a replica mid-campaign, zero digest drift"
( sleep 2; kill -9 "$R3" 2>/dev/null || true ) &
KILLER=$!
"$tmp/idemload" -addr "$front_addr" \
    -scrape "$(cat "$tmp/raddr1"),$(cat "$tmp/raddr2")" \
    -concurrency 16 -requests 240 -seed 7 \
    -expect-digest "$digest7" -json "$tmp/fleet7.json"
wait "$KILLER" 2>/dev/null || true

kill -TERM "$FRONT"
wait "$FRONT" || { echo "shard-smoke: idemfront exited nonzero on drain" >&2; exit 1; }
kill -TERM "$R1"
wait "$R1" || { echo "shard-smoke: replica 1 exited nonzero on drain" >&2; exit 1; }
kill -TERM "$R2"
wait "$R2" || { echo "shard-smoke: replica 2 exited nonzero on drain" >&2; exit 1; }

echo "shard-smoke: OK"
