#!/bin/sh
# chaos_smoke.sh — short seeded chaos campaign against a real idemd.
#
# Boots idemd, then runs idemload with the internal/chaos fault proxy
# interposed (injected latency, 500s, connection resets, truncated
# bodies) and retries + hedging enabled. Because every /v1/* response is
# an idempotent function of its request, re-execution must fully absorb
# the faults: idemload exits nonzero on any permanently failed request
# or any digest mismatch between re-executed attempts, and this script
# additionally asserts that faults were actually injected (a campaign
# that injected nothing proves nothing). The daemon is then drained with
# SIGTERM and must exit 0.
set -eu

GO="${GO:-go}"
tmp="$(mktemp -d)"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null && wait "$pid" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

"$GO" build -o "$tmp/idemd" ./cmd/idemd
"$GO" build -o "$tmp/idemload" ./cmd/idemload

"$tmp/idemd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -quiet &
pid=$!
i=0
while [ ! -f "$tmp/addr" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "chaos-smoke: idemd did not start" >&2; exit 1; }
    sleep 0.1
done

echo "chaos-smoke: seeded fault campaign (retries absorb injected faults)"
"$tmp/idemload" -addr "$(cat "$tmp/addr")" \
    -concurrency 16 -requests 150 -seed 5 -repeat 2 \
    -chaos-seed 7 -chaos-rates "10,6,6,6" -retries 8 -hedge-after 250ms \
    -json "$tmp/chaos.json"

grep -q '"digest_mismatches": 0' "$tmp/chaos.json" || {
    echo "chaos-smoke: summary reports digest mismatches" >&2
    cat "$tmp/chaos.json" >&2
    exit 1
}
grep -q '"failures": 0' "$tmp/chaos.json" || {
    echo "chaos-smoke: summary reports permanent failures" >&2
    cat "$tmp/chaos.json" >&2
    exit 1
}
if grep -q '"resets": 0,' "$tmp/chaos.json" &&
    grep -q '"errors_500": 0,' "$tmp/chaos.json" &&
    grep -q '"truncates": 0' "$tmp/chaos.json"; then
    echo "chaos-smoke: proxy injected no faults; campaign was vacuous" >&2
    cat "$tmp/chaos.json" >&2
    exit 1
fi

kill -TERM "$pid"
wait "$pid" || { echo "chaos-smoke: idemd exited nonzero on drain" >&2; exit 1; }
pid=""

echo "chaos-smoke: OK"
