#!/bin/sh
# bench_serve.sh — the service benchmark behind `make bench-serve` and
# (with FRONT=1) `make bench-shard`.
#
# Default mode drives the acceptance workload — BENCH_SERVE_REQUESTS
# requests (default 2000) at concurrency 32, run twice with the same
# seed, with the resilience layer enabled (retries + tail hedging) —
# against two daemons in sequence:
#
#   phase A: `idemd` with verification off, the latency baseline
#            (summary kept in the temp dir);
#   phase B: `idemd -verify-mode sampled`, the recommended production
#            mode; its summary is the published BENCH_serve.json and
#            carries the validator cost ledger (verify_ns section:
#            total nanoseconds inside internal/verify plus the
#            per-check average).
#
# The run then asserts the verify-overhead guard from docs/verify.md:
# the time the sampled-mode daemon actually spent inside the validator
# (verify_ns.total), amortized over every request served, must be under
# 1% of the off-mode warm-cache p50. Attribution, not wall-clock
# subtraction: verification runs only on the compile path, so its true
# warm-cache cost is the amortized ledger, and comparing noisy p50s
# directly would need the 1% signal to beat scheduler jitter an order
# of magnitude larger on a shared box. The wall-clock delta is still
# printed for the record. idemload itself fails the run on any
# permanently failed request or on
# a digest mismatch between the passes, and writes the headline numbers
# (req/s, p50/p90/p99, cache hit ratio, retry/hedge/preemption
# counters) to the summary.
#
# FRONT=1 boots REPLICAS idemd processes (default 3) behind idemfront
# and drives the same workload through the front tier, scraping every
# replica so the summary carries the aggregate AND per-replica cache hit
# ratios; results land in BENCH_shard.json. Comparing the two files at
# equal request count and concurrency measures what sharding buys:
# compute spreads across processes and the working set partitions across
# per-replica caches.
set -eu

GO="${GO:-go}"
REQUESTS="${BENCH_SERVE_REQUESTS:-2000}"
CONCURRENCY="${BENCH_SERVE_CONCURRENCY:-32}"
FRONT="${FRONT:-0}"
REPLICAS="${REPLICAS:-3}"
tmp="$(mktemp -d)"
PIDS=""
cleanup() {
    for p in $PIDS; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

"$GO" build -o "$tmp/idemd" ./cmd/idemd
"$GO" build -o "$tmp/idemload" ./cmd/idemload

wait_addr() { # $1 = addr file
    i=0
    while [ ! -f "$1" ]; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && { echo "bench-serve: daemon did not write $1" >&2; exit 1; }
        sleep 0.1
    done
}

run_load() { # $1 = summary json path
    "$tmp/idemload" -addr "$(cat "$tmp/addr")" -scrape "$scrape" \
        -concurrency "$CONCURRENCY" -requests "$REQUESTS" -seed 1 -repeat 2 \
        -retries 2 -hedge-after 2s \
        -json "$1"
}

# Drain every process (front first, so no request is mid-flight when the
# replicas go); each must exit 0.
drain() {
    drained=""
    for p in $PIDS; do drained="$p $drained"; done
    for p in $drained; do
        kill -TERM "$p"
        wait "$p" || { echo "$name: pid $p exited nonzero on drain" >&2; exit 1; }
    done
    PIDS=""
}

p50_of() { # $1 = summary json path
    awk -F: '/"p50_ms"/ {gsub(/[ ,]/, "", $2); print $2; exit}' "$1"
}

if [ "$FRONT" = "1" ]; then
    "$GO" build -o "$tmp/idemfront" ./cmd/idemfront
    name="bench-shard"
    out="BENCH_shard.json"
    reps=""
    n=1
    while [ "$n" -le "$REPLICAS" ]; do
        "$tmp/idemd" -addr 127.0.0.1:0 -addr-file "$tmp/raddr$n" -quiet &
        PIDS="$PIDS $!"
        wait_addr "$tmp/raddr$n"
        reps="$reps$(cat "$tmp/raddr$n"),"
        n=$((n + 1))
    done
    reps="${reps%,}"
    "$tmp/idemfront" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -backends "$reps" -quiet &
    PIDS="$PIDS $!"
    wait_addr "$tmp/addr"
    scrape="$reps"
    run_load "$out"
    drain
else
    name="bench-serve"
    out="BENCH_serve.json"

    # Phase A: verification off — the latency baseline.
    "$tmp/idemd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -quiet &
    PIDS="$PIDS $!"
    wait_addr "$tmp/addr"
    scrape="$(cat "$tmp/addr")"
    run_load "$tmp/BENCH_off.json"
    drain
    rm -f "$tmp/addr"

    # Phase B: sampled verification — the published numbers.
    "$tmp/idemd" -verify-mode sampled -addr 127.0.0.1:0 -addr-file "$tmp/addr" -quiet &
    PIDS="$PIDS $!"
    wait_addr "$tmp/addr"
    scrape="$(cat "$tmp/addr")"
    run_load "$out"
    drain

    # Overhead guard. p50_ms in each summary is the LAST pass — fully
    # warm cache. verify_ns.total is every nanosecond the sampled daemon
    # spent verifying (all of it on the compile path); amortized over
    # both passes' requests it must stay under 1% of the baseline p50.
    # checked > 0 proves the sample actually fired, so the guard cannot
    # pass vacuously.
    off="$(p50_of "$tmp/BENCH_off.json")"
    on="$(p50_of "$out")"
    ver_ns="$(awk -F: '/"total"/ {gsub(/[ ,]/, "", $2); print $2; exit}' "$out")"
    checked="$(awk -F: '/"checked"/ {gsub(/[ ,]/, "", $2); print $2; exit}' "$out")"
    awk -v off="$off" -v on="$on" -v ver_ns="$ver_ns" -v checked="$checked" \
        -v reqs="$((REQUESTS * 2))" 'BEGIN {
        per_req = ver_ns / reqs / 1e6
        limit = off * 0.01
        printf "verify-overhead: warm p50 off=%.2fms sampled=%.2fms; %d checks, %.4fms verify per request (limit %.2fms)\n", \
            off, on, checked, per_req, limit
        if (checked < 1) { print "bench-serve: sampled mode verified nothing" > "/dev/stderr"; exit 1 }
        exit (per_req <= limit) ? 0 : 1
    }' || { echo "bench-serve: sampled verification costs >1% of warm-cache p50" >&2; exit 1; }
fi

echo "wrote $out:"
cat "$out"
