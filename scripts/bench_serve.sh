#!/bin/sh
# bench_serve.sh — the service benchmark behind `make bench-serve` and
# (with FRONT=1) `make bench-shard`.
#
# Default mode boots one idemd on a free port and drives the acceptance
# workload: BENCH_SERVE_REQUESTS requests (default 2000) at concurrency
# 32, run twice with the same seed, with the resilience layer enabled
# (retries + tail hedging) so the summary exercises and records the
# production client path. idemload fails the run on any permanently
# failed request or on a digest mismatch between the passes, and writes
# the headline numbers (req/s, p50/p90/p99, cache hit ratio,
# retry/hedge/preemption counters) to BENCH_serve.json.
#
# FRONT=1 boots REPLICAS idemd processes (default 3) behind idemfront
# and drives the same workload through the front tier, scraping every
# replica so the summary carries the aggregate AND per-replica cache hit
# ratios; results land in BENCH_shard.json. Comparing the two files at
# equal request count and concurrency measures what sharding buys:
# compute spreads across processes and the working set partitions across
# per-replica caches.
set -eu

GO="${GO:-go}"
REQUESTS="${BENCH_SERVE_REQUESTS:-2000}"
CONCURRENCY="${BENCH_SERVE_CONCURRENCY:-32}"
FRONT="${FRONT:-0}"
REPLICAS="${REPLICAS:-3}"
tmp="$(mktemp -d)"
PIDS=""
cleanup() {
    for p in $PIDS; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

"$GO" build -o "$tmp/idemd" ./cmd/idemd
"$GO" build -o "$tmp/idemload" ./cmd/idemload

wait_addr() { # $1 = addr file
    i=0
    while [ ! -f "$1" ]; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && { echo "bench-serve: daemon did not write $1" >&2; exit 1; }
        sleep 0.1
    done
}

if [ "$FRONT" = "1" ]; then
    "$GO" build -o "$tmp/idemfront" ./cmd/idemfront
    name="bench-shard"
    out="BENCH_shard.json"
    reps=""
    n=1
    while [ "$n" -le "$REPLICAS" ]; do
        "$tmp/idemd" -addr 127.0.0.1:0 -addr-file "$tmp/raddr$n" -quiet &
        PIDS="$PIDS $!"
        wait_addr "$tmp/raddr$n"
        reps="$reps$(cat "$tmp/raddr$n"),"
        n=$((n + 1))
    done
    reps="${reps%,}"
    "$tmp/idemfront" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -backends "$reps" -quiet &
    PIDS="$PIDS $!"
    wait_addr "$tmp/addr"
    scrape="$reps"
else
    name="bench-serve"
    out="BENCH_serve.json"
    "$tmp/idemd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -quiet &
    PIDS="$PIDS $!"
    wait_addr "$tmp/addr"
    scrape="$(cat "$tmp/addr")"
fi

"$tmp/idemload" -addr "$(cat "$tmp/addr")" -scrape "$scrape" \
    -concurrency "$CONCURRENCY" -requests "$REQUESTS" -seed 1 -repeat 2 \
    -retries 2 -hedge-after 2s \
    -json "$out"

# Drain every process (front first, so no request is mid-flight when the
# replicas go); each must exit 0.
drained=""
for p in $PIDS; do drained="$p $drained"; done
for p in $drained; do
    kill -TERM "$p"
    wait "$p" || { echo "$name: pid $p exited nonzero on drain" >&2; exit 1; }
done
PIDS=""

echo "wrote $out:"
cat "$out"
