#!/bin/sh
# bench_serve.sh — the service benchmark behind `make bench-serve`.
#
# Boots idemd on a free port and drives the acceptance workload:
# BENCH_SERVE_REQUESTS requests (default 2000) at concurrency 32, run
# twice with the same seed, with the resilience layer enabled (retries +
# tail hedging) so the summary exercises and records the production
# client path. idemload fails the run on any permanently failed request
# or on a digest mismatch between the passes, and writes the headline
# numbers (req/s, p50/p90/p99, cache hit ratio, retry/hedge/preemption
# counters) to BENCH_serve.json.
set -eu

GO="${GO:-go}"
REQUESTS="${BENCH_SERVE_REQUESTS:-2000}"
CONCURRENCY="${BENCH_SERVE_CONCURRENCY:-32}"
tmp="$(mktemp -d)"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null && wait "$pid" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

"$GO" build -o "$tmp/idemd" ./cmd/idemd
"$GO" build -o "$tmp/idemload" ./cmd/idemload

"$tmp/idemd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -quiet &
pid=$!
i=0
while [ ! -f "$tmp/addr" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "bench-serve: idemd did not start" >&2; exit 1; }
    sleep 0.1
done

"$tmp/idemload" -addr "$(cat "$tmp/addr")" \
    -concurrency "$CONCURRENCY" -requests "$REQUESTS" -seed 1 -repeat 2 \
    -retries 2 -hedge-after 2s \
    -json BENCH_serve.json

kill -TERM "$pid"
wait "$pid" || { echo "bench-serve: idemd exited nonzero on drain" >&2; exit 1; }
pid=""

echo "wrote BENCH_serve.json:"
cat BENCH_serve.json
