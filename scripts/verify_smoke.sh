#!/bin/sh
# verify_smoke.sh — end-to-end smoke test of the translation validator
# in the serving path (docs/verify.md).
#
# Boot idemd with -verify-mode full, sweep a compile of every built-in
# workload (idemload -sweep-compiles asserts each response reports
# verified=true), then fire a seeded mixed burst so the option variants
# in the load palette get validated too. idemload's -min-verified gate
# then asserts, from the daemon's own /metrics, that the validator
# actually ran (nonzero idemd_verify_checked_total) and that not one
# check found a violation — the §2.1 criterion holds for everything the
# service compiled.
set -eu

GO="${GO:-go}"
tmp="$(mktemp -d)"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null && wait "$pid" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

"$GO" build -o "$tmp/idemd" ./cmd/idemd
"$GO" build -o "$tmp/idemload" ./cmd/idemload

rm -f "$tmp/addr"
"$tmp/idemd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -verify-mode full -quiet &
pid=$!
i=0
while [ ! -f "$tmp/addr" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "verify-smoke: idemd did not start" >&2; exit 1; }
    sleep 0.1
done

echo "verify-smoke: full verification over every workload + seeded burst"
"$tmp/idemload" -addr "$(cat "$tmp/addr")" \
    -sweep-compiles -concurrency 16 -requests 150 -seed 11 \
    -min-verified 29

kill -TERM "$pid"
wait "$pid" || { echo "verify-smoke: idemd exited nonzero on drain" >&2; exit 1; }
pid=""

echo "verify-smoke: OK"
