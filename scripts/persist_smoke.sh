#!/bin/sh
# persist_smoke.sh — end-to-end smoke test of the persistent artifact
# store (docs/persistence.md).
#
# Phase 1 boots idemd with -cache-dir, drives a seeded idemload pass
# (populating the store via write-behind), and drains with SIGTERM
# (which flushes in-flight artifact writes). Phase 2 restarts idemd over
# the same directory and replays the identical seeded pass: idemload
# asserts the daemon compiled nothing (-max-compiles 0), served every
# build from disk (-min-disk-hit-ratio 1), and the response digests of
# the two runs must be byte-identical. Phase 3 corrupts one artifact
# (truncation) and restarts: the damaged file must be counted in
# idemd_buildcache_disk_corrupt_total, transparently recompiled, and the
# digest must still match.
set -eu

GO="${GO:-go}"
tmp="$(mktemp -d)"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null && wait "$pid" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

"$GO" build -o "$tmp/idemd" ./cmd/idemd
"$GO" build -o "$tmp/idemload" ./cmd/idemload

store="$tmp/artifacts"

start_idemd() { # args: extra idemd flags
    rm -f "$tmp/addr"
    "$tmp/idemd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -quiet -cache-dir "$store" "$@" &
    pid=$!
    i=0
    while [ ! -f "$tmp/addr" ]; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && { echo "persist-smoke: idemd did not start" >&2; exit 1; }
        sleep 0.1
    done
}

stop_idemd() {
    kill -TERM "$pid"
    wait "$pid" || { echo "persist-smoke: idemd exited nonzero on drain" >&2; exit 1; }
    pid=""
}

digest_of() { # args: json summary file
    sed -n 's/.*"digest": "\([0-9a-f]*\)".*/\1/p' "$1"
}

load() { # args: json output file, extra idemload flags
    out="$1"; shift
    "$tmp/idemload" -addr "$(cat "$tmp/addr")" \
        -concurrency 16 -requests 150 -seed 42 -quiet -json "$out" "$@"
}

echo "persist-smoke: phase 1 — populate the artifact store"
start_idemd
load "$tmp/pass1.json"
stop_idemd

arts="$(find "$store" -name '*.art' | wc -l)"
[ "$arts" -gt 0 ] || { echo "persist-smoke: no artifacts persisted" >&2; exit 1; }
echo "persist-smoke: $arts artifacts persisted"

echo "persist-smoke: phase 2 — warm restart: zero compiles, all from disk"
start_idemd
load "$tmp/pass2.json" -min-disk-hit-ratio 1 -max-compiles 0
stop_idemd

d1="$(digest_of "$tmp/pass1.json")"
d2="$(digest_of "$tmp/pass2.json")"
[ -n "$d1" ] || { echo "persist-smoke: pass 1 produced no digest" >&2; exit 1; }
[ "$d1" = "$d2" ] || {
    echo "persist-smoke: digest mismatch across restart: $d1 != $d2" >&2; exit 1; }

echo "persist-smoke: phase 3 — corrupt artifact self-heals"
victim="$(find "$store" -name '*.art' | head -n 1)"
size="$(wc -c < "$victim")"
dd if="$victim" of="$victim.tmp" bs=1 count="$((size / 2))" 2>/dev/null
mv "$victim.tmp" "$victim"
start_idemd
# The boot scan prunes the damaged file (counting it corrupt), so the
# replayed pass recompiles exactly that key and still matches the
# original digest. -max-compiles bounds the damage to the one artifact.
load "$tmp/pass3.json" -max-compiles 2
corrupt="$(sed -n 's/.*"corrupt": \([0-9]*\).*/\1/p' "$tmp/pass3.json")"
stop_idemd
d3="$(digest_of "$tmp/pass3.json")"
[ "$d1" = "$d3" ] || {
    echo "persist-smoke: digest mismatch after corruption recovery: $d1 != $d3" >&2; exit 1; }
[ -n "$corrupt" ] && [ "$corrupt" -ge 1 ] || {
    echo "persist-smoke: corrupt artifact not counted (got '${corrupt:-}')" >&2; exit 1; }

echo "persist-smoke: OK"
