#!/bin/sh
# jobs_smoke.sh — end-to-end smoke test of the async job subsystem
# (docs/jobs.md), including the hard guarantee: a daemon killed with
# SIGKILL mid-job resumes the job on restart from its journal, without
# re-executing completed units and without recompiling anything.
#
# Phase 1 boots idemd with -cache-dir, runs a jobs campaign to
# completion (-verify-batch asserts the reconstructed stream is
# byte-identical to a direct /v1/batch POST), and drains with SIGTERM.
# That also warms the artifact store with every workload the batch uses.
#
# Phase 2 restarts over the same store, launches a streaming jobs
# campaign in the background, waits until the job's journal has absorbed
# at least one completed unit, and kills the daemon with -9 — no drain,
# no flush. The daemon restarts on the same address; recovery replays
# the journal before the listener opens, and the client (which has been
# riding out the outage by reconnecting its stream at the cursor)
# finishes the job. The client asserts the full contract: the digest
# equals phase 1's (-expect-digest: completed units were served from the
# journal byte-for-byte, not re-run), the restarted daemon compiled
# nothing (-max-compiles 0: warm artifacts), and at least one unit
# result was reloaded from the journal (-min-resumed-units 1).
set -eu

GO="${GO:-go}"
tmp="$(mktemp -d)"
pid=""
client=""
cleanup() {
    [ -n "$client" ] && kill -9 "$client" 2>/dev/null
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

"$GO" build -o "$tmp/idemd" ./cmd/idemd
"$GO" build -o "$tmp/idemload" ./cmd/idemload

store="$tmp/artifacts"

# start_idemd returns nonzero (instead of exiting) if the daemon never
# came up, so the phase 2 rebind loop can retry through TIME_WAIT.
start_idemd() { # args: listen address, extra idemd flags
    a="$1"; shift
    rm -f "$tmp/addr"
    "$tmp/idemd" -addr "$a" -addr-file "$tmp/addr" -quiet -cache-dir "$store" \
        -workers 2 "$@" &
    pid=$!
    i=0
    while [ ! -f "$tmp/addr" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            kill -9 "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
            pid=""
            return 1
        fi
        sleep 0.1
    done
    return 0
}

stop_idemd() {
    kill -TERM "$pid"
    wait "$pid" || { echo "jobs-smoke: idemd exited nonzero on drain" >&2; exit 1; }
    pid=""
}

digest_of() { # args: json summary file
    sed -n 's/.*"digest": "\([0-9a-f]*\)".*/\1/p' "$1" | head -n 1
}

# The campaign: 32 deliberately slow simulation units (300k steps each)
# so the phase 2 kill lands mid-job with units both completed and
# pending. Identical flags in both phases => identical submitted bytes
# => comparable digests.
load_jobs() { # args: json output file, extra idemload flags
    out="$1"; shift
    "$tmp/idemload" -addr "$(cat "$tmp/addr")" -quiet -jobs \
        -job-units 32 -job-sim-steps 300000 -seed 42 -json "$out" "$@"
}

echo "jobs-smoke: phase 1 — full job run, byte-identical to /v1/batch"
start_idemd 127.0.0.1:0 || { echo "jobs-smoke: idemd did not start" >&2; exit 1; }
load_jobs "$tmp/pass1.json" -verify-batch
stop_idemd
d1="$(digest_of "$tmp/pass1.json")"
[ -n "$d1" ] || { echo "jobs-smoke: phase 1 produced no digest" >&2; exit 1; }
echo "jobs-smoke: phase 1 digest $d1"

echo "jobs-smoke: phase 2 — SIGKILL mid-job, resume from the journal"
# Drop phase 1's finished journal so the one .job file below is phase
# 2's, and so the resumed-units assertion can only be satisfied by the
# interrupted job. The artifact store itself stays warm.
rm -rf "$store/jobs"
start_idemd 127.0.0.1:0 || { echo "jobs-smoke: idemd did not start" >&2; exit 1; }
addr="$(cat "$tmp/addr")"

load_jobs "$tmp/pass2.json" -stream \
    -expect-digest "$d1" -max-compiles 0 -min-resumed-units 1 &
client=$!

# Kill only after the journal holds at least one completed unit: wait
# for <store>/jobs/<id>.job to appear (header written at submit), then
# for it to grow past its initial size (first appended record).
jnl=""
i=0
while [ -z "$jnl" ]; do
    i=$((i + 1))
    [ "$i" -gt 300 ] && { echo "jobs-smoke: no journal appeared" >&2; exit 1; }
    jnl="$(find "$store/jobs" -name '*.job' 2>/dev/null | head -n 1 || true)"
    [ -n "$jnl" ] || sleep 0.1
done
base="$(wc -c < "$jnl")"
i=0
while :; do
    i=$((i + 1))
    [ "$i" -gt 300 ] && { echo "jobs-smoke: journal never grew" >&2; exit 1; }
    now="$(wc -c < "$jnl")"
    [ "$now" -gt "$base" ] && break
    sleep 0.1
done

echo "jobs-smoke: journal at $now bytes, killing idemd with SIGKILL"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

# Restart on the same address (the stream client is reconnecting against
# it). The port can linger in TIME_WAIT briefly, so retry the bind.
n=0
until start_idemd "$addr" 2>/dev/null; do
    n=$((n + 1))
    [ "$n" -gt 5 ] && { echo "jobs-smoke: could not rebind $addr" >&2; exit 1; }
    sleep 0.25
done

wait "$client" || {
    client=""
    echo "jobs-smoke: resumed campaign failed (digest, compile, or resume assertion)" >&2
    exit 1
}
client=""
d2="$(digest_of "$tmp/pass2.json")"
echo "jobs-smoke: phase 2 digest $d2 (resume preserved byte identity, zero recompiles)"
stop_idemd

echo "jobs-smoke: OK"
