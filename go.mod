module idemproc

go 1.22
