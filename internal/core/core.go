// Package core implements the paper's primary contribution: the idempotent
// region construction algorithm (§4).
//
// A function is partitioned into idempotent regions by:
//
//  1. Program transformation (§4.1): scalar stack slots are promoted to
//     pseudoregisters, the function is converted to SSA (removing all
//     artificial clobber antidependences except φ self-dependences at loop
//     headers), and redundancy elimination (Fig. 5) deletes memory
//     antidependences that are not clobber antidependences.
//  2. Cutting memory-level antidependences (§4.2.1): each surviving
//     antidependence (a, b) contributes a candidate set — the instructions
//     that dominate b but not a (Lemma 1), plus b itself — and a greedy
//     hitting set with the §4.3 loop-depth heuristic chooses cut points.
//     A cut before instruction S starts a new region at S.
//  3. Cutting self-dependent pseudoregister antidependences (§4.2.2):
//     loop-header φs that depend on themselves are register-allocatable
//     without clobbering iff their loop contains no cuts (case 1) or at
//     least two cuts on every path through the body (case 2); otherwise
//     the loop is unrolled once if possible (§5) and extra cuts are
//     inserted to establish case 2.
//
// Construct returns the cut set and the materialized region decomposition;
// Check independently re-derives the antidependences and verifies that no
// region contains an uncut clobber antidependence — the package's own
// proof obligation, exercised heavily by the property tests.
package core

import (
	"fmt"
	"sort"

	"idemproc/internal/alias"
	"idemproc/internal/cfg"
	"idemproc/internal/dataflow"
	"idemproc/internal/ir"
	"idemproc/internal/multicut"
	"idemproc/internal/redelim"
	"idemproc/internal/ssa"
)

// Options configure the construction. The zero value disables everything;
// use DefaultOptions for the paper's configuration.
type Options struct {
	// LoopHeuristic enables the §4.3 outermost-loop-first cut placement.
	LoopHeuristic bool
	// RedElim enables the Fig. 5 redundancy elimination pre-pass.
	RedElim bool
	// UnrollLoops enables the §5 single unroll before inserting case-3
	// cuts for self-dependent φs.
	UnrollLoops bool
	// CutAtCalls isolates calls into their own regions (the analysis is
	// intra-procedural, as in the paper's implementation).
	CutAtCalls bool
	// MaxRegionSize, when positive, caps static region sizes by adding
	// cuts (§6.2: shorter regions trade overhead for bounded re-execution
	// cost and detection-latency tolerance). 0 means unbounded — the
	// paper's default of "the longest possible paths".
	MaxRegionSize int
	// BalancedHeuristic replaces the §4.3 depth-lexicographic cut choice
	// with the frequency-weighted score the paper proposes as future
	// work. Ignored unless LoopHeuristic is also set.
	BalancedHeuristic bool
	// PureFuncs, when non-nil, names functions that provably touch no
	// memory (see PureFunctions); calls to them are not forced into their
	// own regions — a first inter-procedural step toward §3's
	// cross-function-boundary opportunity. The callees themselves must
	// then be compiled without region marks (codegen's PureCalls mode
	// arranges both sides).
	PureFuncs map[string]bool
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{LoopHeuristic: true, RedElim: true, UnrollLoops: true, CutAtCalls: true}
}

// Result is the outcome of region construction for one function.
type Result struct {
	F *ir.Func
	// Cuts marks instructions that begin a new region ("cut before").
	// The function entry is an implicit region header.
	Cuts map[*ir.Value]bool
	// Antideps are the memory antidependences that were cut.
	Antideps []dataflow.Antidep
	// Regions is the materialized decomposition.
	Regions []*Region
	// SelfDep describes each loop carrying φ self-dependences and how it
	// was resolved.
	SelfDep []SelfDepInfo
	// Stats summarizes the construction.
	Stats Stats
}

// Stats summarizes one construction.
type Stats struct {
	PromotedAllocas   int
	ForwardedLoads    int
	AntidepsCut       int
	CutsFromMulticut  int
	CutsFromCalls     int
	CutsFromSelfDep   int
	CutsFromRetSplit  int
	LoopsUnrolled     int
	Instructions      int
	RegionCount       int
	AvgRegionSize     float64
	LargestRegionSize int
}

// SelfDepCase tells how a self-dependent loop was handled.
type SelfDepCase uint8

const (
	// SelfDepNoCuts is §4.2.2 case 1: the loop contains no cuts; the φ's
	// register is defined outside the loop by the allocator.
	SelfDepNoCuts SelfDepCase = iota
	// SelfDepTwoCuts is case 2: every path through the body crosses ≥2
	// cuts; the allocator double-buffers across region boundaries.
	SelfDepTwoCuts
	// SelfDepInsertedCuts is case 3: cuts were inserted (after an
	// optional unroll) to establish the case-2 invariant.
	SelfDepInsertedCuts
)

func (c SelfDepCase) String() string {
	switch c {
	case SelfDepNoCuts:
		return "no-cuts"
	case SelfDepTwoCuts:
		return "two-cuts"
	case SelfDepInsertedCuts:
		return "inserted-cuts"
	}
	return "?"
}

// SelfDepInfo records one self-dependent loop and its resolution.
type SelfDepInfo struct {
	Header *ir.Block
	Phis   []*ir.Value
	Case   SelfDepCase
	// Unrolled reports whether the §5 unroll was applied to this loop.
	Unrolled bool
}

// Construct runs the full §4 pipeline on f, mutating it (SSA conversion,
// redundancy elimination, possible loop unrolling) and returning the cut
// placement and region decomposition.
func Construct(f *ir.Func, opts Options) (*Result, error) {
	st := Stats{}

	// §4.1 program transformation (plus the standard optimizing clean-up
	// both pipelines share, so regions are constructed over the same code
	// a conventional -O build would emit).
	st.PromotedAllocas = ssa.PromoteAllocas(f)
	ssa.Build(f)
	ssa.FoldConstants(f)
	if opts.RedElim {
		rst := redelim.Run(f, alias.Compute(f))
		st.ForwardedLoads = rst.ForwardedStores + rst.ForwardedLoads
		ssa.PropagateCopies(f)
		ssa.EliminateDeadValues(f)
	}

	// First placement.
	pl, err := place(f, opts)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// §4.2.2 case 3 with unrolling: unroll offending loops once, then
	// re-place cuts from scratch on the larger body.
	if opts.UnrollLoops {
		unrolled := false
		for _, hdr := range pl.case3Headers {
			if UnrollOnce(f, hdr) {
				st.LoopsUnrolled++
				unrolled = true
			}
		}
		if unrolled {
			pl, err = place(f, opts)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
		}
	}
	// Remaining case-3 loops get the fallback: a cut at the header's
	// first real instruction and at each latch's terminator establishes
	// ≥2 cuts on every cycle (every cycle of a natural loop crosses the
	// header once and some latch once).
	for _, hdr := range pl.case3Headers {
		info := pl.cfgInfo
		var loop *cfg.Loop
		for _, l := range info.Loops {
			if l.Header == hdr {
				loop = l
			}
		}
		if loop == nil {
			continue
		}
		h := firstReal(hdr)
		if !pl.cuts[h] {
			pl.cuts[h] = true
			st.CutsFromSelfDep++
		}
		for _, latch := range loop.Latches {
			t := latch.Terminator()
			if !pl.cuts[t] {
				pl.cuts[t] = true
				st.CutsFromSelfDep++
			}
		}
	}
	// Re-run the self-dependence classification for reporting, now that
	// all cuts are final.
	selfInfos := classifySelfDeps(f, pl.cfgInfo, pl.cuts, pl.unrolledHeaders)

	// §5 calling convention: a function with no cuts is split so return
	// values may overwrite parameter registers.
	if len(pl.cuts) == 0 {
		for _, b := range f.Blocks {
			if t := b.Terminator(); t.Op == ir.OpRet {
				pl.cuts[t] = true
				st.CutsFromRetSplit++
			}
		}
	}

	st.AntidepsCut = len(pl.deps)
	st.CutsFromMulticut = pl.multicutCuts
	st.CutsFromCalls = pl.callCuts

	res := &Result{
		F:        f,
		Cuts:     pl.cuts,
		Antideps: pl.deps,
		SelfDep:  selfInfos,
		Stats:    st,
	}
	res.Regions = Materialize(f, pl.cuts)
	res.fillStats()
	if err := Check(res); err != nil {
		return nil, fmt.Errorf("core: constructed decomposition fails verification: %w", err)
	}
	return res, nil
}

func (r *Result) fillStats() {
	n := 0
	for _, b := range r.F.Blocks {
		for _, v := range b.Instrs {
			if real(v) {
				n++
			}
		}
	}
	r.Stats.Instructions = n
	r.Stats.RegionCount = len(r.Regions)
	total, largest := 0, 0
	for _, reg := range r.Regions {
		total += len(reg.Instrs)
		if len(reg.Instrs) > largest {
			largest = len(reg.Instrs)
		}
	}
	if len(r.Regions) > 0 {
		r.Stats.AvgRegionSize = float64(total) / float64(len(r.Regions))
	}
	r.Stats.LargestRegionSize = largest
}

// placement is the intermediate state of one cut-placement round.
type placement struct {
	cuts            map[*ir.Value]bool
	deps            []dataflow.Antidep
	cfgInfo         *cfg.Info
	case3Headers    []*ir.Block
	unrolledHeaders map[*ir.Block]bool
	multicutCuts    int
	callCuts        int
}

// real reports whether v is an executable instruction (φs and params are
// bookkeeping, not execution steps).
func real(v *ir.Value) bool {
	return v.Op != ir.OpPhi && v.Op != ir.OpParam
}

// firstReal returns b's first executable instruction (every well-formed
// block has at least a terminator).
func firstReal(b *ir.Block) *ir.Value {
	for _, v := range b.Instrs {
		if real(v) {
			return v
		}
	}
	panic("core: block with no real instruction")
}

// nextReal returns the next executable instruction after v in its block.
// v must not be the terminator.
func nextReal(v *ir.Value) *ir.Value {
	b := v.Block
	seen := false
	for _, x := range b.Instrs {
		if x == v {
			seen = true
			continue
		}
		if seen && real(x) {
			return x
		}
	}
	panic("core: no instruction after " + v.LongString())
}

// place runs one round of analyses and cut selection (§4.2.1 plus forced
// call cuts), then classifies self-dependent loops against those cuts.
// Unsolvable cut-placement instances (multicut.ErrEmptySet) surface as
// errors: they are reachable from user .idc input, so the compiler driver
// must report them rather than crash.
func place(f *ir.Func, opts Options) (*placement, error) {
	f.RemoveUnreachable()
	info := cfg.Compute(f)
	ai := alias.Compute(f)
	reach := dataflow.ComputeReach(f)
	deps := dataflow.MemoryAntideps(f, ai, reach)

	// Number the instructions for the hitting-set solver.
	idx := map[*ir.Value]int{}
	byIdx := map[int]*ir.Value{}
	depthOf := map[int]int{}
	n := 0
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if !real(v) {
				continue
			}
			idx[v] = n
			byIdx[n] = v
			depthOf[n] = info.Depth[b.Index]
			n++
		}
	}

	// Candidate sets (Lemma 1 + the write endpoint itself).
	pos := dataflow.IndexPositions(f)
	instrDominates := func(x, y *ir.Value) bool {
		if x.Block == y.Block {
			return pos[x] <= pos[y]
		}
		return info.StrictlyDominates(x.Block, y.Block)
	}
	var sets [][]int
	for _, d := range deps {
		a, b := d.Read, d.Write
		set := map[int]bool{idx[b]: true}
		// Walk b's dominator chain (blocks dominating b.Block, plus
		// b.Block itself up to b's position).
		for blk := b.Block; blk != nil; blk = info.Idom[blk.Index] {
			for _, x := range blk.Instrs {
				if !real(x) {
					continue
				}
				if blk == b.Block && pos[x] > pos[b] {
					break
				}
				if !instrDominates(x, a) {
					set[idx[x]] = true
				}
			}
		}
		s := make([]int, 0, len(set))
		for i := range set {
			s = append(s, i)
		}
		sort.Ints(s)
		sets = append(sets, s)
	}

	chosen, err := multicut.Solve(multicut.Problem{
		Sets:             sets,
		Depth:            depthOf,
		UseLoopHeuristic: opts.LoopHeuristic,
		Balanced:         opts.LoopHeuristic && opts.BalancedHeuristic,
	})
	if err != nil {
		return nil, fmt.Errorf("cut placement for @%s: %w", f.Name, err)
	}
	cuts := map[*ir.Value]bool{}
	for _, c := range chosen {
		cuts[byIdx[c]] = true
	}
	multicutCuts := len(cuts)

	// Calls become single-instruction regions: cut before the call and
	// before its successor instruction.
	callCuts := 0
	if opts.CutAtCalls {
		for _, b := range f.Blocks {
			for _, v := range b.Instrs {
				if v.Op != ir.OpCall {
					continue
				}
				if opts.PureFuncs[v.Aux] {
					// A pure callee touches no memory and is re-executed
					// wholesale with its caller's region: no cut needed.
					continue
				}
				if !cuts[v] {
					cuts[v] = true
					callCuts++
				}
				nx := nextReal(v)
				if !cuts[nx] {
					cuts[nx] = true
					callCuts++
				}
			}
		}
	}

	// Optional §6.2 region size cap (before the self-dependence
	// classification, which must see the final cut density per loop).
	if opts.MaxRegionSize > 0 {
		limitRegionSizes(f, cuts, opts.MaxRegionSize)
	}

	// Classify self-dependent loops to find case-3 offenders.
	var case3 []*ir.Block
	for _, l := range info.Loops {
		phis := selfDepPhis(l)
		if len(phis) == 0 {
			continue
		}
		switch classifyLoop(l, cuts) {
		case SelfDepNoCuts, SelfDepTwoCuts:
		default:
			case3 = append(case3, l.Header)
		}
	}

	return &placement{
		cuts:            cuts,
		deps:            deps,
		cfgInfo:         info,
		case3Headers:    case3,
		unrolledHeaders: map[*ir.Block]bool{},
		multicutCuts:    multicutCuts,
		callCuts:        callCuts,
	}, nil
}
