package core

import (
	"fmt"
	"sort"
	"strings"

	"idemproc/internal/ir"
)

// Region is one element of the decomposition: a single-entry collection of
// instructions reachable from Header without crossing a cut (§2.3's
// definition — a region is a set of idempotent paths sharing an entry).
type Region struct {
	// Index is the region's position in Result.Regions.
	Index int
	// Header is the region's entry instruction.
	Header *ir.Value
	// Instrs are the instructions belonging to the region, in a
	// deterministic order. Instructions may belong to several regions
	// (regions may overlap; the decomposition only requires distinct
	// headers).
	Instrs []*ir.Value
}

// String renders a short description.
func (r *Region) String() string {
	return fmt.Sprintf("region %d @%s (%d instrs)", r.Index, r.Header.LongString(), len(r.Instrs))
}

// InstrGraph is the instruction-level successor relation used for region
// membership and verification. φs and params are skipped: they are
// bookkeeping, not execution steps.
type InstrGraph struct {
	Succs map[*ir.Value][]*ir.Value
	// Order gives each instruction a deterministic global index.
	Order map[*ir.Value]int
	// Entry is the first executable instruction of the function.
	Entry *ir.Value
}

// BuildInstrGraph constructs the execution successor graph of f.
func BuildInstrGraph(f *ir.Func) *InstrGraph {
	g := &InstrGraph{Succs: map[*ir.Value][]*ir.Value{}, Order: map[*ir.Value]int{}}
	n := 0
	for _, b := range f.Blocks {
		var prev *ir.Value
		for _, v := range b.Instrs {
			if !real(v) {
				continue
			}
			g.Order[v] = n
			n++
			if prev != nil {
				g.Succs[prev] = append(g.Succs[prev], v)
			}
			prev = v
		}
		if prev != nil {
			for _, s := range b.Succs {
				g.Succs[prev] = append(g.Succs[prev], firstReal(s))
			}
		}
	}
	g.Entry = firstReal(f.Entry())
	return g
}

// Materialize derives the region decomposition from a cut set: one region
// per header (the entry plus every cut point), each containing the
// instructions reachable from its header without entering another header.
func Materialize(f *ir.Func, cuts map[*ir.Value]bool) []*Region {
	g := BuildInstrGraph(f)
	headers := []*ir.Value{}
	if !cuts[g.Entry] {
		headers = append(headers, g.Entry)
	}
	for v := range cuts {
		headers = append(headers, v)
	}
	sort.Slice(headers, func(i, j int) bool { return g.Order[headers[i]] < g.Order[headers[j]] })

	var regions []*Region
	for i, h := range headers {
		r := &Region{Index: i, Header: h}
		seen := map[*ir.Value]bool{h: true}
		stack := []*ir.Value{h}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			r.Instrs = append(r.Instrs, v)
			for _, s := range g.Succs[v] {
				if cuts[s] || seen[s] {
					continue
				}
				seen[s] = true
				stack = append(stack, s)
			}
		}
		sort.Slice(r.Instrs, func(a, b int) bool { return g.Order[r.Instrs[a]] < g.Order[r.Instrs[b]] })
		regions = append(regions, r)
	}
	return regions
}

// DumpRegions renders the decomposition for human inspection (used by
// cmd/idemc and the examples).
func DumpRegions(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "func @%s: %d instructions, %d regions, %d cuts\n",
		res.F.Name, res.Stats.Instructions, len(res.Regions), len(res.Cuts))
	regionOf := map[*ir.Value][]int{}
	for _, r := range res.Regions {
		for _, v := range r.Instrs {
			regionOf[v] = append(regionOf[v], r.Index)
		}
	}
	for _, blk := range res.F.Blocks {
		fmt.Fprintf(&b, "%s:\n", blk.Name)
		for _, v := range blk.Instrs {
			if !real(v) {
				fmt.Fprintf(&b, "         │ %s\n", v.LongString())
				continue
			}
			if res.Cuts[v] {
				fmt.Fprintf(&b, "  ─────── cut ───────\n")
			}
			ids := regionOf[v]
			tag := make([]string, len(ids))
			for i, id := range ids {
				tag[i] = fmt.Sprint(id)
			}
			fmt.Fprintf(&b, "  R{%-5s}│ %s\n", strings.Join(tag, ","), v.LongString())
		}
	}
	return b.String()
}
