package core_test

import (
	"fmt"

	"idemproc/internal/core"
	"idemproc/internal/ir"
)

// Example_listPush runs the paper's running example through the region
// construction: the load of list->size is a region input, the increment
// that overwrites it is a semantic clobber antidependence, and a single
// cut separates them.
func Example_listPush() {
	m := ir.MustParse(`
global @list [18] = {0, 16}

func @push(i64 %list, i64 %e) void {
b1:
  %size = load %list
  %cap1 = add %list, 1
  %cap = load %cap1
  %full = ge %size, %cap
  condbr %full, b3, b2
b2:
  %base = add %list, 2
  %slot = add %base, %size
  store %slot, %e
  %newsize = add %size, 1
  store %list, %newsize
  br b3
b3:
  ret
}
`)
	res, err := core.Construct(m.Func("push"), core.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("antidependences: %d\n", len(res.Antideps))
	fmt.Printf("cuts from multicut: %d\n", res.Stats.CutsFromMulticut)
	fmt.Printf("regions: %d\n", len(res.Regions))
	fmt.Printf("verified: %v\n", core.Check(res) == nil)
	// Output:
	// antidependences: 3
	// cuts from multicut: 1
	// regions: 2
	// verified: true
}
