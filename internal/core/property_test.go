package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"idemproc/internal/ir"
)

// TestCheckRejectsWeakenedCuts: removing any multicut-placed cut from a
// decomposition with antidependences must either fail Check or leave all
// antideps separated by the remaining cuts (over-approximation is
// allowed, but most removals must be caught).
func TestCheckRejectsWeakenedCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	caught, total := 0, 0
	for trial := 0; trial < 30; trial++ {
		src := randomProgram(rng)
		m := ir.MustParse(src)
		res, err := Construct(m.Func("f"), DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(res.Antideps) == 0 {
			continue
		}
		// Remove each cut in turn.
		var cutList []*ir.Value
		for v := range res.Cuts {
			cutList = append(cutList, v)
		}
		for _, victim := range cutList {
			weaker := map[*ir.Value]bool{}
			for v := range res.Cuts {
				if v != victim {
					weaker[v] = true
				}
			}
			total++
			trial := &Result{F: res.F, Cuts: weaker, Regions: Materialize(res.F, weaker)}
			if Check(trial) != nil {
				caught++
			}
		}
	}
	if total == 0 {
		t.Skip("no antidependences generated")
	}
	if caught == 0 {
		t.Fatalf("Check never rejected a weakened decomposition (%d tries)", total)
	}
}

// TestConstructDeterministic: two constructions of the same source agree
// exactly (the paper's results must be reproducible).
func TestConstructDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		src := randomProgram(rng)
		a := ir.MustParse(src)
		b := ir.MustParse(src)
		ra, err := Construct(a.Func("f"), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		rb, err := Construct(b.Func("f"), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(ra.Cuts) != len(rb.Cuts) || len(ra.Regions) != len(rb.Regions) {
			t.Fatalf("trial %d: nondeterministic construction: %d/%d cuts, %d/%d regions",
				trial, len(ra.Cuts), len(rb.Cuts), len(ra.Regions), len(rb.Regions))
		}
		if ir.FuncString(a.Func("f")) != ir.FuncString(b.Func("f")) {
			t.Fatalf("trial %d: transformed IR differs", trial)
		}
	}
}

// TestQuickRegionCoverage: for arbitrary list sizes, every instruction of
// list_push stays covered and the decomposition verifies.
func TestQuickRegionCoverage(t *testing.T) {
	prop := func(seed int64) bool {
		m := ir.MustParse(listPushSrc)
		res, err := Construct(m.Func("list_push"), DefaultOptions())
		if err != nil {
			return false
		}
		g := BuildInstrGraph(res.F)
		covered := map[*ir.Value]bool{}
		for _, r := range res.Regions {
			for _, v := range r.Instrs {
				covered[v] = true
			}
		}
		for v := range g.Order {
			if !covered[v] {
				return false
			}
		}
		return Check(res) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// TestRegionsHaveDistinctHeaders (decomposition condition 2 of §4.2.1).
func TestRegionsHaveDistinctHeaders(t *testing.T) {
	m := ir.MustParse(listPushSrc)
	res, err := Construct(m.Func("list_push"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[*ir.Value]bool{}
	for _, r := range res.Regions {
		if seen[r.Header] {
			t.Fatalf("duplicate region header %s", r.Header.LongString())
		}
		seen[r.Header] = true
	}
}
