package core

import (
	"sort"

	"idemproc/internal/ir"
)

// limitRegionSizes augments the cut set until no region contains more
// than maxSize instructions, implementing §6.2's observation that "path
// lengths are often easily reduced as needed to suit application demands"
// (shorter regions bound both re-execution cost and the detection-latency
// window).
//
// Long regions are split by cutting at their BFS frontier: the
// instructions first reached at distance maxSize from the header. Each
// round strictly adds cuts, so the loop terminates.
func limitRegionSizes(f *ir.Func, cuts map[*ir.Value]bool, maxSize int) int {
	if maxSize <= 0 {
		return 0
	}
	g := BuildInstrGraph(f)
	added := 0
	for round := 0; round < 64; round++ {
		regions := Materialize(f, cuts)
		grew := false
		for _, r := range regions {
			if len(r.Instrs) <= maxSize {
				continue
			}
			for _, v := range frontierAt(g, r.Header, cuts, maxSize) {
				if !cuts[v] {
					cuts[v] = true
					added++
					grew = true
				}
			}
		}
		if !grew {
			return added
		}
	}
	return added
}

// frontierAt returns the instructions at BFS depth exactly `depth` from
// header, walking only edges that do not enter existing cuts.
func frontierAt(g *InstrGraph, header *ir.Value, cuts map[*ir.Value]bool, depth int) []*ir.Value {
	cur := []*ir.Value{header}
	seen := map[*ir.Value]bool{header: true}
	for d := 0; d < depth; d++ {
		var next []*ir.Value
		for _, v := range cur {
			for _, s := range g.Succs[v] {
				if seen[s] || (cuts[s] && s != header) {
					continue
				}
				seen[s] = true
				next = append(next, s)
			}
		}
		if len(next) == 0 {
			return nil
		}
		cur = next
	}
	sort.Slice(cur, func(i, j int) bool { return g.Order[cur[i]] < g.Order[cur[j]] })
	return cur
}
