package core

import (
	"testing"

	"idemproc/internal/ir"
)

// bigStraightLine builds a long straight-line function with one memory
// antidependence near the start so the construction yields one large
// region.
func bigStraightLine(n int) string {
	src := `
global @g [2]

func @f(i64 %a) i64 {
e:
  %p = global @g
  %x = load %p
  store %p, %a
  %acc0 = add %x, %a
`
	prev := "%acc0"
	for i := 1; i < n; i++ {
		cur := "%acc" + itoa(i)
		src += "  " + cur + " = add " + prev + ", 1\n"
		prev = cur
	}
	src += "  ret " + prev + "\n}\n"
	return src
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestMaxRegionSizeCapsRegions(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxRegionSize = 16

	m := ir.MustParse(bigStraightLine(120))
	f := m.Func("f")
	res, err := Construct(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Regions {
		if len(r.Instrs) > 16 {
			t.Fatalf("region %d has %d instructions, cap is 16", r.Index, len(r.Instrs))
		}
	}
	if len(res.Regions) < 120/16 {
		t.Fatalf("only %d regions for 120+ instructions", len(res.Regions))
	}
	// Still a valid decomposition.
	if err := Check(res); err != nil {
		t.Fatal(err)
	}
}

func TestMaxRegionSizePreservesSemantics(t *testing.T) {
	ref := ir.MustParse(bigStraightLine(60))
	in := ir.NewInterp(ref, 64)
	want, err := in.Run("f", 5)
	if err != nil {
		t.Fatal(err)
	}

	opts := DefaultOptions()
	opts.MaxRegionSize = 8
	m := ir.MustParse(bigStraightLine(60))
	if _, err := Construct(m.Func("f"), opts); err != nil {
		t.Fatal(err)
	}
	in2 := ir.NewInterp(m, 64)
	got, err := in2.Run("f", 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("size limiting changed semantics: %d vs %d", got, want)
	}
}

func TestMaxRegionSizeInLoops(t *testing.T) {
	// A loop body longer than the cap must be subdivided without breaking
	// the self-dependence invariants (Check enforces them).
	src := `
global @g [8]

func @f(i64 %n) i64 {
e:
  %p = global @g
  br l
l:
  %i = phi [e: 0], [l: %i2]
  %acc = phi [e: 0], [l: %accN]
  %idx = rem %i, 8
  %q = add %p, %idx
  %x = load %q
  %a1 = add %x, 1
  %a2 = add %a1, %i
  %a3 = mul %a2, 3
  %a4 = add %a3, %acc
  %a5 = xor %a4, %i
  %a6 = add %a5, 7
  store %q, %a6
  %accN = add %acc, %a6
  %i2 = add %i, 1
  %c = lt %i2, %n
  condbr %c, l, d
d:
  ret %accN
}
`
	opts := DefaultOptions()
	opts.MaxRegionSize = 6
	m := ir.MustParse(src)
	res, err := Construct(m.Func("f"), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Regions {
		if len(r.Instrs) > 6 {
			t.Fatalf("region exceeds cap: %d instrs", len(r.Instrs))
		}
	}
	in := ir.NewInterp(m, 64)
	if _, err := in.Run("f", 20); err != nil {
		t.Fatal(err)
	}
}

func TestBalancedHeuristicStillCovers(t *testing.T) {
	opts := DefaultOptions()
	opts.BalancedHeuristic = true
	m := ir.MustParse(listPushSrc)
	res, err := Construct(m.Func("list_push"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(res); err != nil {
		t.Fatal(err)
	}
}
