package core

import (
	"fmt"
	"strings"

	"idemproc/internal/ir"
)

// DotRegions renders the region decomposition as a Graphviz digraph:
// one node per instruction (clustered by basic block), execution edges,
// region headers double-circled, and cut boundaries drawn as bold red
// edges. `idemc -dot` emits it; pipe into `dot -Tsvg` to visualize.
func DotRegions(res *Result) string {
	g := BuildInstrGraph(res.F)
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", res.F.Name)
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\", fontsize=10];\n")

	// Color instructions by their (first) region.
	palette := []string{
		"#dbeafe", "#dcfce7", "#fee2e2", "#fef9c3", "#f3e8ff",
		"#cffafe", "#fde68a", "#e2e8f0", "#fbcfe8", "#d9f99d",
	}
	regionOf := map[*ir.Value]int{}
	for _, r := range res.Regions {
		for _, v := range r.Instrs {
			if _, seen := regionOf[v]; !seen {
				regionOf[v] = r.Index
			}
		}
	}
	headers := map[*ir.Value]int{}
	for _, r := range res.Regions {
		headers[r.Header] = r.Index
	}

	id := func(v *ir.Value) string { return fmt.Sprintf("n%d", g.Order[v]) }
	for bi, blk := range res.F.Blocks {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q; style=dashed; color=gray;\n", bi, blk.Name)
		for _, v := range blk.Instrs {
			if v.Op == ir.OpPhi || v.Op == ir.OpParam {
				continue
			}
			label := strings.ReplaceAll(v.LongString(), `"`, `'`)
			fill := palette[regionOf[v]%len(palette)]
			shape := "box"
			extra := ""
			if ri, isHdr := headers[v]; isHdr {
				shape = "box"
				extra = fmt.Sprintf(", penwidth=2.5, xlabel=\"R%d\"", ri)
			}
			fmt.Fprintf(&b, "    %s [label=%q, shape=%s, style=filled, fillcolor=%q%s];\n",
				id(v), label, shape, fill, extra)
		}
		b.WriteString("  }\n")
	}
	for _, blk := range res.F.Blocks {
		for _, v := range blk.Instrs {
			if v.Op == ir.OpPhi || v.Op == ir.OpParam {
				continue
			}
			for _, s := range g.Succs[v] {
				if res.Cuts[s] {
					fmt.Fprintf(&b, "  %s -> %s [color=red, penwidth=2, label=\"cut\"];\n", id(v), id(s))
				} else {
					fmt.Fprintf(&b, "  %s -> %s;\n", id(v), id(s))
				}
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
