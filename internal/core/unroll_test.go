package core

import (
	"math/rand"
	"testing"

	"idemproc/internal/cfg"
	"idemproc/internal/ir"
	"idemproc/internal/ssa"
)

const countdownSrc = `
func @cd(i64 %n) i64 {
e:
  br l
l:
  %i = phi [e: %n], [l: %i2]
  %acc = phi [e: 0], [l: %acc2]
  %acc2 = add %acc, %i
  %i2 = sub %i, 1
  %c = gt %i2, 0
  condbr %c, l, d
d:
  ret %acc2
}
`

func TestUnrollOncePreservesSemantics(t *testing.T) {
	m := ir.MustParse(countdownSrc)
	f := m.Func("cd")
	var header *ir.Block
	for _, b := range f.Blocks {
		if b.Name == "l" {
			header = b
		}
	}
	if !UnrollOnce(f, header) {
		t.Fatalf("UnrollOnce refused a canonical while loop\n%s", ir.FuncString(f))
	}
	if err := ssa.VerifySSA(f); err != nil {
		t.Fatalf("SSA broken: %v\n%s", err, ir.FuncString(f))
	}
	for _, n := range []ir.Word{1, 2, 3, 7, 10} {
		in := ir.NewInterp(m, 64)
		got, err := in.Run("cd", n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := n * (n + 1) / 2
		if got != want {
			t.Fatalf("cd(%d) = %d, want %d\n%s", n, got, want, ir.FuncString(f))
		}
	}
}

func TestUnrollDoublesLoopBody(t *testing.T) {
	m := ir.MustParse(countdownSrc)
	f := m.Func("cd")
	before := len(f.Blocks)
	var header *ir.Block
	for _, b := range f.Blocks {
		if b.Name == "l" {
			header = b
		}
	}
	if !UnrollOnce(f, header) {
		t.Fatal("unroll refused")
	}
	if len(f.Blocks) != before+1 {
		t.Fatalf("blocks: %d → %d, want +1 (single-block loop cloned)", before, len(f.Blocks))
	}
	// The loop should now contain both copies.
	info := cfg.Compute(f)
	if len(info.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(info.Loops))
	}
	if len(info.Loops[0].Blocks) != 2 {
		t.Fatalf("unrolled loop body has %d blocks, want 2", len(info.Loops[0].Blocks))
	}
}

func TestUnrollRefusesMultiExit(t *testing.T) {
	src := `
func @f(i64 %n, i64 %m) i64 {
e:
  br l
l:
  %i = phi [e: 0], [l2: %i2]
  %c1 = eq %i, %m
  condbr %c1, x1, l2
l2:
  %i2 = add %i, 1
  %c2 = lt %i2, %n
  condbr %c2, l, x2
x1:
  ret 1
x2:
  ret 2
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	var header *ir.Block
	for _, b := range f.Blocks {
		if b.Name == "l" {
			header = b
		}
	}
	if UnrollOnce(f, header) {
		t.Fatal("unroll must refuse a two-exit loop")
	}
	// And the function must be untouched (still verifies, same blocks).
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 5 {
		t.Fatalf("refusal must not mutate; blocks = %d", len(f.Blocks))
	}
}

func TestUnrollLoopWithMemory(t *testing.T) {
	src := `
global @a [32]

func @fill(i64 %n) i64 {
e:
  %b = global @a
  br l
l:
  %i = phi [e: 0], [l: %i2]
  %p = add %b, %i
  store %p, %i
  %i2 = add %i, 1
  %c = lt %i2, %n
  condbr %c, l, d
d:
  %lp = add %b, 3
  %x = load %lp
  ret %x
}
`
	m := ir.MustParse(src)
	f := m.Func("fill")
	var header *ir.Block
	for _, b := range f.Blocks {
		if b.Name == "l" {
			header = b
		}
	}
	if !UnrollOnce(f, header) {
		t.Fatal("unroll refused")
	}
	in := ir.NewInterp(m, 128)
	got, err := in.Run("fill", 9)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("fill(9) read a[3] = %d, want 3", got)
	}
}

// TestConstructRandomPrograms: Construct on randomly generated
// memory-mutating programs must always produce a verifiable decomposition
// and preserve interpreter semantics.
func TestConstructRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		src := randomProgram(rng)
		ref := ir.MustParse(src)
		subj := ir.MustParse(src)
		res, err := Construct(subj.Func("f"), DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v\nsource:\n%s", trial, err, src)
		}
		if err := Check(res); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, arg := range []ir.Word{0, 1, 5} {
			a := ir.NewInterp(ref, 512)
			b := ir.NewInterp(subj, 512)
			ra, ea := a.Run("f", arg)
			rb, eb := b.Run("f", arg)
			if (ea == nil) != (eb == nil) {
				t.Fatalf("trial %d arg %d: error divergence %v vs %v\n%s", trial, arg, ea, eb, src)
			}
			if ea == nil && ra != rb {
				t.Fatalf("trial %d arg %d: %d vs %d\nsource:\n%s\ntransformed:\n%s",
					trial, arg, ra, rb, src, ir.FuncString(subj.Func("f")))
			}
			// Global memory must match too.
			ga, gb := a.GlobalAddr("g"), b.GlobalAddr("g")
			for i := int64(0); i < 8; i++ {
				if a.Mem[ga+i] != b.Mem[gb+i] {
					t.Fatalf("trial %d arg %d: memory diverges at g[%d]\n%s", trial, arg, i, src)
				}
			}
		}
	}
}

// randomProgram emits a small single-loop function that loads, stores and
// accumulates over a global array — enough to generate antidependences of
// both alias flavours.
func randomProgram(rng *rand.Rand) string {
	body := ""
	stmts := []string{}
	vals := []string{"%i", "%acc"}
	fresh := 0
	nv := func() string {
		fresh++
		return []string{"%v", "%w", "%x", "%y", "%z"}[fresh%5] + string(rune('a'+fresh/5))
	}
	for k := 0; k < 1+rng.Intn(4); k++ {
		switch rng.Intn(4) {
		case 0: // load
			v := nv()
			idx := vals[rng.Intn(len(vals))]
			stmts = append(stmts, "  %p"+v[1:]+" = rem "+idx+", 8",
				"  %q"+v[1:]+" = add %gbase, %p"+v[1:],
				"  "+v+" = load %q"+v[1:])
			vals = append(vals, v)
		case 1: // store
			idx := vals[rng.Intn(len(vals))]
			val := vals[rng.Intn(len(vals))]
			s := nv()
			stmts = append(stmts, "  %p"+s[1:]+" = rem "+idx+", 8",
				"  %q"+s[1:]+" = add %gbase, %p"+s[1:],
				"  store %q"+s[1:]+", "+val)
		case 2: // arith
			v := nv()
			a := vals[rng.Intn(len(vals))]
			b := vals[rng.Intn(len(vals))]
			stmts = append(stmts, "  "+v+" = add "+a+", "+b)
			vals = append(vals, v)
		case 3: // arith with constant
			v := nv()
			a := vals[rng.Intn(len(vals))]
			stmts = append(stmts, "  "+v+" = mul "+a+", 3")
			vals = append(vals, v)
		}
	}
	for _, s := range stmts {
		body += s + "\n"
	}
	last := vals[len(vals)-1]
	return `
global @g [8]

func @f(i64 %n) i64 {
e:
  %gbase = global @g
  br l
l:
  %i = phi [e: 0], [l: %i2]
  %acc = phi [e: 0], [l: %accN]
` + body + `
  %accN = add %acc, ` + last + `
  %i2 = add %i, 1
  %c = lt %i2, %n
  condbr %c, l, d
d:
  ret %accN
}
`
}
