package core

import (
	"fmt"

	"idemproc/internal/cfg"
	"idemproc/internal/ir"
	"idemproc/internal/ssa"
)

// UnrollOnce duplicates the body of the natural loop headed at header so
// that one trip around the original cycle executes two logical iterations
// (the §5 enhancement: "before inserting cuts, we attempt to unroll the
// containing loop once if possible", which lets the second required cut
// land in the unrolled iteration and enables double buffering of
// self-dependent φs).
//
// The transformation is conservative: it requires a single latch and a
// single exit block whose predecessors all lie in the loop, and every
// loop-defined value used outside the loop must come from a block
// dominating the exit. It returns false (leaving f untouched) when the
// shape does not fit; the caller then falls back to inserting cuts.
func UnrollOnce(f *ir.Func, header *ir.Block) bool {
	f.RemoveUnreachable()
	info := cfg.Compute(f)
	var loop *cfg.Loop
	for _, l := range info.Loops {
		if l.Header == header {
			loop = l
		}
	}
	if loop == nil || len(loop.Latches) != 1 {
		return false
	}
	latch := loop.Latches[0]
	inLoop := map[*ir.Block]bool{}
	for _, b := range loop.Blocks {
		inLoop[b] = true
	}

	// Find the unique exit block.
	var exit *ir.Block
	for _, b := range loop.Blocks {
		for _, s := range b.Succs {
			if inLoop[s] {
				continue
			}
			if exit == nil {
				exit = s
			} else if exit != s {
				return false // multiple exit blocks
			}
		}
	}
	if exit == nil {
		return false // infinite loop
	}
	for _, p := range exit.Preds {
		if !inLoop[p] {
			return false // exit reachable from outside the loop
		}
	}

	// Values defined in the loop and used outside must dominate the exit
	// so a merge φ in the exit block is well-formed.
	usedOutside := outsideUses(f, inLoop)
	for v := range usedOutside {
		if !info.Dominates(v.Block, exit) {
			return false
		}
	}

	// ---- Clone the body. ----
	vmap := map[*ir.Value]*ir.Value{}
	bmap := map[*ir.Block]*ir.Block{}
	for _, b := range loop.Blocks {
		nb := f.NewBlock()
		nb.Name = b.Name + ".u"
		bmap[b] = nb
		for _, v := range b.Instrs {
			nv := f.NewValue(v.Op, v.Type, make([]*ir.Value, len(v.Args))...)
			nv.ConstInt, nv.ConstFloat, nv.Aux = v.ConstInt, v.ConstFloat, v.Aux
			nv.Block = nb
			nb.Instrs = append(nb.Instrs, nv)
			vmap[v] = nv
		}
	}
	mapped := func(v *ir.Value) *ir.Value {
		if nv, ok := vmap[v]; ok {
			return nv
		}
		return v
	}

	// Clone argument lists (header φs fixed up separately below).
	for _, b := range loop.Blocks {
		for _, v := range b.Instrs {
			nv := vmap[v]
			for i, a := range v.Args {
				if a != nil {
					nv.Args[i] = mapped(a)
				}
			}
		}
	}

	// Clone CFG edges. In-loop successors go to the clone, exit edges go
	// to the shared exit block, and the clone latch's back edge returns
	// to the ORIGINAL header. Predecessor lists of cloned blocks mirror
	// the originals position-for-position so φ arguments stay aligned.
	hClone := bmap[header]
	for _, b := range loop.Blocks {
		nb := bmap[b]
		for _, s := range b.Succs {
			switch {
			case s == header: // back edge: clone latch → original header
				nb.Succs = append(nb.Succs, header)
			case inLoop[s]:
				nb.Succs = append(nb.Succs, bmap[s])
			default: // exit edge
				nb.Succs = append(nb.Succs, exit)
			}
		}
		if b != header {
			for _, p := range b.Preds {
				nb.Preds = append(nb.Preds, bmap[p])
			}
		}
	}

	// Original header φs: the back edge now arrives from the clone latch
	// carrying the clone's values.
	li := header.PredIndex(latch)
	header.Preds[li] = bmap[latch]
	bmap[latch].ReplaceSucc(header, header) // no-op, keeps symmetry clear
	for _, phi := range header.Phis() {
		phi.Args[li] = mapped(phi.Args[li])
	}

	// Clone header φs: the clone header's only predecessor is the
	// original latch, and the incoming value is the ORIGINAL back-edge
	// argument (iteration i's value, not the clone's).
	latch.ReplaceSucc(header, hClone)
	hClone.Preds = []*ir.Block{latch}
	for _, phi := range header.Phis() {
		cphi := vmap[phi]
		orig := phi.Args[li]
		// phi.Args[li] was remapped above; recover the original through
		// the inverse: mapped(orig)==phi.Args[li].
		_ = orig
		cphi.Op = ir.OpCopy
		cphi.Args = []*ir.Value{originalBackArg(phi, vmap, li)}
	}

	// Exit block: add clone predecessors and extend φs, pairing each new
	// pred with the clone of the corresponding original edge (handles
	// duplicate predecessors positionally).
	origPreds := append([]*ir.Block{}, exit.Preds...)
	for pi, p := range origPreds {
		exit.Preds = append(exit.Preds, bmap[p])
		for _, phi := range exit.Phis() {
			phi.Args = append(phi.Args, mapped(phi.Args[pi]))
		}
	}

	// Merge φs for loop-defined values used beyond the exit block's φs.
	for _, v := range orderedValues(f, usedOutside) {
		phi := f.NewValue(ir.OpPhi, v.Type, make([]*ir.Value, len(exit.Preds))...)
		for i, p := range exit.Preds {
			if inLoop[p] {
				phi.Args[i] = v
			} else {
				phi.Args[i] = mapped(v)
			}
		}
		phi.Block = exit
		at := 0
		for at < len(exit.Instrs) && exit.Instrs[at].Op == ir.OpPhi {
			at++
		}
		exit.Instrs = append(exit.Instrs, nil)
		copy(exit.Instrs[at+1:], exit.Instrs[at:])
		exit.Instrs[at] = phi

		// Rewrite uses outside the loop and its clone (and outside the
		// merge φs just created).
		for _, b := range f.Blocks {
			if inLoop[b] || isClone(b, bmap) {
				continue
			}
			for _, u := range b.Instrs {
				if u == phi {
					continue
				}
				if b == exit && u.Op == ir.OpPhi {
					continue // per-edge φ args already correct
				}
				for i, a := range u.Args {
					if a == v {
						u.Args[i] = phi
					}
				}
			}
		}
	}

	f.Renumber()
	if err := ir.Verify(f); err != nil {
		panic(fmt.Sprintf("core: UnrollOnce produced invalid IR: %v", err))
	}
	if err := ssa.VerifySSA(f); err != nil {
		panic(fmt.Sprintf("core: UnrollOnce broke SSA: %v", err))
	}
	return true
}

// originalBackArg recovers the pre-remap back-edge argument of a header φ:
// after the header fix-up, Args[li] holds the clone; invert vmap.
func originalBackArg(phi *ir.Value, vmap map[*ir.Value]*ir.Value, li int) *ir.Value {
	cur := phi.Args[li]
	for o, c := range vmap {
		if c == cur {
			return o
		}
	}
	return cur // value was defined outside the loop; unmapped
}

func isClone(b *ir.Block, bmap map[*ir.Block]*ir.Block) bool {
	for _, c := range bmap {
		if c == b {
			return true
		}
	}
	return false
}

// outsideUses returns loop-defined values with at least one use outside
// the loop.
func outsideUses(f *ir.Func, inLoop map[*ir.Block]bool) map[*ir.Value]bool {
	out := map[*ir.Value]bool{}
	for _, b := range f.Blocks {
		if inLoop[b] {
			continue
		}
		for _, v := range b.Instrs {
			if v.Op == ir.OpPhi {
				// A φ use counts as a use at the predecessor's exit.
				for i, a := range v.Args {
					if a != nil && a.Block != nil && inLoop[a.Block] && !inLoop[b.Preds[i]] {
						out[a] = true
					}
				}
				continue
			}
			for _, a := range v.Args {
				if a.Block != nil && inLoop[a.Block] {
					out[a] = true
				}
			}
		}
	}
	return out
}

// orderedValues returns the map's keys in deterministic program order.
func orderedValues(f *ir.Func, set map[*ir.Value]bool) []*ir.Value {
	var out []*ir.Value
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if set[v] {
				out = append(out, v)
			}
		}
	}
	return out
}
