package core

import "idemproc/internal/ir"

// PureFunctions computes the set of functions that provably touch no
// memory: no loads, no stores, no allocas, and calls only to other pure
// functions (greatest fixed point, so mutual recursion is handled).
//
// A call to a pure function cannot participate in any memory
// antidependence, so the intra-procedural region construction may let
// regions span it instead of forcing the call into its own region — a
// first step toward the inter-procedural analysis the paper's limit study
// motivates (§3: "a substantial gain from allowing idempotent regions ...
// to cross function boundaries"). Enable it by passing the result in
// Options.PureFuncs.
func PureFunctions(m *ir.Module) map[string]bool {
	pure := map[string]bool{}
	for _, f := range m.Funcs {
		pure[f.Name] = true
	}
	for changed := true; changed; {
		changed = false
		for _, f := range m.Funcs {
			if !pure[f.Name] {
				continue
			}
			if !funcLooksPure(f, pure) {
				pure[f.Name] = false
				changed = true
			}
		}
	}
	// Drop the negatives for a clean set.
	for name, p := range pure {
		if !p {
			delete(pure, name)
		}
	}
	return pure
}

func funcLooksPure(f *ir.Func, pure map[string]bool) bool {
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			switch v.Op {
			case ir.OpLoad, ir.OpStore, ir.OpAlloca, ir.OpGlobal:
				return false
			case ir.OpCall:
				if !pure[v.Aux] {
					return false
				}
			}
		}
	}
	return true
}
