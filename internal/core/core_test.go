package core

import (
	"strings"
	"testing"

	"idemproc/internal/ir"
)

// listPushSrc is the paper's running example (Fig. 1): push an element
// onto a bounded list. The increment of list->size on the taken path is
// the semantic clobber antidependence that forces a region boundary.
//
// Layout: list[0] = size, list[1] = capacity, list[2..] = data.
const listPushSrc = `
global @the_list [18] = {0, 16}

func @list_push(i64 %list, i64 %e) void {
b1:
  %size = load %list          ; S1: read list->size (region input)
  %cap1 = add %list, 1
  %cap = load %cap1           ; S2: read list->capacity
  %full = ge %size, %cap
  condbr %full, b3, b2
b2:
  %base = add %list, 2
  %slot = add %base, %size
  store %slot, %e             ; S9: write data slot
  %newsize = add %size, 1
  store %list, %newsize       ; S10: write list->size — clobbers S1's read
  br b3
b3:
  ret
}
`

func constructSrc(t *testing.T, src, fn string, opts Options) (*ir.Module, *Result) {
	t.Helper()
	m := ir.MustParse(src)
	f := m.Func(fn)
	res, err := Construct(f, opts)
	if err != nil {
		t.Fatalf("Construct: %v\n%s", err, ir.FuncString(f))
	}
	return m, res
}

func TestListPushExample(t *testing.T) {
	_, res := constructSrc(t, listPushSrc, "list_push", DefaultOptions())

	if len(res.Antideps) < 2 {
		t.Fatalf("expected ≥2 semantic antidependences (S1→S10 and friends), got %d", len(res.Antideps))
	}
	// A single cut covers every antidependence (the paper: "it is
	// possible to place a single cut that cuts both antidependences").
	if res.Stats.CutsFromMulticut != 1 {
		t.Fatalf("multicut cuts = %d, want 1\n%s", res.Stats.CutsFromMulticut, DumpRegions(res))
	}
	// The cut must fall after both loads and before both stores: loads in
	// the entry region, stores in the cut region.
	for _, r := range res.Regions {
		hasLoad, hasStore := false, false
		for _, v := range r.Instrs {
			switch v.Op {
			case ir.OpLoad:
				hasLoad = true
			case ir.OpStore:
				hasStore = true
			}
		}
		if hasLoad && hasStore {
			t.Fatalf("a region contains both the reads and the writes\n%s", DumpRegions(res))
		}
	}
	// Two regions: the entry region (both paths through the branch share
	// the entry, §2.3) and the region opened by the cut.
	if len(res.Regions) != 2 {
		t.Fatalf("regions = %d, want 2\n%s", len(res.Regions), DumpRegions(res))
	}
}

func TestListPushSemanticsPreserved(t *testing.T) {
	// Execute pushes through the interpreter before and after
	// construction; final memory-visible behaviour must match.
	run := func(m *ir.Module) []ir.Word {
		in := ir.NewInterp(m, 256)
		base := ir.Word(in.GlobalAddr("the_list"))
		for e := 0; e < 5; e++ {
			if _, err := in.Run("list_push", base, ir.Word(e*7)); err != nil {
				t.Fatal(err)
			}
		}
		out := []ir.Word{in.Mem[base]}
		for i := 0; i < 5; i++ {
			out = append(out, in.Mem[int(base)+2+i])
		}
		return out
	}
	orig := run(ir.MustParse(listPushSrc))
	m2 := ir.MustParse(listPushSrc)
	if _, err := Construct(m2.Func("list_push"), DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	got := run(m2)
	for i := range orig {
		if got[i] != orig[i] {
			t.Fatalf("construction changed semantics at %d: %v vs %v", i, got, orig)
		}
	}
	if orig[0] != 5 || orig[3] != 14 {
		t.Fatalf("baseline behaviour wrong: %v", orig)
	}
}

func TestRetSplitWhenNoCuts(t *testing.T) {
	// A function with no memory antidependences gets the §5 split so the
	// calling convention can reuse parameter registers.
	src := `
func @pure(i64 %a, i64 %b) i64 {
e:
  %x = mul %a, %b
  %y = add %x, 3
  ret %y
}
`
	_, res := constructSrc(t, src, "pure", DefaultOptions())
	if res.Stats.CutsFromRetSplit != 1 {
		t.Fatalf("ret-split cuts = %d, want 1", res.Stats.CutsFromRetSplit)
	}
	if len(res.Regions) != 2 {
		t.Fatalf("regions = %d, want 2", len(res.Regions))
	}
}

func TestSelfDepCase1NoCuts(t *testing.T) {
	// A pure-register reduction loop: the induction φs are self-dependent
	// but the loop has no cuts — case 1.
	src := `
func @sum(i64 %n) i64 {
e:
  br l
l:
  %i = phi [e: 0], [l: %i2]
  %acc = phi [e: 0], [l: %acc2]
  %acc2 = add %acc, %i
  %i2 = add %i, 1
  %c = lt %i2, %n
  condbr %c, l, d
d:
  ret %acc2
}
`
	_, res := constructSrc(t, src, "sum", DefaultOptions())
	if len(res.SelfDep) == 0 {
		t.Fatal("self-dependent φs not detected")
	}
	for _, sd := range res.SelfDep {
		if sd.Case != SelfDepNoCuts {
			t.Fatalf("case = %v, want no-cuts", sd.Case)
		}
	}
	if res.Stats.CutsFromSelfDep != 0 {
		t.Fatal("no self-dep cuts should be needed")
	}
}

func TestSelfDepCase3GetsResolved(t *testing.T) {
	// A loop with a memory clobber (store to a global accumulator slot)
	// forces a cut inside the loop; the induction φ then needs case 2,
	// via unroll or inserted cuts. Either way Check must pass.
	src := `
global @hist [64]

func @hist_update(i64 %n) void {
e:
  %h = global @hist
  br l
l:
  %i = phi [e: 0], [l2: %i2]
  %slot = rem %i, 64
  %p = add %h, %slot
  %old = load %p
  %new = add %old, 1
  store %p, %new
  br l2
l2:
  %i2 = add %i, 1
  %c = lt %i2, %n
  condbr %c, l, d
d:
  ret
}
`
	for _, unroll := range []bool{true, false} {
		opts := DefaultOptions()
		opts.UnrollLoops = unroll
		m := ir.MustParse(src)
		f := m.Func("hist_update")
		res, err := Construct(f, opts)
		if err != nil {
			t.Fatalf("unroll=%v: %v\n%s", unroll, err, ir.FuncString(f))
		}
		for _, sd := range res.SelfDep {
			if sd.Case == SelfDepInsertedCuts {
				t.Fatalf("unroll=%v: loop left in unresolved case 3", unroll)
			}
		}
		if unroll && res.Stats.LoopsUnrolled != 1 {
			t.Fatalf("expected 1 unrolled loop, got %d", res.Stats.LoopsUnrolled)
		}
		// Semantics: hist[i%64] incremented n times total.
		in := ir.NewInterp(m, 256)
		if _, err := in.Run("hist_update", 130); err != nil {
			t.Fatal(err)
		}
		base := in.GlobalAddr("hist")
		total := ir.Word(0)
		for i := int64(0); i < 64; i++ {
			total += in.Mem[base+i]
		}
		if total != 130 {
			t.Fatalf("unroll=%v: histogram total = %d, want 130", unroll, total)
		}
	}
}

func TestCallsBecomeOwnRegions(t *testing.T) {
	src := `
global @g [1]

func @callee() void {
e:
  %ga = global @g
  store %ga, 1
  ret
}

func @caller() i64 {
e:
  %x = const 5
  call @callee()
  %y = add %x, 1
  ret %y
}
`
	m := ir.MustParse(src)
	f := m.Func("caller")
	res, err := Construct(f, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CutsFromCalls != 2 {
		t.Fatalf("call cuts = %d, want 2 (before call, after call)", res.Stats.CutsFromCalls)
	}
	var call *ir.Value
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == ir.OpCall {
				call = v
			}
		}
	}
	if !res.Cuts[call] {
		t.Fatal("no cut before the call")
	}
}

func TestNoCutAtCallsOption(t *testing.T) {
	src := `
func @callee() void {
e:
  ret
}

func @caller() i64 {
e:
  call @callee()
  ret 1
}
`
	m := ir.MustParse(src)
	opts := DefaultOptions()
	opts.CutAtCalls = false
	res, err := Construct(m.Func("caller"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CutsFromCalls != 0 {
		t.Fatal("CutAtCalls=false must not cut at calls")
	}
}

func TestLoopHeuristicKeepsCutsOutOfLoops(t *testing.T) {
	// An antidependence whose read is before the loop and write after:
	// candidates include loop-interior nodes; the heuristic must prefer a
	// depth-0 candidate.
	src := `
global @g [1]

func @f(i64 %n) i64 {
e:
  %ga = global @g
  %x = load %ga
  br l
l:
  %i = phi [e: 0], [l: %i2]
  %i2 = add %i, 1
  %c = lt %i2, %n
  condbr %c, l, d
d:
  %y = add %x, %i2
  store %ga, %y
  ret %y
}
`
	_, res := constructSrc(t, src, "f", DefaultOptions())
	for v := range res.Cuts {
		if v.Block.Name == "l" {
			t.Fatalf("cut placed inside loop despite depth-0 candidates\n%s", DumpRegions(res))
		}
	}
}

func TestMaterializeCoversEverything(t *testing.T) {
	_, res := constructSrc(t, listPushSrc, "list_push", DefaultOptions())
	g := BuildInstrGraph(res.F)
	seen := map[*ir.Value]bool{}
	for _, r := range res.Regions {
		for _, v := range r.Instrs {
			seen[v] = true
		}
	}
	for v := range g.Order {
		if !seen[v] {
			t.Fatalf("instruction not in any region: %s", v.LongString())
		}
	}
}

func TestCheckDetectsMissingCut(t *testing.T) {
	_, res := constructSrc(t, listPushSrc, "list_push", DefaultOptions())
	// Sabotage: remove all cuts. Check must now fail on the antideps.
	res.Cuts = map[*ir.Value]bool{}
	res.Regions = Materialize(res.F, res.Cuts)
	if err := Check(res); err == nil {
		t.Fatal("Check accepted a cut-free decomposition with antidependences")
	}
}

func TestDumpRegionsRenders(t *testing.T) {
	_, res := constructSrc(t, listPushSrc, "list_push", DefaultOptions())
	out := DumpRegions(res)
	if len(out) == 0 || res.Stats.RegionCount == 0 {
		t.Fatal("empty dump")
	}
}

func TestDotRegionsRenders(t *testing.T) {
	_, res := constructSrc(t, listPushSrc, "list_push", DefaultOptions())
	out := DotRegions(res)
	for _, want := range []string{"digraph", "cluster_0", "cut", "fillcolor"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dot output missing %q", want)
		}
	}
}
