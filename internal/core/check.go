package core

import (
	"fmt"

	"idemproc/internal/alias"
	"idemproc/internal/cfg"
	"idemproc/internal/dataflow"
	"idemproc/internal/ir"
)

// Check independently verifies a construction result: it re-derives the
// memory antidependences of the (already transformed) function and
// confirms the decomposition's correctness conditions:
//
//  1. Every memory antidependence (a, b) is separated: no execution path
//     from a to b avoids crossing a cut. Equivalently, b is unreachable
//     from a in the instruction graph with the entering edges of every cut
//     point removed. (This is the path-sensitive form of the paper's
//     "no antidependence edge contained in a region"; per footnote 4 an
//     edge whose endpoints lie in a region with no intra-region path is
//     safely contained.)
//  2. Every loop containing a self-dependent φ satisfies case 1 (no cuts
//     in the body) or case 2 (every cycle crosses ≥ 2 cuts), so register
//     allocation can always avoid re-introducing the clobber (§4.2.2).
//  3. Every instruction belongs to at least one region and region headers
//     are distinct (the decomposition conditions of §4.2.1).
func Check(res *Result) error {
	f := res.F
	g := BuildInstrGraph(f)

	// Condition 1: cut-free reachability must not connect read → write.
	ai := alias.Compute(f)
	reach := dataflow.ComputeReach(f)
	deps := dataflow.MemoryAntideps(f, ai, reach)
	for _, d := range deps {
		if pathAvoidingCuts(g, d.Read, d.Write, res.Cuts) {
			return fmt.Errorf("antidependence not separated: read %s → write %s",
				d.Read.LongString(), d.Write.LongString())
		}
	}

	// Condition 2: self-dependent loops are allocatable.
	f.RemoveUnreachable()
	info := cfg.Compute(f)
	for _, l := range info.Loops {
		if len(selfDepPhis(l)) == 0 {
			continue
		}
		if c := classifyLoop(l, res.Cuts); c == SelfDepInsertedCuts {
			return fmt.Errorf("loop at %s has a self-dependent φ but neither zero nor ≥2 cuts per cycle", l.Header.Name)
		}
	}

	// Condition 3: coverage and distinct headers.
	covered := map[int]bool{}
	seenHeader := map[int]bool{}
	for _, r := range res.Regions {
		h := g.Order[r.Header]
		if seenHeader[h] {
			return fmt.Errorf("duplicate region header %s", r.Header.LongString())
		}
		seenHeader[h] = true
		for _, v := range r.Instrs {
			covered[g.Order[v]] = true
		}
	}
	for v, o := range g.Order {
		if !covered[o] {
			return fmt.Errorf("instruction not covered by any region: %s", v.LongString())
		}
	}
	return nil
}

// pathAvoidingCuts reports whether an execution path of ≥1 step exists
// from a to b that never *enters* a cut instruction. (Starting at a is
// free even if a is itself a cut; the path is separated only when some
// boundary is crossed after a and strictly before executing b.)
func pathAvoidingCuts(g *InstrGraph, a, b *ir.Value, cuts map[*ir.Value]bool) bool {
	seen := map[*ir.Value]bool{}
	stack := []*ir.Value{}
	for _, s := range g.Succs[a] {
		if cuts[s] {
			continue
		}
		if s == b {
			return true
		}
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Succs[v] {
			if cuts[s] {
				continue
			}
			if s == b {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}
