package core

import (
	"idemproc/internal/cfg"
	"idemproc/internal/ir"
)

// selfDepPhis returns the loop-header φs that are self-dependent: the
// value flowing in along a back edge depends (through pseudoregister
// dataflow inside the loop) on the φ itself. In SSA these are exactly the
// paper's "self-dependent pseudoregister antidependences" (§4.2.2) —
// assignments of the form tᵢ = f(tᵢ) across iterations.
func selfDepPhis(l *cfg.Loop) []*ir.Value {
	var out []*ir.Value
	inLoop := map[*ir.Block]bool{}
	for _, b := range l.Blocks {
		inLoop[b] = true
	}
	for _, phi := range l.Header.Phis() {
		dep := false
		for i, p := range l.Header.Preds {
			if !inLoop[p] {
				continue // entry edge
			}
			if dependsOn(phi.Args[i], phi, inLoop, map[*ir.Value]bool{}) {
				dep = true
				break
			}
		}
		if dep {
			out = append(out, phi)
		}
	}
	return out
}

// dependsOn reports whether v transitively uses target through values
// defined inside the loop.
func dependsOn(v, target *ir.Value, inLoop map[*ir.Block]bool, seen map[*ir.Value]bool) bool {
	if v == target {
		return true
	}
	if v == nil || seen[v] || !inLoop[v.Block] {
		return false
	}
	seen[v] = true
	for _, a := range v.Args {
		if dependsOn(a, target, inLoop, seen) {
			return true
		}
	}
	return false
}

// classifyLoop decides the §4.2.2 case for a loop given the current cuts:
//
//   - SelfDepNoCuts if the loop body contains no cut points — the φ's
//     storage can be defined outside the loop (Fig. 7b);
//   - SelfDepTwoCuts if every cycle through the body crosses at least two
//     cuts — the φ can be double-buffered across boundaries (Fig. 7c);
//   - SelfDepInsertedCuts otherwise (the caller must add cuts or unroll).
func classifyLoop(l *cfg.Loop, cuts map[*ir.Value]bool) SelfDepCase {
	weight := map[*ir.Block]int{}
	total := 0
	for _, b := range l.Blocks {
		w := 0
		for _, v := range b.Instrs {
			if cuts[v] {
				w++
			}
		}
		weight[b] = w
		total += w
	}
	if total == 0 {
		return SelfDepNoCuts
	}
	if minCutsPerCycle(l, weight) >= 2 {
		return SelfDepTwoCuts
	}
	return SelfDepInsertedCuts
}

// minCutsPerCycle computes the minimum number of cut points crossed by any
// cycle of the loop: a shortest path (block cut-counts as weights) from
// the header to each latch, staying inside the loop. A traversal of a
// block executes all of its instructions, so it crosses all of the
// block's cuts.
func minCutsPerCycle(l *cfg.Loop, weight map[*ir.Block]int) int {
	const inf = int(1) << 30
	inLoop := map[*ir.Block]bool{}
	for _, b := range l.Blocks {
		inLoop[b] = true
	}
	dist := map[*ir.Block]int{l.Header: weight[l.Header]}
	// Bellman–Ford style relaxation: weights are small non-negative ints
	// and loops are small.
	for i := 0; i < len(l.Blocks); i++ {
		changed := false
		for _, b := range l.Blocks {
			db, ok := dist[b]
			if !ok {
				continue
			}
			for _, s := range b.Succs {
				if !inLoop[s] || s == l.Header {
					continue
				}
				nd := db + weight[s]
				if cur, ok := dist[s]; !ok || nd < cur {
					dist[s] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	min := inf
	for _, latch := range l.Latches {
		if d, ok := dist[latch]; ok && d < min {
			min = d
		}
	}
	if min == inf {
		return 0
	}
	return min
}

// classifySelfDeps produces the final report of self-dependent loops under
// the finished cut set.
func classifySelfDeps(f *ir.Func, info *cfg.Info, cuts map[*ir.Value]bool, unrolled map[*ir.Block]bool) []SelfDepInfo {
	var out []SelfDepInfo
	for _, l := range info.Loops {
		phis := selfDepPhis(l)
		if len(phis) == 0 {
			continue
		}
		c := classifyLoop(l, cuts)
		out = append(out, SelfDepInfo{
			Header:   l.Header,
			Phis:     phis,
			Case:     c,
			Unrolled: unrolled[l.Header],
		})
	}
	return out
}
