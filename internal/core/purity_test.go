package core

import (
	"testing"

	"idemproc/internal/ir"
)

const puritySrc = `
global @g [4]

func @mix(i64 %x) i64 {
e:
  %a = mul %x, 2654435761
  %b = xor %a, %x
  ret %b
}

func @helper(i64 %x) i64 {
e:
  %r = call @mix(%x)
  %r2 = add %r, 1
  ret %r2
}

func @impure(i64 %x) i64 {
e:
  %p = global @g
  %v = load %p
  %r = add %v, %x
  ret %r
}

func @selfrec(i64 %n) i64 {
e:
  %c = le %n, 0
  condbr %c, base, rec
base:
  ret 1
rec:
  %n1 = sub %n, 1
  %r = call @selfrec(%n1)
  %r2 = mul %r, %n
  ret %r2
}

func @callsimpure(i64 %x) i64 {
e:
  %r = call @impure(%x)
  ret %r
}
`

func TestPureFunctions(t *testing.T) {
	m := ir.MustParse(puritySrc)
	pure := PureFunctions(m)
	for _, want := range []string{"mix", "helper", "selfrec"} {
		if !pure[want] {
			t.Errorf("@%s should be pure", want)
		}
	}
	for _, not := range []string{"impure", "callsimpure"} {
		if pure[not] {
			t.Errorf("@%s should not be pure", not)
		}
	}
}

func TestPureCallsSkipCuts(t *testing.T) {
	src := `
global @out [4]

func @mix(i64 %x) i64 {
e:
  %a = mul %x, 31
  %b = add %a, 7
  ret %b
}

func @main(i64 %n) i64 {
e:
  %p = global @out
  br l
l:
  %i = phi [e: 0], [l: %i2]
  %h = call @mix(%i)
  %slot = rem %h, 4
  %q = add %p, %slot
  store %q, %h
  %i2 = add %i, 1
  %c = lt %i2, %n
  condbr %c, l, d
d:
  ret %i2
}
`
	count := func(pureOn bool) int {
		m := ir.MustParse(src)
		opts := DefaultOptions()
		if pureOn {
			opts.PureFuncs = PureFunctions(m)
		}
		res, err := Construct(m.Func("main"), opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := Check(res); err != nil {
			t.Fatal(err)
		}
		return res.Stats.CutsFromCalls
	}
	if got := count(true); got != 0 {
		t.Fatalf("pure mode: %d call cuts, want 0", got)
	}
	if got := count(false); got == 0 {
		t.Fatal("without pure mode the call must be cut")
	}
}
