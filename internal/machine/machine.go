// Package machine simulates the isa target: a two-issue in-order pipeline
// (the paper's gem5 ARMv7 model stand-in) with functional execution,
// cycle accounting, a store buffer that commits at region boundaries
// (§2.3), dynamic idempotent-path tracking (Figures 8/9), fault injection
// with taint-based DMR detection, and the three recovery schemes of §6.3.
package machine

import (
	"errors"
	"fmt"

	"idemproc/internal/codegen"
	"idemproc/internal/isa"
)

// Stats accumulates execution statistics.
type Stats struct {
	// DynInstrs counts executed instructions; Cycles is the pipeline
	// model's time.
	DynInstrs int64
	Cycles    int64
	// Loads/Stores/Marks count dynamic occurrences.
	Loads, Stores, Marks int64
	// Mispredicts counts branch mispredictions under the static
	// backward-taken predictor.
	Mispredicts int64
	// PathLens histograms dynamic idempotent path lengths (instructions
	// between consecutive region boundaries), when path tracking is on.
	PathLens map[int64]int64
	// Recoveries counts fault recoveries; Detections counts taint
	// detections (≥ Recoveries for TMR, which corrects in place).
	Recoveries, Detections int64
	// Faults counts injected faults.
	Faults int64
	// FirstFaultStep / FirstDetectStep record the dynamic instruction
	// index at which the first fault materialized and at which the first
	// detection fired (-1 when none); their difference is the detection
	// latency campaign reports aggregate.
	FirstFaultStep, FirstDetectStep int64
	// Reconciles counts boundary reconciliations of dead divergence.
	Reconciles int64
	// CacheHits/CacheMisses count L1 data cache outcomes (when the cache
	// model is enabled).
	CacheHits, CacheMisses int64
}

// AvgPathLen returns the mean dynamic path length.
func (s *Stats) AvgPathLen() float64 {
	var n, sum int64
	for l, c := range s.PathLens {
		n += c
		sum += l * c
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// WeightedPathCDF returns (lengths, cumulative execution-time fraction)
// pairs: each path weighted by its length, as in the paper's Figure 8.
func (s *Stats) WeightedPathCDF() ([]int64, []float64) {
	var lens []int64
	var total float64
	for l, c := range s.PathLens {
		lens = append(lens, l)
		total += float64(l * c)
	}
	sortInt64s(lens)
	cdf := make([]float64, len(lens))
	run := 0.0
	for i, l := range lens {
		run += float64(l * s.PathLens[l])
		cdf[i] = run / total
	}
	return lens, cdf
}

func sortInt64s(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Recovery selects the fault recovery scheme (§6.3).
type Recovery uint8

const (
	// RecoverNone halts with an error on detection.
	RecoverNone Recovery = iota
	// RecoverIdempotence re-executes from the register rp (the current
	// region's entry), relying on the idempotent compilation.
	RecoverIdempotence
	// RecoverCheckpointLog rolls memory back through the undo log and
	// restores the interval-start register checkpoint.
	RecoverCheckpointLog
	// RecoverTMR corrects values in place at MAJ instructions.
	RecoverTMR
)

// Config controls optional machine features.
type Config struct {
	// BufferStores holds stores in a buffer until the next MARK (§2.3);
	// required for RecoverIdempotence.
	BufferStores bool
	// TrackPaths records dynamic region path lengths.
	TrackPaths bool
	// Recovery selects the scheme driving CHECK/MAJ/MARK semantics.
	Recovery Recovery
	// LogBase/LogWords place the checkpoint-log scheme's undo log
	// (defaults: just past the globals, 2048 words = 1K stores).
	LogBase, LogWords int64
	// MaxSteps bounds execution (default 500M).
	MaxSteps int64
	// WatchdogRef enables the livelock watchdog: when > 0 it is the
	// fault-free reference dynamic-instruction count, and execution is
	// aborted with ErrLivelock once DynInstrs exceeds
	// WatchdogRef*WatchdogFactor + a fixed slack. Injected faults that
	// corrupt loop bounds (directly or through memory) otherwise spin
	// until the generic MaxSteps limit, which is orders of magnitude
	// larger and indistinguishable from a simulator bug.
	WatchdogRef int64
	// WatchdogFactor is the dynamic-instruction budget relative to the
	// fault-free reference (default 16x when WatchdogRef is set).
	WatchdogFactor float64
	// MaxRegionRetries bounds consecutive re-executions restarting at
	// the same point (default 64): a fault storm that re-corrupts every
	// re-execution escalates to ErrLivelock instead of spinning.
	MaxRegionRetries int
	// Tracer, if set, observes every executed instruction.
	Tracer Tracer
	// Cache configures the L1 data cache timing model; the zero value
	// means flat 2-cycle memory. Use DefaultCache() for the gem5-like
	// configuration the experiment drivers use.
	Cache CacheConfig
}

// Tracer observes execution (the limit study hooks in here).
type Tracer interface {
	// Instr is called after each instruction executes. memAddr is the
	// effective address for memory ops (else 0); sp is the current stack
	// pointer (for local-vs-non-local stack classification).
	Instr(in isa.Instr, memAddr int64, sp uint64)
	// Call/Ret are called at function boundaries.
	Call()
	Ret()
}

// Machine is one simulator instance.
type Machine struct {
	P    *codegen.Program
	Cfg  Config
	Regs [isa.NumIntRegs]uint64
	FReg [isa.NumFloatRegs]uint64
	Mem  []uint64
	PC   int

	Stats Stats

	// Pipeline model state.
	pipe  pipeline
	cache *dcache

	// Region / recovery state.
	storeBuf   []bufEntry
	rp         int
	rpSP, rpLR uint64
	pathLen    int64

	// Golden state: a fault-free mirror of the register files, computed
	// from golden sources in parallel with architectural execution. A
	// register is "tainted" (holds a corrupted or corruption-derived
	// value) exactly when its architectural and golden values differ —
	// which is precisely what a DMR shadow copy detects.
	golden    [isa.NumIntRegs]uint64
	goldenF   [isa.NumFloatRegs]uint64
	injecting bool
	// Livelock guard: consecutive boundary recoveries at the same restart
	// point reconcile dead corrupted registers (see mark handling).
	lastRecoverPC  int
	consecBoundary int

	// Shadow register banks for the DMR/TMR duplicated computations.
	shadow [2]shadowBank

	// Checkpoint-log state.
	logPtr   int64
	ckptRegs [isa.NumIntRegs]uint64
	ckptFReg [isa.NumFloatRegs]uint64
	ckptPC   int
	ckptLog  int64

	// Pending fault injections, sorted by step: the first register-writing
	// instruction at or after each step has destination bits flipped by
	// the recorded mask (single-bit for classic SEU, multi-bit for burst
	// faults).
	faultAt []pendingFault
	// Pending control-flow error injections (§2.3: branch misprediction
	// style failures), sorted: the first conditional branch at or after
	// each step takes the wrong direction.
	flipAt []int64
	// Pending memory-word corruptions, sorted by step: at the step'th
	// dynamic instruction the addressed word (in the store buffer if an
	// entry is outstanding, else backing memory) has mask bits flipped.
	memFaultAt []pendingMemFault
	// Pending boundary faults, sorted by arming step: each is primed by
	// the first MARK executed at or after its step and fires on the first
	// register write after that boundary (stressing early-region
	// corruption, where recovery must replay the whole region).
	boundaryAt []pendingFault
	primed     []uint64
	// Pending nested faults, sorted by recovery count: each fires on the
	// first register write once Stats.Recoveries reaches its threshold —
	// a fault injected during re-execution, testing recovery-under-failure.
	nestedAt []pendingNested
	// Livelock escalation state: consecutive re-executions restarting at
	// the same point.
	retryPC    int
	retryCount int
	livelocked bool
	// wrongPath is set while executing a mis-directed path; boundary
	// verification at the next MARK detects it.
	wrongPath bool
	// justRecovered suppresses the boundary taint check at the MARK a
	// recovery jumps to: corrupted non-input registers legitimately stay
	// divergent until the region's re-execution rewrites them; the check
	// there would otherwise livelock. Inputs are clean by construction
	// (§4.4 live-ins are never redefined in-region, so the fault cannot
	// have hit one).
	justRecovered bool

	halted bool
}

type shadowBank struct {
	regs [isa.NumIntRegs]uint64
	freg [isa.NumFloatRegs]uint64
}

type bufEntry struct {
	addr int64
	val  uint64
}

// ErrDetectedUnrecoverable reports a detection with RecoverNone.
var ErrDetectedUnrecoverable = errors.New("machine: fault detected, no recovery scheme")

// ErrLivelock reports the livelock watchdog firing: either the dynamic
// instruction budget relative to the fault-free reference was exhausted
// (an undetected fault corrupted forward progress, e.g. a loop bound held
// in memory) or the bounded re-execution retry counter overflowed (every
// re-execution was re-corrupted before reaching a boundary).
var ErrLivelock = errors.New("machine: livelock watchdog fired")

// New creates a machine for p.
func New(p *codegen.Program, cfg Config) *Machine {
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 500_000_000
	}
	if cfg.LogWords == 0 {
		cfg.LogWords = 2048
	}
	if cfg.LogBase == 0 {
		cfg.LogBase = p.GlobalEnd
	}
	m := &Machine{P: p, Cfg: cfg}
	m.Reset()
	return m
}

// Reset reinitializes memory, registers and statistics.
func (m *Machine) Reset() {
	m.Mem = make([]uint64, m.P.MemWords)
	for _, g := range m.P.Globals {
		base := m.P.GlobalBase[g.Name]
		for i, x := range g.Init {
			m.Mem[base+int64(i)] = uint64(x)
		}
	}
	m.Regs = [isa.NumIntRegs]uint64{}
	m.FReg = [isa.NumFloatRegs]uint64{}
	m.Stats = Stats{PathLens: map[int64]int64{}, FirstFaultStep: -1, FirstDetectStep: -1}
	m.pipe = pipeline{}
	if m.Cfg.Cache.Sets > 0 {
		m.cache = newDCache(m.Cfg.Cache)
	} else {
		m.cache = nil
	}
	m.storeBuf = nil
	m.golden = [isa.NumIntRegs]uint64{}
	m.goldenF = [isa.NumFloatRegs]uint64{}
	m.pathLen = 0
	m.logPtr = m.Cfg.LogBase
	m.ckptLog = m.Cfg.LogBase
	m.retryPC = -1
	m.retryCount = 0
	m.livelocked = false
	m.halted = false
}

// pendingFault is one scheduled register corruption (mask of bits to
// flip in the destination value).
type pendingFault struct {
	step int64
	mask uint64
}

// pendingMemFault is one scheduled memory-word corruption.
type pendingMemFault struct {
	step int64
	addr int64
	mask uint64
}

// pendingNested is one scheduled recovery-triggered corruption.
type pendingNested struct {
	after int64
	mask  uint64
}

// InjectFault schedules a single-bit corruption of the destination value
// of the first register-writing instruction executed at or after the
// step'th dynamic instruction (recovery instrumentation and redundant
// copies are outside the fault sphere and are skipped over).
func (m *Machine) InjectFault(step int64, bit uint) {
	m.InjectFaultMask(step, 1<<(bit%64))
}

// InjectFaultMask is InjectFault generalized to an arbitrary flip mask
// (multi-bit masks model burst faults).
func (m *Machine) InjectFaultMask(step int64, mask uint64) {
	i := 0
	for i < len(m.faultAt) && m.faultAt[i].step < step {
		i++
	}
	m.faultAt = append(m.faultAt, pendingFault{})
	copy(m.faultAt[i+1:], m.faultAt[i:])
	m.faultAt[i] = pendingFault{step: step, mask: mask}
	// Injection campaigns enable the golden mirror (it is pure overhead
	// otherwise).
	m.injecting = true
}

// InjectMemFault schedules a corruption of memory word addr at the
// step'th dynamic instruction: the current value of the word — in the
// store buffer when an entry is outstanding, else backing memory — has
// the mask bits flipped. Register-level redundancy (DMR/TMR shadow
// copies) does not cover memory, so these faults model the ECC-gap the
// AutoCheck line of work targets: they surface as silent data
// corruptions, crashes, or livelocks rather than detections.
func (m *Machine) InjectMemFault(step, addr int64, mask uint64) {
	i := 0
	for i < len(m.memFaultAt) && m.memFaultAt[i].step < step {
		i++
	}
	m.memFaultAt = append(m.memFaultAt, pendingMemFault{})
	copy(m.memFaultAt[i+1:], m.memFaultAt[i:])
	m.memFaultAt[i] = pendingMemFault{step: step, addr: addr, mask: mask}
	m.injecting = true
}

// InjectBoundaryFault schedules a region-boundary fault: armed at the
// step'th dynamic instruction, primed by the next MARK executed, and
// fired on the first register write after that boundary. It stresses
// corruption immediately after a region commit, where recovery has the
// maximal re-execution distance and the §4.4 live-in invariant carries
// the entire burden.
func (m *Machine) InjectBoundaryFault(step int64, mask uint64) {
	i := 0
	for i < len(m.boundaryAt) && m.boundaryAt[i].step < step {
		i++
	}
	m.boundaryAt = append(m.boundaryAt, pendingFault{})
	copy(m.boundaryAt[i+1:], m.boundaryAt[i:])
	m.boundaryAt[i] = pendingFault{step: step, mask: mask}
	m.injecting = true
}

// InjectNestedFault schedules a corruption of the first register write
// executed once Stats.Recoveries reaches after — i.e. a fault injected
// during the re-execution a previous recovery started, testing
// recovery-under-failure. If no recovery ever happens the fault stays
// vacuous.
func (m *Machine) InjectNestedFault(after int64, mask uint64) {
	i := 0
	for i < len(m.nestedAt) && m.nestedAt[i].after < after {
		i++
	}
	m.nestedAt = append(m.nestedAt, pendingNested{})
	copy(m.nestedAt[i+1:], m.nestedAt[i:])
	m.nestedAt[i] = pendingNested{after: after, mask: mask}
	m.injecting = true
}

// noteFault records a materialized fault.
func (m *Machine) noteFault() {
	m.Stats.Faults++
	if m.Stats.FirstFaultStep < 0 {
		m.Stats.FirstFaultStep = m.Stats.DynInstrs
	}
}

// noteDetect records a detection for the latency statistics.
func (m *Machine) noteDetect() {
	if m.Stats.FirstDetectStep < 0 {
		m.Stats.FirstDetectStep = m.Stats.DynInstrs
	}
}

// detectErr converts a failed recovery into the right sentinel.
func (m *Machine) detectErr() error {
	if m.livelocked {
		return ErrLivelock
	}
	return ErrDetectedUnrecoverable
}

// InjectControlFlowError schedules a branch-direction failure: the first
// conditional branch executed at or after the step'th dynamic instruction
// goes the wrong way. The wrong path executes speculatively (stores stay
// in the buffer) until the next region boundary's control-flow
// verification detects the failure and recovery re-executes from rp
// (§2.3, "tolerating control flow errors").
func (m *Machine) InjectControlFlowError(step int64) {
	i := 0
	for i < len(m.flipAt) && m.flipAt[i] < step {
		i++
	}
	m.flipAt = append(m.flipAt, 0)
	copy(m.flipAt[i+1:], m.flipAt[i:])
	m.flipAt[i] = step
}

// Run executes the program with up to four integer arguments, returning
// the value of r0 at HALT.
func (m *Machine) Run(args ...uint64) (uint64, error) {
	for i, a := range args {
		if i >= 4 {
			return 0, errors.New("machine: more than 4 integer arguments")
		}
		m.Regs[i] = a
		m.golden[i] = a
	}
	// Mirror any externally-set registers (e.g. float arguments placed in
	// f0..f3 by the caller) into the golden file.
	m.goldenF = m.FReg
	m.PC = m.P.Entry
	m.rp = m.PC
	if m.Cfg.Recovery == RecoverCheckpointLog {
		// The log pointer lives in rp (free in non-idempotent binaries);
		// take the initial, cost-free register checkpoint.
		m.Regs[isa.RP] = uint64(m.Cfg.LogBase)
		m.takeCheckpoint()
	}
	var wdBudget int64
	if m.Cfg.WatchdogRef > 0 {
		f := m.Cfg.WatchdogFactor
		if f <= 0 {
			f = 16
		}
		// The slack absorbs instrumentation and recovery overhead on
		// short programs.
		wdBudget = int64(float64(m.Cfg.WatchdogRef)*f) + 4096
	}
	for !m.halted {
		if err := m.step(); err != nil {
			return 0, err
		}
		if wdBudget > 0 && m.Stats.DynInstrs > wdBudget {
			return 0, fmt.Errorf("%w: %d dynamic instructions against a fault-free reference of %d",
				ErrLivelock, m.Stats.DynInstrs, m.Cfg.WatchdogRef)
		}
		if m.Stats.DynInstrs > m.Cfg.MaxSteps {
			return 0, fmt.Errorf("machine: step limit (%d) exceeded", m.Cfg.MaxSteps)
		}
	}
	return m.Regs[0], nil
}

func (m *Machine) loadMem(addr int64) (uint64, error) {
	if addr <= 0 || addr >= int64(len(m.Mem)) {
		return 0, fmt.Errorf("machine: load from invalid address %d (pc=%d, fn=%s)", addr, m.PC, m.fn())
	}
	// The store buffer forwards younger values.
	for i := len(m.storeBuf) - 1; i >= 0; i-- {
		if m.storeBuf[i].addr == addr {
			return m.storeBuf[i].val, nil
		}
	}
	return m.Mem[addr], nil
}

func (m *Machine) storeMem(addr int64, val uint64) error {
	if addr <= 0 || addr >= int64(len(m.Mem)) {
		return fmt.Errorf("machine: store to invalid address %d (pc=%d, fn=%s)", addr, m.PC, m.fn())
	}
	if m.Cfg.BufferStores {
		m.storeBuf = append(m.storeBuf, bufEntry{addr, val})
		return nil
	}
	m.Mem[addr] = val
	return nil
}

func (m *Machine) fn() string {
	if m.PC >= 0 && m.PC < len(m.P.FuncOf) {
		return m.P.FuncOf[m.PC]
	}
	return "?"
}

// commitRegion commits buffered stores and opens a new region at pc.
func (m *Machine) commitRegion() {
	for _, e := range m.storeBuf {
		m.Mem[e.addr] = e.val
	}
	m.storeBuf = m.storeBuf[:0]
	m.rp = m.PC
	m.rpSP = m.Regs[isa.SP]
	m.rpLR = m.Regs[isa.LR]
	if m.Cfg.TrackPaths {
		if m.pathLen > 0 {
			m.Stats.PathLens[m.pathLen]++
		}
		m.pathLen = 0
	}
}

// recover performs the configured recovery action. Returns false when the
// scheme cannot recover (RecoverNone) or the bounded re-execution retry
// counter overflowed (m.livelocked is then set and callers escalate to
// ErrLivelock via detectErr).
func (m *Machine) recoverFault() bool {
	m.Stats.Detections++
	m.noteDetect()
	// Bounded re-execution: count consecutive recoveries restarting at
	// the same point. A fresh fault during every re-execution (nested
	// injection) would otherwise respin forever.
	switch m.Cfg.Recovery {
	case RecoverIdempotence, RecoverCheckpointLog:
		target := m.rp
		if m.Cfg.Recovery == RecoverCheckpointLog {
			target = m.ckptPC
		}
		if m.retryPC == target {
			m.retryCount++
		} else {
			m.retryPC, m.retryCount = target, 1
		}
		limit := m.Cfg.MaxRegionRetries
		if limit <= 0 {
			limit = 64
		}
		if m.retryCount > limit {
			m.livelocked = true
			return false
		}
	}
	switch m.Cfg.Recovery {
	case RecoverIdempotence:
		// Discard speculative stores, restore the calling-convention
		// registers snapshotted at the boundary, clear taint, and
		// re-execute from the region entry held in rp (§6.3).
		m.storeBuf = m.storeBuf[:0]
		m.Regs[isa.SP] = m.rpSP
		m.Regs[isa.LR] = m.rpLR
		// The calling-convention snapshot is trusted (verified at the
		// boundary), so the golden mirror follows it.
		m.golden[isa.SP] = m.rpSP
		m.golden[isa.LR] = m.rpLR
		m.wrongPath = false
		m.justRecovered = true
		m.PC = m.rp
		m.pathLen = 0
		m.Stats.Recoveries++
		// Re-execution costs cycles; the pipeline model just keeps
		// counting, which is exactly the re-execution penalty.
		return true
	case RecoverCheckpointLog:
		// Unwind the undo log back to the checkpoint, restore the
		// register checkpoint, and resume from the checkpoint PC.
		for p := m.logPtr - 2; p >= m.ckptLog; p -= 2 {
			val, addr := m.Mem[p], int64(m.Mem[p+1])
			if addr > 0 && addr < int64(len(m.Mem)) {
				m.Mem[addr] = val
			}
		}
		m.logPtr = m.ckptLog
		m.Regs = m.ckptRegs
		m.FReg = m.ckptFReg
		// The checkpoint was verified clean when taken.
		m.golden = m.ckptRegs
		m.goldenF = m.ckptFReg
		// A wrong-path excursion is undone by the rollback; without this
		// the stale flag would re-trigger recovery at HALT forever.
		m.wrongPath = false
		m.PC = m.ckptPC
		m.Stats.Recoveries++
		return true
	default:
		return false
	}
}

// takeCheckpoint snapshots registers and the resume PC for the
// checkpoint-and-log scheme and resets the log (modelled as free, per the
// paper's optimistic assumption for register checkpointing and polling).
func (m *Machine) takeCheckpoint() {
	m.Regs[isa.RP] = uint64(m.Cfg.LogBase)
	// The log pointer is recovery infrastructure: its golden mirror
	// follows the reset (otherwise every checkpoint would look like a
	// divergence at the next wrap).
	m.golden[isa.RP] = uint64(m.Cfg.LogBase)
	m.ckptRegs = m.Regs
	m.ckptFReg = m.FReg
	m.ckptPC = m.PC
	m.ckptLog = m.Cfg.LogBase
	m.logPtr = m.Cfg.LogBase
	// A verified checkpoint is forward progress: reset the retry state.
	m.retryPC = -1
	m.retryCount = 0
}

// tainted reports whether r's architectural value diverges from the
// golden mirror.
func (m *Machine) tainted(r isa.Reg) bool {
	if r.IsFloat() {
		return m.FReg[r-16] != m.goldenF[r-16]
	}
	return m.Regs[r] != m.golden[r]
}

// anyTaint reports whether any register diverges (checked at region
// boundaries and checkpoints).
func (m *Machine) anyTaint() bool {
	if !m.injecting {
		return false
	}
	for i := range m.Regs {
		if m.Regs[i] != m.golden[i] {
			return true
		}
	}
	for i := range m.FReg {
		if m.FReg[i] != m.goldenF[i] {
			return true
		}
	}
	return false
}

// reconcile resynchronizes the golden mirror for registers whose
// corruption has proven dead: after a full re-execution of a region, any
// remaining divergence is in registers the region never rewrites (so the
// program never reads them before a rewrite either). Real DMR
// implementations re-copy the live set at synchronization points; this is
// the simulator's equivalent, and it breaks the boundary-recovery
// livelock a dead corrupted register would otherwise cause.
func (m *Machine) reconcile() {
	m.golden = m.Regs
	m.goldenF = m.FReg
}

// goldenOf reads r from the golden mirror.
func (m *Machine) goldenOf(r isa.Reg) uint64 {
	if r.IsFloat() {
		return m.goldenF[r-16]
	}
	return m.golden[r]
}

// setGolden writes r in the golden mirror.
func (m *Machine) setGolden(r isa.Reg, v uint64) {
	if r.IsFloat() {
		m.goldenF[r-16] = v
	} else {
		m.golden[r] = v
	}
}

// DebugReconcile toggles reconcile diagnostics (test hook).
func DebugReconcile(on bool) { debugReconcile = on }
