// Package machine simulates the isa target: a two-issue in-order pipeline
// (the paper's gem5 ARMv7 model stand-in) with functional execution,
// cycle accounting, a store buffer that commits at region boundaries
// (§2.3), dynamic idempotent-path tracking (Figures 8/9), fault injection
// with taint-based DMR detection, and the three recovery schemes of §6.3.
//
// The execution core is a predecoded, allocation-free hot loop (see
// predecode.go and docs/machine.md): programs are decoded once into
// dense operand-resolved records, the functional core and the pipeline
// model share one flat 48-register file (times three banks for the
// DMR/TMR shadow copies in the timing model), load forwarding out of the
// region store buffer is O(1) through a last-writer index, and the fault
// machinery — including the golden-mirror maintenance DMR detection is
// built on — costs nothing until the first scheduled event's step is
// reached.
package machine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"

	"idemproc/internal/codegen"
	"idemproc/internal/isa"
)

// Stats accumulates execution statistics.
type Stats struct {
	// DynInstrs counts executed instructions; Cycles is the pipeline
	// model's time.
	DynInstrs int64
	Cycles    int64
	// Loads/Stores/Marks count dynamic occurrences.
	Loads, Stores, Marks int64
	// Mispredicts counts branch mispredictions under the static
	// backward-taken predictor.
	Mispredicts int64
	// PathLens histograms dynamic idempotent path lengths (instructions
	// between consecutive region boundaries), when path tracking is on.
	PathLens map[int64]int64
	// Recoveries counts fault recoveries; Detections counts taint
	// detections (≥ Recoveries for TMR, which corrects in place).
	Recoveries, Detections int64
	// Faults counts injected faults.
	Faults int64
	// FirstFaultStep / FirstDetectStep record the dynamic instruction
	// index at which the first fault materialized and at which the first
	// detection fired (-1 when none); their difference is the detection
	// latency campaign reports aggregate.
	FirstFaultStep, FirstDetectStep int64
	// Reconciles counts boundary reconciliations of dead divergence.
	Reconciles int64
	// CacheHits/CacheMisses count L1 data cache outcomes (when the cache
	// model is enabled).
	CacheHits, CacheMisses int64
}

// AvgPathLen returns the mean dynamic path length.
func (s *Stats) AvgPathLen() float64 {
	var n, sum int64
	for l, c := range s.PathLens {
		n += c
		sum += l * c
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// WeightedPathCDF returns (lengths, cumulative execution-time fraction)
// pairs: each path weighted by its length, as in the paper's Figure 8.
func (s *Stats) WeightedPathCDF() ([]int64, []float64) {
	type lc struct {
		l, c int64
	}
	pairs := make([]lc, 0, len(s.PathLens))
	var total float64
	for l, c := range s.PathLens {
		pairs = append(pairs, lc{l, c})
		total += float64(l * c)
	}
	slices.SortFunc(pairs, func(a, b lc) int {
		switch {
		case a.l < b.l:
			return -1
		case a.l > b.l:
			return 1
		}
		return 0
	})
	lens := make([]int64, len(pairs))
	cdf := make([]float64, len(pairs))
	run := 0.0
	for i, p := range pairs {
		lens[i] = p.l
		run += float64(p.l * p.c)
		cdf[i] = run / total
	}
	return lens, cdf
}

// Recovery selects the fault recovery scheme (§6.3).
type Recovery uint8

const (
	// RecoverNone halts with an error on detection.
	RecoverNone Recovery = iota
	// RecoverIdempotence re-executes from the register rp (the current
	// region's entry), relying on the idempotent compilation.
	RecoverIdempotence
	// RecoverCheckpointLog rolls memory back through the undo log and
	// restores the interval-start register checkpoint.
	RecoverCheckpointLog
	// RecoverTMR corrects values in place at MAJ instructions.
	RecoverTMR
)

// Config controls optional machine features.
type Config struct {
	// BufferStores holds stores in a buffer until the next MARK (§2.3);
	// required for RecoverIdempotence.
	BufferStores bool
	// TrackPaths records dynamic region path lengths.
	TrackPaths bool
	// Recovery selects the scheme driving CHECK/MAJ/MARK semantics.
	Recovery Recovery
	// LogBase/LogWords place the checkpoint-log scheme's undo log
	// (defaults: just past the globals, 2048 words = 1K stores).
	LogBase, LogWords int64
	// MaxSteps bounds execution (default 500M).
	MaxSteps int64
	// WatchdogRef enables the livelock watchdog: when > 0 it is the
	// fault-free reference dynamic-instruction count, and execution is
	// aborted with ErrLivelock once DynInstrs exceeds
	// WatchdogRef*WatchdogFactor + a fixed slack. Injected faults that
	// corrupt loop bounds (directly or through memory) otherwise spin
	// until the generic MaxSteps limit, which is orders of magnitude
	// larger and indistinguishable from a simulator bug.
	WatchdogRef int64
	// WatchdogFactor is the dynamic-instruction budget relative to the
	// fault-free reference (default 16x when WatchdogRef is set).
	WatchdogFactor float64
	// MaxRegionRetries bounds consecutive re-executions restarting at
	// the same point (default 64): a fault storm that re-corrupts every
	// re-execution escalates to ErrLivelock instead of spinning.
	MaxRegionRetries int
	// PreemptEvery is the cancellation-poll stride in dynamic
	// instructions for a context bound via BindContext (default 4096).
	// It is the preemption budget: once the bound context is canceled,
	// Run stops within PreemptEvery further instructions. The poll is a
	// non-blocking channel receive gated on an instruction counter, so
	// the fault-free hot path stays allocation-free.
	PreemptEvery int64
	// Tracer, if set, observes every executed instruction.
	Tracer Tracer
	// Cache configures the L1 data cache timing model; the zero value
	// means flat 2-cycle memory. Use DefaultCache() for the gem5-like
	// configuration the experiment drivers use.
	Cache CacheConfig
}

// Tracer observes execution (the limit study hooks in here).
type Tracer interface {
	// Instr is called after each instruction executes. memAddr is the
	// effective address for memory ops (else 0); sp is the current stack
	// pointer (for local-vs-non-local stack classification).
	Instr(in isa.Instr, memAddr int64, sp uint64)
	// Call/Ret are called at function boundaries.
	Call()
	Ret()
}

// Machine is one simulator instance.
//
// Register file layout: Regs is the unified architectural file indexed
// directly by isa.Reg — integer registers at 0..15, floating-point
// registers at 16..47 (isa.F(i) == 16+i). The pipeline model extends the
// same indexing with two shadow banks (48×3 availability slots) for the
// DMR/TMR redundant copies, which exist only for timing.
type Machine struct {
	P    *codegen.Program
	Cfg  Config
	Regs [isa.NumRegs]uint64
	Mem  []uint64
	PC   int

	Stats Stats

	// code is the shared predecoded program (see predecode.go).
	code *Code

	// Pipeline model state.
	pipe  pipeline
	cache *dcache

	// Region / recovery state.
	storeBuf   []sbEntry
	sb         sbIndex
	rp         int
	rpSP, rpLR uint64
	pathLen    int64

	// Event-driven fault scheduling: nextEvent is the earliest dynamic
	// step at which any scheduled injection can fire (MaxInt64 when none
	// are pending); until execution reaches it, step() runs the pure
	// fault-free fast path — no queue polling, no golden-mirror
	// maintenance. Reaching it sets hot, which activates the full fault
	// machinery for the remainder of the run.
	nextEvent int64
	hot       bool

	// Golden state: a fault-free mirror of the register file, computed
	// from golden sources in parallel with architectural execution once
	// the machine goes hot (the mirror is seeded from the architectural
	// file at that point, before any divergence can exist). A register
	// is "tainted" (holds a corrupted or corruption-derived value)
	// exactly when its architectural and golden values differ — which is
	// precisely what a DMR shadow copy detects.
	golden [isa.NumRegs]uint64
	// Livelock guard: consecutive boundary recoveries at the same restart
	// point reconcile dead corrupted registers (see mark handling).
	lastRecoverPC  int
	consecBoundary int

	// Checkpoint-log state.
	logPtr   int64
	ckptRegs [isa.NumRegs]uint64
	ckptPC   int
	ckptLog  int64

	// Pending fault injections, sorted by step: the first register-writing
	// instruction at or after each step has destination bits flipped by
	// the recorded mask (single-bit for classic SEU, multi-bit for burst
	// faults).
	faultAt []pendingFault
	// Pending control-flow error injections (§2.3: branch misprediction
	// style failures), sorted: the first conditional branch at or after
	// each step takes the wrong direction.
	flipAt []int64
	// Pending memory-word corruptions, sorted by step: at the step'th
	// dynamic instruction the addressed word (in the store buffer if an
	// entry is outstanding, else backing memory) has mask bits flipped.
	memFaultAt []pendingMemFault
	// Pending boundary faults, sorted by arming step: each is primed by
	// the first MARK executed at or after its step and fires on the first
	// register write after that boundary (stressing early-region
	// corruption, where recovery must replay the whole region).
	boundaryAt []pendingFault
	primed     []uint64
	// Pending nested faults, sorted by recovery count: each fires on the
	// first register write once Stats.Recoveries reaches its threshold —
	// a fault injected during re-execution, testing recovery-under-failure.
	nestedAt []pendingNested
	// Livelock escalation state: consecutive re-executions restarting at
	// the same point.
	retryPC    int
	retryCount int
	livelocked bool
	// wrongPath is set while executing a mis-directed path; boundary
	// verification at the next MARK detects it.
	wrongPath bool
	// justRecovered suppresses the boundary taint check at the MARK a
	// recovery jumps to: corrupted non-input registers legitimately stay
	// divergent until the region's re-execution rewrites them; the check
	// there would otherwise livelock. Inputs are clean by construction
	// (§4.4 live-ins are never redefined in-region, so the fault cannot
	// have hit one).
	justRecovered bool

	// Cooperative preemption state (see BindContext): preemptDone is the
	// bound context's cancellation channel, polled by Run every
	// pollStride dynamic instructions once DynInstrs reaches nextPoll.
	preemptCtx  context.Context
	preemptDone <-chan struct{}
	pollStride  int64
	nextPoll    int64

	halted bool
}

// ErrDetectedUnrecoverable reports a detection with RecoverNone.
var ErrDetectedUnrecoverable = errors.New("machine: fault detected, no recovery scheme")

// ErrLivelock reports the livelock watchdog firing: either the dynamic
// instruction budget relative to the fault-free reference was exhausted
// (an undetected fault corrupted forward progress, e.g. a loop bound held
// in memory) or the bounded re-execution retry counter overflowed (every
// re-execution was re-corrupted before reaching a boundary).
var ErrLivelock = errors.New("machine: livelock watchdog fired")

// ErrPreempted reports cooperative preemption: the context bound via
// BindContext was canceled and the step loop stopped within the
// Cfg.PreemptEvery instruction budget instead of running the workload to
// completion. The returned error also wraps the context's error, so
// errors.Is(err, context.Canceled) / context.DeadlineExceeded hold.
// Because every region is idempotent and the machine's outcome is a pure
// function of (program, args, armed faults), a preempted run can simply
// be re-executed later — the same recovery-by-re-execution discipline
// the compiled regions rely on, applied at request granularity.
var ErrPreempted = errors.New("machine: preempted")

// BindContext arms cooperative preemption: Run polls ctx's cancellation
// channel every Cfg.PreemptEvery dynamic instructions (default 4096) and
// returns ErrPreempted within that budget once ctx is canceled. Binding
// nil or a context that can never be canceled disarms the poll. The
// binding survives Reset, like armed fault injections.
func (m *Machine) BindContext(ctx context.Context) {
	if ctx == nil || ctx.Done() == nil {
		m.preemptCtx, m.preemptDone = nil, nil
		return
	}
	m.pollStride = m.Cfg.PreemptEvery
	if m.pollStride <= 0 {
		m.pollStride = 4096
	}
	m.preemptCtx, m.preemptDone = ctx, ctx.Done()
	m.nextPoll = m.Stats.DynInstrs + m.pollStride
}

// New creates a machine for p. The predecoded form of p is shared with
// every other Machine running the same Program (see Predecode).
func New(p *codegen.Program, cfg Config) *Machine {
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 500_000_000
	}
	if cfg.LogWords == 0 {
		cfg.LogWords = 2048
	}
	if cfg.LogBase == 0 {
		cfg.LogBase = p.GlobalEnd
	}
	m := &Machine{P: p, Cfg: cfg, code: Predecode(p)}
	m.Reset()
	return m
}

// Reset reinitializes memory, registers and statistics. Armed fault
// injections survive a Reset (they are scheduled against dynamic-step
// indices, which restart from zero).
func (m *Machine) Reset() {
	m.Mem = make([]uint64, m.P.MemWords)
	for _, g := range m.P.Globals {
		base := m.P.GlobalBase[g.Name]
		for i, x := range g.Init {
			m.Mem[base+int64(i)] = uint64(x)
		}
	}
	m.Regs = [isa.NumRegs]uint64{}
	m.Stats = Stats{PathLens: map[int64]int64{}, FirstFaultStep: -1, FirstDetectStep: -1}
	m.pipe = pipeline{}
	if m.Cfg.Cache.Sets > 0 {
		m.cache = newDCache(m.Cfg.Cache)
	} else {
		m.cache = nil
	}
	m.storeBuf = m.storeBuf[:0]
	m.sb.init()
	m.golden = [isa.NumRegs]uint64{}
	m.hot = false
	m.recalcNextEvent()
	m.pathLen = 0
	m.logPtr = m.Cfg.LogBase
	m.ckptLog = m.Cfg.LogBase
	m.retryPC = -1
	m.retryCount = 0
	m.livelocked = false
	if m.preemptDone != nil {
		m.nextPoll = m.pollStride
	}
	m.halted = false
}

// pendingFault is one scheduled register corruption (mask of bits to
// flip in the destination value).
type pendingFault struct {
	step int64
	mask uint64
}

// pendingMemFault is one scheduled memory-word corruption.
type pendingMemFault struct {
	step int64
	addr int64
	mask uint64
}

// pendingNested is one scheduled recovery-triggered corruption.
type pendingNested struct {
	after int64
	mask  uint64
}

// recalcNextEvent recomputes the earliest step any scheduled injection
// can fire. Boundary faults prime at their arming step and nested faults
// fire only after a recovery — which itself requires an earlier event —
// so the step-scheduled queue heads cover every activation path (a
// nested fault armed with after <= 0 is the one exception, handled at
// injection time by forcing the machine hot from step zero).
func (m *Machine) recalcNextEvent() {
	next := int64(math.MaxInt64)
	if len(m.faultAt) > 0 && m.faultAt[0].step < next {
		next = m.faultAt[0].step
	}
	if len(m.memFaultAt) > 0 && m.memFaultAt[0].step < next {
		next = m.memFaultAt[0].step
	}
	if len(m.boundaryAt) > 0 && m.boundaryAt[0].step < next {
		next = m.boundaryAt[0].step
	}
	if len(m.flipAt) > 0 && m.flipAt[0] < next {
		next = m.flipAt[0]
	}
	for _, nf := range m.nestedAt {
		if nf.after <= 0 {
			next = 0
		}
	}
	m.nextEvent = next
}

// enterHot activates the fault machinery: from here on every step polls
// the injection queues and maintains the golden mirror. The mirror is
// seeded from the architectural file — correct because no fault has
// materialized yet, so the two are necessarily identical.
func (m *Machine) enterHot() {
	m.hot = true
	m.golden = m.Regs
	m.nextEvent = math.MaxInt64
}

// InjectFault schedules a single-bit corruption of the destination value
// of the first register-writing instruction executed at or after the
// step'th dynamic instruction (recovery instrumentation and redundant
// copies are outside the fault sphere and are skipped over).
func (m *Machine) InjectFault(step int64, bit uint) {
	m.InjectFaultMask(step, 1<<(bit%64))
}

// InjectFaultMask is InjectFault generalized to an arbitrary flip mask
// (multi-bit masks model burst faults).
func (m *Machine) InjectFaultMask(step int64, mask uint64) {
	i := 0
	for i < len(m.faultAt) && m.faultAt[i].step < step {
		i++
	}
	m.faultAt = append(m.faultAt, pendingFault{})
	copy(m.faultAt[i+1:], m.faultAt[i:])
	m.faultAt[i] = pendingFault{step: step, mask: mask}
	m.recalcNextEvent()
}

// InjectMemFault schedules a corruption of memory word addr at the
// step'th dynamic instruction: the current value of the word — in the
// store buffer when an entry is outstanding, else backing memory — has
// the mask bits flipped. Register-level redundancy (DMR/TMR shadow
// copies) does not cover memory, so these faults model the ECC-gap the
// AutoCheck line of work targets: they surface as silent data
// corruptions, crashes, or livelocks rather than detections.
func (m *Machine) InjectMemFault(step, addr int64, mask uint64) {
	i := 0
	for i < len(m.memFaultAt) && m.memFaultAt[i].step < step {
		i++
	}
	m.memFaultAt = append(m.memFaultAt, pendingMemFault{})
	copy(m.memFaultAt[i+1:], m.memFaultAt[i:])
	m.memFaultAt[i] = pendingMemFault{step: step, addr: addr, mask: mask}
	m.recalcNextEvent()
}

// InjectBoundaryFault schedules a region-boundary fault: armed at the
// step'th dynamic instruction, primed by the next MARK executed, and
// fired on the first register write after that boundary. It stresses
// corruption immediately after a region commit, where recovery has the
// maximal re-execution distance and the §4.4 live-in invariant carries
// the entire burden.
func (m *Machine) InjectBoundaryFault(step int64, mask uint64) {
	i := 0
	for i < len(m.boundaryAt) && m.boundaryAt[i].step < step {
		i++
	}
	m.boundaryAt = append(m.boundaryAt, pendingFault{})
	copy(m.boundaryAt[i+1:], m.boundaryAt[i:])
	m.boundaryAt[i] = pendingFault{step: step, mask: mask}
	m.recalcNextEvent()
}

// InjectNestedFault schedules a corruption of the first register write
// executed once Stats.Recoveries reaches after — i.e. a fault injected
// during the re-execution a previous recovery started, testing
// recovery-under-failure. If no recovery ever happens the fault stays
// vacuous.
func (m *Machine) InjectNestedFault(after int64, mask uint64) {
	i := 0
	for i < len(m.nestedAt) && m.nestedAt[i].after < after {
		i++
	}
	m.nestedAt = append(m.nestedAt, pendingNested{})
	copy(m.nestedAt[i+1:], m.nestedAt[i:])
	m.nestedAt[i] = pendingNested{after: after, mask: mask}
	m.recalcNextEvent()
}

// InjectControlFlowError schedules a branch-direction failure: the first
// conditional branch executed at or after the step'th dynamic instruction
// goes the wrong way. The wrong path executes speculatively (stores stay
// in the buffer) until the next region boundary's control-flow
// verification detects the failure and recovery re-executes from rp
// (§2.3, "tolerating control flow errors").
func (m *Machine) InjectControlFlowError(step int64) {
	i := 0
	for i < len(m.flipAt) && m.flipAt[i] < step {
		i++
	}
	m.flipAt = append(m.flipAt, 0)
	copy(m.flipAt[i+1:], m.flipAt[i:])
	m.flipAt[i] = step
	m.recalcNextEvent()
}

// noteFault records a materialized fault.
func (m *Machine) noteFault() {
	m.Stats.Faults++
	if m.Stats.FirstFaultStep < 0 {
		m.Stats.FirstFaultStep = m.Stats.DynInstrs
	}
}

// noteDetect records a detection for the latency statistics.
func (m *Machine) noteDetect() {
	if m.Stats.FirstDetectStep < 0 {
		m.Stats.FirstDetectStep = m.Stats.DynInstrs
	}
}

// detectErr converts a failed recovery into the right sentinel.
func (m *Machine) detectErr() error {
	if m.livelocked {
		return ErrLivelock
	}
	return ErrDetectedUnrecoverable
}

// Run executes the program with up to four integer arguments, returning
// the value of r0 at HALT.
func (m *Machine) Run(args ...uint64) (uint64, error) {
	for i, a := range args {
		if i >= 4 {
			return 0, errors.New("machine: more than 4 integer arguments")
		}
		m.Regs[i] = a
	}
	m.PC = m.P.Entry
	m.rp = m.PC
	if m.Cfg.Recovery == RecoverCheckpointLog {
		// The log pointer lives in rp (free in non-idempotent binaries);
		// take the initial, cost-free register checkpoint.
		m.Regs[isa.RP] = uint64(m.Cfg.LogBase)
		m.takeCheckpoint()
	}
	var wdBudget int64
	if m.Cfg.WatchdogRef > 0 {
		f := m.Cfg.WatchdogFactor
		if f <= 0 {
			f = 16
		}
		// The slack absorbs instrumentation and recovery overhead on
		// short programs.
		wdBudget = int64(float64(m.Cfg.WatchdogRef)*f) + 4096
	}
	for !m.halted {
		if err := m.step(); err != nil {
			return 0, err
		}
		if m.preemptDone != nil && m.Stats.DynInstrs >= m.nextPoll {
			select {
			case <-m.preemptDone:
				return 0, fmt.Errorf("%w after %d instructions: %w",
					ErrPreempted, m.Stats.DynInstrs, context.Cause(m.preemptCtx))
			default:
				m.nextPoll = m.Stats.DynInstrs + m.pollStride
			}
		}
		if wdBudget > 0 && m.Stats.DynInstrs > wdBudget {
			return 0, fmt.Errorf("%w: %d dynamic instructions against a fault-free reference of %d",
				ErrLivelock, m.Stats.DynInstrs, m.Cfg.WatchdogRef)
		}
		if m.Stats.DynInstrs > m.Cfg.MaxSteps {
			return 0, fmt.Errorf("machine: step limit (%d) exceeded", m.Cfg.MaxSteps)
		}
	}
	return m.Regs[0], nil
}

// loadMem reads addr with O(1) store-buffer forwarding; ok is false for
// an out-of-range address (callers produce the error off the hot path).
func (m *Machine) loadMem(addr int64) (val uint64, ok bool) {
	if addr <= 0 || addr >= int64(len(m.Mem)) {
		return 0, false
	}
	if len(m.storeBuf) > 0 {
		if pos, hit := m.sb.lookup(addr); hit {
			return m.storeBuf[pos].val, true
		}
	}
	return m.Mem[addr], true
}

// storeMem writes addr (into the region buffer when buffering); ok is
// false for an out-of-range address.
func (m *Machine) storeMem(addr int64, val uint64) (ok bool) {
	if addr <= 0 || addr >= int64(len(m.Mem)) {
		return false
	}
	if m.Cfg.BufferStores {
		m.sb.insert(addr, int32(len(m.storeBuf)))
		m.storeBuf = append(m.storeBuf, sbEntry{addr, val})
		return true
	}
	m.Mem[addr] = val
	return true
}

// loadErr/storeErr format the out-of-range diagnostics (slow path only).
func (m *Machine) loadErr(addr int64) error {
	return fmt.Errorf("machine: load from invalid address %d (pc=%d, fn=%s)", addr, m.PC, m.fn())
}

func (m *Machine) storeErr(addr int64) error {
	return fmt.Errorf("machine: store to invalid address %d (pc=%d, fn=%s)", addr, m.PC, m.fn())
}

func (m *Machine) fn() string {
	if m.PC >= 0 && m.PC < len(m.P.FuncOf) {
		return m.P.FuncOf[m.PC]
	}
	return "?"
}

// commitRegion commits buffered stores and opens a new region at pc.
func (m *Machine) commitRegion() {
	if len(m.storeBuf) > 0 {
		for _, e := range m.storeBuf {
			m.Mem[e.addr] = e.val
		}
		m.storeBuf = m.storeBuf[:0]
		m.sb.reset()
	}
	m.rp = m.PC
	m.rpSP = m.Regs[isa.SP]
	m.rpLR = m.Regs[isa.LR]
	if m.Cfg.TrackPaths {
		if m.pathLen > 0 {
			m.Stats.PathLens[m.pathLen]++
		}
		m.pathLen = 0
	}
}

// discardRegion drops the speculative store buffer (recovery).
func (m *Machine) discardRegion() {
	if len(m.storeBuf) > 0 {
		m.storeBuf = m.storeBuf[:0]
		m.sb.reset()
	}
}

// recoverFault performs the configured recovery action. Returns false when
// the scheme cannot recover (RecoverNone) or the bounded re-execution
// retry counter overflowed (m.livelocked is then set and callers escalate
// to ErrLivelock via detectErr).
func (m *Machine) recoverFault() bool {
	m.Stats.Detections++
	m.noteDetect()
	// Bounded re-execution: count consecutive recoveries restarting at
	// the same point. A fresh fault during every re-execution (nested
	// injection) would otherwise respin forever.
	switch m.Cfg.Recovery {
	case RecoverIdempotence, RecoverCheckpointLog:
		target := m.rp
		if m.Cfg.Recovery == RecoverCheckpointLog {
			target = m.ckptPC
		}
		if m.retryPC == target {
			m.retryCount++
		} else {
			m.retryPC, m.retryCount = target, 1
		}
		limit := m.Cfg.MaxRegionRetries
		if limit <= 0 {
			limit = 64
		}
		if m.retryCount > limit {
			m.livelocked = true
			return false
		}
	}
	switch m.Cfg.Recovery {
	case RecoverIdempotence:
		// Discard speculative stores, restore the calling-convention
		// registers snapshotted at the boundary, clear taint, and
		// re-execute from the region entry held in rp (§6.3).
		m.discardRegion()
		m.Regs[isa.SP] = m.rpSP
		m.Regs[isa.LR] = m.rpLR
		// The calling-convention snapshot is trusted (verified at the
		// boundary), so the golden mirror follows it.
		m.golden[isa.SP] = m.rpSP
		m.golden[isa.LR] = m.rpLR
		m.wrongPath = false
		m.justRecovered = true
		m.PC = m.rp
		m.pathLen = 0
		m.Stats.Recoveries++
		// Re-execution costs cycles; the pipeline model just keeps
		// counting, which is exactly the re-execution penalty.
		return true
	case RecoverCheckpointLog:
		// Unwind the undo log back to the checkpoint, restore the
		// register checkpoint, and resume from the checkpoint PC.
		for p := m.logPtr - 2; p >= m.ckptLog; p -= 2 {
			val, addr := m.Mem[p], int64(m.Mem[p+1])
			if addr > 0 && addr < int64(len(m.Mem)) {
				m.Mem[addr] = val
			}
		}
		m.logPtr = m.ckptLog
		m.Regs = m.ckptRegs
		// The checkpoint was verified clean when taken.
		m.golden = m.ckptRegs
		// A wrong-path excursion is undone by the rollback; without this
		// the stale flag would re-trigger recovery at HALT forever.
		m.wrongPath = false
		m.PC = m.ckptPC
		m.Stats.Recoveries++
		return true
	default:
		return false
	}
}

// takeCheckpoint snapshots registers and the resume PC for the
// checkpoint-and-log scheme and resets the log (modelled as free, per the
// paper's optimistic assumption for register checkpointing and polling).
func (m *Machine) takeCheckpoint() {
	m.Regs[isa.RP] = uint64(m.Cfg.LogBase)
	// The log pointer is recovery infrastructure: its golden mirror
	// follows the reset (otherwise every checkpoint would look like a
	// divergence at the next wrap).
	m.golden[isa.RP] = uint64(m.Cfg.LogBase)
	m.ckptRegs = m.Regs
	m.ckptPC = m.PC
	m.ckptLog = m.Cfg.LogBase
	m.logPtr = m.Cfg.LogBase
	// A verified checkpoint is forward progress: reset the retry state.
	m.retryPC = -1
	m.retryCount = 0
}

// tainted reports whether r's architectural value diverges from the
// golden mirror. Before the machine goes hot the mirror is not
// maintained — and no fault can have materialized — so nothing is
// tainted by construction.
func (m *Machine) tainted(r uint8) bool {
	return m.hot && m.Regs[r] != m.golden[r]
}

// anyTaint reports whether any register diverges (checked at region
// boundaries and checkpoints).
func (m *Machine) anyTaint() bool {
	if !m.hot {
		return false
	}
	return m.Regs != m.golden
}

// reconcile resynchronizes the golden mirror for registers whose
// corruption has proven dead: after a full re-execution of a region, any
// remaining divergence is in registers the region never rewrites (so the
// program never reads them before a rewrite either). Real DMR
// implementations re-copy the live set at synchronization points; this is
// the simulator's equivalent, and it breaks the boundary-recovery
// livelock a dead corrupted register would otherwise cause.
func (m *Machine) reconcile() {
	m.golden = m.Regs
}

// IntRegs returns a copy of the architectural integer register file
// (r0..r15), in register order.
func (m *Machine) IntRegs() []uint64 {
	out := make([]uint64, isa.NumIntRegs)
	copy(out, m.Regs[:isa.NumIntRegs])
	return out
}

// FloatRegs returns a copy of the architectural floating-point register
// file (f0..f31), in register order.
func (m *Machine) FloatRegs() []uint64 {
	out := make([]uint64, isa.NumFloatRegs)
	copy(out, m.Regs[isa.NumIntRegs:])
	return out
}

// DebugReconcile toggles reconcile diagnostics (test hook).
func DebugReconcile(on bool) { debugReconcile = on }
