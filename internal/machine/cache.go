package machine

// dcache models a small set-associative L1 data cache with LRU
// replacement. It affects only timing (the simulator's memory is always
// functionally coherent): hits cost the base load latency, misses add a
// fill penalty. Store misses allocate (write-allocate) and stores hitting
// the buffer or cache are cheap, approximating a write-back L1 like the
// paper's gem5 ARM configuration.
type dcache struct {
	// tags/lru are flat sets×ways arrays indexed set*ways+way — two
	// allocations total instead of 2+2×sets, and no double indirection
	// on the access path. Line granularity is lineWords words.
	tags  []int64
	lru   []int64
	clock int64
	sets  int
	ways  int

	Hits, Misses int64
}

// CacheConfig sizes the L1 model. The zero value disables it (flat
// 2-cycle memory, the pre-cache behaviour).
type CacheConfig struct {
	// Sets and Ways size the cache (capacity = Sets*Ways*LineWords
	// words). LineWords is the words-per-line granularity.
	Sets, Ways, LineWords int
	// MissPenalty is the extra cycles a miss costs.
	MissPenalty int
}

// DefaultCache resembles a 32 KB 2-way L1 with 4-word (32-byte) lines:
// 512 sets × 2 ways × 4 words × 8 bytes.
func DefaultCache() CacheConfig {
	return CacheConfig{Sets: 512, Ways: 2, LineWords: 4, MissPenalty: 12}
}

func newDCache(cfg CacheConfig) *dcache {
	c := &dcache{
		sets: cfg.Sets,
		ways: cfg.Ways,
		tags: make([]int64, cfg.Sets*cfg.Ways),
		lru:  make([]int64, cfg.Sets*cfg.Ways),
	}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

// access touches addr; reports whether it hit.
func (c *dcache) access(addr int64, lineWords int) bool {
	line := addr / int64(lineWords)
	set := int(line % int64(c.sets))
	base := set * c.ways
	c.clock++
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line {
			c.lru[base+w] = c.clock
			c.Hits++
			return true
		}
	}
	// Miss: replace the LRU way.
	victim := base
	for w := base + 1; w < base+c.ways; w++ {
		if c.lru[w] < c.lru[victim] {
			victim = w
		}
	}
	c.tags[victim] = line
	c.lru[victim] = c.clock
	c.Misses++
	return false
}
