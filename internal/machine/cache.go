package machine

// dcache models a small set-associative L1 data cache with LRU
// replacement. It affects only timing (the simulator's memory is always
// functionally coherent): hits cost the base load latency, misses add a
// fill penalty. Store misses allocate (write-allocate) and stores hitting
// the buffer or cache are cheap, approximating a write-back L1 like the
// paper's gem5 ARM configuration.
type dcache struct {
	// sets × ways line tags; line granularity is lineWords words.
	tags  [][]int64
	lru   [][]int64
	clock int64
	sets  int
	ways  int

	Hits, Misses int64
}

// CacheConfig sizes the L1 model. The zero value disables it (flat
// 2-cycle memory, the pre-cache behaviour).
type CacheConfig struct {
	// Sets and Ways size the cache (capacity = Sets*Ways*LineWords
	// words). LineWords is the words-per-line granularity.
	Sets, Ways, LineWords int
	// MissPenalty is the extra cycles a miss costs.
	MissPenalty int
}

// DefaultCache resembles a 32 KB 2-way L1 with 4-word (32-byte) lines:
// 512 sets × 2 ways × 4 words × 8 bytes.
func DefaultCache() CacheConfig {
	return CacheConfig{Sets: 512, Ways: 2, LineWords: 4, MissPenalty: 12}
}

func newDCache(cfg CacheConfig) *dcache {
	c := &dcache{sets: cfg.Sets, ways: cfg.Ways}
	c.tags = make([][]int64, cfg.Sets)
	c.lru = make([][]int64, cfg.Sets)
	for i := range c.tags {
		c.tags[i] = make([]int64, cfg.Ways)
		c.lru[i] = make([]int64, cfg.Ways)
		for w := range c.tags[i] {
			c.tags[i][w] = -1
		}
	}
	return c
}

// access touches addr; reports whether it hit.
func (c *dcache) access(addr int64, lineWords int) bool {
	line := addr / int64(lineWords)
	set := int(line % int64(c.sets))
	c.clock++
	for w := 0; w < c.ways; w++ {
		if c.tags[set][w] == line {
			c.lru[set][w] = c.clock
			c.Hits++
			return true
		}
	}
	// Miss: replace the LRU way.
	victim := 0
	for w := 1; w < c.ways; w++ {
		if c.lru[set][w] < c.lru[set][victim] {
			victim = w
		}
	}
	c.tags[set][victim] = line
	c.lru[set][victim] = c.clock
	c.Misses++
	return false
}
