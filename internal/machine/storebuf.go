package machine

// The region store buffer (§2.3: stores are held until control flow is
// verified at the next boundary) used to be searched backward on every
// load — O(region stores) per load, quadratic for store-heavy regions.
// sbIndex is a generation-stamped open-addressing hash table mapping
// address → youngest buffered entry, making forwarding O(1): inserts
// overwrite the last-writer slot, and discarding a region (commit or
// recovery) is a single generation bump instead of a clear. The table
// never shrinks and rehashes only when a region's store set outgrows it,
// so steady-state execution performs no heap allocation.

// sbEntry is one buffered store, in program order (commit replays the
// slice so the youngest write to an address wins, exactly like the old
// linear buffer).
type sbEntry struct {
	addr int64
	val  uint64
}

type sbSlot struct {
	addr int64
	pos  int32  // index of the youngest entry for addr in Machine.storeBuf
	gen  uint32 // slot is live iff gen matches the table generation
}

type sbIndex struct {
	slots []sbSlot
	mask  uint64
	gen   uint32
	n     int // live slots this generation
}

const sbInitialSlots = 64 // power of two

func (t *sbIndex) init() {
	t.slots = make([]sbSlot, sbInitialSlots)
	t.mask = sbInitialSlots - 1
	t.gen = 1
	t.n = 0
}

// reset invalidates every entry in O(1) by bumping the generation. On
// the (unreachable in practice) 2^32 wrap the slots are cleared so stale
// stamps cannot alias the new generation.
func (t *sbIndex) reset() {
	t.gen++
	t.n = 0
	if t.gen == 0 {
		for i := range t.slots {
			t.slots[i] = sbSlot{}
		}
		t.gen = 1
	}
}

// sbHash is Fibonacci hashing on the word address.
func sbHash(addr int64) uint64 {
	return uint64(addr) * 0x9E3779B97F4A7C15
}

// lookup returns the youngest buffered position for addr.
func (t *sbIndex) lookup(addr int64) (int32, bool) {
	for i := sbHash(addr) & t.mask; ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if s.gen != t.gen {
			return 0, false
		}
		if s.addr == addr {
			return s.pos, true
		}
	}
}

// insert records pos as the youngest entry for addr, growing the table
// at 50% load so probe chains stay short.
func (t *sbIndex) insert(addr int64, pos int32) {
	if 2*(t.n+1) > len(t.slots) {
		t.grow()
	}
	for i := sbHash(addr) & t.mask; ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if s.gen != t.gen {
			*s = sbSlot{addr: addr, pos: pos, gen: t.gen}
			t.n++
			return
		}
		if s.addr == addr {
			s.pos = pos // last writer wins
			return
		}
	}
}

// grow doubles the table, reinserting only the live generation.
func (t *sbIndex) grow() {
	old := t.slots
	oldGen := t.gen
	t.slots = make([]sbSlot, 2*len(old))
	t.mask = uint64(len(t.slots) - 1)
	t.gen = 1
	t.n = 0
	for _, s := range old {
		if s.gen != oldGen {
			continue
		}
		for i := sbHash(s.addr) & t.mask; ; i = (i + 1) & t.mask {
			d := &t.slots[i]
			if d.gen != t.gen {
				*d = sbSlot{addr: s.addr, pos: s.pos, gen: t.gen}
				t.n++
				break
			}
		}
	}
}
