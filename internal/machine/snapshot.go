// Machine state snapshots: a compact, serializable digest of a finished
// run's architectural state and statistics. The repository-root
// differential test pins the simulator engine against golden snapshots,
// and the idemd service returns them from /v1/simulate so clients can
// assert byte-identical behavior across runs and deployments without
// shipping whole memory images.
package machine

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Snapshot digests one completed execution: the result value, every
// Stats counter, and FNV-1a hashes of the architectural register file,
// the memory image and the dynamic path histogram. Two runs are
// architecturally identical iff their Snapshots are equal, which makes
// the type directly comparable (==) and a stable JSON artifact (fixed
// field set, no maps).
//
// The JSON field names are pinned by testdata/machine_digests.json; do
// not rename them without regenerating the goldens.
type Snapshot struct {
	R0          uint64 `json:"r0"`
	Err         string `json:"err,omitempty"`
	DynInstrs   int64  `json:"dyn"`
	Cycles      int64  `json:"cycles"`
	Loads       int64  `json:"loads"`
	Stores      int64  `json:"stores"`
	Marks       int64  `json:"marks"`
	Mispredicts int64  `json:"mispredicts"`
	Recoveries  int64  `json:"recoveries"`
	Detections  int64  `json:"detections"`
	Faults      int64  `json:"faults"`
	Reconciles  int64  `json:"reconciles"`
	CacheHits   int64  `json:"chits"`
	CacheMisses int64  `json:"cmisses"`
	PathHash    uint64 `json:"paths"`
	RegsHash    uint64 `json:"regs"`
	MemHash     uint64 `json:"mem"`
}

// Snapshot digests the machine's current state after a run that returned
// (r0, runErr). The machine is not mutated; taking a snapshot is safe at
// any quiescent point (i.e. not concurrently with Run).
func (m *Machine) Snapshot(r0 uint64, runErr error) Snapshot {
	s := Snapshot{
		R0:          r0,
		DynInstrs:   m.Stats.DynInstrs,
		Cycles:      m.Stats.Cycles,
		Loads:       m.Stats.Loads,
		Stores:      m.Stats.Stores,
		Marks:       m.Stats.Marks,
		Mispredicts: m.Stats.Mispredicts,
		Recoveries:  m.Stats.Recoveries,
		Detections:  m.Stats.Detections,
		Faults:      m.Stats.Faults,
		Reconciles:  m.Stats.Reconciles,
		CacheHits:   m.Stats.CacheHits,
		CacheMisses: m.Stats.CacheMisses,
		PathHash:    hashPathLens(m.Stats.PathLens),
		RegsHash:    hashU64s(m.regWords()),
		MemHash:     hashU64s(m.Mem),
	}
	if runErr != nil {
		s.Err = runErr.Error()
	}
	return s
}

// regWords serializes the architectural register file in the canonical
// r0..r15, f0..f31 order the digests are pinned to.
func (m *Machine) regWords() []uint64 {
	out := make([]uint64, 0, 48)
	out = append(out, m.IntRegs()...)
	out = append(out, m.FloatRegs()...)
	return out
}

// hashU64s FNV-1a hashes a word slice in little-endian byte order.
func hashU64s(ws []uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, w := range ws {
		for i := 0; i < 8; i++ {
			buf[i] = byte(w >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// hashPathLens FNV-1a hashes the dynamic path histogram in ascending
// length order (map iteration order must not leak into the digest).
func hashPathLens(paths map[int64]int64) uint64 {
	lens := make([]int64, 0, len(paths))
	for l := range paths {
		lens = append(lens, l)
	}
	sort.Slice(lens, func(i, j int) bool { return lens[i] < lens[j] })
	h := fnv.New64a()
	for _, l := range lens {
		fmt.Fprintf(h, "%d:%d;", l, paths[l])
	}
	return h.Sum64()
}
