package machine

import (
	"testing"

	"idemproc/internal/codegen"
	"idemproc/internal/isa"
)

// rawProgram wraps a hand-written instruction sequence (ending in HALT)
// into a runnable Program.
func rawProgram(ins ...isa.Instr) *codegen.Program {
	return &codegen.Program{
		Instrs:     ins,
		Entry:      0,
		FuncEntry:  map[string]int{},
		GlobalBase: map[string]int64{},
		FuncOf:     make([]string, len(ins)),
		MemWords:   256,
	}
}

func cycles(t *testing.T, cfg Config, ins ...isa.Instr) int64 {
	t.Helper()
	m := New(rawProgram(ins...), cfg)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m.Stats.Cycles
}

func TestDualIssueIndependentOps(t *testing.T) {
	// Two independent MOVIs dual-issue: 2 instructions in 1 cycle (plus
	// the HALT's cycle).
	pair := cycles(t, Config{},
		isa.Instr{Op: isa.MOVI, Rd: isa.R1, Imm: 1},
		isa.Instr{Op: isa.MOVI, Rd: isa.R2, Imm: 2},
		isa.Instr{Op: isa.HALT},
	)
	quad := cycles(t, Config{},
		isa.Instr{Op: isa.MOVI, Rd: isa.R1, Imm: 1},
		isa.Instr{Op: isa.MOVI, Rd: isa.R2, Imm: 2},
		isa.Instr{Op: isa.MOVI, Rd: isa.R3, Imm: 3},
		isa.Instr{Op: isa.MOVI, Rd: isa.R4, Imm: 4},
		isa.Instr{Op: isa.HALT},
	)
	if quad-pair != 1 {
		t.Fatalf("4 independent ops should cost exactly 1 cycle more than 2: %d vs %d", quad, pair)
	}
}

func TestDependencyStalls(t *testing.T) {
	// A dependent chain of MULs (latency 3) costs ~3 cycles per link; an
	// independent set costs ~0.5 per op.
	chain := cycles(t, Config{},
		isa.Instr{Op: isa.MOVI, Rd: isa.R1, Imm: 3},
		isa.Instr{Op: isa.MUL, Rd: isa.R1, Rs1: isa.R1, Rs2: isa.R1},
		isa.Instr{Op: isa.MUL, Rd: isa.R1, Rs1: isa.R1, Rs2: isa.R1},
		isa.Instr{Op: isa.MUL, Rd: isa.R1, Rs1: isa.R1, Rs2: isa.R1},
		isa.Instr{Op: isa.HALT},
	)
	indep := cycles(t, Config{},
		isa.Instr{Op: isa.MOVI, Rd: isa.R1, Imm: 3},
		isa.Instr{Op: isa.MUL, Rd: isa.R2, Rs1: isa.R1, Rs2: isa.R1},
		isa.Instr{Op: isa.MUL, Rd: isa.R3, Rs1: isa.R1, Rs2: isa.R1},
		isa.Instr{Op: isa.MUL, Rd: isa.R4, Rs1: isa.R1, Rs2: isa.R1},
		isa.Instr{Op: isa.HALT},
	)
	if chain <= indep+2 {
		t.Fatalf("dependent MUL chain (%d) should stall well beyond independent MULs (%d)", chain, indep)
	}
}

func TestSingleMemoryPort(t *testing.T) {
	// Two loads cannot issue in the same cycle.
	base := int64(10)
	threeLoads := cycles(t, Config{},
		isa.Instr{Op: isa.MOVI, Rd: isa.R1, Imm: base},
		isa.Instr{Op: isa.LDR, Rd: isa.R2, Rs1: isa.R1, Imm: 0},
		isa.Instr{Op: isa.LDR, Rd: isa.R3, Rs1: isa.R1, Imm: 1},
		isa.Instr{Op: isa.LDR, Rd: isa.R4, Rs1: isa.R1, Imm: 2},
		isa.Instr{Op: isa.HALT},
	)
	loadPlusAlus := cycles(t, Config{},
		isa.Instr{Op: isa.MOVI, Rd: isa.R1, Imm: base},
		isa.Instr{Op: isa.LDR, Rd: isa.R2, Rs1: isa.R1, Imm: 0},
		isa.Instr{Op: isa.MOVI, Rd: isa.R3, Imm: 7},
		isa.Instr{Op: isa.MOVI, Rd: isa.R4, Imm: 8},
		isa.Instr{Op: isa.HALT},
	)
	if threeLoads <= loadPlusAlus {
		t.Fatalf("three loads (%d cycles) must exceed load+2 alus (%d cycles): one memory port", threeLoads, loadPlusAlus)
	}
}

func TestMispredictPenalty(t *testing.T) {
	// A forward conditional branch that IS taken mispredicts (static
	// not-taken prediction) and costs the penalty.
	taken := cycles(t, Config{},
		isa.Instr{Op: isa.MOVI, Rd: isa.R1, Imm: 1},
		isa.Instr{Op: isa.CBNZ, Rs1: isa.R1, Imm: 3}, // forward, taken → mispredict
		isa.Instr{Op: isa.NOP},
		isa.Instr{Op: isa.HALT},
	)
	notTaken := cycles(t, Config{},
		isa.Instr{Op: isa.MOVI, Rd: isa.R1, Imm: 0},
		isa.Instr{Op: isa.CBNZ, Rs1: isa.R1, Imm: 3}, // forward, not taken → correct
		isa.Instr{Op: isa.NOP},
		isa.Instr{Op: isa.HALT},
	)
	if taken-notTaken < mispredictPenalty-2 {
		t.Fatalf("mispredict cost %d, want ≈%d", taken-notTaken, mispredictPenalty)
	}
	m := New(rawProgram(
		isa.Instr{Op: isa.MOVI, Rd: isa.R1, Imm: 1},
		isa.Instr{Op: isa.CBNZ, Rs1: isa.R1, Imm: 3},
		isa.Instr{Op: isa.NOP},
		isa.Instr{Op: isa.HALT},
	), Config{})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Mispredicts != 1 {
		t.Fatalf("mispredicts = %d, want 1", m.Stats.Mispredicts)
	}
}

func TestCacheMissLatency(t *testing.T) {
	cfg := Config{Cache: CacheConfig{Sets: 4, Ways: 1, LineWords: 2, MissPenalty: 20}}
	// Load then immediately use the result: a miss delays the consumer.
	prog := []isa.Instr{
		{Op: isa.MOVI, Rd: isa.R1, Imm: 10},
		{Op: isa.LDR, Rd: isa.R2, Rs1: isa.R1, Imm: 0},
		{Op: isa.ADD, Rd: isa.R3, Rs1: isa.R2, Rs2: isa.R2},
		{Op: isa.HALT},
	}
	miss := cycles(t, cfg, prog...)
	flat := cycles(t, Config{}, prog...)
	if miss-flat < 15 {
		t.Fatalf("cold miss should add ~20 cycles: %d vs %d", miss, flat)
	}
	m := New(rawProgram(prog...), cfg)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.CacheMisses != 1 || m.Stats.CacheHits != 0 {
		t.Fatalf("hits/misses = %d/%d, want 0/1", m.Stats.CacheHits, m.Stats.CacheMisses)
	}
}

func TestCacheHitsOnReuse(t *testing.T) {
	cfg := Config{Cache: CacheConfig{Sets: 4, Ways: 2, LineWords: 2, MissPenalty: 20}}
	prog := []isa.Instr{
		{Op: isa.MOVI, Rd: isa.R1, Imm: 10},
		{Op: isa.LDR, Rd: isa.R2, Rs1: isa.R1, Imm: 0},
		{Op: isa.LDR, Rd: isa.R3, Rs1: isa.R1, Imm: 0},
		{Op: isa.LDR, Rd: isa.R4, Rs1: isa.R1, Imm: 1}, // same 2-word line
		{Op: isa.HALT},
	}
	m := New(rawProgram(prog...), cfg)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.CacheMisses != 1 || m.Stats.CacheHits != 2 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", m.Stats.CacheHits, m.Stats.CacheMisses)
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	// 1 set, 2 ways, 1-word lines: A B A C evicts B (LRU), not A.
	c := newDCache(CacheConfig{Sets: 1, Ways: 2, LineWords: 1, MissPenalty: 1})
	if c.access(1, 1) {
		t.Fatal("cold A should miss")
	}
	if c.access(2, 1) {
		t.Fatal("cold B should miss")
	}
	if !c.access(1, 1) {
		t.Fatal("A should hit")
	}
	if c.access(3, 1) {
		t.Fatal("cold C should miss")
	}
	if !c.access(1, 1) {
		t.Fatal("A should survive (B was LRU)")
	}
	if c.access(2, 1) {
		t.Fatal("B should have been evicted")
	}
}

func TestMarkCostsOneSlot(t *testing.T) {
	// MARKs consume issue bandwidth like the paper's mov-rp.
	with := cycles(t, Config{},
		isa.Instr{Op: isa.MARK}, isa.Instr{Op: isa.MARK},
		isa.Instr{Op: isa.MARK}, isa.Instr{Op: isa.MARK},
		isa.Instr{Op: isa.HALT},
	)
	without := cycles(t, Config{}, isa.Instr{Op: isa.HALT})
	if with-without < 2 {
		t.Fatalf("4 marks should cost ≥2 cycles on a 2-wide machine: %d vs %d", with, without)
	}
}
