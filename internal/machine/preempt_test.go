package machine

import (
	"context"
	"errors"
	"testing"
	"time"

	"idemproc/internal/isa"
)

// longLoop is a store/load loop with a huge trip count, the same shape
// the zero-alloc guard uses: long enough that a run only ends by
// preemption (or a deliberately bounded trip count).
func longLoop(trips int64) []isa.Instr {
	return []isa.Instr{
		{Op: isa.MOVI, Rd: isa.R1, Imm: 8},
		{Op: isa.MOVI, Rd: isa.R2, Imm: trips},
		{Op: isa.MARK},
		{Op: isa.LDR, Rd: isa.R3, Rs1: isa.R1},
		{Op: isa.ADDI, Rd: isa.R3, Rs1: isa.R3, Imm: 1},
		{Op: isa.STR, Rs1: isa.R1, Rs2: isa.R3},
		{Op: isa.ADDI, Rd: isa.R2, Rs1: isa.R2, Imm: -1},
		{Op: isa.CBNZ, Rs1: isa.R2, Imm: 2},
		{Op: isa.HALT},
	}
}

// TestPreemptBoundsInstructions pins the preemption budget: with the
// bound context already canceled, Run must stop within PreemptEvery
// dynamic instructions — the documented worst case — instead of running
// the workload to completion.
func TestPreemptBoundsInstructions(t *testing.T) {
	const stride = 512
	p := rawProgram(longLoop(100_000_000)...)
	m := New(p, Config{BufferStores: true, PreemptEvery: stride})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m.BindContext(ctx)

	_, err := m.Run()
	if !errors.Is(err, ErrPreempted) {
		t.Fatalf("Run = %v, want ErrPreempted", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("preemption error %v does not wrap context.Canceled", err)
	}
	if got := m.Stats.DynInstrs; got > stride {
		t.Errorf("executed %d instructions after cancellation, budget is %d", got, stride)
	}
}

// TestPreemptDeadline: a context deadline preempts too, and the error
// wraps DeadlineExceeded so the service maps it to 503.
func TestPreemptDeadline(t *testing.T) {
	p := rawProgram(longLoop(100_000_000)...)
	m := New(p, Config{BufferStores: true, PreemptEvery: 1024})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	m.BindContext(ctx)

	_, err := m.Run()
	if !errors.Is(err, ErrPreempted) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run = %v, want ErrPreempted wrapping DeadlineExceeded", err)
	}
	if m.Stats.DynInstrs >= 100_000_000 {
		t.Error("machine ran the workload to completion despite the deadline")
	}
}

// TestPreemptAsyncCancel cancels from another goroutine mid-run (the
// -race configuration of the real server path) and checks the run stops
// early with the right sentinel.
func TestPreemptAsyncCancel(t *testing.T) {
	const trips = 400_000_000
	p := rawProgram(longLoop(trips)...)
	m := New(p, Config{BufferStores: true, PreemptEvery: 4096, MaxSteps: 10 * trips})
	ctx, cancel := context.WithCancel(context.Background())
	m.BindContext(ctx)

	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	_, err := m.Run()
	if !errors.Is(err, ErrPreempted) {
		t.Fatalf("Run = %v, want ErrPreempted", err)
	}
	if m.Stats.DynInstrs >= 5*trips {
		t.Errorf("executed %d instructions, preemption did not bound the run", m.Stats.DynInstrs)
	}
}

// TestPreemptDisarmed: a never-canceled binding (and an explicit disarm)
// leaves execution untouched — the program runs to HALT with the same
// result as an unbound machine.
func TestPreemptDisarmed(t *testing.T) {
	prog := longLoop(2_000)

	ref := New(rawProgram(prog...), Config{BufferStores: true})
	want, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}

	m := New(rawProgram(prog...), Config{BufferStores: true, PreemptEvery: 64})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.BindContext(ctx)
	got, err := m.Run()
	if err != nil {
		t.Fatalf("bound but uncanceled run: %v", err)
	}
	if got != want || m.Stats.DynInstrs != ref.Stats.DynInstrs {
		t.Errorf("bound run diverged: r0 %d vs %d, instrs %d vs %d",
			got, want, m.Stats.DynInstrs, ref.Stats.DynInstrs)
	}

	// Disarm: Background's Done() is nil, so the poll switches off.
	m2 := New(rawProgram(prog...), Config{BufferStores: true})
	m2.BindContext(ctx)
	m2.BindContext(context.Background())
	if _, err := m2.Run(); err != nil {
		t.Fatalf("disarmed run: %v", err)
	}
}

// TestPreemptSurvivesReset mirrors the injection contract: Reset keeps
// the binding and restarts the poll counter from zero.
func TestPreemptSurvivesReset(t *testing.T) {
	const stride = 256
	p := rawProgram(longLoop(100_000_000)...)
	m := New(p, Config{BufferStores: true, PreemptEvery: stride})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m.BindContext(ctx)
	m.Reset()

	_, err := m.Run()
	if !errors.Is(err, ErrPreempted) {
		t.Fatalf("Run after Reset = %v, want ErrPreempted", err)
	}
	if got := m.Stats.DynInstrs; got > stride {
		t.Errorf("executed %d instructions after Reset+cancel, budget is %d", got, stride)
	}
}
