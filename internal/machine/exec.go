package machine

import (
	"errors"
	"fmt"
	"math"

	"idemproc/internal/isa"
)

// step executes one instruction functionally against both the
// architectural and the golden (fault-free) register state, applies any
// scheduled fault injection, and feeds the pipeline model.
func (m *Machine) step() error {
	if m.PC < 0 || m.PC >= len(m.P.Instrs) {
		return fmt.Errorf("machine: pc %d out of range", m.PC)
	}
	in := m.P.Instrs[m.PC]
	seq := m.Stats.DynInstrs
	m.Stats.DynInstrs++
	m.pathLen++

	// Scheduled memory-word corruptions fire before the instruction
	// executes: flip the word's current value wherever it lives (the
	// youngest store-buffer entry forwards to loads, else backing memory).
	for len(m.memFaultAt) > 0 && seq >= m.memFaultAt[0].step {
		mf := m.memFaultAt[0]
		m.memFaultAt = m.memFaultAt[1:]
		hit := false
		for i := len(m.storeBuf) - 1; i >= 0; i-- {
			if m.storeBuf[i].addr == mf.addr {
				m.storeBuf[i].val ^= mf.mask
				hit = true
				break
			}
		}
		if !hit {
			if mf.addr <= 0 || mf.addr >= int64(len(m.Mem)) {
				continue // outside the address space: vacuous
			}
			m.Mem[mf.addr] ^= mf.mask
		}
		m.noteFault()
	}

	// Shadow copies execute against the shadow bank: architecturally
	// invisible, but they occupy pipeline slots and have dependencies.
	if in.Shadow > 0 {
		m.pipe.account(m, in)
		m.execShadow(in)
		m.PC++
		return nil
	}

	var memAddr int64
	taken := false
	nextPC := m.PC + 1

	src := func(r isa.Reg) uint64 {
		if r.IsFloat() {
			return m.FReg[r-16]
		}
		return m.Regs[r]
	}
	setReg := func(r isa.Reg, v uint64) {
		if r.IsFloat() {
			m.FReg[r-16] = v
		} else {
			m.Regs[r] = v
		}
	}

	wroteRd := false
	switch in.Op {
	case isa.NOP:
	case isa.LDR, isa.FLDR:
		memAddr = int64(src(in.Rs1)) + in.Imm
		v, err := m.loadMem(memAddr)
		if err != nil {
			// A corrupted address register (or a wrong-path walk) can
			// wander out of bounds before the scheme's check fires;
			// treat it as a detection.
			if (m.tainted(in.Rs1) || m.wrongPath) && m.Cfg.Recovery != RecoverNone {
				if m.recoverFault() {
					m.pipe.account(m, in)
					return nil
				}
				if m.livelocked {
					return ErrLivelock
				}
			}
			return err
		}
		setReg(in.Rd, v)
		if m.injecting {
			gAddr := int64(m.goldenOf(in.Rs1)) + in.Imm
			gv, gerr := m.loadMem(gAddr)
			if gerr != nil {
				return gerr // a real program error, not a fault artifact
			}
			m.setGolden(in.Rd, gv)
		}
		wroteRd = true
		m.Stats.Loads++
		if m.cache != nil {
			if m.cache.access(memAddr, m.Cfg.Cache.LineWords) {
				m.Stats.CacheHits++
			} else {
				m.Stats.CacheMisses++
				m.pipe.extraLat = m.Cfg.Cache.MissPenalty
			}
		}
	case isa.STR, isa.FSTR:
		memAddr = int64(src(in.Rs1)) + in.Imm
		if err := m.storeMem(memAddr, src(in.Rs2)); err != nil {
			if (m.tainted(in.Rs1) || m.wrongPath) && m.Cfg.Recovery != RecoverNone {
				if m.recoverFault() {
					m.pipe.account(m, in)
					return nil
				}
				if m.livelocked {
					return ErrLivelock
				}
			}
			return err
		}
		m.Stats.Stores++
		if m.cache != nil {
			if m.cache.access(memAddr, m.Cfg.Cache.LineWords) {
				m.Stats.CacheHits++
			} else {
				m.Stats.CacheMisses++
				// Write-allocate fill: a short stall rather than a
				// dependent-latency extension (nothing waits on a store).
				m.pipe.extraStall = int64(m.Cfg.Cache.MissPenalty / 3)
			}
		}
	case isa.B:
		nextPC = int(in.Imm)
		taken = true
	case isa.CBZ, isa.CBNZ:
		cond := src(in.Rs1) == 0
		if in.Op == isa.CBNZ {
			cond = !cond
		}
		// Scheduled control-flow error: the branch resolves the wrong way
		// and execution continues speculatively down the wrong path.
		if len(m.flipAt) > 0 && seq >= m.flipAt[0] && !m.wrongPath {
			cond = !cond
			m.wrongPath = true
			m.noteFault()
			m.flipAt = m.flipAt[1:]
		}
		if cond {
			nextPC = int(in.Imm)
			taken = true
		}
	case isa.CALL:
		m.Regs[isa.LR] = uint64(m.PC + 1)
		m.golden[isa.LR] = uint64(m.PC + 1)
		nextPC = int(in.Imm)
		taken = true
		if m.Cfg.Tracer != nil {
			m.Cfg.Tracer.Call()
		}
	case isa.RET:
		nextPC = int(m.Regs[isa.LR])
		taken = true
		if m.Cfg.Tracer != nil {
			m.Cfg.Tracer.Ret()
		}
	case isa.HALT:
		// A wrong path must not terminate the machine.
		if m.wrongPath && m.Cfg.Recovery != RecoverNone {
			if m.recoverFault() {
				m.pipe.account(m, in)
				return nil
			}
			if m.livelocked {
				return ErrLivelock
			}
		}
		m.halted = true
		if m.Cfg.TrackPaths && m.pathLen > 0 {
			m.Stats.PathLens[m.pathLen]++
		}
	case isa.MARK:
		m.Stats.Marks++
		// Boundary faults armed before this MARK are primed now and fire
		// on the first register write of the new region.
		for len(m.boundaryAt) > 0 && seq >= m.boundaryAt[0].step {
			m.primed = append(m.primed, m.boundaryAt[0].mask)
			m.boundaryAt = m.boundaryAt[1:]
		}
		// Control-flow verification at the boundary (§2.3): a wrong-path
		// execution is detected here, before any of its stores commit.
		if m.wrongPath && m.Cfg.Recovery != RecoverNone {
			if m.recoverFault() {
				m.pipe.account(m, in)
				return nil
			}
			if m.livelocked {
				return ErrLivelock
			}
		}
		// Outstanding value divergence must also be resolved before the
		// region's stores commit — except on the re-entry a recovery just
		// jumped to, where stale (non-input) registers are expected until
		// the re-execution rewrites them.
		reentry := false
		if m.justRecovered {
			m.justRecovered = false
			reentry = true
		} else if m.anyTaint() && m.Cfg.Recovery != RecoverNone {
			if debugReconcile {
				fmt.Printf("MARK-DETECT pc=%d fn=%s rp=%d consec=%d\n", m.PC, m.fn(), m.rp, m.consecBoundary)
			}
			if m.boundaryRecoverOrReconcile() {
				m.pipe.account(m, in)
				return nil
			}
			if m.livelocked {
				return ErrLivelock
			}
		}
		m.lastRecoverPC = -1
		m.consecBoundary = 0
		m.commitRegion()
		// Only a boundary the re-execution was NOT restarted at counts as
		// forward progress for the bounded-retry watchdog: the re-entry
		// MARK a recovery jumps to re-opens the same region.
		if !reentry {
			m.retryPC = -1
			m.retryCount = 0
		}
	case isa.CHECK:
		// DMR check: the redundant copy disagrees iff the value diverges
		// from the golden mirror.
		if m.tainted(in.Rs1) {
			if debugReconcile {
				fmt.Printf("CHECK-DETECT pc=%d fn=%s reg=%v arch=%d golden=%d rp=%d seq=%d\n", m.PC, m.fn(), in.Rs1, int64(m.Regs[in.Rs1]), int64(m.golden[in.Rs1]), m.rp, m.Stats.DynInstrs)
			}
			if !m.recoverFault() {
				return m.detectErr()
			}
			m.pipe.account(m, in)
			return nil
		}
	case isa.MAJ:
		// TMR majority vote: the two clean copies outvote the corrupt
		// one, restoring the correct value in place.
		if m.tainted(in.Rd) {
			m.Stats.Detections++
			m.noteDetect()
			setReg(in.Rd, m.goldenOf(in.Rd))
		}
	default:
		v, err := evalALU(in, src)
		if err != nil {
			// Division by zero on a wrong path is a speculation artifact;
			// a corrupted operand (e.g. a divisor flipped to zero) is a
			// detection, exactly like a corrupted address register.
			corrupt := m.tainted(in.Rs1) || (hasRs2(in.Op) && m.tainted(in.Rs2))
			if (m.wrongPath || corrupt) && m.Cfg.Recovery != RecoverNone {
				if m.recoverFault() {
					m.pipe.account(m, in)
					return nil
				}
				if m.livelocked {
					return ErrLivelock
				}
			}
			return err
		}
		setReg(in.Rd, v)
		if m.injecting {
			gv, gerr := evalALU(in, m.goldenOf)
			if gerr != nil {
				return gerr
			}
			m.setGolden(in.Rd, gv)
		}
		wroteRd = true
	}

	// Scheduled fault injection: corrupt the just-written architectural
	// destination (the golden mirror keeps the correct value).
	// Instrumentation (Meta) is outside the fault sphere. Step-scheduled,
	// boundary-primed and recovery-nested faults all land here.
	if wroteRd && !in.Meta {
		var mask uint64
		if len(m.faultAt) > 0 && seq >= m.faultAt[0].step {
			mask ^= m.faultAt[0].mask
			m.faultAt = m.faultAt[1:]
		}
		if len(m.primed) > 0 {
			mask ^= m.primed[0]
			m.primed = m.primed[1:]
		}
		if len(m.nestedAt) > 0 && m.Stats.Recoveries >= m.nestedAt[0].after {
			mask ^= m.nestedAt[0].mask
			m.nestedAt = m.nestedAt[1:]
		}
		if mask != 0 {
			if in.Rd.IsFloat() {
				m.FReg[in.Rd-16] ^= mask
			} else {
				m.Regs[in.Rd] ^= mask
			}
			m.noteFault()
		}
	}

	// When no injection campaign is active, the golden mirror just tracks
	// the architectural state (cheaply, on writes).
	if !m.injecting && wroteRd {
		m.setGolden(in.Rd, src(in.Rd))
	}

	// Checkpoint-and-log: the log pointer advances through rp; when the
	// log fills, a (free) register checkpoint resets it.
	if m.Cfg.Recovery == RecoverCheckpointLog && wroteRd && in.Rd == isa.RP {
		m.logPtr = int64(m.Regs[isa.RP])
		if m.logPtr >= m.Cfg.LogBase+m.Cfg.LogWords {
			if m.anyTaint() {
				if debugReconcile {
					fmt.Printf("WRAP-DETECT pc=%d fn=%s ckptPC=%d consec=%d:", m.PC, m.fn(), m.ckptPC, m.consecBoundary)
					for i := range m.Regs {
						if m.Regs[i] != m.golden[i] {
							fmt.Printf(" r%d(a=%d g=%d)", i, int64(m.Regs[i]), int64(m.golden[i]))
						}
					}
					fmt.Println()
				}
				if !m.boundaryRecoverOrReconcile() {
					return m.detectErr()
				}
				m.pipe.account(m, in)
				return nil
			}
			m.lastRecoverPC = -1
			m.consecBoundary = 0
			m.PC = nextPC
			m.takeCheckpoint()
			m.pipe.account(m, in)
			if m.Cfg.Tracer != nil {
				m.Cfg.Tracer.Instr(in, memAddr, m.Regs[isa.SP])
			}
			return nil
		}
	}

	m.pipe.accountBranch(m, in, taken)
	m.pipe.account(m, in)
	if m.Cfg.Tracer != nil {
		m.Cfg.Tracer.Instr(in, memAddr, m.Regs[isa.SP])
	}
	m.PC = nextPC
	return nil
}

// boundaryRecoverOrReconcile handles divergence found at a region
// boundary or checkpoint. Repeated recoveries at the same point mean the
// remaining divergence is in registers the region never rewrites — dead
// values the program can no longer read before a redefinition — so the
// mirror is reconciled and execution proceeds. Returns true if a recovery
// (re-execution) was initiated.
func (m *Machine) boundaryRecoverOrReconcile() bool {
	if m.lastRecoverPC == m.PC {
		m.consecBoundary++
	} else {
		m.lastRecoverPC = m.PC
		m.consecBoundary = 0
	}
	if m.consecBoundary >= 2 {
		m.Stats.Reconciles++
		if debugReconcile {
			fmt.Printf("RECONCILE at pc=%d fn=%s:", m.PC, m.fn())
			for i := range m.Regs {
				if m.Regs[i] != m.golden[i] {
					fmt.Printf(" r%d(arch=%d golden=%d)", i, int64(m.Regs[i]), int64(m.golden[i]))
				}
			}
			for i := range m.FReg {
				if m.FReg[i] != m.goldenF[i] {
					fmt.Printf(" f%d", i)
				}
			}
			fmt.Println()
		}
		m.reconcile()
		m.lastRecoverPC = -1
		m.consecBoundary = 0
		return false
	}
	return m.recoverFault()
}

// evalALU computes a register-to-register operation from the given source
// accessor (architectural or golden).
func evalALU(in isa.Instr, src func(isa.Reg) uint64) (uint64, error) {
	f := func(r isa.Reg) float64 { return math.Float64frombits(src(r)) }
	b2u := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	switch in.Op {
	case isa.MOVI:
		return uint64(in.Imm), nil
	case isa.FMOVI:
		return math.Float64bits(in.FImm), nil
	case isa.MOV, isa.FMOV:
		return src(in.Rs1), nil
	case isa.ITOF:
		return math.Float64bits(float64(int64(src(in.Rs1)))), nil
	case isa.FTOI:
		return uint64(int64(math.Float64frombits(src(in.Rs1)))), nil
	case isa.ADD:
		return uint64(int64(src(in.Rs1)) + int64(src(in.Rs2))), nil
	case isa.SUB:
		return uint64(int64(src(in.Rs1)) - int64(src(in.Rs2))), nil
	case isa.MUL:
		return uint64(int64(src(in.Rs1)) * int64(src(in.Rs2))), nil
	case isa.DIV:
		d := int64(src(in.Rs2))
		if d == 0 {
			return 0, errors.New("machine: integer division by zero")
		}
		return uint64(int64(src(in.Rs1)) / d), nil
	case isa.REM:
		d := int64(src(in.Rs2))
		if d == 0 {
			return 0, errors.New("machine: integer remainder by zero")
		}
		return uint64(int64(src(in.Rs1)) % d), nil
	case isa.AND:
		return src(in.Rs1) & src(in.Rs2), nil
	case isa.ORR:
		return src(in.Rs1) | src(in.Rs2), nil
	case isa.EOR:
		return src(in.Rs1) ^ src(in.Rs2), nil
	case isa.LSL:
		return uint64(int64(src(in.Rs1)) << (src(in.Rs2) & 63)), nil
	case isa.ASR:
		return uint64(int64(src(in.Rs1)) >> (src(in.Rs2) & 63)), nil
	case isa.ADDI:
		return uint64(int64(src(in.Rs1)) + in.Imm), nil
	case isa.NEG:
		return uint64(-int64(src(in.Rs1))), nil
	case isa.MVN:
		return ^src(in.Rs1), nil
	case isa.SEQ:
		return b2u(int64(src(in.Rs1)) == int64(src(in.Rs2))), nil
	case isa.SNE:
		return b2u(int64(src(in.Rs1)) != int64(src(in.Rs2))), nil
	case isa.SLT:
		return b2u(int64(src(in.Rs1)) < int64(src(in.Rs2))), nil
	case isa.SLE:
		return b2u(int64(src(in.Rs1)) <= int64(src(in.Rs2))), nil
	case isa.SGT:
		return b2u(int64(src(in.Rs1)) > int64(src(in.Rs2))), nil
	case isa.SGE:
		return b2u(int64(src(in.Rs1)) >= int64(src(in.Rs2))), nil
	case isa.FADD:
		return math.Float64bits(f(in.Rs1) + f(in.Rs2)), nil
	case isa.FSUB:
		return math.Float64bits(f(in.Rs1) - f(in.Rs2)), nil
	case isa.FMUL:
		return math.Float64bits(f(in.Rs1) * f(in.Rs2)), nil
	case isa.FDIV:
		return math.Float64bits(f(in.Rs1) / f(in.Rs2)), nil
	case isa.FNEG:
		return math.Float64bits(-f(in.Rs1)), nil
	case isa.FSEQ:
		return b2u(f(in.Rs1) == f(in.Rs2)), nil
	case isa.FSNE:
		return b2u(f(in.Rs1) != f(in.Rs2)), nil
	case isa.FSLT:
		return b2u(f(in.Rs1) < f(in.Rs2)), nil
	case isa.FSLE:
		return b2u(f(in.Rs1) <= f(in.Rs2)), nil
	case isa.FSGT:
		return b2u(f(in.Rs1) > f(in.Rs2)), nil
	case isa.FSGE:
		return b2u(f(in.Rs1) >= f(in.Rs2)), nil
	}
	return 0, fmt.Errorf("machine: unknown op %v", in.Op)
}

func hasRs2(op isa.Op) bool {
	switch op {
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM, isa.AND, isa.ORR, isa.EOR,
		isa.LSL, isa.ASR, isa.SEQ, isa.SNE, isa.SLT, isa.SLE, isa.SGT, isa.SGE,
		isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV,
		isa.FSEQ, isa.FSNE, isa.FSLT, isa.FSLE, isa.FSGT, isa.FSGE,
		isa.STR, isa.FSTR:
		return true
	}
	return false
}

// execShadow executes a redundant copy against the shadow bank. Values
// mirror the architectural computation; only timing matters.
func (m *Machine) execShadow(in isa.Instr) {
	bank := &m.shadow[in.Shadow-1]
	if in.Rd.IsFloat() {
		bank.freg[in.Rd-16] = m.FReg[in.Rd-16]
	} else {
		bank.regs[in.Rd] = m.Regs[in.Rd]
	}
}

// debugReconcile enables reconcile diagnostics (tests may flip it).
var debugReconcile = false
