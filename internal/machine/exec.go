package machine

import (
	"errors"
	"fmt"
	"math"

	"idemproc/internal/isa"
)

// Sentinel arithmetic errors, allocated once so the hot loop never
// constructs error values.
var (
	errDivZero = errors.New("machine: integer division by zero")
	errRemZero = errors.New("machine: integer remainder by zero")
)

// step executes one predecoded instruction against the architectural
// state and feeds the pipeline model. The fault-free path touches only
// the decoded record, the unified register file and the store buffer —
// no closures, no per-step queue polling, no golden-mirror writes, no
// heap allocation. Reaching the earliest scheduled injection step flips
// the machine hot, which activates the full fault machinery (injection
// queues, golden mirror, taint detection) for the rest of the run.
func (m *Machine) step() error {
	pc := m.PC
	if pc < 0 || pc >= len(m.code.ops) {
		return fmt.Errorf("machine: pc %d out of range", pc)
	}
	d := &m.code.ops[pc]
	seq := m.Stats.DynInstrs
	m.Stats.DynInstrs++
	m.pathLen++

	if seq >= m.nextEvent {
		m.enterHot()
	}
	hot := m.hot

	// Scheduled memory-word corruptions fire before the instruction
	// executes: flip the word's current value wherever it lives (the
	// youngest store-buffer entry forwards to loads, else backing memory).
	if hot {
		for len(m.memFaultAt) > 0 && seq >= m.memFaultAt[0].step {
			mf := m.memFaultAt[0]
			m.memFaultAt = m.memFaultAt[1:]
			hit := false
			if len(m.storeBuf) > 0 {
				if pos, ok := m.sb.lookup(mf.addr); ok {
					m.storeBuf[pos].val ^= mf.mask
					hit = true
				}
			}
			if !hit {
				if mf.addr <= 0 || mf.addr >= int64(len(m.Mem)) {
					continue // outside the address space: vacuous
				}
				m.Mem[mf.addr] ^= mf.mask
			}
			m.noteFault()
		}
	}

	// Redundant DMR/TMR copies are architecturally invisible: they only
	// occupy pipeline resources (their decoded records carry the shadow
	// bank's availability slots).
	if d.kind == dShadow {
		m.pipe.account(m, d)
		m.PC = pc + 1
		return nil
	}

	var memAddr int64
	taken := false
	nextPC := pc + 1

	switch d.kind {
	case dNop:
	case dLoad:
		memAddr = int64(m.Regs[d.rs1]) + d.imm
		v, ok := m.loadMem(memAddr)
		if !ok {
			// A corrupted address register (or a wrong-path walk) can
			// wander out of bounds before the scheme's check fires;
			// treat it as a detection.
			if (m.tainted(d.rs1) || m.wrongPath) && m.Cfg.Recovery != RecoverNone {
				if m.recoverFault() {
					m.pipe.account(m, d)
					return nil
				}
				if m.livelocked {
					return ErrLivelock
				}
			}
			return m.loadErr(memAddr)
		}
		m.Regs[d.rd] = v
		if hot {
			gAddr := int64(m.golden[d.rs1]) + d.imm
			gv, gok := m.loadMem(gAddr)
			if !gok {
				return m.loadErr(gAddr) // a real program error, not a fault artifact
			}
			m.golden[d.rd] = gv
		}
		m.Stats.Loads++
		if m.cache != nil {
			if m.cache.access(memAddr, m.Cfg.Cache.LineWords) {
				m.Stats.CacheHits++
			} else {
				m.Stats.CacheMisses++
				m.pipe.extraLat = m.Cfg.Cache.MissPenalty
			}
		}
	case dStore:
		memAddr = int64(m.Regs[d.rs1]) + d.imm
		if !m.storeMem(memAddr, m.Regs[d.rs2]) {
			if (m.tainted(d.rs1) || m.wrongPath) && m.Cfg.Recovery != RecoverNone {
				if m.recoverFault() {
					m.pipe.account(m, d)
					return nil
				}
				if m.livelocked {
					return ErrLivelock
				}
			}
			return m.storeErr(memAddr)
		}
		m.Stats.Stores++
		if m.cache != nil {
			if m.cache.access(memAddr, m.Cfg.Cache.LineWords) {
				m.Stats.CacheHits++
			} else {
				m.Stats.CacheMisses++
				// Write-allocate fill: a short stall rather than a
				// dependent-latency extension (nothing waits on a store).
				m.pipe.extraStall = int64(m.Cfg.Cache.MissPenalty / 3)
			}
		}
	case dJump:
		nextPC = int(d.imm)
		taken = true
	case dCondBr:
		cond := m.Regs[d.rs1] == 0
		if d.condNeg {
			cond = !cond
		}
		// Scheduled control-flow error: the branch resolves the wrong way
		// and execution continues speculatively down the wrong path.
		if hot && len(m.flipAt) > 0 && seq >= m.flipAt[0] && !m.wrongPath {
			cond = !cond
			m.wrongPath = true
			m.noteFault()
			m.flipAt = m.flipAt[1:]
		}
		if cond {
			nextPC = int(d.imm)
			taken = true
		}
	case dCall:
		m.Regs[isa.LR] = uint64(pc + 1)
		if hot {
			m.golden[isa.LR] = uint64(pc + 1)
		}
		nextPC = int(d.imm)
		taken = true
		if m.Cfg.Tracer != nil {
			m.Cfg.Tracer.Call()
		}
	case dRet:
		nextPC = int(m.Regs[isa.LR])
		taken = true
		if m.Cfg.Tracer != nil {
			m.Cfg.Tracer.Ret()
		}
	case dHalt:
		// A wrong path must not terminate the machine.
		if m.wrongPath && m.Cfg.Recovery != RecoverNone {
			if m.recoverFault() {
				m.pipe.account(m, d)
				return nil
			}
			if m.livelocked {
				return ErrLivelock
			}
		}
		m.halted = true
		if m.Cfg.TrackPaths && m.pathLen > 0 {
			m.Stats.PathLens[m.pathLen]++
		}
	case dMark:
		m.Stats.Marks++
		reentry := false
		if hot {
			// Boundary faults armed before this MARK are primed now and
			// fire on the first register write of the new region.
			for len(m.boundaryAt) > 0 && seq >= m.boundaryAt[0].step {
				m.primed = append(m.primed, m.boundaryAt[0].mask)
				m.boundaryAt = m.boundaryAt[1:]
			}
			// Control-flow verification at the boundary (§2.3): a wrong-path
			// execution is detected here, before any of its stores commit.
			if m.wrongPath && m.Cfg.Recovery != RecoverNone {
				if m.recoverFault() {
					m.pipe.account(m, d)
					return nil
				}
				if m.livelocked {
					return ErrLivelock
				}
			}
			// Outstanding value divergence must also be resolved before the
			// region's stores commit — except on the re-entry a recovery just
			// jumped to, where stale (non-input) registers are expected until
			// the re-execution rewrites them.
			if m.justRecovered {
				m.justRecovered = false
				reentry = true
			} else if m.anyTaint() && m.Cfg.Recovery != RecoverNone {
				if debugReconcile {
					fmt.Printf("MARK-DETECT pc=%d fn=%s rp=%d consec=%d\n", pc, m.fn(), m.rp, m.consecBoundary)
				}
				if m.boundaryRecoverOrReconcile() {
					m.pipe.account(m, d)
					return nil
				}
				if m.livelocked {
					return ErrLivelock
				}
			}
		}
		m.lastRecoverPC = -1
		m.consecBoundary = 0
		m.commitRegion()
		// Only a boundary the re-execution was NOT restarted at counts as
		// forward progress for the bounded-retry watchdog: the re-entry
		// MARK a recovery jumps to re-opens the same region.
		if !reentry {
			m.retryPC = -1
			m.retryCount = 0
		}
	case dCheck:
		// DMR check: the redundant copy disagrees iff the value diverges
		// from the golden mirror.
		if m.tainted(d.rs1) {
			if debugReconcile {
				fmt.Printf("CHECK-DETECT pc=%d fn=%s reg=%v arch=%d golden=%d rp=%d seq=%d\n", pc, m.fn(), isa.Reg(d.rs1), int64(m.Regs[d.rs1]), int64(m.golden[d.rs1]), m.rp, m.Stats.DynInstrs)
			}
			if !m.recoverFault() {
				return m.detectErr()
			}
			m.pipe.account(m, d)
			return nil
		}
	case dMaj:
		// TMR majority vote: the two clean copies outvote the corrupt
		// one, restoring the correct value in place.
		if m.tainted(d.rd) {
			m.Stats.Detections++
			m.noteDetect()
			m.Regs[d.rd] = m.golden[d.rd]
		}
	default: // dALU
		v, err := evalALU(d, m.Regs[d.rs1], m.Regs[d.rs2])
		if err != nil {
			// Division by zero on a wrong path is a speculation artifact;
			// a corrupted operand (e.g. a divisor flipped to zero) is a
			// detection, exactly like a corrupted address register.
			corrupt := m.tainted(d.rs1) || (d.nsrc > 1 && m.tainted(d.rs2))
			if (m.wrongPath || corrupt) && m.Cfg.Recovery != RecoverNone {
				if m.recoverFault() {
					m.pipe.account(m, d)
					return nil
				}
				if m.livelocked {
					return ErrLivelock
				}
			}
			return err
		}
		m.Regs[d.rd] = v
		if hot {
			gv, gerr := evalALU(d, m.golden[d.rs1], m.golden[d.rs2])
			if gerr != nil {
				return gerr
			}
			m.golden[d.rd] = gv
		}
	}

	// Scheduled fault injection: corrupt the just-written architectural
	// destination (the golden mirror keeps the correct value).
	// Instrumentation (Meta) is outside the fault sphere. Step-scheduled,
	// boundary-primed and recovery-nested faults all land here.
	if hot && d.writesRd && !d.meta {
		var mask uint64
		if len(m.faultAt) > 0 && seq >= m.faultAt[0].step {
			mask ^= m.faultAt[0].mask
			m.faultAt = m.faultAt[1:]
		}
		if len(m.primed) > 0 {
			mask ^= m.primed[0]
			m.primed = m.primed[1:]
		}
		if len(m.nestedAt) > 0 && m.Stats.Recoveries >= m.nestedAt[0].after {
			mask ^= m.nestedAt[0].mask
			m.nestedAt = m.nestedAt[1:]
		}
		if mask != 0 {
			m.Regs[d.rd] ^= mask
			m.noteFault()
		}
	}

	// Checkpoint-and-log: the log pointer advances through rp; when the
	// log fills, a (free) register checkpoint resets it.
	if m.Cfg.Recovery == RecoverCheckpointLog && d.writesRd && d.rd == uint8(isa.RP) {
		m.logPtr = int64(m.Regs[isa.RP])
		if m.logPtr >= m.Cfg.LogBase+m.Cfg.LogWords {
			if m.anyTaint() {
				if debugReconcile {
					fmt.Printf("WRAP-DETECT pc=%d fn=%s ckptPC=%d consec=%d:", pc, m.fn(), m.ckptPC, m.consecBoundary)
					for i := range m.Regs {
						if m.Regs[i] != m.golden[i] {
							fmt.Printf(" r%d(a=%d g=%d)", i, int64(m.Regs[i]), int64(m.golden[i]))
						}
					}
					fmt.Println()
				}
				if !m.boundaryRecoverOrReconcile() {
					return m.detectErr()
				}
				m.pipe.account(m, d)
				return nil
			}
			m.lastRecoverPC = -1
			m.consecBoundary = 0
			m.PC = nextPC
			m.takeCheckpoint()
			m.pipe.account(m, d)
			if m.Cfg.Tracer != nil {
				m.Cfg.Tracer.Instr(m.P.Instrs[pc], memAddr, m.Regs[isa.SP])
			}
			return nil
		}
	}

	if d.kind == dCondBr && taken != d.predTaken {
		m.pipe.mispredict(m)
	}
	m.pipe.account(m, d)
	if m.Cfg.Tracer != nil {
		m.Cfg.Tracer.Instr(m.P.Instrs[pc], memAddr, m.Regs[isa.SP])
	}
	m.PC = nextPC
	return nil
}

// boundaryRecoverOrReconcile handles divergence found at a region
// boundary or checkpoint. Repeated recoveries at the same point mean the
// remaining divergence is in registers the region never rewrites — dead
// values the program can no longer read before a redefinition — so the
// mirror is reconciled and execution proceeds. Returns true if a recovery
// (re-execution) was initiated.
func (m *Machine) boundaryRecoverOrReconcile() bool {
	if m.lastRecoverPC == m.PC {
		m.consecBoundary++
	} else {
		m.lastRecoverPC = m.PC
		m.consecBoundary = 0
	}
	if m.consecBoundary >= 2 {
		m.Stats.Reconciles++
		if debugReconcile {
			fmt.Printf("RECONCILE at pc=%d fn=%s:", m.PC, m.fn())
			for i := range m.Regs {
				if m.Regs[i] != m.golden[i] {
					fmt.Printf(" %v(arch=%d golden=%d)", isa.Reg(i), int64(m.Regs[i]), int64(m.golden[i]))
				}
			}
			fmt.Println()
		}
		m.reconcile()
		m.lastRecoverPC = -1
		m.consecBoundary = 0
		return false
	}
	return m.recoverFault()
}

// evalALU computes a register-writing ALU operation from a predecoded
// record and the already-fetched operand values (architectural or
// golden). Value-form operands keep the function closure-free: the same
// code path serves both register files.
func evalALU(d *decoded, a, b uint64) (uint64, error) {
	switch d.op {
	case isa.MOVI, isa.FMOVI:
		return d.cval, nil
	case isa.MOV, isa.FMOV:
		return a, nil
	case isa.ITOF:
		return math.Float64bits(float64(int64(a))), nil
	case isa.FTOI:
		return uint64(int64(math.Float64frombits(a))), nil
	case isa.ADD:
		return uint64(int64(a) + int64(b)), nil
	case isa.SUB:
		return uint64(int64(a) - int64(b)), nil
	case isa.MUL:
		return uint64(int64(a) * int64(b)), nil
	case isa.DIV:
		if int64(b) == 0 {
			return 0, errDivZero
		}
		return uint64(int64(a) / int64(b)), nil
	case isa.REM:
		if int64(b) == 0 {
			return 0, errRemZero
		}
		return uint64(int64(a) % int64(b)), nil
	case isa.AND:
		return a & b, nil
	case isa.ORR:
		return a | b, nil
	case isa.EOR:
		return a ^ b, nil
	case isa.LSL:
		return uint64(int64(a) << (b & 63)), nil
	case isa.ASR:
		return uint64(int64(a) >> (b & 63)), nil
	case isa.ADDI:
		return uint64(int64(a) + d.imm), nil
	case isa.NEG:
		return uint64(-int64(a)), nil
	case isa.MVN:
		return ^a, nil
	case isa.SEQ:
		return b2u(int64(a) == int64(b)), nil
	case isa.SNE:
		return b2u(int64(a) != int64(b)), nil
	case isa.SLT:
		return b2u(int64(a) < int64(b)), nil
	case isa.SLE:
		return b2u(int64(a) <= int64(b)), nil
	case isa.SGT:
		return b2u(int64(a) > int64(b)), nil
	case isa.SGE:
		return b2u(int64(a) >= int64(b)), nil
	case isa.FADD:
		return math.Float64bits(f64(a) + f64(b)), nil
	case isa.FSUB:
		return math.Float64bits(f64(a) - f64(b)), nil
	case isa.FMUL:
		return math.Float64bits(f64(a) * f64(b)), nil
	case isa.FDIV:
		return math.Float64bits(f64(a) / f64(b)), nil
	case isa.FNEG:
		return math.Float64bits(-f64(a)), nil
	case isa.FSEQ:
		return b2u(f64(a) == f64(b)), nil
	case isa.FSNE:
		return b2u(f64(a) != f64(b)), nil
	case isa.FSLT:
		return b2u(f64(a) < f64(b)), nil
	case isa.FSLE:
		return b2u(f64(a) <= f64(b)), nil
	case isa.FSGT:
		return b2u(f64(a) > f64(b)), nil
	case isa.FSGE:
		return b2u(f64(a) >= f64(b)), nil
	}
	return 0, fmt.Errorf("machine: unknown op %v", d.op)
}

func f64(v uint64) float64 { return math.Float64frombits(v) }

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func hasRs2(op isa.Op) bool {
	switch op {
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM, isa.AND, isa.ORR, isa.EOR,
		isa.LSL, isa.ASR, isa.SEQ, isa.SNE, isa.SLT, isa.SLE, isa.SGT, isa.SGE,
		isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV,
		isa.FSEQ, isa.FSNE, isa.FSLT, isa.FSLE, isa.FSGT, isa.FSGE,
		isa.STR, isa.FSTR:
		return true
	}
	return false
}

// debugReconcile enables reconcile diagnostics (tests may flip it).
var debugReconcile = false
