package machine

import (
	"math"
	"sync"

	"idemproc/internal/codegen"
	"idemproc/internal/isa"
)

// This file implements the one-time predecode pass over a linked
// codegen.Program. The interpreter's hot loop never touches isa.Instr:
// every instruction is resolved once into a dense decoded record with
// operand bank indices, pipeline source/destination slots, latency and a
// top-level dispatch kind all precomputed, following the predecode /
// flat-state interpreter design of wazero. Programs are immutable after
// Link (see the codegen.Program immutability contract), so the decoded
// form is memoized per Program and shared by every Machine — including
// concurrent experiment workers — without synchronization beyond the
// cache lookup.

// dKind is the top-level dispatch class of a decoded instruction.
type dKind uint8

const (
	dNop dKind = iota
	dALU       // register-writing ALU/compare/move/convert ops
	dLoad
	dStore
	dJump
	dCondBr
	dCall
	dRet
	dHalt
	dMark
	dCheck
	dMaj
	dShadow // redundant DMR/TMR copy: timing-only
)

// decoded is one predecoded instruction. All register fields are unified
// indices into the 48-entry register file (isa.Reg is already flat);
// psrc0/psrc1/pdst additionally carry the 48×3 pipeline bank offset for
// shadow copies, so pipeline accounting is pure array indexing.
type decoded struct {
	imm  int64  // branch target / memory offset
	cval uint64 // precomputed constant (MOVI value, FMOVI float bits)
	lat  int64  // result latency in cycles

	kind dKind
	op   isa.Op
	rd   uint8 // unified destination index
	rs1  uint8 // unified source indices (0 when absent — reads r0 harmlessly)
	rs2  uint8

	// Pipeline model precomputation.
	nsrc         uint8  // number of pipeline source operands (0..2)
	psrc0, psrc1 uint16 // ready[] indices (unified index + 48*shadow bank)
	pdst         uint16 // ready[] index of the result (valid iff pipeWrites)

	meta       bool // recovery instrumentation: outside the fault sphere
	writesRd   bool // functionally writes Regs[rd] (fault-injection target iff !meta)
	pipeWrites bool // pipeline tracks a result latency
	isMem      bool
	isBranch   bool
	condNeg    bool // CBNZ (branch if != 0)
	predTaken  bool // static predictor: backward branches predicted taken
}

// Code is the predecoded form of one Program, shared read-only by every
// Machine executing it.
type Code struct {
	p   *codegen.Program
	ops []decoded
}

// Program returns the linked program this code was decoded from.
func (c *Code) Program() *codegen.Program { return c.p }

// codeCache memoizes predecoded programs by Program identity. Programs
// are immutable and bounded per process (each distinct compile produces
// one), so pointer keying is sound and the cache stays small; holding
// the Program alive also keeps its Code entry meaningful.
var codeCache sync.Map // *codegen.Program -> *Code

// Predecode returns the decoded form of p, computing it on first request
// and serving the shared memoized Code afterwards. internal/buildcache
// calls this at compile time so experiment workers find the decoded
// program alongside the cached compile and never pay the pass on the
// simulation path.
func Predecode(p *codegen.Program) *Code {
	if c, ok := codeCache.Load(p); ok {
		return c.(*Code)
	}
	c := &Code{p: p, ops: make([]decoded, len(p.Instrs))}
	for i, in := range p.Instrs {
		c.ops[i] = decodeOne(in, i)
	}
	// LoadOrStore keeps the winner unique under concurrent first decodes.
	actual, _ := codeCache.LoadOrStore(p, c)
	return actual.(*Code)
}

// DropPredecode removes p's memoized decoded form, if any. The compile
// cache calls this when it evicts a Program so the predecode memo does
// not pin evicted Programs in memory forever; Machines already holding
// the Code keep working (the Code itself is immutable), and a later
// Predecode simply recomputes.
func DropPredecode(p *codegen.Program) {
	codeCache.Delete(p)
}

// decodeOne resolves one instruction at absolute index pc.
func decodeOne(in isa.Instr, pc int) decoded {
	d := decoded{
		imm:      in.Imm,
		lat:      int64(in.Latency()),
		op:       in.Op,
		rd:       uint8(in.Rd),
		rs1:      uint8(in.Rs1),
		rs2:      uint8(in.Rs2),
		meta:     in.Meta,
		isMem:    in.IsMem(),
		isBranch: in.IsBranch(),
	}

	switch in.Op {
	case isa.NOP:
		d.kind = dNop
	case isa.LDR, isa.FLDR:
		d.kind = dLoad
		d.writesRd = true
	case isa.STR, isa.FSTR:
		d.kind = dStore
	case isa.B:
		d.kind = dJump
	case isa.CBZ, isa.CBNZ:
		d.kind = dCondBr
		d.condNeg = in.Op == isa.CBNZ
		// Static prediction: backward (target at or before the branch)
		// predicted taken, forward predicted not-taken.
		d.predTaken = in.Imm <= int64(pc)
	case isa.CALL:
		d.kind = dCall
	case isa.RET:
		d.kind = dRet
	case isa.HALT:
		d.kind = dHalt
	case isa.MARK:
		d.kind = dMark
	case isa.CHECK:
		d.kind = dCheck
	case isa.MAJ:
		d.kind = dMaj
	default:
		d.kind = dALU
		d.writesRd = true
		switch in.Op {
		case isa.MOVI:
			d.cval = uint64(in.Imm)
		case isa.FMOVI:
			d.cval = math.Float64bits(in.FImm)
		}
	}
	if in.Shadow > 0 {
		d.kind = dShadow
	}

	// Pipeline operand slots: mirror srcRegs/writesReg of the timing
	// model, with the shadow bank offset folded in.
	bank := uint16(in.Shadow) * isa.NumRegs
	var srcs [2]isa.Reg
	n := 0
	switch in.Op {
	case isa.NOP, isa.MOVI, isa.FMOVI, isa.B, isa.CALL, isa.HALT, isa.MARK:
	case isa.RET:
		srcs[0], n = isa.LR, 1
	case isa.CBZ, isa.CBNZ, isa.CHECK:
		srcs[0], n = in.Rs1, 1
	case isa.MAJ:
		srcs[0], n = in.Rd, 1
	case isa.STR, isa.FSTR:
		srcs[0], srcs[1], n = in.Rs1, in.Rs2, 2
	default:
		srcs[0], n = in.Rs1, 1
		if hasRs2(in.Op) {
			srcs[1], n = in.Rs2, 2
		}
	}
	d.nsrc = uint8(n)
	if n > 0 {
		d.psrc0 = uint16(srcs[0]) + bank
	}
	if n > 1 {
		d.psrc1 = uint16(srcs[1]) + bank
	}
	d.pipeWrites = pipeWritesReg(in.Op)
	if d.pipeWrites {
		d.pdst = uint16(in.Rd) + bank
	}
	return d
}

// pipeWritesReg reports whether the timing model tracks a result latency
// for the op (the CALL link write is modeled as free).
func pipeWritesReg(op isa.Op) bool {
	switch op {
	case isa.NOP, isa.STR, isa.FSTR, isa.B, isa.CBZ, isa.CBNZ,
		isa.RET, isa.HALT, isa.MARK, isa.CHECK, isa.MAJ, isa.CALL:
		return false
	}
	return true
}
