package machine

import (
	"testing"

	"idemproc/internal/isa"
)

// TestStepZeroAllocs pins the hot loop's allocation contract: a
// fault-free step — including loads with store-buffer forwarding,
// buffered stores, region commits at MARK, path tracking and the cache
// model — performs no heap allocation. A regression here silently
// destroys the throughput the predecoded engine exists for, so it fails
// loudly instead of showing up as a benchmark drift.
func TestStepZeroAllocs(t *testing.T) {
	// A store/load/commit loop with a huge trip count so the machine
	// never halts while we measure.
	p := rawProgram(
		isa.Instr{Op: isa.MOVI, Rd: isa.R1, Imm: 8},           // memory cell
		isa.Instr{Op: isa.MOVI, Rd: isa.R2, Imm: 100_000_000}, // trip count
		isa.Instr{Op: isa.MARK},
		isa.Instr{Op: isa.LDR, Rd: isa.R3, Rs1: isa.R1},
		isa.Instr{Op: isa.ADDI, Rd: isa.R3, Rs1: isa.R3, Imm: 1},
		isa.Instr{Op: isa.STR, Rs1: isa.R1, Rs2: isa.R3},
		isa.Instr{Op: isa.ADDI, Rd: isa.R2, Rs1: isa.R2, Imm: -1},
		isa.Instr{Op: isa.CBNZ, Rs1: isa.R2, Imm: 2},
		isa.Instr{Op: isa.HALT},
	)
	m := New(p, Config{BufferStores: true, TrackPaths: true, Cache: DefaultCache()})
	m.PC = p.Entry
	m.rp = m.PC

	// Warm up: let every lazily-grown structure (store buffer, its index,
	// the path histogram bucket) reach steady state.
	for i := 0; i < 10_000; i++ {
		if err := m.step(); err != nil {
			t.Fatal(err)
		}
	}

	avg := testing.AllocsPerRun(50, func() {
		for i := 0; i < 1_000; i++ {
			if err := m.step(); err != nil {
				t.Fatal(err)
			}
		}
	})
	if avg != 0 {
		t.Fatalf("fault-free step allocates: %v allocs per 1000 steps, want 0", avg)
	}
	if m.halted {
		t.Fatal("machine halted during measurement; trip count too small")
	}
}
