package machine

import (
	"math"
	"testing"

	"idemproc/internal/isa"
)

// negWord returns the two's-complement word for -v.
func negWord(v int64) uint64 { return uint64(-v) }

// TestAllALUOps checks every ALU/compare/convert operation functionally,
// including negative, zero and large operands.
func TestAllALUOps(t *testing.T) {
	type tc struct {
		op   isa.Op
		x, y uint64
		want uint64
	}
	f := math.Float64bits
	cases := []tc{
		{isa.ADD, 5, 3, 8},
		{isa.ADD, uint64(1<<63 - 1), 1, 1 << 63}, // wraparound
		{isa.SUB, 3, 5, negWord(2)},
		{isa.MUL, negWord(4), 3, negWord(12)},
		{isa.DIV, negWord(7), 2, negWord(3)},
		{isa.REM, negWord(7), 2, negWord(1)},
		{isa.AND, 0b1100, 0b1010, 0b1000},
		{isa.ORR, 0b1100, 0b1010, 0b1110},
		{isa.EOR, 0b1100, 0b1010, 0b0110},
		{isa.LSL, 3, 4, 48},
		{isa.ASR, negWord(16), 2, negWord(4)},
		{isa.SEQ, 4, 4, 1},
		{isa.SNE, 4, 4, 0},
		{isa.SLT, negWord(1), 0, 1},
		{isa.SLE, 5, 5, 1},
		{isa.SGT, 5, 4, 1},
		{isa.SGE, 4, 5, 0},
		{isa.FADD, f(1.5), f(2.25), f(3.75)},
		{isa.FSUB, f(1.5), f(2.25), f(-0.75)},
		{isa.FMUL, f(1.5), f(4), f(6)},
		{isa.FDIV, f(3), f(2), f(1.5)},
		{isa.FSEQ, f(2), f(2), 1},
		{isa.FSNE, f(2), f(2), 0},
		{isa.FSLT, f(-1), f(0), 1},
		{isa.FSLE, f(2), f(2), 1},
		{isa.FSGT, f(3), f(2), 1},
		{isa.FSGE, f(1), f(2), 0},
	}
	for _, c := range cases {
		// Build: movi r1/f1 = x; movi r2/f2 = y; op rd, r1, r2; halt.
		srcIsF := c.op >= isa.FADD && c.op <= isa.FSGE || c.op == isa.FTOI
		dstIsF := c.op >= isa.FADD && c.op <= isa.FNEG
		var r1, r2, rd isa.Reg = isa.R1, isa.R2, isa.R3
		if srcIsF {
			r1, r2 = isa.F(1), isa.F(2)
		}
		if dstIsF {
			rd = isa.F(3)
		}
		m := New(rawProgram(
			isa.Instr{Op: isa.NOP},
			isa.Instr{Op: c.op, Rd: rd, Rs1: r1, Rs2: r2},
			isa.Instr{Op: isa.HALT},
		), Config{})
		if srcIsF {
			m.Regs[16+1], m.Regs[16+2] = c.x, c.y
		} else {
			m.Regs[1], m.Regs[2] = c.x, c.y
		}
		if _, err := m.Run(); err != nil {
			t.Fatalf("%v: %v", c.op, err)
		}
		var got uint64
		if dstIsF {
			got = m.Regs[16+3]
		} else {
			got = m.Regs[3]
		}
		if got != c.want {
			t.Errorf("%v(%d, %d) = %#x, want %#x", c.op, int64(c.x), int64(c.y), got, c.want)
		}
	}
}

func TestUnaryAndConvertOps(t *testing.T) {
	m := New(rawProgram(
		isa.Instr{Op: isa.MOVI, Rd: isa.R1, Imm: -9},
		isa.Instr{Op: isa.NEG, Rd: isa.R2, Rs1: isa.R1},
		isa.Instr{Op: isa.MVN, Rd: isa.R3, Rs1: isa.R1},
		isa.Instr{Op: isa.ITOF, Rd: isa.F(1), Rs1: isa.R2},
		isa.Instr{Op: isa.FNEG, Rd: isa.F(2), Rs1: isa.F(1)},
		isa.Instr{Op: isa.FTOI, Rd: isa.R4, Rs1: isa.F(2)},
		isa.Instr{Op: isa.FMOVI, Rd: isa.F(3), FImm: 2.75},
		isa.Instr{Op: isa.FMOV, Rd: isa.F(4), Rs1: isa.F(3)},
		isa.Instr{Op: isa.MOV, Rd: isa.R5, Rs1: isa.R2},
		isa.Instr{Op: isa.HALT},
	), Config{})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if int64(m.Regs[2]) != 9 || int64(m.Regs[3]) != ^int64(-9) {
		t.Fatalf("neg/mvn wrong: %d %d", int64(m.Regs[2]), int64(m.Regs[3]))
	}
	if math.Float64frombits(m.Regs[16+1]) != 9 || math.Float64frombits(m.Regs[16+2]) != -9 {
		t.Fatal("itof/fneg wrong")
	}
	if int64(m.Regs[4]) != -9 || m.Regs[5] != 9 {
		t.Fatal("ftoi/mov wrong")
	}
	if math.Float64frombits(m.Regs[16+4]) != 2.75 {
		t.Fatal("fmov wrong")
	}
}

func TestDivideByZeroErrors(t *testing.T) {
	for _, op := range []isa.Op{isa.DIV, isa.REM} {
		m := New(rawProgram(
			isa.Instr{Op: isa.MOVI, Rd: isa.R1, Imm: 7},
			isa.Instr{Op: isa.MOVI, Rd: isa.R2, Imm: 0},
			isa.Instr{Op: op, Rd: isa.R3, Rs1: isa.R1, Rs2: isa.R2},
			isa.Instr{Op: isa.HALT},
		), Config{})
		if _, err := m.Run(); err == nil {
			t.Fatalf("%v by zero must error", op)
		}
	}
}

func TestBranchDirections(t *testing.T) {
	// CBZ taken and not taken; CBNZ both; unconditional B.
	run := func(ins ...isa.Instr) uint64 {
		m := New(rawProgram(ins...), Config{})
		got, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	// r0 = 1 if branch taken path else 2.
	if got := run(
		isa.Instr{Op: isa.MOVI, Rd: isa.R1, Imm: 0},
		isa.Instr{Op: isa.CBZ, Rs1: isa.R1, Imm: 4},
		isa.Instr{Op: isa.MOVI, Rd: isa.R0, Imm: 2},
		isa.Instr{Op: isa.HALT},
		isa.Instr{Op: isa.MOVI, Rd: isa.R0, Imm: 1},
		isa.Instr{Op: isa.HALT},
	); got != 1 {
		t.Fatalf("CBZ taken path = %d", got)
	}
	if got := run(
		isa.Instr{Op: isa.MOVI, Rd: isa.R1, Imm: 5},
		isa.Instr{Op: isa.CBZ, Rs1: isa.R1, Imm: 4},
		isa.Instr{Op: isa.MOVI, Rd: isa.R0, Imm: 2},
		isa.Instr{Op: isa.HALT},
		isa.Instr{Op: isa.MOVI, Rd: isa.R0, Imm: 1},
		isa.Instr{Op: isa.HALT},
	); got != 2 {
		t.Fatalf("CBZ fallthrough path = %d", got)
	}
	if got := run(
		isa.Instr{Op: isa.B, Imm: 3},
		isa.Instr{Op: isa.MOVI, Rd: isa.R0, Imm: 2},
		isa.Instr{Op: isa.HALT},
		isa.Instr{Op: isa.MOVI, Rd: isa.R0, Imm: 7},
		isa.Instr{Op: isa.HALT},
	); got != 7 {
		t.Fatalf("B path = %d", got)
	}
}

func TestStoreBufferForwarding(t *testing.T) {
	// With buffering on, a load after a buffered store to the same
	// address must see the buffered value; memory commits only at MARK.
	m := New(rawProgram(
		isa.Instr{Op: isa.MARK},
		isa.Instr{Op: isa.MOVI, Rd: isa.R1, Imm: 50},
		isa.Instr{Op: isa.MOVI, Rd: isa.R2, Imm: 99},
		isa.Instr{Op: isa.STR, Rs1: isa.R1, Rs2: isa.R2},
		isa.Instr{Op: isa.LDR, Rd: isa.R0, Rs1: isa.R1},
		isa.Instr{Op: isa.HALT},
	), Config{BufferStores: true})
	got, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != 99 {
		t.Fatalf("buffered forwarding = %d, want 99", got)
	}
	// The store never committed (no MARK after it).
	if m.Mem[50] != 0 {
		t.Fatalf("uncommitted store leaked to memory: %d", m.Mem[50])
	}

	// With a trailing MARK it commits.
	m2 := New(rawProgram(
		isa.Instr{Op: isa.MARK},
		isa.Instr{Op: isa.MOVI, Rd: isa.R1, Imm: 50},
		isa.Instr{Op: isa.MOVI, Rd: isa.R2, Imm: 99},
		isa.Instr{Op: isa.STR, Rs1: isa.R1, Rs2: isa.R2},
		isa.Instr{Op: isa.MARK},
		isa.Instr{Op: isa.HALT},
	), Config{BufferStores: true})
	if _, err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if m2.Mem[50] != 99 {
		t.Fatalf("committed store missing: %d", m2.Mem[50])
	}
}

func TestPCOutOfRange(t *testing.T) {
	m := New(rawProgram(
		isa.Instr{Op: isa.B, Imm: 999},
		isa.Instr{Op: isa.HALT},
	), Config{})
	if _, err := m.Run(); err == nil {
		t.Fatal("expected pc-out-of-range error")
	}
}
