package machine

import (
	"errors"
	"testing"
)

// spinSrc is a tight counted loop with no memory traffic: a corrupted
// counter loops ~2^63 iterations instead of n.
const spinSrc = `
func @spin(i64 %n) i64 {
e:
  br l
l:
  %i = phi [e: 0], [l: %i2]
  %acc = phi [e: 0], [l: %acc2]
  %acc2 = add %acc, %i
  %i2 = add %i, 1
  %c = lt %i2, %n
  condbr %c, l, d
d:
  ret %acc2
}
`

// TestWatchdogCatchesCorruptedLoopCounter injects sign-bit flips into an
// unprotected binary. When the flip lands on the loop counter the loop
// bound is pushed ~2^63 iterations away; the watchdog must terminate the
// run with ErrLivelock after a small multiple of the fault-free
// reference, instead of spinning to the 500M-step generic limit.
func TestWatchdogCatchesCorruptedLoopCounter(t *testing.T) {
	p := compile(t, spinSrc, "spin", false)
	ref := New(p, Config{})
	if _, err := ref.Run(64); err != nil {
		t.Fatal(err)
	}
	span := ref.Stats.DynInstrs

	livelocks := 0
	for step := int64(3); step < span-5; step += 2 {
		m := New(p, Config{WatchdogRef: span, WatchdogFactor: 8})
		m.InjectFaultMask(step, 1<<63)
		_, err := m.Run(64)
		if err == nil {
			continue // flip was benign for the control flow
		}
		if !errors.Is(err, ErrLivelock) {
			t.Fatalf("step %d: unexpected error %v", step, err)
		}
		livelocks++
		budget := span*8 + 4096
		if m.Stats.DynInstrs > budget+2 {
			t.Fatalf("step %d: watchdog fired late: %d dyn instrs vs budget %d", step, m.Stats.DynInstrs, budget)
		}
	}
	if livelocks == 0 {
		t.Fatal("no sign-bit flip ever produced a livelock; watchdog untested")
	}
	t.Logf("watchdog terminated %d livelocked runs", livelocks)
}

// TestWatchdogQuietOnCleanRuns ensures the watchdog never fires on a
// fault-free execution, including under recovery instrumentation configs.
func TestWatchdogQuietOnCleanRuns(t *testing.T) {
	p := compile(t, spinSrc, "spin", true)
	ref := New(p, Config{BufferStores: true, Recovery: RecoverIdempotence})
	want, err := ref.Run(64)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, Config{BufferStores: true, Recovery: RecoverIdempotence,
		WatchdogRef: ref.Stats.DynInstrs, WatchdogFactor: 2})
	got, err := m.Run(64)
	if err != nil {
		t.Fatalf("watchdog fired on a clean run: %v", err)
	}
	if got != want {
		t.Fatalf("got %d, want %d", got, want)
	}
}

// TestMemFaultCorruptsWord checks the memory-word fault model end to end
// on an unprotected binary: flipping a data word before it is read must
// change the (unchecked) result.
func TestMemFaultCorruptsWord(t *testing.T) {
	src := `
global @data [4] = {10, 20, 30, 40}

func @main() i64 {
e:
  %g = global @data
  %p = add %g, 2
  %x = load %p
  ret %x
}
`
	p := compile(t, src, "main", false)
	ref := New(p, Config{})
	want, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want != 30 {
		t.Fatalf("reference = %d, want 30", want)
	}
	m := New(p, Config{})
	m.InjectMemFault(0, p.GlobalBase["data"]+2, 1<<4)
	got, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != want^(1<<4) {
		t.Fatalf("memory fault: got %d, want %d", got, want^(1<<4))
	}
	if m.Stats.Faults != 1 {
		t.Fatalf("Faults = %d, want 1", m.Stats.Faults)
	}
	if m.Stats.FirstFaultStep < 0 {
		t.Fatal("FirstFaultStep not recorded")
	}
}

// TestBoundaryFaultFiresAfterMark verifies the boundary model's
// arm→prime→fire sequence on an idempotent binary: the fault counter
// increments only once a MARK has executed past the arming step.
func TestBoundaryFaultFiresAfterMark(t *testing.T) {
	p := compile(t, spinSrc, "spin", true)
	ref := New(p, Config{BufferStores: true, Recovery: RecoverIdempotence})
	want, err := ref.Run(64)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Stats.Marks == 0 {
		t.Skip("idempotent spin binary has no dynamic MARKs")
	}
	m := New(p, Config{BufferStores: true, Recovery: RecoverIdempotence,
		WatchdogRef: ref.Stats.DynInstrs})
	m.InjectBoundaryFault(3, 1<<7)
	got, err := m.Run(64)
	if err != nil {
		t.Fatalf("boundary fault: %v", err)
	}
	if m.Stats.Faults == 0 {
		t.Fatal("boundary fault never fired despite dynamic MARKs")
	}
	if got != want {
		t.Fatalf("boundary fault not recovered: got %d, want %d (detections=%d recoveries=%d)",
			got, want, m.Stats.Detections, m.Stats.Recoveries)
	}
}
