package machine

import "idemproc/internal/isa"

// pipeline is the two-issue in-order timing model. It tracks, per
// architectural register (and per shadow bank), the cycle when its value
// becomes available, and issues up to two instructions per cycle subject
// to: operands ready, at most one memory operation per cycle, and a taken
// or mispredicted branch ending the issue group.
//
// All operand and destination slots are precomputed by the predecode
// pass: decoded.psrc0/psrc1/pdst are direct indices into ready[] with the
// shadow-bank offset already folded in, so accounting is pure array
// arithmetic with no per-instruction operand re-derivation.
type pipeline struct {
	cycle   int64
	slots   int
	memUsed bool
	// ready[r + 48*bank] is the availability cycle of register r.
	ready [isa.NumRegs * 3]int64
	// extraLat extends the next accounted instruction's result latency
	// (cache miss on a load); extraStall advances the clock before it
	// issues (cache miss on a store fill).
	extraLat   int
	extraStall int64
}

// mispredictPenalty models the front-end refill after a conditional
// branch misprediction.
const mispredictPenalty = 8

// account issues one predecoded instruction into the model.
func (p *pipeline) account(m *Machine, d *decoded) {
	if p.extraStall > 0 {
		p.cycle += p.extraStall
		p.slots = 0
		p.memUsed = false
		p.extraStall = 0
	}

	// Stall until operands are ready.
	earliest := p.cycle
	if d.nsrc > 0 {
		if r := p.ready[d.psrc0]; r > earliest {
			earliest = r
		}
		if d.nsrc > 1 {
			if r := p.ready[d.psrc1]; r > earliest {
				earliest = r
			}
		}
	}
	if earliest > p.cycle {
		p.cycle = earliest
		p.slots = 0
		p.memUsed = false
	}
	// Structural hazards: issue width and the single memory port.
	if p.slots >= 2 || (d.isMem && p.memUsed) {
		p.cycle++
		p.slots = 0
		p.memUsed = false
	}
	p.slots++
	if d.isMem {
		p.memUsed = true
	}
	if d.isBranch {
		p.slots = 2 // a branch ends the issue group
	}

	// Result availability.
	if d.pipeWrites {
		p.ready[d.pdst] = p.cycle + d.lat + int64(p.extraLat)
	}
	p.extraLat = 0
	m.Stats.Cycles = p.cycle + 1
}

// mispredict applies the static-prediction penalty after a conditional
// branch resolves against its predecoded prediction (backward predicted
// taken, forward predicted not-taken; unconditional branches, calls and
// returns predict perfectly through the BTB/RAS).
func (p *pipeline) mispredict(m *Machine) {
	p.cycle += mispredictPenalty
	p.slots = 0
	p.memUsed = false
	m.Stats.Mispredicts++
}
