package machine

import "idemproc/internal/isa"

// pipeline is the two-issue in-order timing model. It tracks, per
// architectural register (and per shadow bank), the cycle when its value
// becomes available, and issues up to two instructions per cycle subject
// to: operands ready, at most one memory operation per cycle, and a taken
// or mispredicted branch ending the issue group.
type pipeline struct {
	cycle   int64
	slots   int
	memUsed bool
	// ready[r + 48*bank] is the availability cycle of register r.
	ready [48 * 3]int64
	// extraLat extends the next accounted instruction's result latency
	// (cache miss on a load); extraStall advances the clock before it
	// issues (cache miss on a store fill).
	extraLat   int
	extraStall int64
}

// mispredictPenalty models the front-end refill after a conditional
// branch misprediction.
const mispredictPenalty = 8

func regIndex(r isa.Reg, shadow uint8) int { return int(r) + 48*int(shadow) }

// srcRegs writes the instruction's source registers into buf and returns
// the slice.
func srcRegs(in isa.Instr, buf []isa.Reg) []isa.Reg {
	buf = buf[:0]
	switch in.Op {
	case isa.NOP, isa.MOVI, isa.FMOVI, isa.B, isa.CALL, isa.HALT, isa.MARK:
		return buf
	case isa.RET:
		return append(buf, isa.LR)
	case isa.CBZ, isa.CBNZ, isa.CHECK:
		return append(buf, in.Rs1)
	case isa.MAJ:
		return append(buf, in.Rd)
	case isa.STR, isa.FSTR:
		return append(buf, in.Rs1, in.Rs2)
	default:
		buf = append(buf, in.Rs1)
		if hasRs2(in.Op) {
			buf = append(buf, in.Rs2)
		}
		return buf
	}
}

// account issues one instruction into the model.
func (p *pipeline) account(m *Machine, in isa.Instr) {
	if p.extraStall > 0 {
		p.cycle += p.extraStall
		p.slots = 0
		p.memUsed = false
		p.extraStall = 0
	}
	var buf [2]isa.Reg
	srcs := srcRegs(in, buf[:0])

	// Stall until operands are ready.
	earliest := p.cycle
	for _, s := range srcs {
		if r := p.ready[regIndex(s, in.Shadow)]; r > earliest {
			earliest = r
		}
	}
	if earliest > p.cycle {
		p.cycle = earliest
		p.slots = 0
		p.memUsed = false
	}
	// Structural hazards: issue width and the single memory port.
	if p.slots >= 2 || (in.IsMem() && p.memUsed) {
		p.cycle++
		p.slots = 0
		p.memUsed = false
	}
	p.slots++
	if in.IsMem() {
		p.memUsed = true
	}
	if in.IsBranch() {
		p.slots = 2 // a branch ends the issue group
	}

	// Result availability.
	if writesReg(in) {
		p.ready[regIndex(in.Rd, in.Shadow)] = p.cycle + int64(in.Latency()+p.extraLat)
	}
	p.extraLat = 0
	m.Stats.Cycles = p.cycle + 1
}

// accountBranch applies the static-prediction penalty for conditional
// branches: backward predicted taken, forward predicted not-taken;
// unconditional branches, calls and returns predict perfectly (BTB/RAS).
func (p *pipeline) accountBranch(m *Machine, in isa.Instr, taken bool) {
	switch in.Op {
	case isa.CBZ, isa.CBNZ:
		predictTaken := in.Imm <= int64(m.PC)
		if taken != predictTaken {
			p.cycle += mispredictPenalty
			p.slots = 0
			p.memUsed = false
			m.Stats.Mispredicts++
		}
	}
}

// writesReg reports whether the instruction produces a register result.
func writesReg(in isa.Instr) bool {
	switch in.Op {
	case isa.NOP, isa.STR, isa.FSTR, isa.B, isa.CBZ, isa.CBNZ,
		isa.RET, isa.HALT, isa.MARK, isa.CHECK, isa.MAJ:
		return false
	case isa.CALL:
		return false // LR write modeled as free
	}
	return true
}
