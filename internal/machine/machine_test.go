package machine

import (
	"math/rand"
	"testing"

	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/ir"
)

// compile builds a program from IR text, conventionally or idempotently.
func compile(t *testing.T, src, main string, idem bool) *codegen.Program {
	t.Helper()
	m := ir.MustParse(src)
	p, _, err := codegen.CompileModule(m, main, 4096, idem, core.DefaultOptions())
	if err != nil {
		t.Fatalf("CompileModule(idem=%v): %v", idem, err)
	}
	return p
}

// runBoth compiles src both ways, runs both binaries and the interpreter,
// and checks full agreement on the result.
func runBoth(t *testing.T, src, main string, args ...uint64) (base, idem *Machine) {
	t.Helper()
	ref := ir.MustParse(src)
	in := ir.NewInterp(ref, 4096)
	iargs := make([]ir.Word, len(args))
	for i, a := range args {
		iargs[i] = ir.Word(a)
	}
	want, ierr := in.Run(main, iargs...)

	pb := compile(t, src, main, false)
	pi := compile(t, src, main, true)
	mb := New(pb, Config{})
	mi := New(pi, Config{BufferStores: true, TrackPaths: true})
	gb, eb := mb.Run(args...)
	gi, ei := mi.Run(args...)
	if (ierr == nil) != (eb == nil) || (ierr == nil) != (ei == nil) {
		t.Fatalf("error divergence: interp=%v base=%v idem=%v", ierr, eb, ei)
	}
	if ierr == nil {
		if gb != uint64(want) {
			t.Fatalf("baseline result %d, interpreter %d\n%s", gb, want, codegen.Disassemble(pb))
		}
		if gi != uint64(want) {
			t.Fatalf("idempotent result %d, interpreter %d\n%s", gi, want, codegen.Disassemble(pi))
		}
	}
	return mb, mi
}

const sumSrc = `
global @data [16] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3}

func @sum(i64 %n) i64 {
e:
  %g = global @data
  br l
l:
  %i = phi [e: 0], [l: %i2]
  %acc = phi [e: 0], [l: %acc2]
  %p = add %g, %i
  %x = load %p
  %acc2 = add %acc, %x
  %i2 = add %i, 1
  %c = lt %i2, %n
  condbr %c, l, d
d:
  ret %acc2
}
`

func TestRunSimpleLoop(t *testing.T) {
	mb, mi := runBoth(t, sumSrc, "sum", 16)
	if mb.Stats.DynInstrs == 0 || mb.Stats.Cycles == 0 {
		t.Fatal("no stats accumulated")
	}
	// The idempotent binary executes MARKs; the baseline has none.
	if mb.Stats.Marks != 0 {
		t.Fatal("baseline must not execute MARKs")
	}
	if mi.Stats.Marks == 0 {
		t.Fatal("idempotent binary must execute MARKs")
	}
	if len(mi.Stats.PathLens) == 0 {
		t.Fatal("path tracking produced no samples")
	}
}

const storeSrc = `
global @out [8]

func @fill(i64 %n) i64 {
e:
  %g = global @out
  br l
l:
  %i = phi [e: 0], [l: %i2]
  %p = add %g, %i
  %sq = mul %i, %i
  store %p, %sq
  %i2 = add %i, 1
  %c = lt %i2, %n
  condbr %c, l, d
d:
  %p3 = add %g, 3
  %x = load %p3
  ret %x
}
`

func TestMemoryAgreement(t *testing.T) {
	runBoth(t, storeSrc, "fill", 8)
	// Also compare final global memory between binaries.
	pb := compile(t, storeSrc, "fill", false)
	pi := compile(t, storeSrc, "fill", true)
	mb := New(pb, Config{})
	mi := New(pi, Config{BufferStores: true})
	if _, err := mb.Run(8); err != nil {
		t.Fatal(err)
	}
	if _, err := mi.Run(8); err != nil {
		t.Fatal(err)
	}
	gb := pb.GlobalBase["out"]
	gi := pi.GlobalBase["out"]
	for i := int64(0); i < 8; i++ {
		if mb.Mem[gb+i] != mi.Mem[gi+i] {
			t.Fatalf("memory diverges at out[%d]: %d vs %d", i, mb.Mem[gb+i], mi.Mem[gi+i])
		}
		if mb.Mem[gb+i] != uint64(i*i) {
			t.Fatalf("out[%d] = %d, want %d", i, mb.Mem[gb+i], i*i)
		}
	}
}

const callSrc = `
func @sq(i64 %x) i64 {
e:
  %r = mul %x, %x
  ret %r
}

func @sumsq(i64 %n) i64 {
e:
  br l
l:
  %i = phi [e: 0], [l: %i2]
  %acc = phi [e: 0], [l: %acc2]
  %s = call @sq(%i)
  %acc2 = add %acc, %s
  %i2 = add %i, 1
  %c = lt %i2, %n
  condbr %c, l, d
d:
  ret %acc2
}
`

func TestCalls(t *testing.T) {
	runBoth(t, callSrc, "sumsq", 5) // 0+1+4+9+16 = 30
}

const recursionSrc = `
func @fact(i64 %n) i64 {
e:
  %c = le %n, 1
  condbr %c, base, rec
base:
  ret 1
rec:
  %n1 = sub %n, 1
  %r = call @fact(%n1)
  %out = mul %r, %n
  ret %out
}
`

func TestRecursion(t *testing.T) {
	runBoth(t, recursionSrc, "fact", 10)
}

const floatSrc = `
func @horner(f64 %x, i64 %n) f64 {
e:
  br l
l:
  %i = phi [e: 0], [l: %i2]
  %acc = phi.f64 [e: 1.0], [l: %acc2]
  %t = fmul %acc, %x
  %acc2 = fadd %t, 0.5
  %i2 = add %i, 1
  %c = lt %i2, %n
  condbr %c, l, d
d:
  ret %acc2
}
`

func TestFloat(t *testing.T) {
	// Result returned in f0; compare bit patterns via the interpreter.
	ref := ir.MustParse(floatSrc)
	in := ir.NewInterp(ref, 4096)
	want, err := in.Run("horner", ir.F2W(1.5), 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, idem := range []bool{false, true} {
		p := compile(t, floatSrc, "horner", idem)
		m := New(p, Config{BufferStores: idem})
		// Calling convention: float args in f0.., int args in r0.. —
		// Run only fills integer registers, so set f0 directly.
		m.Regs[16] = ir.F2W(1.5)
		if _, err := m.Run(10); err != nil {
			t.Fatal(err)
		}
		if got := m.Regs[16]; got != uint64(want) {
			t.Fatalf("idem=%v: horner = %x, want %x", idem, got, want)
		}
	}
}

const allocaSrc = `
func @median3(i64 %a, i64 %b, i64 %c) i64 {
e:
  %buf = alloca 3
  store %buf, %a
  %p1 = add %buf, 1
  store %p1, %b
  %p2 = add %buf, 2
  store %p2, %c
  br pass0
pass0:
  br l
l:
  %round = phi [pass0: 0], [next: %round2]
  br l1
l1:
  br inner
inner:
  %i = phi [l1: 0], [l2: %i2]
  %pi = add %buf, %i
  %pj = add %pi, 1
  %x = load %pi
  %y = load %pj
  %gt = gt %x, %y
  condbr %gt, swap, l2
swap:
  store %pi, %y
  store %pj, %x
  br l2
l2:
  %i2 = add %i, 1
  %c2 = lt %i2, 2
  condbr %c2, inner, next
next:
  %round2 = add %round, 1
  %c3 = lt %round2, 2
  condbr %c3, l, done
done:
  %pm = add %buf, 1
  %r = load %pm
  ret %r
}
`

func TestAllocaBubbleSort(t *testing.T) {
	// A tiny bubble sort (two fixed passes) over a stack array: exercises
	// allocas, stores, loads, nested loops with conditional swaps.
	cases := [][4]uint64{
		{3, 1, 2, 2}, {1, 2, 3, 2}, {9, 9, 1, 9}, {5, 5, 5, 5}, {7, 2, 5, 5},
	}
	for _, c := range cases {
		ref := ir.MustParse(allocaSrc)
		in := ir.NewInterp(ref, 4096)
		want, err := in.Run("median3", ir.Word(c[0]), ir.Word(c[1]), ir.Word(c[2]))
		if err != nil {
			t.Fatal(err)
		}
		if uint64(want) != c[3] {
			t.Fatalf("median3(%v) interp = %d, want %d", c[:3], want, c[3])
		}
		runBoth(t, allocaSrc, "median3", c[0], c[1], c[2])
	}
}

func TestCycleModelSanity(t *testing.T) {
	mb, mi := runBoth(t, sumSrc, "sum", 16)
	if mb.Stats.Cycles < mb.Stats.DynInstrs/2 {
		t.Fatalf("two-issue machine cannot beat IPC 2: %d cycles for %d instrs",
			mb.Stats.Cycles, mb.Stats.DynInstrs)
	}
	// The idempotent binary must not be faster than the baseline here
	// (it strictly adds MARKs and possibly spills).
	if mi.Stats.Cycles < mb.Stats.Cycles {
		t.Fatalf("idempotent (%d cycles) beat baseline (%d cycles)",
			mi.Stats.Cycles, mb.Stats.Cycles)
	}
}

func TestStepLimit(t *testing.T) {
	src := `
func @spin() void {
e:
  br e
}
`
	p := compile(t, src, "spin", false)
	m := New(p, Config{MaxSteps: 1000})
	if _, err := m.Run(); err == nil {
		t.Fatal("expected step-limit error")
	}
}

func TestInvalidAddress(t *testing.T) {
	src := `
func @bad() i64 {
e:
  %z = const 0
  %x = load %z
  ret %x
}
`
	p := compile(t, src, "bad", false)
	m := New(p, Config{})
	if _, err := m.Run(); err == nil {
		t.Fatal("expected invalid-address error")
	}
}

// TestRandomProgramsAgainstInterp generates random loop programs and
// cross-checks machine vs interpreter on both compilations.
func TestRandomProgramsAgainstInterp(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 25; trial++ {
		src := randomLoopProgram(rng)
		runBoth(t, src, "f", uint64(rng.Intn(12)))
	}
}

func randomLoopProgram(rng *rand.Rand) string {
	ops := []string{"add", "sub", "mul", "xor", "or", "and"}
	body := ""
	vals := []string{"%i", "%acc", "%x"}
	for k := 0; k < 1+rng.Intn(5); k++ {
		op := ops[rng.Intn(len(ops))]
		a := vals[rng.Intn(len(vals))]
		b := vals[rng.Intn(len(vals))]
		v := []string{"%va", "%vb", "%vc", "%vd", "%ve", "%vf"}[k]
		body += "  " + v + " = " + op + " " + a + ", " + b + "\n"
		vals = append(vals, v)
	}
	last := vals[len(vals)-1]
	return `
global @g [8] = {1, 2, 3, 4, 5, 6, 7, 8}

func @f(i64 %n) i64 {
e:
  %gb = global @g
  br l
l:
  %i = phi [e: 0], [l: %i2]
  %acc = phi [e: 0], [l: %acc2]
  %idx = rem %i, 8
  %p = add %gb, %idx
  %x = load %p
` + body + `
  %acc2 = add %acc, ` + last + `
  store %p, %acc2
  %i2 = add %i, 1
  %c = lt %i2, %n
  condbr %c, l, d
d:
  ret %acc2
}
`
}
