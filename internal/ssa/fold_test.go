package ssa

import (
	"math/rand"
	"testing"

	"idemproc/internal/ir"
)

func countOp(f *ir.Func, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == op {
				n++
			}
		}
	}
	return n
}

func TestFoldArithmetic(t *testing.T) {
	src := `
func @f(i64 %a) i64 {
e:
  %two = const 2
  %three = const 3
  %six = mul %two, %three
  %r = add %a, %six
  ret %r
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	if FoldConstants(f) == 0 {
		t.Fatal("nothing folded")
	}
	if countOp(f, ir.OpMul) != 0 {
		t.Fatal("mul not folded")
	}
	in := ir.NewInterp(m, 64)
	got, err := in.Run("f", 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 16 {
		t.Fatalf("f(10) = %d, want 16", got)
	}
}

func TestFoldIdentities(t *testing.T) {
	src := `
func @f(i64 %a) i64 {
e:
  %z = const 0
  %one = const 1
  %x1 = add %a, %z
  %x2 = mul %x1, %one
  %x3 = sub %x2, %z
  %x4 = xor %x3, %x3
  %x5 = add %x2, %x4
  ret %x5
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	FoldConstants(f)
	// Everything reduces to "ret %a" modulo a surviving constant or two.
	for _, op := range []ir.Op{ir.OpMul, ir.OpSub, ir.OpXor} {
		if countOp(f, op) != 0 {
			t.Fatalf("%v survived folding:\n%s", op, ir.FuncString(f))
		}
	}
	in := ir.NewInterp(m, 64)
	got, err := in.Run("f", 123)
	if err != nil {
		t.Fatal(err)
	}
	if got != 123 {
		t.Fatalf("f(123) = %d, want 123", got)
	}
}

func TestFoldBranches(t *testing.T) {
	src := `
func @f(i64 %a) i64 {
e:
  %c = const 1
  condbr %c, yes, no
yes:
  %r1 = add %a, 10
  ret %r1
no:
  %r2 = add %a, 20
  ret %r2
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	FoldConstants(f)
	if len(f.Blocks) != 2 {
		t.Fatalf("dead branch not pruned; %d blocks:\n%s", len(f.Blocks), ir.FuncString(f))
	}
	if countOp(f, ir.OpCondBr) != 0 {
		t.Fatal("condbr survived")
	}
	in := ir.NewInterp(m, 64)
	got, err := in.Run("f", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 11 {
		t.Fatalf("f(1) = %d, want 11", got)
	}
}

func TestFoldBranchWithPhis(t *testing.T) {
	src := `
func @f(i64 %a) i64 {
e:
  %c = const 0
  condbr %c, yes, no
yes:
  br j
no:
  br j
j:
  %r = phi [yes: 1], [no: 2]
  %s = add %r, %a
  ret %s
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	FoldConstants(f)
	if err := ir.Verify(f); err != nil {
		t.Fatalf("Verify: %v\n%s", err, ir.FuncString(f))
	}
	in := ir.NewInterp(m, 64)
	got, err := in.Run("f", 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("f(5) = %d, want 7 (no-branch: φ = 2)", got)
	}
}

func TestFoldFloatOps(t *testing.T) {
	src := `
func @f() f64 {
e:
  %a = const 2.5
  %b = const 4.0
  %m = fmul %a, %b
  %i = const 3
  %fi = i2f %i
  %r = fadd %m, %fi
  ret %r
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	FoldConstants(f)
	if countOp(f, ir.OpFMul)+countOp(f, ir.OpFAdd)+countOp(f, ir.OpIToF) != 0 {
		t.Fatalf("float ops survived:\n%s", ir.FuncString(f))
	}
	in := ir.NewInterp(m, 64)
	got, err := in.Run("f")
	if err != nil {
		t.Fatal(err)
	}
	if ir.W2F(got) != 13 {
		t.Fatalf("f() = %g, want 13", ir.W2F(got))
	}
}

func TestFoldDivisionGuards(t *testing.T) {
	// Division by a constant zero must NOT fold (the runtime trap is the
	// program's semantics).
	src := `
func @f(i64 %a) i64 {
e:
  %z = const 0
  %r = div %a, %z
  ret %r
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	FoldConstants(f)
	if countOp(f, ir.OpDiv) != 1 {
		t.Fatal("div-by-zero folded away")
	}
	in := ir.NewInterp(m, 64)
	if _, err := in.Run("f", 3); err == nil {
		t.Fatal("expected trap")
	}
}

// Property: folding preserves semantics on random expression programs.
func TestFoldRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ops := []string{"add", "sub", "mul", "and", "or", "xor"}
	for trial := 0; trial < 60; trial++ {
		src := "\nfunc @f(i64 %a, i64 %b) i64 {\ne:\n"
		vals := []string{"%a", "%b"}
		for k := 0; k < 2+rng.Intn(8); k++ {
			v := "%v" + string(rune('0'+k))
			var x, y string
			if rng.Intn(2) == 0 {
				x = vals[rng.Intn(len(vals))]
			} else {
				x = itoa(rng.Intn(20) - 10)
			}
			if rng.Intn(2) == 0 {
				y = vals[rng.Intn(len(vals))]
			} else {
				y = itoa(rng.Intn(20) - 10)
			}
			src += "  " + v + " = " + ops[rng.Intn(len(ops))] + " " + x + ", " + y + "\n"
			vals = append(vals, v)
		}
		src += "  ret " + vals[len(vals)-1] + "\n}\n"

		ref := ir.MustParse(src)
		subj := ir.MustParse(src)
		FoldConstants(subj.Func("f"))
		if err := ir.Verify(subj.Func("f")); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		for _, args := range [][2]ir.Word{{0, 0}, {5, 3}, {^ir.Word(0), 7}} {
			a := ir.NewInterp(ref, 64)
			b := ir.NewInterp(subj, 64)
			ra, ea := a.Run("f", args[0], args[1])
			rb, eb := b.Run("f", args[0], args[1])
			if (ea == nil) != (eb == nil) || (ea == nil && ra != rb) {
				t.Fatalf("trial %d diverges on %v: %d/%v vs %d/%v\n%s", trial, args, ra, ea, rb, eb, src)
			}
		}
	}
}

func itoa(i int) string {
	if i < 0 {
		return "-" + itoa(-i)
	}
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + string(rune('0'+i%10))
}
