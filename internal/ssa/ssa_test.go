package ssa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"idemproc/internal/ir"
)

// buildCountdown builds non-SSA code with the builder: a loop decrementing
// a named variable and accumulating into another.
func buildCountdown(m *ir.Module) *ir.Func {
	f := m.NewFunc("cd", ir.I64, ir.I64)
	bd := ir.NewBuilder(f)
	loop := f.NewBlock()
	body := f.NewBlock()
	done := f.NewBlock()

	n := bd.Assign("n", f.Params[0])
	acc := bd.Assign("acc", bd.ConstInt(0))
	bd.Br(loop)

	bd.SetBlock(loop)
	c := bd.Bin(ir.OpGt, n, bd.ConstInt(0))
	bd.CondBr(c, body, done)

	bd.SetBlock(body)
	bd.Assign("acc", bd.Bin(ir.OpAdd, acc, n))
	bd.Assign("n", bd.Bin(ir.OpSub, n, bd.ConstInt(1)))
	bd.Br(loop)

	bd.SetBlock(done)
	bd.Ret(acc)
	return f
}

func TestBuildInsertsPhis(t *testing.T) {
	m := ir.NewModule()
	f := buildCountdown(m)
	Build(f)

	var loop *ir.Block
	for _, b := range f.Blocks {
		if len(b.Preds) == 2 {
			loop = b
		}
	}
	if loop == nil {
		t.Fatal("no join block found")
	}
	if got := len(loop.Phis()); got != 2 {
		t.Fatalf("loop header has %d φs, want 2 (n and acc)\n%s", got, ir.FuncString(f))
	}
	if err := VerifySSA(f); err != nil {
		t.Fatalf("VerifySSA: %v", err)
	}
}

func TestBuildThenInterp(t *testing.T) {
	m := ir.NewModule()
	f := buildCountdown(m)
	Build(f)
	in := ir.NewInterp(m, 64)
	got, err := in.Run("cd", 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 55 {
		t.Fatalf("cd(10) = %d, want 55", got)
	}
}

func TestBuildIdempotentOnSSA(t *testing.T) {
	// Running Build twice must be a no-op the second time.
	m := ir.NewModule()
	f := buildCountdown(m)
	Build(f)
	before := ir.FuncString(f)
	Build(f)
	if after := ir.FuncString(f); after != before {
		t.Fatalf("Build not idempotent:\nbefore:\n%s\nafter:\n%s", before, after)
	}
}

func TestBuildDiamondSelect(t *testing.T) {
	m := ir.NewModule()
	f := m.NewFunc("sel", ir.I64, ir.I64, ir.I64, ir.I64)
	bd := ir.NewBuilder(f)
	thenB := f.NewBlock()
	elseB := f.NewBlock()
	join := f.NewBlock()

	rInit := bd.Assign("r", bd.ConstInt(0))
	bd.CondBr(f.Params[0], thenB, elseB)
	bd.SetBlock(thenB)
	bd.Assign("r", f.Params[1])
	bd.Br(join)
	bd.SetBlock(elseB)
	bd.Assign("r", f.Params[2])
	bd.Br(join)
	bd.SetBlock(join)
	bd.Ret(rInit) // reads variable r: SSA Build rewires to the φ

	Build(f)
	if err := VerifySSA(f); err != nil {
		t.Fatal(err)
	}
	check := func(c, a, b, want ir.Word) {
		in := ir.NewInterp(m, 64)
		got, err := in.Run("sel", c, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("sel(%d,%d,%d) = %d, want %d", c, a, b, got, want)
		}
	}
	check(1, 42, 7, 42)
	check(0, 42, 7, 7)
}

func TestDestructRemovesPhis(t *testing.T) {
	m := ir.NewModule()
	f := buildCountdown(m)
	Build(f)
	Destruct(f)
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == ir.OpPhi {
				t.Fatalf("φ survived Destruct: %s", v.LongString())
			}
		}
	}
}

func TestSplitCriticalEdges(t *testing.T) {
	src := `
func @f(i64 %a) i64 {
e:
  condbr %a, l, j
l:
  %x = phi [e: 1], [l: %y]
  %y = add %x, 1
  condbr %y, l, j
j:
  %r = phi [e: 0], [l: %y]
  ret %r
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	// Edges e->j, l->j, l->l (wait: l has 2 succs, l has 2 preds: e->l
	// not critical since e has 2 succs and l has 2 preds -> critical!).
	SplitCriticalEdges(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	for _, b := range f.Blocks {
		if len(b.Succs) < 2 {
			continue
		}
		for _, s := range b.Succs {
			if len(s.Preds) >= 2 {
				t.Fatalf("critical edge %s->%s survived", b.Name, s.Name)
			}
		}
	}
}

// TestDestructSwap exercises the classic φ-swap problem.
func TestDestructSwap(t *testing.T) {
	src := `
func @swap(i64 %n) i64 {
e:
  br l
l:
  %a = phi [e: 1], [b: %b]
  %b = phi [e: 2], [b: %a]
  %i = phi [e: 0], [b: %i2]
  %c = lt %i, %n
  condbr %c, b, d
b:
  %i2 = add %i, 1
  br l
d:
  %r = mul %a, 10
  %r2 = add %r, %b
  ret %r2
}
`
	// After k iterations: (a,b) = (1,2) if k even else (2,1).
	m := ir.MustParse(src)
	f := m.Func("swap")
	Destruct(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	// The interpreter can't run non-SSA output, but we can at least
	// check that each pred of the old φ block got two tmp copies.
	var latch *ir.Block
	for _, b := range f.Blocks {
		if b.Name == "b" {
			latch = b
		}
	}
	// The latch's successor path to l should contain copies.
	copies := 0
	for _, v := range latch.Instrs {
		if v.Op == ir.OpCopy {
			copies++
		}
	}
	// With critical edges split, copies might be in a mid block instead.
	if copies == 0 {
		for _, s := range latch.Succs {
			for _, v := range s.Instrs {
				if v.Op == ir.OpCopy {
					copies++
				}
			}
		}
	}
	if copies < 3 {
		t.Fatalf("expected ≥3 φ copies on the back edge path, found %d\n%s", copies, ir.FuncString(f))
	}
}

func TestPropagateCopies(t *testing.T) {
	src := `
func @f(i64 %a) i64 {
e:
  %b = copy %a
  %c = copy %b
  %d = add %c, 1
  ret %d
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	PropagateCopies(f)
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == ir.OpCopy {
				t.Fatalf("copy survived: %s", v.LongString())
			}
			for _, a := range v.Args {
				if a.Op == ir.OpCopy {
					t.Fatalf("use of copy survived in %s", v.LongString())
				}
			}
		}
	}
	in := ir.NewInterp(m, 64)
	got, err := in.Run("f", 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("f(5) = %d, want 6", got)
	}
}

func TestEliminateDeadValues(t *testing.T) {
	src := `
func @f(i64 %a) i64 {
e:
  %dead1 = add %a, 1
  %dead2 = mul %dead1, 2
  %live = add %a, 3
  ret %live
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	EliminateDeadValues(f)
	count := 0
	for _, v := range f.Entry().Instrs {
		if v.Op == ir.OpAdd || v.Op == ir.OpMul {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("dead code not removed; %d arith ops remain", count)
	}
}

// randomStraightLineProgram builds a random non-SSA program over k named
// variables with random assignments, branches and a loop, then checks SSA
// construction preserves semantics (differential interpretation is not
// possible pre-SSA, so instead we check VerifySSA plus determinism).
func TestBuildRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		m := ir.NewModule()
		f := m.NewFunc("r", ir.I64, ir.I64)
		bd := ir.NewBuilder(f)
		nVars := 2 + rng.Intn(3)
		varNames := []string{"v0", "v1", "v2", "v3", "v4"}[:nVars]
		for _, vn := range varNames {
			bd.Assign(vn, bd.ConstInt(int64(rng.Intn(10))))
		}
		nBlocks := 2 + rng.Intn(4)
		blocks := make([]*ir.Block, nBlocks)
		for i := range blocks {
			blocks[i] = f.NewBlock()
		}
		bd.Br(blocks[0])
		for i, b := range blocks {
			bd.SetBlock(b)
			for k := 0; k < 1+rng.Intn(3); k++ {
				vn := varNames[rng.Intn(nVars)]
				cur := lastDef(f, vn)
				bd.Assign(vn, bd.Bin(ir.OpAdd, cur, bd.ConstInt(1)))
			}
			if i == nBlocks-1 {
				bd.Ret(lastDef(f, varNames[0]))
			} else if rng.Intn(2) == 0 {
				bd.CondBr(f.Params[0], blocks[i+1], blocks[rng.Intn(nBlocks-i-1)+i+1])
			} else {
				bd.Br(blocks[i+1])
			}
		}
		f.RemoveUnreachable()
		if err := ir.Verify(f); err != nil {
			t.Fatalf("trial %d pre-SSA verify: %v", trial, err)
		}
		Build(f)
		if err := VerifySSA(f); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, ir.FuncString(f))
		}
	}
}

func lastDef(f *ir.Func, name string) *ir.Value {
	var last *ir.Value
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Name == name {
				last = v
			}
		}
	}
	return last
}

// Property: SSA construction preserves countdown semantics for arbitrary
// small inputs.
func TestQuickCountdownSemantics(t *testing.T) {
	prop := func(n uint8) bool {
		m := ir.NewModule()
		f := buildCountdown(m)
		Build(f)
		in := ir.NewInterp(m, 64)
		got, err := in.Run("cd", ir.Word(n))
		if err != nil {
			return false
		}
		want := ir.Word(uint64(n) * (uint64(n) + 1) / 2)
		return got == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
