// Package ssa converts ir functions into and out of static single
// assignment form.
//
// The paper's region construction requires SSA (§4.1): "the conversion of
// all pseudoregister assignments to SSA form ... effectively eliminates all
// artificial clobber antidependences" except the self-dependent ones that
// manifest as φ-nodes at loop headers. Frontends emit non-SSA code in which
// a pseudoregister name may be assigned repeatedly; Build renames those
// apart, inserting φ-nodes at iterated dominance frontiers (Cytron et al.).
// Destruct lowers φ-nodes back to copies ahead of code generation.
package ssa

import (
	"fmt"
	"sort"

	"idemproc/internal/cfg"
	"idemproc/internal/ir"
)

// Build converts f to SSA form in place. Names assigned more than once are
// treated as variables: φ-nodes are placed at the iterated dominance
// frontier of their definition blocks and every definition gets a fresh
// name. Uses reachable by no definition read an implicit zero constant
// (the frontend guarantees this never happens on meaningful paths).
func Build(f *ir.Func) {
	f.RemoveUnreachable()
	info := cfg.Compute(f)

	// Group definitions by name; only multiply-defined names need the
	// treatment. origName snapshots names before renaming so that uses
	// processed later in the dominator walk still identify their variable
	// after its definitions have been renamed.
	defs := map[string][]*ir.Value{}
	origName := map[*ir.Value]string{}
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Defines() {
				defs[v.Name] = append(defs[v.Name], v)
				origName[v] = v.Name
			}
		}
	}
	vars := map[string]bool{}
	for name, ds := range defs {
		if len(ds) > 1 {
			vars[name] = true
		}
	}
	if len(vars) == 0 {
		return
	}

	varType := map[string]ir.Type{}
	for name := range vars {
		varType[name] = defs[name][0].Type
	}

	// Insert φ-nodes at the iterated dominance frontier of each variable's
	// definition blocks. Variables are processed in sorted name order: map
	// iteration order would make the φ order within a block — and with it
	// value numbering, register assignment and the final instruction
	// stream — vary from build to build, breaking the reproducibility of
	// anything keyed on dynamic instruction positions (fault-injection
	// campaigns in particular).
	names := make([]string, 0, len(vars))
	for name := range vars {
		names = append(names, name)
	}
	sort.Strings(names)
	phiGroup := map[*ir.Value]string{} // inserted φ → variable name
	for _, name := range names {
		defBlocks := map[*ir.Block]bool{}
		for _, d := range defs[name] {
			defBlocks[d.Block] = true
		}
		work := make([]*ir.Block, 0, len(defBlocks))
		for _, b := range f.Blocks { // deterministic order
			if defBlocks[b] {
				work = append(work, b)
			}
		}
		hasPhi := map[*ir.Block]bool{}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, d := range info.Frontier[b.Index] {
				if hasPhi[d] {
					continue
				}
				hasPhi[d] = true
				phi := f.NewValue(ir.OpPhi, varType[name], make([]*ir.Value, len(d.Preds))...)
				phi.Block = d
				// φs go at the head, after any params.
				at := 0
				for at < len(d.Instrs) && (d.Instrs[at].Op == ir.OpParam || d.Instrs[at].Op == ir.OpPhi) {
					at++
				}
				d.Instrs = append(d.Instrs, nil)
				copy(d.Instrs[at+1:], d.Instrs[at:])
				d.Instrs[at] = phi
				phiGroup[phi] = name
				if !defBlocks[d] {
					defBlocks[d] = true
					work = append(work, d)
				}
			}
		}
	}

	// Rename via dominator-tree walk with per-variable stacks.
	stacks := map[string][]*ir.Value{}
	// zeroFor lazily materializes an entry-block zero for paths where a
	// variable is read before any definition.
	zeros := map[ir.Type]*ir.Value{}
	zeroFor := func(t ir.Type) *ir.Value {
		if z, ok := zeros[t]; ok {
			return z
		}
		z := f.NewValue(ir.OpConst, t)
		entry := f.Entry()
		at := 0
		for at < len(entry.Instrs) && entry.Instrs[at].Op == ir.OpParam {
			at++
		}
		entry.Instrs = append(entry.Instrs, nil)
		copy(entry.Instrs[at+1:], entry.Instrs[at:])
		entry.Instrs[at] = z
		z.Block = entry
		zeros[t] = z
		return z
	}
	top := func(name string, t ir.Type) *ir.Value {
		s := stacks[name]
		if len(s) == 0 {
			return zeroFor(t)
		}
		return s[len(s)-1]
	}

	var rename func(b *ir.Block)
	rename = func(b *ir.Block) {
		var pushed []string
		for _, v := range b.Instrs {
			if g, isPhi := phiGroup[v]; isPhi {
				v.Name = f.FreshName()
				stacks[g] = append(stacks[g], v)
				pushed = append(pushed, g)
				continue
			}
			if v.Op != ir.OpPhi { // pre-existing φs keep their args
				for i, a := range v.Args {
					if a != nil && vars[origName[a]] {
						v.Args[i] = top(origName[a], a.Type)
					}
				}
			}
			if v.Defines() && vars[origName[v]] {
				g := origName[v]
				v.Name = f.FreshName()
				stacks[g] = append(stacks[g], v)
				pushed = append(pushed, g)
			}
		}
		for _, s := range b.Succs {
			for pi, p := range s.Preds {
				if p != b {
					continue // a block may be a duplicate predecessor
				}
				for _, phi := range s.Phis() {
					g, ours := phiGroup[phi]
					if !ours {
						continue
					}
					phi.Args[pi] = top(g, phi.Type)
				}
			}
		}
		for _, c := range info.DomChildren[b.Index] {
			rename(c)
		}
		for _, g := range pushed {
			stacks[g] = stacks[g][:len(stacks[g])-1]
		}
	}
	rename(f.Entry())

	if err := ir.Verify(f); err != nil {
		panic(fmt.Sprintf("ssa.Build produced invalid IR: %v", err))
	}
	if err := VerifySSA(f); err != nil {
		panic(fmt.Sprintf("ssa.Build produced invalid SSA: %v", err))
	}
}

// VerifySSA checks SSA invariants: unique names, definitions dominate
// uses, and φ arguments' definitions dominate the corresponding
// predecessor's exit.
func VerifySSA(f *ir.Func) error {
	info := cfg.Compute(f)
	seen := map[string]*ir.Value{}
	order := map[*ir.Value]int{}
	for _, b := range f.Blocks {
		for i, v := range b.Instrs {
			order[v] = i
			if !v.Defines() {
				continue
			}
			if prev, dup := seen[v.Name]; dup {
				return fmt.Errorf("ssa: name %%%s defined by both %s and %s", v.Name, prev.LongString(), v.LongString())
			}
			seen[v.Name] = v
		}
	}
	domValue := func(def, use *ir.Value) bool {
		if def.Block == use.Block {
			return order[def] < order[use]
		}
		return info.StrictlyDominates(def.Block, use.Block)
	}
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == ir.OpPhi {
				for i, a := range v.Args {
					pred := b.Preds[i]
					if a.Block != pred && !info.Dominates(a.Block, pred) {
						return fmt.Errorf("ssa: φ %s arg %s does not dominate pred %s", v.LongString(), a, pred.Name)
					}
				}
				continue
			}
			for _, a := range v.Args {
				if !domValue(a, v) {
					return fmt.Errorf("ssa: use of %s in %s not dominated by its definition", a, v.LongString())
				}
			}
		}
	}
	return nil
}

// PropagateCopies replaces every use of "v = copy x" with x and removes v.
// Valid only in SSA form.
func PropagateCopies(f *ir.Func) {
	// Resolve chains first.
	resolve := map[*ir.Value]*ir.Value{}
	var root func(v *ir.Value) *ir.Value
	root = func(v *ir.Value) *ir.Value {
		if v.Op != ir.OpCopy {
			return v
		}
		if r, ok := resolve[v]; ok {
			return r
		}
		r := root(v.Args[0])
		resolve[v] = r
		return r
	}
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			for i, a := range v.Args {
				v.Args[i] = root(a)
			}
		}
	}
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, v := range b.Instrs {
			if v.Op == ir.OpCopy {
				continue
			}
			kept = append(kept, v)
		}
		b.Instrs = kept
	}
}

// EliminateDeadValues removes instructions whose results are unused and
// that have no side effects, iterating to a fixed point. Valid in SSA.
func EliminateDeadValues(f *ir.Func) {
	for {
		used := map[*ir.Value]bool{}
		for _, b := range f.Blocks {
			for _, v := range b.Instrs {
				for _, a := range v.Args {
					used[a] = true
				}
			}
		}
		removed := false
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, v := range b.Instrs {
				if v.Defines() && !used[v] && !v.Op.HasSideEffects() && v.Op != ir.OpParam && v.Op != ir.OpAlloca {
					removed = true
					continue
				}
				kept = append(kept, v)
			}
			b.Instrs = kept
		}
		if !removed {
			return
		}
	}
}

// Destruct converts f out of SSA form: critical edges are split and each
// φ-node is replaced by copies — "tmp = arg" at the end of each
// predecessor and "phi = tmp" at the φ's position. The two-stage copy via
// a single shared temporary is immune to the lost-copy and swap problems.
// The result is non-SSA (tmp has multiple definitions sharing one name),
// which code generation accepts (it allocates storage per name).
func Destruct(f *ir.Func) {
	SplitCriticalEdges(f)
	for _, b := range f.Blocks {
		phis := b.Phis()
		if len(phis) == 0 {
			continue
		}
		for _, phi := range phis {
			tmpName := f.FreshName()
			for i, a := range phi.Args {
				pred := b.Preds[i]
				cp := f.NewValue(ir.OpCopy, phi.Type, a)
				cp.Name = tmpName
				pred.InsertBefore(cp, pred.Terminator())
			}
			// Rewrite the φ itself into "phi = copy tmp". Any definition
			// of tmp reaching b has the right value; codegen allocates
			// storage per name, so the arg pointer only needs to carry
			// the name and type — point it at the first copy.
			phi.Op = ir.OpCopy
			phi.Args = []*ir.Value{firstDefOf(f, tmpName)}
		}
	}
	if err := ir.Verify(f); err != nil {
		panic(fmt.Sprintf("ssa.Destruct produced invalid IR: %v", err))
	}
}

func firstDefOf(f *ir.Func, name string) *ir.Value {
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Name == name {
				return v
			}
		}
	}
	panic("ssa: no definition of " + name)
}

// SplitCriticalEdges inserts an empty block on every edge whose source has
// multiple successors and whose destination has multiple predecessors.
func SplitCriticalEdges(f *ir.Func) {
	// Collect first: we mutate the block list.
	type edge struct{ from, to *ir.Block }
	var critical []edge
	for _, b := range f.Blocks {
		if len(b.Succs) < 2 {
			continue
		}
		for _, s := range b.Succs {
			if len(s.Preds) >= 2 {
				critical = append(critical, edge{b, s})
			}
		}
	}
	for _, e := range critical {
		mid := f.NewBlock()
		br := f.NewValue(ir.OpBr, ir.Void)
		br.Block = mid
		mid.Instrs = []*ir.Value{br}
		e.from.ReplaceSucc(e.to, mid)
		mid.Preds = []*ir.Block{e.from}
		mid.Succs = []*ir.Block{e.to}
		e.to.ReplacePred(e.from, mid)
	}
	f.Renumber()
}
