package ssa

import "idemproc/internal/ir"

// PromoteAllocas rewrites single-word, non-escaping stack slots into
// pseudoregister assignments (the LLVM mem2reg equivalent). A slot is
// promotable when every use of its address is directly the address operand
// of a load or store. Loads become copies of the slot's current value and
// stores become named reassignments; a subsequent Build renames them into
// SSA, which is exactly the §4.1 transformation that turns would-be memory
// antidependences on scalar locals into artificial (register) ones that
// SSA then eliminates.
//
// PromoteAllocas must run before Build. It returns the number of slots
// promoted.
func PromoteAllocas(f *ir.Func) int {
	// Find promotable allocas.
	addrUses := map[*ir.Value]int{}  // alloca -> #uses as load/store address
	totalUses := map[*ir.Value]int{} // alloca -> #uses anywhere
	var allocas []*ir.Value
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == ir.OpAlloca && v.ConstInt == 1 {
				allocas = append(allocas, v)
			}
			for i, a := range v.Args {
				if a.Op != ir.OpAlloca {
					continue
				}
				totalUses[a]++
				if (v.Op == ir.OpLoad && i == 0) || (v.Op == ir.OpStore && i == 0) {
					addrUses[a]++
				}
			}
		}
	}
	var promote []*ir.Value
	for _, a := range allocas {
		if addrUses[a] == totalUses[a] {
			promote = append(promote, a)
		}
	}
	if len(promote) == 0 {
		return 0
	}
	promoteSet := map[*ir.Value]bool{}
	varName := map[*ir.Value]string{}
	slotType := map[*ir.Value]ir.Type{}
	for _, a := range promote {
		promoteSet[a] = true
		varName[a] = f.FreshName()
		slotType[a] = ir.I64
	}
	// Infer the slot's element type from its first typed access.
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			switch v.Op {
			case ir.OpLoad:
				if promoteSet[v.Args[0]] {
					slotType[v.Args[0]] = v.Type
				}
			case ir.OpStore:
				if promoteSet[v.Args[0]] {
					slotType[v.Args[0]] = v.Args[1].Type
				}
			}
		}
	}

	// Rewrite. Every promoted slot gets an initializing zero in the entry
	// block so a load on a path without stores reads a defined value.
	entry := f.Entry()
	for _, a := range promote {
		z := f.NewValue(ir.OpConst, slotType[a])
		z.Name = varName[a]
		// Replace the alloca instruction itself with the initializer.
		for i, v := range entry.Instrs {
			if v == a {
				entry.Instrs[i] = z
				z.Block = entry
				break
			}
		}
	}
	for _, b := range f.Blocks {
		for i, v := range b.Instrs {
			switch v.Op {
			case ir.OpLoad:
				if a := v.Args[0]; promoteSet[a] {
					// Load becomes a read of the variable: a copy whose
					// argument names the variable (Build keys on Name).
					v.Op = ir.OpCopy
					v.Type = slotType[a]
					v.Args = []*ir.Value{anyDefOf(f, varName[a])}
				}
			case ir.OpStore:
				if a := v.Args[0]; promoteSet[a] {
					// Store becomes a named reassignment.
					val := v.Args[1]
					v.Op = ir.OpCopy
					v.Type = val.Type
					v.Name = varName[a]
					v.Args = []*ir.Value{val}
					b.Instrs[i] = v
				}
			}
		}
	}
	return len(promote)
}

func anyDefOf(f *ir.Func, name string) *ir.Value {
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Name == name {
				return v
			}
		}
	}
	panic("ssa: no definition of " + name)
}
