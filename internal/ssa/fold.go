package ssa

import (
	"math"

	"idemproc/internal/ir"
)

// FoldConstants performs constant folding and algebraic simplification on
// an SSA-form function: constant binary/unary operations are evaluated,
// identities (x+0, x*1, x&x, …) are reduced to copies, and conditional
// branches on constants become unconditional (pruning the dead edge and
// any unreachable blocks). It returns the number of rewritten values.
//
// Both compilation pipelines run it, so the conventional baseline really
// is an "optimizing compiler" flow and the idempotence analysis sees the
// same cleaned-up code an LLVM -O pipeline would produce.
func FoldConstants(f *ir.Func) int {
	changed := 0
	for {
		n := foldOnce(f)
		changed += n
		if n == 0 {
			break
		}
		PropagateCopies(f)
		EliminateDeadValues(f)
	}
	return changed
}

func foldOnce(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if rewriteValue(f, v) {
				n++
			}
		}
	}
	// Branch folding second: it edits the CFG.
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil || t.Op != ir.OpCondBr {
			continue
		}
		c := t.Args[0]
		if c.Op != ir.OpConst {
			continue
		}
		// Rewrite into an unconditional branch to the live successor.
		live, dead := b.Succs[0], b.Succs[1]
		if c.ConstInt == 0 {
			live, dead = dead, live
		}
		t.Op = ir.OpBr
		t.Args = nil
		b.Succs = []*ir.Block{live}
		// Drop the dead edge's pred entry (one entry even if both
		// targets were the same block).
		dead.RemovePred(b)
		n++
	}
	if n > 0 {
		f.RemoveUnreachable()
	}
	return n
}

// rewriteValue folds one instruction in place; reports whether it changed.
func rewriteValue(f *ir.Func, v *ir.Value) bool {
	constInt := func(a *ir.Value) (int64, bool) {
		if a.Op == ir.OpConst && a.Type == ir.I64 {
			return a.ConstInt, true
		}
		return 0, false
	}
	constFloat := func(a *ir.Value) (float64, bool) {
		if a.Op == ir.OpConst && a.Type == ir.F64 {
			return a.ConstFloat, true
		}
		return 0, false
	}
	toConstInt := func(c int64) {
		v.Op = ir.OpConst
		v.Args = nil
		v.ConstInt = c
	}
	toConstFloat := func(c float64) {
		v.Op = ir.OpConst
		v.Args = nil
		v.ConstFloat = c
	}
	toCopy := func(src *ir.Value) {
		v.Op = ir.OpCopy
		v.Args = []*ir.Value{src}
	}
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}

	switch v.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
		ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		x, xok := constInt(v.Args[0])
		y, yok := constInt(v.Args[1])
		if xok && yok {
			var r int64
			switch v.Op {
			case ir.OpAdd:
				r = x + y
			case ir.OpSub:
				r = x - y
			case ir.OpMul:
				r = x * y
			case ir.OpAnd:
				r = x & y
			case ir.OpOr:
				r = x | y
			case ir.OpXor:
				r = x ^ y
			case ir.OpShl:
				r = x << (uint64(y) & 63)
			case ir.OpShr:
				r = x >> (uint64(y) & 63)
			case ir.OpEq:
				r = b2i(x == y)
			case ir.OpNe:
				r = b2i(x != y)
			case ir.OpLt:
				r = b2i(x < y)
			case ir.OpLe:
				r = b2i(x <= y)
			case ir.OpGt:
				r = b2i(x > y)
			case ir.OpGe:
				r = b2i(x >= y)
			}
			toConstInt(r)
			return true
		}
		// Identities.
		switch v.Op {
		case ir.OpAdd:
			if yok && y == 0 {
				toCopy(v.Args[0])
				return true
			}
			if xok && x == 0 {
				toCopy(v.Args[1])
				return true
			}
		case ir.OpSub:
			if yok && y == 0 {
				toCopy(v.Args[0])
				return true
			}
			if v.Args[0] == v.Args[1] {
				toConstInt(0)
				return true
			}
		case ir.OpMul:
			if (yok && y == 1) || (xok && x == 1) {
				src := v.Args[0]
				if xok {
					src = v.Args[1]
				}
				toCopy(src)
				return true
			}
			if (yok && y == 0) || (xok && x == 0) {
				toConstInt(0)
				return true
			}
		case ir.OpAnd:
			if v.Args[0] == v.Args[1] {
				toCopy(v.Args[0])
				return true
			}
			if (yok && y == 0) || (xok && x == 0) {
				toConstInt(0)
				return true
			}
		case ir.OpOr:
			if v.Args[0] == v.Args[1] || (yok && y == 0) {
				toCopy(v.Args[0])
				return true
			}
			if xok && x == 0 {
				toCopy(v.Args[1])
				return true
			}
		case ir.OpXor:
			if v.Args[0] == v.Args[1] {
				toConstInt(0)
				return true
			}
		case ir.OpShl, ir.OpShr:
			if yok && y == 0 {
				toCopy(v.Args[0])
				return true
			}
		}

	case ir.OpDiv, ir.OpRem:
		x, xok := constInt(v.Args[0])
		y, yok := constInt(v.Args[1])
		if xok && yok && y != 0 { // fold only well-defined divisions
			if v.Op == ir.OpDiv {
				toConstInt(x / y)
			} else {
				toConstInt(x % y)
			}
			return true
		}
		if yok && y == 1 {
			if v.Op == ir.OpDiv {
				toCopy(v.Args[0])
			} else {
				toConstInt(0)
			}
			return true
		}

	case ir.OpNeg:
		if x, ok := constInt(v.Args[0]); ok {
			toConstInt(-x)
			return true
		}
	case ir.OpNot:
		if x, ok := constInt(v.Args[0]); ok {
			toConstInt(^x)
			return true
		}

	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv,
		ir.OpFEq, ir.OpFNe, ir.OpFLt, ir.OpFLe, ir.OpFGt, ir.OpFGe:
		x, xok := constFloat(v.Args[0])
		y, yok := constFloat(v.Args[1])
		if !xok || !yok {
			return false
		}
		switch v.Op {
		case ir.OpFAdd:
			toConstFloat(x + y)
		case ir.OpFSub:
			toConstFloat(x - y)
		case ir.OpFMul:
			toConstFloat(x * y)
		case ir.OpFDiv:
			toConstFloat(x / y)
		case ir.OpFEq:
			toConstInt(b2i(x == y))
		case ir.OpFNe:
			toConstInt(b2i(x != y))
		case ir.OpFLt:
			toConstInt(b2i(x < y))
		case ir.OpFLe:
			toConstInt(b2i(x <= y))
		case ir.OpFGt:
			toConstInt(b2i(x > y))
		case ir.OpFGe:
			toConstInt(b2i(x >= y))
		}
		return true

	case ir.OpFNeg:
		if x, ok := constFloat(v.Args[0]); ok {
			toConstFloat(-x)
			return true
		}
	case ir.OpIToF:
		if x, ok := constInt(v.Args[0]); ok {
			toConstFloat(float64(x))
			return true
		}
	case ir.OpFToI:
		if x, ok := constFloat(v.Args[0]); ok && !math.IsNaN(x) && !math.IsInf(x, 0) {
			toConstInt(int64(x))
			return true
		}

	case ir.OpPhi:
		// Fold only single-predecessor φs (left behind by branch
		// folding); every φ of such a block folds at once, so the
		// φs-at-head invariant survives.
		if len(v.Block.Preds) == 1 {
			toCopy(v.Args[0])
			return true
		}
	}
	return false
}
