package experiments

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"idemproc/internal/workloads"
)

// shrink returns w with its first argument divided by d, to keep
// campaign tests fast on small machines.
func shrink(w workloads.Workload, d uint64) workloads.Workload {
	args := append([]uint64(nil), w.Args...)
	if len(args) > 0 && args[0] > d {
		args[0] /= d
	}
	w.Args = args
	return w
}

func TestResilienceTable(t *testing.T) {
	ws := []workloads.Workload{shrink(subset(t, "blackscholes")[0], 4)}
	res, err := Resilience(context.Background(), ws, 24, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (one per scheme)", len(res.Rows))
	}
	var dmr, idem *ResilienceRow
	for i := range res.Rows {
		r := &res.Rows[i]
		if r.Runs != 24 {
			t.Fatalf("%s: runs = %d", r.Scheme, r.Runs)
		}
		switch r.Scheme {
		case "DMR":
			dmr = r
		case "IDEMPOTENCE":
			idem = r
		}
	}
	if dmr == nil || idem == nil {
		t.Fatalf("missing DMR or IDEMPOTENCE row: %+v", res.Rows)
	}
	// DMR is detection-only: it must never recover anything.
	if dmr.RecoveryRate != 0 {
		t.Fatalf("DMR recovery rate = %f, want 0", dmr.RecoveryRate)
	}
	// Idempotence must not silently corrupt and must recover what it
	// detects (§6.3 of the paper).
	if idem.SDCRate > dmr.SDCRate {
		t.Fatalf("idempotence SDC rate %f exceeds DMR's %f", idem.SDCRate, dmr.SDCRate)
	}
	if idem.RecoveryRate < idem.DetectionRate {
		t.Fatalf("idempotence recovered %f < detected %f", idem.RecoveryRate, idem.DetectionRate)
	}
	if idem.Livelocks != 0 {
		t.Fatalf("idempotence campaign livelocked %d times", idem.Livelocks)
	}
	out := res.Format()
	for _, want := range []string{"IDEMPOTENCE", "CHECKPOINT-AND-LOG", "MEAN"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format lacks %q:\n%s", want, out)
		}
	}

	// The table must be reproducible from its seed.
	again, err := Resilience(context.Background(), ws, 24, 99)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(res)
	b, _ := json.Marshal(again)
	if string(a) != string(b) {
		t.Fatal("resilience table not reproducible from seed")
	}
}

func TestRowFromCampaignFile(t *testing.T) {
	// Round-trip: a campaign JSON aggregate written externally (e.g. by
	// idemsim -json) folds into the same row as an in-process run.
	ws := []workloads.Workload{shrink(subset(t, "blackscholes")[0], 4)}
	res, err := Resilience(context.Background(), ws, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the idempotence row from serialized campaign fields.
	for _, row := range res.Rows {
		if row.Scheme != "IDEMPOTENCE" {
			continue
		}
		data, err := json.Marshal(map[string]any{
			"scheme": row.Scheme, "runs": row.Runs, "landed": row.Landed,
			"sdc_rate": row.SDCRate, "detection_rate": row.DetectionRate,
			"recovery_rate":       row.RecoveryRate,
			"mean_detect_latency": row.MeanDetectLatency,
			"inflation_p90":       row.InflationP90,
			"livelocks":           row.Livelocks, "crashes": row.Crashes,
		})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "bs.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := RowFromCampaignFile("blackscholes", path)
		if err != nil {
			t.Fatal(err)
		}
		want := row
		if got != want {
			t.Fatalf("file row mismatch:\n got %+v\nwant %+v", got, want)
		}
		return
	}
	t.Fatal("no IDEMPOTENCE row")
}
