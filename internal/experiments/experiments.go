// Package experiments regenerates the paper's evaluation: one driver per
// table and figure, shared by cmd/idembench and the repository-root
// benchmarks. Each driver runs the workload suite through the relevant
// pipeline(s) and returns structured rows plus the aggregate the paper
// reports (geometric means, per-suite splits); Format* helpers render the
// same series the paper plots.
//
// Drivers are methods on Engine (see engine.go): (workload × config)
// build/run units fan out over a bounded worker pool, compiles are
// memoized in a shared content-keyed cache, and aggregation happens in
// deterministic index order so tables are byte-identical for any worker
// count. The package-level functions of the same names run on a serial
// engine.
package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/fault"
	"idemproc/internal/limit"
	"idemproc/internal/machine"
	"idemproc/internal/workloads"
)

// geomeanEps is the clamp floor for degenerate geomean inputs.
const geomeanEps = 1e-9

// Geomean returns the geometric mean of strictly positive values; zeroes
// are clamped to a small epsilon so a single degenerate row cannot zero
// the aggregate. Use GeomeanClamped when the caller must know whether
// clamping occurred (a clamp can mask a broken workload as a tiny
// aggregate shift, so the drivers count and surface clamps).
func Geomean(xs []float64) float64 {
	g, _ := GeomeanClamped(xs)
	return g
}

// GeomeanClamped is Geomean, also reporting how many inputs were clamped
// to the epsilon floor.
func GeomeanClamped(xs []float64) (float64, int) {
	if len(xs) == 0 {
		return 0, 0
	}
	s := 0.0
	clamped := 0
	for _, x := range xs {
		if x < geomeanEps {
			x = geomeanEps
			clamped++
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), clamped
}

// clampNote renders the degenerate-row warning appended to formatted
// tables whose geomeans clamped inputs ("" when none did).
func clampNote(clamped int) string {
	if clamped == 0 {
		return ""
	}
	return fmt.Sprintf("WARNING: %d degenerate geomean input(s) clamped to %g — inspect the rows above\n", clamped, geomeanEps)
}

// run executes a program for workload w and returns the machine. All
// experiment timing uses the gem5-like L1 cache configuration.
func run(p *codegen.Program, w workloads.Workload, cfg machine.Config) (*machine.Machine, error) {
	if cfg.Cache.Sets == 0 {
		cfg.Cache = machine.DefaultCache()
	}
	m := machine.New(p, cfg)
	if _, err := m.Run(w.Args...); err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	return m, nil
}

// defaultCore is the paper's configuration.
func defaultCore() core.Options { return core.DefaultOptions() }

// ---------------------------------------------------------------------
// Figure 4: the limit study.

// Fig4Row is one benchmark's average dynamic idempotent path length under
// the three clobber categories.
type Fig4Row struct {
	Name  string
	Suite workloads.Suite
	Avg   [3]float64
}

// Fig4Result is the full limit study.
type Fig4Result struct {
	Rows []Fig4Row
	// Geomean per category, across all workloads.
	Geomean [3]float64
	// Clamped counts degenerate rows clamped in the geomeans.
	Clamped int
}

// Fig4 runs the limit study on a serial engine.
func Fig4(ws []workloads.Workload) (*Fig4Result, error) { return defaultEngine().Fig4(ws) }

// Fig4 runs the limit study over the given workloads (conventional
// binaries, dynamic clobber tracking).
func (e *Engine) Fig4(ws []workloads.Workload) (*Fig4Result, error) {
	rows := make([]Fig4Row, len(ws))
	err := e.ForEach(context.Background(), len(ws), func(ctx context.Context, i int) error {
		w := ws[i]
		p, _, err := e.Build(ctx, w, codegen.ModuleOptions{Core: defaultCore()})
		if err != nil {
			return err
		}
		tr := limit.NewTracker()
		if _, err := e.Run(p, w, machine.Config{Tracer: tr}); err != nil {
			return err
		}
		r := Fig4Row{Name: w.Name, Suite: w.Suite}
		for c, lr := range tr.Results() {
			r.Avg[c] = lr.AvgPathLen
		}
		rows[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{Rows: rows}
	for c := 0; c < 3; c++ {
		vals := make([]float64, len(rows))
		for i, r := range rows {
			vals[i] = r.Avg[c]
		}
		var cl int
		res.Geomean[c], cl = GeomeanClamped(vals)
		res.Clamped += cl
	}
	if err := e.strictGeomean("Fig4", res.Clamped); err != nil {
		return nil, err
	}
	return res, nil
}

// Format renders the figure as a text table.
func (r *Fig4Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: average dynamic idempotent path lengths in the limit\n")
	fmt.Fprintf(&b, "%-16s %-9s %14s %16s %22s\n", "benchmark", "suite", "semantic", "semantic+calls", "semantic+artificial")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %-9s %14.1f %16.1f %22.1f\n",
			row.Name, row.Suite, row.Avg[limit.Semantic], row.Avg[limit.SemanticCalls], row.Avg[limit.SemanticArtificial])
	}
	fmt.Fprintf(&b, "%-16s %-9s %14.1f %16.1f %22.1f\n", "GEOMEAN", "",
		r.Geomean[limit.Semantic], r.Geomean[limit.SemanticCalls], r.Geomean[limit.SemanticArtificial])
	fmt.Fprintf(&b, "(paper, ARMv7/SPEC/PARSEC: 1300 / 110 / 10.8)\n")
	b.WriteString(clampNote(r.Clamped))
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 8: distribution of idempotent path lengths.

// Fig8Row is one benchmark's execution-time-weighted path-length CDF.
type Fig8Row struct {
	Name  string
	Suite workloads.Suite
	// Lens/CDF are the (sorted) path lengths and cumulative fractions.
	Lens []int64
	CDF  []float64
	// FracUnder10/100 are the fractions of execution time spent on paths
	// of ≤10/≤100 instructions (the paper highlights the ≤10 mark).
	FracUnder10, FracUnder100 float64
}

// Fig8 measures the path distributions on a serial engine.
func Fig8(ws []workloads.Workload) ([]Fig8Row, error) { return defaultEngine().Fig8(ws) }

// Fig8 measures the constructed binaries' dynamic path distributions.
func (e *Engine) Fig8(ws []workloads.Workload) ([]Fig8Row, error) {
	rows := make([]Fig8Row, len(ws))
	err := e.ForEach(context.Background(), len(ws), func(ctx context.Context, i int) error {
		w := ws[i]
		p, _, err := e.Build(ctx, w, codegen.ModuleOptions{Idempotent: true, Core: defaultCore()})
		if err != nil {
			return err
		}
		m, err := e.Run(p, w, machine.Config{BufferStores: true, TrackPaths: true})
		if err != nil {
			return err
		}
		lens, cdf := m.Stats.WeightedPathCDF()
		row := Fig8Row{Name: w.Name, Suite: w.Suite, Lens: lens, CDF: cdf}
		for j, l := range lens {
			if l <= 10 {
				row.FracUnder10 = cdf[j]
			}
			if l <= 100 {
				row.FracUnder100 = cdf[j]
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatFig8 renders per-benchmark CDF milestones.
func FormatFig8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: cumulative distribution of dynamic path lengths (execution-time weighted)\n")
	fmt.Fprintf(&b, "%-16s %-9s %12s %12s %12s\n", "benchmark", "suite", "≤10 instrs", "≤100 instrs", "max len")
	for _, r := range rows {
		maxLen := int64(0)
		if n := len(r.Lens); n > 0 {
			maxLen = r.Lens[n-1]
		}
		fmt.Fprintf(&b, "%-16s %-9s %11.1f%% %11.1f%% %12d\n",
			r.Name, r.Suite, r.FracUnder10*100, r.FracUnder100*100, maxLen)
	}
	fmt.Fprintf(&b, "(paper: most applications spend <20%% of execution on paths ≤10 instructions)\n")
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 9: constructed vs ideal average path lengths.

// Fig9Row compares one benchmark's constructed dynamic path length with
// the limit-study ideal (semantic+calls, the intra-procedural limit).
type Fig9Row struct {
	Name        string
	Suite       workloads.Suite
	Constructed float64
	Ideal       float64
}

// Fig9Result bundles rows with the paper's headline geomeans.
type Fig9Result struct {
	Rows                             []Fig9Row
	GeomeanConstructed, GeomeanIdeal float64
	// Clamped counts degenerate rows clamped in the geomeans.
	Clamped int
}

// Fig9 runs both measurements on a serial engine.
func Fig9(ws []workloads.Workload) (*Fig9Result, error) { return defaultEngine().Fig9(ws) }

// Fig9 runs both measurements. Both sub-studies share the engine's
// compile cache, so the conventional and idempotent binaries are each
// built at most once across Fig4/Fig8/Fig9.
func (e *Engine) Fig9(ws []workloads.Workload) (*Fig9Result, error) {
	ideal, err := e.Fig4(ws)
	if err != nil {
		return nil, err
	}
	built, err := e.Fig8(ws)
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{}
	var cons, ide []float64
	for i, w := range ws {
		avg := weightedAvg(built[i].Lens, built[i].CDF)
		row := Fig9Row{
			Name: w.Name, Suite: w.Suite,
			Constructed: avg,
			Ideal:       ideal.Rows[i].Avg[limit.SemanticCalls],
		}
		res.Rows = append(res.Rows, row)
		cons = append(cons, row.Constructed)
		ide = append(ide, row.Ideal)
	}
	var clC, clI int
	res.GeomeanConstructed, clC = GeomeanClamped(cons)
	res.GeomeanIdeal, clI = GeomeanClamped(ide)
	res.Clamped = clC + clI
	if err := e.strictGeomean("Fig9", res.Clamped); err != nil {
		return nil, err
	}
	return res, nil
}

// weightedAvg converts a CDF back to a plain average path length.
func weightedAvg(lens []int64, cdf []float64) float64 {
	// The CDF is execution-time weighted; recover the plain average as
	// total instructions / number of paths using the increments.
	if len(lens) == 0 {
		return 0
	}
	totalF := 0.0
	paths := 0.0
	prev := 0.0
	// increment_i = len_i * count_i / total; so count_i ∝ inc/len_i.
	for i, l := range lens {
		inc := cdf[i] - prev
		prev = cdf[i]
		totalF += inc
		paths += inc / float64(l)
	}
	if paths == 0 {
		return 0
	}
	return totalF / paths
}

// Format renders figure 9.
func (r *Fig9Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: average idempotent path lengths — constructed vs ideal\n")
	fmt.Fprintf(&b, "%-16s %-9s %12s %12s %8s\n", "benchmark", "suite", "constructed", "ideal", "ratio")
	for _, row := range r.Rows {
		ratio := 0.0
		if row.Constructed > 0 {
			ratio = row.Ideal / row.Constructed
		}
		fmt.Fprintf(&b, "%-16s %-9s %12.1f %12.1f %7.1fx\n", row.Name, row.Suite, row.Constructed, row.Ideal, ratio)
	}
	fmt.Fprintf(&b, "%-16s %-9s %12.1f %12.1f %7.1fx\n", "GEOMEAN", "",
		r.GeomeanConstructed, r.GeomeanIdeal, r.GeomeanIdeal/math.Max(r.GeomeanConstructed, 1e-9))
	fmt.Fprintf(&b, "(paper: 28.1 constructed vs 116 ideal, ~4x; 1.5x without the hmmer/lbm aliasing outliers)\n")
	b.WriteString(clampNote(r.Clamped))
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 10: runtime overheads of idempotent compilation.

// Fig10Row is one benchmark's overhead of the idempotent binary over the
// conventional one.
type Fig10Row struct {
	Name  string
	Suite workloads.Suite
	// TimePct is the execution-time (cycles) overhead percentage;
	// InstrPct the dynamic instruction count overhead percentage.
	TimePct, InstrPct float64
	// BaseCycles/IdemCycles are the raw measurements.
	BaseCycles, IdemCycles int64
	BaseInstrs, IdemInstrs int64
}

// Fig10Result groups rows with per-suite and overall geomeans, matching
// the paper's reporting.
type Fig10Result struct {
	Rows []Fig10Row
	// SuiteTime/SuiteInstr map suite → geomean overhead pct.
	SuiteTime, SuiteInstr     map[workloads.Suite]float64
	OverallTime, OverallInstr float64
	// Clamped counts degenerate rows clamped in the geomeans.
	Clamped int
}

// Fig10 measures the overheads on a serial engine.
func Fig10(ws []workloads.Workload) (*Fig10Result, error) { return defaultEngine().Fig10(ws) }

// Fig10 measures both binaries for every workload.
func (e *Engine) Fig10(ws []workloads.Workload) (*Fig10Result, error) {
	rows := make([]Fig10Row, len(ws))
	err := e.ForEach(context.Background(), len(ws), func(ctx context.Context, i int) error {
		w := ws[i]
		pb, _, err := e.Build(ctx, w, codegen.ModuleOptions{Core: defaultCore()})
		if err != nil {
			return err
		}
		pi, _, err := e.Build(ctx, w, codegen.ModuleOptions{Idempotent: true, Core: defaultCore()})
		if err != nil {
			return err
		}
		mb, err := e.Run(pb, w, machine.Config{})
		if err != nil {
			return err
		}
		mi, err := e.Run(pi, w, machine.Config{BufferStores: true})
		if err != nil {
			return err
		}
		row := Fig10Row{
			Name: w.Name, Suite: w.Suite,
			BaseCycles: mb.Stats.Cycles, IdemCycles: mi.Stats.Cycles,
			BaseInstrs: mb.Stats.DynInstrs, IdemInstrs: mi.Stats.DynInstrs,
		}
		row.TimePct = 100 * (float64(mi.Stats.Cycles)/float64(mb.Stats.Cycles) - 1)
		row.InstrPct = 100 * (float64(mi.Stats.DynInstrs)/float64(mb.Stats.DynInstrs) - 1)
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Fig10Result{
		Rows:       rows,
		SuiteTime:  map[workloads.Suite]float64{},
		SuiteInstr: map[workloads.Suite]float64{},
	}
	suiteT := map[workloads.Suite][]float64{}
	suiteI := map[workloads.Suite][]float64{}
	var allT, allI []float64
	for _, row := range rows {
		// Geomean over ratios (1+pct), reported back as pct.
		suiteT[row.Suite] = append(suiteT[row.Suite], 1+row.TimePct/100)
		suiteI[row.Suite] = append(suiteI[row.Suite], 1+row.InstrPct/100)
		allT = append(allT, 1+row.TimePct/100)
		allI = append(allI, 1+row.InstrPct/100)
	}
	geoPct := func(xs []float64) float64 {
		g, cl := GeomeanClamped(xs)
		res.Clamped += cl
		return 100 * (g - 1)
	}
	for s, xs := range suiteT {
		res.SuiteTime[s] = geoPct(xs)
	}
	for s, xs := range suiteI {
		res.SuiteInstr[s] = geoPct(xs)
	}
	res.OverallTime = geoPct(allT)
	res.OverallInstr = geoPct(allI)
	if err := e.strictGeomean("Fig10", res.Clamped); err != nil {
		return nil, err
	}
	return res, nil
}

// Format renders figure 10.
func (r *Fig10Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: idempotent compilation overheads (vs conventional binary)\n")
	fmt.Fprintf(&b, "%-16s %-9s %12s %12s\n", "benchmark", "suite", "time ovh", "instr ovh")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %-9s %11.1f%% %11.1f%%\n", row.Name, row.Suite, row.TimePct, row.InstrPct)
	}
	var suites []workloads.Suite
	for s := range r.SuiteTime {
		suites = append(suites, s)
	}
	sort.Slice(suites, func(i, j int) bool { return suites[i] < suites[j] })
	for _, s := range suites {
		fmt.Fprintf(&b, "%-16s %-9s %11.1f%% %11.1f%%\n", "GEOMEAN", s, r.SuiteTime[s], r.SuiteInstr[s])
	}
	fmt.Fprintf(&b, "%-16s %-9s %11.1f%% %11.1f%%\n", "GEOMEAN", "all", r.OverallTime, r.OverallInstr)
	fmt.Fprintf(&b, "(paper time ovh: SPEC INT 11.2%%, SPEC FP 5.4%%, PARSEC 2.7%%, overall 7.7%%)\n")
	b.WriteString(clampNote(r.Clamped))
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 12: recovery-scheme overheads relative to the DMR baseline.

// Fig12Row is one benchmark's overhead of each recovery scheme over DMR.
type Fig12Row struct {
	Name  string
	Suite workloads.Suite
	// Percent overheads relative to DMR-on-original-binary cycles.
	TMRPct, CLPct, IdemPct float64
	DMRCycles              int64
}

// Fig12Result groups rows with overall geomeans.
type Fig12Result struct {
	Rows                   []Fig12Row
	GeoTMR, GeoCL, GeoIdem float64
	// Clamped counts degenerate rows clamped in the geomeans.
	Clamped int
}

// Fig12 measures the recovery overheads on a serial engine.
func Fig12(ws []workloads.Workload) (*Fig12Result, error) { return defaultEngine().Fig12(ws) }

// Fig12 builds and times all four configurations per workload.
func (e *Engine) Fig12(ws []workloads.Workload) (*Fig12Result, error) {
	rows := make([]Fig12Row, len(ws))
	err := e.ForEach(context.Background(), len(ws), func(ctx context.Context, i int) error {
		w := ws[i]
		base, _, err := e.Build(ctx, w, codegen.ModuleOptions{Core: defaultCore()})
		if err != nil {
			return err
		}
		idem, _, err := e.Build(ctx, w, codegen.ModuleOptions{Idempotent: true, Core: defaultCore()})
		if err != nil {
			return err
		}
		dmr, err := e.Run(fault.Apply(base, fault.SchemeDMR), w, machine.Config{})
		if err != nil {
			return err
		}
		tmr, err := e.Run(fault.Apply(base, fault.SchemeTMR), w, machine.Config{Recovery: machine.RecoverTMR})
		if err != nil {
			return err
		}
		cl, err := e.Run(fault.Apply(base, fault.SchemeCheckpointLog), w, machine.Config{Recovery: machine.RecoverCheckpointLog})
		if err != nil {
			return err
		}
		idm, err := e.Run(fault.Apply(idem, fault.SchemeIdempotence), w,
			machine.Config{BufferStores: true, Recovery: machine.RecoverIdempotence})
		if err != nil {
			return err
		}
		d := float64(dmr.Stats.Cycles)
		rows[i] = Fig12Row{
			Name: w.Name, Suite: w.Suite,
			TMRPct:    100 * (float64(tmr.Stats.Cycles)/d - 1),
			CLPct:     100 * (float64(cl.Stats.Cycles)/d - 1),
			IdemPct:   100 * (float64(idm.Stats.Cycles)/d - 1),
			DMRCycles: dmr.Stats.Cycles,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Fig12Result{Rows: rows}
	var tmrs, cls, idems []float64
	for _, row := range rows {
		tmrs = append(tmrs, 1+row.TMRPct/100)
		cls = append(cls, 1+row.CLPct/100)
		idems = append(idems, 1+row.IdemPct/100)
	}
	geoPct := func(xs []float64) float64 {
		g, cl := GeomeanClamped(xs)
		res.Clamped += cl
		return 100 * (g - 1)
	}
	res.GeoTMR = geoPct(tmrs)
	res.GeoCL = geoPct(cls)
	res.GeoIdem = geoPct(idems)
	if err := e.strictGeomean("Fig12", res.Clamped); err != nil {
		return nil, err
	}
	return res, nil
}

// Format renders figure 12.
func (r *Fig12Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: recovery overheads relative to the DMR detection baseline\n")
	fmt.Fprintf(&b, "%-16s %-9s %16s %20s %14s\n", "benchmark", "suite", "INSTRUCTION-TMR", "CHECKPOINT-AND-LOG", "IDEMPOTENCE")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %-9s %15.1f%% %19.1f%% %13.1f%%\n", row.Name, row.Suite, row.TMRPct, row.CLPct, row.IdemPct)
	}
	fmt.Fprintf(&b, "%-16s %-9s %15.1f%% %19.1f%% %13.1f%%\n", "GEOMEAN", "", r.GeoTMR, r.GeoCL, r.GeoIdem)
	fmt.Fprintf(&b, "(paper: TMR 30.5%%, CHECKPOINT-AND-LOG 24.0%%, IDEMPOTENCE 8.2%%)\n")
	b.WriteString(clampNote(r.Clamped))
	return b.String()
}
