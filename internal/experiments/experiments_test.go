package experiments

import (
	"math"
	"strings"
	"testing"

	"idemproc/internal/limit"
	"idemproc/internal/workloads"
)

// subset returns a small cross-suite workload selection to keep tests
// fast; the full suite runs under `go test -bench=.`.
func subset(t *testing.T, names ...string) []workloads.Workload {
	t.Helper()
	var ws []workloads.Workload
	for _, n := range names {
		w, ok := workloads.ByName(n)
		if !ok {
			t.Fatalf("unknown workload %q", n)
		}
		ws = append(ws, w)
	}
	return ws
}

// strictEngine returns a small parallel engine with strict geomean
// checking: a degenerate (clamped) measurement fails the driver — and
// hence the test — instead of hiding behind the epsilon floor.
func strictEngine() *Engine {
	e := NewEngine(2)
	e.Strict = true
	return e
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("Geomean(2,8) = %f", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Fatal("empty geomean should be 0")
	}
	if g := Geomean([]float64{0, 4}); g <= 0 {
		t.Fatal("zero clamping broken")
	}
}

func TestFig4Shape(t *testing.T) {
	ws := subset(t, "mcf", "lbm")
	res, err := strictEngine().Fig4(ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		// The paper's fundamental ordering must hold per benchmark.
		if !(r.Avg[limit.Semantic] >= r.Avg[limit.SemanticCalls] &&
			r.Avg[limit.SemanticCalls] >= r.Avg[limit.SemanticArtificial]) {
			t.Fatalf("%s: category ordering violated: %v", r.Name, r.Avg)
		}
		if r.Avg[limit.SemanticArtificial] <= 0 {
			t.Fatalf("%s: zero artificial path length", r.Name)
		}
	}
	if !strings.Contains(res.Format(), "GEOMEAN") {
		t.Fatal("Format lacks geomean row")
	}
}

func TestFig8And9Shape(t *testing.T) {
	ws := subset(t, "canneal", "lbm")
	rows, err := strictEngine().Fig8(ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.Lens) == 0 {
			t.Fatalf("%s: no path samples", r.Name)
		}
		// CDF must be monotone and end at 1.
		prev := 0.0
		for _, c := range r.CDF {
			if c < prev-1e-12 {
				t.Fatalf("%s: CDF not monotone", r.Name)
			}
			prev = c
		}
		if math.Abs(prev-1) > 1e-9 {
			t.Fatalf("%s: CDF ends at %f", r.Name, prev)
		}
	}
	res9, err := strictEngine().Fig9(ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res9.Rows {
		if r.Constructed <= 0 || r.Ideal <= 0 {
			t.Fatalf("%s: degenerate row %+v", r.Name, r)
		}
		// Constructed paths cannot exceed the intra-procedural ideal by
		// more than measurement slack (the ideal crosses no boundaries
		// the constructed code could avoid).
		if r.Constructed > r.Ideal*1.5 {
			t.Fatalf("%s: constructed %f far exceeds ideal %f", r.Name, r.Constructed, r.Ideal)
		}
	}
	_ = experimentsFormatSmoke(res9.Format())
}

func TestFig10Shape(t *testing.T) {
	ws := subset(t, "gcc", "milc", "canneal")
	res, err := strictEngine().Fig10(ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		// Instruction overhead must be non-negative: the idempotent
		// binary strictly adds marks and spill code (time can jitter
		// slightly negative through branch alignment).
		if r.InstrPct < -0.5 {
			t.Fatalf("%s: negative instruction overhead %f%%", r.Name, r.InstrPct)
		}
		if r.BaseCycles <= 0 || r.IdemCycles <= 0 {
			t.Fatalf("%s: missing cycle counts", r.Name)
		}
	}
	if len(res.SuiteTime) != 3 {
		t.Fatalf("suite map = %v", res.SuiteTime)
	}
	_ = experimentsFormatSmoke(res.Format())
}

func TestFig12Shape(t *testing.T) {
	ws := subset(t, "gcc", "canneal")
	res, err := strictEngine().Fig12(ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		// Every scheme adds instructions over DMR, so cycles should not
		// be dramatically negative.
		if r.TMRPct < -1 || r.CLPct < -1 {
			t.Fatalf("%s: negative scheme overhead: %+v", r.Name, r)
		}
		if r.DMRCycles <= 0 {
			t.Fatalf("%s: DMR baseline missing", r.Name)
		}
	}
	_ = experimentsFormatSmoke(res.Format())
}

func TestTable2AndCharacteristics(t *testing.T) {
	ws := subset(t, "mcf", "povray")
	rows, err := Table2(ws)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].MemoryAntideps == 0 {
		t.Fatal("mcf must have semantic antidependences")
	}
	if rows[0].CutsPlaced == 0 {
		t.Fatal("no cuts placed")
	}
	_ = experimentsFormatSmoke(FormatTable2(rows))

	ch, err := Characteristics(ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ch {
		if c.Functions == 0 || c.Regions == 0 || c.AvgRegionSize <= 0 {
			t.Fatalf("%s: degenerate characteristics %+v", c.Name, c)
		}
	}
	_ = experimentsFormatSmoke(FormatCharacteristics(ch))
}

func TestFig11Renders(t *testing.T) {
	out := Fig11()
	for _, want := range []string{"DMR", "INSTRUCTION-TMR", "CHECKPOINT-AND-LOG", "check r1", "maj", "addi rp, rp, #2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig11 output missing %q:\n%s", want, out)
		}
	}
}

func TestAblations(t *testing.T) {
	ws := subset(t, "bzip2")
	lh, err := AblationLoopHeuristic(ws)
	if err != nil {
		t.Fatal(err)
	}
	if lh[0].On <= 0 || lh[0].Off <= 0 {
		t.Fatalf("loop heuristic ablation degenerate: %+v", lh[0])
	}
	un, err := AblationUnroll(ws)
	if err != nil {
		t.Fatal(err)
	}
	if un[0].On < un[0].Off*0.5 {
		t.Fatalf("unroll should not halve path lengths: %+v", un[0])
	}
	re, err := AblationRedElim(ws)
	if err != nil {
		t.Fatal(err)
	}
	if re[0].On > re[0].Off {
		t.Fatalf("redundancy elimination must not add cuts: %+v", re[0])
	}
	ra, err := AblationRegalloc(ws)
	if err != nil {
		t.Fatal(err)
	}
	if ra[0].On < ra[0].Off*0.95 {
		t.Fatalf("constraint should not speed things up: %+v", ra[0])
	}
	_ = experimentsFormatSmoke(FormatAblation("t", "a", "b", ra))
}

// experimentsFormatSmoke checks a rendered table is non-trivial.
func experimentsFormatSmoke(s string) bool {
	if len(s) < 40 || !strings.Contains(s, "\n") {
		panic("degenerate format output: " + s)
	}
	return true
}

func TestRegionSizeSweep(t *testing.T) {
	w, _ := workloads.ByName("gcc")
	pts, err := RegionSizeSweep(w, []int{0, 32, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Tighter caps must not lengthen paths.
	if pts[2].AvgPathLen > pts[1].AvgPathLen+1 || pts[1].AvgPathLen > pts[0].AvgPathLen+1 {
		t.Fatalf("path lengths not monotone under caps: %+v", pts)
	}
	_ = experimentsFormatSmoke(FormatSweep(w.Name, pts))
}

func TestAblationPureCalls(t *testing.T) {
	ws := subset(t, "sjeng", "blackscholes")
	rows, err := AblationPureCalls(ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.On < r.Off*0.9 {
			t.Fatalf("%s: pure-call mode shortened paths (%f vs %f)", r.Name, r.On, r.Off)
		}
	}
}
