package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/fault"
	"idemproc/internal/isa"
	"idemproc/internal/machine"
	"idemproc/internal/workloads"
)

// ---------------------------------------------------------------------
// Table 2: semantic vs artificial clobber antidependences by storage.

// Table2Row counts one workload's antidependences by storage class,
// before and after the §4.1 transformations.
type Table2Row struct {
	Name  string
	Suite workloads.Suite
	// MemoryAntideps are the WAR pairs on heap/global/non-local storage
	// (semantic: must be cut); LocalStackAccesses counts accesses the
	// promotion pass moved into pseudoregisters (artificial: compiled
	// away); SelfDepPhis counts the φ self-dependences handled by §4.2.2.
	MemoryAntideps  int
	PromotedAllocas int
	SelfDepPhis     int
	CutsPlaced      int
}

// Table2 analyses every workload on a serial engine.
func Table2(ws []workloads.Workload) ([]Table2Row, error) { return defaultEngine().Table2(ws) }

// Table2 analyses every workload statically.
func (e *Engine) Table2(ws []workloads.Workload) ([]Table2Row, error) {
	rows := make([]Table2Row, len(ws))
	err := e.ForEach(context.Background(), len(ws), func(ctx context.Context, i int) error {
		w := ws[i]
		m := w.Module()
		row := Table2Row{Name: w.Name, Suite: w.Suite}
		for _, f := range m.Funcs {
			res, err := core.Construct(f, core.DefaultOptions())
			if err != nil {
				return fmt.Errorf("%s/@%s: %w", w.Name, f.Name, err)
			}
			row.MemoryAntideps += len(res.Antideps)
			row.PromotedAllocas += res.Stats.PromotedAllocas
			row.SelfDepPhis += len(res.SelfDep)
			row.CutsPlaced += len(res.Cuts)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatTable2 renders the classification.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 (instantiated): clobber antidependences by storage resource\n")
	fmt.Fprintf(&b, "  semantic   → heap/global/non-local memory: must be cut (region boundaries)\n")
	fmt.Fprintf(&b, "  artificial → registers and local stack: compiled away (promotion + SSA + §4.4)\n\n")
	fmt.Fprintf(&b, "%-16s %-9s %10s %10s %10s %8s\n", "benchmark", "suite", "semantic", "promoted", "selfdep-φ", "cuts")
	tot := Table2Row{}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-9s %10d %10d %10d %8d\n", r.Name, r.Suite, r.MemoryAntideps, r.PromotedAllocas, r.SelfDepPhis, r.CutsPlaced)
		tot.MemoryAntideps += r.MemoryAntideps
		tot.PromotedAllocas += r.PromotedAllocas
		tot.SelfDepPhis += r.SelfDepPhis
		tot.CutsPlaced += r.CutsPlaced
	}
	fmt.Fprintf(&b, "%-16s %-9s %10d %10d %10d %8d\n", "TOTAL", "", tot.MemoryAntideps, tot.PromotedAllocas, tot.SelfDepPhis, tot.CutsPlaced)
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 11: the three recovery transforms, shown on a tiny sequence.

// Fig11 renders the instrumented forms of a canonical load-add-store
// sequence under each scheme, mirroring the paper's figure.
func Fig11() string {
	seq := []isa.Instr{
		{Op: isa.LDR, Rd: isa.R1, Rs1: isa.R0},
		{Op: isa.ADD, Rd: isa.R2, Rs1: isa.R3, Rs2: isa.R4},
		{Op: isa.STR, Rs1: isa.R1, Rs2: isa.R2},
	}
	render := func(name string, edit func(int, isa.Instr) ([]isa.Instr, []isa.Instr)) string {
		var b strings.Builder
		fmt.Fprintf(&b, "%s:\n", name)
		for i, in := range seq {
			before, after := edit(i, in)
			for _, x := range before {
				fmt.Fprintf(&b, "    %s\n", x)
			}
			fmt.Fprintf(&b, "    %s\n", in)
			for _, x := range after {
				fmt.Fprintf(&b, "    %s   ; redundant copy #%d\n", x, x.Shadow)
			}
		}
		return b.String()
	}
	var b strings.Builder
	b.WriteString("Figure 11: recovery transforms over `ld r1=[r0]; add r2=r3,r4; st [r1]=r2`\n\n")
	b.WriteString(render("DMR baseline", func(i int, in isa.Instr) ([]isa.Instr, []isa.Instr) {
		return fault.DMREdit(in)
	}))
	b.WriteString("\n")
	b.WriteString(render("INSTRUCTION-TMR", fault.TMREdit))
	b.WriteString("\n")
	b.WriteString(render("CHECKPOINT-AND-LOG", fault.CLEdit))
	b.WriteString("\nIDEMPOTENCE: the idempotent binary's MARK at each boundary (mov rp) plus the DMR checks above.\n")
	return b.String()
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §5).

// AblationRow compares a metric with a design choice on vs off.
type AblationRow struct {
	Name    string
	On, Off float64
}

// AblationLoopHeuristic runs the §4.3 ablation on a serial engine.
func AblationLoopHeuristic(ws []workloads.Workload) ([]AblationRow, error) {
	return defaultEngine().AblationLoopHeuristic(ws)
}

// AblationLoopHeuristic compares average dynamic path lengths with the
// §4.3 loop-nesting heuristic on vs off.
func (e *Engine) AblationLoopHeuristic(ws []workloads.Workload) ([]AblationRow, error) {
	return e.pathLenAblation(ws, func(on bool) core.Options {
		o := core.DefaultOptions()
		o.LoopHeuristic = on
		return o
	})
}

// AblationUnroll runs the §5 unroll ablation on a serial engine.
func AblationUnroll(ws []workloads.Workload) ([]AblationRow, error) {
	return defaultEngine().AblationUnroll(ws)
}

// AblationUnroll compares average dynamic path lengths with the §5 loop
// unroll on vs off.
func (e *Engine) AblationUnroll(ws []workloads.Workload) ([]AblationRow, error) {
	return e.pathLenAblation(ws, func(on bool) core.Options {
		o := core.DefaultOptions()
		o.UnrollLoops = on
		return o
	})
}

func (e *Engine) pathLenAblation(ws []workloads.Workload, opt func(bool) core.Options) ([]AblationRow, error) {
	rows := make([]AblationRow, len(ws))
	err := e.ForEach(context.Background(), len(ws), func(ctx context.Context, i int) error {
		w := ws[i]
		row := AblationRow{Name: w.Name}
		for _, on := range []bool{true, false} {
			p, _, err := e.Build(ctx, w, codegen.ModuleOptions{Idempotent: true, Core: opt(on)})
			if err != nil {
				return err
			}
			m, err := e.Run(p, w, machine.Config{BufferStores: true, TrackPaths: true})
			if err != nil {
				return err
			}
			if on {
				row.On = m.Stats.AvgPathLen()
			} else {
				row.Off = m.Stats.AvgPathLen()
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// AblationRedElim runs the redundancy-elimination ablation on a serial
// engine.
func AblationRedElim(ws []workloads.Workload) ([]AblationRow, error) {
	return defaultEngine().AblationRedElim(ws)
}

// AblationRedElim compares the number of memory antidependences the
// region construction must cut with the Fig. 5 redundancy elimination on
// vs off.
func (e *Engine) AblationRedElim(ws []workloads.Workload) ([]AblationRow, error) {
	rows := make([]AblationRow, len(ws))
	err := e.ForEach(context.Background(), len(ws), func(ctx context.Context, i int) error {
		w := ws[i]
		row := AblationRow{Name: w.Name}
		for _, on := range []bool{true, false} {
			opts := core.DefaultOptions()
			opts.RedElim = on
			m := w.Module()
			cuts := 0
			for _, f := range m.Funcs {
				res, err := core.Construct(f, opts)
				if err != nil {
					return fmt.Errorf("%s/@%s: %w", w.Name, f.Name, err)
				}
				cuts += len(res.Cuts)
			}
			if on {
				row.On = float64(cuts)
			} else {
				row.Off = float64(cuts)
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// AblationRegalloc runs the §4.4 ablation on a serial engine.
func AblationRegalloc(ws []workloads.Workload) ([]AblationRow, error) {
	return defaultEngine().AblationRegalloc(ws)
}

// AblationRegalloc isolates the §4.4 allocation constraint: same cuts and
// MARKs, allocation constraint on vs off, measured in cycles.
func (e *Engine) AblationRegalloc(ws []workloads.Workload) ([]AblationRow, error) {
	rows := make([]AblationRow, len(ws))
	err := e.ForEach(context.Background(), len(ws), func(ctx context.Context, i int) error {
		w := ws[i]
		row := AblationRow{Name: w.Name}
		for _, constrained := range []bool{true, false} {
			p, _, err := e.Build(ctx, w, codegen.ModuleOptions{
				Idempotent: true, Core: defaultCore(), RelaxedAlloc: !constrained,
			})
			if err != nil {
				return err
			}
			m, err := e.Run(p, w, machine.Config{BufferStores: true})
			if err != nil {
				return err
			}
			if constrained {
				row.On = float64(m.Stats.Cycles)
			} else {
				row.Off = float64(m.Stats.Cycles)
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatAblation renders an ablation table.
func FormatAblation(title, onLabel, offLabel string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-16s %14s %14s %8s\n", title, "benchmark", onLabel, offLabel, "ratio")
	var ratios []float64
	for _, r := range rows {
		ratio := 0.0
		if r.Off > 0 {
			ratio = r.On / r.Off
		}
		ratios = append(ratios, ratio)
		fmt.Fprintf(&b, "%-16s %14.1f %14.1f %8.2f\n", r.Name, r.On, r.Off, ratio)
	}
	g, clamped := GeomeanClamped(ratios)
	fmt.Fprintf(&b, "%-16s %14s %14s %8.2f\n", "GEOMEAN", "", "", g)
	b.WriteString(clampNote(clamped))
	return b.String()
}

// ---------------------------------------------------------------------
// Static region characteristics (supports §6.2's discussion).

// CharacteristicsRow summarizes the static construction of one workload.
type CharacteristicsRow struct {
	Name          string
	Suite         workloads.Suite
	Functions     int
	Instructions  int
	Regions       int
	AvgRegionSize float64
	Cuts          int
	SpillLoads    int
	SpillStores   int
}

// Characteristics runs the construction on a serial engine.
func Characteristics(ws []workloads.Workload) ([]CharacteristicsRow, error) {
	return defaultEngine().Characteristics(ws)
}

// Characteristics runs the construction on every workload.
func (e *Engine) Characteristics(ws []workloads.Workload) ([]CharacteristicsRow, error) {
	rows := make([]CharacteristicsRow, len(ws))
	err := e.ForEach(context.Background(), len(ws), func(ctx context.Context, i int) error {
		w := ws[i]
		_, st, err := e.Build(ctx, w, codegen.ModuleOptions{Idempotent: true, Core: defaultCore()})
		if err != nil {
			return err
		}
		row := CharacteristicsRow{Name: w.Name, Suite: w.Suite,
			SpillLoads: st.SpillLoads, SpillStores: st.SpillStores}
		// Iterate functions in sorted-name order so the floating-point
		// accumulation below is identical run to run (map order is not).
		names := make([]string, 0, len(st.Construction))
		for name := range st.Construction {
			names = append(names, name)
		}
		sort.Strings(names)
		total := 0.0
		for _, name := range names {
			res := st.Construction[name]
			row.Functions++
			row.Instructions += res.Stats.Instructions
			row.Regions += res.Stats.RegionCount
			row.Cuts += res.Cuts
			total += res.Stats.AvgRegionSize * float64(res.Stats.RegionCount)
		}
		if row.Regions > 0 {
			row.AvgRegionSize = total / float64(row.Regions)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatCharacteristics renders the static table.
func FormatCharacteristics(rows []CharacteristicsRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Static region characteristics (idempotent compilation)\n")
	fmt.Fprintf(&b, "%-16s %-9s %6s %8s %8s %6s %10s %8s %8s\n",
		"benchmark", "suite", "funcs", "instrs", "regions", "cuts", "avg size", "spill-ld", "spill-st")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-9s %6d %8d %8d %6d %10.1f %8d %8d\n",
			r.Name, r.Suite, r.Functions, r.Instructions, r.Regions, r.Cuts, r.AvgRegionSize, r.SpillLoads, r.SpillStores)
	}
	return b.String()
}

// AblationPureCalls runs the pure-call ablation on a serial engine.
func AblationPureCalls(ws []workloads.Workload) ([]AblationRow, error) {
	return defaultEngine().AblationPureCalls(ws)
}

// AblationPureCalls measures the inter-procedural pure-call extension:
// average dynamic path length with regions spanning memory-free callees
// vs the strictly intra-procedural default.
func (e *Engine) AblationPureCalls(ws []workloads.Workload) ([]AblationRow, error) {
	rows := make([]AblationRow, len(ws))
	err := e.ForEach(context.Background(), len(ws), func(ctx context.Context, i int) error {
		w := ws[i]
		row := AblationRow{Name: w.Name}
		for _, on := range []bool{true, false} {
			p, _, err := e.Build(ctx, w, codegen.ModuleOptions{Idempotent: true, Core: defaultCore(), PureCalls: on})
			if err != nil {
				return err
			}
			m, err := e.Run(p, w, machine.Config{BufferStores: true, TrackPaths: true})
			if err != nil {
				return err
			}
			if on {
				row.On = m.Stats.AvgPathLen()
			} else {
				row.Off = m.Stats.AvgPathLen()
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
