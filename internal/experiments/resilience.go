package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"idemproc/internal/codegen"
	"idemproc/internal/fault"
	"idemproc/internal/workloads"
)

// ---------------------------------------------------------------------
// Resilience table (§6.3): randomized fault-injection campaigns per
// recovery scheme, consuming the structured results of the campaign
// engine (sdc rate, detection/recovery rates, detection latency,
// re-execution inflation, livelocks).

// ResilienceRow is one (workload, scheme) campaign summary.
type ResilienceRow struct {
	Name   string          `json:"name"`
	Suite  workloads.Suite `json:"suite"`
	Scheme string          `json:"scheme"`

	Runs   int `json:"runs"`
	Landed int `json:"landed"`

	SDCRate       float64 `json:"sdc_rate"`
	DetectionRate float64 `json:"detection_rate"`
	RecoveryRate  float64 `json:"recovery_rate"`

	// MeanDetectLatency is in dynamic instructions from fault to first
	// detection; InflationP90 is the 90th-percentile dynamic-instruction
	// inflation over the fault-free reference, in percent.
	MeanDetectLatency float64 `json:"mean_detect_latency"`
	InflationP90      float64 `json:"inflation_p90"`

	Livelocks int `json:"livelocks"`
	Crashes   int `json:"crashes"`
}

// ResilienceResult groups rows with per-scheme mean rates.
type ResilienceResult struct {
	Seed uint64          `json:"seed"`
	Runs int             `json:"runs"`
	Rows []ResilienceRow `json:"rows"`
	// MeanSDC/MeanRecovery map scheme name → mean rate across workloads.
	MeanSDC      map[string]float64 `json:"mean_sdc"`
	MeanRecovery map[string]float64 `json:"mean_recovery"`
}

// resilienceSchemes are the campaigns the table compares, in the paper's
// Figure 12 order.
var resilienceSchemes = []fault.Scheme{
	fault.SchemeDMR,
	fault.SchemeTMR,
	fault.SchemeCheckpointLog,
	fault.SchemeIdempotence,
}

// rowFromCampaign flattens a campaign aggregate into a table row.
func rowFromCampaign(name string, suite workloads.Suite, res *fault.CampaignResult) ResilienceRow {
	return ResilienceRow{
		Name: name, Suite: suite, Scheme: res.Scheme,
		Runs: res.Runs, Landed: res.Landed,
		SDCRate:           res.SDCRate,
		DetectionRate:     res.DetectionRate,
		RecoveryRate:      res.RecoveryRate,
		MeanDetectLatency: res.MeanDetectLatency,
		InflationP90:      res.InflationP90,
		Livelocks:         res.Livelocks,
		Crashes:           res.Crashes,
	}
}

// RowFromCampaignFile loads a campaign JSON aggregate (as written by
// `idemsim -json`) and flattens it into a table row, so externally-run
// campaigns can be folded into the same report.
func RowFromCampaignFile(name string, path string) (ResilienceRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ResilienceRow{}, err
	}
	var res fault.CampaignResult
	if err := json.Unmarshal(data, &res); err != nil {
		return ResilienceRow{}, fmt.Errorf("%s: %w", path, err)
	}
	suite := workloads.Suite("")
	if w, ok := workloads.ByName(name); ok {
		suite = w.Suite
	}
	return rowFromCampaign(name, suite, &res), nil
}

// Resilience runs the injection campaigns on a serial engine.
func Resilience(ctx context.Context, ws []workloads.Workload, runs int, seed uint64) (*ResilienceResult, error) {
	return defaultEngine().Resilience(ctx, ws, runs, seed)
}

// Resilience runs an all-models injection campaign of the given size for
// every workload under every recovery scheme. Campaigns are seeded, so
// two invocations with the same arguments produce identical tables.
//
// The (workload, scheme) loop stays serial: fault.RunCampaign already
// parallelizes its injection runs internally, so the engine's worker
// budget is passed down as the campaign pool width instead of nesting a
// second fan-out on top. Builds go through the shared compile cache.
func (e *Engine) Resilience(ctx context.Context, ws []workloads.Workload, runs int, seed uint64) (*ResilienceResult, error) {
	res := &ResilienceResult{
		Seed: seed, Runs: runs,
		MeanSDC:      map[string]float64{},
		MeanRecovery: map[string]float64{},
	}
	counts := map[string]int{}
	for _, w := range ws {
		base, _, err := e.Build(ctx, w, codegen.ModuleOptions{Core: defaultCore()})
		if err != nil {
			return nil, err
		}
		idem, _, err := e.Build(ctx, w, codegen.ModuleOptions{Idempotent: true, Core: defaultCore()})
		if err != nil {
			return nil, err
		}
		for _, s := range resilienceSchemes {
			p := base
			if s == fault.SchemeIdempotence {
				p = idem
			}
			cr, err := fault.RunCampaign(ctx, fault.Apply(p, s), fault.Spec{
				Scheme:  s,
				Runs:    runs,
				Seed:    seed,
				Workers: e.workers,
				Models:  fault.AllModels(),
				Args:    w.Args,
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", w.Name, s, err)
			}
			res.Rows = append(res.Rows, rowFromCampaign(w.Name, w.Suite, cr))
			res.MeanSDC[cr.Scheme] += cr.SDCRate
			res.MeanRecovery[cr.Scheme] += cr.RecoveryRate
			counts[cr.Scheme]++
		}
	}
	for k, n := range counts {
		res.MeanSDC[k] /= float64(n)
		res.MeanRecovery[k] /= float64(n)
	}
	return res, nil
}

// Format renders the resilience table.
func (r *ResilienceResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Resilience: randomized fault injection, %d runs/campaign, seed %d (all models)\n", r.Runs, r.Seed)
	fmt.Fprintf(&b, "%-16s %-9s %-20s %7s %7s %8s %8s %9s %9s %6s %6s\n",
		"benchmark", "suite", "scheme", "runs", "landed", "SDC", "detect", "recover", "lat", "p90", "lvlk")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %-9s %-20s %7d %7d %7.1f%% %7.1f%% %8.1f%% %9.1f %5.2f%% %6d\n",
			row.Name, row.Suite, row.Scheme, row.Runs, row.Landed,
			100*row.SDCRate, 100*row.DetectionRate, 100*row.RecoveryRate,
			row.MeanDetectLatency, row.InflationP90, row.Livelocks)
	}
	for _, s := range resilienceSchemes {
		k := s.String()
		fmt.Fprintf(&b, "%-16s %-9s %-20s %7s %7s %7.1f%% %7s %8.1f%%\n",
			"MEAN", "", k, "", "", 100*r.MeanSDC[k], "", 100*r.MeanRecovery[k])
	}
	fmt.Fprintf(&b, "(IDEMPOTENCE should recover what DMR merely detects, at a fraction of TMR/CL's overhead)\n")
	return b.String()
}
