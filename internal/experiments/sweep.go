package experiments

import (
	"context"
	"fmt"
	"strings"

	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/machine"
	"idemproc/internal/workloads"
)

// SweepPoint is one configuration of the §6.2 region-size trade-off: the
// paper observes that "optimal path length depends on a variety of
// factors" — longer regions amortize live-in preservation but raise
// re-execution cost and require longer detection-latency tolerance.
type SweepPoint struct {
	// MaxRegionSize is the static cap (0 = unbounded, the paper's
	// default).
	MaxRegionSize int
	// AvgPathLen is the measured dynamic path length.
	AvgPathLen float64
	// TimeOvhPct is the fault-free execution-time overhead vs the
	// conventional binary.
	TimeOvhPct float64
	// ReexecCostPct is the average re-execution penalty of one recovery,
	// as a percentage of total fault-free cycles per 100 faults (a proxy
	// for recovery cost at a given fault rate).
	ReexecCostPct float64
}

// RegionSizeSweep measures the trade-off curve on a serial engine.
func RegionSizeSweep(w workloads.Workload, sizes []int) ([]SweepPoint, error) {
	return defaultEngine().RegionSizeSweep(w, sizes)
}

// RegionSizeSweep measures the trade-off curve for one workload, fanning
// the per-size build/run units out over the engine's pool.
func (e *Engine) RegionSizeSweep(w workloads.Workload, sizes []int) ([]SweepPoint, error) {
	base, _, err := e.Build(context.Background(), w, codegen.ModuleOptions{Core: defaultCore()})
	if err != nil {
		return nil, err
	}
	mb, err := e.Run(base, w, machine.Config{})
	if err != nil {
		return nil, err
	}
	baseCycles := float64(mb.Stats.Cycles)

	out := make([]SweepPoint, len(sizes))
	err = e.ForEach(context.Background(), len(sizes), func(ctx context.Context, i int) error {
		opts := core.DefaultOptions()
		opts.MaxRegionSize = sizes[i]
		p, _, err := e.Build(ctx, w, codegen.ModuleOptions{Idempotent: true, Core: opts})
		if err != nil {
			return err
		}
		m, err := e.Run(p, w, machine.Config{BufferStores: true, TrackPaths: true})
		if err != nil {
			return err
		}
		pt := SweepPoint{
			MaxRegionSize: sizes[i],
			AvgPathLen:    m.Stats.AvgPathLen(),
			TimeOvhPct:    100 * (float64(m.Stats.Cycles)/baseCycles - 1),
		}
		// Re-execution cost proxy: the average dynamic path length is the
		// expected re-executed instruction count per recovery (uniform
		// failure point over a path re-executes half of it on average,
		// but detection occurs at the end of the region in the worst
		// case; use the full path as the conservative estimate).
		faultFree := float64(m.Stats.DynInstrs)
		pt.ReexecCostPct = 100 * 100 * pt.AvgPathLen / faultFree
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FormatSweep renders the trade-off curve.
func FormatSweep(name string, pts []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Region-size sweep for %s (§6.2 trade-off)\n", name)
	fmt.Fprintf(&b, "%10s %14s %12s %22s\n", "max size", "avg path len", "time ovh", "reexec cost/100 faults")
	for _, p := range pts {
		size := fmt.Sprint(p.MaxRegionSize)
		if p.MaxRegionSize == 0 {
			size = "∞"
		}
		fmt.Fprintf(&b, "%10s %14.1f %11.1f%% %21.3f%%\n", size, p.AvgPathLen, p.TimeOvhPct, p.ReexecCostPct)
	}
	b.WriteString("(longer regions amortize boundary costs; shorter regions bound re-execution and detection latency)\n")
	return b.String()
}
