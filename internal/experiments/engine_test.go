package experiments

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// TestEngineDeterministicAcrossWidths runs a build+simulate figure on a
// serial and a wide engine and asserts byte-identical formatted output
// (the engine's core contract; the cmd/idembench golden test covers the
// same property end-to-end through the CLI).
func TestEngineDeterministicAcrossWidths(t *testing.T) {
	ws := subset(t, "mcf", "lbm", "blackscholes", "bzip2")
	var outs [2]string
	for i, workers := range []int{1, 8} {
		e := NewEngine(workers)
		res, err := e.Fig10(ws)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		outs[i] = res.Format()
	}
	if outs[0] != outs[1] {
		t.Fatalf("Fig10 output differs between workers=1 and workers=8:\n--- 1 ---\n%s\n--- 8 ---\n%s", outs[0], outs[1])
	}
}

// TestEngineCacheSharedAcrossFigures checks that one engine compiles at
// most one program per distinct (workload, options) pair even when
// several figures request the same builds: Fig10 and Fig12 both need
// the conventional and the idempotent binary of every workload, so the
// second figure must be all cache hits.
func TestEngineCacheSharedAcrossFigures(t *testing.T) {
	ws := subset(t, "mcf", "lbm")
	e := NewEngine(4)
	if _, err := e.Fig10(ws); err != nil {
		t.Fatal(err)
	}
	afterFig10 := e.Timing()
	if want := 2 * len(ws); afterFig10.DistinctPrograms != want {
		t.Fatalf("Fig10 built %d distinct programs, want %d (base+idempotent per workload)",
			afterFig10.DistinctPrograms, want)
	}
	if _, err := e.Fig12(ws); err != nil {
		t.Fatal(err)
	}
	afterFig12 := e.Timing()
	if afterFig12.CacheMisses != afterFig10.CacheMisses {
		t.Fatalf("Fig12 recompiled: misses went %d -> %d, want no change",
			afterFig10.CacheMisses, afterFig12.CacheMisses)
	}
	if afterFig12.CacheHits <= afterFig10.CacheHits {
		t.Fatalf("Fig12 did not hit the cache: hits stayed at %d", afterFig12.CacheHits)
	}
	if afterFig12.SimRuns <= afterFig10.SimRuns {
		t.Fatal("Fig12 reported no simulator runs")
	}
}

// TestGeomeanClampAccounting pins the clamp counting and the formatted
// warning, and the strict-mode error that tests rely on.
func TestGeomeanClampAccounting(t *testing.T) {
	g, clamped := GeomeanClamped([]float64{1, 4, 0, -3})
	if clamped != 2 {
		t.Fatalf("clamped = %d, want 2", clamped)
	}
	if g <= 0 {
		t.Fatalf("geomean = %g, want > 0", g)
	}
	if _, clamped := GeomeanClamped([]float64{1, 2, 4}); clamped != 0 {
		t.Fatalf("clean inputs reported %d clamps", clamped)
	}

	if note := clampNote(0); note != "" {
		t.Fatalf("clampNote(0) = %q, want empty", note)
	}
	if note := clampNote(3); !strings.Contains(note, "3 degenerate") {
		t.Fatalf("clampNote(3) = %q", note)
	}

	e := NewEngine(1)
	if err := e.strictGeomean("figX", 1); err != nil {
		t.Fatalf("non-strict engine errored: %v", err)
	}
	e.Strict = true
	err := e.strictGeomean("figX", 1)
	if err == nil || !strings.Contains(err.Error(), "figX") {
		t.Fatalf("strict engine error = %v, want error naming the driver", err)
	}
	if err := e.strictGeomean("figX", 0); err != nil {
		t.Fatalf("strict engine with 0 clamps errored: %v", err)
	}
}

// TestForEachErrorDeterminism checks that a failing unit cancels the
// rest and the reported error is a real unit error, never a bare
// cancellation.
func TestForEachErrorDeterminism(t *testing.T) {
	e := NewEngine(8)
	unitErr := errors.New("unit 13 broke")
	var ran atomic.Int64
	err := e.ForEach(context.Background(), 64, func(ctx context.Context, i int) error {
		ran.Add(1)
		if i == 13 {
			return unitErr
		}
		return nil
	})
	if !errors.Is(err, unitErr) {
		t.Fatalf("forEach returned %v, want the unit error", err)
	}
	if n := ran.Load(); n > 64 {
		t.Fatalf("ran %d units, want <= 64", n)
	}

	// No error, no cancellation: every unit runs exactly once.
	ran.Store(0)
	if err := e.ForEach(context.Background(), 64, func(ctx context.Context, i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n := ran.Load(); n != 64 {
		t.Fatalf("ran %d units, want 64", n)
	}
}
