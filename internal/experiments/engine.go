package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"idemproc/internal/buildcache"
	"idemproc/internal/codegen"
	"idemproc/internal/machine"
	"idemproc/internal/workloads"
)

// Engine runs experiment drivers over a bounded worker pool with a shared
// content-keyed compile cache. All figure drivers are Engine methods; the
// package-level functions of the same names are serial-engine wrappers
// kept for convenience and API compatibility.
//
// Determinism contract: for a fixed workload list, every driver produces
// byte-identical formatted output for any worker count. Work units are
// indexed, each unit writes only its own result slot, and all aggregation
// (geomeans, suite splits) happens serially in index order after the pool
// drains. The compile cache only changes *when* a program is built, never
// what is built, and simulator runs on a shared read-only Program are
// independent (see the codegen.Program immutability contract).
type Engine struct {
	workers int
	// Strict makes drivers fail when a geomean input had to be clamped
	// (see Geomean): a degenerate measurement then surfaces as an error
	// instead of a footnote. Tests run strict.
	Strict bool

	cache    *buildcache.Cache
	simNanos atomic.Int64
	simRuns  atomic.Int64
}

// NewEngine returns an engine with the given worker-pool width; workers
// <= 0 selects GOMAXPROCS.
func NewEngine(workers int) *Engine {
	return NewEngineWithCache(workers, buildcache.New())
}

// NewEngineWithCache returns an engine backed by an externally owned
// compile cache. The idemd service uses this to share one byte-bounded
// cache between the batch engine and the single-request handlers (and to
// scrape its stats for /metrics).
func NewEngineWithCache(workers int, cache *buildcache.Cache) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cache == nil {
		cache = buildcache.New()
	}
	return &Engine{workers: workers, cache: cache}
}

// Cache returns the engine's compile cache.
func (e *Engine) Cache() *buildcache.Cache { return e.cache }

// defaultEngine returns the serial engine backing the package-level
// wrapper functions.
func defaultEngine() *Engine { return NewEngine(1) }

// Workers reports the pool width.
func (e *Engine) Workers() int { return e.workers }

// Build compiles w under mo through the shared cache, naming the workload
// in any error (so a failing figure identifies its culprit). A canceled
// ctx abandons the wait on an in-flight singleflight compile immediately
// (the compile itself still completes and is cached — see
// buildcache.Cache.Compile).
func (e *Engine) Build(ctx context.Context, w workloads.Workload, mo codegen.ModuleOptions) (*codegen.Program, *codegen.BuildStats, error) {
	p, st, err := e.cache.Compile(ctx, w, mo)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	return p, st, nil
}

// Run executes a (possibly cached, shared) program for workload w on a
// fresh machine, accounting the wall time to the simulate stage.
func (e *Engine) Run(p *codegen.Program, w workloads.Workload, cfg machine.Config) (*machine.Machine, error) {
	start := time.Now()
	m, err := run(p, w, cfg)
	e.simNanos.Add(time.Since(start).Nanoseconds())
	e.simRuns.Add(1)
	return m, err
}

// RunMachine executes an already-prepared machine (configuration set,
// injections armed) under ctx, accounting the wall time to the simulate
// stage. The machine's step loop polls ctx every cfg.PreemptEvery
// dynamic instructions, so a canceled or expired ctx — a request
// deadline, an abandoned /v1/batch fan-out — stops the simulation with
// machine.ErrPreempted within that instruction budget instead of
// running the workload to completion.
func (e *Engine) RunMachine(ctx context.Context, m *machine.Machine, args ...uint64) (uint64, error) {
	m.BindContext(ctx)
	start := time.Now()
	r0, err := m.Run(args...)
	e.simNanos.Add(time.Since(start).Nanoseconds())
	e.simRuns.Add(1)
	return r0, err
}

// ForEach evaluates fn(ctx, i) for every i in [0, n) on the worker pool.
// Each unit must write results only into its own index slot; callers
// aggregate in index order afterwards, which is what makes output
// independent of the worker count. The first error cancels ctx so
// outstanding units are skipped; among units that genuinely ran, the
// lowest-index non-cancellation error is returned. (Callers that want
// per-unit error collection instead of fail-fast — the idemd /v1/batch
// handler — record errors into their slots and return nil from fn.)
func (e *Engine) ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				if err := fn(ctx, i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	var fallback error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
		if fallback == nil {
			fallback = err
		}
	}
	return fallback
}

// strictGeomean enforces the engine's strict mode for a driver that had
// to clamp degenerate geomean inputs.
func (e *Engine) strictGeomean(driver string, clamped int) error {
	if e.Strict && clamped > 0 {
		return fmt.Errorf("experiments: %s: %d degenerate geomean input(s) clamped to %g (strict mode)", driver, clamped, geomeanEps)
	}
	return nil
}

// Timing is the per-stage wall-time breakdown of everything an engine has
// run so far.
type Timing struct {
	// CompileTime/SimTime are summed across workers, so each can exceed
	// elapsed wall time under parallelism.
	CompileTime time.Duration
	SimTime     time.Duration
	// SimRuns counts simulator executions.
	SimRuns int64
	// CacheHits/CacheMisses/DistinctPrograms describe the compile cache:
	// misses equal distinct programs built; hits are compiles avoided.
	CacheHits, CacheMisses int64
	DistinctPrograms       int
	// Workers is the pool width the engine ran with.
	Workers int
}

// Timing snapshots the engine's counters.
func (e *Engine) Timing() Timing {
	cs := e.cache.Stats()
	return Timing{
		CompileTime:      cs.CompileTime,
		SimTime:          time.Duration(e.simNanos.Load()),
		SimRuns:          e.simRuns.Load(),
		CacheHits:        cs.Hits,
		CacheMisses:      cs.Misses,
		DistinctPrograms: cs.Distinct,
		Workers:          e.workers,
	}
}

// Format renders the breakdown as a small report (the -timing flag of
// cmd/idembench prints this).
func (t Timing) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Timing (per-stage, summed across %d workers)\n", t.Workers)
	fmt.Fprintf(&b, "  compile:  %12s  (%d distinct programs built)\n", t.CompileTime.Round(time.Microsecond), t.DistinctPrograms)
	fmt.Fprintf(&b, "  simulate: %12s  (%d runs)\n", t.SimTime.Round(time.Microsecond), t.SimRuns)
	total := t.CacheHits + t.CacheMisses
	ratio := 0.0
	if total > 0 {
		ratio = 100 * float64(t.CacheHits) / float64(total)
	}
	fmt.Fprintf(&b, "  build cache: %d hits / %d misses (%.1f%% hit rate)\n", t.CacheHits, t.CacheMisses, ratio)
	return b.String()
}
