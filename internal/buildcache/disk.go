package buildcache

// Disk is the cache's write-behind persistence tier: completed compiles
// are serialized (codegen.EncodeProgram) into content-keyed artifact
// files, and later memory misses — including after a process restart —
// are served by decoding the artifact instead of recompiling.
//
// Layout: <dir>/<workload>/<memWords>/<sha256(fingerprint)>.art. The
// workload and memory size are human-readable path components (so an
// operator can see and prune what is cached); the options fingerprint is
// hashed because it is long and contains characters unfit for paths.
//
// Every artifact carries a header — magic, codec version, the full key
// (workload, memWords, verbatim fingerprint), and a sha256 of the
// payload — and the payload itself decodes strictly. A mismatch on any
// of these is a MISS, never an error: a stale fingerprint (hash
// collision or a codec/options change), a truncated write, or bit rot
// all degrade to a recompile, and the invalid file is removed so it is
// not re-validated on every miss. Disk I/O failures are likewise
// swallowed: persistence is an optimization and the cache must keep
// working on a full or read-only disk.
//
// Writes go through a temp file in the same directory followed by an
// atomic rename, so a crash mid-write never leaves a partially-visible
// artifact, and they run on background goroutines (bounded by a
// semaphore) off the singleflight path. Flush waits for them on
// shutdown.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"idemproc/internal/codegen"
)

// artifactMagic is the 8-byte file signature. The trailing newline makes
// `head -c8` output readable and guards against CRLF translation.
const artifactMagic = "IDEMART\n"

// maxStoreWorkers bounds concurrent background artifact writes.
const maxStoreWorkers = 4

// Disk is the persistence tier of a Cache. Create via NewBoundedDisk.
type Disk struct {
	dir string
	sem chan struct{}
	wg  sync.WaitGroup

	hits, misses, writes, corrupt atomic.Int64
}

func newDisk(dir string) *Disk {
	return &Disk{dir: dir, sem: make(chan struct{}, maxStoreWorkers)}
}

// Dir returns the artifact root directory.
func (d *Disk) Dir() string { return d.dir }

// path maps a cache key to its artifact file.
func (d *Disk) path(key Key) string {
	sum := sha256.Sum256([]byte(key.Options))
	return filepath.Join(d.dir, sanitize(key.Workload), strconv.Itoa(key.MemWords),
		hex.EncodeToString(sum[:])+".art")
}

// sanitize makes a workload name safe as a path component. Workload
// names are already identifier-like; this is defense against synthetic
// names carrying separators.
func sanitize(name string) string {
	if name == "" {
		return "_"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, name)
}

// encodeArtifact frames an encoded payload with the verification header.
func encodeArtifact(key Key, payload []byte) []byte {
	buf := []byte(artifactMagic)
	buf = binary.AppendUvarint(buf, codegen.CodecVersion)
	buf = appendString(buf, key.Workload)
	buf = binary.AppendVarint(buf, int64(key.MemWords))
	buf = appendString(buf, key.Options)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	sum := sha256.Sum256(payload)
	buf = append(buf, sum[:]...)
	buf = append(buf, payload...)
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decodeArtifact verifies the header against key and returns the
// payload. Any mismatch or framing problem returns an error; the caller
// treats every error as "not cached".
func decodeArtifact(key Key, data []byte) ([]byte, error) {
	if len(data) < len(artifactMagic) || string(data[:len(artifactMagic)]) != artifactMagic {
		return nil, fmt.Errorf("bad magic")
	}
	data = data[len(artifactMagic):]
	next := func() (string, error) {
		n, k := binary.Uvarint(data)
		if k <= 0 || uint64(len(data)-k) < n {
			return "", fmt.Errorf("truncated header")
		}
		s := string(data[k : k+int(n)])
		data = data[k+int(n):]
		return s, nil
	}
	ver, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("truncated version")
	}
	data = data[k:]
	if ver != codegen.CodecVersion {
		return nil, fmt.Errorf("codec version %d, want %d", ver, codegen.CodecVersion)
	}
	workload, err := next()
	if err != nil {
		return nil, err
	}
	mem, k := binary.Varint(data)
	if k <= 0 {
		return nil, fmt.Errorf("truncated memWords")
	}
	data = data[k:]
	options, err := next()
	if err != nil {
		return nil, err
	}
	if workload != key.Workload || int(mem) != key.MemWords || options != key.Options {
		return nil, fmt.Errorf("key mismatch (stale artifact)")
	}
	plen, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("truncated payload length")
	}
	data = data[k:]
	if len(data) < sha256.Size {
		return nil, fmt.Errorf("truncated checksum")
	}
	want := data[:sha256.Size]
	payload := data[sha256.Size:]
	if uint64(len(payload)) != plen {
		return nil, fmt.Errorf("payload is %d bytes, header says %d", len(payload), plen)
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], want) {
		return nil, fmt.Errorf("payload checksum mismatch")
	}
	return payload, nil
}

// load tries to serve key from disk. ok is false on any failure —
// missing file, stale header, corrupt payload — and the counters
// distinguish the cases: every failed load counts as a miss, and loads
// that found an invalid file additionally count it as corrupt (and
// remove the file so the next miss goes straight to the compiler).
func (d *Disk) load(key Key) (p *codegen.Program, st *codegen.BuildStats, ok bool) {
	path := d.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		d.misses.Add(1)
		return nil, nil, false
	}
	payload, err := decodeArtifact(key, data)
	if err == nil {
		p, st, err = codegen.DecodeProgram(payload)
	}
	if err != nil {
		d.corrupt.Add(1)
		d.misses.Add(1)
		os.Remove(path)
		return nil, nil, false
	}
	d.hits.Add(1)
	return p, st, true
}

// reject prunes an artifact that decoded cleanly but failed semantic
// verification, and re-books the lookup as a miss: the artifact did not
// serve the request, and the next request for the key goes straight to
// the compiler (whose output overwrites the pruned file). The caller
// owns the rejected-artifact accounting.
func (d *Disk) reject(key Key) {
	d.hits.Add(-1)
	d.misses.Add(1)
	os.Remove(d.path(key))
}

// storeAsync persists a completed compile in the background. Failures
// are silent (persistence is best-effort); successes count in writes.
func (d *Disk) storeAsync(key Key, p *codegen.Program, st *codegen.BuildStats) {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		d.sem <- struct{}{}
		defer func() { <-d.sem }()
		if d.store(key, p, st) == nil {
			d.writes.Add(1)
		}
	}()
}

// store writes the artifact for key atomically (temp file + rename in
// the same directory).
func (d *Disk) store(key Key, p *codegen.Program, st *codegen.BuildStats) error {
	path := d.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data := encodeArtifact(key, codegen.EncodeProgram(p, st))
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*.art")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Flush waits for in-flight background writes to land (or ctx to
// expire). Call on shutdown so a drain leaves the artifact store as
// warm as the memory tier was.
func (d *Disk) Flush(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ScanResult summarizes a warm-start scan of the artifact directory.
type ScanResult struct {
	// Entries and Bytes count well-formed artifact files (header framing
	// and payload checksum verified; payloads are not fully decoded).
	Entries int
	Bytes   int64
	// Corrupt counts invalid .art files found and removed.
	Corrupt int
}

// Scan walks the artifact directory, validating file framing and
// checksums, and prunes invalid artifacts. idemd runs it at boot so the
// operator sees what a -cache-dir warm start has to offer and so
// corruption surfaces immediately rather than on first request. Stale-
// but-valid artifacts (e.g. from an older options fingerprint) are left
// in place: they are unreachable until their exact key is requested
// again, but harmless.
func (d *Disk) Scan() ScanResult {
	var res ScanResult
	filepath.WalkDir(d.dir, func(path string, de fs.DirEntry, err error) error {
		if err != nil || de.IsDir() || !strings.HasSuffix(path, ".art") ||
			strings.HasPrefix(filepath.Base(path), ".tmp-") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err == nil {
			err = verifyFraming(data)
		}
		if err != nil {
			res.Corrupt++
			d.corrupt.Add(1)
			os.Remove(path)
			return nil
		}
		res.Entries++
		res.Bytes += int64(len(data))
		return nil
	})
	return res
}

// verifyFraming checks an artifact's magic, version, header framing and
// payload checksum without requiring the cache key or decoding the
// payload.
func verifyFraming(data []byte) error {
	if len(data) < len(artifactMagic) || string(data[:len(artifactMagic)]) != artifactMagic {
		return fmt.Errorf("bad magic")
	}
	data = data[len(artifactMagic):]
	ver, k := binary.Uvarint(data)
	if k <= 0 {
		return fmt.Errorf("truncated version")
	}
	data = data[k:]
	if ver != codegen.CodecVersion {
		return fmt.Errorf("codec version %d", ver)
	}
	skipString := func() error {
		n, k := binary.Uvarint(data)
		if k <= 0 || uint64(len(data)-k) < n {
			return fmt.Errorf("truncated header")
		}
		data = data[k+int(n):]
		return nil
	}
	if err := skipString(); err != nil { // workload
		return err
	}
	if _, k := binary.Varint(data); k <= 0 { // memWords
		return fmt.Errorf("truncated memWords")
	} else {
		data = data[k:]
	}
	if err := skipString(); err != nil { // fingerprint
		return err
	}
	plen, k := binary.Uvarint(data)
	if k <= 0 {
		return fmt.Errorf("truncated payload length")
	}
	data = data[k:]
	if len(data) < sha256.Size {
		return fmt.Errorf("truncated checksum")
	}
	payload := data[sha256.Size:]
	if uint64(len(payload)) != plen {
		return fmt.Errorf("payload length mismatch")
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[:sha256.Size]) {
		return fmt.Errorf("payload checksum mismatch")
	}
	return nil
}
