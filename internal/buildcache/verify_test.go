package buildcache

import (
	"context"
	"testing"

	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/isa"
	"idemproc/internal/verify"
	"idemproc/internal/workloads"
)

func TestParseVerifyMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want VerifyMode
	}{{"", VerifyOff}, {"off", VerifyOff}, {"sampled", VerifySampled}, {"full", VerifyFull}} {
		got, err := ParseVerifyMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseVerifyMode(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() == "" {
			t.Errorf("VerifyMode(%v).String() empty", got)
		}
	}
	if _, err := ParseVerifyMode("always"); err == nil {
		t.Error("ParseVerifyMode(always) should fail")
	}
}

// invalidMutant compiles w and NOPs out a MARK such that the validator
// rejects the result — a decode-clean but semantically broken program.
func invalidMutant(t *testing.T, w workloads.Workload, mo codegen.ModuleOptions) *codegen.Program {
	t.Helper()
	p, _, err := codegen.CompileModuleOpts(w.Module(), "main", w.MemWords, mo)
	if err != nil {
		t.Fatalf("compile %s: %v", w.Name, err)
	}
	for pc, in := range p.Instrs {
		if in.Op != isa.MARK || in.Shadow != 0 {
			continue
		}
		q := *p
		q.Instrs = append([]isa.Instr(nil), p.Instrs...)
		q.Instrs[pc] = isa.Instr{Op: isa.NOP}
		q.Marks--
		if q.Marks > 0 && !verify.Verify(&q).OK() {
			return &q
		}
	}
	return nil
}

// TestVerifyRejectsInvalidArtifact: a disk artifact that decodes cleanly
// but fails verification is pruned and the request recompiles — never an
// error — with the rejection counted.
func TestVerifyRejectsInvalidArtifact(t *testing.T) {
	mo := codegen.ModuleOptions{Idempotent: true, Core: core.DefaultOptions()}
	var w workloads.Workload
	var mutant *codegen.Program
	for _, cand := range workloads.All() {
		if m := invalidMutant(t, cand, mo); m != nil {
			w, mutant = cand, m
			break
		}
	}
	if mutant == nil {
		t.Fatal("no workload yields a rejecting dropped-MARK mutant")
	}

	dir := t.TempDir()
	c := NewBoundedDisk(0, dir)
	c.SetVerifyMode(VerifyFull)
	key := KeyOf(w, mo)
	if err := c.disk.store(key, mutant, &codegen.BuildStats{}); err != nil {
		t.Fatalf("store mutant artifact: %v", err)
	}

	p, _, err := c.Compile(context.Background(), w, mo)
	if err != nil {
		t.Fatalf("Compile after artifact rejection: %v", err)
	}
	if rep := verify.Verify(p); !rep.OK() {
		t.Fatalf("recompiled program fails verification: %s", rep.Summary())
	}
	if !c.Verified(w, mo) {
		t.Error("recompiled entry not marked verified")
	}

	st := c.Stats()
	if st.VerifyRejectedArtifacts != 1 {
		t.Errorf("VerifyRejectedArtifacts = %d, want 1", st.VerifyRejectedArtifacts)
	}
	if st.VerifyFailed != 1 {
		t.Errorf("VerifyFailed = %d, want 1 (the artifact)", st.VerifyFailed)
	}
	if st.VerifyChecked != 2 {
		t.Errorf("VerifyChecked = %d, want 2 (artifact + fresh compile)", st.VerifyChecked)
	}
	if st.Compiles != 1 {
		t.Errorf("Compiles = %d, want 1 (rejection falls through to the compiler)", st.Compiles)
	}
	if st.DiskHits != 0 {
		t.Errorf("DiskHits = %d, want 0 (rejected load re-booked as a miss)", st.DiskHits)
	}

	// The pruned artifact is replaced by the fresh compile's write-behind;
	// a new cache must now serve a verified program from disk alone.
	flushDisk(t, c)
	c2 := NewBoundedDisk(0, dir)
	c2.SetVerifyMode(VerifyFull)
	if _, _, err := c2.Compile(context.Background(), w, mo); err != nil {
		t.Fatalf("Compile from replaced artifact: %v", err)
	}
	st2 := c2.Stats()
	if st2.Compiles != 0 || st2.DiskHits != 1 || st2.VerifyRejectedArtifacts != 0 {
		t.Errorf("replaced artifact not served cleanly: %+v", st2)
	}
	if !c2.Verified(w, mo) {
		t.Error("artifact-served entry not marked verified")
	}
}

// TestVerifySampledDeterministic: sampled mode checks the same keys on
// every run, and off mode checks nothing.
func TestVerifySampledDeterministic(t *testing.T) {
	mo := codegen.ModuleOptions{Idempotent: true, Core: core.DefaultOptions()}
	var sampledWorkload, unsampledWorkload *workloads.Workload
	for i := range workloads.All() {
		w := workloads.All()[i]
		if sampleKey(KeyOf(w, mo)) {
			if sampledWorkload == nil {
				sampledWorkload = &w
			}
		} else if unsampledWorkload == nil {
			unsampledWorkload = &w
		}
	}

	c := New()
	c.SetVerifyMode(VerifySampled)
	checked := int64(0)
	if sampledWorkload != nil {
		if _, _, err := c.Compile(context.Background(), *sampledWorkload, mo); err != nil {
			t.Fatal(err)
		}
		checked++
		if !c.Verified(*sampledWorkload, mo) {
			t.Errorf("sampled workload %s not verified", sampledWorkload.Name)
		}
	}
	if unsampledWorkload != nil {
		if _, _, err := c.Compile(context.Background(), *unsampledWorkload, mo); err != nil {
			t.Fatal(err)
		}
		if c.Verified(*unsampledWorkload, mo) {
			t.Errorf("unsampled workload %s unexpectedly verified", unsampledWorkload.Name)
		}
	}
	if st := c.Stats(); st.VerifyChecked != checked || st.VerifyFailed != 0 {
		t.Errorf("sampled stats = %+v, want checked=%d failed=0", st, checked)
	}

	off := New()
	if w := sampledWorkload; w != nil {
		if _, _, err := off.Compile(context.Background(), *w, mo); err != nil {
			t.Fatal(err)
		}
		if st := off.Stats(); st.VerifyChecked != 0 {
			t.Errorf("off-mode cache checked %d programs", st.VerifyChecked)
		}
		if off.Verified(*w, mo) {
			t.Error("off-mode entry marked verified")
		}
	}
}

// TestVerifyFullSkipsNonIdempotent: markless and relaxed-alloc builds
// have no contract to check and must not fail or count as checked.
func TestVerifyFullSkipsNonIdempotent(t *testing.T) {
	w, ok := workloads.ByName("bzip2")
	if !ok {
		t.Fatal("bzip2 workload missing")
	}
	c := New()
	c.SetVerifyMode(VerifyFull)
	for _, mo := range []codegen.ModuleOptions{
		{Core: core.DefaultOptions()},
		{Idempotent: true, Core: core.DefaultOptions(), RelaxedAlloc: true},
	} {
		if _, _, err := c.Compile(context.Background(), w, mo); err != nil {
			t.Fatalf("compile %+v: %v", mo, err)
		}
		if c.Verified(w, mo) {
			t.Errorf("uncheckable build %+v marked verified", mo)
		}
	}
	if st := c.Stats(); st.VerifyChecked != 0 || st.VerifyFailed != 0 {
		t.Errorf("uncheckable builds counted: %+v", st)
	}
}

// TestVerifyFullPassesSuite: the full workload suite compiles and
// verifies through the cache in full mode.
func TestVerifyFullPassesSuite(t *testing.T) {
	mo := codegen.ModuleOptions{Idempotent: true, Core: core.DefaultOptions()}
	c := New()
	c.SetVerifyMode(VerifyFull)
	for _, w := range workloads.All() {
		if _, _, err := c.Compile(context.Background(), w, mo); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if !c.Verified(w, mo) {
			t.Errorf("%s: not verified in full mode", w.Name)
		}
	}
	st := c.Stats()
	if st.VerifyFailed != 0 {
		t.Errorf("full-mode suite: %+v", st)
	}
	if st.VerifyChecked != int64(len(workloads.All())) {
		t.Errorf("VerifyChecked = %d, want %d", st.VerifyChecked, len(workloads.All()))
	}
}
