package buildcache

import (
	"fmt"
	"time"

	"idemproc/internal/codegen"
	"idemproc/internal/verify"
)

// VerifyMode selects how much of the cache's output is re-checked by the
// internal/verify translation validator before it is served.
//
//   - VerifyOff: nothing is checked (the default; matches the cache's
//     historical behavior and digests).
//   - VerifySampled: a deterministic 1-in-4 sample of fresh compiles is
//     checked (sampled by key hash, so the same keys are checked on every
//     run), and every disk-tier artifact is checked after decode — the
//     artifact file is the only input the compiler did not just produce.
//   - VerifyFull: every fresh compile and every disk artifact is checked.
//
// A fresh compile that fails verification becomes a memoized build error:
// serving a program the validator rejects would hand out code whose
// recovery semantics are broken. A disk artifact that fails verification
// is never an error — it is pruned and re-booked as a disk miss, exactly
// like a corrupt artifact, and the request falls through to a compile.
type VerifyMode uint8

const (
	VerifyOff VerifyMode = iota
	VerifySampled
	VerifyFull
)

func (m VerifyMode) String() string {
	switch m {
	case VerifySampled:
		return "sampled"
	case VerifyFull:
		return "full"
	}
	return "off"
}

// ParseVerifyMode parses the flag spelling ("off", "sampled", "full");
// the empty string is off.
func ParseVerifyMode(s string) (VerifyMode, error) {
	switch s {
	case "", "off":
		return VerifyOff, nil
	case "sampled":
		return VerifySampled, nil
	case "full":
		return VerifyFull, nil
	}
	return VerifyOff, fmt.Errorf("buildcache: unknown verify mode %q (want off, sampled, or full)", s)
}

// SetVerifyMode configures verification for subsequent builds. Set it
// right after construction: entries built before the call keep whatever
// status they were built with.
func (c *Cache) SetVerifyMode(m VerifyMode) { c.verifyMode = m }

// VerifyMode returns the configured mode.
func (c *Cache) VerifyMode() VerifyMode { return c.verifyMode }

// verifySampleDivisor: sampled mode checks 1 in this many fresh compiles.
const verifySampleDivisor = 4

// sampleKey deterministically selects keys for sampled verification
// (FNV-1a over the key fields, so a given workload/options pair is either
// always or never in the sample).
func sampleKey(key Key) bool {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff
		h *= prime64
	}
	mix(key.Workload)
	mix(key.Options)
	h ^= uint64(key.MemWords)
	h *= prime64
	return h%verifySampleDivisor == 0
}

// verifyFresh reports whether a fresh compile for key should be checked
// under the current mode.
func (c *Cache) verifyFresh(key Key) bool {
	switch c.verifyMode {
	case VerifyFull:
		return true
	case VerifySampled:
		return sampleKey(key)
	}
	return false
}

// runVerify checks p against the §2.1 criterion, maintaining the checked
// counter and the cost ledger (verifyNanos feeds the BENCH_serve.json
// verify_ns section). It returns nil when there is nothing to check:
// relaxed-alloc builds legitimately violate the register constraint, and
// markless programs carry no recovery contract.
func (c *Cache) runVerify(p *codegen.Program, mo codegen.ModuleOptions) *verify.Report {
	if p == nil || p.Marks == 0 || mo.RelaxedAlloc {
		return nil
	}
	c.verifyChecked.Add(1)
	t0 := time.Now()
	rep := verify.Verify(p)
	c.verifyNanos.Add(time.Since(t0).Nanoseconds())
	if rep.Skipped {
		return nil
	}
	if !rep.OK() {
		c.verifyFailed.Add(1)
	}
	return rep
}
