package buildcache

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/machine"
	"idemproc/internal/workloads"
)

func flushDisk(t *testing.T, c *Cache) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Disk().Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

func artifactFiles(t *testing.T, dir string) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".art" {
			files = append(files, path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestDiskTierWarmRestart is the core persistence contract: a second
// cache over the same directory (a simulated process restart) serves
// every previously compiled key from disk — zero compiles, one disk hit
// per key — and the served Programs are byte-identical to the originals.
func TestDiskTierWarmRestart(t *testing.T) {
	dir := t.TempDir()
	w := testWorkload(t)
	capped := core.DefaultOptions()
	capped.MaxRegionSize = 8
	configs := []codegen.ModuleOptions{
		{Core: core.DefaultOptions()},
		{Idempotent: true, Core: core.DefaultOptions()},
		{Idempotent: true, Core: capped},
	}

	c1 := NewBoundedDisk(0, dir)
	originals := make([][]byte, len(configs))
	for i, mo := range configs {
		p, st, err := c1.Compile(context.Background(), w, mo)
		if err != nil {
			t.Fatal(err)
		}
		originals[i] = codegen.EncodeProgram(p, st)
	}
	flushDisk(t, c1)
	if st := c1.Stats(); st.Compiles != int64(len(configs)) || st.DiskWrites != int64(len(configs)) {
		t.Fatalf("first run: %d compiles / %d writes, want %d of each", st.Compiles, st.DiskWrites, len(configs))
	}
	if got := len(artifactFiles(t, dir)); got != len(configs) {
		t.Fatalf("%d artifact files on disk, want %d", got, len(configs))
	}

	// "Restart": a fresh cache over the same directory.
	c2 := NewBoundedDisk(0, dir)
	for i, mo := range configs {
		p, st, err := c2.Compile(context.Background(), w, mo)
		if err != nil {
			t.Fatal(err)
		}
		if enc := codegen.EncodeProgram(p, st); !bytes.Equal(enc, originals[i]) {
			t.Fatalf("config %d: disk-served artifact differs from original compile", i)
		}
		// The served Program must run (predecode was repopulated).
		m := machine.New(p, machine.Config{BufferStores: true})
		if _, err := m.Run(w.Args...); err != nil {
			t.Fatalf("config %d: disk-served program failed to run: %v", i, err)
		}
	}
	st := c2.Stats()
	if st.Compiles != 0 {
		t.Fatalf("warm restart ran %d compiles, want 0", st.Compiles)
	}
	if st.DiskHits != int64(len(configs)) || st.DiskMisses != 0 || st.DiskCorrupt != 0 {
		t.Fatalf("warm restart: %d disk hits / %d misses / %d corrupt, want %d/0/0",
			st.DiskHits, st.DiskMisses, st.DiskCorrupt, len(configs))
	}
	// Memory-tier accounting is unchanged by the disk tier: each key was
	// a memory miss (entering the singleflight), then resident.
	if st.Misses != int64(len(configs)) || st.Distinct != len(configs) {
		t.Fatalf("warm restart: %d memory misses / %d distinct, want %d each", st.Misses, st.Distinct, len(configs))
	}
	// A repeat request is a plain memory hit: the disk is not re-read.
	if _, _, err := c2.Compile(context.Background(), w, configs[0]); err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.DiskHits != int64(len(configs)) {
		t.Fatalf("memory hit re-read the disk: %d disk hits", st.DiskHits)
	}
}

// TestDiskCorruptArtifactsRecompile covers the self-healing contract:
// truncated and bit-flipped artifacts count as corrupt (and misses), the
// invalid file is removed, and the request transparently recompiles to a
// correct Program.
func TestDiskCorruptArtifactsRecompile(t *testing.T) {
	w := testWorkload(t)
	mo := codegen.ModuleOptions{Idempotent: true, Core: core.DefaultOptions()}

	corruptions := []struct {
		name string
		mut  func(data []byte) []byte
	}{
		{"truncate", func(data []byte) []byte { return data[:len(data)/2] }},
		{"bitflip", func(data []byte) []byte {
			out := append([]byte{}, data...)
			out[len(out)*3/4] ^= 0x10 // flip inside the payload
			return out
		}},
		{"stale-version", func(data []byte) []byte {
			out := append([]byte{}, data...)
			out[len(artifactMagic)] ^= 0xff // the uvarint version byte
			return out
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			c1 := NewBoundedDisk(0, dir)
			p, st, err := c1.Compile(context.Background(), w, mo)
			if err != nil {
				t.Fatal(err)
			}
			want := codegen.EncodeProgram(p, st)
			flushDisk(t, c1)

			files := artifactFiles(t, dir)
			if len(files) != 1 {
				t.Fatalf("%d artifacts, want 1", len(files))
			}
			data, err := os.ReadFile(files[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(files[0], tc.mut(data), 0o644); err != nil {
				t.Fatal(err)
			}

			c2 := NewBoundedDisk(0, dir)
			p2, st2, err := c2.Compile(context.Background(), w, mo)
			if err != nil {
				t.Fatalf("request over corrupt artifact: %v", err)
			}
			if !bytes.Equal(codegen.EncodeProgram(p2, st2), want) {
				t.Fatal("recompile after corruption produced a different artifact")
			}
			s := c2.Stats()
			if s.DiskCorrupt != 1 || s.DiskMisses != 1 || s.DiskHits != 0 {
				t.Fatalf("got %d corrupt / %d misses / %d hits, want 1/1/0", s.DiskCorrupt, s.DiskMisses, s.DiskHits)
			}
			if s.Compiles != 1 {
				t.Fatalf("got %d compiles, want 1 (transparent recompile)", s.Compiles)
			}
			// The recompile re-persists: after a flush the artifact is valid
			// again and a third cache serves it from disk.
			flushDisk(t, c2)
			c3 := NewBoundedDisk(0, dir)
			if _, _, err := c3.Compile(context.Background(), w, mo); err != nil {
				t.Fatal(err)
			}
			if s := c3.Stats(); s.DiskHits != 1 || s.Compiles != 0 {
				t.Fatalf("self-heal failed: %d disk hits / %d compiles, want 1/0", s.DiskHits, s.Compiles)
			}
		})
	}
}

// TestDiskMissingArtifactIsMissNotCorrupt distinguishes the cold-start
// case from corruption in the counters.
func TestDiskMissingArtifactIsMissNotCorrupt(t *testing.T) {
	c := NewBoundedDisk(0, t.TempDir())
	if _, _, err := c.Compile(context.Background(), testWorkload(t),
		codegen.ModuleOptions{Core: core.DefaultOptions()}); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.DiskMisses != 1 || s.DiskCorrupt != 0 || s.Compiles != 1 {
		t.Fatalf("cold start: %d misses / %d corrupt / %d compiles, want 1/0/1", s.DiskMisses, s.DiskCorrupt, s.Compiles)
	}
}

// TestDiskErrorsNotPersisted: memoized compile failures stay memory-only
// (an error artifact would have nothing to serve).
func TestDiskErrorsNotPersisted(t *testing.T) {
	dir := t.TempDir()
	c := NewBoundedDisk(0, dir)
	w := workloads.Workload{Name: "broken-synthetic", Source: "func main(", MemWords: 1024}
	if _, _, err := c.Compile(context.Background(), w, codegen.ModuleOptions{Core: core.DefaultOptions()}); err == nil {
		t.Fatal("broken workload compiled successfully")
	}
	flushDisk(t, c)
	if files := artifactFiles(t, dir); len(files) != 0 {
		t.Fatalf("error entry persisted %d artifacts", len(files))
	}
}

// TestDiskDistinctFingerprintsDistinctArtifacts ties the fingerprint
// fail-closed pin to persistence: every distinguishable option set must
// map to its own artifact path.
func TestDiskDistinctFingerprintsDistinctArtifacts(t *testing.T) {
	d := newDisk(t.TempDir())
	w := testWorkload(t)
	capped := core.DefaultOptions()
	capped.MaxRegionSize = 8
	seen := map[string]int{}
	for i, mo := range []codegen.ModuleOptions{
		{Core: core.DefaultOptions()},
		{Idempotent: true, Core: core.DefaultOptions()},
		{Idempotent: true, Core: capped},
		{Idempotent: true, PureCalls: true, Core: core.DefaultOptions()},
	} {
		path := d.path(KeyOf(w, mo))
		if prev, dup := seen[path]; dup {
			t.Fatalf("configs %d and %d share artifact path %s", prev, i, path)
		}
		seen[path] = i
	}
	// Different memory sizes separate too.
	w2 := w
	w2.MemWords++
	if d.path(KeyOf(w, codegen.ModuleOptions{})) == d.path(KeyOf(w2, codegen.ModuleOptions{})) {
		t.Fatal("memWords not part of the artifact path")
	}
}

// TestDiskScan checks the warm-start scan: it reports valid artifacts
// and prunes invalid ones.
func TestDiskScan(t *testing.T) {
	dir := t.TempDir()
	c := NewBoundedDisk(0, dir)
	w := testWorkload(t)
	for _, mo := range []codegen.ModuleOptions{
		{Core: core.DefaultOptions()},
		{Idempotent: true, Core: core.DefaultOptions()},
	} {
		if _, _, err := c.Compile(context.Background(), w, mo); err != nil {
			t.Fatal(err)
		}
	}
	flushDisk(t, c)

	files := artifactFiles(t, dir)
	if len(files) != 2 {
		t.Fatalf("%d artifacts, want 2", len(files))
	}
	res := c.Disk().Scan()
	if res.Entries != 2 || res.Corrupt != 0 || res.Bytes <= 0 {
		t.Fatalf("scan of healthy store: %+v", res)
	}

	// Corrupt one file: the next scan counts and removes it.
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	res = c.Disk().Scan()
	if res.Entries != 1 || res.Corrupt != 1 {
		t.Fatalf("scan of damaged store: %+v", res)
	}
	if _, err := os.Stat(files[0]); !os.IsNotExist(err) {
		t.Fatalf("corrupt artifact not pruned: %v", err)
	}
	if got := len(artifactFiles(t, dir)); got != 1 {
		t.Fatalf("%d artifacts after prune, want 1", got)
	}
}

// TestDiskTierWithEviction: an evicted key rebuilds from disk, not the
// compiler — the disk tier turns eviction churn into cheap reloads.
func TestDiskTierWithEviction(t *testing.T) {
	dir := t.TempDir()
	w := testWorkload(t)
	configs := make([]codegen.ModuleOptions, 3)
	for i := range configs {
		o := core.DefaultOptions()
		o.MaxRegionSize = 8 * (i + 1)
		configs[i] = codegen.ModuleOptions{Idempotent: true, Core: o}
	}
	probe := New()
	if _, _, err := probe.Compile(context.Background(), w, configs[0]); err != nil {
		t.Fatal(err)
	}
	bound := probe.Stats().BytesInUse * 3 / 2

	c := NewBoundedDisk(bound, dir)
	for _, mo := range configs {
		if _, _, err := c.Compile(context.Background(), w, mo); err != nil {
			t.Fatal(err)
		}
	}
	flushDisk(t, c)
	if st := c.Stats(); st.Evictions == 0 {
		t.Skipf("bound %d evicted nothing; eviction covered elsewhere", bound)
	}
	// configs[0] was evicted; re-requesting it must reload from disk.
	before := c.Stats()
	if _, _, err := c.Compile(context.Background(), w, configs[0]); err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	if after.Compiles != before.Compiles {
		t.Fatalf("evicted key recompiled (%d -> %d compiles) instead of reloading", before.Compiles, after.Compiles)
	}
	if after.DiskHits != before.DiskHits+1 {
		t.Fatalf("evicted key did not hit disk: %d -> %d disk hits", before.DiskHits, after.DiskHits)
	}
}
