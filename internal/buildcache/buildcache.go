// Package buildcache memoizes workload compilation for the experiment
// drivers. Every figure of the paper's evaluation compiles the same
// (workload, options) pairs — Fig. 10 and Fig. 12 alone rebuild the full
// suite twice each — so the drivers route all compiles through a shared,
// concurrency-safe, content-keyed cache: at most one compile ever runs
// per distinct key, concurrent requesters for the same key block on the
// in-flight build (singleflight), and the resulting *codegen.Program is
// shared by every subsequent simulator run (safe because a linked Program
// is read-only — see the codegen.Program immutability contract).
package buildcache

import (
	"sync"
	"time"

	"idemproc/internal/codegen"
	"idemproc/internal/machine"
	"idemproc/internal/workloads"
)

// Key identifies one distinct compile: the workload (workload sources are
// static, so the name identifies the module), the memory size it is
// linked for, and the canonical options fingerprint.
type Key struct {
	Workload string
	MemWords int
	Options  string
}

// KeyOf builds the cache key for compiling w under mo.
func KeyOf(w workloads.Workload, mo codegen.ModuleOptions) Key {
	return Key{Workload: w.Name, MemWords: w.MemWords, Options: mo.Fingerprint()}
}

// entry is one cache slot. done is closed when the compile finishes;
// waiters block on it and then read the immutable result fields.
type entry struct {
	done  chan struct{}
	prog  *codegen.Program
	stats *codegen.BuildStats
	err   error
}

// Cache is a concurrency-safe compile cache. The zero value is not
// usable; call New.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*entry

	hits, misses int64
	compileNanos int64
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{entries: map[Key]*entry{}}
}

// Compile returns the compiled program for (w, mo), building it on first
// request and serving the memoized result afterwards. Concurrent calls
// with the same key perform exactly one compile. Errors are memoized too
// (a workload that fails to build fails identically for every figure).
//
// The returned Program and BuildStats are shared across callers and must
// be treated as immutable.
func (c *Cache) Compile(w workloads.Workload, mo codegen.ModuleOptions) (*codegen.Program, *codegen.BuildStats, error) {
	key := KeyOf(w, mo)

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-e.done
		return e.prog, e.stats, e.err
	}
	e := &entry{done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	// Compile outside the lock so distinct keys build in parallel. The
	// deferred close guarantees waiters are released even if the compile
	// panics (the panic still propagates to this caller).
	defer close(e.done)
	start := time.Now()
	e.prog, e.stats, e.err = codegen.CompileModuleOpts(w.Module(), "main", w.MemWords, mo)
	if e.err == nil {
		// Predecode at compile time: the decoded form is memoized per
		// Program (see machine.Predecode), so paying the pass here — once,
		// inside the singleflight — means experiment workers find it ready
		// and never decode on the simulation path.
		machine.Predecode(e.prog)
	}
	c.mu.Lock()
	c.compileNanos += time.Since(start).Nanoseconds()
	c.mu.Unlock()
	return e.prog, e.stats, e.err
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	// Hits counts requests served from an existing entry (including
	// requests that waited on an in-flight compile); Misses counts
	// requests that triggered a compile. Hits+Misses is the total request
	// count and Misses equals Distinct.
	Hits, Misses int64
	// Distinct is the number of distinct (workload, options) pairs ever
	// compiled.
	Distinct int
	// CompileTime is the total wall time spent inside compiles, summed
	// across workers (it can exceed elapsed wall time under parallelism).
	CompileTime time.Duration
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:        c.hits,
		Misses:      c.misses,
		Distinct:    len(c.entries),
		CompileTime: time.Duration(c.compileNanos),
	}
}
