// Package buildcache memoizes workload compilation for the experiment
// drivers and the idemd analysis daemon. Every figure of the paper's
// evaluation compiles the same (workload, options) pairs — Fig. 10 and
// Fig. 12 alone rebuild the full suite twice each — so the drivers route
// all compiles through a shared, concurrency-safe, content-keyed cache:
// at most one compile ever runs per distinct key, concurrent requesters
// for the same key block on the in-flight build (singleflight), and the
// resulting *codegen.Program is shared by every subsequent simulator run
// (safe because a linked Program is read-only — see the codegen.Program
// immutability contract).
//
// Two properties matter for the long-running service (cmd/idemd) beyond
// the batch drivers:
//
//   - Cancellation: Compile takes a context. The compile itself runs on a
//     detached goroutine owned by the cache, so a canceled requester
//     returns immediately with ctx.Err() while the build keeps going and
//     lands in the cache for the next requester. Waiters on an in-flight
//     entry likewise unblock on cancellation instead of riding out the
//     compile.
//
//   - Bounded memory: NewBounded caps the (estimated) resident bytes of
//     completed entries with LRU eviction, so a daemon serving an open-
//     ended mix of sources and option fingerprints can run indefinitely.
//     Evicting an entry drops the cache's reference (and the memoized
//     predecode, see machine.DropPredecode); Programs already handed out
//     remain valid because they are immutable.
package buildcache

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"idemproc/internal/codegen"
	"idemproc/internal/machine"
	"idemproc/internal/workloads"
)

// Key identifies one distinct compile: the workload (workload sources are
// static, so the name identifies the module; synthetic source workloads
// must embed a content hash in the name), the memory size it is linked
// for, and the canonical options fingerprint.
type Key struct {
	Workload string
	MemWords int
	Options  string
}

// KeyOf builds the cache key for compiling w under mo.
func KeyOf(w workloads.Workload, mo codegen.ModuleOptions) Key {
	return Key{Workload: w.Name, MemWords: w.MemWords, Options: mo.Fingerprint()}
}

// entry is one cache slot. done is closed when the compile finishes;
// waiters block on it and then read the immutable result fields. elem is
// the entry's LRU node (nil while the compile is in flight: only
// completed entries participate in eviction).
type entry struct {
	key   Key
	done  chan struct{}
	prog  *codegen.Program
	stats *codegen.BuildStats
	err   error
	// verified is set when the translation validator checked this program
	// and found no violations (see VerifyMode); written before done is
	// closed, read only after.
	verified bool

	cost int64
	elem *list.Element
}

// Cache is a concurrency-safe compile cache. The zero value is not
// usable; call New or NewBounded.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*entry
	// lru orders completed entries most-recently-used first; bytes is the
	// summed cost of entries on it. maxBytes <= 0 means unbounded.
	lru      *list.List
	bytes    int64
	maxBytes int64

	// disk is the optional write-behind persistence tier (nil when the
	// cache is memory-only). It is only consulted on memory misses and
	// written off the singleflight path.
	disk *Disk

	// verifyMode is fixed at configuration time (SetVerifyMode), before
	// the cache starts serving.
	verifyMode VerifyMode

	// Counters are atomics: they are written on the request path (under
	// mu or not) and read lock-free by Stats, which /metrics scrapes
	// concurrently with in-flight compiles.
	hits, misses atomic.Int64
	compiles     atomic.Int64
	evictions    atomic.Int64
	compileNanos atomic.Int64

	verifyChecked  atomic.Int64
	verifyFailed   atomic.Int64
	verifyRejected atomic.Int64
	verifyNanos    atomic.Int64
}

// New returns an empty, unbounded cache.
func New() *Cache { return NewBounded(0) }

// NewBounded returns an empty cache that evicts least-recently-used
// completed entries once their estimated resident size exceeds maxBytes
// (<= 0 means unbounded). A single entry larger than the bound still
// caches (there is no smaller state the cache could be in), but any
// older entries are evicted to make way for it.
func NewBounded(maxBytes int64) *Cache {
	return &Cache{entries: map[Key]*entry{}, lru: list.New(), maxBytes: maxBytes}
}

// NewBoundedDisk is NewBounded with a persistent artifact tier rooted at
// dir: memory misses try the disk before compiling, and fresh compiles
// are written behind as content-keyed artifact files (see Disk). An
// empty dir means no disk tier.
func NewBoundedDisk(maxBytes int64, dir string) *Cache {
	c := NewBounded(maxBytes)
	if dir != "" {
		c.disk = newDisk(dir)
	}
	return c
}

// Disk returns the cache's persistence tier, or nil for memory-only
// caches.
func (c *Cache) Disk() *Disk { return c.disk }

// Compile returns the compiled program for (w, mo), building it on first
// request and serving the memoized result afterwards. Concurrent calls
// with the same key perform exactly one compile. Errors are memoized too
// (a workload that fails to build fails identically for every figure).
//
// The compile runs on a cache-owned goroutine: if ctx is canceled the
// caller returns ctx.Err() immediately, but the build completes and is
// cached for later requesters (and waiters on an in-flight entry stop
// waiting without discarding the build).
//
// The returned Program and BuildStats are shared across callers and must
// be treated as immutable.
func (c *Cache) Compile(ctx context.Context, w workloads.Workload, mo codegen.ModuleOptions) (*codegen.Program, *codegen.BuildStats, error) {
	key := KeyOf(w, mo)

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits.Add(1)
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		return c.wait(ctx, e)
	}
	e := &entry{key: key, done: make(chan struct{})}
	c.entries[key] = e
	c.misses.Add(1)
	c.mu.Unlock()

	go c.build(e, w, mo)
	return c.wait(ctx, e)
}

// wait blocks until e's compile completes or ctx is canceled.
func (c *Cache) wait(ctx context.Context, e *entry) (*codegen.Program, *codegen.BuildStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Fast path: a completed entry never blocks (and never loses the
	// select race to an already-canceled context).
	select {
	case <-e.done:
		return e.prog, e.stats, e.err
	default:
	}
	select {
	case <-e.done:
		return e.prog, e.stats, e.err
	case <-ctx.Done():
		return nil, nil, ctx.Err()
	}
}

// build runs the compile for e and publishes the result. It owns the
// entry until done is closed. A panicking compile (e.g. a workload whose
// source does not even parse — Workload.Module panics) is converted into
// a memoized error instead of killing the process: the cache backs a
// long-running daemon that must survive hostile inputs.
func (c *Cache) build(e *entry, w workloads.Workload, mo codegen.ModuleOptions) {
	var compiled bool
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			e.prog, e.stats = nil, nil
			e.err = fmt.Errorf("buildcache: compile %s: panic: %v", w.Name, r)
		}
		if compiled {
			c.compileNanos.Add(time.Since(start).Nanoseconds())
		}
		close(e.done)

		c.mu.Lock()
		// The entry may have raced with an eviction sweep only after
		// insertion below, so this is the unique insertion point.
		if _, still := c.entries[e.key]; still {
			e.cost = entryCost(e)
			e.elem = c.lru.PushFront(e)
			c.bytes += e.cost
			c.evict()
		}
		c.mu.Unlock()
	}()

	// Second tier: a valid persisted artifact serves the miss without
	// compiling (the decoded Program is as immutable as a fresh one, so
	// it repopulates the LRU like any other entry). Disk failures of any
	// kind — missing, stale, corrupt — degrade to a recompile.
	if c.disk != nil {
		if p, st, ok := c.disk.load(e.key); ok {
			// Every decoded artifact is re-verified when verification is on:
			// the artifact file is the one input this process's compiler did
			// not just produce. A rejection mirrors the corrupt-artifact
			// contract — prune, re-book as a disk miss, recompile — and is
			// never an error.
			if c.verifyMode != VerifyOff {
				if rep := c.runVerify(p, mo); rep != nil && !rep.OK() {
					c.verifyRejected.Add(1)
					c.disk.reject(e.key)
					p, st = nil, nil
				} else {
					e.verified = rep != nil
				}
			}
			if p != nil {
				e.prog, e.stats = p, st
				machine.Predecode(e.prog)
				return
			}
		}
	}

	compiled = true
	c.compiles.Add(1)
	e.prog, e.stats, e.err = codegen.CompileModuleOpts(w.Module(), "main", w.MemWords, mo)
	if e.err == nil && c.verifyFresh(e.key) {
		if rep := c.runVerify(e.prog, mo); rep != nil {
			if rep.OK() {
				e.verified = true
			} else {
				// A compile the validator rejects must not be served or
				// persisted; memoize the failure like any other build error.
				e.prog, e.stats = nil, nil
				e.err = fmt.Errorf("buildcache: verify %s: %s", w.Name, rep.Summary())
			}
		}
	}
	if e.err == nil {
		// Predecode at compile time: the decoded form is memoized per
		// Program (see machine.Predecode), so paying the pass here — once,
		// inside the singleflight — means experiment workers find it ready
		// and never decode on the simulation path.
		machine.Predecode(e.prog)
		if c.disk != nil {
			// Write-behind: persist off the singleflight path so waiters
			// are not held for disk I/O.
			c.disk.storeAsync(e.key, e.prog, e.stats)
		}
	}
}

// evict drops LRU completed entries until the cache fits its bound.
// The sole entry left is kept only when it alone exceeds the bound
// (there is no smaller non-empty state); the old `lru.Len() > 1` guard
// stopped one entry early unconditionally, so a single entry costlier
// than maxBytes pinned the cache above its budget forever once anything
// else was resident alongside it. Caller holds c.mu.
func (c *Cache) evict() {
	for c.maxBytes > 0 && c.bytes > c.maxBytes {
		el := c.lru.Back()
		if el == nil {
			return
		}
		if el == c.lru.Front() && el.Value.(*entry).cost > c.maxBytes {
			// The just-inserted entry is itself oversized: keep it (evicting
			// the result we were asked for would thrash) and accept the
			// overshoot until the next insert pushes it out.
			return
		}
		ev := el.Value.(*entry)
		c.lru.Remove(el)
		delete(c.entries, ev.key)
		c.bytes -= ev.cost
		c.evictions.Add(1)
		if ev.prog != nil {
			// Drop the memoized predecode alongside the Program so the
			// eviction actually frees memory (the predecode cache keys on
			// Program identity and would otherwise pin it forever).
			machine.DropPredecode(ev.prog)
		}
	}
}

// Cost model: entries are sized by a documented estimate, not exact heap
// accounting. Per instruction we charge the encoded isa.Instr and the
// FuncOf string header (perInstrCost), plus the predecoded record the
// cache pins alongside every resident Program (perInstrPredecodeCost —
// build() predecodes each entry at insert, and machine.DropPredecode
// only runs at evict, so the memo's lifetime is exactly the entry's and
// omitting it undercounted resident bytes by roughly a third); symbols
// and global words are charged flat. The estimate only needs to be
// proportional to the real footprint for LRU eviction to bound memory.
const (
	entryBaseCost = 1 << 10 // entry + Program + BuildStats fixed parts
	perInstrCost  = 128
	// perInstrPredecodeCost covers the decoded record machine.Predecode
	// memoizes per instruction (~48 bytes of fields plus slice/alignment
	// overhead).
	perInstrPredecodeCost = 64
	perSymbolCost         = 64
	perGlobalWord         = 8
	errorEntryCost        = entryBaseCost // memoized failures hold only an error
)

// entryCost estimates the resident bytes of a completed entry.
func entryCost(e *entry) int64 {
	if e.prog == nil {
		return errorEntryCost
	}
	p := e.prog
	cost := int64(entryBaseCost)
	cost += int64(len(p.Instrs)) * (perInstrCost + perInstrPredecodeCost)
	cost += int64(len(p.FuncEntry)+len(p.GlobalBase)) * perSymbolCost
	cost += p.GlobalEnd * perGlobalWord
	return cost
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	// Hits counts requests served from an existing entry (including
	// requests that waited on an in-flight build); Misses counts
	// requests that triggered a build — a compile, or a disk-tier load.
	// Hits+Misses is the total request count; Misses >= Distinct once
	// eviction is on, because evicted keys rebuild.
	Hits, Misses int64
	// Distinct is the number of (workload, options) pairs currently
	// resident (including in-flight compiles).
	Distinct int
	// CompileTime is the total wall time spent inside compiles, summed
	// across workers (it can exceed elapsed wall time under parallelism).
	CompileTime time.Duration
	// Compiles counts actual codegen runs. Without a disk tier it equals
	// Misses; with one it can be lower, because misses served from a
	// persisted artifact skip the compiler entirely.
	Compiles int64
	// Evictions counts entries dropped by the byte bound; BytesInUse is
	// the estimated resident size of completed entries; MaxBytes is the
	// configured bound (0 = unbounded).
	Evictions  int64
	BytesInUse int64
	MaxBytes   int64
	// Disk tier counters (all zero for memory-only caches). DiskHits
	// counts misses served from a persisted artifact; DiskMisses counts
	// lookups the disk could not serve (no artifact, stale header, or
	// corrupt payload — DiskCorrupt is the subset that found an invalid
	// file); DiskWrites counts artifacts persisted.
	DiskHits, DiskMisses, DiskWrites, DiskCorrupt int64
	// Verification counters (all zero when VerifyMode is off).
	// VerifyChecked counts validator runs over fresh compiles and decoded
	// artifacts; VerifyFailed counts runs that found violations;
	// VerifyRejectedArtifacts is the subset of failures that pruned a
	// decode-clean disk artifact. VerifyNanos is wall time spent inside
	// the validator, the numerator of the bench guard's per-check cost.
	VerifyChecked, VerifyFailed, VerifyRejectedArtifacts int64
	VerifyNanos                                          int64
}

// Stats returns a snapshot of the cache counters. The monotonic counters
// (hits, misses, evictions, compile time) are read atomically and may be
// fractionally newer than the mu-guarded occupancy numbers; /metrics
// scrapes tolerate that.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	distinct := len(c.entries)
	bytes := c.bytes
	c.mu.Unlock()
	st := Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Compiles:    c.compiles.Load(),
		Distinct:    distinct,
		CompileTime: time.Duration(c.compileNanos.Load()),
		Evictions:   c.evictions.Load(),
		BytesInUse:  bytes,
		MaxBytes:    c.maxBytes,
	}
	if c.disk != nil {
		st.DiskHits = c.disk.hits.Load()
		st.DiskMisses = c.disk.misses.Load()
		st.DiskWrites = c.disk.writes.Load()
		st.DiskCorrupt = c.disk.corrupt.Load()
	}
	st.VerifyChecked = c.verifyChecked.Load()
	st.VerifyFailed = c.verifyFailed.Load()
	st.VerifyRejectedArtifacts = c.verifyRejected.Load()
	st.VerifyNanos = c.verifyNanos.Load()
	return st
}

// Verified reports whether the cached entry for (w, mo) was checked by
// the translation validator and passed. It is false for entries that
// were not sampled, were skipped (markless or relaxed-alloc builds),
// are still in flight, or are not resident.
func (c *Cache) Verified(w workloads.Workload, mo codegen.ModuleOptions) bool {
	key := KeyOf(w, mo)
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-e.done:
		return e.verified
	default:
		return false
	}
}
