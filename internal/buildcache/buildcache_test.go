package buildcache

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/machine"
	"idemproc/internal/workloads"
)

func testWorkload(t *testing.T) workloads.Workload {
	t.Helper()
	w, ok := workloads.ByName("bzip2")
	if !ok {
		t.Fatal("workload bzip2 missing")
	}
	return w
}

// TestCompileOnceUnderConcurrency hammers one key from many goroutines
// and asserts exactly one compile ran (singleflight) and every caller
// got the same shared Program. Run under -race this also checks the
// synchronization of the entry handoff.
func TestCompileOnceUnderConcurrency(t *testing.T) {
	w := testWorkload(t)
	c := New()
	mo := codegen.ModuleOptions{Idempotent: true, Core: core.DefaultOptions()}

	const callers = 16
	progs := make([]*codegen.Program, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, st, err := c.Compile(context.Background(), w, mo)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			if p == nil || st == nil {
				t.Errorf("caller %d: nil result", i)
				return
			}
			progs[i] = p
		}(i)
	}
	wg.Wait()

	for i := 1; i < callers; i++ {
		if progs[i] != progs[0] {
			t.Fatalf("caller %d got a different Program than caller 0", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Distinct != 1 {
		t.Fatalf("got %d misses / %d distinct, want exactly one compile", st.Misses, st.Distinct)
	}
	if st.Hits != callers-1 {
		t.Fatalf("got %d hits, want %d", st.Hits, callers-1)
	}
	if st.CompileTime <= 0 {
		t.Fatalf("compile time not accounted: %v", st.CompileTime)
	}
}

// TestDistinctOptionsDistinctEntries checks that differing options
// (including nested core.Options fields) key separate cache entries.
func TestDistinctOptionsDistinctEntries(t *testing.T) {
	w := testWorkload(t)
	c := New()
	capped := core.DefaultOptions()
	capped.MaxRegionSize = 8
	configs := []codegen.ModuleOptions{
		{Core: core.DefaultOptions()},
		{Idempotent: true, Core: core.DefaultOptions()},
		{Idempotent: true, Core: capped},
	}
	var progs []*codegen.Program
	for _, mo := range configs {
		p, _, err := c.Compile(context.Background(), w, mo)
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, p)
	}
	if st := c.Stats(); st.Distinct != len(configs) || st.Misses != int64(len(configs)) {
		t.Fatalf("got %d distinct / %d misses, want %d of each", st.Distinct, st.Misses, len(configs))
	}
	for i := 0; i < len(progs); i++ {
		for j := i + 1; j < len(progs); j++ {
			if progs[i] == progs[j] {
				t.Fatalf("configs %d and %d aliased to one Program", i, j)
			}
		}
	}
	// Re-requesting an existing key must hit.
	if _, _, err := c.Compile(context.Background(), w, configs[0]); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("got %d hits after re-request, want 1", st.Hits)
	}
}

// TestConcurrentRunsMatchSerial proves the Program immutability contract
// the cache relies on: one cached Program backing many concurrent
// machines produces exactly the serial reference result. Run under
// -race this is the enforcement test for the contract documented on
// codegen.Program.
func TestConcurrentRunsMatchSerial(t *testing.T) {
	w := testWorkload(t)
	c := New()
	p, _, err := c.Compile(context.Background(), w, codegen.ModuleOptions{Idempotent: true, Core: core.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.Config{BufferStores: true, TrackPaths: true}

	ref := machine.New(p, cfg)
	refRet, err := ref.Run(w.Args...)
	if err != nil {
		t.Fatal(err)
	}

	const runners = 8
	var wg sync.WaitGroup
	for i := 0; i < runners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := machine.New(p, cfg)
			ret, err := m.Run(w.Args...)
			if err != nil {
				t.Errorf("runner %d: %v", i, err)
				return
			}
			if ret != refRet {
				t.Errorf("runner %d returned %d, serial reference returned %d", i, ret, refRet)
			}
			if m.Stats.Cycles != ref.Stats.Cycles || m.Stats.DynInstrs != ref.Stats.DynInstrs {
				t.Errorf("runner %d stats (%d cycles, %d instrs) != reference (%d, %d)",
					i, m.Stats.Cycles, m.Stats.DynInstrs, ref.Stats.Cycles, ref.Stats.DynInstrs)
			}
		}(i)
	}
	wg.Wait()
}

// TestFingerprintCoversAllFields pins the field counts of the two
// structs the fingerprint encodes (codegen.ModuleOptions and the nested
// core.Options). If either struct grows a field this fails, pointing at
// codegen.ModuleOptions.Fingerprint, which must be extended in lockstep
// or distinct configurations would silently alias to one cache entry.
// With the disk tier this pin is load-bearing for persistence too: the
// fingerprint is the artifact key on disk, so an unencoded field would
// alias artifacts across restarts and serve a Program compiled under
// different options. The fingerprint must fail closed.
func TestFingerprintCoversAllFields(t *testing.T) {
	if n := reflect.TypeOf(codegen.ModuleOptions{}).NumField(); n != 4 {
		t.Errorf("codegen.ModuleOptions has %d fields, fingerprint encodes 4: extend ModuleOptions.Fingerprint", n)
	}
	if n := reflect.TypeOf(core.Options{}).NumField(); n != 7 {
		t.Errorf("core.Options has %d fields, fingerprint encodes 7: extend ModuleOptions.Fingerprint", n)
	}

	// And the encoding must actually distinguish each boolean/int field.
	base := codegen.ModuleOptions{Core: core.DefaultOptions()}
	seen := map[string]string{base.Fingerprint(): "base"}
	variants := map[string]codegen.ModuleOptions{}
	add := func(name string, mo codegen.ModuleOptions) { variants[name] = mo }
	{
		mo := base
		mo.Idempotent = true
		add("Idempotent", mo)
	}
	{
		mo := base
		mo.RelaxedAlloc = true
		add("RelaxedAlloc", mo)
	}
	{
		mo := base
		mo.PureCalls = true
		add("PureCalls", mo)
	}
	flip := func(name string, f func(*core.Options)) {
		mo := base
		f(&mo.Core)
		add("Core."+name, mo)
	}
	flip("LoopHeuristic", func(o *core.Options) { o.LoopHeuristic = !o.LoopHeuristic })
	flip("RedElim", func(o *core.Options) { o.RedElim = !o.RedElim })
	flip("UnrollLoops", func(o *core.Options) { o.UnrollLoops = !o.UnrollLoops })
	flip("CutAtCalls", func(o *core.Options) { o.CutAtCalls = !o.CutAtCalls })
	flip("BalancedHeuristic", func(o *core.Options) { o.BalancedHeuristic = !o.BalancedHeuristic })
	flip("MaxRegionSize", func(o *core.Options) { o.MaxRegionSize = 64 })
	flip("PureFuncs", func(o *core.Options) { o.PureFuncs = map[string]bool{"f": true} })
	for name, mo := range variants {
		fp := mo.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("flipping %s produced the same fingerprint as %s: %q", name, prev, fp)
		}
		seen[fp] = name
	}
}

// slowWorkload synthesizes a source workload big enough that its compile
// takes measurable time (many independent functions), for cancellation
// tests that must observe an in-flight build.
func slowWorkload() workloads.Workload {
	var b []byte
	b = append(b, "global int g[4] = {1, 2, 3};\n"...)
	for i := 0; i < 160; i++ {
		b = append(b, []byte(fmt.Sprintf(
			"func f%d(int x) int { int s = 0; for (int i = 0; i < x; i = i + 1) { s = s + i * %d; } return s; }\n", i, i+1))...)
	}
	b = append(b, "func main(int n) int { int s = 0; for (int i = 0; i < n; i = i + 1) { s = s + i; } return s; }\n"...)
	return workloads.Workload{Name: "slow-synthetic", Source: string(b), Args: []uint64{8}, MemWords: 4096}
}

// TestCancelAbandonsInflightCompile checks the context contract: a
// canceled requester stops waiting on an in-flight singleflight entry
// immediately, the detached build still completes, and a later request
// is served from the cache as a hit.
func TestCancelAbandonsInflightCompile(t *testing.T) {
	w := slowWorkload()
	c := New()
	mo := codegen.ModuleOptions{Idempotent: true, Core: core.DefaultOptions()}

	// Trigger the compile from a background requester.
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, _, err := c.Compile(context.Background(), w, mo)
		done <- err
	}()
	<-started

	// A canceled waiter must return promptly with ctx.Err even while the
	// compile is in flight (or already finished — then it gets the
	// result; both are allowed, blocking until cancellation is not).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	waited := make(chan struct{})
	go func() {
		defer close(waited)
		_, _, err := c.Compile(ctx, w, mo)
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("canceled waiter: unexpected error %v", err)
		}
	}()
	select {
	case <-waited:
	case <-time.After(10 * time.Second):
		t.Fatal("canceled waiter did not return")
	}

	// The detached build completes and serves subsequent requests.
	if err := <-done; err != nil {
		t.Fatalf("background compile: %v", err)
	}
	p, _, err := c.Compile(context.Background(), w, mo)
	if err != nil || p == nil {
		t.Fatalf("post-compile request: %v", err)
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("got %d misses, want exactly one compile", st.Misses)
	}
}

// TestBoundedEviction drives distinct configurations through a cache
// whose byte bound fits roughly one program and asserts LRU eviction:
// evictions observed, occupancy bounded, evicted keys recompile (miss)
// while the resident key still hits.
func TestBoundedEviction(t *testing.T) {
	w := testWorkload(t)
	configs := make([]codegen.ModuleOptions, 4)
	for i := range configs {
		o := core.DefaultOptions()
		o.MaxRegionSize = 8 * (i + 1)
		configs[i] = codegen.ModuleOptions{Idempotent: true, Core: o}
	}

	// Size the bound from a real compile: big enough for one entry, too
	// small for two.
	probe := New()
	if _, _, err := probe.Compile(context.Background(), w, configs[0]); err != nil {
		t.Fatal(err)
	}
	bound := probe.Stats().BytesInUse * 3 / 2

	c := NewBounded(bound)
	for _, mo := range configs {
		if _, _, err := c.Compile(context.Background(), w, mo); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under bound %d (bytes in use %d)", bound, st.BytesInUse)
	}
	if st.BytesInUse > bound {
		t.Fatalf("bytes in use %d exceeds bound %d with %d entries", st.BytesInUse, bound, st.Distinct)
	}
	if st.MaxBytes != bound {
		t.Fatalf("MaxBytes = %d, want %d", st.MaxBytes, bound)
	}

	// The most recent config must still be resident (LRU keeps MRU)...
	before := c.Stats().Misses
	if _, _, err := c.Compile(context.Background(), w, configs[len(configs)-1]); err != nil {
		t.Fatal(err)
	}
	if after := c.Stats().Misses; after != before {
		t.Fatalf("MRU entry was evicted: misses went %d -> %d", before, after)
	}
	// ...and the oldest must have been evicted (recompiles as a miss).
	if _, _, err := c.Compile(context.Background(), w, configs[0]); err != nil {
		t.Fatal(err)
	}
	if after := c.Stats().Misses; after != before+1 {
		t.Fatalf("evicted entry did not recompile: misses %d, want %d", after, before+1)
	}
}

// insertCompleted places a synthetic completed entry of a given cost
// directly on the cache structures (white-box), mimicking build()'s
// insertion, and runs an eviction sweep.
func insertCompleted(c *Cache, name string, cost int64) {
	e := &entry{key: Key{Workload: name}, done: make(chan struct{}), cost: cost}
	close(e.done)
	c.mu.Lock()
	c.entries[e.key] = e
	e.elem = c.lru.PushFront(e)
	c.bytes += e.cost
	c.evict()
	c.mu.Unlock()
}

// TestEvictToBoundRegression pins the eviction semantics the old
// `lru.Len() > 1` guard got wrong: the sweep must evict all the way to
// the byte bound, and the sole remaining entry may exceed it only when
// that entry is itself larger than the whole budget (keep-one).
func TestEvictToBoundRegression(t *testing.T) {
	const bound = 100
	c := NewBounded(bound)

	// Entries that fit: eviction keeps occupancy at or under the bound.
	insertCompleted(c, "a", 40)
	insertCompleted(c, "b", 40)
	insertCompleted(c, "c", 40)
	if c.bytes > bound {
		t.Fatalf("bytes %d exceeds bound %d after fitting inserts", c.bytes, bound)
	}
	if c.lru.Len() != 2 {
		t.Fatalf("got %d resident entries, want 2 (a evicted)", c.lru.Len())
	}

	// An oversized insert evicts everything else and is kept alone above
	// the bound (the only alternative is caching nothing).
	insertCompleted(c, "big", 150)
	if c.lru.Len() != 1 {
		t.Fatalf("oversized insert left %d entries, want keep-one", c.lru.Len())
	}
	if _, ok := c.entries[Key{Workload: "big"}]; !ok {
		t.Fatal("oversized entry was itself evicted")
	}
	if c.bytes != 150 {
		t.Fatalf("bytes = %d, want 150 (the kept oversized entry)", c.bytes)
	}

	// The next fitting insert pushes the oversized entry out and restores
	// the bound — the cache must not stay pinned above budget.
	insertCompleted(c, "d", 40)
	if c.bytes > bound {
		t.Fatalf("bytes %d still above bound %d after oversized entry became LRU", c.bytes, bound)
	}
	if _, ok := c.entries[Key{Workload: "big"}]; ok {
		t.Fatal("oversized entry still resident after a fitting insert")
	}
	if _, ok := c.entries[Key{Workload: "d"}]; !ok {
		t.Fatal("newest fitting insert was evicted")
	}
}

// TestEntryCostChargesPredecode pins the cost model: every resident
// Program pins a predecoded record per instruction (build() predecodes
// at insert; DropPredecode runs at evict), so entryCost must charge it
// or the byte bound over-admits.
func TestEntryCostChargesPredecode(t *testing.T) {
	w := testWorkload(t)
	c := New()
	p, _, err := c.Compile(context.Background(), w, codegen.ModuleOptions{Idempotent: true, Core: core.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	e := &entry{prog: p}
	want := int64(entryBaseCost)
	want += int64(len(p.Instrs)) * (perInstrCost + perInstrPredecodeCost)
	want += int64(len(p.FuncEntry)+len(p.GlobalBase)) * perSymbolCost
	want += p.GlobalEnd * perGlobalWord
	if got := entryCost(e); got != want {
		t.Fatalf("entryCost = %d, want %d", got, want)
	}
	// The predecode term must be material: the per-instruction charge is
	// the dominant component for real programs.
	withoutPredecode := want - int64(len(p.Instrs))*perInstrPredecodeCost
	if want <= withoutPredecode {
		t.Fatal("predecode term contributes nothing to the cost model")
	}
}

// TestCompilePanicMemoizedAsError checks that a panicking compile (a
// workload whose source does not parse) surfaces as a memoized error
// instead of killing the process — the daemon depends on this.
func TestCompilePanicMemoizedAsError(t *testing.T) {
	w := workloads.Workload{Name: "broken-synthetic", Source: "func main(", MemWords: 1024}
	c := New()
	for i := 0; i < 2; i++ {
		_, _, err := c.Compile(context.Background(), w, codegen.ModuleOptions{Core: core.DefaultOptions()})
		if err == nil || !strings.Contains(err.Error(), "panic") {
			t.Fatalf("request %d: got err %v, want memoized compile panic", i, err)
		}
	}
	if st := c.Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("got %d misses / %d hits, want the failure memoized once", st.Misses, st.Hits)
	}
}
