package buildcache

import (
	"reflect"
	"sync"
	"testing"

	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/machine"
	"idemproc/internal/workloads"
)

func testWorkload(t *testing.T) workloads.Workload {
	t.Helper()
	w, ok := workloads.ByName("bzip2")
	if !ok {
		t.Fatal("workload bzip2 missing")
	}
	return w
}

// TestCompileOnceUnderConcurrency hammers one key from many goroutines
// and asserts exactly one compile ran (singleflight) and every caller
// got the same shared Program. Run under -race this also checks the
// synchronization of the entry handoff.
func TestCompileOnceUnderConcurrency(t *testing.T) {
	w := testWorkload(t)
	c := New()
	mo := codegen.ModuleOptions{Idempotent: true, Core: core.DefaultOptions()}

	const callers = 16
	progs := make([]*codegen.Program, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, st, err := c.Compile(w, mo)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			if p == nil || st == nil {
				t.Errorf("caller %d: nil result", i)
				return
			}
			progs[i] = p
		}(i)
	}
	wg.Wait()

	for i := 1; i < callers; i++ {
		if progs[i] != progs[0] {
			t.Fatalf("caller %d got a different Program than caller 0", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Distinct != 1 {
		t.Fatalf("got %d misses / %d distinct, want exactly one compile", st.Misses, st.Distinct)
	}
	if st.Hits != callers-1 {
		t.Fatalf("got %d hits, want %d", st.Hits, callers-1)
	}
	if st.CompileTime <= 0 {
		t.Fatalf("compile time not accounted: %v", st.CompileTime)
	}
}

// TestDistinctOptionsDistinctEntries checks that differing options
// (including nested core.Options fields) key separate cache entries.
func TestDistinctOptionsDistinctEntries(t *testing.T) {
	w := testWorkload(t)
	c := New()
	capped := core.DefaultOptions()
	capped.MaxRegionSize = 8
	configs := []codegen.ModuleOptions{
		{Core: core.DefaultOptions()},
		{Idempotent: true, Core: core.DefaultOptions()},
		{Idempotent: true, Core: capped},
	}
	var progs []*codegen.Program
	for _, mo := range configs {
		p, _, err := c.Compile(w, mo)
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, p)
	}
	if st := c.Stats(); st.Distinct != len(configs) || st.Misses != int64(len(configs)) {
		t.Fatalf("got %d distinct / %d misses, want %d of each", st.Distinct, st.Misses, len(configs))
	}
	for i := 0; i < len(progs); i++ {
		for j := i + 1; j < len(progs); j++ {
			if progs[i] == progs[j] {
				t.Fatalf("configs %d and %d aliased to one Program", i, j)
			}
		}
	}
	// Re-requesting an existing key must hit.
	if _, _, err := c.Compile(w, configs[0]); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("got %d hits after re-request, want 1", st.Hits)
	}
}

// TestConcurrentRunsMatchSerial proves the Program immutability contract
// the cache relies on: one cached Program backing many concurrent
// machines produces exactly the serial reference result. Run under
// -race this is the enforcement test for the contract documented on
// codegen.Program.
func TestConcurrentRunsMatchSerial(t *testing.T) {
	w := testWorkload(t)
	c := New()
	p, _, err := c.Compile(w, codegen.ModuleOptions{Idempotent: true, Core: core.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.Config{BufferStores: true, TrackPaths: true}

	ref := machine.New(p, cfg)
	refRet, err := ref.Run(w.Args...)
	if err != nil {
		t.Fatal(err)
	}

	const runners = 8
	var wg sync.WaitGroup
	for i := 0; i < runners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := machine.New(p, cfg)
			ret, err := m.Run(w.Args...)
			if err != nil {
				t.Errorf("runner %d: %v", i, err)
				return
			}
			if ret != refRet {
				t.Errorf("runner %d returned %d, serial reference returned %d", i, ret, refRet)
			}
			if m.Stats.Cycles != ref.Stats.Cycles || m.Stats.DynInstrs != ref.Stats.DynInstrs {
				t.Errorf("runner %d stats (%d cycles, %d instrs) != reference (%d, %d)",
					i, m.Stats.Cycles, m.Stats.DynInstrs, ref.Stats.Cycles, ref.Stats.DynInstrs)
			}
		}(i)
	}
	wg.Wait()
}

// TestFingerprintCoversAllFields pins the field counts of the two
// structs the fingerprint encodes. If either struct grows a field this
// fails, pointing at codegen.ModuleOptions.Fingerprint, which must be
// extended in lockstep or distinct configurations would silently alias
// to one cache entry.
func TestFingerprintCoversAllFields(t *testing.T) {
	if n := reflect.TypeOf(codegen.ModuleOptions{}).NumField(); n != 4 {
		t.Errorf("codegen.ModuleOptions has %d fields, fingerprint encodes 4: extend ModuleOptions.Fingerprint", n)
	}
	if n := reflect.TypeOf(core.Options{}).NumField(); n != 7 {
		t.Errorf("core.Options has %d fields, fingerprint encodes 7: extend ModuleOptions.Fingerprint", n)
	}

	// And the encoding must actually distinguish each boolean/int field.
	base := codegen.ModuleOptions{Core: core.DefaultOptions()}
	seen := map[string]string{base.Fingerprint(): "base"}
	variants := map[string]codegen.ModuleOptions{}
	add := func(name string, mo codegen.ModuleOptions) { variants[name] = mo }
	{
		mo := base
		mo.Idempotent = true
		add("Idempotent", mo)
	}
	{
		mo := base
		mo.RelaxedAlloc = true
		add("RelaxedAlloc", mo)
	}
	{
		mo := base
		mo.PureCalls = true
		add("PureCalls", mo)
	}
	flip := func(name string, f func(*core.Options)) {
		mo := base
		f(&mo.Core)
		add("Core."+name, mo)
	}
	flip("LoopHeuristic", func(o *core.Options) { o.LoopHeuristic = !o.LoopHeuristic })
	flip("RedElim", func(o *core.Options) { o.RedElim = !o.RedElim })
	flip("UnrollLoops", func(o *core.Options) { o.UnrollLoops = !o.UnrollLoops })
	flip("CutAtCalls", func(o *core.Options) { o.CutAtCalls = !o.CutAtCalls })
	flip("BalancedHeuristic", func(o *core.Options) { o.BalancedHeuristic = !o.BalancedHeuristic })
	flip("MaxRegionSize", func(o *core.Options) { o.MaxRegionSize = 64 })
	flip("PureFuncs", func(o *core.Options) { o.PureFuncs = map[string]bool{"f": true} })
	for name, mo := range variants {
		fp := mo.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("flipping %s produced the same fingerprint as %s: %q", name, prev, fp)
		}
		seen[fp] = name
	}
}
