package jobs

// The job journal is what makes a job resumable across SIGTERM/SIGKILL:
// every completed unit's result bytes are appended to a per-job file
// under <dir>/jobs/, and a restarted daemon reloads them instead of
// re-simulating. The format follows the artifact store's framing
// discipline (internal/buildcache/disk.go): a verified header written
// atomically via temp file + rename, checksummed records, and the rule
// that any mismatch is a recovery miss, never an error.
//
// Layout of <dir>/jobs/<id>.job:
//
//	header:  magic "IDEMJOB\n", uvarint version, id, uvarint unit count,
//	         uvarint body length, sha256(body), body (the original
//	         /v1/jobs request body — recovery re-derives the units from
//	         it, so the journal is self-contained)
//	records: uvarint index, uvarint payload length, sha256(payload),
//	         payload (one unit's marshaled BatchResult bytes), appended
//	         with O_APPEND as units complete — in completion order, not
//	         index order
//
// The header rename is atomic, so a crash during job creation leaves no
// partially-visible journal. Records are appended without fsync (the
// same trade the artifact store makes): a crash can lose the tail, which
// costs re-execution of those units — safe, because units are idempotent
// — and a torn final record is detected by its framing and truncated
// away on recovery.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

const (
	journalMagic   = "IDEMJOB\n"
	journalVersion = 1
	journalExt     = ".job"
)

// journal is the append handle for one job's file. All methods are
// best-effort: journaling is an optimization (resume instead of rerun)
// and a full or read-only disk must not fail the job itself.
type journal struct {
	path string

	mu sync.Mutex
	f  *os.File // nil after close
}

// jobsDir returns the journal directory under the cache root.
func jobsDir(root string) string { return filepath.Join(root, "jobs") }

// encodeJournalHeader frames the header block.
func encodeJournalHeader(id string, units int, body []byte) []byte {
	buf := []byte(journalMagic)
	buf = binary.AppendUvarint(buf, journalVersion)
	buf = binary.AppendUvarint(buf, uint64(len(id)))
	buf = append(buf, id...)
	buf = binary.AppendUvarint(buf, uint64(units))
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	sum := sha256.Sum256(body)
	buf = append(buf, sum[:]...)
	buf = append(buf, body...)
	return buf
}

// encodeRecord frames one completed unit.
func encodeRecord(index int, payload []byte) []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(index))
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	sum := sha256.Sum256(payload)
	buf = append(buf, sum[:]...)
	return append(buf, payload...)
}

// createJournal writes the header atomically (temp + rename, the
// artifact store's discipline) and opens the file for record appends.
// It returns nil on any failure: the job then runs unjournaled.
func createJournal(dir, id string, units int, body []byte) *journal {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil
	}
	path := filepath.Join(dir, id+journalExt)
	tmp, err := os.CreateTemp(dir, ".tmp-*"+journalExt)
	if err != nil {
		return nil
	}
	if _, err := tmp.Write(encodeJournalHeader(id, units, body)); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return nil
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return nil
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil
	}
	return &journal{path: path, f: f}
}

// openJournalForAppend reopens a recovered journal, truncating a torn
// tail at goodLen first. Returns nil on failure (the resumed job then
// journals nothing further; already-journaled results stay usable).
func openJournalForAppend(path string, goodLen int64) *journal {
	if err := os.Truncate(path, goodLen); err != nil {
		return nil
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil
	}
	return &journal{path: path, f: f}
}

// append writes one completed unit's record. One write call per record
// keeps concurrent appends from interleaving (O_APPEND is atomic per
// write on POSIX for regular files); the mutex serializes against close.
func (j *journal) append(index int, payload []byte) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return
	}
	j.f.Write(encodeRecord(index, payload))
}

// close releases the file handle (further appends become no-ops).
func (j *journal) close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}

// remove closes and deletes the journal file — the cancel path: a
// canceled job must not resurrect on restart.
func (j *journal) remove() {
	if j == nil {
		return
	}
	j.close()
	os.Remove(j.path)
}

// journalRecord is one decoded completed-unit record.
type journalRecord struct {
	index   int
	payload []byte
}

// decodedJournal is the parse result of one journal file.
type decodedJournal struct {
	id      string
	units   int
	body    []byte
	records []journalRecord
	// goodLen is the byte offset after the last intact record; anything
	// beyond it (a torn tail from a crash mid-append) is truncated away
	// when the journal is reopened for appends.
	goodLen int64
}

// decodeJournal parses a journal file. A header problem is an error (the
// file is not a usable journal and recovery prunes it); a record problem
// just ends the record stream — a torn or corrupt tail only costs the
// re-execution of units whose records were lost.
func decodeJournal(data []byte) (*decodedJournal, error) {
	rest := data
	take := func(n int) ([]byte, bool) {
		if len(rest) < n {
			return nil, false
		}
		b := rest[:n]
		rest = rest[n:]
		return b, true
	}
	uvarint := func() (uint64, bool) {
		v, k := binary.Uvarint(rest)
		if k <= 0 {
			return 0, false
		}
		rest = rest[k:]
		return v, true
	}

	if m, ok := take(len(journalMagic)); !ok || string(m) != journalMagic {
		return nil, fmt.Errorf("bad magic")
	}
	ver, ok := uvarint()
	if !ok {
		return nil, fmt.Errorf("truncated version")
	}
	if ver != journalVersion {
		return nil, fmt.Errorf("journal version %d, want %d", ver, journalVersion)
	}
	idLen, ok := uvarint()
	if !ok || idLen > 256 {
		return nil, fmt.Errorf("truncated id")
	}
	idB, ok := take(int(idLen))
	if !ok {
		return nil, fmt.Errorf("truncated id")
	}
	units, ok := uvarint()
	if !ok || units == 0 || units > 1<<20 {
		return nil, fmt.Errorf("implausible unit count")
	}
	bodyLen, ok := uvarint()
	if !ok {
		return nil, fmt.Errorf("truncated body length")
	}
	wantSum, ok := take(sha256.Size)
	if !ok {
		return nil, fmt.Errorf("truncated body checksum")
	}
	body, ok := take(int(bodyLen))
	if !ok {
		return nil, fmt.Errorf("truncated body")
	}
	if sum := sha256.Sum256(body); !bytes.Equal(sum[:], wantSum) {
		return nil, fmt.Errorf("body checksum mismatch")
	}

	dj := &decodedJournal{
		id:      string(idB),
		units:   int(units),
		body:    body,
		goodLen: int64(len(data) - len(rest)),
	}
	for len(rest) > 0 {
		idx, ok := uvarint()
		if !ok || idx >= units {
			break
		}
		plen, ok := uvarint()
		if !ok {
			break
		}
		sum, ok := take(sha256.Size)
		if !ok {
			break
		}
		payload, ok := take(int(plen))
		if !ok {
			break
		}
		if got := sha256.Sum256(payload); !bytes.Equal(got[:], sum) {
			break
		}
		dj.records = append(dj.records, journalRecord{index: int(idx), payload: payload})
		dj.goodLen = int64(len(data) - len(rest))
	}
	return dj, nil
}
