package jobs

// Job is the unit of the async batch subsystem: a set of idempotent
// units plus the record of which ones have completed. Results land in
// per-index slots as units finish (in any order), but are only *exposed*
// as the contiguous completed prefix ("frontier") in strict index order
// — that is what keeps the streamed bytes identical to the equivalent
// /v1/batch response regardless of worker count, completion order, or
// how many times the job was interrupted and resumed.

import (
	"context"
	"encoding/json"
	"sync"
	"time"
)

// State is a job's lifecycle phase.
type State int

const (
	// StateRunning: units are executing (or will resume on restart).
	StateRunning State = iota
	// StateDone: every unit's result is delivered.
	StateDone
	// StateCanceled: DELETE /v1/jobs/{id} stopped it; its journal is
	// removed so it cannot resurrect on restart.
	StateCanceled
	// StateFailed: an external feeder gave up (front tier: no replica
	// could run a sub-batch). Local engine-backed jobs never fail —
	// per-unit errors are results, not job failures.
	StateFailed
)

// String renders the state for API responses.
func (s State) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateCanceled:
		return "canceled"
	case StateFailed:
		return "failed"
	}
	return "unknown"
}

// Job is one tracked batch. Created by Manager.Submit (local,
// engine-backed, journaled) or Manager.Track (externally fed — the
// front tier's merged view over per-replica sub-jobs).
type Job struct {
	id string
	m  *Manager

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	results  [][]byte // per-index marshaled BatchResult bytes
	have     []bool
	frontier int // contiguous completed prefix length
	state    State
	errMsg   string
	doneAt   time.Time
	// progress is closed and replaced on every observable change, waking
	// all pollers/streamers at once (a broadcast).
	progress chan struct{}
	jr       *journal
	onCancel func()
	resumed  int // units preloaded from the journal on recovery
}

func newJob(m *Manager, id string, units int) *Job {
	ctx, cancel := context.WithCancel(m.rootCtx)
	return &Job{
		id:       id,
		m:        m,
		ctx:      ctx,
		cancel:   cancel,
		results:  make([][]byte, units),
		have:     make([]bool, units),
		progress: make(chan struct{}),
	}
}

// ID returns the job handle.
func (j *Job) ID() string { return j.id }

// Units returns the unit count.
func (j *Job) Units() int { return len(j.results) }

// Context is canceled when the job is canceled, fails, or the manager
// shuts down. External feeders (the front tier's mergers) run under it.
func (j *Job) Context() context.Context { return j.ctx }

// State reads the current lifecycle phase.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Frontier reads the contiguous completed prefix length.
func (j *Job) Frontier() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.frontier
}

// Resumed reports how many unit results were preloaded from the journal
// when this job was recovered (0 for fresh jobs).
func (j *Job) Resumed() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resumed
}

// broadcast wakes every waiter. Callers hold j.mu.
func (j *Job) broadcast() {
	close(j.progress)
	j.progress = make(chan struct{})
}

// Deliver records one unit's result bytes. Duplicate and post-terminal
// deliveries are ignored (re-execution after a lost response is the
// idempotence story: same bytes, delivered once). Completed results are
// journaled at delivery time — in completion order, which is why
// recovery reloads *all* records, not just the in-order prefix.
func (j *Job) Deliver(index int, result []byte) {
	if index < 0 || index >= len(j.results) {
		return
	}
	j.mu.Lock()
	if j.state != StateRunning || j.have[index] {
		j.mu.Unlock()
		return
	}
	j.results[index] = result
	j.have[index] = true
	for j.frontier < len(j.have) && j.have[j.frontier] {
		j.frontier++
	}
	done := j.frontier == len(j.have)
	if done {
		j.state = StateDone
		j.doneAt = time.Now()
	}
	jr := j.jr
	j.broadcast()
	j.mu.Unlock()

	jr.append(index, result)
	if done {
		j.m.completed.Add(1)
	}
}

// preload installs a journaled result during recovery (no re-append, no
// completion accounting — the caller finalizes state afterwards).
func (j *Job) preload(index int, result []byte) {
	if index < 0 || index >= len(j.results) || j.have[index] {
		return
	}
	j.results[index] = result
	j.have[index] = true
	j.resumed++
	for j.frontier < len(j.have) && j.have[j.frontier] {
		j.frontier++
	}
}

// doCancel transitions to StateCanceled: the unit contexts are canceled
// (running simulations preempt within the poll budget), waiters wake,
// and the journal is deleted — a canceled job must stay canceled across
// restarts. Returns false if the job was already terminal.
func (j *Job) doCancel() bool {
	j.mu.Lock()
	if j.state != StateRunning {
		j.mu.Unlock()
		return false
	}
	j.state = StateCanceled
	j.doneAt = time.Now()
	jr := j.jr
	j.jr = nil
	onCancel := j.onCancel
	j.broadcast()
	j.mu.Unlock()

	j.cancel()
	jr.remove()
	if onCancel != nil {
		go onCancel()
	}
	j.m.canceled.Add(1)
	return true
}

// Fail transitions an externally fed job to StateFailed with a message.
func (j *Job) Fail(msg string) {
	j.mu.Lock()
	if j.state != StateRunning {
		j.mu.Unlock()
		return
	}
	j.state = StateFailed
	j.errMsg = msg
	j.doneAt = time.Now()
	jr := j.jr
	j.jr = nil
	j.broadcast()
	j.mu.Unlock()

	j.cancel()
	jr.remove()
	j.m.failed.Add(1)
}

// release closes the journal handle without touching the file (shutdown
// path: the journal must survive for the restart to resume from).
func (j *Job) release() {
	j.mu.Lock()
	jr := j.jr
	j.jr = nil
	j.mu.Unlock()
	j.cancel()
	jr.close()
}

// reapable reports whether the TTL has expired on a terminal job.
func (j *Job) reapable(now time.Time, ttl time.Duration) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state != StateRunning && now.Sub(j.doneAt) > ttl
}

// ---------------------------------------------------------------------
// Result exposure: long-poll and stream.

// PollResponse is the GET /v1/jobs/{id} body. Results holds the
// marshaled per-unit BatchResult bytes for indices [cursor,
// next_cursor) — verbatim, so the concatenation across polls is
// byte-identical to the /v1/batch results array.
type PollResponse struct {
	ID         string            `json:"id"`
	State      string            `json:"state"`
	Units      int               `json:"units"`
	NextCursor int               `json:"next_cursor"`
	Error      string            `json:"error,omitempty"`
	Results    []json.RawMessage `json:"results"`
}

// Poll returns the results available at cursor, long-polling up to wait
// for the frontier to advance past it (or the job to go terminal). It
// returns immediately when results are already available, wait is zero,
// ctx is done, or the manager is shutting down. The caller validates
// cursor ∈ [0, units].
func (j *Job) Poll(ctx context.Context, cursor int, wait time.Duration) PollResponse {
	var timeout <-chan time.Time
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		timeout = t.C
	}
	j.mu.Lock()
	for j.frontier <= cursor && j.state == StateRunning && wait > 0 {
		ch := j.progress
		j.mu.Unlock()
		select {
		case <-ch:
		case <-timeout:
			j.mu.Lock()
			goto snapshot
		case <-ctx.Done():
			j.mu.Lock()
			goto snapshot
		case <-j.m.closing:
			j.mu.Lock()
			goto snapshot
		}
		j.mu.Lock()
	}
snapshot:
	rep := PollResponse{
		ID:         j.id,
		State:      j.state.String(),
		Units:      len(j.results),
		NextCursor: j.frontier,
		Error:      j.errMsg,
		Results:    []json.RawMessage{},
	}
	if j.frontier > cursor {
		rep.Results = make([]json.RawMessage, 0, j.frontier-cursor)
		for _, b := range j.results[cursor:j.frontier] {
			rep.Results = append(rep.Results, json.RawMessage(b))
		}
	} else {
		rep.NextCursor = cursor
	}
	j.mu.Unlock()
	return rep
}

// Stream emits result chunks in strict index order, starting at cursor,
// until every unit has been emitted or the job goes terminal early
// (canceled/failed — the stream then ends short; the client learns why
// from a follow-up poll). Each chunk is the newly completed contiguous
// run. Returns the number of results emitted after cursor.
func (j *Job) Stream(ctx context.Context, cursor int, emit func(chunk [][]byte) error) (int, error) {
	emitted := 0
	for {
		j.mu.Lock()
		for j.frontier <= cursor && j.state == StateRunning {
			ch := j.progress
			j.mu.Unlock()
			select {
			case <-ch:
			case <-ctx.Done():
				return emitted, ctx.Err()
			case <-j.m.closing:
				return emitted, nil
			}
			j.mu.Lock()
		}
		chunk := j.results[cursor:j.frontier]
		state := j.state
		j.mu.Unlock()

		if len(chunk) > 0 {
			if err := emit(chunk); err != nil {
				return emitted, err
			}
			cursor += len(chunk)
			emitted += len(chunk)
		}
		if cursor >= len(j.results) || state != StateRunning {
			return emitted, nil
		}
	}
}
