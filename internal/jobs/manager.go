// Package jobs is the async job subsystem behind POST /v1/jobs: accept
// a batch, return a handle immediately, run the units on the shared
// experiment engine pool, and expose results incrementally (long-poll
// cursor or index-ordered NDJSON stream) with the same byte-determinism
// contract as /v1/batch — the concatenated stream is derivable from the
// equivalent batch response body.
//
// The paper's core property makes jobs cheap to make durable: every
// unit is idempotent (a deterministic function of its request bytes),
// so a job is just units plus a journal of which indices completed.
// Completed results are journaled to disk as they land; a process kill
// at any point — graceful or not — loses at most the in-flight units,
// and a restarted manager resumes the remainder with zero re-execution
// of journaled indices (and, with the artifact store warm, zero
// recompiles). See docs/jobs.md.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"idemproc/internal/experiments"
)

// ErrTableFull is returned by Submit/Track when the bounded job table
// cannot admit another job even after reaping expired entries.
var ErrTableFull = errors.New("jobs: job table full, retry later")

// ErrClosed is returned once the manager is shutting down.
var ErrClosed = errors.New("jobs: manager closed")

// Run executes one unit (a raw BatchUnit body) and returns its
// marshaled BatchResult bytes. The server wires this to the same
// doCompile/doSimulate path /v1/batch uses, which is what makes job
// results byte-identical to batch results. A Run invoked under a
// canceled ctx may return garbage — the runner discards results
// delivered after cancellation.
type Run func(ctx context.Context, unit json.RawMessage, index int) []byte

// Config sizes a Manager. Zero values select the documented defaults.
type Config struct {
	// Dir roots the journal store (journals live in <Dir>/jobs). Empty
	// disables journaling: jobs still stream, but do not survive
	// restarts.
	Dir string
	// MaxJobs bounds the job table, running and terminal entries
	// together (default 64). Submissions beyond it get ErrTableFull.
	MaxJobs int
	// TTL is how long a terminal job (and its journal) stays queryable
	// before the reaper removes it (default 10m).
	TTL time.Duration
	// Logf receives recovery/reap lifecycle lines (default: discard).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxJobs <= 0 {
		c.MaxJobs = 64
	}
	if c.TTL <= 0 {
		c.TTL = 10 * time.Minute
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Stats is a point-in-time snapshot of the manager's counters for
// /metrics.
type Stats struct {
	Active       int64 // jobs currently running
	Tracked      int64 // jobs in the table (running + terminal)
	Completed    int64
	Canceled     int64
	Failed       int64
	Reaped       int64
	ResumedJobs  int64
	ResumedUnits int64
}

// Manager owns the bounded job table, the runner goroutines, journal
// recovery and TTL reaping. Create with NewManager; call Close on
// shutdown.
type Manager struct {
	cfg    Config
	engine *experiments.Engine
	run    Run

	rootCtx  context.Context
	rootStop context.CancelFunc
	closing  chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu   sync.Mutex
	jobs map[string]*Job
	seq  uint64
	// nonce decorrelates job IDs across process restarts so a recovered
	// job's ID cannot collide with a freshly generated one.
	nonce uint64

	completed, canceled, failed atomic.Int64
	reaped                      atomic.Int64
	resumedJobs, resumedUnits   atomic.Int64
}

// NewManager builds a manager. engine and run may be nil for a manager
// that only tracks externally fed jobs (the front tier); Submit then
// must not be called. The TTL reaper starts immediately.
func NewManager(cfg Config, engine *experiments.Engine, run Run) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:      cfg,
		engine:   engine,
		run:      run,
		rootCtx:  ctx,
		rootStop: cancel,
		closing:  make(chan struct{}),
		jobs:     map[string]*Job{},
		nonce:    uint64(time.Now().UnixNano()),
	}
	m.wg.Add(1)
	go m.reapLoop()
	return m
}

// newID allocates a table-unique job handle. Callers hold m.mu.
func (m *Manager) newID() string {
	for {
		m.seq++
		id := fmt.Sprintf("j%016x", mix(m.nonce+m.seq))
		if _, exists := m.jobs[id]; !exists {
			return id
		}
	}
}

// mix is one splitmix64 scramble step (the repository's shared PRNG
// family).
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// admit reserves a table slot under m.mu, reaping expired terminal jobs
// inline if the table is full.
func (m *Manager) admit(id string, j *Job) error {
	select {
	case <-m.closing:
		return ErrClosed
	default:
	}
	if len(m.jobs) >= m.cfg.MaxJobs {
		now := time.Now()
		for jid, old := range m.jobs {
			if old.reapable(now, m.cfg.TTL) {
				m.reap(jid, old)
			}
		}
	}
	if len(m.jobs) >= m.cfg.MaxJobs {
		return ErrTableFull
	}
	m.jobs[id] = j
	return nil
}

// Submit creates an engine-backed job for the validated batch body and
// its raw units, journals it (when Dir is set) and starts the runner.
func (m *Manager) Submit(body []byte, units []json.RawMessage) (*Job, error) {
	m.mu.Lock()
	id := m.newID()
	j := newJob(m, id, len(units))
	if err := m.admit(id, j); err != nil {
		m.mu.Unlock()
		j.cancel()
		return nil, err
	}
	m.mu.Unlock()

	if m.cfg.Dir != "" {
		j.jr = createJournal(jobsDir(m.cfg.Dir), id, len(units), body)
		if j.jr == nil {
			m.cfg.Logf("jobs: journal create failed for %s; job will not survive a restart", id)
		}
	}
	m.wg.Add(1)
	go m.runJob(j, units)
	return j, nil
}

// Track creates an externally fed job: the caller delivers results via
// Job.Deliver and finalizes with Fail if it must give up. onCancel, if
// set, runs (in its own goroutine) when the job is canceled — the front
// tier fans the cancel out to its per-replica sub-jobs there.
func (m *Manager) Track(units int, onCancel func()) (*Job, error) {
	if units <= 0 {
		return nil, errors.New("jobs: units must be positive")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.newID()
	j := newJob(m, id, units)
	j.onCancel = onCancel
	if err := m.admit(id, j); err != nil {
		j.cancel()
		return nil, err
	}
	return j, nil
}

// Get looks a job up by handle.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel cancels a job by handle. ok reports whether the job exists;
// canceling an already-terminal job is a no-op (idempotent, like
// everything else here).
func (m *Manager) Cancel(id string) (*Job, bool) {
	j, ok := m.Get(id)
	if !ok {
		return nil, false
	}
	j.doCancel()
	return j, true
}

// runJob executes the job's pending units on the engine pool. fn always
// returns nil (per-unit errors are results), mirroring /v1/batch; a
// canceled job context preempts running simulations and suppresses
// delivery of their partial results, so nothing non-deterministic is
// ever journaled or streamed.
func (m *Manager) runJob(j *Job, units []json.RawMessage) {
	defer m.wg.Done()
	var pending []int
	j.mu.Lock()
	for i, h := range j.have {
		if !h {
			pending = append(pending, i)
		}
	}
	j.mu.Unlock()

	_ = m.engine.ForEach(j.ctx, len(pending), func(ctx context.Context, k int) error {
		i := pending[k]
		if ctx.Err() != nil {
			return nil
		}
		b := m.run(ctx, units[i], i)
		if ctx.Err() != nil {
			// The cancellation (DELETE, drain) may have truncated this
			// unit's execution; its result is not trustworthy and the
			// unit is idempotent — drop it and let a resume re-run it.
			return nil
		}
		j.Deliver(i, b)
		return nil
	})
	j.release()
}

// ---------------------------------------------------------------------
// Recovery.

// RecoverStats summarizes a journal-recovery pass.
type RecoverStats struct {
	// Resumed jobs restarted mid-flight; Complete jobs reloaded fully
	// done (still queryable until their TTL).
	Resumed  int
	Complete int
	// Units preloaded from journals (work not re-executed).
	Units int
	// Pruned invalid journal files removed.
	Pruned int
}

// Recover scans <Dir>/jobs, reloads every valid journal and restarts
// runners for incomplete jobs. Completed indices are preloaded — not
// re-executed — which is the subsystem's end-to-end idempotence story:
// re-running only what the crash actually lost. Invalid journals (bad
// framing, bodies that no longer parse) are pruned like corrupt
// artifacts. Call once, after NewManager and before serving traffic.
func (m *Manager) Recover() RecoverStats {
	var rs RecoverStats
	if m.cfg.Dir == "" || m.run == nil {
		return rs
	}
	dir := jobsDir(m.cfg.Dir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return rs
	}
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, journalExt) || strings.HasPrefix(name, ".tmp-") {
			continue
		}
		path := filepath.Join(dir, name)
		prune := func(why string) {
			rs.Pruned++
			os.Remove(path)
			m.cfg.Logf("jobs: pruned journal %s: %s", name, why)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			prune(err.Error())
			continue
		}
		dj, err := decodeJournal(data)
		if err != nil {
			prune(err.Error())
			continue
		}
		if dj.id+journalExt != name {
			prune("id does not match filename")
			continue
		}
		var outer struct {
			Units []json.RawMessage `json:"units"`
		}
		if json.Unmarshal(dj.body, &outer) != nil || len(outer.Units) != dj.units {
			prune("body does not parse to the journaled unit count")
			continue
		}

		m.mu.Lock()
		if _, exists := m.jobs[dj.id]; exists {
			m.mu.Unlock()
			prune("duplicate job id")
			continue
		}
		j := newJob(m, dj.id, dj.units)
		for _, rec := range dj.records {
			j.preload(rec.index, rec.payload)
		}
		preloaded := j.resumed
		complete := j.frontier == dj.units
		if complete {
			j.state = StateDone
			j.doneAt = time.Now()
		}
		if err := m.admit(dj.id, j); err != nil {
			m.mu.Unlock()
			j.cancel()
			m.cfg.Logf("jobs: cannot readmit journaled job %s: %v", dj.id, err)
			continue
		}
		m.mu.Unlock()

		rs.Units += preloaded
		m.resumedUnits.Add(int64(preloaded))
		if complete {
			rs.Complete++
			// Keep the journal: the finished job stays streamable until
			// its TTL, exactly like a job that finished in this process.
			continue
		}
		j.jr = openJournalForAppend(path, dj.goodLen)
		rs.Resumed++
		m.resumedJobs.Add(1)
		m.wg.Add(1)
		go m.runJob(j, outer.Units)
	}
	if rs.Resumed+rs.Complete+rs.Pruned > 0 {
		m.cfg.Logf("jobs: recovered %d mid-flight + %d complete jobs (%d units journaled, %d journals pruned)",
			rs.Resumed, rs.Complete, rs.Units, rs.Pruned)
	}
	return rs
}

// ---------------------------------------------------------------------
// Reaping and shutdown.

func (m *Manager) reapLoop() {
	defer m.wg.Done()
	period := m.cfg.TTL / 4
	if period > 30*time.Second {
		period = 30 * time.Second
	}
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-m.closing:
			return
		case <-t.C:
		}
		now := time.Now()
		m.mu.Lock()
		for id, j := range m.jobs {
			if j.reapable(now, m.cfg.TTL) {
				m.reap(id, j)
			}
		}
		m.mu.Unlock()
	}
}

// reap drops one expired terminal job and its journal. Callers hold
// m.mu.
func (m *Manager) reap(id string, j *Job) {
	delete(m.jobs, id)
	j.mu.Lock()
	jr := j.jr
	j.jr = nil
	j.mu.Unlock()
	if jr != nil {
		jr.remove()
	} else if m.cfg.Dir != "" {
		// Done jobs recovered from a journal (or whose runner already
		// released the handle) still have a file on disk.
		os.Remove(filepath.Join(jobsDir(m.cfg.Dir), id+journalExt))
	}
	j.cancel()
	m.reaped.Add(1)
}

// Stop cancels every job context and wakes every poller/streamer, but
// does not wait. Journals of running jobs are left on disk — that is
// the resume contract: a drain stops the work, the next boot finishes
// it.
func (m *Manager) Stop() {
	m.stopOnce.Do(func() {
		close(m.closing)
		m.rootStop()
	})
}

// Close stops the manager and waits for runners and the reaper to exit
// (bounded by ctx). Simulations preempt within the configured poll
// stride, so the wait is short.
func (m *Manager) Close(ctx context.Context) error {
	m.Stop()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats snapshots the counters for /metrics.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	tracked := int64(len(m.jobs))
	active := int64(0)
	for _, j := range m.jobs {
		if j.State() == StateRunning {
			active++
		}
	}
	m.mu.Unlock()
	return Stats{
		Active:       active,
		Tracked:      tracked,
		Completed:    m.completed.Load(),
		Canceled:     m.canceled.Load(),
		Failed:       m.failed.Load(),
		Reaped:       m.reaped.Load(),
		ResumedJobs:  m.resumedJobs.Load(),
		ResumedUnits: m.resumedUnits.Load(),
	}
}
