package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"idemproc/internal/experiments"
)

// testBody builds a /v1/jobs-shaped body with n trivial units and
// returns it alongside the raw units, the way the server hands them to
// Submit.
func testBody(t *testing.T, n int) ([]byte, []json.RawMessage) {
	t.Helper()
	units := make([]json.RawMessage, n)
	for i := range units {
		units[i] = json.RawMessage(fmt.Sprintf(`{"unit":%d}`, i))
	}
	body, err := json.Marshal(struct {
		Units []json.RawMessage `json:"units"`
	}{units})
	if err != nil {
		t.Fatal(err)
	}
	return body, units
}

// echoRun is a deterministic Run: result bytes derive only from the
// unit bytes and index.
func echoRun(ctx context.Context, unit json.RawMessage, index int) []byte {
	return []byte(fmt.Sprintf(`{"index":%d,"echo":%s}`, index, unit))
}

func newTestManager(t *testing.T, cfg Config, run Run) *Manager {
	t.Helper()
	m := NewManager(cfg, experiments.NewEngine(4), run)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	return m
}

func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for j.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("job state = %v, want %v", j.State(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestJobRunsToDoneInIndexOrder(t *testing.T) {
	m := newTestManager(t, Config{}, echoRun)
	body, units := testBody(t, 17)
	j, err := m.Submit(body, units)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)

	rep := j.Poll(context.Background(), 0, 0)
	if rep.State != "done" || rep.NextCursor != 17 || len(rep.Results) != 17 {
		t.Fatalf("poll = %+v", rep)
	}
	for i, r := range rep.Results {
		if want := echoRun(context.Background(), units[i], i); !bytes.Equal(r, want) {
			t.Fatalf("result[%d] = %s, want %s", i, r, want)
		}
	}
}

func TestLongPollWakesOnProgress(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	run := func(ctx context.Context, unit json.RawMessage, index int) []byte {
		if index > 0 {
			once.Do(func() {}) // no-op; index 0 gates below
		}
		if index == 0 {
			<-release
		}
		return echoRun(ctx, unit, index)
	}
	m := newTestManager(t, Config{}, run)
	body, units := testBody(t, 3)
	j, err := m.Submit(body, units)
	if err != nil {
		t.Fatal(err)
	}
	// Frontier is stuck at 0 while unit 0 blocks, even though units 1-2
	// may complete out of order.
	rep := j.Poll(context.Background(), 0, 20*time.Millisecond)
	if len(rep.Results) != 0 || rep.NextCursor != 0 || rep.State != "running" {
		t.Fatalf("pre-release poll = %+v", rep)
	}

	done := make(chan PollResponse, 1)
	go func() { done <- j.Poll(context.Background(), 0, 5*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	close(release)
	rep = <-done
	if len(rep.Results) == 0 || rep.NextCursor == 0 {
		t.Fatalf("post-release poll returned no progress: %+v", rep)
	}
}

func TestPollConcurrentPollersAllComplete(t *testing.T) {
	m := newTestManager(t, Config{}, echoRun)
	body, units := testBody(t, 9)
	j, err := m.Submit(body, units)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cursor := 0
			var got []json.RawMessage
			for cursor < j.Units() {
				rep := j.Poll(context.Background(), cursor, 2*time.Second)
				got = append(got, rep.Results...)
				cursor = rep.NextCursor
			}
			for i, r := range got {
				if want := echoRun(context.Background(), units[i], i); !bytes.Equal(r, want) {
					t.Errorf("poller result[%d] = %s, want %s", i, r, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestPollCursorAtEndReturnsEmpty(t *testing.T) {
	m := newTestManager(t, Config{}, echoRun)
	body, units := testBody(t, 4)
	j, err := m.Submit(body, units)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	rep := j.Poll(context.Background(), 4, time.Second)
	if len(rep.Results) != 0 || rep.NextCursor != 4 || rep.State != "done" {
		t.Fatalf("poll at end = %+v", rep)
	}
	if rep.Results == nil {
		t.Fatal("Results must be non-nil (encodes as [] not null)")
	}
}

func TestStreamMatchesResults(t *testing.T) {
	m := newTestManager(t, Config{}, echoRun)
	body, units := testBody(t, 25)
	j, err := m.Submit(body, units)
	if err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	n, err := j.Stream(context.Background(), 0, func(chunk [][]byte) error {
		got = append(got, chunk...)
		return nil
	})
	if err != nil || n != 25 || len(got) != 25 {
		t.Fatalf("stream: n=%d err=%v len=%d", n, err, len(got))
	}
	for i, r := range got {
		if want := echoRun(context.Background(), units[i], i); !bytes.Equal(r, want) {
			t.Fatalf("stream[%d] = %s, want %s", i, r, want)
		}
	}
	// Streaming from a mid-job cursor yields the suffix.
	got = nil
	n, err = j.Stream(context.Background(), 20, func(chunk [][]byte) error {
		got = append(got, chunk...)
		return nil
	})
	if err != nil || n != 5 {
		t.Fatalf("suffix stream: n=%d err=%v", n, err)
	}
}

func TestCancelStopsJobAndRemovesJournal(t *testing.T) {
	dir := t.TempDir()
	release := make(chan struct{})
	var started atomic.Bool
	run := func(ctx context.Context, unit json.RawMessage, index int) []byte {
		if index == 1 {
			started.Store(true)
			select {
			case <-release:
			case <-ctx.Done():
			}
		}
		return echoRun(ctx, unit, index)
	}
	m := newTestManager(t, Config{Dir: dir}, run)
	body, units := testBody(t, 3)
	j, err := m.Submit(body, units)
	if err != nil {
		t.Fatal(err)
	}
	for !started.Load() {
		time.Sleep(time.Millisecond)
	}
	if _, ok := m.Cancel(j.ID()); !ok {
		t.Fatal("cancel: job not found")
	}
	close(release)
	waitState(t, j, StateCanceled)
	select {
	case <-j.Context().Done():
	case <-time.After(time.Second):
		t.Fatal("job context not canceled")
	}
	// Journal must be gone so the canceled job cannot resurrect.
	deadline := time.Now().Add(2 * time.Second)
	path := filepath.Join(jobsDir(dir), j.ID()+journalExt)
	for {
		if _, err := os.Stat(path); os.IsNotExist(err) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal %s still exists after cancel", path)
		}
		time.Sleep(time.Millisecond)
	}
	if s := m.Stats(); s.Canceled != 1 {
		t.Fatalf("stats.Canceled = %d, want 1", s.Canceled)
	}
}

func TestDeliverDuplicateAndOutOfRangeIgnored(t *testing.T) {
	m := newTestManager(t, Config{}, nil)
	j, err := m.Track(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Deliver(-1, []byte("x"))
	j.Deliver(2, []byte("x"))
	j.Deliver(0, []byte("a"))
	j.Deliver(0, []byte("DUP"))
	j.Deliver(1, []byte("b"))
	rep := j.Poll(context.Background(), 0, 0)
	if rep.State != "done" || string(rep.Results[0]) != "a" || string(rep.Results[1]) != "b" {
		t.Fatalf("poll = %+v", rep)
	}
	// Post-terminal delivery is ignored too.
	j.Deliver(0, []byte("LATE"))
	if got := j.Poll(context.Background(), 0, 0); string(got.Results[0]) != "a" {
		t.Fatalf("post-terminal deliver mutated results: %s", got.Results[0])
	}
}

func TestTrackFailWakesWaiters(t *testing.T) {
	m := newTestManager(t, Config{}, nil)
	j, err := m.Track(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Deliver(0, []byte("a"))
	done := make(chan PollResponse, 1)
	go func() { done <- j.Poll(context.Background(), 1, 5*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	j.Fail("no replica could run the sub-batch")
	rep := <-done
	if rep.State != "failed" || rep.Error == "" {
		t.Fatalf("poll after fail = %+v", rep)
	}
	// Stream ends early on a terminal state short of all units.
	var got int
	n, err := j.Stream(context.Background(), 0, func(chunk [][]byte) error {
		got += len(chunk)
		return nil
	})
	if err != nil || n != 1 || got != 1 {
		t.Fatalf("stream after fail: n=%d got=%d err=%v", n, got, err)
	}
}

func TestTableBoundAndReap(t *testing.T) {
	m := newTestManager(t, Config{MaxJobs: 2, TTL: 30 * time.Millisecond}, nil)
	j1, err := m.Track(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Track(1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Track(1, nil); err != ErrTableFull {
		t.Fatalf("third Track err = %v, want ErrTableFull", err)
	}
	// Finish j1; after its TTL the next admit reaps it inline.
	j1.Deliver(0, []byte("r"))
	time.Sleep(50 * time.Millisecond)
	if _, err := m.Track(1, nil); err != nil {
		t.Fatalf("Track after TTL expiry err = %v", err)
	}
	if _, ok := m.Get(j1.ID()); ok {
		t.Fatal("reaped job still visible")
	}
	if s := m.Stats(); s.Reaped < 1 {
		t.Fatalf("stats.Reaped = %d, want >= 1", s.Reaped)
	}
}

func TestReaperRemovesExpiredJobs(t *testing.T) {
	m := newTestManager(t, Config{TTL: 20 * time.Millisecond}, echoRun)
	body, units := testBody(t, 1)
	j, err := m.Submit(body, units)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, ok := m.Get(j.ID()); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reaper did not remove expired job")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRecoverResumesWithoutReexecution(t *testing.T) {
	dir := t.TempDir()
	const n = 12
	body, units := testBody(t, n)

	// First life: run half the units, then stop the manager abruptly
	// (Stop cancels runners; release keeps journals on disk).
	var ran1 atomic.Int64
	gate := make(chan struct{})
	run1 := func(ctx context.Context, unit json.RawMessage, index int) []byte {
		if index >= n/2 {
			select {
			case <-gate:
			case <-ctx.Done():
			}
		}
		ran1.Add(1)
		return echoRun(ctx, unit, index)
	}
	m1 := NewManager(Config{Dir: dir}, experiments.NewEngine(2), run1)
	j1, err := m1.Submit(body, units)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first half to land.
	deadline := time.Now().Add(5 * time.Second)
	for j1.Frontier() < n/2 {
		if time.Now().After(deadline) {
			t.Fatalf("frontier = %d, want >= %d", j1.Frontier(), n/2)
		}
		time.Sleep(time.Millisecond)
	}
	id := j1.ID()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	m1.Close(ctx)
	cancel()
	close(gate)

	// Second life: recovery must preload the journaled prefix and only
	// re-execute the lost units.
	var ran2 atomic.Int64
	var reran1stHalf atomic.Int64
	run2 := func(ctx context.Context, unit json.RawMessage, index int) []byte {
		ran2.Add(1)
		if index < n/2 {
			reran1stHalf.Add(1)
		}
		return echoRun(ctx, unit, index)
	}
	m2 := NewManager(Config{Dir: dir}, experiments.NewEngine(2), run2)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m2.Close(ctx)
	}()
	rs := m2.Recover()
	if rs.Resumed != 1 || rs.Units < n/2 {
		t.Fatalf("recover stats = %+v, want 1 resumed with >= %d units", rs, n/2)
	}
	j2, ok := m2.Get(id)
	if !ok {
		t.Fatalf("recovered job %s not in table", id)
	}
	if j2.Resumed() != rs.Units {
		t.Fatalf("job resumed = %d, want %d", j2.Resumed(), rs.Units)
	}
	waitState(t, j2, StateDone)
	if got := reran1stHalf.Load(); got != 0 {
		t.Fatalf("recovery re-executed %d journaled units", got)
	}
	if got := int(ran2.Load()) + rs.Units; got != n {
		t.Fatalf("second life executed %d units + %d preloaded, want total %d", ran2.Load(), rs.Units, n)
	}

	// The full result set must be byte-identical to an uninterrupted run.
	rep := j2.Poll(context.Background(), 0, 0)
	for i, r := range rep.Results {
		if want := echoRun(context.Background(), units[i], i); !bytes.Equal(r, want) {
			t.Fatalf("recovered result[%d] = %s, want %s", i, r, want)
		}
	}
	if s := m2.Stats(); s.ResumedJobs != 1 || int(s.ResumedUnits) != rs.Units {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRecoverCompleteJobStaysQueryable(t *testing.T) {
	dir := t.TempDir()
	body, units := testBody(t, 5)
	m1 := NewManager(Config{Dir: dir}, experiments.NewEngine(2), echoRun)
	j1, err := m1.Submit(body, units)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, StateDone)
	id := j1.ID()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	m1.Close(ctx)
	cancel()

	m2 := newTestManager(t, Config{Dir: dir}, echoRun)
	rs := m2.Recover()
	if rs.Complete != 1 || rs.Resumed != 0 {
		t.Fatalf("recover stats = %+v, want 1 complete", rs)
	}
	j2, ok := m2.Get(id)
	if !ok || j2.State() != StateDone {
		t.Fatalf("complete job not queryable after restart: ok=%v", ok)
	}
	rep := j2.Poll(context.Background(), 0, 0)
	if len(rep.Results) != 5 {
		t.Fatalf("recovered complete job returned %d results", len(rep.Results))
	}
	for i, r := range rep.Results {
		if want := echoRun(context.Background(), units[i], i); !bytes.Equal(r, want) {
			t.Fatalf("result[%d] mismatch after restart", i)
		}
	}
}

func TestRecoverPrunesCorruptJournals(t *testing.T) {
	dir := t.TempDir()
	jd := jobsDir(dir)
	if err := os.MkdirAll(jd, 0o755); err != nil {
		t.Fatal(err)
	}
	// Garbage file, wrong-name file, and a valid header whose filename
	// does not match the journaled id.
	os.WriteFile(filepath.Join(jd, "jdeadbeef.job"), []byte("not a journal"), 0o644)
	os.WriteFile(filepath.Join(jd, "jmismatch.job"), encodeJournalHeader("jother", 1, []byte(`{"units":[{}]}`)), 0o644)
	// Header whose body does not parse to the journaled unit count.
	os.WriteFile(filepath.Join(jd, "jbadbody.job"), encodeJournalHeader("jbadbody", 3, []byte(`{"units":[{}]}`)), 0o644)

	m := newTestManager(t, Config{Dir: dir}, echoRun)
	rs := m.Recover()
	if rs.Pruned != 3 || rs.Resumed != 0 || rs.Complete != 0 {
		t.Fatalf("recover stats = %+v, want 3 pruned", rs)
	}
	entries, _ := os.ReadDir(jd)
	if len(entries) != 0 {
		t.Fatalf("%d corrupt journals left on disk", len(entries))
	}
}

func TestSubmitAfterStopRefused(t *testing.T) {
	m := NewManager(Config{}, experiments.NewEngine(1), echoRun)
	m.Stop()
	body, units := testBody(t, 1)
	if _, err := m.Submit(body, units); err != ErrClosed {
		t.Fatalf("Submit after Stop err = %v, want ErrClosed", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestStopWakesPollersAndStreamers(t *testing.T) {
	m := NewManager(Config{}, nil, nil)
	j, err := m.Track(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	pollDone := make(chan PollResponse, 1)
	streamDone := make(chan error, 1)
	go func() { pollDone <- j.Poll(context.Background(), 0, time.Minute) }()
	go func() {
		_, err := j.Stream(context.Background(), 0, func([][]byte) error { return nil })
		streamDone <- err
	}()
	time.Sleep(10 * time.Millisecond)
	m.Stop()
	select {
	case <-pollDone:
	case <-time.After(2 * time.Second):
		t.Fatal("poller not woken by Stop")
	}
	select {
	case err := <-streamDone:
		if err != nil {
			t.Fatalf("stream err after Stop = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("streamer not woken by Stop")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m.Close(ctx)
}

func TestJobIDsUnique(t *testing.T) {
	m := newTestManager(t, Config{MaxJobs: 128}, nil)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		j, err := m.Track(1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if seen[j.ID()] {
			t.Fatalf("duplicate job id %s", j.ID())
		}
		if !strings.HasPrefix(j.ID(), "j") || len(j.ID()) != 17 {
			t.Fatalf("malformed job id %q", j.ID())
		}
		seen[j.ID()] = true
	}
}
