package jobs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	body := []byte(`{"units":[{"a":1},{"a":2},{"a":3}]}`)
	jr := createJournal(dir, "jcafe", 3, body)
	if jr == nil {
		t.Fatal("createJournal returned nil")
	}
	jr.append(2, []byte("result-two"))
	jr.append(0, []byte("result-zero"))
	jr.close()

	data, err := os.ReadFile(filepath.Join(dir, "jcafe"+journalExt))
	if err != nil {
		t.Fatal(err)
	}
	dj, err := decodeJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if dj.id != "jcafe" || dj.units != 3 || !bytes.Equal(dj.body, body) {
		t.Fatalf("decoded header = %q/%d", dj.id, dj.units)
	}
	if len(dj.records) != 2 ||
		dj.records[0].index != 2 || string(dj.records[0].payload) != "result-two" ||
		dj.records[1].index != 0 || string(dj.records[1].payload) != "result-zero" {
		t.Fatalf("decoded records = %+v", dj.records)
	}
	if dj.goodLen != int64(len(data)) {
		t.Fatalf("goodLen = %d, want %d (whole file intact)", dj.goodLen, len(data))
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	body := []byte(`{"units":[{},{}]}`)
	jr := createJournal(dir, "jtear", 2, body)
	if jr == nil {
		t.Fatal("createJournal returned nil")
	}
	jr.append(0, []byte("intact"))
	jr.close()
	path := filepath.Join(dir, "jtear"+journalExt)
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A crash mid-append leaves a partial record: a full record minus
	// its last byte.
	torn := append(append([]byte{}, intact...), encodeRecord(1, []byte("lost"))[:10]...)

	dj, err := decodeJournal(torn)
	if err != nil {
		t.Fatal(err)
	}
	if len(dj.records) != 1 || dj.records[0].index != 0 {
		t.Fatalf("records = %+v, want only the intact one", dj.records)
	}
	if dj.goodLen != int64(len(intact)) {
		t.Fatalf("goodLen = %d, want %d", dj.goodLen, len(intact))
	}

	// Reopening for append truncates the tail, and new appends decode.
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	jr2 := openJournalForAppend(path, dj.goodLen)
	if jr2 == nil {
		t.Fatal("openJournalForAppend returned nil")
	}
	jr2.append(1, []byte("redone"))
	jr2.close()
	data, _ := os.ReadFile(path)
	dj2, err := decodeJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(dj2.records) != 2 || string(dj2.records[1].payload) != "redone" {
		t.Fatalf("post-truncate records = %+v", dj2.records)
	}
}

func TestJournalCorruptRecordChecksumEndsStream(t *testing.T) {
	dir := t.TempDir()
	jr := createJournal(dir, "jflip", 4, []byte(`{"units":[{},{},{},{}]}`))
	jr.append(0, []byte("good"))
	jr.append(1, []byte("evil"))
	jr.close()
	path := filepath.Join(dir, "jflip"+journalExt)
	data, _ := os.ReadFile(path)
	// Flip a bit in the last record's payload ("evil" at the tail).
	data[len(data)-1] ^= 0x40
	dj, err := decodeJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(dj.records) != 1 || dj.records[0].index != 0 {
		t.Fatalf("records = %+v, want corrupt tail dropped", dj.records)
	}
}

func TestJournalHeaderCorruptionIsError(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOTMAGIC and then some trailing bytes"),
		"truncated": []byte(journalMagic),
	}
	// Body checksum mismatch.
	h := encodeJournalHeader("jx", 1, []byte(`{"units":[{}]}`))
	h[len(h)-1] ^= 1
	cases["body bitflip"] = h

	for name, data := range cases {
		if _, err := decodeJournal(data); err == nil {
			t.Errorf("%s: decodeJournal succeeded, want error", name)
		}
	}
}

func TestJournalNilSafe(t *testing.T) {
	var jr *journal
	jr.append(0, []byte("x")) // must not panic
	jr.close()
	jr.remove()
}
