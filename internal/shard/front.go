// The HTTP front tier: routes /v1 traffic across an idemd replica fleet
// by buildcache content key, splits /v1/batch into per-replica
// sub-batches, and keeps responses byte-identical to a single-process
// run. See the package comment in ring.go and docs/sharding.md.
package shard

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"idemproc/internal/buildcache"
	"idemproc/internal/jobs"
	"idemproc/internal/resilience"
	"idemproc/internal/server"
)

// Config sizes the front tier. Zero values select the documented
// defaults.
type Config struct {
	// Backends are the replica addresses (host:port). At least one.
	Backends []string
	// HealthInterval is the /readyz poll period (default 250ms).
	HealthInterval time.Duration
	// HealthTimeout bounds one readiness probe (default 2s).
	HealthTimeout time.Duration
	// RequestTimeout is the per-request deadline at the front (default
	// 60s — above the replica default so a replica-side 503 surfaces
	// before the front gives up; <0 disables).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 8 MiB, matching the
	// replica default so oversize rejections read identically).
	MaxBodyBytes int64
	// MaxBatchUnits bounds the batches the front will split (default
	// 256, the replica default). Larger batches are forwarded unsplit
	// and rejected canonically by a replica.
	MaxBatchUnits int
	// Retries is the per-backend resilience retry budget (default 1);
	// exhausting it fails the request over to the next ring owner.
	Retries int
	// HedgeAfter launches a duplicate attempt on the same backend if
	// the first is still in flight after this long (0 disables). Hedged
	// siblings are verified byte-identical (resilience.ErrDivergent on
	// violation — surfaced, never papered over).
	HedgeAfter time.Duration
	// BreakerThreshold opens a per-backend circuit breaker after this
	// many consecutive retryable failures (default 4; <0 disables). An
	// open breaker makes routing prefer the next owner instead of
	// sleeping out the cooldown.
	BreakerThreshold int
	// MaxJobs bounds the front-side job table (default 64). Each front
	// job fans out per-owner sub-jobs to the replicas.
	MaxJobs int
	// JobTTL is how long a terminal front job stays queryable (default
	// 10m, matching the replica default).
	JobTTL time.Duration
	// JobPollMax caps one GET /v1/jobs/{id} long-poll (default 25s).
	JobPollMax time.Duration
	// Seed drives the deterministic retry-jitter streams.
	Seed uint64
	// Logf receives lifecycle and rebalance lines (default: discard).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.HealthInterval <= 0 {
		c.HealthInterval = 250 * time.Millisecond
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 2 * time.Second
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBatchUnits <= 0 {
		c.MaxBatchUnits = 256
	}
	if c.Retries == 0 {
		c.Retries = 1
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 4
	}
	if c.BreakerThreshold < 0 {
		c.BreakerThreshold = 0
	}
	if c.JobPollMax <= 0 {
		c.JobPollMax = 25 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// backend is one replica as the router sees it: its address, its
// resilience client (retry/hedge/breaker state is per-backend) and the
// router's current health belief.
type backend struct {
	id      string
	base    string
	rc      *resilience.Client
	healthy atomic.Bool
}

// Front is the sharded front tier. Create with New; serve via Handler
// (embedding/tests) or Serve+Shutdown (the daemon). New starts the
// health-check loop — call Shutdown or Close even when only Handler is
// used, or the loop leaks.
type Front struct {
	cfg      Config
	ring     *Ring
	backends map[string]*backend
	client   *http.Client
	metrics  *Metrics
	mux      *http.ServeMux
	jobs     *jobs.Manager

	// flights single-flights identical in-flight bodies during the
	// no-healthy-owner failover window (see routeMaybeCoalesced).
	flightMu sync.Mutex
	flights  map[string]*flight

	draining atomic.Bool
	httpSrv  *http.Server
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a front over the configured backends and starts its
// health loop. Backends start healthy (optimistically — a dead one
// fails its first probe or its first request, whichever comes first).
func New(cfg Config) (*Front, error) {
	cfg = cfg.withDefaults()
	ring, err := NewRing(cfg.Backends)
	if err != nil {
		return nil, err
	}
	f := &Front{
		cfg:      cfg,
		ring:     ring,
		backends: map[string]*backend{},
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}},
		metrics: NewMetrics(),
		mux:     http.NewServeMux(),
		flights: map[string]*flight{},
		stop:    make(chan struct{}),
	}
	// The front's job table tracks externally fed jobs only (no engine,
	// no journal — durability lives replica-side, where the work runs).
	f.jobs = jobs.NewManager(jobs.Config{
		MaxJobs: cfg.MaxJobs,
		TTL:     cfg.JobTTL,
		Logf:    cfg.Logf,
	}, nil, nil)
	for _, id := range ring.Replicas() {
		b := &backend{
			id:   id,
			base: "http://" + id,
			rc: resilience.NewClient(resilience.Policy{
				MaxRetries:       cfg.Retries,
				HedgeAfter:       cfg.HedgeAfter,
				VerifyIdentical:  cfg.HedgeAfter > 0,
				BreakerThreshold: cfg.BreakerThreshold,
				Seed:             cfg.Seed ^ hash64(id),
			}),
		}
		b.healthy.Store(true)
		f.backends[id] = b
	}
	f.mux.HandleFunc("/healthz", f.handleHealthz)
	f.mux.HandleFunc("/readyz", f.handleReadyz)
	f.mux.HandleFunc("/metrics", f.handleMetrics)
	f.mux.HandleFunc("/v1/compile", f.proxySingle("/v1/compile"))
	f.mux.HandleFunc("/v1/simulate", f.proxySingle("/v1/simulate"))
	f.mux.HandleFunc("/v1/batch", f.handleBatch)
	f.mux.HandleFunc("/v1/jobs", f.handleJobSubmit)
	f.mux.HandleFunc("/v1/jobs/{id}", f.handleJob)
	f.mux.HandleFunc("/v1/jobs/{id}/stream", f.handleJobStream)

	f.wg.Add(1)
	go f.healthLoop()
	return f, nil
}

// Handler returns the front's HTTP handler.
func (f *Front) Handler() http.Handler { return f.mux }

// Metrics exposes the fleet metric registry (tests assert on it).
func (f *Front) Metrics() *Metrics { return f.metrics }

// Ring exposes the routing ring (tests pin ownership against it).
func (f *Front) Ring() *Ring { return f.ring }

// Jobs exposes the front-side job manager (tests assert on its stats).
func (f *Front) Jobs() *jobs.Manager { return f.jobs }

// Serve accepts connections on l until Shutdown; returns
// http.ErrServerClosed after a clean drain.
func (f *Front) Serve(l net.Listener) error {
	f.httpSrv = &http.Server{Handler: f.mux, ReadHeaderTimeout: 10 * time.Second}
	f.cfg.Logf("idemfront: listening on %s, %d backends", l.Addr(), f.ring.Size())
	return f.httpSrv.Serve(l)
}

// Shutdown drains the front: readiness flips to 503, in-flight
// requests complete, the health loop stops.
func (f *Front) Shutdown(ctx context.Context) error {
	f.draining.Store(true)
	f.stopOnce.Do(func() { close(f.stop) })
	f.cfg.Logf("idemfront: draining (readyz -> 503)")
	// Stopping the job manager cancels every merger (each best-effort
	// cancels its replica sub-job) and wakes parked pollers/streamers so
	// their in-flight requests can complete inside the drain window.
	f.jobs.Stop()
	var err error
	if f.httpSrv != nil {
		err = f.httpSrv.Shutdown(ctx)
	}
	if jerr := f.jobs.Close(ctx); jerr != nil && err == nil {
		err = jerr
	}
	f.wg.Wait()
	f.cfg.Logf("idemfront: drained")
	return err
}

// Close force-closes the listener, connections and health loop.
func (f *Front) Close() error {
	f.draining.Store(true)
	f.stopOnce.Do(func() { close(f.stop) })
	f.jobs.Stop()
	var err error
	if f.httpSrv != nil {
		err = f.httpSrv.Close()
	}
	f.wg.Wait()
	return err
}

// Draining reports whether Shutdown has begun.
func (f *Front) Draining() bool { return f.draining.Load() }

// ---------------------------------------------------------------------
// Health.

func (f *Front) healthLoop() {
	defer f.wg.Done()
	t := time.NewTicker(f.cfg.HealthInterval)
	defer t.Stop()
	for {
		f.sweep()
		select {
		case <-f.stop:
			return
		case <-t.C:
		}
	}
}

// sweep probes every backend's /readyz once. A draining replica (503)
// or an unreachable one is marked out; its keys deterministically
// rehash to the surviving owners on the next request.
func (f *Front) sweep() {
	for _, id := range f.ring.Replicas() {
		b := f.backends[id]
		f.setHealth(b, f.probe(b), "readyz")
	}
}

func (f *Front) probe(b *backend) bool {
	ctx, cancel := context.WithTimeout(context.Background(), f.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// setHealth records a health transition: the ring generation advances
// and the rebalance counter ticks exactly when the effective replica
// set changes.
func (f *Front) setHealth(b *backend, ok bool, why string) {
	if b.healthy.Swap(ok) == ok {
		return
	}
	gen := f.metrics.RingGeneration()
	f.metrics.Rebalance()
	state := "out"
	if ok {
		state = "ready"
	}
	f.cfg.Logf("idemfront: backend %s %s (%s); ring generation %d", b.id, state, why, gen)
}

// healthSnapshot is the router's live health view for /metrics.
func (f *Front) healthSnapshot() map[string]bool {
	out := make(map[string]bool, len(f.backends))
	for id, b := range f.backends {
		out[id] = b.healthy.Load()
	}
	return out
}

// HealthyNow counts currently-healthy backends (tests poll this).
func (f *Front) HealthyNow() int {
	n := 0
	for _, b := range f.backends {
		if b.healthy.Load() {
			n++
		}
	}
	return n
}

// ---------------------------------------------------------------------
// Plumbing shared by the handlers.

func (f *Front) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (f *Front) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case f.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	case f.HealthyNow() == 0:
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no healthy backends")
	default:
		fmt.Fprintln(w, "ready")
	}
}

func (f *Front) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, f.metrics.Render(f.healthSnapshot(), f.jobs.Stats(), f.verifyTotals()))
}

// verifyTotals sums the idemd_verify_* counters across healthy backends
// by scraping their /metrics concurrently (bounded by HealthTimeout, the
// same budget as a readiness probe). Replicas own verification — the
// front only aggregates — so a backend that fails to answer simply
// contributes nothing this scrape; Backends records how many did.
func (f *Front) verifyTotals() VerifyTotals {
	var (
		mu sync.Mutex
		vt VerifyTotals
		wg sync.WaitGroup
	)
	for _, id := range f.ring.Replicas() {
		b := f.backends[id]
		if !b.healthy.Load() {
			continue
		}
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), f.cfg.HealthTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/metrics", nil)
			if err != nil {
				return
			}
			resp, err := f.client.Do(req)
			if err != nil {
				return
			}
			defer func() {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}()
			if resp.StatusCode != http.StatusOK {
				return
			}
			checked, failed, rejected, found := parseVerifyCounters(resp.Body)
			if !found {
				return
			}
			mu.Lock()
			vt.Checked += checked
			vt.Failed += failed
			vt.RejectedArtifacts += rejected
			vt.Backends++
			mu.Unlock()
		}(b)
	}
	wg.Wait()
	return vt
}

// parseVerifyCounters extracts the three idemd_verify_* counters from a
// Prometheus text stream; found is false when none are present (an old
// replica, or not an idemd /metrics page at all).
func parseVerifyCounters(r io.Reader) (checked, failed, rejected int64, found bool) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	take := func(line, name string) (int64, bool) {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			return 0, false
		}
		v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	for sc.Scan() {
		line := sc.Text()
		if v, ok := take(line, "idemd_verify_checked_total"); ok {
			checked, found = v, true
		} else if v, ok := take(line, "idemd_verify_failed_total"); ok {
			failed, found = v, true
		} else if v, ok := take(line, "idemd_verify_rejected_artifacts_total"); ok {
			rejected, found = v, true
		}
	}
	return checked, failed, rejected, found
}

// respond writes one front-level response and records it.
func (f *Front) respond(w http.ResponseWriter, path string, code int, body []byte) {
	f.metrics.ObservePath(path, code)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body)
}

func (f *Front) respondError(w http.ResponseWriter, path string, code int, msg string) {
	b, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	f.respond(w, path, code, append(b, '\n'))
}

// admit performs the front-level request preamble shared by all /v1
// paths: method filter (same 405 body a replica writes) and a bounded
// body read (same 413 text, same default bound). It returns ok=false
// after writing the response itself.
func (f *Front) admit(w http.ResponseWriter, r *http.Request, path string) (body []byte, done func(), ctx context.Context, ok bool) {
	fin := f.metrics.InFlight()
	if r.Method != http.MethodPost {
		defer fin()
		w.Header().Set("Allow", http.MethodPost)
		f.respondError(w, path, http.StatusMethodNotAllowed, fmt.Sprintf("method %s not allowed", r.Method))
		return nil, nil, nil, false
	}
	b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, f.cfg.MaxBodyBytes))
	if err != nil {
		defer fin()
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			f.respondError(w, path, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", f.cfg.MaxBodyBytes))
		} else {
			f.respondError(w, path, http.StatusBadRequest, fmt.Sprintf("reading request body: %v", err))
		}
		return nil, nil, nil, false
	}
	ctx = r.Context()
	cancel := func() {}
	if f.cfg.RequestTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, f.cfg.RequestTimeout)
	}
	return b, func() { cancel(); fin() }, ctx, true
}

// ---------------------------------------------------------------------
// Single-key proxying (/v1/compile, /v1/simulate).

func (f *Front) proxySingle(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, done, ctx, ok := f.admit(w, r, path)
		if !ok {
			return
		}
		defer done()
		key, parsed := routeKeyFor(path, body)
		if !parsed {
			f.metrics.RawRouted()
		}
		status, resp, err := f.routeMaybeCoalesced(ctx, path, body, key)
		if err != nil {
			f.respondError(w, path, http.StatusServiceUnavailable,
				fmt.Sprintf("no replica served the request: %v", err))
			return
		}
		f.respond(w, path, status, resp)
	}
}

// routeKeyFor computes the content routing key for a request body. A
// body that does not parse as the path's request shape routes by its
// hash instead — still deterministic, and the owning replica produces
// the canonical error response for it.
func routeKeyFor(path string, body []byte) (string, bool) {
	switch path {
	case "/v1/compile":
		var req server.CompileRequest
		if strictUnmarshal(body, &req) == nil {
			return keyString(req.RouteKey()), true
		}
	case "/v1/simulate":
		var req server.SimulateRequest
		if strictUnmarshal(body, &req) == nil {
			return keyString(req.RouteKey()), true
		}
	}
	return rawKey(body), false
}

// keyString flattens a buildcache key into the ring's key space.
func keyString(k buildcache.Key) string {
	return k.Workload + "|" + strconv.Itoa(k.MemWords) + "|" + k.Options
}

func rawKey(body []byte) string {
	sum := sha256.Sum256(body)
	return "raw|" + hex.EncodeToString(sum[:16])
}

func strictUnmarshal(b []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data")
	}
	return nil
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// ---------------------------------------------------------------------
// Single-flight coalescing during failover.

// flight is one in-flight leader request that identical followers wait
// on. Followers reuse the leader's response only on clean success; a
// failed leader sends every follower through its own route() so a
// transient fault cannot fan out.
type flight struct {
	done   chan struct{}
	status int
	body   []byte
	err    error
}

// routeMaybeCoalesced is route() with single-flight coalescing for
// /v1/compile while the key's primary owner is out (unhealthy or
// breaker-open). In that failover window identical retrying clients
// pile onto the surviving replicas exactly when capacity is scarcest;
// since responses are pure functions of the request bytes, serving all
// of them one upstream round-trip is free — and the window gate keeps
// the steady state zero-cost. Flights key on the body hash, not the
// routing key: only byte-identical requests may share a response.
func (f *Front) routeMaybeCoalesced(ctx context.Context, path string, body []byte, key string) (int, []byte, error) {
	if path != "/v1/compile" || !f.failoverWindow(key) {
		return f.route(ctx, path, body, key)
	}
	fk := path + "\x00" + rawKey(body)
	f.flightMu.Lock()
	if fl, ok := f.flights[fk]; ok {
		f.flightMu.Unlock()
		select {
		case <-fl.done:
			if fl.err == nil {
				f.metrics.Coalesced()
				return fl.status, fl.body, nil
			}
		case <-ctx.Done():
			return 0, nil, context.Cause(ctx)
		}
		// Leader failed; fall through to an independent attempt.
		return f.route(ctx, path, body, key)
	}
	fl := &flight{done: make(chan struct{})}
	f.flights[fk] = fl
	f.flightMu.Unlock()

	fl.status, fl.body, fl.err = f.route(ctx, path, body, key)
	f.flightMu.Lock()
	delete(f.flights, fk)
	f.flightMu.Unlock()
	close(fl.done)
	return fl.status, fl.body, fl.err
}

// failoverWindow reports whether the key's primary ring owner cannot
// take the request right now (marked out, or its breaker is open).
func (f *Front) failoverWindow(key string) bool {
	b := f.backends[f.ring.Owner(key)]
	return !(b.healthy.Load() && b.rc.Ready())
}

// ---------------------------------------------------------------------
// Routing with failover.

// route sends body to the key's ring owner, failing over down the
// deterministic preference list when a backend cannot serve it:
// unhealthy or breaker-open backends are deprioritized up front,
// transport errors mark the backend out reactively, and 5xx responses
// move on without touching health (the periodic probe decides). A
// response below 500 — including a replica's canonical 4xx — ends the
// search. Only correctness stops failover early: a divergent hedge
// (idempotence violation) or the caller's context expiring.
func (f *Front) route(ctx context.Context, path string, body []byte, key string) (int, []byte, error) {
	prefs := f.ring.Owners(key)
	var avail, rest []*backend
	for _, id := range prefs {
		b := f.backends[id]
		if b.healthy.Load() && b.rc.Ready() {
			avail = append(avail, b)
		} else {
			rest = append(rest, b)
		}
	}
	cands := append(avail, rest...)

	jitter := hash64(key)
	var lastStatus int
	var lastBody []byte
	var lastErr error
	sent := false
	for _, b := range cands {
		status, resp, err := f.send(ctx, b, path, body, jitter)
		if err == nil && status < 500 {
			if b.id != prefs[0] {
				f.metrics.Failover()
			}
			return status, resp, nil
		}
		lastStatus, lastBody, lastErr = status, resp, err
		if sent {
			f.metrics.Failover()
		}
		sent = true
		if err != nil && status == 0 {
			// No HTTP response at all: the backend is unreachable. Mark it
			// out now instead of waiting for the next probe.
			f.setHealth(b, false, "transport error")
		}
		if errors.Is(err, resilience.ErrDivergent) {
			// An idempotence violation is a correctness signal, not a
			// capacity problem; rerouting would mask it.
			return 0, nil, err
		}
		if ctx.Err() != nil {
			return 0, nil, context.Cause(ctx)
		}
	}
	f.metrics.NoReplica()
	if lastStatus != 0 {
		// Every backend answered with a 5xx; surface the last replica's
		// canonical error body rather than inventing one.
		return lastStatus, lastBody, nil
	}
	return 0, nil, fmt.Errorf("all %d backends failed: %w", len(cands), lastErr)
}

// send runs one resilient request against one backend and records it.
func (f *Front) send(ctx context.Context, b *backend, path string, body []byte, jitter uint64) (int, []byte, error) {
	start := time.Now()
	res, err := b.rc.Do(ctx, jitter, func(ctx context.Context) (int, []byte, error) {
		return post(ctx, f.client, b.base+path, body)
	})
	f.metrics.ObserveBackend(b.id, time.Since(start), err != nil || res.Status >= 500)
	return res.Status, res.Body, err
}

func post(ctx context.Context, client *http.Client, url string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		// A shedding replica schedules its own retry; surfacing the hint
		// as an error lets the resilience layer sleep exactly that long
		// instead of guessing (Do treats 429 as retryable either way).
		if d, ok := resilience.ParseRetryAfter(resp.Header.Get("Retry-After")); ok {
			return resp.StatusCode, b, &resilience.RetryAfterError{
				After: d,
				Err:   fmt.Errorf("status %d", resp.StatusCode),
			}
		}
	}
	return resp.StatusCode, b, nil
}

// ---------------------------------------------------------------------
// Batch splitting (/v1/batch).

// batchGroup is one replica's slice of a batch: the original indices
// and raw unit bodies, routed by the first unit's content key (whose
// ring owner defines the group).
type batchGroup struct {
	key     string
	indices []int
	units   []json.RawMessage

	status int
	resp   []byte
	err    error
}

// rawBatchResult mirrors server.BatchResult field-for-field with the
// payloads kept as raw bytes, so re-assembly rewrites only the index
// and passes replica output through verbatim — that is what keeps a
// fleet's batch responses byte-identical to a single process's.
type rawBatchResult struct {
	Index    int             `json:"index"`
	Compile  json.RawMessage `json:"compile,omitempty"`
	Simulate json.RawMessage `json:"simulate,omitempty"`
	Error    string          `json:"error,omitempty"`
}

func (f *Front) handleBatch(w http.ResponseWriter, r *http.Request) {
	const path = "/v1/batch"
	body, done, ctx, ok := f.admit(w, r, path)
	if !ok {
		return
	}
	defer done()

	groups, splittable := f.splitBatch(body)
	if !splittable {
		// Invalid shape (or beyond the split bound): forward unsplit so a
		// replica produces the canonical error — or the canonical success
		// for the shapes the splitter declines but replicas accept.
		f.metrics.RawRouted()
		status, resp, err := f.route(ctx, path, body, rawKey(body))
		if err != nil {
			f.respondError(w, path, http.StatusServiceUnavailable,
				fmt.Sprintf("no replica served the request: %v", err))
			return
		}
		f.respond(w, path, status, resp)
		return
	}

	// Fan the sub-batches out concurrently; each group fails over
	// independently (any replica can compute any unit).
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g *batchGroup) {
			defer wg.Done()
			f.metrics.SubBatch()
			sub, err := json.Marshal(struct {
				Units []json.RawMessage `json:"units"`
			}{Units: g.units})
			if err != nil {
				g.err = err
				return
			}
			g.status, g.resp, g.err = f.route(ctx, path, sub, g.key)
		}(g)
	}
	wg.Wait()

	// Re-assemble in original index order. A group that no replica could
	// serve fails the whole batch: partial output would not be
	// byte-stable, and the determinism contract is the product.
	total := 0
	for _, g := range groups {
		total += len(g.indices)
	}
	merged := make([]rawBatchResult, total)
	for _, g := range groups {
		if g.err != nil {
			f.respondError(w, path, http.StatusServiceUnavailable,
				fmt.Sprintf("sub-batch failed on every replica: %v", g.err))
			return
		}
		if g.status != http.StatusOK {
			// A replica rejected a sub-batch the splitter considered valid
			// (e.g. a stricter replica-side bound): surface its response.
			f.respond(w, path, g.status, g.resp)
			return
		}
		var sub struct {
			Results []rawBatchResult `json:"results"`
		}
		if err := json.Unmarshal(g.resp, &sub); err != nil || len(sub.Results) != len(g.indices) {
			f.respondError(w, path, http.StatusBadGateway,
				fmt.Sprintf("sub-batch response malformed: %d results for %d units", len(sub.Results), len(g.indices)))
			return
		}
		for i, res := range sub.Results {
			res.Index = g.indices[i]
			merged[res.Index] = res
		}
	}
	out, err := json.Marshal(struct {
		Results []rawBatchResult `json:"results"`
	}{Results: merged})
	if err != nil {
		f.respondError(w, path, http.StatusInternalServerError, "response encoding failed")
		return
	}
	f.respond(w, path, http.StatusOK, append(out, '\n'))
}

// splitBatch parses a batch body and groups its units by ring owner.
// It declines (ok=false) anything it cannot prove it will reassemble
// byte-identically: unparseable envelopes, unknown fields, unit counts
// outside the replica contract, or units without exactly one of
// compile/simulate — those forward unsplit and get the canonical
// replica answer.
func (f *Front) splitBatch(body []byte) ([]*batchGroup, bool) {
	var outer struct {
		Units []json.RawMessage `json:"units"`
	}
	if strictUnmarshal(body, &outer) != nil {
		return nil, false
	}
	if len(outer.Units) == 0 || len(outer.Units) > f.cfg.MaxBatchUnits {
		return nil, false
	}
	groups := map[string]*batchGroup{}
	var order []*batchGroup
	for i, raw := range outer.Units {
		var u server.BatchUnit
		if strictUnmarshal(raw, &u) != nil {
			return nil, false
		}
		var key string
		switch {
		case u.Compile != nil && u.Simulate == nil:
			key = keyString(u.Compile.RouteKey())
		case u.Simulate != nil && u.Compile == nil:
			key = keyString(u.Simulate.RouteKey())
		default:
			return nil, false
		}
		owner := f.ring.Owner(key)
		g := groups[owner]
		if g == nil {
			g = &batchGroup{key: key}
			groups[owner] = g
			order = append(order, g)
		}
		g.indices = append(g.indices, i)
		g.units = append(g.units, raw)
	}
	return order, true
}
