// Package shard implements the sharded front tier for an idemd replica
// fleet: a deterministic rendezvous-hash ring that assigns every
// buildcache content key to one replica, and an HTTP front (Front) that
// routes /v1 traffic by that assignment so each replica's bounded cache
// holds a disjoint slice of the working set — cache capacity scales
// with the fleet instead of stopping at one process's byte bound.
//
// Routing is purely a performance decision. The paper's core property —
// every /v1 response is a deterministic, idempotent function of its
// request — means any replica can recompute any key, so a dead or
// draining replica degrades throughput (its keys rehash and recompile
// elsewhere), never correctness. That is also what makes the ring's
// determinism contract checkable end to end: a fleet and a single
// process must produce byte-identical responses (make shard-smoke).
//
// See docs/sharding.md for the algorithm, the drain semantics and the
// determinism contract.
package shard

import (
	"fmt"
	"sort"
)

// Ring is a rendezvous (highest-random-weight) hash ring over replica
// IDs. It is immutable after construction and safe for concurrent use.
//
// Rendezvous hashing over a handful of replicas beats a vnode ring
// here: assignment is a pure function of (replica set, key) with no
// auxiliary state to persist or synchronize, ties in the fleet sizes we
// run (N ≤ dozens) cost O(N) per lookup which is noise next to a
// compile or simulation, and membership changes have the minimal-
// disruption property exactly — when a replica leaves, only the keys it
// owned move, and no key moves between two surviving replicas.
type Ring struct {
	replicas []string // sorted, unique, non-empty
}

// RingConfig is the ring's marshalable identity. Two processes that
// build rings from equal configs (in any replica order) compute
// identical assignments — the cross-process determinism contract the
// front tier and its tests pin.
type RingConfig struct {
	Replicas []string `json:"replicas"`
}

// NewRing builds a ring over the replica IDs (for the front tier these
// are backend host:port addresses). Order does not matter; duplicates
// and empty IDs are rejected.
func NewRing(replicas []string) (*Ring, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("shard: ring needs at least one replica")
	}
	sorted := make([]string, len(replicas))
	copy(sorted, replicas)
	sort.Strings(sorted)
	for i, id := range sorted {
		if id == "" {
			return nil, fmt.Errorf("shard: empty replica id")
		}
		if i > 0 && sorted[i-1] == id {
			return nil, fmt.Errorf("shard: duplicate replica id %q", id)
		}
	}
	return &Ring{replicas: sorted}, nil
}

// RingFromConfig rebuilds a ring from its marshaled identity.
func RingFromConfig(c RingConfig) (*Ring, error) { return NewRing(c.Replicas) }

// Config returns the ring's marshalable identity (replicas sorted).
func (r *Ring) Config() RingConfig {
	return RingConfig{Replicas: r.Replicas()}
}

// Replicas returns the replica set, sorted.
func (r *Ring) Replicas() []string {
	out := make([]string, len(r.replicas))
	copy(out, r.replicas)
	return out
}

// Size is the replica count.
func (r *Ring) Size() int { return len(r.replicas) }

// Owner returns the replica that owns key: the highest-scoring replica
// under the rendezvous hash. Deterministic across processes and Go
// versions (the hash is hand-rolled FNV-1a + splitmix64, not anything
// seeded per-process).
func (r *Ring) Owner(key string) string {
	best := r.replicas[0]
	bestScore := score(best, key)
	for _, id := range r.replicas[1:] {
		if s := score(id, key); s > bestScore || (s == bestScore && id < best) {
			best, bestScore = id, s
		}
	}
	return best
}

// Owners returns every replica in descending score order for key — the
// failover preference list. Owners(key)[0] == Owner(key); if the owner
// is down the next entry is the deterministic second choice, so every
// front-tier process fails the same key over to the same replica.
func (r *Ring) Owners(key string) []string {
	type scored struct {
		id string
		s  uint64
	}
	all := make([]scored, len(r.replicas))
	for i, id := range r.replicas {
		all[i] = scored{id: id, s: score(id, key)}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].s != all[b].s {
			return all[a].s > all[b].s
		}
		return all[a].id < all[b].id
	})
	out := make([]string, len(all))
	for i, sc := range all {
		out[i] = sc.id
	}
	return out
}

// score is the rendezvous weight of (replica, key): FNV-1a over the
// replica ID, a zero separator, and the key, finished with one
// splitmix64 scramble to decorrelate the low bits FNV leaves biased.
func score(replica, key string) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for i := 0; i < len(replica); i++ {
		h = (h ^ uint64(replica[i])) * prime
	}
	h = (h ^ 0xff) * prime // separator: "ab"+"c" must not collide with "a"+"bc"
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * prime
	}
	// splitmix64 finalizer — the same scramble family the repo's seeded
	// RNGs use (idemload request mix, resilience jitter).
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}
