// Front-tier contract tests. The load-bearing one is byte-identity: a
// 3-replica fleet behind the front must answer every request — valid,
// invalid, batched, method-errored — with exactly the bytes a single
// idemd process produces. The rest pin the properties that make the
// fleet worth running: the working set partitions across replica caches
// (fleet capacity scales with N), batches split and reassemble in index
// order, and killing a replica mid-traffic degrades throughput only.
package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"idemproc/internal/server"
)

// frontTinySrc is a fast ad-hoc workload: main loops its argument times.
const frontTinySrc = `global int g[8] = {1, 2, 3};
func inc(int x) int { return x + g[0]; }
func main(int n) int {
	int s = 0;
	for (int i = 0; i < n; i = i + 1) { s = inc(s) + i; }
	return s;
}
`

// srcVariant returns a distinct-but-cheap workload per i, so a set of
// requests spans many content keys (and therefore many ring owners).
func srcVariant(i int) string {
	return fmt.Sprintf("func main(int n) int {\n\tint s = %d;\n\tfor (int i = 0; i < n; i = i + 1) { s = s + i; }\n\treturn s;\n}\n", i)
}

func newReplica(t *testing.T) (*server.Server, string) {
	t.Helper()
	s := server.New(server.Config{MaxInFlight: 128, RequestTimeout: time.Minute})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, strings.TrimPrefix(ts.URL, "http://")
}

func newFront(t *testing.T, backends []string, mutate func(*Config)) (*Front, string) {
	t.Helper()
	cfg := Config{Backends: backends, HealthInterval: 25 * time.Millisecond}
	if mutate != nil {
		mutate(&cfg)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(ts.Close)
	return f, ts.URL
}

func postBody(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, b
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// battery covers every /v1 path with valid, invalid and mixed-validity
// request bodies. Invalid shapes matter as much as valid ones: the
// front must not invent its own error responses for them.
func battery(t *testing.T) (paths []string, bodies [][]byte) {
	t.Helper()
	add := func(path string, body []byte) {
		paths = append(paths, path)
		bodies = append(bodies, body)
	}
	f := false
	// Valid compiles: ad-hoc sources, a named workload, options variants.
	add("/v1/compile", mustJSON(t, &server.CompileRequest{Source: frontTinySrc}))
	add("/v1/compile", mustJSON(t, &server.CompileRequest{Source: frontTinySrc,
		Options: &server.OptionsSpec{Idempotent: &f}}))
	add("/v1/compile", mustJSON(t, &server.CompileRequest{Workload: "blackscholes"}))
	for i := 0; i < 6; i++ {
		add("/v1/compile", mustJSON(t, &server.CompileRequest{Source: srcVariant(i)}))
	}
	// Valid simulations across schemes, with and without fault injection.
	add("/v1/simulate", mustJSON(t, &server.SimulateRequest{Source: frontTinySrc, Args: []uint64{25}}))
	add("/v1/simulate", mustJSON(t, &server.SimulateRequest{Source: frontTinySrc, Args: []uint64{25},
		Scheme:     "idem",
		Injections: []server.InjectionSpec{{Model: "reg", Step: 40, Mask: 1 << 7}}}))
	add("/v1/simulate", mustJSON(t, &server.SimulateRequest{Source: frontTinySrc, Args: []uint64{25},
		Scheme:     "dmr",
		Injections: []server.InjectionSpec{{Model: "mem", Step: 30, Mask: 1}}}))
	// A batch that spans content keys (so it splits) and includes a
	// per-unit error the replicas report in-band.
	add("/v1/batch", mustJSON(t, &server.BatchRequest{Units: []server.BatchUnit{
		{Compile: &server.CompileRequest{Source: srcVariant(0)}},
		{Simulate: &server.SimulateRequest{Source: frontTinySrc, Args: []uint64{10}, Scheme: "tmr"}},
		{Compile: &server.CompileRequest{Source: "not a program"}},
		{Compile: &server.CompileRequest{Source: srcVariant(1)}},
		{Simulate: &server.SimulateRequest{Source: srcVariant(2), Args: []uint64{5}}},
	}}))
	// Invalid bodies: the front routes these by body hash and the owning
	// replica must produce the canonical error.
	add("/v1/compile", []byte(`{"sourc`+`e": 3}`))
	add("/v1/compile", []byte(`{"bogus_field": true}`))
	add("/v1/compile", []byte(`not json at all`))
	add("/v1/compile", mustJSON(t, &server.CompileRequest{})) // neither source nor workload
	add("/v1/simulate", []byte(`{"source": "x"} trailing`))
	add("/v1/batch", []byte(`{"units": []}`))
	add("/v1/batch", mustJSON(t, &server.BatchRequest{Units: []server.BatchUnit{
		{Compile: &server.CompileRequest{Source: frontTinySrc},
			Simulate: &server.SimulateRequest{Source: frontTinySrc}}, // both set
	}}))
	add("/v1/batch", mustJSON(t, &server.BatchRequest{Units: []server.BatchUnit{{}}})) // neither set
	return paths, bodies
}

// TestFrontMatchesSingleProcess is the determinism contract end to end:
// (status, body) from a 3-replica fleet == (status, body) from one
// process, for every battery request, on both a cold and a warm pass.
func TestFrontMatchesSingleProcess(t *testing.T) {
	ref := server.New(server.Config{MaxInFlight: 128, RequestTimeout: time.Minute})
	refTS := httptest.NewServer(ref.Handler())
	defer refTS.Close()

	var backends []string
	for i := 0; i < 3; i++ {
		_, addr := newReplica(t)
		backends = append(backends, addr)
	}
	_, frontURL := newFront(t, backends, nil)

	paths, bodies := battery(t)
	for pass := 0; pass < 2; pass++ { // second pass exercises warm caches
		for i := range paths {
			wantCode, wantBody := postBody(t, refTS.URL+paths[i], bodies[i])
			gotCode, gotBody := postBody(t, frontURL+paths[i], bodies[i])
			if gotCode != wantCode {
				t.Fatalf("pass %d %s req %d: status %d via front, %d direct\nbody: %s",
					pass, paths[i], i, gotCode, wantCode, gotBody)
			}
			if !bytes.Equal(gotBody, wantBody) {
				t.Fatalf("pass %d %s req %d: bodies diverge\nfront:  %s\ndirect: %s",
					pass, paths[i], i, gotBody, wantBody)
			}
		}
	}

	// Method errors must read identically too (the front answers these
	// itself — it must mimic the replica exactly).
	for _, path := range []string{"/v1/compile", "/v1/simulate", "/v1/batch"} {
		want, wantErr := http.Get(refTS.URL + path)
		got, gotErr := http.Get(frontURL + path)
		if wantErr != nil || gotErr != nil {
			t.Fatalf("GET %s: %v / %v", path, wantErr, gotErr)
		}
		wb, _ := io.ReadAll(want.Body)
		gb, _ := io.ReadAll(got.Body)
		want.Body.Close()
		got.Body.Close()
		if got.StatusCode != want.StatusCode || !bytes.Equal(gb, wb) {
			t.Fatalf("GET %s: front (%d, %s) vs direct (%d, %s)",
				path, got.StatusCode, gb, want.StatusCode, wb)
		}
	}
}

// TestFrontPartitionsWorkingSet: each content key misses exactly once
// fleet-wide (on its ring owner) and hits there afterwards — the cache
// behavior that makes fleet capacity the sum of the replicas' bounds.
func TestFrontPartitionsWorkingSet(t *testing.T) {
	const distinct = 12
	var servers []*server.Server
	var backends []string
	for i := 0; i < 3; i++ {
		s, addr := newReplica(t)
		servers = append(servers, s)
		backends = append(backends, addr)
	}
	_, frontURL := newFront(t, backends, nil)

	for pass := 0; pass < 2; pass++ {
		for i := 0; i < distinct; i++ {
			code, body := postBody(t, frontURL+"/v1/compile", mustJSON(t, &server.CompileRequest{Source: srcVariant(i)}))
			if code != http.StatusOK {
				t.Fatalf("compile %d: status %d: %s", i, code, body)
			}
		}
	}

	var hits, misses int64
	var owning int
	for i, s := range servers {
		st := s.Cache().Stats()
		hits += st.Hits
		misses += st.Misses
		if st.Misses > 0 {
			owning++
		}
		t.Logf("replica %d (%s): %d misses, %d hits", i, backends[i], st.Misses, st.Hits)
	}
	if misses != distinct {
		t.Errorf("fleet compiled %d times for %d distinct keys; partitioning should make these equal", misses, distinct)
	}
	if hits != distinct {
		t.Errorf("fleet hit %d times, want %d (every key re-requested once)", hits, distinct)
	}
	if owning < 2 {
		t.Errorf("only %d replicas own any keys; the ring is not spreading %d keys", owning, distinct)
	}
}

// TestFrontSplitsBatches: a multi-key batch fans out as >1 sub-batch
// and still returns results in request-index order.
func TestFrontSplitsBatches(t *testing.T) {
	var backends []string
	for i := 0; i < 3; i++ {
		_, addr := newReplica(t)
		backends = append(backends, addr)
	}
	front, frontURL := newFront(t, backends, nil)

	var units []server.BatchUnit
	const n = 12
	for i := 0; i < n; i++ {
		units = append(units, server.BatchUnit{Compile: &server.CompileRequest{Source: srcVariant(i)}})
	}
	code, body := postBody(t, frontURL+"/v1/batch", mustJSON(t, &server.BatchRequest{Units: units}))
	if code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", code, body)
	}
	var resp server.BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("batch response: %v", err)
	}
	if len(resp.Results) != n {
		t.Fatalf("batch returned %d results, want %d", len(resp.Results), n)
	}
	for i, r := range resp.Results {
		if r.Index != i {
			t.Fatalf("result %d carries index %d; order not restored", i, r.Index)
		}
		if r.Error != "" || r.Compile == nil {
			t.Fatalf("result %d: error %q", i, r.Error)
		}
	}
	if got := front.Metrics().subBatches.Load(); got < 2 {
		t.Errorf("batch of %d distinct keys fanned out as %d sub-batches; expected a split", n, got)
	}
}

// TestFrontSurvivesReplicaDeath: killing a replica mid-traffic must not
// change a single response byte — its keys fail over to the
// deterministic next owner and recompute there.
func TestFrontSurvivesReplicaDeath(t *testing.T) {
	ref := server.New(server.Config{MaxInFlight: 128, RequestTimeout: time.Minute})
	refTS := httptest.NewServer(ref.Handler())
	defer refTS.Close()

	var backends []string
	var listeners []*httptest.Server
	for i := 0; i < 3; i++ {
		s := server.New(server.Config{MaxInFlight: 128, RequestTimeout: time.Minute})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		listeners = append(listeners, ts)
		backends = append(backends, strings.TrimPrefix(ts.URL, "http://"))
	}
	front, frontURL := newFront(t, backends, nil)

	paths, bodies := battery(t)
	check := func(phase string) {
		for i := range paths {
			wantCode, wantBody := postBody(t, refTS.URL+paths[i], bodies[i])
			gotCode, gotBody := postBody(t, frontURL+paths[i], bodies[i])
			if gotCode != wantCode || !bytes.Equal(gotBody, wantBody) {
				t.Fatalf("%s: %s req %d diverged: front (%d, %s) vs direct (%d, %s)",
					phase, paths[i], i, gotCode, gotBody, wantCode, wantBody)
			}
		}
	}

	check("all replicas up")
	listeners[1].Close() // kill one replica, connections refused from here on
	check("one replica dead")

	if front.Metrics().FailoversNow() == 0 {
		t.Error("no failovers recorded although a replica died under traffic")
	}
	deadline := time.Now().Add(5 * time.Second)
	for front.HealthyNow() != 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := front.HealthyNow(); got != 2 {
		t.Errorf("health loop sees %d healthy backends, want 2", got)
	}
}

// TestFrontReadyz: readiness reflects the fleet (no healthy backends =>
// 503) and draining (Shutdown => 503), mirroring the idemd contract the
// fleet's own health checks rely on.
func TestFrontReadyz(t *testing.T) {
	s := server.New(server.Config{MaxInFlight: 8})
	ts := httptest.NewServer(s.Handler())
	addr := strings.TrimPrefix(ts.URL, "http://")
	_, frontURL := newFront(t, []string{addr}, nil)

	get := func() int {
		resp, err := http.Get(frontURL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(); code != http.StatusOK {
		t.Fatalf("readyz with healthy backend: %d", code)
	}
	ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for get() != http.StatusServiceUnavailable && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if code := get(); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with dead backend: %d, want 503", code)
	}
}

// TestFrontMetricsRender: the exposition contains the fleet families
// with per-backend labels after traffic has flowed.
func TestFrontMetricsRender(t *testing.T) {
	var backends []string
	for i := 0; i < 2; i++ {
		_, addr := newReplica(t)
		backends = append(backends, addr)
	}
	_, frontURL := newFront(t, backends, nil)
	for i := 0; i < 4; i++ {
		postBody(t, frontURL+"/v1/compile", mustJSON(t, &server.CompileRequest{Source: srcVariant(i)}))
	}
	resp, err := http.Get(frontURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(b)
	for _, want := range []string{
		"idemfront_backend_requests_total{backend=",
		"idemfront_backend_healthy{backend=",
		"idemfront_http_requests_total{path=\"/v1/compile\",code=\"200\"}",
		"idemfront_ring_generation",
		"idemfront_rebalance_total",
		"idemfront_failover_total",
		"idemfront_sub_batches_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}
