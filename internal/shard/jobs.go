// Front-side async jobs: POST /v1/jobs splits a batch into per-owner
// sub-jobs across the replica fleet, tracks them behind one front-side
// handle, and merges the per-replica streams back into strict index
// order — so GET /v1/jobs/{id}/stream through the front is byte-
// identical to the same job on a single replica, which in turn is
// byte-derivable from the /v1/batch response. Sub-jobs fail over
// between replicas with only the *remaining* units resubmitted; a
// replica crash mid-job costs re-execution of at most its in-flight
// units somewhere else, never a unit the front already holds.
package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"idemproc/internal/jobs"
	"idemproc/internal/server"
)

// maxSubAttempts bounds how many times one sub-batch is (re)submitted
// across the candidate list before the front job fails. Generous: a
// rolling restart of every replica still converges well inside it.
const maxSubAttempts = 8

// subJobWait is the long-poll wait the mergers use against replicas.
// The replica returns early on any progress; this only bounds how long
// an idle poll parks.
const subJobWait = 15 * time.Second

// handleJobSubmit implements POST /v1/jobs at the front: validate and
// split exactly like /v1/batch, mint a front-side handle immediately,
// and let one merger goroutine per sub-batch feed the tracked job.
func (f *Front) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	const path = "/v1/jobs"
	body, done, ctx, ok := f.admit(w, r, path)
	if !ok {
		return
	}
	defer done()

	groups, splittable := f.splitBatch(body)
	if !splittable {
		f.forwardUnsplittableJob(w, ctx, body)
		return
	}

	total := 0
	for _, g := range groups {
		total += len(g.indices)
	}
	j, err := f.jobs.Track(total, nil)
	if err != nil {
		if errors.Is(err, jobs.ErrTableFull) || errors.Is(err, jobs.ErrClosed) {
			// Same shed contract as a replica: bounded table, retry hint.
			w.Header().Set("Retry-After", "1")
			f.respondError(w, path, http.StatusTooManyRequests, err.Error())
			return
		}
		f.respondError(w, path, http.StatusInternalServerError, err.Error())
		return
	}
	for _, g := range groups {
		f.wg.Add(1)
		go f.runGroup(j, g)
	}
	b, _ := json.Marshal(server.SubmitResponse{ID: j.ID(), Units: total, State: j.State().String()})
	f.respond(w, path, http.StatusOK, append(b, '\n'))
}

// forwardUnsplittableJob handles the bodies the splitter declines. The
// replica validation rules are a superset of the splitter's, so these
// forward unsplit purely to fetch the canonical replica error — except
// the front's own split bound, which the front enforces itself (with
// the replica's own message shape) rather than minting a replica-side
// handle it could never serve.
func (f *Front) forwardUnsplittableJob(w http.ResponseWriter, ctx context.Context, body []byte) {
	const path = "/v1/jobs"
	var outer struct {
		Units []json.RawMessage `json:"units"`
	}
	if strictUnmarshal(body, &outer) == nil && len(outer.Units) > f.cfg.MaxBatchUnits {
		f.respondError(w, path, http.StatusBadRequest,
			fmt.Sprintf("batch exceeds %d units", f.cfg.MaxBatchUnits))
		return
	}
	f.metrics.RawRouted()
	status, resp, err := f.route(ctx, path, body, rawKey(body))
	if err != nil {
		f.respondError(w, path, http.StatusServiceUnavailable,
			fmt.Sprintf("no replica served the request: %v", err))
		return
	}
	if status == http.StatusOK {
		// Unreachable when front and replica validation agree; never hand
		// out a replica-scoped handle (its TTL reaps the stray job).
		f.respondError(w, path, http.StatusBadGateway,
			"replica accepted a job the front cannot track")
		return
	}
	f.respond(w, path, status, resp)
}

// runGroup is one sub-batch's merger: submit the group's still-missing
// units to a replica as a sub-job, long-poll its cursor, rewrite each
// result's index back to the original batch position, and deliver it
// into the front job. On any replica-side failure it resubmits only the
// remaining units to the next candidate; after maxSubAttempts the whole
// front job fails (partial output would not be byte-stable).
func (f *Front) runGroup(j *jobs.Job, g *batchGroup) {
	defer f.wg.Done()
	ctx := j.Context()
	delivered := make([]bool, len(g.indices))
	var lastErr error
	for attempt := 0; attempt < maxSubAttempts; attempt++ {
		var remUnits []json.RawMessage
		var remIdx []int
		for k, d := range delivered {
			if !d {
				remUnits = append(remUnits, g.units[k])
				remIdx = append(remIdx, k)
			}
		}
		if len(remUnits) == 0 {
			return
		}
		b := f.pickBackend(g.key, attempt)
		err := f.runSubJob(ctx, j, b, remUnits, remIdx, g.indices, delivered)
		if err == nil {
			return
		}
		if ctx.Err() != nil {
			// Front job canceled or front draining — not a replica fault.
			return
		}
		lastErr = err
		f.metrics.SubJobRetry()
	}
	j.Fail(fmt.Sprintf("sub-batch failed on every replica: %v", lastErr))
}

// pickBackend walks the group's deterministic candidate list (healthy,
// breaker-closed owners first) by attempt number, so consecutive
// retries rotate replicas instead of hammering one.
func (f *Front) pickBackend(key string, attempt int) *backend {
	prefs := f.ring.Owners(key)
	var avail, rest []*backend
	for _, id := range prefs {
		b := f.backends[id]
		if b.healthy.Load() && b.rc.Ready() {
			avail = append(avail, b)
		} else {
			rest = append(rest, b)
		}
	}
	cands := append(avail, rest...)
	return cands[attempt%len(cands)]
}

// runSubJob drives one sub-job on one replica to completion: submit,
// long-poll the cursor, deliver rewritten results. A nil return means
// every remaining unit was delivered; an error means the caller should
// fail over with whatever is still missing.
func (f *Front) runSubJob(ctx context.Context, j *jobs.Job, b *backend,
	remUnits []json.RawMessage, remIdx []int, indices []int, delivered []bool) error {
	sub, err := json.Marshal(struct {
		Units []json.RawMessage `json:"units"`
	}{Units: remUnits})
	if err != nil {
		return err
	}
	f.metrics.SubJob()
	status, resp, err := post(ctx, f.client, b.base+"/v1/jobs", sub)
	if err != nil {
		if status == 0 {
			f.setHealth(b, false, "transport error")
		}
		return fmt.Errorf("submit to %s: %w", b.id, err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("submit to %s: status %d: %s", b.id, status, firstLine(resp))
	}
	var sr server.SubmitResponse
	if err := json.Unmarshal(resp, &sr); err != nil || sr.Units != len(remUnits) {
		return fmt.Errorf("submit to %s: malformed handle", b.id)
	}

	cursor := 0
	for cursor < len(remUnits) {
		url := fmt.Sprintf("%s/v1/jobs/%s?cursor=%d&wait=%d",
			b.base, sr.ID, cursor, subJobWait.Milliseconds())
		status, resp, err := getBody(ctx, f.client, url)
		if ctx.Err() != nil {
			// The front job went away under us; release the replica's slot.
			f.cancelSubJob(b, sr.ID)
			return nil
		}
		if err != nil {
			if status == 0 {
				f.setHealth(b, false, "transport error")
			}
			return fmt.Errorf("poll %s on %s: %w", sr.ID, b.id, err)
		}
		if status != http.StatusOK {
			// 404: the replica restarted without the journal (or reaped the
			// sub-job) — resubmit the remainder elsewhere.
			return fmt.Errorf("poll %s on %s: status %d: %s", sr.ID, b.id, status, firstLine(resp))
		}
		var rep jobs.PollResponse
		if err := json.Unmarshal(resp, &rep); err != nil {
			return fmt.Errorf("poll %s on %s: malformed response: %v", sr.ID, b.id, err)
		}
		for _, res := range rep.Results {
			if cursor >= len(remIdx) {
				return fmt.Errorf("poll %s on %s: more results than units", sr.ID, b.id)
			}
			k := remIdx[cursor]
			global := indices[k]
			rewritten, err := rewriteIndex(res, global)
			if err != nil {
				return fmt.Errorf("poll %s on %s: malformed result: %v", sr.ID, b.id, err)
			}
			j.Deliver(global, rewritten)
			delivered[k] = true
			cursor++
		}
		switch rep.State {
		case "canceled", "failed":
			return fmt.Errorf("sub-job %s on %s ended %s: %s", sr.ID, b.id, rep.State, rep.Error)
		}
	}
	return nil
}

// rewriteIndex re-marshals one replica result with its original batch
// index, passing the compile/simulate payload bytes through verbatim —
// the same rewrite /v1/batch merging uses, and for the same reason:
// byte-identity with a single-process run.
func rewriteIndex(res json.RawMessage, index int) ([]byte, error) {
	var r rawBatchResult
	if err := json.Unmarshal(res, &r); err != nil {
		return nil, err
	}
	r.Index = index
	return json.Marshal(r)
}

// cancelSubJob best-effort releases a replica-side sub-job whose front
// job is gone (canceled or front shutdown); the replica would otherwise
// keep computing results nobody will read.
func (f *Front) cancelSubJob(b *backend, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, b.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// getBody is post's GET sibling: one bounded read of a replica URL.
func getBody(ctx context.Context, client *http.Client, url string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, b, nil
}

// firstLine trims a response body to its first line for error messages.
func firstLine(b []byte) string {
	for i, c := range b {
		if c == '\n' {
			return string(b[:i])
		}
	}
	return string(b)
}

// ---------------------------------------------------------------------
// Front-side job reads: same endpoints, texts and semantics as a
// replica, served from the front's own job table.

// handleJob serves GET (long-poll) and DELETE (cancel) for a front job.
func (f *Front) handleJob(w http.ResponseWriter, r *http.Request) {
	const path = "/v1/jobs/{id}"
	fin := f.metrics.InFlight()
	defer fin()
	if r.Method != http.MethodGet && r.Method != http.MethodDelete {
		w.Header().Set("Allow", "GET, DELETE")
		f.respondError(w, path, http.StatusMethodNotAllowed,
			fmt.Sprintf("method %s not allowed", r.Method))
		return
	}
	j, ok := f.jobFromRequest(w, r, path)
	if !ok {
		return
	}
	if r.Method == http.MethodDelete {
		j, _ = f.jobs.Cancel(j.ID())
		b, _ := json.Marshal(server.CancelResponse{ID: j.ID(), State: j.State().String()})
		f.respond(w, path, http.StatusOK, append(b, '\n'))
		return
	}

	cursor, ok := f.parseJobCursor(w, r, path, j.Units())
	if !ok {
		return
	}
	var wait time.Duration
	if q := r.URL.Query().Get("wait"); q != "" {
		ms, err := strconv.Atoi(q)
		if err != nil || ms < 0 {
			f.respondError(w, path, http.StatusBadRequest,
				"wait must be a non-negative duration in milliseconds")
			return
		}
		wait = time.Duration(ms) * time.Millisecond
		if wait > f.cfg.JobPollMax {
			wait = f.cfg.JobPollMax
		}
	}
	rep := j.Poll(r.Context(), cursor, wait)
	b, _ := json.Marshal(rep)
	f.respond(w, path, http.StatusOK, append(b, '\n'))
}

// handleJobStream serves GET /v1/jobs/{id}/stream: NDJSON results in
// strict index order, resumable with ?cursor=.
func (f *Front) handleJobStream(w http.ResponseWriter, r *http.Request) {
	const path = "/v1/jobs/{id}/stream"
	fin := f.metrics.InFlight()
	defer fin()
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		f.respondError(w, path, http.StatusMethodNotAllowed,
			fmt.Sprintf("method %s not allowed", r.Method))
		return
	}
	j, ok := f.jobFromRequest(w, r, path)
	if !ok {
		return
	}
	cursor, ok := f.parseJobCursor(w, r, path, j.Units())
	if !ok {
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	f.metrics.ObservePath(path, http.StatusOK)
	_, _ = j.Stream(r.Context(), cursor, func(chunk [][]byte) error {
		var buf bytes.Buffer
		for _, line := range chunk {
			buf.Write(line)
			buf.WriteByte('\n')
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
}

func (f *Front) jobFromRequest(w http.ResponseWriter, r *http.Request, path string) (*jobs.Job, bool) {
	id := r.PathValue("id")
	j, ok := f.jobs.Get(id)
	if !ok {
		f.respondError(w, path, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
	}
	return j, ok
}

func (f *Front) parseJobCursor(w http.ResponseWriter, r *http.Request, path string, units int) (int, bool) {
	q := r.URL.Query().Get("cursor")
	if q == "" {
		return 0, true
	}
	c, err := strconv.Atoi(q)
	if err != nil || c < 0 || c > units {
		f.respondError(w, path, http.StatusBadRequest,
			fmt.Sprintf("cursor must be an integer in [0, %d]", units))
		return 0, false
	}
	return c, true
}
