// Fleet-level metrics for the front tier, rendered in the same
// hand-rolled Prometheus text format idemd uses. The front's view is
// complementary to the replicas': replicas report cache effectiveness
// and simulator work, the front reports where traffic went (per-backend
// request/latency/error counters), how the ring evolved (generation,
// rebalances) and how often routing had to fail over.
package shard

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"idemproc/internal/jobs"
)

// backendStats is one backend's traffic ledger, guarded by Metrics.mu
// (the front is network-bound; a mutex is far from the contention
// point, and it keeps count/sum coherent for rate math).
type backendStats struct {
	requests   int64
	errors     int64
	sumSeconds float64
}

// Metrics is the front tier's registry.
type Metrics struct {
	mu       sync.Mutex
	backends map[string]*backendStats
	paths    map[string]map[int]int64 // path -> status code -> count

	ringGen    atomic.Int64
	rebalances atomic.Int64
	failovers  atomic.Int64
	noReplica  atomic.Int64
	rawRouted  atomic.Int64
	subBatches atomic.Int64
	subJobs    atomic.Int64
	subRetries atomic.Int64
	coalesced  atomic.Int64
	inflight   atomic.Int64

	start time.Time
}

// NewMetrics returns an empty registry at ring generation 0.
func NewMetrics() *Metrics {
	return &Metrics{
		backends: map[string]*backendStats{},
		paths:    map[string]map[int]int64{},
		start:    time.Now(),
	}
}

// ObserveBackend records one proxied request to a backend.
func (m *Metrics) ObserveBackend(id string, d time.Duration, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	bs := m.backends[id]
	if bs == nil {
		bs = &backendStats{}
		m.backends[id] = bs
	}
	bs.requests++
	bs.sumSeconds += d.Seconds()
	if failed {
		bs.errors++
	}
}

// ObservePath records one front-level response by path and status.
func (m *Metrics) ObservePath(path string, code int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	codes := m.paths[path]
	if codes == nil {
		codes = map[int]int64{}
		m.paths[path] = codes
	}
	codes[code]++
}

// RingGeneration bumps the generation counter (one health transition =
// one new effective assignment) and returns the new value.
func (m *Metrics) RingGeneration() int64 { return m.ringGen.Add(1) }

// Rebalance counts one membership-affecting health transition.
func (m *Metrics) Rebalance() { m.rebalances.Add(1) }

// Failover counts one request rerouted off its ring owner.
func (m *Metrics) Failover() { m.failovers.Add(1) }

// FailoversNow reads the failover counter (tests assert on it).
func (m *Metrics) FailoversNow() int64 { return m.failovers.Load() }

// NoReplica counts one request that exhausted every backend.
func (m *Metrics) NoReplica() { m.noReplica.Add(1) }

// RawRouted counts one request routed by body hash because it did not
// parse as a known request shape (the owning replica produces the
// canonical error for it).
func (m *Metrics) RawRouted() { m.rawRouted.Add(1) }

// SubBatch counts one sub-batch fanned out to a backend.
func (m *Metrics) SubBatch() { m.subBatches.Add(1) }

// SubJob counts one sub-job submitted to a backend by a job merger.
func (m *Metrics) SubJob() { m.subJobs.Add(1) }

// SubJobRetry counts one sub-job resubmitted to another backend after
// a replica-side failure.
func (m *Metrics) SubJobRetry() { m.subRetries.Add(1) }

// SubJobRetriesNow reads the resubmission counter (tests assert on it).
func (m *Metrics) SubJobRetriesNow() int64 { return m.subRetries.Load() }

// Coalesced counts one follower request served from a single-flight
// leader's response during a failover window.
func (m *Metrics) Coalesced() { m.coalesced.Add(1) }

// CoalescedNow reads the coalescing counter (tests assert on it).
func (m *Metrics) CoalescedNow() int64 { return m.coalesced.Load() }

// InFlight tracks the front's in-flight gauge.
func (m *Metrics) InFlight() func() {
	m.inflight.Add(1)
	return func() { m.inflight.Add(-1) }
}

// VerifyTotals is the fleet-aggregated translation-validator ledger,
// summed from healthy backends' /metrics at render time (see
// Front.verifyTotals). Backends counts replicas successfully scraped so
// dashboards can tell "fleet verified nothing" from "scrape failed".
type VerifyTotals struct {
	Checked, Failed, RejectedArtifacts int64
	Backends                           int
}

// Render emits the Prometheus text exposition; healthy maps backend ID
// to current health so the gauge reflects the router's live view.
// Ordering is deterministic (sorted backends, paths, codes).
func (m *Metrics) Render(healthy map[string]bool, js jobs.Stats, vt VerifyTotals) string {
	var b strings.Builder

	m.mu.Lock()
	ids := make([]string, 0, len(m.backends))
	for id := range m.backends {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	fmt.Fprintf(&b, "# HELP idemfront_backend_requests_total Requests proxied, by backend.\n")
	fmt.Fprintf(&b, "# TYPE idemfront_backend_requests_total counter\n")
	for _, id := range ids {
		fmt.Fprintf(&b, "idemfront_backend_requests_total{backend=%q} %d\n", id, m.backends[id].requests)
	}
	fmt.Fprintf(&b, "# HELP idemfront_backend_errors_total Proxied requests that failed (transport error or 5xx), by backend.\n")
	fmt.Fprintf(&b, "# TYPE idemfront_backend_errors_total counter\n")
	for _, id := range ids {
		fmt.Fprintf(&b, "idemfront_backend_errors_total{backend=%q} %d\n", id, m.backends[id].errors)
	}
	fmt.Fprintf(&b, "# HELP idemfront_backend_latency_seconds_total Summed proxied-request latency, by backend.\n")
	fmt.Fprintf(&b, "# TYPE idemfront_backend_latency_seconds_total counter\n")
	for _, id := range ids {
		fmt.Fprintf(&b, "idemfront_backend_latency_seconds_total{backend=%q} %.9f\n", id, m.backends[id].sumSeconds)
	}

	paths := make([]string, 0, len(m.paths))
	for p := range m.paths {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	fmt.Fprintf(&b, "# HELP idemfront_http_requests_total Responses served by the front, by path and status code.\n")
	fmt.Fprintf(&b, "# TYPE idemfront_http_requests_total counter\n")
	for _, p := range paths {
		codes := make([]int, 0, len(m.paths[p]))
		for c := range m.paths[p] {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(&b, "idemfront_http_requests_total{path=%q,code=\"%d\"} %d\n", p, c, m.paths[p][c])
		}
	}
	m.mu.Unlock()

	hids := make([]string, 0, len(healthy))
	for id := range healthy {
		hids = append(hids, id)
	}
	sort.Strings(hids)
	fmt.Fprintf(&b, "# HELP idemfront_backend_healthy Backend health as seen by the router (1 ready, 0 out).\n")
	fmt.Fprintf(&b, "# TYPE idemfront_backend_healthy gauge\n")
	for _, id := range hids {
		v := 0
		if healthy[id] {
			v = 1
		}
		fmt.Fprintf(&b, "idemfront_backend_healthy{backend=%q} %d\n", id, v)
	}

	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP idemfront_%s %s\n", name, help)
		fmt.Fprintf(&b, "# TYPE idemfront_%s gauge\n", name)
		fmt.Fprintf(&b, "idemfront_%s %d\n", name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP idemfront_%s %s\n", name, help)
		fmt.Fprintf(&b, "# TYPE idemfront_%s counter\n", name)
		fmt.Fprintf(&b, "idemfront_%s %d\n", name, v)
	}
	gauge("ring_generation", "Monotonic generation of the effective (healthy) replica set.", m.ringGen.Load())
	counter("rebalance_total", "Health transitions that changed the effective replica set.", m.rebalances.Load())
	counter("failover_total", "Requests rerouted off their ring owner.", m.failovers.Load())
	counter("no_replica_total", "Requests that exhausted every backend.", m.noReplica.Load())
	counter("raw_routed_total", "Requests routed by body hash (unparseable shape; replica answers canonically).", m.rawRouted.Load())
	counter("sub_batches_total", "Sub-batches fanned out to backends by /v1/batch splitting.", m.subBatches.Load())
	counter("sub_jobs_total", "Sub-jobs submitted to backends by /v1/jobs mergers.", m.subJobs.Load())
	counter("sub_job_retries_total", "Sub-jobs resubmitted to another backend after a replica failure.", m.subRetries.Load())
	counter("coalesced_total", "Requests served from a single-flight leader during failover.", m.coalesced.Load())
	gauge("inflight_requests", "Requests currently being served by the front.", m.inflight.Load())
	gauge("jobs_active", "Front jobs currently merging sub-job results.", js.Active)
	gauge("jobs_tracked", "Front jobs in the table (running + terminal).", js.Tracked)
	counter("jobs_completed_total", "Front jobs that delivered every unit.", js.Completed)
	counter("jobs_canceled_total", "Front jobs canceled by DELETE.", js.Canceled)
	counter("jobs_failed_total", "Front jobs failed (a sub-batch exhausted every replica).", js.Failed)
	counter("jobs_reaped_total", "Terminal front jobs dropped by the TTL reaper.", js.Reaped)

	// The fleet's verification ledger keeps the idemd_ metric names so a
	// dashboard summing validator activity reads one series whether it
	// scrapes a replica or the front.
	raw := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n", name, help)
		fmt.Fprintf(&b, "# TYPE %s counter\n", name)
		fmt.Fprintf(&b, "%s %d\n", name, v)
	}
	raw("idemd_verify_checked_total", "Fleet-summed validator checks (scraped from healthy backends).", vt.Checked)
	raw("idemd_verify_failed_total", "Fleet-summed validator runs that found violations.", vt.Failed)
	raw("idemd_verify_rejected_artifacts_total", "Fleet-summed disk artifacts pruned after failing verification.", vt.RejectedArtifacts)
	fmt.Fprintf(&b, "# HELP idemfront_verify_scraped_backends Backends whose /metrics contributed to the verify totals this scrape.\n")
	fmt.Fprintf(&b, "# TYPE idemfront_verify_scraped_backends gauge\n")
	fmt.Fprintf(&b, "idemfront_verify_scraped_backends %d\n", vt.Backends)

	fmt.Fprintf(&b, "# HELP idemfront_uptime_seconds Seconds since process start.\n")
	fmt.Fprintf(&b, "# TYPE idemfront_uptime_seconds gauge\n")
	fmt.Fprintf(&b, "idemfront_uptime_seconds %.3f\n", time.Since(m.start).Seconds())
	return b.String()
}
