// Ring determinism and rebalance properties. The contracts under test
// are what make consistent-hash routing safe to deploy as a fleet:
// same replica set + key => same owner in every process (including
// after a marshal/unmarshal round trip of the ring config), and a
// replica leaving moves only the ~K/N keys it owned — never a key
// between two survivors.
package shard

import (
	"encoding/json"
	"fmt"
	"testing"
)

func replicaSet(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("127.0.0.1:%d", 9000+i)
	}
	return out
}

func keySet(k int) []string {
	out := make([]string, k)
	for i := range out {
		// Shaped like real route keys: workload|memWords|fingerprint.
		out[i] = fmt.Sprintf("wl-%d|%d|fp-%d", i%37, 65536, i)
	}
	return out
}

func TestOwnerDeterministicAcrossInstances(t *testing.T) {
	reps := replicaSet(5)
	a, err := NewRing(reps)
	if err != nil {
		t.Fatal(err)
	}
	// A second ring built from the same set in reverse order must agree
	// on every key (order-independence = cross-process determinism: no
	// process-local state enters the assignment).
	rev := make([]string, len(reps))
	for i, r := range reps {
		rev[len(reps)-1-i] = r
	}
	b, err := NewRing(rev)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range keySet(2000) {
		if ao, bo := a.Owner(key), b.Owner(key); ao != bo {
			t.Fatalf("key %q: owner %q vs %q across instances", key, ao, bo)
		}
	}
}

func TestOwnerSurvivesConfigRoundTrip(t *testing.T) {
	a, err := NewRing(replicaSet(4))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(a.Config())
	if err != nil {
		t.Fatal(err)
	}
	var cfg RingConfig
	if err := json.Unmarshal(blob, &cfg); err != nil {
		t.Fatal(err)
	}
	b, err := RingFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range keySet(2000) {
		if ao, bo := a.Owner(key), b.Owner(key); ao != bo {
			t.Fatalf("key %q: owner changed across marshal round trip: %q vs %q", key, ao, bo)
		}
	}
}

func TestOwnersIsPreferencePermutation(t *testing.T) {
	r, err := NewRing(replicaSet(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range keySet(200) {
		owners := r.Owners(key)
		if len(owners) != r.Size() {
			t.Fatalf("key %q: %d owners, want %d", key, len(owners), r.Size())
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("key %q: Owners[0] %q != Owner %q", key, owners[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, id := range owners {
			if seen[id] {
				t.Fatalf("key %q: duplicate owner %q", key, id)
			}
			seen[id] = true
		}
	}
}

// TestRebalanceMovesOnlyDepartedKeys is the minimal-disruption property:
// removing one of N replicas moves exactly the keys that replica owned
// (≈K/N of them) to the survivors, and no key moves between two
// survivors. Both halves are exact for rendezvous hashing — a survivor's
// score for a key did not change, so its relative order cannot.
func TestRebalanceMovesOnlyDepartedKeys(t *testing.T) {
	const n = 5
	reps := replicaSet(n)
	full, err := NewRing(reps)
	if err != nil {
		t.Fatal(err)
	}
	departed := reps[2]
	without, err := NewRing(append(append([]string{}, reps[:2]...), reps[3:]...))
	if err != nil {
		t.Fatal(err)
	}

	keys := keySet(10000)
	moved, ownedByDeparted := 0, 0
	for _, key := range keys {
		before, after := full.Owner(key), without.Owner(key)
		if before == departed {
			ownedByDeparted++
			if after == departed {
				t.Fatalf("key %q still assigned to departed replica", key)
			}
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %q moved between survivors: %q -> %q", key, before, after)
		}
	}
	if moved != ownedByDeparted {
		t.Fatalf("moved %d keys, departed owned %d", moved, ownedByDeparted)
	}
	// The departed replica's share should be ≈ K/N; a grossly skewed
	// share means the hash is biased and so is the fleet's load.
	lo, hi := len(keys)/n/2, len(keys)*2/n
	if moved < lo || moved > hi {
		t.Fatalf("rebalance moved %d of %d keys; want ≈ %d (1/N)", moved, len(keys), len(keys)/n)
	}
}

// TestLoadBalance: no replica's share of a large key set may dwarf the
// others' — each should hold 1/N within a factor of ~1.5.
func TestLoadBalance(t *testing.T) {
	const n = 4
	r, err := NewRing(replicaSet(n))
	if err != nil {
		t.Fatal(err)
	}
	keys := keySet(20000)
	counts := map[string]int{}
	for _, key := range keys {
		counts[r.Owner(key)]++
	}
	want := len(keys) / n
	for id, c := range counts {
		if c < want*2/3 || c > want*3/2 {
			t.Fatalf("replica %s owns %d of %d keys; want ≈ %d", id, c, len(keys), want)
		}
	}
	if len(counts) != n {
		t.Fatalf("only %d of %d replicas own any keys", len(counts), n)
	}
}

func TestNewRejectsBadSets(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := NewRing([]string{"a", "a"}); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := NewRing([]string{"a", ""}); err == nil {
		t.Error("empty id accepted")
	}
}
