// Front-side async-job contract tests. The load-bearing one mirrors
// the /v1/batch determinism test: a job streamed through a 3-replica
// fleet must reconstruct byte-for-byte into the /v1/batch response a
// single idemd process produces for the same body. The rest pin the
// fleet-grade properties: a replica dying mid-job costs a resubmission,
// not the job; cancel fans out to replica sub-jobs; and identical
// compiles single-flight through the failover window.
package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"idemproc/internal/server"
)

// slowVariant is srcVariant's expensive sibling: distinct content keys
// that each take long enough to leave a kill/cancel window.
func slowVariant(i int) string {
	return fmt.Sprintf("func main(int n) int {\n\tint s = %d;\n\tint t = 1;\n\tfor (int i = 0; i < n; i = i + 1) { s = s + i; t = t + s; }\n\treturn s + t;\n}\n", i)
}

// jobBatch spans several content keys (so the front splits it) and
// includes an in-band per-unit error.
func jobBatch(t *testing.T) []byte {
	t.Helper()
	return mustJSON(t, &server.BatchRequest{Units: []server.BatchUnit{
		{Compile: &server.CompileRequest{Source: srcVariant(0)}},
		{Simulate: &server.SimulateRequest{Source: frontTinySrc, Args: []uint64{10}}},
		{Compile: &server.CompileRequest{Source: "not a program"}},
		{Compile: &server.CompileRequest{Source: srcVariant(1)}},
		{Simulate: &server.SimulateRequest{Source: srcVariant(2), Args: []uint64{5}, Scheme: "idem"}},
		{Compile: &server.CompileRequest{Source: srcVariant(3)}},
	}})
}

func submitFrontJob(t *testing.T, url string, body []byte) server.SubmitResponse {
	t.Helper()
	status, resp := postBody(t, url+"/v1/jobs", body)
	if status != http.StatusOK {
		t.Fatalf("submit: status %d: %s", status, resp)
	}
	var sub server.SubmitResponse
	if err := json.Unmarshal(resp, &sub); err != nil {
		t.Fatalf("submit response: %v", err)
	}
	return sub
}

// streamFrontJob reads the NDJSON stream from cursor to the end.
func streamFrontJob(t *testing.T, url, id string, cursor int) [][]byte {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/stream?cursor=%d", url, id, cursor))
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream: status %d: %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read stream: %v", err)
	}
	var lines [][]byte
	for _, l := range bytes.Split(raw, []byte("\n")) {
		if len(l) > 0 {
			lines = append(lines, l)
		}
	}
	return lines
}

// reconstruct derives the /v1/batch response body from stream lines.
func reconstruct(lines [][]byte) []byte {
	return append(append([]byte(`{"results":[`), bytes.Join(lines, []byte(","))...), []byte("]}\n")...)
}

type frontPollReply struct {
	State      string            `json:"state"`
	Units      int               `json:"units"`
	NextCursor int               `json:"next_cursor"`
	Error      string            `json:"error"`
	Results    []json.RawMessage `json:"results"`
}

func pollFrontJob(t *testing.T, url, id string, cursor, waitMS int) frontPollReply {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s?cursor=%d&wait=%d", url, id, cursor, waitMS))
	if err != nil {
		t.Fatalf("poll: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("poll: status %d: %s", resp.StatusCode, b)
	}
	var rep frontPollReply
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("poll response: %v", err)
	}
	return rep
}

// TestFrontJobMatchesBatchBytes: stream and cursor-poll reconstructions
// through a 3-replica fleet are byte-identical to a single process's
// /v1/batch response for the same body.
func TestFrontJobMatchesBatchBytes(t *testing.T) {
	ref, _ := newReplica(t)
	refTS := httptest.NewServer(ref.Handler())
	t.Cleanup(refTS.Close)

	var backends []string
	for i := 0; i < 3; i++ {
		_, addr := newReplica(t)
		backends = append(backends, addr)
	}
	_, url := newFront(t, backends, nil)

	body := jobBatch(t)
	refStatus, refBatch := postBody(t, refTS.URL+"/v1/batch", body)
	if refStatus != http.StatusOK {
		t.Fatalf("reference batch: status %d: %s", refStatus, refBatch)
	}

	sub := submitFrontJob(t, url, body)
	if sub.Units != 6 || sub.State != "running" {
		t.Fatalf("submit response: %+v", sub)
	}

	lines := streamFrontJob(t, url, sub.ID, 0)
	if len(lines) != sub.Units {
		t.Fatalf("streamed %d lines, want %d", len(lines), sub.Units)
	}
	if got := reconstruct(lines); !bytes.Equal(got, refBatch) {
		t.Fatalf("stream reconstruction diverges from single-process batch:\n got: %s\nwant: %s", got, refBatch)
	}

	// Cursor-poll the same job; the concatenation across polls must be
	// the same bytes.
	var polled [][]byte
	cursor := 0
	for {
		rep := pollFrontJob(t, url, sub.ID, cursor, 2000)
		for _, r := range rep.Results {
			polled = append(polled, []byte(r))
		}
		cursor = rep.NextCursor
		if cursor >= sub.Units {
			if rep.State != "done" {
				t.Fatalf("job ended %q, want done", rep.State)
			}
			break
		}
	}
	if got := reconstruct(polled); !bytes.Equal(got, refBatch) {
		t.Fatalf("poll reconstruction diverges from single-process batch:\n got: %s\nwant: %s", got, refBatch)
	}

	// Suffix stream resume: cursor=2 must replay exactly lines[2:].
	suffix := streamFrontJob(t, url, sub.ID, 2)
	if len(suffix) != sub.Units-2 {
		t.Fatalf("suffix stream: %d lines, want %d", len(suffix), sub.Units-2)
	}
	for i, l := range suffix {
		if !bytes.Equal(l, lines[i+2]) {
			t.Fatalf("suffix line %d diverges", i)
		}
	}
}

// TestFrontJobSurvivesReplicaDeath: killing a replica with an active
// sub-job resubmits the remainder elsewhere; the merged stream still
// reconstructs the single-process bytes.
func TestFrontJobSurvivesReplicaDeath(t *testing.T) {
	ref, _ := newReplica(t)
	refTS := httptest.NewServer(ref.Handler())
	t.Cleanup(refTS.Close)

	var backends []string
	var servers []*server.Server
	var listeners []*httptest.Server
	for i := 0; i < 3; i++ {
		s := server.New(server.Config{MaxInFlight: 128, RequestTimeout: time.Minute, Workers: 1})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		servers = append(servers, s)
		listeners = append(listeners, ts)
		backends = append(backends, strings.TrimPrefix(ts.URL, "http://"))
	}
	f, url := newFront(t, backends, nil)

	// Slow, key-diverse units: each replica that owns a group has a
	// visible window where its sub-job is running.
	var units []server.BatchUnit
	for i := 0; i < 6; i++ {
		units = append(units, server.BatchUnit{
			Simulate: &server.SimulateRequest{Source: slowVariant(i), Args: []uint64{400_000}},
		})
	}
	body := mustJSON(t, &server.BatchRequest{Units: units})
	refStatus, refBatch := postBody(t, refTS.URL+"/v1/batch", body)
	if refStatus != http.StatusOK {
		t.Fatalf("reference batch: status %d: %s", refStatus, refBatch)
	}

	sub := submitFrontJob(t, url, body)

	// Find a replica actively running a sub-job and kill it.
	killed := -1
	deadline := time.Now().Add(10 * time.Second)
	for killed < 0 && time.Now().Before(deadline) {
		for i, s := range servers {
			if s.Jobs().Stats().Active > 0 {
				killed = i
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if killed < 0 {
		t.Fatal("no replica ever had an active sub-job")
	}
	listeners[killed].CloseClientConnections()
	listeners[killed].Close()

	lines := streamFrontJob(t, url, sub.ID, 0)
	if len(lines) != len(units) {
		rep := pollFrontJob(t, url, sub.ID, 0, 0)
		t.Fatalf("streamed %d/%d lines; job state %q (%s)", len(lines), len(units), rep.State, rep.Error)
	}
	if got := reconstruct(lines); !bytes.Equal(got, refBatch) {
		t.Fatalf("post-kill reconstruction diverges from single-process batch:\n got: %s\nwant: %s", got, refBatch)
	}
	if n := f.Metrics().SubJobRetriesNow(); n < 1 {
		t.Fatalf("expected at least one sub-job resubmission, got %d", n)
	}
}

// TestFrontJobCancelFansOut: DELETE on the front job cancels the
// replica-side sub-jobs so the fleet stops computing unread results.
func TestFrontJobCancelFansOut(t *testing.T) {
	var backends []string
	var servers []*server.Server
	for i := 0; i < 3; i++ {
		s := server.New(server.Config{MaxInFlight: 128, RequestTimeout: time.Minute, Workers: 1})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		servers = append(servers, s)
		backends = append(backends, strings.TrimPrefix(ts.URL, "http://"))
	}
	_, url := newFront(t, backends, nil)

	var units []server.BatchUnit
	for i := 0; i < 3; i++ {
		units = append(units, server.BatchUnit{
			Simulate: &server.SimulateRequest{Source: slowVariant(i), Args: []uint64{100_000_000}},
		})
	}
	sub := submitFrontJob(t, url, mustJSON(t, &server.BatchRequest{Units: units}))

	// Wait until at least one replica is actually running a sub-job.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		n := int64(0)
		for _, s := range servers {
			n += s.Jobs().Stats().Active
		}
		if n > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	req, err := http.NewRequest(http.MethodDelete, url+"/v1/jobs/"+sub.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var cr server.CancelResponse
	if err := json.Unmarshal(b, &cr); err != nil || cr.State != "canceled" {
		t.Fatalf("cancel response: %s (%v)", b, err)
	}

	// The mergers' best-effort DELETEs land on the replicas shortly.
	for time.Now().Before(deadline) {
		n := int64(0)
		for _, s := range servers {
			n += s.Jobs().Stats().Canceled
		}
		if n > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no replica sub-job was ever canceled")
}

// TestFrontJobValidation pins the front's error surface to the replica
// texts: unknown handles, cursor bounds, method filters, and the
// canonical replica answer for unsplittable submissions.
func TestFrontJobValidation(t *testing.T) {
	_, refAddr := newReplica(t)
	refURL := "http://" + refAddr
	_, addr := newReplica(t)
	_, url := newFront(t, []string{addr}, func(c *Config) { c.MaxBatchUnits = 2 })

	// Unknown handle: poll, stream, cancel.
	for _, path := range []string{"/v1/jobs/zzz", "/v1/jobs/zzz/stream"} {
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(b), `unknown job \"zzz\"`) {
			t.Fatalf("GET %s: status %d body %s", path, resp.StatusCode, b)
		}
	}

	// A submit that the splitter declines for shape reasons gets the
	// byte-identical replica error.
	badBody := []byte(`{"units": []}`)
	fStatus, fResp := postBody(t, url+"/v1/jobs", badBody)
	rStatus, rResp := postBody(t, refURL+"/v1/jobs", badBody)
	if fStatus != rStatus || !bytes.Equal(fResp, rResp) {
		t.Fatalf("unsplittable submit: front (%d, %s) vs replica (%d, %s)", fStatus, fResp, rStatus, rResp)
	}

	// Beyond the front's split bound: rejected at the front with the
	// replica's message shape, no replica-side handle minted.
	big := mustJSON(t, &server.BatchRequest{Units: []server.BatchUnit{
		{Compile: &server.CompileRequest{Source: srcVariant(0)}},
		{Compile: &server.CompileRequest{Source: srcVariant(1)}},
		{Compile: &server.CompileRequest{Source: srcVariant(2)}},
	}})
	status, resp := postBody(t, url+"/v1/jobs", big)
	if status != http.StatusBadRequest || !strings.Contains(string(resp), "batch exceeds 2 units") {
		t.Fatalf("oversize submit: status %d body %s", status, resp)
	}

	// A real job for cursor/method checks.
	sub := submitFrontJob(t, url, mustJSON(t, &server.BatchRequest{Units: []server.BatchUnit{
		{Compile: &server.CompileRequest{Source: srcVariant(0)}},
	}}))
	rep := pollFrontJob(t, url, sub.ID, 0, 5000)
	if rep.State != "done" {
		t.Fatalf("job state %q", rep.State)
	}
	for _, q := range []string{"cursor=2", "cursor=-1", "cursor=abc", "wait=abc", "wait=-5"} {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s?%s", url, sub.ID, q))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET ?%s: status %d, want 400", q, resp.StatusCode)
		}
	}
	req, err := http.NewRequest(http.MethodPatch, url+"/v1/jobs/"+sub.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed || resp2.Header.Get("Allow") != "GET, DELETE" {
		t.Fatalf("PATCH: status %d Allow %q", resp2.StatusCode, resp2.Header.Get("Allow"))
	}
}

// TestFrontCoalescesCompilesDuringFailover: while a key's primary owner
// is out, identical in-flight /v1/compile bodies single-flight into one
// upstream request.
func TestFrontCoalescesCompilesDuringFailover(t *testing.T) {
	var hits atomic.Int64
	const answer = `{"coalesced":"yes"}` + "\n"
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/readyz":
			// Permanently not ready: every key's owner stays in the
			// failover window without the health loop flapping it back.
			w.WriteHeader(http.StatusServiceUnavailable)
		case "/v1/compile":
			hits.Add(1)
			time.Sleep(300 * time.Millisecond)
			io.WriteString(w, answer)
		default:
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	t.Cleanup(stub.Close)

	f, url := newFront(t, []string{strings.TrimPrefix(stub.URL, "http://")}, nil)
	// Wait for the probe to mark the stub out.
	deadline := time.Now().Add(5 * time.Second)
	for f.HealthyNow() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if f.HealthyNow() != 0 {
		t.Fatal("stub backend never marked out")
	}

	body := mustJSON(t, &server.CompileRequest{Source: frontTinySrc})
	results := make([]string, 8)
	var wg sync.WaitGroup
	// The leader goes first so the followers find its flight in place.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, b := postBody(t, url+"/v1/compile", body)
		results[0] = string(b)
	}()
	time.Sleep(100 * time.Millisecond)
	for i := 1; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, b := postBody(t, url+"/v1/compile", body)
			results[i] = string(b)
		}(i)
	}
	wg.Wait()

	for i, r := range results {
		if r != answer {
			t.Fatalf("request %d got %q", i, r)
		}
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("stub served %d compiles, want 1 (single flight)", n)
	}
	if n := f.Metrics().CoalescedNow(); n != 7 {
		t.Fatalf("coalesced %d followers, want 7", n)
	}
}
