// Request/response schema of the idemd HTTP/JSON API (see
// docs/service.md for the full catalog). Responses are deliberately
// deterministic artifacts: fixed struct field sets, no maps, function
// lists sorted by name — so a request replayed against any replica (or
// the library pipeline directly, see ReportForBuild) produces
// byte-identical bytes. cmd/idemload leans on that to assert
// reproducibility under load.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"sort"

	"idemproc/internal/buildcache"
	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/fault"
	"idemproc/internal/lang"
	"idemproc/internal/machine"
	"idemproc/internal/workloads"
)

// Request size/shape bounds (validation rejects anything beyond them
// with 400 before touching the pipeline).
const (
	maxSourceBytes  = 1 << 20
	maxArgs         = 8
	minMemWords     = 64
	maxMemWords     = 1 << 22
	defaultMemWords = 65536
	maxInjections   = 16
)

// httpError is a handler-level failure with an HTTP status.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// ---------------------------------------------------------------------
// Options.

// CoreOptionsSpec overrides individual §4 construction options. Absent
// (null) booleans keep the paper's defaults (core.DefaultOptions), so a
// request only states what it changes.
type CoreOptionsSpec struct {
	LoopHeuristic     *bool `json:"loop_heuristic,omitempty"`
	RedElim           *bool `json:"red_elim,omitempty"`
	UnrollLoops       *bool `json:"unroll_loops,omitempty"`
	CutAtCalls        *bool `json:"cut_at_calls,omitempty"`
	MaxRegionSize     int   `json:"max_region_size,omitempty"`
	BalancedHeuristic bool  `json:"balanced_heuristic,omitempty"`
}

// OptionsSpec selects the compilation pipeline variant.
type OptionsSpec struct {
	// Idempotent selects the §4 region construction; defaults to true
	// for /v1/compile (the analysis is the point of the service) and is
	// forced by the scheme for /v1/simulate.
	Idempotent   *bool            `json:"idempotent,omitempty"`
	RelaxedAlloc bool             `json:"relaxed_alloc,omitempty"`
	PureCalls    bool             `json:"pure_calls,omitempty"`
	Core         *CoreOptionsSpec `json:"core,omitempty"`
}

// moduleOptions resolves the spec against the paper's defaults.
func (o *OptionsSpec) moduleOptions(defaultIdem bool) codegen.ModuleOptions {
	mo := codegen.ModuleOptions{Idempotent: defaultIdem, Core: core.DefaultOptions()}
	if o == nil {
		return mo
	}
	if o.Idempotent != nil {
		mo.Idempotent = *o.Idempotent
	}
	mo.RelaxedAlloc = o.RelaxedAlloc
	mo.PureCalls = o.PureCalls
	if c := o.Core; c != nil {
		if c.LoopHeuristic != nil {
			mo.Core.LoopHeuristic = *c.LoopHeuristic
		}
		if c.RedElim != nil {
			mo.Core.RedElim = *c.RedElim
		}
		if c.UnrollLoops != nil {
			mo.Core.UnrollLoops = *c.UnrollLoops
		}
		if c.CutAtCalls != nil {
			mo.Core.CutAtCalls = *c.CutAtCalls
		}
		if c.MaxRegionSize < 0 {
			c.MaxRegionSize = 0
		}
		mo.Core.MaxRegionSize = c.MaxRegionSize
		mo.Core.BalancedHeuristic = c.BalancedHeuristic
	}
	return mo
}

// ---------------------------------------------------------------------
// Workload resolution.

// SourceWorkload wraps an ad-hoc idc source as a cacheable workload: the
// name embeds a content hash so the compile cache keys source-identical
// requests together, and the source is validated up front so invalid
// programs fail with a parse error instead of reaching the pipeline.
func SourceWorkload(source string, memWords int, args []uint64) (workloads.Workload, error) {
	if len(source) > maxSourceBytes {
		return workloads.Workload{}, fmt.Errorf("source exceeds %d bytes", maxSourceBytes)
	}
	if _, err := lang.Compile(source); err != nil {
		return workloads.Workload{}, fmt.Errorf("source: %w", err)
	}
	if memWords <= 0 {
		memWords = defaultMemWords
	}
	sum := sha256.Sum256([]byte(source))
	return workloads.Workload{
		Name:     "src-" + hex.EncodeToString(sum[:8]),
		Suite:    "ADHOC",
		Source:   source,
		Args:     args,
		MemWords: memWords,
	}, nil
}

// resolveWorkload turns (workload|source, mem_words, args) into a
// concrete workload, enforcing the request bounds.
func resolveWorkload(name, source string, memWords int, args []uint64) (workloads.Workload, *httpError) {
	if len(args) > maxArgs {
		return workloads.Workload{}, badRequest("at most %d args", maxArgs)
	}
	if memWords != 0 && (memWords < minMemWords || memWords > maxMemWords) {
		return workloads.Workload{}, badRequest("mem_words must be in [%d, %d]", minMemWords, maxMemWords)
	}
	switch {
	case name != "" && source != "":
		return workloads.Workload{}, badRequest("workload and source are mutually exclusive")
	case name != "":
		w, ok := workloads.ByName(name)
		if !ok {
			return workloads.Workload{}, badRequest("unknown workload %q", name)
		}
		if memWords != 0 {
			w.MemWords = memWords
		}
		if args != nil {
			w.Args = args
		}
		return w, nil
	case source != "":
		w, err := SourceWorkload(source, memWords, args)
		if err != nil {
			return workloads.Workload{}, badRequest("%v", err)
		}
		return w, nil
	default:
		return workloads.Workload{}, badRequest("one of workload or source is required")
	}
}

// ---------------------------------------------------------------------
// POST /v1/compile

// CompileRequest asks for a compile plus its region/antidependence/cut
// report.
type CompileRequest struct {
	// Workload names a built-in benchmark; Source supplies ad-hoc idc
	// text. Exactly one must be set.
	Workload string `json:"workload,omitempty"`
	Source   string `json:"source,omitempty"`
	// MemWords overrides the linked memory size (default: the workload's
	// own, or 65536 for sources).
	MemWords int          `json:"mem_words,omitempty"`
	Options  *OptionsSpec `json:"options,omitempty"`
}

// AntidepReport is one clobber antidependence the construction cut.
type AntidepReport struct {
	Read      string `json:"read"`
	Write     string `json:"write"`
	MustAlias bool   `json:"must_alias"`
}

// FunctionReport is one function's §4 construction outcome.
type FunctionReport struct {
	Name              string          `json:"name"`
	Instructions      int             `json:"instructions"`
	Regions           int             `json:"regions"`
	AvgRegionSize     float64         `json:"avg_region_size"`
	LargestRegionSize int             `json:"largest_region_size"`
	AntidepsCut       int             `json:"antideps_cut"`
	CutsFromMulticut  int             `json:"cuts_from_multicut"`
	CutsFromCalls     int             `json:"cuts_from_calls"`
	CutsFromSelfDep   int             `json:"cuts_from_selfdep"`
	CutsFromRetSplit  int             `json:"cuts_from_retsplit"`
	LoopsUnrolled     int             `json:"loops_unrolled"`
	Antideps          []AntidepReport `json:"antideps,omitempty"`
}

// CompileReport is the /v1/compile response body.
type CompileReport struct {
	Workload    string `json:"workload"`
	Fingerprint string `json:"fingerprint"`
	MemWords    int    `json:"mem_words"`
	Idempotent  bool   `json:"idempotent"`

	StaticInstrs int `json:"static_instrs"`
	Marks        int `json:"marks"`
	SpillLoads   int `json:"spill_loads"`
	SpillStores  int `json:"spill_stores"`
	FrameWords   int `json:"frame_words"`

	// Verified is true when the serving cache's translation validator
	// (see Config.VerifyMode and docs/verify.md) checked this build and
	// found no §2.1 violations; false when verification is off, the
	// build was not sampled, or there was nothing to check. The library
	// constructor ReportForBuild leaves it false — only the serving path
	// knows the cache's verification status.
	Verified bool `json:"verified"`

	// Functions holds the per-function region construction, sorted by
	// name (idempotent builds only).
	Functions []FunctionReport `json:"functions,omitempty"`
}

// ReportForBuild renders the canonical compile report for a finished
// build. The HTTP handler and library callers (examples/quickstart)
// share this single constructor, which is what makes the service's JSON
// and the library path diff-identical by construction.
func ReportForBuild(w workloads.Workload, mo codegen.ModuleOptions, st *codegen.BuildStats) *CompileReport {
	rep := &CompileReport{
		Workload:     w.Name,
		Fingerprint:  mo.Fingerprint(),
		MemWords:     w.MemWords,
		Idempotent:   mo.Idempotent,
		StaticInstrs: st.StaticInstrs,
		Marks:        st.Marks,
		SpillLoads:   st.SpillLoads,
		SpillStores:  st.SpillStores,
		FrameWords:   st.FrameWords,
	}
	names := make([]string, 0, len(st.Construction))
	for name := range st.Construction {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		res := st.Construction[name]
		fr := FunctionReport{
			Name:              name,
			Instructions:      res.Stats.Instructions,
			Regions:           res.Stats.RegionCount,
			AvgRegionSize:     res.Stats.AvgRegionSize,
			LargestRegionSize: res.Stats.LargestRegionSize,
			AntidepsCut:       res.Stats.AntidepsCut,
			CutsFromMulticut:  res.Stats.CutsFromMulticut,
			CutsFromCalls:     res.Stats.CutsFromCalls,
			CutsFromSelfDep:   res.Stats.CutsFromSelfDep,
			CutsFromRetSplit:  res.Stats.CutsFromRetSplit,
			LoopsUnrolled:     res.Stats.LoopsUnrolled,
		}
		for _, d := range res.Antideps {
			fr.Antideps = append(fr.Antideps, AntidepReport{
				Read:      d.Read,
				Write:     d.Write,
				MustAlias: d.MustAlias,
			})
		}
		rep.Functions = append(rep.Functions, fr)
	}
	return rep
}

// ---------------------------------------------------------------------
// Routing keys.
//
// The shard front tier (internal/shard) routes every /v1 request by the
// same content key the buildcache uses, so one replica owns each
// distinct compile and the fleet's caches partition the working set.
// RouteKey mirrors the key derivation inside doCompile/doSimulate —
// workload resolution, memWords defaulting, options fingerprint — but
// performs no validation: an invalid request still gets a deterministic
// key, and the replica it lands on produces the canonical error.
// TestRouteKeyMatchesCacheKey pins the mirror against the real path.

// RouteKey returns the buildcache content key this request's build
// would use.
func (r *CompileRequest) RouteKey() buildcache.Key {
	return routeKey(r.Workload, r.Source, r.MemWords, r.Options.moduleOptions(true))
}

// RouteKey returns the buildcache content key this request's build
// would use. The scheme decides the idempotent-compilation bit exactly
// as doSimulate does.
func (r *SimulateRequest) RouteKey() buildcache.Key {
	idem := r.Scheme == "idem"
	mo := r.Options.moduleOptions(idem)
	mo.Idempotent = idem
	return routeKey(r.Workload, r.Source, r.MemWords, mo)
}

// routeKey resolves (workload|source, memWords) the way resolveWorkload
// does, minus validation, and pairs it with the options fingerprint.
func routeKey(name, source string, memWords int, mo codegen.ModuleOptions) buildcache.Key {
	k := buildcache.Key{Workload: name, MemWords: memWords, Options: mo.Fingerprint()}
	switch {
	case name != "" && source == "":
		if w, ok := workloads.ByName(name); ok && memWords == 0 {
			k.MemWords = w.MemWords
		}
	case source != "" && name == "":
		sum := sha256.Sum256([]byte(source))
		k.Workload = "src-" + hex.EncodeToString(sum[:8])
		if memWords <= 0 {
			k.MemWords = defaultMemWords
		}
	}
	return k
}

// ---------------------------------------------------------------------
// POST /v1/simulate

// InjectionSpec arms one fault before the run (absolute dynamic-
// instruction step placement; see internal/fault's model catalog).
type InjectionSpec struct {
	Model      string `json:"model"`
	Step       int64  `json:"step"`
	Mask       uint64 `json:"mask,omitempty"`
	Addr       int64  `json:"addr,omitempty"`
	After      int64  `json:"after,omitempty"`
	NestedMask uint64 `json:"nested_mask,omitempty"`
}

// parse resolves the model name and bounds-checks the placement.
func (i InjectionSpec) parse() (fault.Injection, *httpError) {
	ms, err := fault.ParseModels(i.Model)
	if err != nil || len(ms) != 1 {
		return fault.Injection{}, badRequest("injection model %q: must name exactly one model", i.Model)
	}
	if i.Step < 0 || i.After < 0 {
		return fault.Injection{}, badRequest("injection step/after must be >= 0")
	}
	return fault.Injection{
		Model: ms[0], Step: i.Step, Mask: i.Mask,
		Addr: i.Addr, After: i.After, NestedMask: i.NestedMask,
	}, nil
}

// SimulateRequest runs one program on the machine simulator under a
// recovery scheme, optionally with faults armed.
type SimulateRequest struct {
	Workload string   `json:"workload,omitempty"`
	Source   string   `json:"source,omitempty"`
	MemWords int      `json:"mem_words,omitempty"`
	Args     []uint64 `json:"args,omitempty"`
	// Scheme is none, dmr, tmr, cl or idem (default none). idem implies
	// the idempotent compilation; the others run the conventional binary
	// instrumented per scheme.
	Scheme string `json:"scheme,omitempty"`
	// Options tweaks the §4 construction (Idempotent is forced by the
	// scheme and must not be set here).
	Options    *OptionsSpec    `json:"options,omitempty"`
	TrackPaths bool            `json:"track_paths,omitempty"`
	Injections []InjectionSpec `json:"injections,omitempty"`
	// WatchdogRef overrides the livelock watchdog reference instruction
	// count used when injections are armed (default 2^20).
	WatchdogRef int64 `json:"watchdog_ref,omitempty"`
	// MaxSteps lowers the server's execution bound for this request.
	MaxSteps int64 `json:"max_steps,omitempty"`
}

// SimulateReport is the /v1/simulate response body. A run that ends in a
// machine-level error (fail-stop detection, livelock, crash) is still a
// 200: the outcome, including the error text, is part of the
// deterministic digest.
type SimulateReport struct {
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	Result   uint64 `json:"result"`
	Error    string `json:"error,omitempty"`
	// Digest is the machine.Snapshot state digest — the same artifact the
	// repository's differential golden test pins.
	Digest machine.Snapshot `json:"digest"`
	// AvgPathLen is the mean dynamic idempotent path length (when path
	// tracking was on).
	AvgPathLen float64 `json:"avg_path_len,omitempty"`
}

// schemeSetup maps a scheme name to its instrumentation and machine
// configuration (mirrors cmd/idemsim).
func schemeSetup(name string) (fault.Scheme, bool, machine.Config, *httpError) {
	var cfg machine.Config
	switch name {
	case "", "none":
		return 0, false, cfg, nil
	case "dmr":
		return fault.SchemeDMR, true, cfg, nil
	case "tmr":
		cfg.Recovery = machine.RecoverTMR
		return fault.SchemeTMR, true, cfg, nil
	case "cl":
		cfg.Recovery = machine.RecoverCheckpointLog
		return fault.SchemeCheckpointLog, true, cfg, nil
	case "idem":
		cfg.Recovery = machine.RecoverIdempotence
		cfg.BufferStores = true
		return fault.SchemeIdempotence, true, cfg, nil
	default:
		return 0, false, cfg, badRequest("unknown scheme %q (none, dmr, tmr, cl, idem)", name)
	}
}

// ---------------------------------------------------------------------
// POST /v1/batch

// BatchUnit is one unit of a batch: exactly one of Compile or Simulate.
type BatchUnit struct {
	Compile  *CompileRequest  `json:"compile,omitempty"`
	Simulate *SimulateRequest `json:"simulate,omitempty"`
}

// BatchRequest fans units onto the experiment engine's worker pool.
type BatchRequest struct {
	Units []BatchUnit `json:"units"`
}

// BatchResult is one unit's outcome, in request order. Per-unit failures
// are recorded here (the batch itself still returns 200); only
// validation and cancellation fail the whole request.
type BatchResult struct {
	Index    int             `json:"index"`
	Compile  *CompileReport  `json:"compile,omitempty"`
	Simulate *SimulateReport `json:"simulate,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// BatchResponse is the /v1/batch response body.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}
