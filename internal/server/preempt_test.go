package server

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// waitPreempted polls the preemption counter; the step loop's poll
// stride bounds how long a canceled simulation keeps running, so the
// counter must move almost immediately.
func waitPreempted(t *testing.T, s *Server, want int64, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for s.Metrics().SimPreemptedNow() < want {
		if time.Now().After(deadline) {
			t.Fatalf("sim_preempted = %d after %v, want >= %d — the canceled simulation kept running",
				s.Metrics().SimPreemptedNow(), within, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSimulateTimeoutPreemptsRun: a request-deadline 503 must also stop
// the simulation server-side (the pre-preemption behavior was a 503
// whose run burned CPU to completion in the background). The preemption
// counter moving right after the 503 is the observable proof that the
// step loop exited on the deadline, within its instruction budget —
// the budget itself is pinned by the machine-level preemption tests.
func TestSimulateTimeoutPreemptsRun(t *testing.T) {
	s := New(Config{RequestTimeout: 30 * time.Millisecond, PreemptEvery: 2048})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, b := postJSON(t, ts.Client(), ts.URL+"/v1/simulate",
		marshal(t, &SimulateRequest{Source: slowSource, Args: []uint64{200_000_000}}))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("timed-out simulate: status %d body %s, want 503", code, b)
	}
	if !strings.Contains(string(b), "request abandoned") {
		t.Errorf("timed-out simulate body %s, want 'request abandoned'", b)
	}
	waitPreempted(t, s, 1, 5*time.Second)

	// The counter is part of the exposition.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(mb), "idemd_sim_preempted_total 1") {
		t.Errorf("metrics missing idemd_sim_preempted_total 1:\n%s", mb)
	}
}

// TestClientCancelPreemptsRun: client disconnection (not just the
// server deadline) propagates into the step loop.
func TestClientCancelPreemptsRun(t *testing.T) {
	s := New(Config{PreemptEvery: 2048})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	slow := marshal(t, &SimulateRequest{Source: slowSource, Args: []uint64{200_000_000}})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/simulate", bytes.NewReader(slow))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().InFlightNow() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned request: got %v, want context.Canceled", err)
	}
	waitPreempted(t, s, 1, 5*time.Second)
}

// TestBatchCancellationPreemptsUnits: abandoning a /v1/batch cancels
// the fan-out context, and every in-flight simulate unit stops stepping
// — preemption reaches through the engine pool, not just the
// single-request path.
func TestBatchCancellationPreemptsUnits(t *testing.T) {
	s := New(Config{Workers: 4, PreemptEvery: 2048})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	units := make([]BatchUnit, 4)
	for i := range units {
		units[i].Simulate = &SimulateRequest{Source: slowSource, Args: []uint64{200_000_000 + uint64(i)}}
	}
	body := marshal(t, &BatchRequest{Units: units})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().InFlightNow() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	// Give the pool a moment to start the units, then pull the plug.
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned batch: got %v, want context.Canceled", err)
	}
	// At least one unit was mid-simulation when the context died; all
	// such units must preempt.
	waitPreempted(t, s, 1, 5*time.Second)
}
