// Tests for the async job endpoints. The load-bearing assertions are
// byte-level: the concatenated /v1/jobs/{id}/stream body must
// reconstruct the /v1/batch response for the same request exactly, and a
// job resumed after a restart must produce the same bytes with zero
// recompiles and no re-execution of journaled units.
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// jobBatchBody is a mixed batch: compiles, simulates across schemes, and
// a per-unit error — the same shape the batch determinism tests use.
func jobBatchBody(t *testing.T) []byte {
	t.Helper()
	return marshal(t, &BatchRequest{Units: []BatchUnit{
		{Compile: &CompileRequest{Source: tinySource}},
		{Simulate: &SimulateRequest{Source: tinySource, Args: []uint64{25}, Scheme: "idem"}},
		{Simulate: &SimulateRequest{Source: tinySource, Args: []uint64{10}, Scheme: "tmr"}},
		{Compile: &CompileRequest{Source: "not a program"}}, // per-unit error
		{Simulate: &SimulateRequest{Source: tinySource, Args: []uint64{7},
			Injections: []InjectionSpec{{Model: "reg", Step: 40, Mask: 1 << 7}}}},
	}})
}

// submitJob posts body to /v1/jobs and returns the handle.
func submitJob(t *testing.T, ts *httptest.Server, body []byte) SubmitResponse {
	t.Helper()
	code, b := postJSON(t, ts.Client(), ts.URL+"/v1/jobs", body)
	if code != http.StatusOK {
		t.Fatalf("submit: status %d body %s", code, b)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(b, &sub); err != nil {
		t.Fatalf("submit body %s: %v", b, err)
	}
	if sub.ID == "" || sub.State != "running" {
		t.Fatalf("submit response %+v", sub)
	}
	return sub
}

// streamLines reads the full NDJSON stream from cursor and returns the
// raw result lines.
func streamLines(t *testing.T, ts *httptest.Server, id string, cursor int) []string {
	t.Helper()
	resp, err := ts.Client().Get(fmt.Sprintf("%s/v1/jobs/%s/stream?cursor=%d", ts.URL, id, cursor))
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content-type %q", ct)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	return lines
}

// reconstructBatch rebuilds a /v1/batch response body from stream lines.
func reconstructBatch(lines []string) []byte {
	return []byte(`{"results":[` + strings.Join(lines, ",") + "]}\n")
}

// TestJobStreamAndPollMatchBatchBytes submits the same body to /v1/batch
// and /v1/jobs and requires that (a) the concatenated stream lines
// reconstruct the batch response byte-for-byte, and (b) a cursor-driven
// poll loop collects the identical per-unit bytes.
func TestJobStreamAndPollMatchBatchBytes(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := jobBatchBody(t)
	code, batchBody := postJSON(t, ts.Client(), ts.URL+"/v1/batch", body)
	if code != http.StatusOK {
		t.Fatalf("batch: status %d body %s", code, batchBody)
	}

	sub := submitJob(t, ts, body)
	lines := streamLines(t, ts, sub.ID, 0)
	if len(lines) != sub.Units {
		t.Fatalf("stream returned %d lines, want %d", len(lines), sub.Units)
	}
	if got := reconstructBatch(lines); !bytes.Equal(got, batchBody) {
		t.Fatalf("stream reconstruction differs from batch:\n got %s\nwant %s", got, batchBody)
	}

	// Cursor loop over the finished job (and one poll beyond the end).
	var collected []string
	cursor := 0
	for cursor < sub.Units {
		code, b := getJSON(t, ts, fmt.Sprintf("/v1/jobs/%s?cursor=%d&wait=5000", sub.ID, cursor))
		if code != http.StatusOK {
			t.Fatalf("poll: status %d body %s", code, b)
		}
		var rep pollReply
		if err := json.Unmarshal(b, &rep); err != nil {
			t.Fatal(err)
		}
		for _, r := range rep.Results {
			collected = append(collected, string(r))
		}
		if rep.NextCursor == cursor && rep.State != "running" {
			break
		}
		cursor = rep.NextCursor
	}
	if got := reconstructBatch(collected); !bytes.Equal(got, batchBody) {
		t.Fatalf("poll reconstruction differs from batch:\n got %s\nwant %s", got, batchBody)
	}
}

// pollReply mirrors jobs.PollResponse for decoding in tests.
type pollReply struct {
	ID         string   `json:"id"`
	State      string   `json:"state"`
	Units      int      `json:"units"`
	NextCursor int      `json:"next_cursor"`
	Error      string   `json:"error,omitempty"`
	Results    []rawMsg `json:"results"`
}

type rawMsg []byte

func (m *rawMsg) UnmarshalJSON(b []byte) error { *m = append((*m)[:0], b...); return nil }

func getJSON(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

// TestJobCursorValidation pins the edge semantics: cursor past the unit
// count is 400, cursor at the end is an empty 200, junk cursors/waits
// are 400, unknown ids are 404, and the wildcard route 405s with a
// combined Allow header.
func TestJobCursorValidation(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sub := submitJob(t, ts, jobBatchBody(t))
	// Wait for completion.
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, b := getJSON(t, ts, "/v1/jobs/"+sub.ID+"?wait=1000")
		if code != http.StatusOK {
			t.Fatalf("poll: status %d body %s", code, b)
		}
		var rep pollReply
		if err := json.Unmarshal(b, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", rep)
		}
	}

	for _, tc := range []struct {
		path string
		want int
	}{
		{fmt.Sprintf("/v1/jobs/%s?cursor=%d", sub.ID, sub.Units), http.StatusOK},
		{fmt.Sprintf("/v1/jobs/%s?cursor=%d", sub.ID, sub.Units+1), http.StatusBadRequest},
		{"/v1/jobs/" + sub.ID + "?cursor=-1", http.StatusBadRequest},
		{"/v1/jobs/" + sub.ID + "?cursor=abc", http.StatusBadRequest},
		{"/v1/jobs/" + sub.ID + "?wait=abc", http.StatusBadRequest},
		{"/v1/jobs/" + sub.ID + "?wait=-5", http.StatusBadRequest},
		{fmt.Sprintf("/v1/jobs/%s/stream?cursor=%d", sub.ID, sub.Units+1), http.StatusBadRequest},
		{"/v1/jobs/nosuchjob", http.StatusNotFound},
		{"/v1/jobs/nosuchjob/stream", http.StatusNotFound},
	} {
		if code, b := getJSON(t, ts, tc.path); code != tc.want {
			t.Errorf("GET %s: status %d body %s, want %d", tc.path, code, b, tc.want)
		}
	}

	// Cursor at the end: empty results, terminal state, cursor echoed.
	_, b := getJSON(t, ts, fmt.Sprintf("/v1/jobs/%s?cursor=%d&wait=1000", sub.ID, sub.Units))
	var rep pollReply
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.State != "done" || rep.NextCursor != sub.Units || len(rep.Results) != 0 {
		t.Fatalf("poll at end = %s", b)
	}
	if !strings.Contains(string(b), `"results":[]`) {
		t.Fatalf("poll at end must encode results as [], got %s", b)
	}

	// Method filtering on the wildcard route.
	req, _ := http.NewRequest(http.MethodPatch, ts.URL+"/v1/jobs/"+sub.ID, nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PATCH: status %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET, DELETE" {
		t.Fatalf("PATCH Allow = %q, want \"GET, DELETE\"", allow)
	}

	// DELETE of an unknown job is 404 too.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/nosuchjob", nil)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown: status %d, want 404", resp.StatusCode)
	}
}

// TestJobConcurrentPollers runs several cursor loops against one job
// concurrently; each must collect the identical full result sequence.
func TestJobConcurrentPollers(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	units := make([]BatchUnit, 8)
	for i := range units {
		units[i] = BatchUnit{Simulate: &SimulateRequest{Source: tinySource, Args: []uint64{uint64(5 + i)}}}
	}
	sub := submitJob(t, ts, marshal(t, &BatchRequest{Units: units}))

	var wg sync.WaitGroup
	results := make([][]string, 4)
	for p := range results {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cursor := 0
			for cursor < sub.Units {
				code, b := getJSON(t, ts, fmt.Sprintf("/v1/jobs/%s?cursor=%d&wait=2000", sub.ID, cursor))
				if code != http.StatusOK {
					t.Errorf("poller %d: status %d body %s", p, code, b)
					return
				}
				var rep pollReply
				if err := json.Unmarshal(b, &rep); err != nil {
					t.Errorf("poller %d: %v", p, err)
					return
				}
				for _, r := range rep.Results {
					results[p] = append(results[p], string(r))
				}
				cursor = rep.NextCursor
			}
		}(p)
	}
	wg.Wait()
	for p := 1; p < len(results); p++ {
		if strings.Join(results[p], "\n") != strings.Join(results[0], "\n") {
			t.Fatalf("poller %d collected different bytes than poller 0", p)
		}
	}
	if len(results[0]) != sub.Units {
		t.Fatalf("pollers collected %d results, want %d", len(results[0]), sub.Units)
	}
}

// TestJobCancel: DELETE flips a running job to canceled, wakes waiters,
// and the stream ends early instead of hanging.
func TestJobCancel(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	units := make([]BatchUnit, 3)
	for i := range units {
		units[i] = BatchUnit{Simulate: &SimulateRequest{Source: slowSource, Args: []uint64{200_000_000 + uint64(i)}}}
	}
	sub := submitJob(t, ts, marshal(t, &BatchRequest{Units: units}))

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(buf.String(), `"state":"canceled"`) {
		t.Fatalf("DELETE: status %d body %s", resp.StatusCode, buf.String())
	}

	// The stream of a canceled job terminates (possibly with zero lines).
	lines := streamLines(t, ts, sub.ID, 0)
	if len(lines) >= sub.Units {
		t.Fatalf("canceled job streamed %d lines", len(lines))
	}
	// Poll confirms the terminal state; a second DELETE stays canceled.
	_, b := getJSON(t, ts, "/v1/jobs/"+sub.ID)
	if !strings.Contains(string(b), `"state":"canceled"`) {
		t.Fatalf("poll after cancel: %s", b)
	}
}

// TestShedRetryAfter: 429 sheds carry a Retry-After hint (satellite:
// resilience clients back off precisely instead of guessing).
func TestShedRetryAfter(t *testing.T) {
	s := New(Config{MaxInFlight: 1, RetryAfterHint: 2 * time.Second})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	slow := marshal(t, &SimulateRequest{Source: slowSource, Args: []uint64{200_000_000}})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/simulate", bytes.NewReader(slow))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().InFlightNow() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := ts.Client().Post(ts.URL+"/v1/compile", "application/json",
		bytes.NewReader(marshal(t, &CompileRequest{Source: tinySource})))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit request: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
}

// TestJobTableFullRetryAfter: a full job table rejects submissions with
// 429 + Retry-After, and frees up once a job is canceled and reaped.
func TestJobTableFullRetryAfter(t *testing.T) {
	s := New(Config{Workers: 1, MaxJobs: 1, JobTTL: 50 * time.Millisecond})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	slowBody := marshal(t, &BatchRequest{Units: []BatchUnit{
		{Simulate: &SimulateRequest{Source: slowSource, Args: []uint64{200_000_000}}},
	}})
	sub := submitJob(t, ts, slowBody)

	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(jobBatchBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit to full table: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("submit to full table: missing Retry-After")
	}

	// Cancel; after the TTL the next submit reaps the slot inline.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
	if resp, err := ts.Client().Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	time.Sleep(80 * time.Millisecond)
	submitJob(t, ts, jobBatchBody(t))
}

// TestJobResumeAfterRestart is the tentpole e2e: a job interrupted by a
// daemon restart resumes from its journal — the journaled prefix is not
// re-executed, the compiles all come from the artifact store (zero
// codegen runs), and the final bytes are identical to an uninterrupted
// /v1/batch of the same body.
func TestJobResumeAfterRestart(t *testing.T) {
	dir := t.TempDir()
	body := marshal(t, &BatchRequest{Units: []BatchUnit{
		{Compile: &CompileRequest{Source: tinySource}},
		{Simulate: &SimulateRequest{Source: tinySource, Args: []uint64{25}}},
		{Simulate: &SimulateRequest{Source: slowSource, Args: []uint64{300_000}}},
		{Simulate: &SimulateRequest{Source: slowSource, Args: []uint64{300_001}}},
		{Simulate: &SimulateRequest{Source: slowSource, Args: []uint64{300_002}}},
	}})

	// First life: single worker so the slow tail is still pending when
	// the first results land; shut down mid-job.
	s1 := New(Config{Workers: 1, CacheDir: dir})
	ts1 := httptest.NewServer(s1.Handler())
	sub := submitJob(t, ts1, body)
	deadline := time.Now().Add(30 * time.Second)
	for s1.Jobs().Stats().Completed == 0 {
		code, b := getJSON(t, ts1, "/v1/jobs/"+sub.ID+"?wait=500")
		if code != http.StatusOK {
			t.Fatalf("poll: status %d body %s", code, b)
		}
		var rep pollReply
		if err := json.Unmarshal(b, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.NextCursor >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no progress before restart")
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	cancel()
	ts1.Close()
	interrupted := s1.Jobs().Stats().Completed == 0

	// Second life over the same cache dir: artifact scan first (as
	// cmd/idemd does), then job recovery.
	s2 := New(Config{CacheDir: dir})
	defer s2.Close()
	if d := s2.Cache().Disk(); d != nil {
		d.Scan()
	}
	rs := s2.RecoverJobs()
	if rs.Resumed+rs.Complete != 1 {
		t.Fatalf("recover stats = %+v, want exactly the one job back", rs)
	}
	if interrupted && rs.Units == 0 {
		t.Fatal("interrupted job recovered zero journaled units")
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	lines := streamLines(t, ts2, sub.ID, 0)
	if len(lines) != sub.Units {
		t.Fatalf("resumed stream returned %d lines, want %d", len(lines), sub.Units)
	}
	if interrupted {
		if got := s2.Jobs().Stats().ResumedUnits; got == 0 {
			t.Fatal("resumed-units counter is zero for an interrupted job")
		}
	}
	// Zero recompiles: every build the resumed units needed came from
	// the persisted artifact store.
	if c := s2.Cache().Stats().Compiles; c != 0 {
		t.Fatalf("resume ran %d compiles, want 0 (artifact store was warm)", c)
	}

	// Byte-identity against an uninterrupted /v1/batch of the same body.
	code, batchBody := postJSON(t, ts2.Client(), ts2.URL+"/v1/batch", body)
	if code != http.StatusOK {
		t.Fatalf("reference batch: status %d", code)
	}
	if got := reconstructBatch(lines); !bytes.Equal(got, batchBody) {
		t.Fatalf("resumed stream differs from batch:\n got %s\nwant %s", got, batchBody)
	}
}
