// Package server implements idemd, the long-running idempotence-analysis
// service: an HTTP/JSON facade over the full paper pipeline. POST
// /v1/compile returns the §4 region/antidependence/cut report, POST
// /v1/simulate runs the machine simulator (optionally with faults armed)
// and returns the state digest, and POST /v1/batch fans many units onto
// the experiment engine's worker pool. GET /healthz, /readyz and
// /metrics serve liveness, drain-aware readiness and hand-rolled
// Prometheus text metrics.
//
// Request coalescing and artifact caching come from the shared
// buildcache: concurrent requests for the same (workload, options) key
// singleflight onto one compile, and the byte-bounded LRU keeps the
// daemon's footprint flat over an open-ended request stream. The
// middleware stack enforces per-request deadlines, sheds load with 429
// beyond a concurrency limit, and drains gracefully on SIGTERM (readyz
// flips to 503, in-flight requests complete, new connections stop).
//
// See docs/service.md for the API and metrics catalog.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"idemproc/internal/buildcache"
	"idemproc/internal/experiments"
	"idemproc/internal/fault"
	"idemproc/internal/jobs"
	"idemproc/internal/machine"
)

// Config sizes the daemon. Zero values select the documented defaults.
type Config struct {
	// Workers is the experiment-engine pool width for /v1/batch
	// (default GOMAXPROCS).
	Workers int
	// MaxInFlight bounds concurrently served /v1/* requests; excess
	// requests are shed with 429 (default 64).
	MaxInFlight int
	// RequestTimeout is the per-request context deadline on /v1/*
	// (default 30s; <0 disables).
	RequestTimeout time.Duration
	// CacheMaxBytes bounds the compile cache (0 = unbounded).
	CacheMaxBytes int64
	// CacheDir, when non-empty, roots the persistent artifact store:
	// compiles are written behind as verified artifact files and memory
	// misses (cold start, eviction) reload from disk instead of
	// recompiling. See docs/persistence.md.
	CacheDir string
	// VerifyMode re-checks compiled programs against the §2.1 criterion
	// with the internal/verify translation validator (off by default;
	// see docs/verify.md). Sampled and full modes also re-verify every
	// disk artifact after decode.
	VerifyMode buildcache.VerifyMode
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxBatchUnits bounds /v1/batch fan-out (default 256).
	MaxBatchUnits int
	// MaxSimSteps caps simulated dynamic instructions per request
	// (default 2^28); requests may lower but not raise it.
	MaxSimSteps int64
	// PreemptEvery is the simulator's cancellation-poll stride in
	// dynamic instructions (default 4096): a canceled or timed-out
	// request stops its simulation within this many instructions, so
	// the request deadline bounds server-side work, not just
	// client-observed latency.
	PreemptEvery int64
	// MaxJobs bounds the async job table for /v1/jobs (default 64).
	MaxJobs int
	// JobTTL is how long a finished job stays queryable before reaping
	// (default 10m).
	JobTTL time.Duration
	// JobPollMax caps the long-poll wait a GET /v1/jobs/{id} request may
	// ask for (default 25s — under common LB idle timeouts).
	JobPollMax time.Duration
	// RetryAfterHint is the Retry-After value attached to 429 sheds
	// (default 1s) so clients back off precisely instead of guessing.
	RetryAfterHint time.Duration
	// Logf, when set, receives one line per lifecycle event (listen,
	// drain, shutdown). Per-request logging is intentionally absent —
	// /metrics is the observation surface.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBatchUnits <= 0 {
		c.MaxBatchUnits = 256
	}
	if c.MaxSimSteps <= 0 {
		c.MaxSimSteps = 1 << 28
	}
	if c.PreemptEvery <= 0 {
		c.PreemptEvery = 4096
	}
	if c.JobPollMax <= 0 {
		c.JobPollMax = 25 * time.Second
	}
	if c.RetryAfterHint <= 0 {
		c.RetryAfterHint = time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the idemd service core. Create with New; serve either via
// Handler (for embedding/tests) or Serve+Shutdown (for the daemon).
type Server struct {
	cfg     Config
	cache   *buildcache.Cache
	engine  *experiments.Engine
	metrics *Metrics
	jobs    *jobs.Manager
	mux     *http.ServeMux
	sem     chan struct{}

	draining atomic.Bool
	httpSrv  *http.Server
}

// New builds a server with its own bounded compile cache, batch engine
// and async job manager. Journaled jobs from a previous life are NOT
// resumed here — call RecoverJobs after warming the artifact store
// (cmd/idemd scans the disk tier first so resumed units hit artifacts
// instead of recompiling).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	cache := buildcache.NewBoundedDisk(cfg.CacheMaxBytes, cfg.CacheDir)
	cache.SetVerifyMode(cfg.VerifyMode)
	s := &Server{
		cfg:     cfg,
		cache:   cache,
		engine:  experiments.NewEngineWithCache(cfg.Workers, cache),
		metrics: NewMetrics(),
		mux:     http.NewServeMux(),
		sem:     make(chan struct{}, cfg.MaxInFlight),
	}
	s.jobs = jobs.NewManager(jobs.Config{
		Dir:     cfg.CacheDir,
		MaxJobs: cfg.MaxJobs,
		TTL:     cfg.JobTTL,
		Logf:    cfg.Logf,
	}, s.engine, s.runJobUnit)
	get, post := []string{http.MethodGet}, []string{http.MethodPost}
	s.mux.Handle("/healthz", s.instrument("/healthz", get, false, s.handleHealthz))
	s.mux.Handle("/readyz", s.instrument("/readyz", get, false, s.handleReadyz))
	s.mux.Handle("/metrics", s.instrument("/metrics", get, false, s.handleMetrics))
	s.mux.Handle("/v1/compile", s.instrument("/v1/compile", post, true, s.handleCompile))
	s.mux.Handle("/v1/simulate", s.instrument("/v1/simulate", post, true, s.handleSimulate))
	s.mux.Handle("/v1/batch", s.instrument("/v1/batch", post, true, s.handleBatch))
	// Job submission holds a semaphore slot only for the submit itself;
	// poll/stream/cancel are cheap waits and stay unlimited so a full
	// semaphore cannot block reading results (which is what frees work).
	s.mux.Handle("/v1/jobs", s.instrument("/v1/jobs", post, true, s.handleJobSubmit))
	s.mux.Handle("/v1/jobs/{id}", s.instrument("/v1/jobs/{id}",
		[]string{http.MethodGet, http.MethodDelete}, false, s.handleJob))
	s.mux.Handle("/v1/jobs/{id}/stream", s.instrument("/v1/jobs/{id}/stream", get, false, s.handleJobStream))
	return s
}

// Handler returns the fully instrumented HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the compile cache (cmd/idemd logs its stats on exit;
// tests assert on it).
func (s *Server) Cache() *buildcache.Cache { return s.cache }

// Metrics exposes the metric registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Jobs exposes the async job manager (tests assert on its stats).
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// RecoverJobs resumes journaled jobs from a previous process life. Call
// it once, after the artifact store's warm-start Scan, so the resumed
// units reload compiles from disk instead of re-running codegen.
func (s *Server) RecoverJobs() jobs.RecoverStats {
	rs := s.jobs.Recover()
	if rs.Resumed+rs.Complete+rs.Pruned > 0 {
		s.cfg.Logf("idemd: job recovery: %d resumed, %d already complete, %d units journaled, %d pruned",
			rs.Resumed, rs.Complete, rs.Units, rs.Pruned)
	}
	return rs
}

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a clean drain, like net/http.
func (s *Server) Serve(l net.Listener) error {
	s.httpSrv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.cfg.Logf("idemd: listening on %s", l.Addr())
	return s.httpSrv.Serve(l)
}

// Shutdown drains the server: readiness flips to 503 immediately (so
// load balancers stop routing), in-flight requests run to completion,
// and Serve returns once the listener is closed and connections idle.
// No request is dropped silently — everything admitted before Shutdown
// gets its response.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.cfg.Logf("idemd: draining (readyz -> 503)")
	// Stop the job subsystem first: runners park (journals stay on disk
	// for the next boot to resume) and blocked pollers/streamers wake,
	// so their connections can drain instead of holding Shutdown until
	// their long-poll deadlines.
	s.jobs.Stop()
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	if jerr := s.jobs.Close(ctx); jerr != nil && err == nil {
		err = jerr
	}
	if d := s.cache.Disk(); d != nil {
		// Let in-flight write-behind artifact writes land before exit, so
		// a restart finds everything the drained process compiled.
		if ferr := d.Flush(ctx); ferr != nil {
			s.cfg.Logf("idemd: artifact flush aborted: %v", ferr)
		} else {
			s.cfg.Logf("idemd: artifact store flushed")
		}
	}
	s.cfg.Logf("idemd: drained")
	return err
}

// Close force-closes the listener and every active connection — the
// hard-exit path a second SIGTERM during a stuck drain takes. In-flight
// requests are abandoned; their contexts are canceled by the connection
// teardown, which preempts any running simulations within the poll
// budget.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.jobs.Stop()
	if s.httpSrv == nil {
		return nil
	}
	return s.httpSrv.Close()
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// ---------------------------------------------------------------------
// Middleware.

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so the NDJSON stream handler
// can push each chunk through the recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with method filtering, the in-flight gauge,
// the concurrency limiter (limited endpoints shed with 429 instead of
// queueing — the client can retry against another replica; queued work
// would just grow latency unboundedly), the per-request deadline, and
// latency/status accounting. The path label is the route pattern, so
// wildcard routes like /v1/jobs/{id} stay one metric series.
func (s *Server) instrument(path string, methods []string, limited bool, h func(http.ResponseWriter, *http.Request)) http.Handler {
	allow := strings.Join(methods, ", ")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		done := s.metrics.InFlight()
		defer func() {
			done()
			s.metrics.Observe(path, rec.code, time.Since(start))
		}()

		allowed := false
		for _, m := range methods {
			if r.Method == m {
				allowed = true
				break
			}
		}
		if !allowed {
			rec.Header().Set("Allow", allow)
			writeError(rec, http.StatusMethodNotAllowed, fmt.Sprintf("method %s not allowed", r.Method))
			return
		}
		if limited {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				s.metrics.Shed()
				// Retry-After turns the shed from a guess into a schedule:
				// resilience clients honor it verbatim instead of probing
				// with their own backoff curve.
				rec.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfterHint)))
				writeError(rec, http.StatusTooManyRequests, "server at concurrency limit, retry later")
				return
			}
			if s.cfg.RequestTimeout > 0 {
				ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
				defer cancel()
				r = r.WithContext(ctx)
			}
		}
		h(rec, r)
	})
}

// retryAfterSeconds renders a hint as whole seconds, minimum 1 (the
// header's granularity; 0 would mean "retry immediately", defeating the
// point).
func retryAfterSeconds(d time.Duration) int {
	sec := int((d + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	return sec
}

// writeJSON marshals v with a trailing newline. Marshaling fixed structs
// is deterministic, which is what makes response bodies byte-identical
// across runs and replicas.
func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "response encoding failed")
		return
	}
	b = append(b, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(b)
}

// errorBody is the uniform error response.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

// writeHTTPErr maps internal errors onto responses: validation errors
// keep their status, cancellation/deadline becomes 503 (the request was
// not served; a draining or overloaded replica tells the client to go
// elsewhere), anything else is a 422 pipeline failure.
func writeHTTPErr(w http.ResponseWriter, err error) {
	var he *httpError
	switch {
	case errors.As(err, &he):
		writeError(w, he.status, he.msg)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusServiceUnavailable, fmt.Sprintf("request abandoned: %v", err))
	default:
		writeError(w, http.StatusUnprocessableEntity, err.Error())
	}
}

// decodeJSON strictly parses the request body into v.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) *httpError {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &httpError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes)}
		}
		return badRequest("invalid JSON body: %v", err)
	}
	if dec.More() {
		return badRequest("trailing data after JSON body")
	}
	return nil
}

// ---------------------------------------------------------------------
// Health, readiness, metrics.

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, s.metrics.Render(s.cache.Stats(), s.jobs.Stats()))
}

// ---------------------------------------------------------------------
// /v1 handlers.

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req CompileRequest
	if he := s.decodeJSON(w, r, &req); he != nil {
		writeHTTPErr(w, he)
		return
	}
	rep, err := s.doCompile(r.Context(), &req)
	if err != nil {
		writeHTTPErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// doCompile validates, builds (through the coalescing cache) and renders
// the report. Shared by the batch handler.
func (s *Server) doCompile(ctx context.Context, req *CompileRequest) (*CompileReport, error) {
	wk, he := resolveWorkload(req.Workload, req.Source, req.MemWords, nil)
	if he != nil {
		return nil, he
	}
	mo := req.Options.moduleOptions(true)
	_, st, err := s.engine.Build(ctx, wk, mo)
	if err != nil {
		return nil, err
	}
	rep := ReportForBuild(wk, mo, st)
	rep.Verified = s.cache.Verified(wk, mo)
	return rep, nil
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if he := s.decodeJSON(w, r, &req); he != nil {
		writeHTTPErr(w, he)
		return
	}
	rep, err := s.doSimulate(r.Context(), &req)
	if err != nil {
		writeHTTPErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// doSimulate validates, builds the scheme's binary, arms any injections
// and runs the simulator. Shared by the batch handler.
func (s *Server) doSimulate(ctx context.Context, req *SimulateRequest) (*SimulateReport, error) {
	wk, he := resolveWorkload(req.Workload, req.Source, req.MemWords, req.Args)
	if he != nil {
		return nil, he
	}
	schemeID, apply, cfg, he := schemeSetup(req.Scheme)
	if he != nil {
		return nil, he
	}
	if req.Options != nil && req.Options.Idempotent != nil {
		return nil, badRequest("options.idempotent is implied by the scheme; do not set it")
	}
	if len(req.Injections) > maxInjections {
		return nil, badRequest("at most %d injections", maxInjections)
	}
	injs := make([]fault.Injection, 0, len(req.Injections))
	for _, is := range req.Injections {
		inj, he := is.parse()
		if he != nil {
			return nil, he
		}
		injs = append(injs, inj)
	}

	idem := schemeID == fault.SchemeIdempotence && apply
	mo := req.Options.moduleOptions(idem)
	mo.Idempotent = idem
	p, _, err := s.engine.Build(ctx, wk, mo)
	if err != nil {
		return nil, err
	}
	if apply {
		p = fault.Apply(p, schemeID)
	}

	cfg.TrackPaths = req.TrackPaths || idem
	cfg.Cache = machine.DefaultCache()
	cfg.MaxSteps = s.cfg.MaxSimSteps
	if req.MaxSteps > 0 && req.MaxSteps < cfg.MaxSteps {
		cfg.MaxSteps = req.MaxSteps
	}
	if len(injs) > 0 {
		// Arm the livelock watchdog whenever faults are armed: a fault
		// that corrupts a loop bound must cost the service a bounded
		// budget, not MaxSteps worth of simulation.
		cfg.WatchdogRef = req.WatchdogRef
		if cfg.WatchdogRef <= 0 {
			cfg.WatchdogRef = 1 << 20
		}
	}

	cfg.PreemptEvery = s.cfg.PreemptEvery

	m := machine.New(p, cfg)
	for _, inj := range injs {
		fault.Arm(m, inj)
	}
	r0, runErr := s.engine.RunMachine(ctx, m, wk.Args...)
	if errors.Is(runErr, machine.ErrPreempted) {
		// The request deadline (or a canceled batch fan-out) stopped the
		// step loop within cfg.PreemptEvery instructions. Surface the
		// context error so writeHTTPErr maps it to 503, and drop the
		// partial result so batch aggregation stays exact.
		s.metrics.SimPreempted()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, runErr
	}
	if err := ctx.Err(); err != nil {
		// Cancellation raced the final instructions; the requester is
		// already gone, so the (complete) result is dropped all the same.
		return nil, err
	}
	rep := &SimulateReport{
		Workload: wk.Name,
		Scheme:   schemeName(req.Scheme),
		Result:   r0,
		Digest:   m.Snapshot(r0, runErr),
	}
	if runErr != nil {
		rep.Error = runErr.Error()
	}
	if cfg.TrackPaths {
		rep.AvgPathLen = m.Stats.AvgPathLen()
	}
	return rep, nil
}

// schemeName canonicalizes the scheme for the response ("" -> none).
func schemeName(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

// validateBatch applies the shared /v1/batch and /v1/jobs admission
// rules — identical on purpose: a job is a batch with a handle, so the
// same body must be accepted or rejected identically by both.
func (s *Server) validateBatch(req *BatchRequest) *httpError {
	n := len(req.Units)
	if n == 0 {
		return badRequest("batch has no units")
	}
	if n > s.cfg.MaxBatchUnits {
		return badRequest("batch exceeds %d units", s.cfg.MaxBatchUnits)
	}
	for i, u := range req.Units {
		if (u.Compile == nil) == (u.Simulate == nil) {
			return badRequest("unit %d: exactly one of compile or simulate is required", i)
		}
	}
	return nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if he := s.decodeJSON(w, r, &req); he != nil {
		writeHTTPErr(w, he)
		return
	}
	if he := s.validateBatch(&req); he != nil {
		writeHTTPErr(w, he)
		return
	}
	n := len(req.Units)

	// Fan the units onto the engine pool. Per-unit failures are recorded
	// in their slot (fn always returns nil), so one broken unit cannot
	// cancel its siblings; results land in index order regardless of the
	// pool width — the same determinism contract as the figure drivers.
	results := make([]BatchResult, n)
	_ = s.engine.ForEach(r.Context(), n, func(ctx context.Context, i int) error {
		res := BatchResult{Index: i}
		u := req.Units[i]
		switch {
		case u.Compile != nil:
			rep, err := s.doCompile(ctx, u.Compile)
			if err != nil {
				res.Error = err.Error()
			} else {
				res.Compile = rep
			}
		case u.Simulate != nil:
			rep, err := s.doSimulate(ctx, u.Simulate)
			if err != nil {
				res.Error = err.Error()
			} else {
				res.Simulate = rep
			}
		}
		results[i] = res
		return nil
	})
	if err := r.Context().Err(); err != nil {
		// The whole batch is abandoned on deadline/cancel: partial output
		// would not be byte-stable.
		writeHTTPErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, BatchResponse{Results: results})
}
