// Opt-in profiling side listener shared by the daemons (idemd,
// idemfront). The pprof handlers never ride the service mux: profiling
// a production fleet must not widen the traffic-facing surface, and a
// saturated service port must not block a profile grab. The side
// listener binds loopback by convention and serves only /debug/pprof.
package server

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServePprof exposes the net/http/pprof handlers on a dedicated side
// listener at addr (host:port; port 0 picks a free port). It returns
// the bound address and a closer that tears the listener down. The
// accept loop runs on a background goroutine; serve errors after Close
// are discarded.
func ServePprof(addr string) (string, func() error, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(l)
	return l.Addr().String(), srv.Close, nil
}
