// Async job endpoints: POST /v1/jobs submits a batch and returns a
// handle immediately; GET /v1/jobs/{id}?cursor=N long-polls for results
// past the cursor; GET /v1/jobs/{id}/stream pushes them as NDJSON in
// strict index order; DELETE /v1/jobs/{id} cancels. The per-unit result
// bytes are exactly the elements of the /v1/batch results array for the
// same body — `{"results":[` + join(stream lines, ",") + `]}` + "\n"
// reconstructs the batch response byte for byte. See docs/jobs.md.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"idemproc/internal/jobs"
)

// SubmitResponse is the POST /v1/jobs body.
type SubmitResponse struct {
	ID    string `json:"id"`
	Units int    `json:"units"`
	State string `json:"state"`
}

// CancelResponse is the DELETE /v1/jobs/{id} body.
type CancelResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

// runJobUnit executes one journaled unit through the exact code path
// /v1/batch uses (doCompile/doSimulate into a marshaled BatchResult), so
// job results are byte-identical to batch results. The unit bytes were
// strictly validated at submit; a re-parse here cannot fail, but the
// defensive branch keeps a unit error inside its own slot regardless.
func (s *Server) runJobUnit(ctx context.Context, unit json.RawMessage, index int) []byte {
	res := BatchResult{Index: index}
	var u BatchUnit
	if err := json.Unmarshal(unit, &u); err != nil {
		res.Error = fmt.Sprintf("invalid unit: %v", err)
	} else {
		switch {
		case u.Compile != nil:
			rep, err := s.doCompile(ctx, u.Compile)
			if err != nil {
				res.Error = err.Error()
			} else {
				res.Compile = rep
			}
		case u.Simulate != nil:
			rep, err := s.doSimulate(ctx, u.Simulate)
			if err != nil {
				res.Error = err.Error()
			} else {
				res.Simulate = rep
			}
		}
	}
	b, err := json.Marshal(res)
	if err != nil {
		// Unreachable for these fixed structs; keep the slot well-formed.
		b, _ = json.Marshal(BatchResult{Index: index, Error: "result encoding failed"})
	}
	return b
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	// The raw body is read up front: it is both the validation input and
	// the journal payload (recovery re-derives the units from it).
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeHTTPErr(w, &httpError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes)})
			return
		}
		writeHTTPErr(w, badRequest("reading body: %v", err))
		return
	}
	var req BatchRequest
	if he := decodeJSONBytes(body, &req); he != nil {
		writeHTTPErr(w, he)
		return
	}
	if he := s.validateBatch(&req); he != nil {
		writeHTTPErr(w, he)
		return
	}
	// Second parse extracts the units as raw bytes: the runner hands
	// each unit's original text to the same decode path /v1/batch uses.
	var raw struct {
		Units []json.RawMessage `json:"units"`
	}
	if err := json.Unmarshal(body, &raw); err != nil || len(raw.Units) != len(req.Units) {
		writeHTTPErr(w, badRequest("invalid JSON body"))
		return
	}

	j, err := s.jobs.Submit(body, raw.Units)
	if err != nil {
		if errors.Is(err, jobs.ErrTableFull) || errors.Is(err, jobs.ErrClosed) {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfterHint)))
			writeError(w, http.StatusTooManyRequests, err.Error())
			return
		}
		writeHTTPErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, SubmitResponse{ID: j.ID(), Units: j.Units(), State: j.State().String()})
}

// jobFromRequest resolves {id} or writes the canonical 404.
func (s *Server) jobFromRequest(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	id := r.PathValue("id")
	j, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
	}
	return j, ok
}

// parseCursor validates ?cursor=N against [0, units].
func parseCursor(r *http.Request, units int) (int, *httpError) {
	q := r.URL.Query().Get("cursor")
	if q == "" {
		return 0, nil
	}
	c, err := strconv.Atoi(q)
	if err != nil || c < 0 || c > units {
		return 0, badRequest("cursor must be an integer in [0, %d]", units)
	}
	return c, nil
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromRequest(w, r)
	if !ok {
		return
	}
	if r.Method == http.MethodDelete {
		j, _ = s.jobs.Cancel(j.ID())
		writeJSON(w, http.StatusOK, CancelResponse{ID: j.ID(), State: j.State().String()})
		return
	}

	cursor, he := parseCursor(r, j.Units())
	if he != nil {
		writeHTTPErr(w, he)
		return
	}
	var wait time.Duration
	if q := r.URL.Query().Get("wait"); q != "" {
		ms, err := strconv.Atoi(q)
		if err != nil || ms < 0 {
			writeHTTPErr(w, badRequest("wait must be a non-negative duration in milliseconds"))
			return
		}
		wait = time.Duration(ms) * time.Millisecond
		if wait > s.cfg.JobPollMax {
			wait = s.cfg.JobPollMax
		}
	}
	rep := j.Poll(r.Context(), cursor, wait)
	if n := len(rep.Results); n > 0 {
		s.metrics.ObserveChunk("poll", n)
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromRequest(w, r)
	if !ok {
		return
	}
	cursor, he := parseCursor(r, j.Units())
	if he != nil {
		writeHTTPErr(w, he)
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	// From here the status is committed; a broken stream is signaled by
	// the connection, and the client resumes with ?cursor=.
	_, _ = j.Stream(r.Context(), cursor, func(chunk [][]byte) error {
		var buf bytes.Buffer
		for _, line := range chunk {
			buf.Write(line)
			buf.WriteByte('\n')
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		s.metrics.ObserveChunk("stream", len(chunk))
		return nil
	})
}

// decodeJSONBytes is decodeJSON over an in-memory body: same strictness,
// same error texts.
func decodeJSONBytes(body []byte, v any) *httpError {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("invalid JSON body: %v", err)
	}
	if dec.More() {
		return badRequest("trailing data after JSON body")
	}
	return nil
}
