// Pins the RouteKey mirror against the real cache-key derivation: for
// every request shape the front tier routes, RouteKey must equal the
// buildcache.Key that doCompile/doSimulate's build actually uses —
// otherwise the fleet still answers correctly (any replica can compute
// any key) but cache partitioning quietly degrades.
package server

import (
	"testing"

	"idemproc/internal/buildcache"
	"idemproc/internal/fault"
)

func TestRouteKeyMatchesCacheKey(t *testing.T) {
	f := false
	compiles := []*CompileRequest{
		{Workload: "mcf"},
		{Workload: "bzip2", MemWords: 131072},
		{Workload: "milc", Options: &OptionsSpec{Idempotent: &f}},
		{Workload: "hmmer", Options: &OptionsSpec{Core: &CoreOptionsSpec{MaxRegionSize: 16}}},
		{Source: tinySource},
		{Source: tinySource, MemWords: 4096},
		{Source: tinySource, Options: &OptionsSpec{Core: &CoreOptionsSpec{RedElim: &f}}},
	}
	for i, req := range compiles {
		wk, he := resolveWorkload(req.Workload, req.Source, req.MemWords, nil)
		if he != nil {
			t.Fatalf("compile %d: resolve: %v", i, he)
		}
		want := buildcache.KeyOf(wk, req.Options.moduleOptions(true))
		if got := req.RouteKey(); got != want {
			t.Errorf("compile %d: RouteKey %+v != cache key %+v", i, got, want)
		}
	}

	simulates := []*SimulateRequest{
		{Workload: "mcf"},
		{Workload: "mcf", Scheme: "idem"},
		{Workload: "libquantum", Scheme: "dmr"},
		{Workload: "swaptions", Scheme: "cl", MemWords: 131072},
		{Source: tinySource, Args: []uint64{25}, Scheme: "idem"},
		{Source: tinySource, Args: []uint64{3}, Scheme: "tmr",
			Options: &OptionsSpec{Core: &CoreOptionsSpec{MaxRegionSize: 8}}},
	}
	for i, req := range simulates {
		wk, he := resolveWorkload(req.Workload, req.Source, req.MemWords, req.Args)
		if he != nil {
			t.Fatalf("simulate %d: resolve: %v", i, he)
		}
		schemeID, apply, _, he := schemeSetup(req.Scheme)
		if he != nil {
			t.Fatalf("simulate %d: scheme: %v", i, he)
		}
		idem := apply && schemeID == fault.SchemeIdempotence
		mo := req.Options.moduleOptions(idem)
		mo.Idempotent = idem
		want := buildcache.KeyOf(wk, mo)
		if got := req.RouteKey(); got != want {
			t.Errorf("simulate %d: RouteKey %+v != cache key %+v", i, got, want)
		}
	}

	// Args never enter the key: two simulates differing only in args
	// share a compile.
	a := &SimulateRequest{Workload: "mcf", Args: []uint64{1}}
	b := &SimulateRequest{Workload: "mcf", Args: []uint64{999}}
	if a.RouteKey() != b.RouteKey() {
		t.Error("args changed the route key; they must not (compiles are arg-independent)")
	}
}
