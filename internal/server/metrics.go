// Hand-rolled Prometheus text-format metrics for idemd: per-endpoint
// request/error counters and latency histograms, an in-flight gauge,
// shed (429) counts, and the compile cache's counters. No dependency on
// a metrics library — the exposition format is plain text and the
// daemon's metric set is small and fixed (docs/service.md catalogs it).
package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"idemproc/internal/buildcache"
	"idemproc/internal/jobs"
)

// latencyBuckets are the histogram upper bounds in seconds (a +Inf
// bucket is implicit).
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// chunkBuckets are the per-delivery result-count upper bounds for the
// job poll/stream chunk histogram (bounded by MaxBatchUnits).
var chunkBuckets = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}

// endpointStats accumulates one path's counters. Guarded by Metrics.mu:
// the request rate a single simulator-bound daemon sustains is far below
// the contention point of a mutex, and a mutex keeps the histogram and
// its sum/count coherent in one shot.
type endpointStats struct {
	codes      map[int]int64
	buckets    []int64 // cumulative form is computed at render time
	count      int64
	sumSeconds float64
	errors     int64 // 4xx + 5xx responses
}

// chunkStats accumulates one delivery mode's (poll/stream) chunk-size
// histogram. Guarded by Metrics.mu.
type chunkStats struct {
	buckets  []int64
	count    int64
	sumUnits int64
}

// Metrics is the daemon's metric registry.
type Metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointStats
	chunks    map[string]*chunkStats

	// inflight/shed are touched on the hot path before any handler work
	// and read lock-free by the renderer.
	inflight atomic.Int64
	shed     atomic.Int64
	// simPreempted counts simulations stopped early by request
	// cancellation or deadline (machine.ErrPreempted).
	simPreempted atomic.Int64

	start time.Time
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		endpoints: map[string]*endpointStats{},
		chunks:    map[string]*chunkStats{},
		start:     time.Now(),
	}
}

// ObserveChunk records one job result delivery of n units via mode
// ("poll" or "stream").
func (m *Metrics) ObserveChunk(mode string, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cs := m.chunks[mode]
	if cs == nil {
		cs = &chunkStats{buckets: make([]int64, len(chunkBuckets))}
		m.chunks[mode] = cs
	}
	cs.count++
	cs.sumUnits += int64(n)
	for i, ub := range chunkBuckets {
		if n <= ub {
			cs.buckets[i]++
			break
		}
	}
}

// Observe records one finished request.
func (m *Metrics) Observe(path string, code int, d time.Duration) {
	sec := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	ep := m.endpoints[path]
	if ep == nil {
		ep = &endpointStats{codes: map[int]int64{}, buckets: make([]int64, len(latencyBuckets))}
		m.endpoints[path] = ep
	}
	ep.codes[code]++
	ep.count++
	ep.sumSeconds += sec
	if code >= 400 {
		ep.errors++
	}
	for i, ub := range latencyBuckets {
		if sec <= ub {
			ep.buckets[i]++
			break
		}
	}
}

// Shed records one load-shed (429) rejection; the rejection is also
// Observed like any response.
func (m *Metrics) Shed() { m.shed.Add(1) }

// InFlight tracks the in-flight request gauge; call the returned func on
// completion.
func (m *Metrics) InFlight() func() {
	m.inflight.Add(1)
	return func() { m.inflight.Add(-1) }
}

// InFlightNow reads the gauge (tests poll this through /metrics).
func (m *Metrics) InFlightNow() int64 { return m.inflight.Load() }

// SimPreempted records one simulation stopped early by cancellation.
func (m *Metrics) SimPreempted() { m.simPreempted.Add(1) }

// SimPreemptedNow reads the preemption counter (tests poll this).
func (m *Metrics) SimPreemptedNow() int64 { return m.simPreempted.Load() }

// Render emits the Prometheus text exposition. Output ordering is
// deterministic (sorted paths and codes) so scrapes diff cleanly.
func (m *Metrics) Render(cache buildcache.Stats, js jobs.Stats) string {
	var b strings.Builder

	m.mu.Lock()
	paths := make([]string, 0, len(m.endpoints))
	for p := range m.endpoints {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	fmt.Fprintf(&b, "# HELP idemd_http_requests_total Requests served, by path and status code.\n")
	fmt.Fprintf(&b, "# TYPE idemd_http_requests_total counter\n")
	for _, p := range paths {
		ep := m.endpoints[p]
		codes := make([]int, 0, len(ep.codes))
		for c := range ep.codes {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(&b, "idemd_http_requests_total{path=%q,code=\"%d\"} %d\n", p, c, ep.codes[c])
		}
	}

	fmt.Fprintf(&b, "# HELP idemd_http_request_errors_total 4xx/5xx responses, by path.\n")
	fmt.Fprintf(&b, "# TYPE idemd_http_request_errors_total counter\n")
	for _, p := range paths {
		fmt.Fprintf(&b, "idemd_http_request_errors_total{path=%q} %d\n", p, m.endpoints[p].errors)
	}

	fmt.Fprintf(&b, "# HELP idemd_http_request_duration_seconds Request latency histogram, by path.\n")
	fmt.Fprintf(&b, "# TYPE idemd_http_request_duration_seconds histogram\n")
	for _, p := range paths {
		ep := m.endpoints[p]
		cum := int64(0)
		for i, ub := range latencyBuckets {
			cum += ep.buckets[i]
			fmt.Fprintf(&b, "idemd_http_request_duration_seconds_bucket{path=%q,le=\"%g\"} %d\n", p, ub, cum)
		}
		fmt.Fprintf(&b, "idemd_http_request_duration_seconds_bucket{path=%q,le=\"+Inf\"} %d\n", p, ep.count)
		fmt.Fprintf(&b, "idemd_http_request_duration_seconds_sum{path=%q} %.9f\n", p, ep.sumSeconds)
		fmt.Fprintf(&b, "idemd_http_request_duration_seconds_count{path=%q} %d\n", p, ep.count)
	}

	modes := make([]string, 0, len(m.chunks))
	for mode := range m.chunks {
		modes = append(modes, mode)
	}
	sort.Strings(modes)
	fmt.Fprintf(&b, "# HELP idemd_jobs_chunk_units Job results per delivery chunk, by mode (poll/stream).\n")
	fmt.Fprintf(&b, "# TYPE idemd_jobs_chunk_units histogram\n")
	for _, mode := range modes {
		cs := m.chunks[mode]
		cum := int64(0)
		for i, ub := range chunkBuckets {
			cum += cs.buckets[i]
			fmt.Fprintf(&b, "idemd_jobs_chunk_units_bucket{mode=%q,le=\"%d\"} %d\n", mode, ub, cum)
		}
		fmt.Fprintf(&b, "idemd_jobs_chunk_units_bucket{mode=%q,le=\"+Inf\"} %d\n", mode, cs.count)
		fmt.Fprintf(&b, "idemd_jobs_chunk_units_sum{mode=%q} %d\n", mode, cs.sumUnits)
		fmt.Fprintf(&b, "idemd_jobs_chunk_units_count{mode=%q} %d\n", mode, cs.count)
	}
	m.mu.Unlock()

	fmt.Fprintf(&b, "# HELP idemd_jobs_active Jobs currently running.\n")
	fmt.Fprintf(&b, "# TYPE idemd_jobs_active gauge\n")
	fmt.Fprintf(&b, "idemd_jobs_active %d\n", js.Active)
	fmt.Fprintf(&b, "# HELP idemd_jobs_tracked Jobs in the table (running + finished awaiting TTL).\n")
	fmt.Fprintf(&b, "# TYPE idemd_jobs_tracked gauge\n")
	fmt.Fprintf(&b, "idemd_jobs_tracked %d\n", js.Tracked)
	fmt.Fprintf(&b, "# HELP idemd_jobs_completed_total Jobs that delivered every unit.\n")
	fmt.Fprintf(&b, "# TYPE idemd_jobs_completed_total counter\n")
	fmt.Fprintf(&b, "idemd_jobs_completed_total %d\n", js.Completed)
	fmt.Fprintf(&b, "# HELP idemd_jobs_canceled_total Jobs canceled via DELETE.\n")
	fmt.Fprintf(&b, "# TYPE idemd_jobs_canceled_total counter\n")
	fmt.Fprintf(&b, "idemd_jobs_canceled_total %d\n", js.Canceled)
	fmt.Fprintf(&b, "# HELP idemd_jobs_failed_total Jobs failed by an external feeder.\n")
	fmt.Fprintf(&b, "# TYPE idemd_jobs_failed_total counter\n")
	fmt.Fprintf(&b, "idemd_jobs_failed_total %d\n", js.Failed)
	fmt.Fprintf(&b, "# HELP idemd_jobs_reaped_total Finished jobs removed after their TTL.\n")
	fmt.Fprintf(&b, "# TYPE idemd_jobs_reaped_total counter\n")
	fmt.Fprintf(&b, "idemd_jobs_reaped_total %d\n", js.Reaped)
	fmt.Fprintf(&b, "# HELP idemd_jobs_resumed_total Journaled jobs resumed mid-flight after a restart.\n")
	fmt.Fprintf(&b, "# TYPE idemd_jobs_resumed_total counter\n")
	fmt.Fprintf(&b, "idemd_jobs_resumed_total %d\n", js.ResumedJobs)
	fmt.Fprintf(&b, "# HELP idemd_jobs_resumed_units_total Unit results reloaded from journals instead of re-executed.\n")
	fmt.Fprintf(&b, "# TYPE idemd_jobs_resumed_units_total counter\n")
	fmt.Fprintf(&b, "idemd_jobs_resumed_units_total %d\n", js.ResumedUnits)

	fmt.Fprintf(&b, "# HELP idemd_http_inflight_requests Requests currently being served.\n")
	fmt.Fprintf(&b, "# TYPE idemd_http_inflight_requests gauge\n")
	fmt.Fprintf(&b, "idemd_http_inflight_requests %d\n", m.inflight.Load())

	fmt.Fprintf(&b, "# HELP idemd_http_shed_total Requests rejected with 429 by the concurrency limiter.\n")
	fmt.Fprintf(&b, "# TYPE idemd_http_shed_total counter\n")
	fmt.Fprintf(&b, "idemd_http_shed_total %d\n", m.shed.Load())

	fmt.Fprintf(&b, "# HELP idemd_sim_preempted_total Simulations stopped early by request cancellation or deadline.\n")
	fmt.Fprintf(&b, "# TYPE idemd_sim_preempted_total counter\n")
	fmt.Fprintf(&b, "idemd_sim_preempted_total %d\n", m.simPreempted.Load())

	fmt.Fprintf(&b, "# HELP idemd_buildcache_hits_total Compile cache hits.\n")
	fmt.Fprintf(&b, "# TYPE idemd_buildcache_hits_total counter\n")
	fmt.Fprintf(&b, "idemd_buildcache_hits_total %d\n", cache.Hits)
	fmt.Fprintf(&b, "# HELP idemd_buildcache_misses_total Compile cache misses (builds started: compile or disk load).\n")
	fmt.Fprintf(&b, "# TYPE idemd_buildcache_misses_total counter\n")
	fmt.Fprintf(&b, "idemd_buildcache_misses_total %d\n", cache.Misses)
	fmt.Fprintf(&b, "# HELP idemd_buildcache_evictions_total Entries evicted by the byte bound.\n")
	fmt.Fprintf(&b, "# TYPE idemd_buildcache_evictions_total counter\n")
	fmt.Fprintf(&b, "idemd_buildcache_evictions_total %d\n", cache.Evictions)
	fmt.Fprintf(&b, "# HELP idemd_buildcache_entries Resident cache entries.\n")
	fmt.Fprintf(&b, "# TYPE idemd_buildcache_entries gauge\n")
	fmt.Fprintf(&b, "idemd_buildcache_entries %d\n", cache.Distinct)
	fmt.Fprintf(&b, "# HELP idemd_buildcache_bytes Estimated resident bytes of completed entries.\n")
	fmt.Fprintf(&b, "# TYPE idemd_buildcache_bytes gauge\n")
	fmt.Fprintf(&b, "idemd_buildcache_bytes %d\n", cache.BytesInUse)
	fmt.Fprintf(&b, "# HELP idemd_buildcache_max_bytes Configured cache byte bound (0 = unbounded).\n")
	fmt.Fprintf(&b, "# TYPE idemd_buildcache_max_bytes gauge\n")
	fmt.Fprintf(&b, "idemd_buildcache_max_bytes %d\n", cache.MaxBytes)
	fmt.Fprintf(&b, "# HELP idemd_buildcache_compile_seconds_total Wall time spent compiling, summed across workers.\n")
	fmt.Fprintf(&b, "# TYPE idemd_buildcache_compile_seconds_total counter\n")
	fmt.Fprintf(&b, "idemd_buildcache_compile_seconds_total %.9f\n", cache.CompileTime.Seconds())
	fmt.Fprintf(&b, "# HELP idemd_buildcache_compiles_total Actual codegen runs (misses not served by the disk tier).\n")
	fmt.Fprintf(&b, "# TYPE idemd_buildcache_compiles_total counter\n")
	fmt.Fprintf(&b, "idemd_buildcache_compiles_total %d\n", cache.Compiles)
	fmt.Fprintf(&b, "# HELP idemd_buildcache_disk_hits_total Cache misses served from a persisted artifact.\n")
	fmt.Fprintf(&b, "# TYPE idemd_buildcache_disk_hits_total counter\n")
	fmt.Fprintf(&b, "idemd_buildcache_disk_hits_total %d\n", cache.DiskHits)
	fmt.Fprintf(&b, "# HELP idemd_buildcache_disk_misses_total Disk-tier lookups not served (no artifact, stale, or corrupt).\n")
	fmt.Fprintf(&b, "# TYPE idemd_buildcache_disk_misses_total counter\n")
	fmt.Fprintf(&b, "idemd_buildcache_disk_misses_total %d\n", cache.DiskMisses)
	fmt.Fprintf(&b, "# HELP idemd_buildcache_disk_writes_total Artifacts persisted by write-behind.\n")
	fmt.Fprintf(&b, "# TYPE idemd_buildcache_disk_writes_total counter\n")
	fmt.Fprintf(&b, "idemd_buildcache_disk_writes_total %d\n", cache.DiskWrites)
	fmt.Fprintf(&b, "# HELP idemd_buildcache_disk_corrupt_total Invalid artifacts found and pruned (subset of disk misses).\n")
	fmt.Fprintf(&b, "# TYPE idemd_buildcache_disk_corrupt_total counter\n")
	fmt.Fprintf(&b, "idemd_buildcache_disk_corrupt_total %d\n", cache.DiskCorrupt)
	fmt.Fprintf(&b, "# HELP idemd_verify_checked_total Programs re-checked by the translation validator (fresh compiles and decoded artifacts).\n")
	fmt.Fprintf(&b, "# TYPE idemd_verify_checked_total counter\n")
	fmt.Fprintf(&b, "idemd_verify_checked_total %d\n", cache.VerifyChecked)
	fmt.Fprintf(&b, "# HELP idemd_verify_failed_total Validator runs that found criterion violations.\n")
	fmt.Fprintf(&b, "# TYPE idemd_verify_failed_total counter\n")
	fmt.Fprintf(&b, "idemd_verify_failed_total %d\n", cache.VerifyFailed)
	fmt.Fprintf(&b, "# HELP idemd_verify_rejected_artifacts_total Decode-clean disk artifacts pruned after failing verification (subset of failed).\n")
	fmt.Fprintf(&b, "# TYPE idemd_verify_rejected_artifacts_total counter\n")
	fmt.Fprintf(&b, "idemd_verify_rejected_artifacts_total %d\n", cache.VerifyRejectedArtifacts)
	fmt.Fprintf(&b, "# HELP idemd_verify_nanos_total Wall time spent inside the translation validator, nanoseconds.\n")
	fmt.Fprintf(&b, "# TYPE idemd_verify_nanos_total counter\n")
	fmt.Fprintf(&b, "idemd_verify_nanos_total %d\n", cache.VerifyNanos)

	fmt.Fprintf(&b, "# HELP idemd_uptime_seconds Seconds since process start.\n")
	fmt.Fprintf(&b, "# TYPE idemd_uptime_seconds gauge\n")
	fmt.Fprintf(&b, "idemd_uptime_seconds %.3f\n", time.Since(m.start).Seconds())
	return b.String()
}
