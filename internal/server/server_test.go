// Tests for the idemd service core. The concurrency tests run under
// -race in CI (make race-fault): N mixed requests through a parallel
// server must produce bodies byte-identical to a serial server, client
// cancellation mid-flight must not wedge the daemon, the concurrency
// limiter must shed with 429 rather than queue, and a draining server
// must finish every admitted request before Serve returns.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// tinySource is a fast ad-hoc workload: main loops its argument times.
const tinySource = `global int g[8] = {1, 2, 3};
func inc(int x) int { return x + g[0]; }
func main(int n) int {
	int s = 0;
	for (int i = 0; i < n; i = i + 1) { s = inc(s) + i; }
	return s;
}
`

// slowSource is tinySource with a second accumulator, so its compile key
// differs; tests pass a large argument to keep it in the simulator long
// enough to observe in-flight behavior (also under -race slowdown).
const slowSource = `func main(int n) int {
	int s = 0;
	int t = 1;
	for (int i = 0; i < n; i = i + 1) { s = s + i; t = t + s; }
	return s + t;
}
`

func postJSON(t *testing.T, client *http.Client, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, b
}

func marshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// mixedRequests is a fixed request battery covering every /v1 endpoint,
// scheme paths, fault injection and batching; repeated so the compile
// cache sees hits.
func mixedRequests(t *testing.T) (paths []string, bodies [][]byte) {
	t.Helper()
	add := func(path string, v any) {
		paths = append(paths, path)
		bodies = append(bodies, marshal(t, v))
	}
	f := false
	base := []func(){
		func() { add("/v1/compile", &CompileRequest{Source: tinySource}) },
		func() {
			add("/v1/compile", &CompileRequest{Source: tinySource,
				Options: &OptionsSpec{Idempotent: &f}})
		},
		func() {
			add("/v1/compile", &CompileRequest{Source: tinySource,
				Options: &OptionsSpec{Core: &CoreOptionsSpec{MaxRegionSize: 8}}})
		},
		func() {
			add("/v1/simulate", &SimulateRequest{Source: tinySource, Args: []uint64{25}})
		},
		func() {
			add("/v1/simulate", &SimulateRequest{Source: tinySource, Args: []uint64{25},
				Scheme:     "idem",
				Injections: []InjectionSpec{{Model: "reg", Step: 40, Mask: 1 << 7}},
			})
		},
		func() {
			add("/v1/simulate", &SimulateRequest{Source: tinySource, Args: []uint64{25},
				Scheme:     "dmr",
				Injections: []InjectionSpec{{Model: "mem", Step: 30, Mask: 1}},
			})
		},
		func() {
			add("/v1/batch", &BatchRequest{Units: []BatchUnit{
				{Compile: &CompileRequest{Source: tinySource}},
				{Simulate: &SimulateRequest{Source: tinySource, Args: []uint64{10}, Scheme: "tmr"}},
				{Compile: &CompileRequest{Source: "not a program"}}, // per-unit error
			}})
		},
	}
	for rep := 0; rep < 4; rep++ {
		for _, f := range base {
			f()
		}
	}
	return paths, bodies
}

// TestConcurrentMatchesSerial drives the mixed battery through a
// parallel server with many concurrent clients, then through a fresh
// serial server one request at a time, and requires byte-identical
// response bodies: responses are a pure function of the request, not of
// cache state, interleaving or pool width.
func TestConcurrentMatchesSerial(t *testing.T) {
	paths, bodies := mixedRequests(t)
	n := len(paths)

	run := func(workers int, concurrency int) [][]byte {
		s := New(Config{Workers: workers, MaxInFlight: n + 8})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		out := make([][]byte, n)
		var wg sync.WaitGroup
		sem := make(chan struct{}, concurrency)
		for i := 0; i < n; i++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				code, b := postJSON(t, ts.Client(), ts.URL+paths[i], bodies[i])
				if code != http.StatusOK {
					t.Errorf("request %d %s: status %d body %s", i, paths[i], code, b)
				}
				out[i] = b
			}(i)
		}
		wg.Wait()
		return out
	}

	parallel := run(4, 16)
	serial := run(1, 1)
	if t.Failed() {
		t.FailNow()
	}
	for i := range parallel {
		if !bytes.Equal(parallel[i], serial[i]) {
			t.Errorf("request %d %s: parallel body differs from serial:\n  parallel: %s\n  serial:   %s",
				i, paths[i], parallel[i], serial[i])
		}
	}
}

// TestBatchMatchesIndividual: a batch unit's embedded report must equal
// the standalone endpoint's report for the same request.
func TestBatchMatchesIndividual(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	creq := &CompileRequest{Source: tinySource}
	code, single := postJSON(t, ts.Client(), ts.URL+"/v1/compile", marshal(t, creq))
	if code != http.StatusOK {
		t.Fatalf("compile: status %d body %s", code, single)
	}
	code, batch := postJSON(t, ts.Client(), ts.URL+"/v1/batch",
		marshal(t, &BatchRequest{Units: []BatchUnit{{Compile: creq}}}))
	if code != http.StatusOK {
		t.Fatalf("batch: status %d body %s", code, batch)
	}
	var br BatchResponse
	if err := json.Unmarshal(batch, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 1 || br.Results[0].Compile == nil || br.Results[0].Error != "" {
		t.Fatalf("batch result malformed: %s", batch)
	}
	embedded := marshal(t, br.Results[0].Compile)
	var sr CompileReport
	if err := json.Unmarshal(single, &sr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(embedded, marshal(t, &sr)) {
		t.Errorf("batch-embedded compile report differs from /v1/compile:\n  batch:  %s\n  single: %s", embedded, single)
	}
}

// TestClientCancellationMidFlight: a client abandoning a long simulate
// must not wedge the daemon — the in-flight slot frees and subsequent
// requests are served normally.
func TestClientCancellationMidFlight(t *testing.T) {
	s := New(Config{MaxInFlight: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	slow := marshal(t, &SimulateRequest{Source: slowSource, Args: []uint64{200_000_000}})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/simulate", bytes.NewReader(slow))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("expected cancellation, got status %d", resp.StatusCode)
		}
		errc <- err
	}()
	// Wait for the request to be admitted, then abandon it.
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().InFlightNow() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned request: got %v, want context.Canceled", err)
	}

	// The daemon must still serve (the abandoned run finishes in the
	// background and its slot frees; a quick request goes right through).
	code, b := postJSON(t, ts.Client(), ts.URL+"/v1/compile", marshal(t, &CompileRequest{Source: tinySource}))
	if code != http.StatusOK {
		t.Fatalf("post-cancellation compile: status %d body %s", code, b)
	}
}

// TestRequestTimeout: a simulate that outlives the per-request deadline
// comes back 503 ("request abandoned"), not a hung connection.
func TestRequestTimeout(t *testing.T) {
	s := New(Config{RequestTimeout: 30 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, b := postJSON(t, ts.Client(), ts.URL+"/v1/simulate",
		marshal(t, &SimulateRequest{Source: slowSource, Args: []uint64{200_000_000}}))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("timed-out simulate: status %d body %s, want 503", code, b)
	}
	if !strings.Contains(string(b), "request abandoned") {
		t.Errorf("timed-out simulate body %s, want 'request abandoned'", b)
	}
}

// TestShedding: with MaxInFlight=1, a second concurrent request is shed
// with 429 (never queued), and the shed shows up in /metrics.
func TestShedding(t *testing.T) {
	s := New(Config{MaxInFlight: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	slow := marshal(t, &SimulateRequest{Source: slowSource, Args: []uint64{200_000_000}})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/simulate", bytes.NewReader(slow))
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	go func() {
		close(started)
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().InFlightNow() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	code, b := postJSON(t, ts.Client(), ts.URL+"/v1/compile", marshal(t, &CompileRequest{Source: tinySource}))
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-limit request: status %d body %s, want 429", code, b)
	}
	cancel() // release the slow request

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(mb), "idemd_http_shed_total 1") {
		t.Errorf("metrics missing shed count:\n%s", mb)
	}
	if !strings.Contains(string(mb), `idemd_http_requests_total{path="/v1/compile",code="429"} 1`) {
		t.Errorf("metrics missing 429 requests_total line:\n%s", mb)
	}
}

// TestGracefulDrain: Shutdown flips /readyz to 503, lets an in-flight
// request finish with its full 200 response, and only then does Serve
// return ErrServerClosed. Nothing admitted is dropped.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	base := "http://" + l.Addr().String()
	client := &http.Client{}

	// Readiness before drain.
	resp, err := client.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %d", resp.StatusCode)
	}

	// Admit a slow request, then begin draining while it runs.
	slowDone := make(chan error, 1)
	go func() {
		code, b := 0, []byte(nil)
		r, err := client.Post(base+"/v1/simulate", "application/json",
			bytes.NewReader(marshal(t, &SimulateRequest{Source: slowSource, Args: []uint64{2_000_000}})))
		if err == nil {
			code = r.StatusCode
			b, err = io.ReadAll(r.Body)
			r.Body.Close()
		}
		if err != nil {
			slowDone <- err
			return
		}
		if code != http.StatusOK || !bytes.Contains(b, []byte(`"digest"`)) {
			slowDone <- fmt.Errorf("drained request: status %d body %s", code, b)
			return
		}
		slowDone <- nil
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().InFlightNow() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-slowDone; err != nil {
		t.Fatalf("in-flight request during drain: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}

	// Readiness after drain (in-process: the listener is gone).
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz after drain: %d, want 503", rec.Code)
	}
	if !s.Draining() {
		t.Error("Draining() = false after Shutdown")
	}
}

// TestValidation covers the request-validation surface.
func TestValidation(t *testing.T) {
	s := New(Config{MaxBodyBytes: 4096, MaxBatchUnits: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big := `{"source": "` + strings.Repeat("x", 8192) + `"}`
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"unknown workload", "/v1/compile", `{"workload": "nope"}`, 400},
		{"workload and source", "/v1/compile", `{"workload": "mcf", "source": "func main() int { return 0; }"}`, 400},
		{"neither workload nor source", "/v1/compile", `{}`, 400},
		{"unknown field", "/v1/compile", `{"workload": "mcf", "bogus": 1}`, 400},
		{"invalid json", "/v1/compile", `{`, 400},
		{"trailing data", "/v1/compile", `{"workload": "mcf"} {"workload": "mcf"}`, 400},
		{"unparsable source", "/v1/compile", `{"source": "func main("}`, 400},
		{"mem_words too small", "/v1/compile", `{"workload": "mcf", "mem_words": 1}`, 400},
		{"body too large", "/v1/compile", big, 413},
		{"bad scheme", "/v1/simulate", `{"workload": "mcf", "scheme": "magic"}`, 400},
		{"explicit idempotent", "/v1/simulate", `{"workload": "mcf", "scheme": "idem", "options": {"idempotent": true}}`, 400},
		{"bad injection model", "/v1/simulate", `{"workload": "mcf", "injections": [{"model": "gremlin", "step": 1}]}`, 400},
		{"empty batch", "/v1/batch", `{"units": []}`, 400},
		{"oversized batch", "/v1/batch", `{"units": [{"compile":{"workload":"mcf"}},{"compile":{"workload":"mcf"}},{"compile":{"workload":"mcf"}},{"compile":{"workload":"mcf"}},{"compile":{"workload":"mcf"}}]}`, 400},
		{"ambiguous unit", "/v1/batch", `{"units": [{"compile": {"workload": "mcf"}, "simulate": {"workload": "mcf"}}]}`, 400},
		{"empty unit", "/v1/batch", `{"units": [{}]}`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, b := postJSON(t, ts.Client(), ts.URL+tc.path, []byte(tc.body))
			if code != tc.want {
				t.Errorf("status %d body %s, want %d", code, b, tc.want)
			}
			if !bytes.Contains(b, []byte(`"error"`)) {
				t.Errorf("error body missing error field: %s", b)
			}
		})
	}

	t.Run("method not allowed", func(t *testing.T) {
		resp, err := ts.Client().Get(ts.URL + "/v1/compile")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/compile: %d, want 405", resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != http.MethodPost {
			t.Errorf("Allow header %q, want POST", got)
		}
	})
}

// TestMachineErrorIs200: a run that fail-stops (detected fault, no
// recovery) is a successful analysis — the outcome is data, not an HTTP
// error.
func TestMachineErrorIs200(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// DMR detects the flip and fail-stops.
	code, b := postJSON(t, ts.Client(), ts.URL+"/v1/simulate", marshal(t, &SimulateRequest{
		Source: tinySource, Args: []uint64{50}, Scheme: "dmr",
		Injections: []InjectionSpec{{Model: "reg", Step: 60, Mask: 1 << 3}},
	}))
	if code != http.StatusOK {
		t.Fatalf("dmr fault run: status %d body %s", code, b)
	}
	var rep SimulateReport
	if err := json.Unmarshal(b, &rep); /* digest always present */ err != nil {
		t.Fatal(err)
	}
	if rep.Digest.DynInstrs == 0 {
		t.Errorf("digest missing dynamic instruction count: %s", b)
	}
}

// TestMetricsCatalog: the exposition carries every documented series.
func TestMetricsCatalog(t *testing.T) {
	s := New(Config{CacheMaxBytes: 1 << 20})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postJSON(t, ts.Client(), ts.URL+"/v1/compile", marshal(t, &CompileRequest{Source: tinySource}))
	postJSON(t, ts.Client(), ts.URL+"/v1/compile", marshal(t, &CompileRequest{Source: tinySource}))

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	mb, _ := io.ReadAll(resp.Body)
	text := string(mb)
	for _, want := range []string{
		`idemd_http_requests_total{path="/v1/compile",code="200"} 2`,
		`idemd_http_request_duration_seconds_count{path="/v1/compile"} 2`,
		`idemd_http_request_duration_seconds_bucket{path="/v1/compile",le="+Inf"} 2`,
		"idemd_http_inflight_requests 1", // this scrape itself
		"idemd_http_shed_total 0",
		"idemd_sim_preempted_total 0",
		"idemd_buildcache_hits_total 1",
		"idemd_buildcache_misses_total 1",
		"idemd_buildcache_evictions_total 0",
		"idemd_buildcache_entries 1",
		"idemd_buildcache_max_bytes 1048576",
		"idemd_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}
