package lang

// Ty is an idc static type.
type Ty uint8

const (
	// TyVoid is only valid as a function result.
	TyVoid Ty = iota
	TyInt
	TyFloat
	TyIntPtr
	TyFloatPtr
)

func (t Ty) String() string {
	switch t {
	case TyVoid:
		return "void"
	case TyInt:
		return "int"
	case TyFloat:
		return "float"
	case TyIntPtr:
		return "int*"
	case TyFloatPtr:
		return "float*"
	}
	return "?"
}

// IsPtr reports whether t is a pointer type.
func (t Ty) IsPtr() bool { return t == TyIntPtr || t == TyFloatPtr }

// Elem returns the pointee type of a pointer.
func (t Ty) Elem() Ty {
	switch t {
	case TyIntPtr:
		return TyInt
	case TyFloatPtr:
		return TyFloat
	}
	return TyVoid
}

// Ptr returns the pointer type to t.
func (t Ty) Ptr() Ty {
	if t == TyFloat {
		return TyFloatPtr
	}
	return TyIntPtr
}

// Expr is an expression node.
type Expr interface{ exprLine() int }

type (
	// IntLit is an integer literal.
	IntLit struct {
		Val  int64
		Line int
	}
	// FloatLit is a float literal.
	FloatLit struct {
		Val  float64
		Line int
	}
	// Ident references a variable, parameter or global.
	Ident struct {
		Name string
		Line int
	}
	// Unary is -x or !x.
	Unary struct {
		Op   string
		X    Expr
		Line int
	}
	// Binary is x op y, including the short-circuit && and ||.
	Binary struct {
		Op   string
		X, Y Expr
		Line int
	}
	// Index is base[idx]; as an lvalue it is a store target.
	Index struct {
		Base, Idx Expr
		Line      int
	}
	// CallE is a function call.
	CallE struct {
		Name string
		Args []Expr
		Line int
	}
	// Cast is int(x) or float(x).
	Cast struct {
		To   Ty
		X    Expr
		Line int
	}
)

func (e *IntLit) exprLine() int   { return e.Line }
func (e *FloatLit) exprLine() int { return e.Line }
func (e *Ident) exprLine() int    { return e.Line }
func (e *Unary) exprLine() int    { return e.Line }
func (e *Binary) exprLine() int   { return e.Line }
func (e *Index) exprLine() int    { return e.Line }
func (e *CallE) exprLine() int    { return e.Line }
func (e *Cast) exprLine() int     { return e.Line }

// Stmt is a statement node.
type Stmt interface{ stmtLine() int }

type (
	// DeclS declares a scalar variable (ArrSize < 0) or a local array.
	DeclS struct {
		Ty      Ty
		Name    string
		ArrSize int64
		Init    Expr
		Line    int
	}
	// AssignS stores Rhs into an lvalue (Ident or Index).
	AssignS struct {
		Lhs  Expr
		Rhs  Expr
		Line int
	}
	// ExprS evaluates an expression for effect (calls).
	ExprS struct {
		X    Expr
		Line int
	}
	// IfS with optional else.
	IfS struct {
		Cond Expr
		Then *BlockS
		Else *BlockS
		Line int
	}
	// WhileS loops while Cond is nonzero.
	WhileS struct {
		Cond Expr
		Body *BlockS
		Line int
	}
	// ForS is for(Init; Cond; Post) Body.
	ForS struct {
		Init Stmt
		Cond Expr
		Post Stmt
		Body *BlockS
		Line int
	}
	// RetS returns (X may be nil in void functions).
	RetS struct {
		X    Expr
		Line int
	}
	// BreakS exits the innermost loop.
	BreakS struct{ Line int }
	// ContinueS continues the innermost loop.
	ContinueS struct{ Line int }
	// BlockS is a braced statement list and scope.
	BlockS struct {
		Stmts []Stmt
		Line  int
	}
)

func (s *DeclS) stmtLine() int     { return s.Line }
func (s *AssignS) stmtLine() int   { return s.Line }
func (s *ExprS) stmtLine() int     { return s.Line }
func (s *IfS) stmtLine() int       { return s.Line }
func (s *WhileS) stmtLine() int    { return s.Line }
func (s *ForS) stmtLine() int      { return s.Line }
func (s *RetS) stmtLine() int      { return s.Line }
func (s *BreakS) stmtLine() int    { return s.Line }
func (s *ContinueS) stmtLine() int { return s.Line }
func (s *BlockS) stmtLine() int    { return s.Line }

// Param is a function parameter.
type Param struct {
	Ty   Ty
	Name string
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Params []Param
	Ret    Ty
	Body   *BlockS
	Line   int
}

// GlobalDecl is a module-level variable: a scalar (Size == 1, no array
// syntax) or an array. Init values are stored as raw words.
type GlobalDecl struct {
	Name  string
	Elem  Ty
	Size  int64
	Init  []uint64
	IsArr bool
	Line  int
}

// Program is a parsed compilation unit.
type Program struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}
