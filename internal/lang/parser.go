package lang

import "math"

// ParseProgram parses idc source into an AST.
func ParseProgram(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.atEOF() {
		switch {
		case p.peekIdent("global"):
			g, err := p.parseGlobal()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		case p.peekIdent("func"):
			f, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			return nil, errf(p.cur().line, "expected 'global' or 'func', got %q", p.cur().text)
		}
	}
	return prog, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tEOF }

func (p *parser) peekIdent(name string) bool {
	t := p.cur()
	return t.kind == tIdent && t.text == name
}

func (p *parser) peekPunct(s string) bool {
	t := p.cur()
	return t.kind == tPunct && t.text == s
}

func (p *parser) next() token {
	t := p.cur()
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) expectPunct(s string) error {
	if !p.peekPunct(s) {
		return errf(p.cur().line, "expected %q, got %q", s, p.cur().text)
	}
	p.next()
	return nil
}

func (p *parser) expectIdent() (string, int, error) {
	t := p.cur()
	if t.kind != tIdent {
		return "", t.line, errf(t.line, "expected identifier, got %q", t.text)
	}
	p.next()
	return t.text, t.line, nil
}

// parseType parses "int" or "float" with an optional "*".
func (p *parser) parseType() (Ty, error) {
	t := p.cur()
	if t.kind != tIdent || (t.text != "int" && t.text != "float") {
		return TyVoid, errf(t.line, "expected type, got %q", t.text)
	}
	p.next()
	base := TyInt
	if t.text == "float" {
		base = TyFloat
	}
	if p.peekPunct("*") {
		p.next()
		return base.Ptr(), nil
	}
	return base, nil
}

func (p *parser) parseGlobal() (*GlobalDecl, error) {
	line := p.cur().line
	p.next() // global
	elem, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if elem.IsPtr() {
		return nil, errf(line, "global pointers are not supported")
	}
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	g := &GlobalDecl{Name: name, Elem: elem, Size: 1, Line: line}
	if p.peekPunct("[") {
		p.next()
		t := p.next()
		if t.kind != tInt || t.i <= 0 {
			return nil, errf(t.line, "expected positive array size")
		}
		g.Size = t.i
		g.IsArr = true
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
	}
	if p.peekPunct("=") {
		p.next()
		if p.peekPunct("{") {
			p.next()
			for !p.peekPunct("}") {
				w, err := p.parseConstWord(elem)
				if err != nil {
					return nil, err
				}
				g.Init = append(g.Init, w)
				if p.peekPunct(",") {
					p.next()
				}
			}
			p.next() // }
		} else {
			w, err := p.parseConstWord(elem)
			if err != nil {
				return nil, err
			}
			g.Init = append(g.Init, w)
		}
		if int64(len(g.Init)) > g.Size {
			return nil, errf(line, "initializer longer than array")
		}
	}
	return g, p.expectPunct(";")
}

// parseConstWord parses a (possibly negated) numeric literal as a raw
// memory word of the given element type.
func (p *parser) parseConstWord(elem Ty) (uint64, error) {
	neg := false
	if p.peekPunct("-") {
		neg = true
		p.next()
	}
	t := p.next()
	switch t.kind {
	case tInt:
		if elem == TyFloat {
			f := float64(t.i)
			if neg {
				f = -f
			}
			return math.Float64bits(f), nil
		}
		v := t.i
		if neg {
			v = -v
		}
		return uint64(v), nil
	case tFloat:
		if elem != TyFloat {
			return 0, errf(t.line, "float initializer for int global")
		}
		f := t.f
		if neg {
			f = -f
		}
		return math.Float64bits(f), nil
	}
	return 0, errf(t.line, "expected numeric initializer")
}

func (p *parser) parseFunc() (*FuncDecl, error) {
	line := p.cur().line
	p.next() // func
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	f := &FuncDecl{Name: name, Line: line}
	for !p.peekPunct(")") {
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		pn, _, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		f.Params = append(f.Params, Param{Ty: ty, Name: pn})
		if p.peekPunct(",") {
			p.next()
		}
	}
	p.next() // )
	// Result type: "int", "float" or "void" (or nothing, meaning void).
	f.Ret = TyVoid
	if t := p.cur(); t.kind == tIdent && (t.text == "int" || t.text == "float" || t.text == "void") {
		p.next()
		switch t.text {
		case "int":
			f.Ret = TyInt
		case "float":
			f.Ret = TyFloat
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *parser) parseBlock() (*BlockS, error) {
	line := p.cur().line
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &BlockS{Line: line}
	for !p.peekPunct("}") {
		if p.atEOF() {
			return nil, errf(line, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // }
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.peekPunct("{"):
		return p.parseBlock()
	case t.kind == tIdent && (t.text == "int" || t.text == "float") && p.toks[p.pos+1].kind != tPunct:
		return p.parseDecl()
	case t.kind == tIdent && (t.text == "int" || t.text == "float") && p.toks[p.pos+1].text == "*":
		return p.parseDecl()
	case p.peekIdent("if"):
		return p.parseIf()
	case p.peekIdent("while"):
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileS{Cond: cond, Body: body, Line: t.line}, nil
	case p.peekIdent("for"):
		return p.parseFor()
	case p.peekIdent("return"):
		p.next()
		if p.peekPunct(";") {
			p.next()
			return &RetS{Line: t.line}, nil
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &RetS{X: x, Line: t.line}, p.expectPunct(";")
	case p.peekIdent("break"):
		p.next()
		return &BreakS{Line: t.line}, p.expectPunct(";")
	case p.peekIdent("continue"):
		p.next()
		return &ContinueS{Line: t.line}, p.expectPunct(";")
	default:
		return p.parseSimpleStmt(";")
	}
}

// parseSimpleStmt parses an assignment or expression statement terminated
// by term (";" normally, "" inside for-headers).
func (p *parser) parseSimpleStmt(term string) (Stmt, error) {
	line := p.cur().line
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peekPunct("=") {
		p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		switch x.(type) {
		case *Ident, *Index:
		default:
			return nil, errf(line, "left side of assignment must be a variable or element")
		}
		if term != "" {
			if err := p.expectPunct(term); err != nil {
				return nil, err
			}
		}
		return &AssignS{Lhs: x, Rhs: rhs, Line: line}, nil
	}
	if term != "" {
		if err := p.expectPunct(term); err != nil {
			return nil, err
		}
	}
	return &ExprS{X: x, Line: line}, nil
}

func (p *parser) parseDecl() (Stmt, error) {
	line := p.cur().line
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &DeclS{Ty: ty, Name: name, ArrSize: -1, Line: line}
	if p.peekPunct("[") {
		if ty.IsPtr() {
			return nil, errf(line, "arrays of pointers are not supported")
		}
		p.next()
		t := p.next()
		if t.kind != tInt || t.i <= 0 {
			return nil, errf(t.line, "expected positive array size")
		}
		d.ArrSize = t.i
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
	}
	if p.peekPunct("=") {
		if d.ArrSize >= 0 {
			return nil, errf(line, "local array initializers are not supported")
		}
		p.next()
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	return d, p.expectPunct(";")
}

func (p *parser) parseIf() (Stmt, error) {
	line := p.cur().line
	p.next() // if
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s := &IfS{Cond: cond, Then: then, Line: line}
	if p.peekIdent("else") {
		p.next()
		if p.peekIdent("if") {
			inner, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			s.Else = &BlockS{Stmts: []Stmt{inner}, Line: inner.stmtLine()}
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			s.Else = els
		}
	}
	return s, nil
}

func (p *parser) parseFor() (Stmt, error) {
	line := p.cur().line
	p.next() // for
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	s := &ForS{Line: line}
	if !p.peekPunct(";") {
		if t := p.cur(); t.kind == tIdent && (t.text == "int" || t.text == "float") {
			d, err := p.parseDecl() // consumes the ';'
			if err != nil {
				return nil, err
			}
			s.Init = d
		} else {
			st, err := p.parseSimpleStmt(";")
			if err != nil {
				return nil, err
			}
			s.Init = st
		}
	} else {
		p.next()
	}
	if !p.peekPunct(";") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.peekPunct(")") {
		st, err := p.parseSimpleStmt("")
		if err != nil {
			return nil, err
		}
		s.Post = st
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// Expression parsing: precedence climbing.

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBin(1) }

func (p *parser) parseBin(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBin(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: t.text, X: lhs, Y: rhs, Line: t.line}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if p.peekPunct("-") || p.peekPunct("!") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: t.text, X: x, Line: t.line}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.peekPunct("[") {
		line := p.cur().line
		p.next()
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		x = &Index{Base: x, Idx: idx, Line: line}
	}
	return x, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tInt:
		p.next()
		return &IntLit{Val: t.i, Line: t.line}, nil
	case t.kind == tFloat:
		p.next()
		return &FloatLit{Val: t.f, Line: t.line}, nil
	case p.peekPunct("("):
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return x, p.expectPunct(")")
	case t.kind == tIdent:
		p.next()
		// Cast or call?
		if p.peekPunct("(") {
			p.next()
			if t.text == "int" || t.text == "float" {
				x, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				to := TyInt
				if t.text == "float" {
					to = TyFloat
				}
				return &Cast{To: to, X: x, Line: t.line}, p.expectPunct(")")
			}
			call := &CallE{Name: t.text, Line: t.line}
			for !p.peekPunct(")") {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if p.peekPunct(",") {
					p.next()
				}
			}
			p.next() // )
			return call, nil
		}
		return &Ident{Name: t.text, Line: t.line}, nil
	}
	return nil, errf(t.line, "unexpected token %q in expression", t.text)
}
