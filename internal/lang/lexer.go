// Package lang implements the frontend for idc, the small imperative
// language the workload suite is written in (the repo's stand-in for the
// paper's C/C++ benchmark sources). It lexes, parses, type-checks and
// lowers idc programs to the ir package's load-store IR; the region
// construction then sees code with the same shape an LLVM frontend would
// produce — scalar locals in pseudoregisters, arrays and globals in
// memory, loops and calls.
//
//	global int hist[64];
//	global float scale = 2;
//
//	func update(int* buf, int n) int {
//	    int acc = 0;
//	    for (int i = 0; i < n; i = i + 1) {
//	        acc = acc + buf[i];
//	        hist[buf[i] % 64] = hist[buf[i] % 64] + 1;
//	    }
//	    return acc;
//	}
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tFloat
	tPunct // operators and delimiters, in tok.text
)

type token struct {
	kind tokKind
	text string
	i    int64
	f    float64
	line int
}

// Error is a frontend diagnostic with a source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) *Error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

var punctuation = []string{
	// Longest first.
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+", "-", "*", "/", "%", "&", "|", "^", "<", ">", "=", "!",
	"(", ")", "{", "}", "[", "]", ",", ";",
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{kind: tIdent, text: src[i:j], line: line})
			i = j
		case unicode.IsDigit(rune(c)):
			j := i
			isFloat := false
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || src[j] == '.') {
				if src[j] == '.' {
					isFloat = true
				}
				j++
			}
			lit := src[i:j]
			if isFloat {
				var f float64
				if _, err := fmt.Sscanf(lit, "%g", &f); err != nil {
					return nil, errf(line, "bad float literal %q", lit)
				}
				toks = append(toks, token{kind: tFloat, f: f, line: line})
			} else {
				var n int64
				if _, err := fmt.Sscanf(lit, "%d", &n); err != nil {
					return nil, errf(line, "bad int literal %q", lit)
				}
				toks = append(toks, token{kind: tInt, i: n, line: line})
			}
			i = j
		default:
			matched := false
			for _, p := range punctuation {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, token{kind: tPunct, text: p, line: line})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, errf(line, "unexpected character %q", c)
			}
		}
	}
	toks = append(toks, token{kind: tEOF, line: line})
	return toks, nil
}
