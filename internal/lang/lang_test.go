package lang

import (
	"testing"

	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/ir"
	"idemproc/internal/machine"
	"idemproc/internal/ssa"
)

// run lowers src, SSA-converts, and interprets fn(args).
func run(t *testing.T, src, fn string, args ...ir.Word) ir.Word {
	t.Helper()
	m, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for _, f := range m.Funcs {
		ssa.PromoteAllocas(f)
		ssa.Build(f)
	}
	in := ir.NewInterp(m, 8192)
	got, err := in.Run(fn, args...)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return got
}

func TestArithmeticAndLocals(t *testing.T) {
	src := `
func calc(int a, int b) int {
    int x = a * 3 + b / 2;
    int y = (a - b) % 7;
    x = x + y * 2;
    return x;
}
`
	// a=10,b=4: x=30+2=32; y=6%7=6; x=32+12=44
	if got := run(t, src, "calc", 10, 4); got != 44 {
		t.Fatalf("calc(10,4) = %d, want 44", int64(got))
	}
}

func TestControlFlow(t *testing.T) {
	src := `
func collatz(int n) int {
    int steps = 0;
    while (n > 1) {
        if (n % 2 == 0) {
            n = n / 2;
        } else {
            n = 3 * n + 1;
        }
        steps = steps + 1;
    }
    return steps;
}
`
	if got := run(t, src, "collatz", 27); got != 111 {
		t.Fatalf("collatz(27) = %d, want 111", got)
	}
}

func TestForBreakContinue(t *testing.T) {
	src := `
func f(int n) int {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
        if (i % 3 == 0) { continue; }
        if (i > 10) { break; }
        acc = acc + i;
    }
    return acc;
}
`
	// i in 1..10 excluding multiples of 3: 1+2+4+5+7+8+10 = 37
	if got := run(t, src, "f", 100); got != 37 {
		t.Fatalf("f(100) = %d, want 37", got)
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	src := `
global int hist[8];
global int total = 100;

func tally(int x) void {
    hist[x % 8] = hist[x % 8] + 1;
    total = total + 1;
}

func main(int n) int {
    for (int i = 0; i < n; i = i + 1) {
        tally(i * i);
    }
    int sum = 0;
    for (int i = 0; i < 8; i = i + 1) {
        sum = sum + hist[i];
    }
    return sum * 1000 + total;
}
`
	if got := run(t, src, "main", 20); got != 20*1000+120 {
		t.Fatalf("main(20) = %d, want %d", got, 20*1000+120)
	}
}

func TestLocalArraysAndPointers(t *testing.T) {
	src := `
func sum(int* p, int n) int {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
        acc = acc + p[i];
    }
    return acc;
}

func main(int n) int {
    int buf[16];
    for (int i = 0; i < n; i = i + 1) {
        buf[i] = i * i;
    }
    int* q = buf + 2;
    return sum(buf, n) + q[0];
}
`
	// n=5: 0+1+4+9+16=30, q[0]=buf[2]=4 → 34
	if got := run(t, src, "main", 5); got != 34 {
		t.Fatalf("main(5) = %d, want 34", got)
	}
}

func TestFloats(t *testing.T) {
	src := `
global float weights[4] = {0.5, 1.5, 2.5, 3.5};

func dot(int n) float {
    float acc = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        acc = acc + weights[i] * float(i);
    }
    return acc;
}

func main(int n) int {
    float d = dot(n);
    if (d > 10.0) { return int(d * 2.0); }
    return int(d);
}
`
	// dot(4) = 0 + 1.5 + 5 + 10.5 = 17 > 10 → 34
	if got := run(t, src, "main", 4); got != 34 {
		t.Fatalf("main(4) = %d, want 34", got)
	}
}

func TestShortCircuit(t *testing.T) {
	src := `
global int calls = 0;

func bump() int {
    calls = calls + 1;
    return 1;
}

func f(int a) int {
    if (a > 0 && bump() > 0) {
        a = a + 10;
    }
    if (a < 0 || bump() > 0) {
        a = a + 100;
    }
    return a * 1000 + calls;
}
`
	// a=1: && evaluates bump (calls=1), a=11; || evaluates bump (calls=2),
	// a=111 → 111*1000+2.
	if got := run(t, src, "f", 1); got != 111002 {
		t.Fatalf("f(1) = %d, want 111002", got)
	}
	// a=-1 (as 2's complement Word): && short-circuits, || short-circuits.
	if got := run(t, src, "f", ir.Word(uint64(1)<<63|^uint64(0)>>1&0)|ir.Word(^uint64(0))); got != ir.Word(^uint64(0))-ir.Word(100)+ir.Word(101)*0+ir.Word(0) {
		// -1: first if false (calls stays 0), second: a<0 true → a=99 →
		// 99*1000+0 = 99000.
		if int64(got) != 99000 {
			t.Fatalf("f(-1) = %d, want 99000", int64(got))
		}
	}
}

func TestRecursionLang(t *testing.T) {
	src := `
func fib(int n) int {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
`
	if got := run(t, src, "fib", 15); got != 610 {
		t.Fatalf("fib(15) = %d, want 610", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"func f( {",
		"func f() int { return x; }",
		"func f() int { int x = g(); return x; }",
		"global int* p;",
		"func f() int { break; }",
		"func f(float x) int { if (x) { } return 0; }",
		"func f() int { 3 = 4; return 0; }",
		"func f() int { return 1 +; }",
		"func f() void { } func f() void { }",
	}
	for _, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile accepted %q", src)
		}
	}
}

func TestShadowing(t *testing.T) {
	src := `
func f(int a) int {
    int x = a;
    {
        int x = a * 10;
        a = x;
    }
    return a + x;
}
`
	// inner x = 50, a = 50; return 50 + 5 = 55 for a=5.
	if got := run(t, src, "f", 5); got != 55 {
		t.Fatalf("f(5) = %d, want 55", got)
	}
}

// TestEndToEndMachine compiles an idc program through the full pipeline
// (both conventional and idempotent) and cross-checks against the
// interpreter.
func TestEndToEndMachine(t *testing.T) {
	src := `
global int table[32];

func mix(int x) int {
    x = x ^ (x << 13);
    x = x ^ (x >> 7);
    return x ^ (x << 17);
}

func main(int n) int {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
        int h = mix(i + 1);
        if (h < 0) { h = -h; }
        table[h % 32] = table[h % 32] + 1;
        acc = acc + table[h % 32];
    }
    return acc;
}
`
	ref := MustCompile(src)
	for _, f := range ref.Funcs {
		ssa.PromoteAllocas(f)
		ssa.Build(f)
	}
	in := ir.NewInterp(ref, 8192)
	want, err := in.Run("main", 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, idem := range []bool{false, true} {
		m := MustCompile(src)
		p, _, err := codegen.CompileModule(m, "main", 8192, idem, core.DefaultOptions())
		if err != nil {
			t.Fatalf("idem=%v: %v", idem, err)
		}
		mach := machine.New(p, machine.Config{BufferStores: idem})
		got, err := mach.Run(50)
		if err != nil {
			t.Fatalf("idem=%v: %v", idem, err)
		}
		if got != uint64(want) {
			t.Fatalf("idem=%v: machine %d, interp %d", idem, got, want)
		}
	}
}

func TestNestedLoopsBreakContinue(t *testing.T) {
	src := `
func f(int n) int {
    int total = 0;
    for (int i = 0; i < n; i = i + 1) {
        int row = 0;
        for (int j = 0; j < n; j = j + 1) {
            if (j == i) { continue; }
            if (row > 10) { break; }
            row = row + j;
        }
        total = total + row;
    }
    return total;
}
`
	// n=4: i=0: j=1,2,3 → 1,3(>10? no),6... row accumulates 1+2+3 minus j==i.
	// Compute expected in Go:
	expect := func(n int) int {
		total := 0
		for i := 0; i < n; i++ {
			row := 0
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				if row > 10 {
					break
				}
				row += j
			}
			total += row
		}
		return total
	}
	for _, n := range []int{0, 1, 4, 7} {
		if got := run(t, src, "f", ir.Word(n)); int(got) != expect(n) {
			t.Fatalf("f(%d) = %d, want %d", n, got, expect(n))
		}
	}
}

func TestLocalArrayPassedToCallee(t *testing.T) {
	src := `
func fill(int* p, int n, int seed) void {
    for (int i = 0; i < n; i = i + 1) {
        p[i] = seed * (i + 1);
    }
}

func sum(int* p, int n) int {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) { acc = acc + p[i]; }
    return acc;
}

func main(int n) int {
    int a[8];
    int b[8];
    fill(a, n, 2);
    fill(b, n, 10);
    return sum(a, n) * 1000 + sum(b, n);
}
`
	// n=3: a = 2,4,6 → 12; b = 10,20,30 → 60 → 12060
	if got := run(t, src, "main", 3); got != 12060 {
		t.Fatalf("main(3) = %d, want 12060", got)
	}
}

func TestWhileWithComplexCond(t *testing.T) {
	src := `
func f(int a, int b) int {
    int steps = 0;
    while (a > 0 && b > 0) {
        if (a > b) { a = a - b; } else { b = b - a; }
        steps = steps + 1;
    }
    return a + b + steps * 100;
}
`
	// gcd-like: f(12, 8): 12,8→4,8→4,4→4,0 stops: a+b=4, steps=3 → 304
	if got := run(t, src, "f", 12, 8); got != 304 {
		t.Fatalf("f(12,8) = %d, want 304", got)
	}
}

func TestNegativeLiteralsAndUnary(t *testing.T) {
	src := `
global int bias = -5;
global float scale[2] = {-1.5, 2.0};

func f(int x) int {
    int y = -x + bias;
    if (!(y > 0)) { y = -y; }
    float z = scale[0] * float(y);
    return int(z) + bias;
}
`
	// x=3: y=-8 → !(y>0) → y=8; z=-12 → -12 + -5 = -17
	if got := run(t, src, "f", 3); int64(got) != -17 {
		t.Fatalf("f(3) = %d, want -17", int64(got))
	}
}
