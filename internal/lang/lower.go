package lang

import (
	"fmt"

	"idemproc/internal/ir"
)

// Compile parses and lowers idc source to an IR module.
func Compile(src string) (*ir.Module, error) {
	prog, err := ParseProgram(src)
	if err != nil {
		return nil, err
	}
	return Lower(prog)
}

// MustCompile is Compile that panics on error (for embedded workloads).
func MustCompile(src string) *ir.Module {
	m, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return m
}

// Lower translates a parsed program into IR. Scalar locals and parameters
// become mutable named pseudoregisters (ssa.Build later renames them into
// SSA); local arrays become allocas; globals live in module memory.
func Lower(prog *Program) (*ir.Module, error) {
	m := ir.NewModule()
	funcs := map[string]*FuncDecl{}
	for _, f := range prog.Funcs {
		if funcs[f.Name] != nil {
			return nil, errf(f.Line, "function %q redefined", f.Name)
		}
		funcs[f.Name] = f
	}
	globals := map[string]*GlobalDecl{}
	for _, g := range prog.Globals {
		if globals[g.Name] != nil {
			return nil, errf(g.Line, "global %q redefined", g.Name)
		}
		globals[g.Name] = g
		init := make([]int64, len(g.Init))
		for i, w := range g.Init {
			init[i] = int64(w)
		}
		m.AddGlobal(g.Name, g.Size, init)
	}
	for _, fd := range prog.Funcs {
		if err := lowerFunc(m, fd, funcs, globals); err != nil {
			return nil, err
		}
	}
	if err := ir.VerifyModule(m); err != nil {
		return nil, fmt.Errorf("lang: lowering produced invalid module: %w", err)
	}
	return m, nil
}

func irType(t Ty) ir.Type {
	if t == TyFloat {
		return ir.F64
	}
	return ir.I64
}

// binding is one name in scope.
type binding struct {
	ty Ty
	// val is a definition of the variable's pseudoregister (scalar), the
	// alloca (array), or nil for globals (resolved via lw.globals).
	val     *ir.Value
	isArray bool
	global  *GlobalDecl
}

type loopCtx struct {
	breakTo, continueTo *ir.Block
}

type lowerer struct {
	m       *ir.Module
	fd      *FuncDecl
	bd      *ir.Builder
	funcs   map[string]*FuncDecl
	globals map[string]*GlobalDecl
	scopes  []map[string]*binding
	loops   []loopCtx
	allocas map[*DeclS]*ir.Value
	tmpN    int
}

func lowerFunc(m *ir.Module, fd *FuncDecl, funcs map[string]*FuncDecl, globals map[string]*GlobalDecl) error {
	ptypes := make([]ir.Type, len(fd.Params))
	for i, p := range fd.Params {
		ptypes[i] = irType(p.Ty)
	}
	var rt ir.Type = ir.Void
	if fd.Ret != TyVoid {
		rt = irType(fd.Ret)
	}
	f := m.NewFunc(fd.Name, rt, ptypes...)
	lw := &lowerer{
		m: m, fd: fd, bd: ir.NewBuilder(f),
		funcs: funcs, globals: globals,
		allocas: map[*DeclS]*ir.Value{},
	}
	lw.pushScope()

	// Local arrays must be allocated in the entry block: pre-scan.
	var scan func(s Stmt)
	scan = func(s Stmt) {
		switch st := s.(type) {
		case *DeclS:
			if st.ArrSize >= 0 {
				lw.allocas[st] = lw.bd.Alloca(st.ArrSize)
			}
		case *BlockS:
			for _, x := range st.Stmts {
				scan(x)
			}
		case *IfS:
			scan(st.Then)
			if st.Else != nil {
				scan(st.Else)
			}
		case *WhileS:
			scan(st.Body)
		case *ForS:
			if st.Init != nil {
				scan(st.Init)
			}
			scan(st.Body)
		}
	}
	scan(fd.Body)

	// Parameters become mutable locals.
	for i, p := range fd.Params {
		v := lw.bd.Assign("v."+p.Name, f.Params[i])
		lw.bind(p.Name, &binding{ty: p.Ty, val: v})
	}

	if err := lw.block(fd.Body); err != nil {
		return err
	}
	// Implicit return on fallthrough.
	if lw.bd.Cur.Terminator() == nil {
		switch fd.Ret {
		case TyVoid:
			lw.bd.Ret()
		case TyFloat:
			lw.bd.Ret(lw.bd.ConstFloat(0))
		default:
			lw.bd.Ret(lw.bd.ConstInt(0))
		}
	}
	f.RemoveUnreachable()
	return ir.Verify(f)
}

func (lw *lowerer) pushScope() { lw.scopes = append(lw.scopes, map[string]*binding{}) }
func (lw *lowerer) popScope()  { lw.scopes = lw.scopes[:len(lw.scopes)-1] }

func (lw *lowerer) bind(name string, b *binding) {
	lw.scopes[len(lw.scopes)-1][name] = b
}

func (lw *lowerer) lookup(name string) *binding {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if b, ok := lw.scopes[i][name]; ok {
			return b
		}
	}
	if g, ok := lw.globals[name]; ok {
		return &binding{ty: g.Elem, global: g, isArray: g.IsArr}
	}
	return nil
}

// fresh returns a unique frontend temp name.
func (lw *lowerer) fresh(prefix string) string {
	lw.tmpN++
	return fmt.Sprintf("%s.%d", prefix, lw.tmpN)
}

func (lw *lowerer) block(b *BlockS) error {
	lw.pushScope()
	defer lw.popScope()
	for _, s := range b.Stmts {
		if lw.bd.Cur.Terminator() != nil {
			// Unreachable trailing code (after return/break): drop it.
			break
		}
		if err := lw.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lw *lowerer) stmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockS:
		return lw.block(st)

	case *DeclS:
		if st.ArrSize >= 0 {
			lw.bind(st.Name, &binding{ty: st.Ty.Ptr(), val: lw.allocas[st], isArray: true})
			return nil
		}
		var init *ir.Value
		if st.Init != nil {
			v, ty, err := lw.expr(st.Init)
			if err != nil {
				return err
			}
			init, err = lw.coerce(v, ty, st.Ty, st.Line)
			if err != nil {
				return err
			}
		} else if st.Ty == TyFloat {
			init = lw.bd.ConstFloat(0)
		} else {
			init = lw.bd.ConstInt(0)
		}
		def := lw.bd.Assign("v."+st.Name+lw.fresh(""), init)
		lw.bind(st.Name, &binding{ty: st.Ty, val: def})
		return nil

	case *AssignS:
		rhs, rty, err := lw.expr(st.Rhs)
		if err != nil {
			return err
		}
		switch lhs := st.Lhs.(type) {
		case *Ident:
			b := lw.lookup(lhs.Name)
			if b == nil {
				return errf(st.Line, "undefined variable %q", lhs.Name)
			}
			v, err := lw.coerce(rhs, rty, b.ty, st.Line)
			if err != nil {
				return err
			}
			if b.global != nil {
				if b.isArray {
					return errf(st.Line, "cannot assign to array %q", lhs.Name)
				}
				addr := lw.bd.Global(b.global.Name)
				lw.bd.Store(addr, v)
				return nil
			}
			if b.isArray {
				return errf(st.Line, "cannot assign to array %q", lhs.Name)
			}
			lw.bd.Assign(b.val.Name, v)
			return nil
		case *Index:
			addr, elem, err := lw.indexAddr(lhs)
			if err != nil {
				return err
			}
			v, err := lw.coerce(rhs, rty, elem, st.Line)
			if err != nil {
				return err
			}
			lw.bd.Store(addr, v)
			return nil
		}
		return errf(st.Line, "bad assignment target")

	case *ExprS:
		_, _, err := lw.expr(st.X)
		return err

	case *RetS:
		if st.X == nil {
			if lw.fd.Ret != TyVoid {
				return errf(st.Line, "missing return value")
			}
			lw.bd.Ret()
			return nil
		}
		v, ty, err := lw.expr(st.X)
		if err != nil {
			return err
		}
		v, err = lw.coerce(v, ty, lw.fd.Ret, st.Line)
		if err != nil {
			return err
		}
		lw.bd.Ret(v)
		return nil

	case *IfS:
		cond, cty, err := lw.expr(st.Cond)
		if err != nil {
			return err
		}
		if cty == TyFloat {
			return errf(st.Line, "if condition must be integer")
		}
		f := lw.bd.Func
		thenB := f.NewBlock()
		joinB := f.NewBlock()
		elseB := joinB
		if st.Else != nil {
			elseB = f.NewBlock()
		}
		lw.bd.CondBr(cond, thenB, elseB)
		lw.bd.SetBlock(thenB)
		if err := lw.block(st.Then); err != nil {
			return err
		}
		if lw.bd.Cur.Terminator() == nil {
			lw.bd.Br(joinB)
		}
		if st.Else != nil {
			lw.bd.SetBlock(elseB)
			if err := lw.block(st.Else); err != nil {
				return err
			}
			if lw.bd.Cur.Terminator() == nil {
				lw.bd.Br(joinB)
			}
		}
		lw.bd.SetBlock(joinB)
		return nil

	case *WhileS:
		f := lw.bd.Func
		head := f.NewBlock()
		body := f.NewBlock()
		exit := f.NewBlock()
		lw.bd.Br(head)
		lw.bd.SetBlock(head)
		cond, cty, err := lw.expr(st.Cond)
		if err != nil {
			return err
		}
		if cty == TyFloat {
			return errf(st.Line, "while condition must be integer")
		}
		lw.bd.CondBr(cond, body, exit)
		lw.bd.SetBlock(body)
		lw.loops = append(lw.loops, loopCtx{breakTo: exit, continueTo: head})
		if err := lw.block(st.Body); err != nil {
			return err
		}
		lw.loops = lw.loops[:len(lw.loops)-1]
		if lw.bd.Cur.Terminator() == nil {
			lw.bd.Br(head)
		}
		lw.bd.SetBlock(exit)
		return nil

	case *ForS:
		lw.pushScope()
		defer lw.popScope()
		if st.Init != nil {
			if err := lw.stmt(st.Init); err != nil {
				return err
			}
		}
		f := lw.bd.Func
		head := f.NewBlock()
		body := f.NewBlock()
		post := f.NewBlock()
		exit := f.NewBlock()
		lw.bd.Br(head)
		lw.bd.SetBlock(head)
		if st.Cond != nil {
			cond, cty, err := lw.expr(st.Cond)
			if err != nil {
				return err
			}
			if cty == TyFloat {
				return errf(st.Line, "for condition must be integer")
			}
			lw.bd.CondBr(cond, body, exit)
		} else {
			lw.bd.Br(body)
		}
		lw.bd.SetBlock(body)
		lw.loops = append(lw.loops, loopCtx{breakTo: exit, continueTo: post})
		if err := lw.block(st.Body); err != nil {
			return err
		}
		lw.loops = lw.loops[:len(lw.loops)-1]
		if lw.bd.Cur.Terminator() == nil {
			lw.bd.Br(post)
		}
		lw.bd.SetBlock(post)
		if st.Post != nil {
			if err := lw.stmt(st.Post); err != nil {
				return err
			}
		}
		lw.bd.Br(head)
		lw.bd.SetBlock(exit)
		return nil

	case *BreakS:
		if len(lw.loops) == 0 {
			return errf(st.Line, "break outside loop")
		}
		lw.bd.Br(lw.loops[len(lw.loops)-1].breakTo)
		return nil

	case *ContinueS:
		if len(lw.loops) == 0 {
			return errf(st.Line, "continue outside loop")
		}
		lw.bd.Br(lw.loops[len(lw.loops)-1].continueTo)
		return nil
	}
	return errf(s.stmtLine(), "unhandled statement")
}

// coerce converts v from ty to want (int→float promotion only).
func (lw *lowerer) coerce(v *ir.Value, ty, want Ty, line int) (*ir.Value, error) {
	if ty == want {
		return v, nil
	}
	if ty == TyInt && want == TyFloat {
		return lw.bd.Un(ir.OpIToF, v), nil
	}
	if ty.IsPtr() && want == TyInt || ty == TyInt && want.IsPtr() {
		return v, nil // pointers are word addresses
	}
	if ty.IsPtr() && want.IsPtr() {
		return v, nil
	}
	return nil, errf(line, "cannot use %s as %s", ty, want)
}

// indexAddr computes the address and element type of base[idx].
func (lw *lowerer) indexAddr(ix *Index) (*ir.Value, Ty, error) {
	base, bty, err := lw.expr(ix.Base)
	if err != nil {
		return nil, TyVoid, err
	}
	if !bty.IsPtr() {
		return nil, TyVoid, errf(ix.Line, "indexing a non-pointer (%s)", bty)
	}
	idx, ity, err := lw.expr(ix.Idx)
	if err != nil {
		return nil, TyVoid, err
	}
	if ity != TyInt {
		return nil, TyVoid, errf(ix.Line, "array index must be int")
	}
	return lw.bd.Bin(ir.OpAdd, base, idx), bty.Elem(), nil
}

// expr lowers an expression, returning its value and static type.
func (lw *lowerer) expr(e Expr) (*ir.Value, Ty, error) {
	switch ex := e.(type) {
	case *IntLit:
		return lw.bd.ConstInt(ex.Val), TyInt, nil
	case *FloatLit:
		return lw.bd.ConstFloat(ex.Val), TyFloat, nil

	case *Ident:
		b := lw.lookup(ex.Name)
		if b == nil {
			return nil, TyVoid, errf(ex.Line, "undefined variable %q", ex.Name)
		}
		if b.global != nil {
			addr := lw.bd.Global(b.global.Name)
			if b.isArray {
				return addr, b.ty.Ptr(), nil
			}
			return lw.bd.Load(irType(b.ty), addr), b.ty, nil
		}
		if b.isArray {
			return b.val, b.ty, nil // already a pointer binding
		}
		return b.val, b.ty, nil

	case *Unary:
		x, ty, err := lw.expr(ex.X)
		if err != nil {
			return nil, TyVoid, err
		}
		switch ex.Op {
		case "-":
			if ty == TyFloat {
				return lw.bd.Un(ir.OpFNeg, x), TyFloat, nil
			}
			if ty != TyInt {
				return nil, TyVoid, errf(ex.Line, "cannot negate %s", ty)
			}
			return lw.bd.Un(ir.OpNeg, x), TyInt, nil
		case "!":
			if ty != TyInt {
				return nil, TyVoid, errf(ex.Line, "! requires int")
			}
			zero := lw.bd.ConstInt(0)
			return lw.bd.Bin(ir.OpEq, x, zero), TyInt, nil
		}
		return nil, TyVoid, errf(ex.Line, "unknown unary %q", ex.Op)

	case *Index:
		addr, elem, err := lw.indexAddr(ex)
		if err != nil {
			return nil, TyVoid, err
		}
		return lw.bd.Load(irType(elem), addr), elem, nil

	case *Cast:
		x, ty, err := lw.expr(ex.X)
		if err != nil {
			return nil, TyVoid, err
		}
		switch {
		case ty == ex.To:
			return x, ty, nil
		case ty == TyInt && ex.To == TyFloat:
			return lw.bd.Un(ir.OpIToF, x), TyFloat, nil
		case ty == TyFloat && ex.To == TyInt:
			return lw.bd.Un(ir.OpFToI, x), TyInt, nil
		case ty.IsPtr() && ex.To == TyInt:
			return x, TyInt, nil
		}
		return nil, TyVoid, errf(ex.Line, "cannot cast %s to %s", ty, ex.To)

	case *CallE:
		fd := lw.funcs[ex.Name]
		if fd == nil {
			return nil, TyVoid, errf(ex.Line, "undefined function %q", ex.Name)
		}
		if len(ex.Args) != len(fd.Params) {
			return nil, TyVoid, errf(ex.Line, "%q takes %d args, got %d", ex.Name, len(fd.Params), len(ex.Args))
		}
		args := make([]*ir.Value, len(ex.Args))
		for i, a := range ex.Args {
			v, ty, err := lw.expr(a)
			if err != nil {
				return nil, TyVoid, err
			}
			v, err = lw.coerce(v, ty, fd.Params[i].Ty, ex.Line)
			if err != nil {
				return nil, TyVoid, err
			}
			args[i] = v
		}
		var rt ir.Type = ir.Void
		if fd.Ret != TyVoid {
			rt = irType(fd.Ret)
		}
		return lw.bd.Call(rt, ex.Name, args...), fd.Ret, nil

	case *Binary:
		return lw.binary(ex)
	}
	return nil, TyVoid, errf(e.exprLine(), "unhandled expression")
}

var intBinOps = map[string]ir.Op{
	"+": ir.OpAdd, "-": ir.OpSub, "*": ir.OpMul, "/": ir.OpDiv, "%": ir.OpRem,
	"&": ir.OpAnd, "|": ir.OpOr, "^": ir.OpXor, "<<": ir.OpShl, ">>": ir.OpShr,
	"==": ir.OpEq, "!=": ir.OpNe, "<": ir.OpLt, "<=": ir.OpLe, ">": ir.OpGt, ">=": ir.OpGe,
}

var floatBinOps = map[string]ir.Op{
	"+": ir.OpFAdd, "-": ir.OpFSub, "*": ir.OpFMul, "/": ir.OpFDiv,
	"==": ir.OpFEq, "!=": ir.OpFNe, "<": ir.OpFLt, "<=": ir.OpFLe, ">": ir.OpFGt, ">=": ir.OpFGe,
}

func isCmp(op string) bool {
	switch op {
	case "==", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (lw *lowerer) binary(ex *Binary) (*ir.Value, Ty, error) {
	// Short-circuit logical operators lower to control flow writing a
	// temporary variable.
	if ex.Op == "&&" || ex.Op == "||" {
		x, xty, err := lw.expr(ex.X)
		if err != nil {
			return nil, TyVoid, err
		}
		if xty != TyInt {
			return nil, TyVoid, errf(ex.Line, "%s requires int operands", ex.Op)
		}
		tmp := lw.fresh("sc")
		f := lw.bd.Func
		evalY := f.NewBlock()
		done := f.NewBlock()
		zero := lw.bd.ConstInt(0)
		xb := lw.bd.Bin(ir.OpNe, x, zero)
		first := lw.bd.Assign(tmp, xb)
		if ex.Op == "&&" {
			lw.bd.CondBr(xb, evalY, done)
		} else {
			lw.bd.CondBr(xb, done, evalY)
		}
		lw.bd.SetBlock(evalY)
		y, yty, err := lw.expr(ex.Y)
		if err != nil {
			return nil, TyVoid, err
		}
		if yty != TyInt {
			return nil, TyVoid, errf(ex.Line, "%s requires int operands", ex.Op)
		}
		zy := lw.bd.ConstInt(0)
		yb := lw.bd.Bin(ir.OpNe, y, zy)
		lw.bd.Assign(tmp, yb)
		lw.bd.Br(done)
		lw.bd.SetBlock(done)
		// Reading the variable: any definition carries the name.
		return first, TyInt, nil
	}

	x, xty, err := lw.expr(ex.X)
	if err != nil {
		return nil, TyVoid, err
	}
	y, yty, err := lw.expr(ex.Y)
	if err != nil {
		return nil, TyVoid, err
	}

	// Pointer arithmetic: ptr ± int, and pointer comparisons.
	if xty.IsPtr() || yty.IsPtr() {
		switch {
		case ex.Op == "+" && xty.IsPtr() && yty == TyInt:
			return lw.bd.Bin(ir.OpAdd, x, y), xty, nil
		case ex.Op == "+" && yty.IsPtr() && xty == TyInt:
			return lw.bd.Bin(ir.OpAdd, x, y), yty, nil
		case ex.Op == "-" && xty.IsPtr() && yty == TyInt:
			return lw.bd.Bin(ir.OpSub, x, y), xty, nil
		case ex.Op == "-" && xty.IsPtr() && yty.IsPtr():
			return lw.bd.Bin(ir.OpSub, x, y), TyInt, nil
		case isCmp(ex.Op):
			return lw.bd.Bin(intBinOps[ex.Op], x, y), TyInt, nil
		}
		return nil, TyVoid, errf(ex.Line, "invalid pointer operation %q", ex.Op)
	}

	// Numeric promotion.
	if xty == TyFloat || yty == TyFloat {
		if xty == TyInt {
			x = lw.bd.Un(ir.OpIToF, x)
		}
		if yty == TyInt {
			y = lw.bd.Un(ir.OpIToF, y)
		}
		op, ok := floatBinOps[ex.Op]
		if !ok {
			return nil, TyVoid, errf(ex.Line, "operator %q not defined on float", ex.Op)
		}
		if isCmp(ex.Op) {
			return lw.bd.Bin(op, x, y), TyInt, nil
		}
		return lw.bd.Bin(op, x, y), TyFloat, nil
	}
	op, ok := intBinOps[ex.Op]
	if !ok {
		return nil, TyVoid, errf(ex.Line, "unknown operator %q", ex.Op)
	}
	return lw.bd.Bin(op, x, y), TyInt, nil
}
