package ir

import (
	"fmt"
	"strings"
)

// FprintFunc formats f in the textual IR syntax accepted by Parse.
func FprintFunc(b *strings.Builder, f *Func) {
	fmt.Fprintf(b, "func @%s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s %%%s", p.Type, p.Name)
	}
	fmt.Fprintf(b, ") %s {\n", f.ResultType)
	for _, blk := range f.Blocks {
		fmt.Fprintf(b, "%s:", blk.Name)
		if len(blk.Preds) > 0 {
			names := make([]string, len(blk.Preds))
			for i, p := range blk.Preds {
				names[i] = p.Name
			}
			fmt.Fprintf(b, "  ; preds: %s", strings.Join(names, " "))
		}
		b.WriteString("\n")
		for _, v := range blk.Instrs {
			if v.Op == OpParam {
				continue // printed in the signature
			}
			b.WriteString("  ")
			b.WriteString(v.LongString())
			b.WriteString("\n")
		}
	}
	b.WriteString("}\n")
}

// FuncString returns the textual form of f.
func FuncString(f *Func) string {
	var b strings.Builder
	FprintFunc(&b, f)
	return b.String()
}

// ModuleString returns the textual form of m: globals then functions.
func ModuleString(m *Module) string {
	var b strings.Builder
	for _, g := range m.Globals {
		fmt.Fprintf(&b, "global @%s [%d]", g.Name, g.Size)
		if len(g.Init) > 0 {
			b.WriteString(" = {")
			for i, x := range g.Init {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%d", x)
			}
			b.WriteString("}")
		}
		b.WriteString("\n")
	}
	for i, f := range m.Funcs {
		if i > 0 || len(m.Globals) > 0 {
			b.WriteString("\n")
		}
		FprintFunc(&b, f)
	}
	return b.String()
}
