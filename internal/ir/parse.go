package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a module in the textual syntax produced by ModuleString.
//
//	global @name [8] = {1, 2, 3}
//
//	func @f(i64 %a, f64 %b) i64 {
//	b0:
//	  %t0 = add %a, 5
//	  %t1 = load.f64 %t0
//	  store %t0, %t1
//	  condbr %t0, b1, b2
//	b1:
//	  %p = phi [b0: %t0], [b1: %q]
//	  ret %p
//	}
//
// Integer and float literals may appear wherever a value is expected; they
// become OpConst instructions. Loads, calls and φ-nodes default to i64 and
// take a ".f64" suffix for floats ("load.f64", "call.f64", "phi.f64");
// "call.void" marks a void call used as a statement.
func Parse(src string) (*Module, error) {
	p := &parser{m: NewModule()}
	if err := p.run(src); err != nil {
		return nil, err
	}
	return p.m, nil
}

// MustParse is Parse that panics on error; for tests and embedded sources.
func MustParse(src string) *Module {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return m
}

type parser struct {
	m    *Module
	line int
	// phiOrders records, for each parsed φ, the source-order predecessor
	// labels so arguments can be permuted into Preds order once the CFG
	// is complete.
	phiOrders map[*Value][]string
	phiFixups []*Value
}

type patch struct {
	v    *Value
	arg  int
	name string
	line int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *parser) run(src string) error {
	lines := strings.Split(src, "\n")
	i := 0
	for i < len(lines) {
		p.line = i + 1
		l := stripComment(lines[i])
		switch {
		case l == "":
			i++
		case strings.HasPrefix(l, "global "):
			if err := p.parseGlobal(l); err != nil {
				return err
			}
			i++
		case strings.HasPrefix(l, "func "):
			end, err := p.parseFunc(lines, i)
			if err != nil {
				return err
			}
			i = end
		default:
			return p.errf("unexpected top-level line %q", l)
		}
	}
	return nil
}

func stripComment(l string) string {
	if j := strings.IndexByte(l, ';'); j >= 0 {
		l = l[:j]
	}
	return strings.TrimSpace(l)
}

func (p *parser) parseGlobal(l string) error {
	// global @name [N] ( = {a, b, ...} )?
	rest := strings.TrimPrefix(l, "global ")
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "@") {
		return p.errf("global: expected @name")
	}
	rest = rest[1:]
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return p.errf("global: expected size")
	}
	name := rest[:sp]
	rest = strings.TrimSpace(rest[sp:])
	if !strings.HasPrefix(rest, "[") {
		return p.errf("global: expected [size]")
	}
	close := strings.IndexByte(rest, ']')
	if close < 0 {
		return p.errf("global: unterminated [size]")
	}
	size, err := strconv.ParseInt(strings.TrimSpace(rest[1:close]), 10, 64)
	if err != nil {
		return p.errf("global: bad size: %v", err)
	}
	rest = strings.TrimSpace(rest[close+1:])
	var init []int64
	if rest != "" {
		rest = strings.TrimSpace(strings.TrimPrefix(rest, "="))
		rest = strings.TrimSuffix(strings.TrimPrefix(rest, "{"), "}")
		for _, fld := range strings.Split(rest, ",") {
			fld = strings.TrimSpace(fld)
			if fld == "" {
				continue
			}
			x, err := strconv.ParseInt(fld, 10, 64)
			if err != nil {
				return p.errf("global: bad initializer %q", fld)
			}
			init = append(init, x)
		}
	}
	if p.m.Global(name) != nil {
		return p.errf("global @%s redeclared", name)
	}
	p.m.AddGlobal(name, size, init)
	return nil
}

func parseType(s string) (Type, bool) {
	switch s {
	case "i64":
		return I64, true
	case "f64":
		return F64, true
	case "void":
		return Void, true
	}
	return Void, false
}

// parseFunc parses one function starting at lines[start]; returns the index
// one past the closing brace.
func (p *parser) parseFunc(lines []string, start int) (int, error) {
	p.line = start + 1
	header := stripComment(lines[start])
	open := strings.IndexByte(header, '(')
	closeP := strings.LastIndexByte(header, ')')
	if open < 0 || closeP < open {
		return 0, p.errf("func: malformed header")
	}
	namePart := strings.TrimSpace(strings.TrimPrefix(header[:open], "func"))
	if !strings.HasPrefix(namePart, "@") {
		return 0, p.errf("func: expected @name")
	}
	name := namePart[1:]
	tail := strings.TrimSpace(header[closeP+1:])
	tail = strings.TrimSuffix(tail, "{")
	resT, ok := parseType(strings.TrimSpace(tail))
	if !ok {
		return 0, p.errf("func: bad result type %q", tail)
	}

	var ptypes []Type
	var pnames []string
	params := strings.TrimSpace(header[open+1 : closeP])
	if params != "" {
		for _, fld := range strings.Split(params, ",") {
			parts := strings.Fields(strings.TrimSpace(fld))
			if len(parts) != 2 || !strings.HasPrefix(parts[1], "%") {
				return 0, p.errf("func: bad parameter %q", fld)
			}
			t, ok := parseType(parts[0])
			if !ok || t == Void {
				return 0, p.errf("func: bad parameter type %q", parts[0])
			}
			ptypes = append(ptypes, t)
			pnames = append(pnames, parts[1][1:])
		}
	}
	if p.m.Func(name) != nil {
		return 0, p.errf("func @%s redeclared", name)
	}
	f := p.m.NewFunc(name, resT, ptypes...)
	defs := map[string]*Value{}
	for i, prm := range f.Params {
		prm.Name = pnames[i]
		f.ClaimName(pnames[i])
		defs[pnames[i]] = prm
	}

	// Pass 1: find block labels so branches can resolve forward.
	blocks := map[string]*Block{}
	end := -1
	for i := start + 1; i < len(lines); i++ {
		l := stripComment(lines[i])
		if l == "}" {
			end = i
			break
		}
		if strings.HasSuffix(l, ":") {
			lbl := strings.TrimSuffix(l, ":")
			if _, dup := blocks[lbl]; dup {
				p.line = i + 1
				return 0, p.errf("duplicate label %q", lbl)
			}
			var b *Block
			if len(blocks) == 0 {
				b = f.Entry()
				b.Name = lbl
			} else {
				b = f.NewBlock()
				b.Name = lbl
			}
			blocks[lbl] = b
		}
	}
	if end < 0 {
		return 0, p.errf("func @%s: missing closing brace", name)
	}

	// Pass 2: parse instructions.
	var cur *Block
	var patches []patch
	for i := start + 1; i < end; i++ {
		p.line = i + 1
		l := stripComment(lines[i])
		if l == "" {
			continue
		}
		if strings.HasSuffix(l, ":") {
			cur = blocks[strings.TrimSuffix(l, ":")]
			continue
		}
		if cur == nil {
			return 0, p.errf("instruction before first label")
		}
		if err := p.parseInstr(f, cur, l, defs, blocks, &patches); err != nil {
			return 0, err
		}
	}
	for _, pt := range patches {
		v, ok := defs[pt.name]
		if !ok {
			return 0, fmt.Errorf("line %d: undefined value %%%s", pt.line, pt.name)
		}
		pt.v.Args[pt.arg] = v
	}
	if err := p.fixupPhis(); err != nil {
		return 0, fmt.Errorf("func @%s: %v", name, err)
	}
	if err := Verify(f); err != nil {
		return 0, fmt.Errorf("func @%s: %v", name, err)
	}
	return end + 1, nil
}

// splitArgs splits "a, b, c" at top level (no nesting in this grammar).
func splitArgs(s string) []string {
	var out []string
	depth := 0
	last := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[', '(':
			depth++
		case ']', ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[last:i]))
				last = i + 1
			}
		}
	}
	tailArg := strings.TrimSpace(s[last:])
	if tailArg != "" {
		out = append(out, tailArg)
	}
	return out
}

func (p *parser) parseInstr(f *Func, b *Block, l string, defs map[string]*Value, blocks map[string]*Block, patches *[]patch) error {
	dest := ""
	if strings.HasPrefix(l, "%") {
		eq := strings.Index(l, "=")
		if eq < 0 {
			return p.errf("expected '=' after destination")
		}
		dest = strings.TrimSpace(l[1:eq])
		l = strings.TrimSpace(l[eq+1:])
	}
	sp := strings.IndexAny(l, " \t")
	opWord, rest := l, ""
	if sp >= 0 {
		opWord, rest = l[:sp], strings.TrimSpace(l[sp+1:])
	}
	suffix := ""
	if dot := strings.IndexByte(opWord, '.'); dot >= 0 {
		opWord, suffix = opWord[:dot], opWord[dot+1:]
	}

	// resolveVal turns a token into a *Value, creating constants for
	// literals and recording patches for forward references. constBlock
	// is where synthesized constants go (before its terminator).
	resolveVal := func(tok string, t Type, constBlock *Block, v *Value, argIdx int) error {
		tok = strings.TrimSpace(tok)
		if strings.HasPrefix(tok, "%") {
			name := tok[1:]
			if d, ok := defs[name]; ok {
				v.Args[argIdx] = d
				return nil
			}
			*patches = append(*patches, patch{v: v, arg: argIdx, name: name, line: p.line})
			return nil
		}
		// Literal constant.
		c := f.NewValue(OpConst, t)
		if t == F64 {
			x, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return p.errf("bad float literal %q", tok)
			}
			c.ConstFloat = x
		} else {
			x, err := strconv.ParseInt(tok, 10, 64)
			if err != nil {
				return p.errf("bad int literal %q", tok)
			}
			c.ConstInt = x
		}
		c.Block = constBlock
		if term := constBlock.Terminator(); term != nil {
			constBlock.InsertBefore(c, term)
		} else {
			constBlock.Instrs = append(constBlock.Instrs, c)
		}
		v.Args[argIdx] = c
		return nil
	}

	define := func(v *Value) {
		if dest == "" {
			return
		}
		v.Name = dest
		f.ClaimName(dest)
		defs[dest] = v
	}
	append1 := func(v *Value) {
		v.Block = b
		b.Instrs = append(b.Instrs, v)
	}

	// Infer operand element type: float ops take f64 operands.
	operandType := func(op Op) Type {
		switch op {
		case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFNeg, OpFEq, OpFNe, OpFLt, OpFLe, OpFGt, OpFGe, OpFToI:
			return F64
		}
		return I64
	}

	binOps := map[string]Op{
		"add": OpAdd, "sub": OpSub, "mul": OpMul, "div": OpDiv, "rem": OpRem,
		"and": OpAnd, "or": OpOr, "xor": OpXor, "shl": OpShl, "shr": OpShr,
		"fadd": OpFAdd, "fsub": OpFSub, "fmul": OpFMul, "fdiv": OpFDiv,
		"eq": OpEq, "ne": OpNe, "lt": OpLt, "le": OpLe, "gt": OpGt, "ge": OpGe,
		"feq": OpFEq, "fne": OpFNe, "flt": OpFLt, "fle": OpFLe, "fgt": OpFGt, "fge": OpFGe,
	}
	unOps := map[string]Op{
		"neg": OpNeg, "not": OpNot, "fneg": OpFNeg, "i2f": OpIToF, "f2i": OpFToI, "copy": OpCopy,
	}

	switch {
	case opWord == "const":
		t := I64
		if suffix == "f64" || strings.ContainsAny(rest, ".eE") && !strings.HasPrefix(rest, "0x") {
			t = F64
		}
		v := f.NewValue(OpConst, t)
		if t == F64 {
			x, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				return p.errf("bad float constant %q", rest)
			}
			v.ConstFloat = x
		} else {
			x, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return p.errf("bad int constant %q", rest)
			}
			v.ConstInt = x
		}
		define(v)
		append1(v)

	case binOps[opWord] != OpInvalid:
		op := binOps[opWord]
		args := splitArgs(rest)
		if len(args) != 2 {
			return p.errf("%s expects 2 operands", opWord)
		}
		t := I64
		if op >= OpFAdd && op <= OpFDiv {
			t = F64
		}
		v := f.NewValue(op, t, nil, nil)
		for i, a := range args {
			if err := resolveVal(a, operandType(op), b, v, i); err != nil {
				return err
			}
		}
		define(v)
		append1(v)

	case unOps[opWord] != OpInvalid:
		op := unOps[opWord]
		t := I64
		switch op {
		case OpFNeg, OpIToF:
			t = F64
		case OpCopy:
			if suffix == "f64" {
				t = F64
			}
		}
		v := f.NewValue(op, t, nil)
		if err := resolveVal(rest, operandType(op), b, v, 0); err != nil {
			return err
		}
		define(v)
		append1(v)

	case opWord == "alloca":
		n, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			return p.errf("alloca: bad size %q", rest)
		}
		v := f.NewValue(OpAlloca, I64)
		v.ConstInt = n
		define(v)
		append1(v)

	case opWord == "global":
		if !strings.HasPrefix(rest, "@") {
			return p.errf("global: expected @name")
		}
		v := f.NewValue(OpGlobal, I64)
		v.Aux = rest[1:]
		define(v)
		append1(v)

	case opWord == "load":
		t := I64
		if suffix == "f64" {
			t = F64
		}
		v := f.NewValue(OpLoad, t, nil)
		if err := resolveVal(rest, I64, b, v, 0); err != nil {
			return err
		}
		define(v)
		append1(v)

	case opWord == "store":
		args := splitArgs(rest)
		if len(args) != 2 {
			return p.errf("store expects addr, value")
		}
		v := f.NewValue(OpStore, Void, nil, nil)
		if err := resolveVal(args[0], I64, b, v, 0); err != nil {
			return err
		}
		// Stored value type is unknown for literals; default i64, f64 on
		// decimal point.
		vt := I64
		if strings.ContainsAny(args[1], ".eE") && !strings.HasPrefix(args[1], "%") {
			vt = F64
		}
		if err := resolveVal(args[1], vt, b, v, 1); err != nil {
			return err
		}
		append1(v)

	case opWord == "call":
		open := strings.IndexByte(rest, '(')
		closeP := strings.LastIndexByte(rest, ')')
		if !strings.HasPrefix(rest, "@") || open < 0 || closeP < open {
			return p.errf("call: expected @name(args)")
		}
		t := Void
		if dest != "" {
			t = I64
			if suffix == "f64" {
				t = F64
			}
		}
		callee := rest[1:open]
		argToks := splitArgs(rest[open+1 : closeP])
		v := f.NewValue(OpCall, t, make([]*Value, len(argToks))...)
		v.Aux = callee
		for i, a := range argToks {
			at := I64
			if strings.ContainsAny(a, ".eE") && !strings.HasPrefix(a, "%") {
				at = F64
			}
			if err := resolveVal(a, at, b, v, i); err != nil {
				return err
			}
		}
		define(v)
		append1(v)

	case opWord == "phi":
		t := I64
		if suffix == "f64" {
			t = F64
		}
		entries := splitArgs(rest)
		v := f.NewValue(OpPhi, t, make([]*Value, len(entries))...)
		define(v)
		append1(v)
		// φ args align with Preds, which are established by branch parsing;
		// since branches may come later, stash by pred label and fix at the
		// verification boundary: we record args positionally by matching
		// the label order given, then reorder once preds are known.
		type phiEnt struct {
			label string
			tok   string
		}
		ents := make([]phiEnt, len(entries))
		for i, e := range entries {
			e = strings.TrimPrefix(e, "[")
			e = strings.TrimSuffix(e, "]")
			parts := strings.SplitN(e, ":", 2)
			if len(parts) != 2 {
				return p.errf("phi: bad entry %q", e)
			}
			ents[i] = phiEnt{strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])}
		}
		// Resolve args now; reorder to Preds order at end of function via
		// a deferred patch keyed on labels.
		for i, e := range ents {
			pb, ok := blocks[e.label]
			if !ok {
				return p.errf("phi: unknown label %q", e.label)
			}
			if err := resolveVal(e.tok, t, pb, v, i); err != nil {
				return err
			}
		}
		if p.phiOrders == nil {
			p.phiOrders = map[*Value][]string{}
		}
		lbls := make([]string, len(ents))
		for i, e := range ents {
			lbls[i] = e.label
		}
		p.phiOrders[v] = lbls
		p.phiFixups = append(p.phiFixups, v)

	case opWord == "br":
		dst, ok := blocks[rest]
		if !ok {
			return p.errf("br: unknown label %q", rest)
		}
		v := f.NewValue(OpBr, Void)
		append1(v)
		b.Succs = append(b.Succs, dst)
		dst.Preds = append(dst.Preds, b)

	case opWord == "condbr":
		args := splitArgs(rest)
		if len(args) != 3 {
			return p.errf("condbr expects cond, then, else")
		}
		then, ok1 := blocks[args[1]]
		els, ok2 := blocks[args[2]]
		if !ok1 || !ok2 {
			return p.errf("condbr: unknown label")
		}
		v := f.NewValue(OpCondBr, Void, nil)
		if err := resolveVal(args[0], I64, b, v, 0); err != nil {
			return err
		}
		append1(v)
		b.Succs = append(b.Succs, then, els)
		then.Preds = append(then.Preds, b)
		els.Preds = append(els.Preds, b)

	case opWord == "ret":
		var v *Value
		if rest == "" {
			v = f.NewValue(OpRet, Void)
		} else {
			v = f.NewValue(OpRet, Void, nil)
			t := f.ResultType
			if err := resolveVal(rest, t, b, v, 0); err != nil {
				return err
			}
		}
		append1(v)

	default:
		return p.errf("unknown instruction %q", opWord)
	}
	return nil
}

// fixupPhis reorders φ arguments from source order to Preds order.
func (p *parser) fixupPhis() error {
	for _, v := range p.phiFixups {
		labels := p.phiOrders[v]
		b := v.Block
		if len(labels) != len(b.Preds) {
			return fmt.Errorf("φ %%%s in %s has %d entries for %d preds", v.Name, b.Name, len(labels), len(b.Preds))
		}
		newArgs := make([]*Value, len(b.Preds))
		for i, pred := range b.Preds {
			found := false
			for j, lbl := range labels {
				if lbl == pred.Name {
					newArgs[i] = v.Args[j]
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("φ %%%s in %s lacks an entry for predecessor %s", v.Name, b.Name, pred.Name)
			}
		}
		v.Args = newArgs
	}
	p.phiFixups = nil
	p.phiOrders = map[*Value][]string{}
	return nil
}
