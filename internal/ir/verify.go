package ir

import "fmt"

// Verify checks structural well-formedness of f and returns the first
// problem found, or nil. It is used liberally in tests and after every
// transformation pass.
//
// Checks: every block ends in exactly one terminator; Succs/Preds are
// mutually consistent; terminator kind matches successor count; φ-nodes
// lead their block and have one argument per predecessor; every argument
// is an instruction of the same function; allocas and params live in the
// entry block; operand types match the operation.
func Verify(f *Func) error {
	f.Renumber()
	inFunc := map[*Value]bool{}
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Block != b {
				return fmt.Errorf("%s: %s has Block=%v, expected %s", f.Name, v.LongString(), blockName(v.Block), b.Name)
			}
			inFunc[v] = true
		}
	}
	for _, b := range f.Blocks {
		term := b.Terminator()
		if term == nil {
			return fmt.Errorf("%s: block %s lacks a terminator", f.Name, b.Name)
		}
		for i, v := range b.Instrs {
			if v.Op.IsTerminator() && v != term {
				return fmt.Errorf("%s: block %s has terminator %s before the end", f.Name, b.Name, v.Op)
			}
			if v.Op == OpPhi {
				if i > 0 && b.Instrs[i-1].Op != OpPhi && b.Instrs[i-1].Op != OpParam {
					return fmt.Errorf("%s: φ %s not at head of block %s", f.Name, v.LongString(), b.Name)
				}
				if len(v.Args) != len(b.Preds) {
					return fmt.Errorf("%s: φ %s in %s has %d args for %d preds", f.Name, v.LongString(), b.Name, len(v.Args), len(b.Preds))
				}
			}
			if v.Op == OpAlloca && b != f.Entry() {
				return fmt.Errorf("%s: alloca %s outside entry block", f.Name, v)
			}
			if v.Op == OpParam && b != f.Entry() {
				return fmt.Errorf("%s: param %s outside entry block", f.Name, v)
			}
			for _, a := range v.Args {
				if a == nil {
					return fmt.Errorf("%s: %s has nil argument", f.Name, v.LongString())
				}
				if !inFunc[a] {
					return fmt.Errorf("%s: %s uses %s which is not in the function", f.Name, v.LongString(), a)
				}
				if !a.Defines() {
					return fmt.Errorf("%s: %s uses void value %s", f.Name, v.LongString(), a)
				}
			}
			if err := checkTypes(f, v); err != nil {
				return err
			}
		}
		switch term.Op {
		case OpBr:
			if len(b.Succs) != 1 {
				return fmt.Errorf("%s: br block %s has %d successors", f.Name, b.Name, len(b.Succs))
			}
		case OpCondBr:
			if len(b.Succs) != 2 {
				return fmt.Errorf("%s: condbr block %s has %d successors", f.Name, b.Name, len(b.Succs))
			}
		case OpRet:
			if len(b.Succs) != 0 {
				return fmt.Errorf("%s: ret block %s has successors", f.Name, b.Name)
			}
			if f.ResultType == Void && len(term.Args) != 0 {
				return fmt.Errorf("%s: ret with value in void function", f.Name)
			}
			if f.ResultType != Void && len(term.Args) != 1 {
				return fmt.Errorf("%s: ret without value in non-void function", f.Name)
			}
		}
		for _, s := range b.Succs {
			if s.PredIndex(b) < 0 {
				return fmt.Errorf("%s: edge %s->%s missing from %s.Preds", f.Name, b.Name, s.Name, s.Name)
			}
		}
		for _, p := range b.Preds {
			found := false
			for _, s := range p.Succs {
				if s == b {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("%s: edge %s->%s missing from %s.Succs", f.Name, p.Name, b.Name, p.Name)
			}
		}
	}
	return nil
}

func blockName(b *Block) string {
	if b == nil {
		return "<nil>"
	}
	return b.Name
}

func checkTypes(f *Func, v *Value) error {
	want := func(a *Value, t Type) error {
		if a.Type != t {
			return fmt.Errorf("%s: %s: operand %s has type %s, want %s", f.Name, v.LongString(), a, a.Type, t)
		}
		return nil
	}
	switch v.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		for _, a := range v.Args {
			if err := want(a, I64); err != nil {
				return err
			}
		}
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFEq, OpFNe, OpFLt, OpFLe, OpFGt, OpFGe:
		for _, a := range v.Args {
			if err := want(a, F64); err != nil {
				return err
			}
		}
	case OpNeg, OpNot:
		return want(v.Args[0], I64)
	case OpFNeg, OpFToI:
		return want(v.Args[0], F64)
	case OpIToF:
		return want(v.Args[0], I64)
	case OpLoad, OpCondBr:
		return want(v.Args[0], I64)
	case OpStore:
		return want(v.Args[0], I64)
	case OpPhi, OpCopy:
		for _, a := range v.Args {
			if err := want(a, v.Type); err != nil {
				return err
			}
		}
	}
	return nil
}

// VerifyModule verifies every function in m, plus the inter-procedural
// facts Verify cannot see: every call names a defined function with
// matching arity, argument types and result type, and every OpGlobal
// names a declared global.
func VerifyModule(m *Module) error {
	for _, f := range m.Funcs {
		if err := Verify(f); err != nil {
			return err
		}
		for _, b := range f.Blocks {
			for _, v := range b.Instrs {
				switch v.Op {
				case OpCall:
					callee := m.Func(v.Aux)
					if callee == nil {
						return fmt.Errorf("%s: call to undefined @%s", f.Name, v.Aux)
					}
					if len(v.Args) != len(callee.Params) {
						return fmt.Errorf("%s: call @%s with %d args, want %d", f.Name, v.Aux, len(v.Args), len(callee.Params))
					}
					for i, a := range v.Args {
						if a.Type != callee.Params[i].Type {
							return fmt.Errorf("%s: call @%s arg %d has type %s, want %s",
								f.Name, v.Aux, i, a.Type, callee.Params[i].Type)
						}
					}
					if v.Type != callee.ResultType {
						return fmt.Errorf("%s: call @%s used as %s, returns %s", f.Name, v.Aux, v.Type, callee.ResultType)
					}
				case OpGlobal:
					if m.Global(v.Aux) == nil {
						return fmt.Errorf("%s: reference to undeclared global @%s", f.Name, v.Aux)
					}
				}
			}
		}
	}
	return nil
}
