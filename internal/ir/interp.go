package ir

import (
	"errors"
	"fmt"
	"math"
)

// Interp is a reference interpreter for IR modules. The machine simulator
// (package machine) must agree with it on every workload; tests compare
// the two (differential testing).
//
// Memory is a flat array of 64-bit words. Address 0 is reserved (null);
// globals are laid out from address 1 upward in declaration order; each
// call frame's allocas follow the globals at a per-call stack pointer.
type Interp struct {
	M *Module
	// Mem is the flat word memory. Floats are stored bit-cast.
	Mem []uint64
	// Steps counts executed instructions (φ and param excluded).
	Steps int
	// MaxSteps aborts runaway executions (default 200M).
	MaxSteps int

	globalBase map[string]int64
	stackTop   int64
}

// ErrTooManySteps is returned when execution exceeds MaxSteps.
var ErrTooManySteps = errors.New("ir: interpreter step limit exceeded")

// NewInterp prepares an interpreter with memWords words of memory and the
// module's globals initialized.
func NewInterp(m *Module, memWords int) *Interp {
	in := &Interp{M: m, Mem: make([]uint64, memWords), MaxSteps: 200_000_000}
	in.globalBase = map[string]int64{}
	addr := int64(1)
	for _, g := range m.Globals {
		in.globalBase[g.Name] = addr
		for i, x := range g.Init {
			in.Mem[addr+int64(i)] = uint64(x)
		}
		addr += g.Size
	}
	in.stackTop = addr
	return in
}

// GlobalAddr returns the address of global name.
func (in *Interp) GlobalAddr(name string) int64 {
	a, ok := in.globalBase[name]
	if !ok {
		panic(fmt.Sprintf("ir: unknown global %q", name))
	}
	return a
}

// Word is a dynamic value: an I64 or the bits of an F64.
type Word = uint64

// F2W converts a float to its word representation.
func F2W(f float64) Word { return math.Float64bits(f) }

// W2F converts a word to float.
func W2F(w Word) float64 { return math.Float64frombits(w) }

// Run calls function name with the given integer/float arguments (floats
// pre-converted with F2W) and returns the result word.
func (in *Interp) Run(name string, args ...Word) (Word, error) {
	f := in.M.Func(name)
	if f == nil {
		return 0, fmt.Errorf("ir: unknown function %q", name)
	}
	return in.call(f, args)
}

func (in *Interp) call(f *Func, args []Word) (Word, error) {
	if len(args) != len(f.Params) {
		return 0, fmt.Errorf("ir: call @%s with %d args, want %d", f.Name, len(args), len(f.Params))
	}
	env := make(map[*Value]Word)
	frameBase := in.stackTop

	// Pre-scan entry block allocas so addresses are stable regardless of
	// execution order.
	sp := frameBase
	for _, v := range f.Entry().Instrs {
		if v.Op == OpAlloca {
			env[v] = Word(sp)
			sp += v.ConstInt
		}
	}
	if int(sp) > len(in.Mem) {
		return 0, fmt.Errorf("ir: out of memory in @%s (need %d words)", f.Name, sp)
	}
	in.stackTop = sp
	defer func() { in.stackTop = frameBase }()

	for i, p := range f.Params {
		env[p] = args[i]
	}

	blk := f.Entry()
	var prev *Block
	for {
		// Evaluate φ-nodes as a parallel copy on entry.
		phis := blk.Phis()
		if len(phis) > 0 {
			if prev == nil {
				return 0, fmt.Errorf("ir: φ in entry block of @%s", f.Name)
			}
			idx := blk.PredIndex(prev)
			if idx < 0 {
				return 0, fmt.Errorf("ir: φ predecessor %s missing in %s", prev.Name, blk.Name)
			}
			tmp := make([]Word, len(phis))
			for i, phi := range phis {
				tmp[i] = env[phi.Args[idx]]
			}
			for i, phi := range phis {
				env[phi] = tmp[i]
			}
		}

		for _, v := range blk.Instrs {
			if v.Op == OpPhi || v.Op == OpParam {
				continue
			}
			in.Steps++
			if in.Steps > in.MaxSteps {
				return 0, ErrTooManySteps
			}
			switch v.Op {
			case OpConst:
				if v.Type == F64 {
					env[v] = F2W(v.ConstFloat)
				} else {
					env[v] = Word(v.ConstInt)
				}
			case OpCopy:
				env[v] = env[v.Args[0]]
			case OpAlloca:
				// address assigned in the pre-scan
			case OpGlobal:
				env[v] = Word(in.GlobalAddr(v.Aux))
			case OpLoad:
				a := int64(env[v.Args[0]])
				if a <= 0 || int(a) >= len(in.Mem) {
					return 0, fmt.Errorf("ir: @%s: load from invalid address %d", f.Name, a)
				}
				env[v] = in.Mem[a]
			case OpStore:
				a := int64(env[v.Args[0]])
				if a <= 0 || int(a) >= len(in.Mem) {
					return 0, fmt.Errorf("ir: @%s: store to invalid address %d", f.Name, a)
				}
				in.Mem[a] = env[v.Args[1]]
			case OpCall:
				callee := in.M.Func(v.Aux)
				if callee == nil {
					return 0, fmt.Errorf("ir: @%s calls unknown @%s", f.Name, v.Aux)
				}
				cargs := make([]Word, len(v.Args))
				for i, a := range v.Args {
					cargs[i] = env[a]
				}
				r, err := in.call(callee, cargs)
				if err != nil {
					return 0, err
				}
				if v.Type != Void {
					env[v] = r
				}
			case OpBr:
				prev, blk = blk, blk.Succs[0]
				goto next
			case OpCondBr:
				if env[v.Args[0]] != 0 {
					prev, blk = blk, blk.Succs[0]
				} else {
					prev, blk = blk, blk.Succs[1]
				}
				goto next
			case OpRet:
				if len(v.Args) > 0 {
					return env[v.Args[0]], nil
				}
				return 0, nil
			default:
				r, err := evalOp(v.Op, v.Args, env)
				if err != nil {
					return 0, fmt.Errorf("@%s: %s: %v", f.Name, v.LongString(), err)
				}
				env[v] = r
			}
		}
		return 0, fmt.Errorf("ir: @%s: block %s fell through", f.Name, blk.Name)
	next:
	}
}

// evalOp evaluates a pure arithmetic/comparison/conversion operation.
func evalOp(op Op, args []*Value, env map[*Value]Word) (Word, error) {
	x := env[args[0]]
	var y Word
	if len(args) > 1 {
		y = env[args[1]]
	}
	xi, yi := int64(x), int64(y)
	b2w := func(b bool) Word {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case OpAdd:
		return Word(xi + yi), nil
	case OpSub:
		return Word(xi - yi), nil
	case OpMul:
		return Word(xi * yi), nil
	case OpDiv:
		if yi == 0 {
			return 0, errors.New("integer division by zero")
		}
		return Word(xi / yi), nil
	case OpRem:
		if yi == 0 {
			return 0, errors.New("integer remainder by zero")
		}
		return Word(xi % yi), nil
	case OpAnd:
		return x & y, nil
	case OpOr:
		return x | y, nil
	case OpXor:
		return x ^ y, nil
	case OpShl:
		return Word(xi << (yi & 63)), nil
	case OpShr:
		return Word(xi >> (yi & 63)), nil
	case OpNeg:
		return Word(-xi), nil
	case OpNot:
		return ^x, nil
	case OpFAdd:
		return F2W(W2F(x) + W2F(y)), nil
	case OpFSub:
		return F2W(W2F(x) - W2F(y)), nil
	case OpFMul:
		return F2W(W2F(x) * W2F(y)), nil
	case OpFDiv:
		return F2W(W2F(x) / W2F(y)), nil
	case OpFNeg:
		return F2W(-W2F(x)), nil
	case OpIToF:
		return F2W(float64(xi)), nil
	case OpFToI:
		return Word(int64(W2F(x))), nil
	case OpEq:
		return b2w(xi == yi), nil
	case OpNe:
		return b2w(xi != yi), nil
	case OpLt:
		return b2w(xi < yi), nil
	case OpLe:
		return b2w(xi <= yi), nil
	case OpGt:
		return b2w(xi > yi), nil
	case OpGe:
		return b2w(xi >= yi), nil
	case OpFEq:
		return b2w(W2F(x) == W2F(y)), nil
	case OpFNe:
		return b2w(W2F(x) != W2F(y)), nil
	case OpFLt:
		return b2w(W2F(x) < W2F(y)), nil
	case OpFLe:
		return b2w(W2F(x) <= W2F(y)), nil
	case OpFGt:
		return b2w(W2F(x) > W2F(y)), nil
	case OpFGe:
		return b2w(W2F(x) >= W2F(y)), nil
	}
	return 0, fmt.Errorf("unhandled op %s", op)
}
