package ir

import (
	"strings"
	"testing"
)

// buildFib constructs an iterative fibonacci with the builder (non-SSA:
// uses named reassignment through Assign).
func buildFib(m *Module) *Func {
	f := m.NewFunc("fib", I64, I64)
	bd := NewBuilder(f)
	loop := f.NewBlock()
	body := f.NewBlock()
	done := f.NewBlock()

	a := bd.Assign("a", bd.ConstInt(0))
	b := bd.Assign("b", bd.ConstInt(1))
	i := bd.Assign("i", bd.ConstInt(0))
	_ = a
	_ = b
	bd.Br(loop)

	bd.SetBlock(loop)
	cond := bd.Bin(OpLt, i, f.Params[0])
	bd.CondBr(cond, body, done)

	bd.SetBlock(body)
	an := bd.Un(OpCopy, b)
	bn := bd.Bin(OpAdd, a, b)
	bd.Assign("a", an)
	bd.Assign("b", bn)
	bd.Assign("i", bd.Bin(OpAdd, i, bd.ConstInt(1)))
	bd.Br(loop)

	bd.SetBlock(done)
	bd.Ret(a)
	return f
}

func TestBuilderVerify(t *testing.T) {
	m := NewModule()
	f := buildFib(m)
	if err := Verify(f); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	m := NewModule()
	f := m.NewFunc("f", I64, I64)
	bd := NewBuilder(f)
	bd.ConstInt(1)
	if err := Verify(f); err == nil {
		t.Fatal("Verify accepted a block without terminator")
	}
	bd.Ret(f.Params[0])
	if err := Verify(f); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyCatchesBadEdges(t *testing.T) {
	m := NewModule()
	f := m.NewFunc("f", Void)
	bd := NewBuilder(f)
	b1 := f.NewBlock()
	bd.Br(b1)
	bd.SetBlock(b1)
	bd.Ret()
	// Corrupt: drop the pred entry.
	b1.Preds = nil
	if err := Verify(f); err == nil {
		t.Fatal("Verify accepted inconsistent preds/succs")
	}
}

const parseExample = `
global @buf [8] = {1, 2, 3}

func @sum(i64 %n) i64 {
entry:
  %g = global @buf
  %acc0 = const 0
  br loop
loop:
  %i = phi [entry: 0], [body: %i2]
  %acc = phi [entry: %acc0], [body: %acc2]
  %c = lt %i, %n
  condbr %c, body, done
body:
  %p = add %g, %i
  %x = load %p
  %acc2 = add %acc, %x
  %i2 = add %i, 1
  br loop
done:
  ret %acc
}
`

func TestParseAndInterp(t *testing.T) {
	m, err := Parse(parseExample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	in := NewInterp(m, 1024)
	got, err := in.Run("sum", 3)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 6 {
		t.Fatalf("sum of {1,2,3} = %d, want 6", int64(got))
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	m := MustParse(parseExample)
	text := ModuleString(m)
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\ntext:\n%s", err, text)
	}
	// Execution semantics must survive the round trip.
	for _, n := range []Word{0, 1, 3} {
		a := NewInterp(m, 1024)
		b := NewInterp(m2, 1024)
		ra, err := a.Run("sum", n)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Run("sum", n)
		if err != nil {
			t.Fatal(err)
		}
		if ra != rb {
			t.Fatalf("round trip diverges at n=%d: %d vs %d", n, ra, rb)
		}
	}
}

func TestInterpFib(t *testing.T) {
	m := NewModule()
	buildFib(m)
	// The builder's Assign-based code is not SSA; the interpreter uses
	// value identity, so reassignment via Assign is only correct after
	// ssa.Build. Here we check the SSA-free parts with a parsed SSA
	// version instead and check Assign produces verifiable IR above.
	want := []int64{0, 1, 1, 2, 3, 5, 8, 13}
	src := `
func @fib(i64 %n) i64 {
e:
  br l
l:
  %a = phi [e: 0], [b: %b]
  %b = phi [e: 1], [b: %s]
  %i = phi [e: 0], [b: %i2]
  %c = lt %i, %n
  condbr %c, b, d
b:
  %s = add %a, %b
  %i2 = add %i, 1
  br l
d:
  ret %a
}
`
	m2 := MustParse(src)
	for n, w := range want {
		in := NewInterp(m2, 64)
		got, err := in.Run("fib", Word(n))
		if err != nil {
			t.Fatal(err)
		}
		if int64(got) != w {
			t.Fatalf("fib(%d) = %d, want %d", n, int64(got), w)
		}
	}
}

func TestInterpFloat(t *testing.T) {
	src := `
func @poly(f64 %x) f64 {
e:
  %x2 = fmul %x, %x
  %t = fmul %x2, 2.0
  %r = fadd %t, 1.5
  ret %r
}
`
	m := MustParse(src)
	in := NewInterp(m, 64)
	got, err := in.Run("poly", F2W(3))
	if err != nil {
		t.Fatal(err)
	}
	if W2F(got) != 19.5 {
		t.Fatalf("poly(3) = %g, want 19.5", W2F(got))
	}
}

func TestInterpCall(t *testing.T) {
	src := `
func @sq(i64 %x) i64 {
e:
  %r = mul %x, %x
  ret %r
}

func @sumsq(i64 %a, i64 %b) i64 {
e:
  %x = call @sq(%a)
  %y = call @sq(%b)
  %r = add %x, %y
  ret %r
}
`
	m := MustParse(src)
	in := NewInterp(m, 64)
	got, err := in.Run("sumsq", 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 25 {
		t.Fatalf("sumsq(3,4) = %d, want 25", got)
	}
}

func TestInterpAllocaFrames(t *testing.T) {
	// Recursion must give each frame distinct alloca addresses.
	src := `
func @fact(i64 %n) i64 {
e:
  %slot = alloca 1
  store %slot, %n
  %c = le %n, 1
  condbr %c, base, rec
base:
  ret 1
rec:
  %n1 = sub %n, 1
  %r = call @fact(%n1)
  %nv = load %slot
  %out = mul %r, %nv
  ret %out
}
`
	m := MustParse(src)
	in := NewInterp(m, 1024)
	got, err := in.Run("fact", 6)
	if err != nil {
		t.Fatal(err)
	}
	if got != 720 {
		t.Fatalf("fact(6) = %d, want 720", got)
	}
}

func TestInterpDivByZero(t *testing.T) {
	src := `
func @d(i64 %a, i64 %b) i64 {
e:
  %r = div %a, %b
  ret %r
}
`
	m := MustParse(src)
	in := NewInterp(m, 64)
	if _, err := in.Run("d", 1, 0); err == nil {
		t.Fatal("expected division-by-zero error")
	}
}

func TestInterpStepLimit(t *testing.T) {
	src := `
func @spin() void {
e:
  br e
}
`
	m := MustParse(src)
	in := NewInterp(m, 64)
	in.MaxSteps = 1000
	if _, err := in.Run("spin"); err != ErrTooManySteps {
		t.Fatalf("got %v, want ErrTooManySteps", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"bogus",
		"func @f() i64 {\ne:\n  ret %missing\n}",
		"func @f() i64 {\ne:\n  %x = frob 1, 2\n  ret %x\n}",
		"func @f() i64 {\ne:\n}", // no terminator
		"global @g",
		"func @f() i64 {\ne:\n  %x = phi [nope: 1]\n  ret %x\n}",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted %q", src)
		}
	}
}

func TestRemoveUnreachable(t *testing.T) {
	src := `
func @f(i64 %a) i64 {
e:
  br out
dead:
  br out
out:
  ret %a
}
`
	m := MustParse(src)
	f := m.Func("f")
	if len(f.Blocks) != 3 {
		t.Fatalf("expected 3 blocks, got %d", len(f.Blocks))
	}
	f.RemoveUnreachable()
	if len(f.Blocks) != 2 {
		t.Fatalf("expected 2 blocks after RemoveUnreachable, got %d", len(f.Blocks))
	}
	if err := Verify(f); err != nil {
		t.Fatalf("Verify after RemoveUnreachable: %v", err)
	}
	out := f.Blocks[1]
	if len(out.Preds) != 1 {
		t.Fatalf("out should have 1 pred, got %d", len(out.Preds))
	}
}

func TestBlockHelpers(t *testing.T) {
	m := MustParse(parseExample)
	f := m.Func("sum")
	var loop *Block
	for _, b := range f.Blocks {
		if b.Name == "loop" {
			loop = b
		}
	}
	if loop == nil {
		t.Fatal("no loop block")
	}
	if got := len(loop.Phis()); got != 2 {
		t.Fatalf("loop has %d phis, want 2", got)
	}
	if loop.PredIndex(loop.Preds[0]) != 0 {
		t.Fatal("PredIndex broken")
	}
	term := loop.Terminator()
	if term == nil || term.Op != OpCondBr {
		t.Fatalf("loop terminator = %v", term)
	}
}

func TestLongStringForms(t *testing.T) {
	m := MustParse(parseExample)
	text := ModuleString(m)
	for _, want := range []string{"phi", "global @buf", "condbr", "load"} {
		if !strings.Contains(text, want) {
			t.Errorf("printed module missing %q:\n%s", want, text)
		}
	}
}

func TestVerifyModuleCallChecks(t *testing.T) {
	good := `
func @g(i64 %x) i64 {
e:
  ret %x
}

func @f() i64 {
e:
  %r = call @g(3)
  ret %r
}
`
	if err := VerifyModule(MustParse(good)); err != nil {
		t.Fatalf("VerifyModule rejected valid module: %v", err)
	}

	cases := []string{
		// undefined callee
		"func @f() i64 {\ne:\n  %r = call @nope()\n  ret %r\n}",
		// wrong arity
		"func @g(i64 %x) i64 {\ne:\n  ret %x\n}\n\nfunc @f() i64 {\ne:\n  %r = call @g()\n  ret %r\n}",
		// wrong arg type
		"func @g(f64 %x) i64 {\ne:\n  ret 0\n}\n\nfunc @f() i64 {\ne:\n  %r = call @g(3)\n  ret %r\n}",
		// wrong result type
		"func @g(i64 %x) f64 {\ne:\n  ret 0.0\n}\n\nfunc @f() i64 {\ne:\n  %r = call @g(3)\n  ret %r\n}",
		// undeclared global
		"func @f() i64 {\ne:\n  %p = global @nosuch\n  %x = load %p\n  ret %x\n}",
	}
	for i, src := range cases {
		m, err := Parse(src)
		if err != nil {
			continue // per-function verify may already reject; fine
		}
		if err := VerifyModule(m); err == nil {
			t.Errorf("case %d: VerifyModule accepted invalid module", i)
		}
	}
}

// TestQuickPrintParseRoundTrip: for random builder-generated programs,
// ModuleString∘Parse preserves execution semantics.
func TestQuickPrintParseRoundTrip(t *testing.T) {
	gen := func(seed int64) *Module {
		m := NewModule()
		m.AddGlobal("g", 8, []int64{3, 1, 4, 1, 5})
		f := m.NewFunc("f", I64, I64)
		bd := NewBuilder(f)
		loop := f.NewBlock()
		body := f.NewBlock()
		done := f.NewBlock()
		gp := bd.Global("g")
		bd.Br(loop)
		bd.SetBlock(loop)
		i := bd.Phi(I64)
		acc := bd.Phi(I64)
		c := bd.Bin(OpLt, i, f.Params[0])
		bd.CondBr(c, body, done)
		bd.SetBlock(body)
		s := seed
		vals := []*Value{i, acc}
		for k := 0; k < 5; k++ {
			s = s*6364136223846793005 + 1442695040888963407
			op := []Op{OpAdd, OpSub, OpXor, OpMul}[int(uint64(s)>>33)%4]
			a := vals[int(uint64(s)>>13)%len(vals)]
			b := vals[int(uint64(s)>>23)%len(vals)]
			vals = append(vals, bd.Bin(op, a, b))
		}
		idx := bd.Bin(OpRem, i, bd.ConstInt(8))
		p := bd.Bin(OpAdd, gp, idx)
		x := bd.Load(I64, p)
		acc2 := bd.Bin(OpAdd, vals[len(vals)-1], x)
		i2 := bd.Bin(OpAdd, i, bd.ConstInt(1))
		bd.Br(loop)
		bd.SetBlock(done)
		bd.Ret(acc)
		// Wire the φs (entry, body) in pred order.
		entryZero := f.NewValue(OpConst, I64)
		entryZero.Block = f.Entry()
		f.Entry().InsertBefore(entryZero, f.Entry().Terminator())
		i.Args = []*Value{entryZero, i2}
		acc.Args = []*Value{entryZero, acc2}
		if err := Verify(f); err != nil {
			t.Fatalf("generated program invalid: %v", err)
		}
		return m
	}
	for seed := int64(0); seed < 25; seed++ {
		m1 := gen(seed)
		text := ModuleString(m1)
		m2, err := Parse(text)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v\n%s", seed, err, text)
		}
		for _, n := range []Word{0, 3, 9} {
			a := NewInterp(m1, 256)
			b := NewInterp(m2, 256)
			ra, ea := a.Run("f", n)
			rb, eb := b.Run("f", n)
			if (ea == nil) != (eb == nil) || (ea == nil && ra != rb) {
				t.Fatalf("seed %d n=%d: %d/%v vs %d/%v", seed, n, ra, ea, rb, eb)
			}
		}
	}
}
