package ir

import "fmt"

// Builder provides a convenient, position-tracking API for constructing IR
// by hand (tests, the frontend, and the examples all use it).
type Builder struct {
	Func *Func
	// Cur is the block under construction; emitted instructions append
	// here until the block is terminated.
	Cur *Block
}

// NewBuilder returns a builder positioned at f's entry block.
func NewBuilder(f *Func) *Builder {
	return &Builder{Func: f, Cur: f.Entry()}
}

// SetBlock moves the insertion point to b.
func (bd *Builder) SetBlock(b *Block) { bd.Cur = b }

// emit appends v to the current block.
func (bd *Builder) emit(v *Value) *Value {
	if bd.Cur == nil {
		panic("ir: builder has no current block")
	}
	if t := bd.Cur.Terminator(); t != nil {
		panic(fmt.Sprintf("ir: emitting %s into terminated block %s", v.Op, bd.Cur.Name))
	}
	v.Block = bd.Cur
	bd.Cur.Instrs = append(bd.Cur.Instrs, v)
	return v
}

// ConstInt emits an I64 constant.
func (bd *Builder) ConstInt(c int64) *Value {
	v := bd.Func.NewValue(OpConst, I64)
	v.ConstInt = c
	return bd.emit(v)
}

// ConstFloat emits an F64 constant.
func (bd *Builder) ConstFloat(c float64) *Value {
	v := bd.Func.NewValue(OpConst, F64)
	v.ConstFloat = c
	return bd.emit(v)
}

// Bin emits a binary arithmetic or comparison instruction. The result type
// follows the op: float arithmetic yields F64, everything else I64.
func (bd *Builder) Bin(op Op, x, y *Value) *Value {
	t := I64
	if op >= OpFAdd && op <= OpFNeg {
		t = F64
	}
	return bd.emit(bd.Func.NewValue(op, t, x, y))
}

// Un emits a unary instruction (OpNeg, OpNot, OpFNeg, OpIToF, OpFToI,
// OpCopy).
func (bd *Builder) Un(op Op, x *Value) *Value {
	t := I64
	switch op {
	case OpFNeg, OpIToF:
		t = F64
	case OpCopy:
		t = x.Type
	}
	return bd.emit(bd.Func.NewValue(op, t, x))
}

// Alloca emits a stack allocation of size words.
func (bd *Builder) Alloca(size int64) *Value {
	v := bd.Func.NewValue(OpAlloca, I64)
	v.ConstInt = size
	return bd.emit(v)
}

// Global emits an address-of-global instruction.
func (bd *Builder) Global(name string) *Value {
	v := bd.Func.NewValue(OpGlobal, I64)
	v.Aux = name
	return bd.emit(v)
}

// Load emits a load of the given type from addr.
func (bd *Builder) Load(t Type, addr *Value) *Value {
	return bd.emit(bd.Func.NewValue(OpLoad, t, addr))
}

// Store emits a store of val to addr.
func (bd *Builder) Store(addr, val *Value) *Value {
	return bd.emit(bd.Func.NewValue(OpStore, Void, addr, val))
}

// Call emits a call to the named function.
func (bd *Builder) Call(result Type, callee string, args ...*Value) *Value {
	v := bd.Func.NewValue(OpCall, result, args...)
	v.Aux = callee
	return bd.emit(v)
}

// Phi emits a φ-node; the caller is responsible for alignment with Preds
// (usually via ssa.Build, which creates φs itself).
func (bd *Builder) Phi(t Type, args ...*Value) *Value {
	return bd.emit(bd.Func.NewValue(OpPhi, t, args...))
}

// Br terminates the current block with an unconditional branch to dst and
// records the CFG edge.
func (bd *Builder) Br(dst *Block) *Value {
	v := bd.emit(bd.Func.NewValue(OpBr, Void))
	bd.Cur.Succs = append(bd.Cur.Succs, dst)
	dst.Preds = append(dst.Preds, bd.Cur)
	return v
}

// CondBr terminates the current block with a conditional branch.
func (bd *Builder) CondBr(cond *Value, then, els *Block) *Value {
	v := bd.emit(bd.Func.NewValue(OpCondBr, Void, cond))
	bd.Cur.Succs = append(bd.Cur.Succs, then, els)
	then.Preds = append(then.Preds, bd.Cur)
	els.Preds = append(els.Preds, bd.Cur)
	return v
}

// Ret terminates the current block with a return. vals may be empty for a
// void return.
func (bd *Builder) Ret(vals ...*Value) *Value {
	return bd.emit(bd.Func.NewValue(OpRet, Void, vals...))
}

// Assign emits a copy of val into the *named* pseudoregister dst. This is
// how non-SSA code expresses reassignment: multiple instructions defining
// the same name. ssa.Build later renames them apart.
func (bd *Builder) Assign(dst string, val *Value) *Value {
	v := bd.Func.NewValue(OpCopy, val.Type, val)
	v.Name = dst
	bd.Func.ClaimName(dst)
	return bd.emit(v)
}
