// Package ir defines the load-store intermediate representation used by the
// idempotent-processing compiler.
//
// The IR mirrors the representation the paper's LLVM pass operates on: a
// control flow graph of basic blocks whose instructions read and write an
// unbounded set of pseudoregisters (Values) and access memory exclusively
// through explicit Load and Store instructions. Memory is word addressed:
// one address unit holds one 64-bit value. Stack storage is created with
// Alloca, global storage with module-level globals; both yield addresses
// that flow through pseudoregisters.
//
// Functions may be in or out of SSA form. Package ssa converts to SSA
// (required by the region construction algorithm, per §4.1 of the paper)
// and back out before code generation.
package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Type is the type of a Value. The IR is deliberately minimal: 64-bit
// integers (which double as addresses and booleans) and 64-bit floats.
type Type uint8

const (
	// Void is the type of instructions that produce no value (Store, Br,
	// CondBr, Ret, and calls to void functions).
	Void Type = iota
	// I64 is a 64-bit integer, also used for addresses and booleans.
	I64
	// F64 is a 64-bit IEEE float.
	F64
)

func (t Type) String() string {
	switch t {
	case Void:
		return "void"
	case I64:
		return "i64"
	case F64:
		return "f64"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Op identifies the operation an instruction performs.
type Op uint8

const (
	// OpInvalid is the zero Op; it never appears in a well-formed function.
	OpInvalid Op = iota

	// OpParam is a function parameter. Parameters appear at the start of
	// the entry block in declaration order; ConstInt holds the index.
	OpParam
	// OpConst is an integer or float constant, in ConstInt or ConstFloat
	// according to Type.
	OpConst

	// Integer arithmetic. Args[0] op Args[1]; OpNeg and OpNot are unary.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpNeg
	OpNot

	// Float arithmetic.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg

	// Conversions.
	OpIToF
	OpFToI

	// Integer comparisons, producing 0 or 1 as I64.
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	// Float comparisons, producing 0 or 1 as I64.
	OpFEq
	OpFNe
	OpFLt
	OpFLe
	OpFGt
	OpFGe

	// OpAlloca reserves ConstInt words of local stack storage and yields
	// its address. Allocas must appear in the entry block.
	OpAlloca
	// OpGlobal yields the address of the module global named Aux.
	OpGlobal
	// OpLoad reads memory at address Args[0].
	OpLoad
	// OpStore writes Args[1] to memory at address Args[0].
	OpStore
	// OpCall calls function Aux with Args. Type is the callee's result
	// type (Void for void functions).
	OpCall

	// OpPhi is an SSA φ-node. Args are aligned with Block.Preds.
	OpPhi
	// OpCopy is a register move: the value of Args[0].
	OpCopy

	// Terminators. Every block ends with exactly one of these.

	// OpBr is an unconditional branch to Block.Succs[0].
	OpBr
	// OpCondBr branches on Args[0]: nonzero to Block.Succs[0], zero to
	// Block.Succs[1].
	OpCondBr
	// OpRet returns Args[0] (or nothing if Args is empty).
	OpRet
)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpParam:   "param",
	OpConst:   "const",
	OpAdd:     "add",
	OpSub:     "sub",
	OpMul:     "mul",
	OpDiv:     "div",
	OpRem:     "rem",
	OpAnd:     "and",
	OpOr:      "or",
	OpXor:     "xor",
	OpShl:     "shl",
	OpShr:     "shr",
	OpNeg:     "neg",
	OpNot:     "not",
	OpFAdd:    "fadd",
	OpFSub:    "fsub",
	OpFMul:    "fmul",
	OpFDiv:    "fdiv",
	OpFNeg:    "fneg",
	OpIToF:    "i2f",
	OpFToI:    "f2i",
	OpEq:      "eq",
	OpNe:      "ne",
	OpLt:      "lt",
	OpLe:      "le",
	OpGt:      "gt",
	OpGe:      "ge",
	OpFEq:     "feq",
	OpFNe:     "fne",
	OpFLt:     "flt",
	OpFLe:     "fle",
	OpFGt:     "fgt",
	OpFGe:     "fge",
	OpAlloca:  "alloca",
	OpGlobal:  "global",
	OpLoad:    "load",
	OpStore:   "store",
	OpCall:    "call",
	OpPhi:     "phi",
	OpCopy:    "copy",
	OpBr:      "br",
	OpCondBr:  "condbr",
	OpRet:     "ret",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsTerminator reports whether op ends a basic block.
func (op Op) IsTerminator() bool {
	return op == OpBr || op == OpCondBr || op == OpRet
}

// IsCmp reports whether op is an integer or float comparison.
func (op Op) IsCmp() bool {
	return op >= OpEq && op <= OpFGe
}

// HasSideEffects reports whether the instruction must be preserved even if
// its result is unused (memory writes, calls, terminators).
func (op Op) HasSideEffects() bool {
	return op == OpStore || op == OpCall || op.IsTerminator()
}

// Value is an IR instruction and, when Type != Void, the pseudoregister it
// defines. A Value out of SSA form may be redefined: two instructions may
// share the same Name, in which case the later definition overwrites the
// earlier pseudoregister (this is how the frontend emits straight-line
// code; ssa.Build renames to true SSA).
type Value struct {
	// ID is unique within the function and stable across passes.
	ID int
	// Name is the pseudoregister name ("t3"). Values with equal Name
	// denote the same pseudoregister when the function is not in SSA form.
	Name string
	Op   Op
	Type Type
	Args []*Value
	// Block is the containing basic block.
	Block *Block

	// ConstInt holds the constant for OpConst (I64), the size in words
	// for OpAlloca, and the parameter index for OpParam.
	ConstInt int64
	// ConstFloat holds the constant for OpConst with Type F64.
	ConstFloat float64
	// Aux holds the symbol name for OpGlobal and OpCall.
	Aux string
}

// NumArgs returns len(v.Args).
func (v *Value) NumArgs() int { return len(v.Args) }

// Defines reports whether v defines a pseudoregister.
func (v *Value) Defines() bool { return v.Type != Void }

// String returns a short reference like "%t3" or the printed instruction
// for void instructions.
func (v *Value) String() string {
	if v.Defines() {
		return "%" + v.Name
	}
	return v.Op.String() + "#" + fmt.Sprint(v.ID)
}

// LongString prints the full instruction, e.g. "%t3 = add %t1, %t2".
func (v *Value) LongString() string {
	var b strings.Builder
	if v.Defines() {
		fmt.Fprintf(&b, "%%%s = ", v.Name)
	}
	switch v.Op {
	case OpConst:
		if v.Type == F64 {
			fmt.Fprintf(&b, "const %g", v.ConstFloat)
		} else {
			fmt.Fprintf(&b, "const %d", v.ConstInt)
		}
	case OpParam:
		fmt.Fprintf(&b, "param %d", v.ConstInt)
	case OpAlloca:
		fmt.Fprintf(&b, "alloca %d", v.ConstInt)
	case OpGlobal:
		fmt.Fprintf(&b, "global @%s", v.Aux)
	case OpCall:
		fmt.Fprintf(&b, "call @%s(", v.Aux)
		for i, a := range v.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
		b.WriteString(")")
	case OpPhi:
		b.WriteString("phi ")
		for i, a := range v.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			pred := "?"
			if v.Block != nil && i < len(v.Block.Preds) {
				pred = v.Block.Preds[i].Name
			}
			fmt.Fprintf(&b, "[%s: %s]", pred, a)
		}
	case OpBr:
		fmt.Fprintf(&b, "br %s", v.Block.Succs[0].Name)
	case OpCondBr:
		fmt.Fprintf(&b, "condbr %s, %s, %s", v.Args[0], v.Block.Succs[0].Name, v.Block.Succs[1].Name)
	case OpRet:
		if len(v.Args) > 0 {
			fmt.Fprintf(&b, "ret %s", v.Args[0])
		} else {
			b.WriteString("ret")
		}
	default:
		b.WriteString(v.Op.String())
		for i, a := range v.Args {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(" " + a.String())
		}
	}
	return b.String()
}

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator. Preds and Succs encode the CFG; for OpPhi instructions,
// Args[i] is the value incoming from Preds[i].
type Block struct {
	// Name is unique within the function ("b0", "b1", ...).
	Name string
	// Index is the position in Func.Blocks, refreshed by Func.Renumber.
	Index  int
	Instrs []*Value
	Preds  []*Block
	Succs  []*Block
	Func   *Func
}

// Terminator returns the block's final instruction, or nil if the block is
// empty or unterminated.
func (b *Block) Terminator() *Value {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !last.Op.IsTerminator() {
		return nil
	}
	return last
}

// Phis returns the block's leading φ-nodes.
func (b *Block) Phis() []*Value {
	var n int
	for n < len(b.Instrs) && b.Instrs[n].Op == OpPhi {
		n++
	}
	return b.Instrs[:n]
}

// PredIndex returns the position of p in b.Preds, or -1.
func (b *Block) PredIndex(p *Block) int {
	for i, q := range b.Preds {
		if q == p {
			return i
		}
	}
	return -1
}

// ReplacePred replaces predecessor old with new, keeping φ arguments
// aligned (their order keys off predecessor position, which is unchanged).
func (b *Block) ReplacePred(old, new *Block) {
	i := b.PredIndex(old)
	if i < 0 {
		panic(fmt.Sprintf("ir: %s is not a predecessor of %s", old.Name, b.Name))
	}
	b.Preds[i] = new
}

// ReplaceSucc replaces successor old with new.
func (b *Block) ReplaceSucc(old, new *Block) {
	for i, s := range b.Succs {
		if s == old {
			b.Succs[i] = new
			return
		}
	}
	panic(fmt.Sprintf("ir: %s is not a successor of %s", old.Name, b.Name))
}

// RemovePred removes predecessor p and the corresponding φ arguments.
func (b *Block) RemovePred(p *Block) {
	i := b.PredIndex(p)
	if i < 0 {
		panic(fmt.Sprintf("ir: %s is not a predecessor of %s", p.Name, b.Name))
	}
	b.Preds = append(b.Preds[:i], b.Preds[i+1:]...)
	for _, phi := range b.Phis() {
		phi.Args = append(phi.Args[:i], phi.Args[i+1:]...)
	}
}

// InsertBefore inserts v immediately before pos in the block. pos must be
// an instruction of b.
func (b *Block) InsertBefore(v *Value, pos *Value) {
	for i, in := range b.Instrs {
		if in == pos {
			b.Instrs = append(b.Instrs, nil)
			copy(b.Instrs[i+1:], b.Instrs[i:])
			b.Instrs[i] = v
			v.Block = b
			return
		}
	}
	panic("ir: InsertBefore position not found")
}

// RemoveInstr removes v from the block. It does not patch uses.
func (b *Block) RemoveInstr(v *Value) {
	for i, in := range b.Instrs {
		if in == v {
			b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
			return
		}
	}
	panic("ir: RemoveInstr instruction not found")
}

// Func is a function: a CFG of basic blocks. Blocks[0] is the entry.
type Func struct {
	Name string
	// Params are the OpParam values, in declaration order. They also
	// appear at the head of the entry block.
	Params []*Value
	// ResultType is the function's return type.
	ResultType Type
	Blocks     []*Block
	Module     *Module

	nextID    int
	nextName  int
	nextBlock int
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// NewBlock appends a fresh, empty block to the function.
func (f *Func) NewBlock() *Block {
	b := &Block{Name: fmt.Sprintf("b%d", f.nextBlock), Index: len(f.Blocks), Func: f}
	f.nextBlock++
	f.Blocks = append(f.Blocks, b)
	return b
}

// NewValue creates an instruction without inserting it into a block. The
// caller must append or insert it and, if it defines a pseudoregister,
// Name is freshly generated unless overridden.
func (f *Func) NewValue(op Op, t Type, args ...*Value) *Value {
	v := &Value{ID: f.nextID, Op: op, Type: t, Args: args}
	f.nextID++
	if t != Void {
		v.Name = fmt.Sprintf("t%d", f.nextName)
		f.nextName++
	}
	return v
}

// FreshName returns a new unique pseudoregister name.
func (f *Func) FreshName() string {
	n := fmt.Sprintf("t%d", f.nextName)
	f.nextName++
	return n
}

// ClaimName records that name is in use, so FreshName never returns it.
// The parser uses this to honour source-level names like "t12".
func (f *Func) ClaimName(name string) {
	var n int
	if _, err := fmt.Sscanf(name, "t%d", &n); err == nil && n >= f.nextName {
		f.nextName = n + 1
	}
}

// Renumber refreshes Block.Index to match position in f.Blocks.
func (f *Func) Renumber() {
	for i, b := range f.Blocks {
		b.Index = i
	}
}

// NumValues returns an upper bound on value IDs (for dense ID-indexed
// side tables).
func (f *Func) NumValues() int { return f.nextID }

// RemoveUnreachable deletes blocks not reachable from the entry, patching
// predecessor lists and φ arguments of surviving blocks.
func (f *Func) RemoveUnreachable() {
	reached := map[*Block]bool{}
	var stack []*Block
	stack = append(stack, f.Entry())
	reached[f.Entry()] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !reached[s] {
				reached[s] = true
				stack = append(stack, s)
			}
		}
	}
	var kept []*Block
	for _, b := range f.Blocks {
		if !reached[b] {
			for _, s := range b.Succs {
				if reached[s] {
					s.RemovePred(b)
				}
			}
			continue
		}
		kept = append(kept, b)
	}
	f.Blocks = kept
	f.Renumber()
}

// GlobalVar is a module-level variable occupying Size words; Init, if
// shorter than Size, is zero-extended.
type GlobalVar struct {
	Name string
	Size int64
	Init []int64
}

// Module is a set of functions and global variables.
type Module struct {
	Funcs   []*Func
	Globals []*GlobalVar
}

// NewModule returns an empty module.
func NewModule() *Module { return &Module{} }

// NewFunc creates a function with the given parameter types and appends it
// to the module. Parameters are materialized as OpParam instructions in a
// fresh entry block.
func (m *Module) NewFunc(name string, result Type, paramTypes ...Type) *Func {
	f := &Func{Name: name, ResultType: result, Module: m}
	entry := f.NewBlock()
	for i, pt := range paramTypes {
		p := f.NewValue(OpParam, pt)
		p.ConstInt = int64(i)
		p.Block = entry
		entry.Instrs = append(entry.Instrs, p)
		f.Params = append(f.Params, p)
	}
	m.Funcs = append(m.Funcs, f)
	return f
}

// Func returns the function named name, or nil.
func (m *Module) Func(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the global named name, or nil.
func (m *Module) Global(name string) *GlobalVar {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// AddGlobal declares a global variable of size words.
func (m *Module) AddGlobal(name string, size int64, init []int64) *GlobalVar {
	g := &GlobalVar{Name: name, Size: size, Init: init}
	m.Globals = append(m.Globals, g)
	return g
}

// SortFuncs orders functions by name, for deterministic output.
func (m *Module) SortFuncs() {
	sort.Slice(m.Funcs, func(i, j int) bool { return m.Funcs[i].Name < m.Funcs[j].Name })
}
