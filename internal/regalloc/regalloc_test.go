package regalloc

import (
	"errors"
	"testing"

	"idemproc/internal/isa"
)

// straightLine builds a single-block VFunc from the given instructions.
func straightLine(numVRegs int, floats []bool, instrs ...VInstr) *VFunc {
	if floats == nil {
		floats = make([]bool, numVRegs)
	}
	return &VFunc{
		Name:     "t",
		Blocks:   []VBlock{{Instrs: instrs}},
		NumVRegs: numVRegs,
		FloatReg: floats,
	}
}

func movi(rd VReg) VInstr {
	return VInstr{Op: isa.MOVI, Rd: rd, Rs1: NoVReg, Rs2: NoVReg}
}
func add(rd, a, b VReg) VInstr {
	return VInstr{Op: isa.ADD, Rd: rd, Rs1: a, Rs2: b}
}
func ret(v VReg) VInstr {
	return VInstr{Kind: KRet, Rd: NoVReg, Rs1: v, Rs2: NoVReg}
}

func TestSimpleAssignment(t *testing.T) {
	vf := straightLine(3, nil, movi(0), movi(1), add(2, 0, 1), ret(2))
	as, err := Allocate(vf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		if as.Spilled[v] {
			t.Fatalf("vreg %d spilled with plenty of registers", v)
		}
	}
	// Values 0 and 1 are simultaneously live: distinct registers.
	if as.RegOf[0] == as.RegOf[1] {
		t.Fatal("overlapping intervals share a register")
	}
}

func TestRegisterReuseAfterDeath(t *testing.T) {
	// v0 dies at the add; v3 can reuse its register.
	vf := straightLine(4, nil,
		movi(0), movi(1), add(2, 0, 1), movi(3), add(3, 3, 2), ret(3))
	as, err := Allocate(vf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if as.FrameSlots != 0 {
		t.Fatal("nothing should spill")
	}
}

func TestSpillUnderPressure(t *testing.T) {
	// 14 concurrently-live integer vregs > 11 allocatable registers.
	n := 14
	var ins []VInstr
	for i := 0; i < n; i++ {
		ins = append(ins, movi(VReg(i)))
	}
	acc := VReg(n)
	ins = append(ins, movi(acc))
	for i := 0; i < n; i++ {
		ins = append(ins, add(acc, acc, VReg(i)))
	}
	ins = append(ins, ret(acc))
	vf := straightLine(n+1, nil, ins...)
	as, err := Allocate(vf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spilled := 0
	for v := 0; v <= n; v++ {
		if as.Spilled[v] {
			spilled++
		}
	}
	if spilled == 0 {
		t.Fatal("pressure must cause spills")
	}
	if as.FrameSlots != spilled {
		t.Fatalf("FrameSlots = %d, spilled = %d", as.FrameSlots, spilled)
	}
	// No two register-allocated, simultaneously-live vregs share.
	seen := map[isa.Reg]VReg{}
	for v := 0; v < n; v++ { // all of 0..n-1 are simultaneously live
		if as.Spilled[VReg(v)] {
			continue
		}
		if prev, dup := seen[as.RegOf[v]]; dup {
			t.Fatalf("vregs %d and %d share %v while both live", prev, v, as.RegOf[v])
		}
		seen[as.RegOf[v]] = VReg(v)
	}
}

func TestFloatPoolSeparate(t *testing.T) {
	floats := []bool{false, true}
	vf := straightLine(2, floats,
		movi(0),
		VInstr{Op: isa.FMOVI, Rd: 1, Rs1: NoVReg, Rs2: NoVReg},
		ret(0))
	as, err := Allocate(vf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if as.RegOf[1].IsFloat() == false {
		t.Fatal("float vreg got an integer register")
	}
	if as.RegOf[0].IsFloat() {
		t.Fatal("int vreg got a float register")
	}
}

func TestCallForcesSpill(t *testing.T) {
	vf := straightLine(2, nil,
		movi(0),
		VInstr{Kind: KCall, Rd: NoVReg, Rs1: NoVReg, Rs2: NoVReg, Sym: "g"},
		add(1, 0, 0),
		ret(1))
	as, err := Allocate(vf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !as.Spilled[0] {
		t.Fatal("value live across a call must be spilled (all registers caller-saved)")
	}
}

func TestRegionLiveInExtension(t *testing.T) {
	// v0 is live-in to a region whose span covers the def of v1; without
	// the §4.4 extension v1 could reuse v0's register after v0's last
	// use. With Idempotent on, they must differ.
	ins := []VInstr{
		movi(0), // pos 0
		{Kind: KMark, Rd: NoVReg, Rs1: NoVReg, Rs2: NoVReg}, // pos 1: region header
		add(1, 0, 0), // pos 2: last use of v0
		movi(2),      // pos 3
		add(3, 1, 2), // pos 4
		ret(3),       // pos 5
	}
	mk := func(idem bool, regions []Region) (*Assignment, error) {
		vf := straightLine(4, nil, ins...)
		vf.Regions = regions
		return Allocate(vf, Options{Idempotent: idem})
	}
	// With the ret inside the region, the return value is staged through
	// r0 while v0 — live-in and hull-extended over the whole region —
	// occupies it: Allocate must report the conflict so codegen can cut
	// before the ret.
	_, err := mk(true, []Region{{Header: 1, Positions: []int{2, 3, 4, 5}}})
	var viol *LiveInViolation
	if !errors.As(err, &viol) {
		t.Fatalf("expected ret-staging LiveInViolation, got %v", err)
	}
	if viol.DefPos != 5 || viol.Header != 1 {
		t.Fatalf("ret-staging violation = %+v", viol)
	}
	// After the repair cut, the ret sits in its own region and allocation
	// succeeds; v0 live-in at the mark: its register must not be reused
	// by v2 or v3, whose intervals lie inside the region.
	as, err := mk(true, []Region{
		{Header: 1, Positions: []int{2, 3, 4}},
		{Header: 5, Positions: []int{5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []VReg{2, 3} {
		if !as.Spilled[v] && !as.Spilled[0] && as.RegOf[v] == as.RegOf[0] {
			t.Fatalf("vreg %d reuses the live-in's register inside the region", v)
		}
	}
}

func TestLiveInViolationDetected(t *testing.T) {
	// v0 is live-in to the region (used at pos 2) and redefined at pos 3
	// inside it: the §4.2.2 guarantee is broken and must be reported.
	ins := []VInstr{
		movi(0),
		{Kind: KMark, Rd: NoVReg, Rs1: NoVReg, Rs2: NoVReg},
		add(1, 0, 0),
		movi(0), // redefinition of a live-in... but v0 is dead here
		ret(1),
	}
	// Make v0 genuinely live-in AND redefined: use it again after.
	ins = append(ins[:4:4], add(2, 0, 0), ret(2))
	vf := straightLine(3, nil, ins...)
	vf.Blocks[0].Instrs[3] = movi(0)
	vf.Regions = []Region{{Header: 1, Positions: []int{2, 3, 4, 5}}}
	_, err := Allocate(vf, Options{Idempotent: true})
	var viol *LiveInViolation
	if !errors.As(err, &viol) {
		t.Fatalf("expected LiveInViolation, got %v", err)
	}
	if viol.DefPos != 3 || viol.Header != 1 {
		t.Fatalf("violation = %+v", viol)
	}
}

func TestUsesHelper(t *testing.T) {
	in := VInstr{Kind: KCall, Rd: 5, Rs1: NoVReg, Rs2: NoVReg, Args: []VReg{1, 2}}
	var buf []VReg
	buf = in.Uses(buf)
	if len(buf) != 2 || buf[0] != 1 || buf[1] != 2 {
		t.Fatalf("Uses = %v", buf)
	}
}
