package regalloc

import (
	"fmt"
	"strings"

	"idemproc/internal/isa"
)

// DebugDump renders the virtual code with positions, the regions, the
// per-region live-ins, and (if as != nil) the allocation — a diagnostic
// for the §4.4 machinery.
func DebugDump(vf *VFunc, as *Assignment) string {
	lin, blockStart := linearize(vf)
	live := liveness(vf, lin, blockStart)
	var b strings.Builder
	fmt.Fprintf(&b, "func %s: %d vregs\n", vf.Name, vf.NumVRegs)
	loc := func(v VReg) string {
		if v == NoVReg {
			return "-"
		}
		if as == nil {
			return fmt.Sprintf("v%d", v)
		}
		if as.Spilled[v] {
			return fmt.Sprintf("v%d[slot%d]", v, as.SlotOf[v])
		}
		return fmt.Sprintf("v%d(%s)", v, as.RegOf[v])
	}
	for pos, ref := range lin {
		in := instrAt(vf, ref)
		kind := ""
		switch in.Kind {
		case KMark:
			kind = "MARK"
		case KCall:
			kind = "CALL " + in.Sym
		case KRet:
			kind = "RET"
		case KParam:
			kind = fmt.Sprintf("PARAM %d", in.Imm)
		case KAlloca:
			kind = "ALLOCA"
		default:
			kind = in.Op.String()
		}
		fmt.Fprintf(&b, "%5d: %-12s rd=%-12s rs1=%-12s rs2=%-12s\n", pos, kind, loc(in.Rd), loc(in.Rs1), loc(in.Rs2))
	}
	for _, r := range vf.Regions {
		min, max := r.Header, r.Header
		for _, p := range r.Positions {
			if p < min {
				min = p
			}
			if p > max {
				max = p
			}
		}
		fmt.Fprintf(&b, "region header=%d span=[%d,%d] size=%d live-in:", r.Header, min, max, len(r.Positions))
		for _, v := range live[r.Header].order {
			fmt.Fprintf(&b, " %s", loc(v))
		}
		b.WriteString("\n")
	}
	_ = isa.R0
	return b.String()
}
