// Package regalloc assigns physical registers and spill slots to virtual
// registers by linear scan, and implements the paper's §4.4 code
// generation constraint: every pseudoregister live-in to an idempotent
// region is kept live-out of it, so region inputs are never overwritten
// and no artificial clobber antidependence re-emerges.
//
// The input is virtual machine code (package codegen builds it): a CFG of
// VInstrs over an unbounded set of typed virtual registers. The allocator
// computes per-instruction liveness, builds conservative live intervals,
// extends the interval of every region live-in to the end of its region
// (the §4.4 rule), spills what does not fit — including everything live
// across a call, as all registers are caller-saved — and returns the
// assignment. It also checks the §4.2.2 guarantee mechanically: a virtual
// register that is live-in to a region must not be redefined inside it.
package regalloc

import (
	"fmt"
	"sort"

	"idemproc/internal/isa"
)

// VReg is a virtual register id. The zero value is reserved (NoVReg-1
// arithmetic is never needed; -1 marks absence).
type VReg int

// NoVReg marks an unused operand slot.
const NoVReg VReg = -1

// Kind discriminates pseudo-instructions from plain ops.
type Kind uint8

const (
	// KNormal is a plain machine operation on virtual registers.
	KNormal Kind = iota
	// KCall is a call pseudo-op: Args are passed per the calling
	// convention, Rd (if any) receives the result.
	KCall
	// KRet is a return pseudo-op: Rs1 (if any) is the return value.
	KRet
	// KMark opens an idempotent region.
	KMark
	// KParam defines Rd as the Imm'th incoming parameter (expanded into a
	// move from the argument register at the physical stage).
	KParam
	// KAlloca defines Rd as the address of the frame's alloca area plus
	// Imm words.
	KAlloca
)

// VInstr is a virtual-register machine instruction.
type VInstr struct {
	Kind Kind
	Op   isa.Op
	// Rd is the defined vreg (NoVReg if none); Rs1/Rs2 the sources.
	Rd, Rs1, Rs2 VReg
	Imm          int64
	FImm         float64
	Sym          string
	// Target is the destination block index for branches.
	Target int
	// Target2 is the fallthrough/else block for two-way branches.
	Target2 int
	// Args are call arguments in order.
	Args []VReg
}

// Uses appends the vregs read by the instruction to dst.
func (v *VInstr) Uses(dst []VReg) []VReg {
	if v.Rs1 != NoVReg {
		dst = append(dst, v.Rs1)
	}
	if v.Rs2 != NoVReg {
		dst = append(dst, v.Rs2)
	}
	for _, a := range v.Args {
		dst = append(dst, a)
	}
	return dst
}

// VBlock is a basic block of virtual code.
type VBlock struct {
	Instrs []VInstr
	Succs  []int
}

// VFunc is a function of virtual code plus the metadata the allocator
// needs.
type VFunc struct {
	Name   string
	Blocks []VBlock
	// NumVRegs bounds vreg ids; FloatReg[v] marks float vregs.
	NumVRegs int
	FloatReg []bool
	// Params lists the parameter vregs in declaration order.
	Params []VReg
	// AllocaSlots is the number of frame words reserved for allocas
	// (codegen references them via SP before allocation).
	AllocaSlots int
	// Regions lists the idempotent regions (nil for a conventional,
	// non-idempotent compile).
	Regions []Region
}

// Region is an idempotent region at the virtual-code level: its header
// position and the set of instruction positions it contains. Positions
// are global linear indices (block order, instruction order).
type Region struct {
	Header    int
	Positions []int
}

// Assignment is the allocator's result.
type Assignment struct {
	// RegOf[v] is the physical register of vreg v, valid if !Spilled[v].
	RegOf []isa.Reg
	// Spilled[v] marks stack-allocated vregs; SlotOf[v] is the frame slot
	// (word offset from SP, after the alloca area).
	Spilled []bool
	SlotOf  []int
	// FrameSlots is the number of spill slots used (frame layout:
	// [saved lr][allocas][spill slots]).
	FrameSlots int
	// SpillLoads and SpillStores estimate the code-size cost (for stats).
	SpillLoads, SpillStores int
}

// Options configure the allocation.
type Options struct {
	// Idempotent enables the §4.4 live-in-preservation constraint over
	// VFunc.Regions.
	Idempotent bool
}

// LiveInViolation reports a region live-in redefined inside its region —
// an artificial clobber the current cut placement cannot allocate away.
// Codegen repairs it by starting a new region at DefPos.
type LiveInViolation struct {
	Func   string
	VReg   VReg
	Header int
	DefPos int
}

func (e *LiveInViolation) Error() string {
	return fmt.Sprintf("regalloc: %s: vreg %d live-in to region@%d is redefined at %d",
		e.Func, e.VReg, e.Header, e.DefPos)
}

// Allocatable register pools. r0..r10 for integers (r11/r12 are spill
// scratch, r13..r15 are sp/lr/rp); f0..f29 for floats (f30/f31 scratch).
var (
	intPool   []isa.Reg
	floatPool []isa.Reg
)

func init() {
	for r := isa.R0; r <= isa.R10; r++ {
		intPool = append(intPool, r)
	}
	for i := 0; i < 30; i++ {
		floatPool = append(floatPool, isa.F(i))
	}
}

// interval is a conservative live range over linear positions.
type interval struct {
	vreg       VReg
	start, end int
	float      bool
	spill      bool
}

// Allocate runs linear scan over vf.
func Allocate(vf *VFunc, opts Options) (*Assignment, error) {
	lin, blockStart := linearize(vf)
	live := liveness(vf, lin, blockStart)

	// Build intervals.
	iv := make([]*interval, vf.NumVRegs)
	touch := func(v VReg, pos int) {
		if v == NoVReg {
			return
		}
		it := iv[v]
		if it == nil {
			it = &interval{vreg: v, start: pos, end: pos, float: vf.FloatReg[v]}
			iv[v] = it
			return
		}
		if pos < it.start {
			it.start = pos
		}
		if pos > it.end {
			it.end = pos
		}
	}
	var uses []VReg
	for pos, ref := range lin {
		in := instrAt(vf, ref)
		touch(in.Rd, pos)
		uses = uses[:0]
		uses = in.Uses(uses)
		for _, u := range uses {
			touch(u, pos)
		}
		// Anything live at this position extends across it.
		for _, v := range live[pos].order {
			touch(v, pos)
		}
	}

	// §4.4: extend every region live-in to the region's last position,
	// and verify it is not redefined inside the region.
	if opts.Idempotent {
		defPos := make([][]int, vf.NumVRegs)
		for pos, ref := range lin {
			if d := instrAt(vf, ref).Rd; d != NoVReg {
				defPos[d] = append(defPos[d], pos)
			}
		}
		for _, r := range vf.Regions {
			maxPos, minPos := r.Header, r.Header
			inRegion := map[int]bool{}
			for _, p := range r.Positions {
				inRegion[p] = true
				if p > maxPos {
					maxPos = p
				}
				if p < minPos {
					minPos = p
				}
			}
			for _, v := range live[r.Header].order {
				if iv[v] == nil {
					continue
				}
				// The live-in's storage must be untouched over the WHOLE
				// region, including positions below the header when the
				// region wraps a loop back edge — re-execution may pass
				// through them before the live-in's (re-)uses.
				if iv[v].end < maxPos {
					iv[v].end = maxPos
				}
				if iv[v].start > minPos {
					iv[v].start = minPos
				}
				// The §4.2.2 guarantee: live-ins must never be redefined
				// inside their region. Loop-carried φ values can violate
				// this when region boundaries land awkwardly relative to
				// the φ copy cluster (our linear-scan allocator does not
				// double-buffer à la Fig. 7c); the violation is reported
				// structurally so codegen can repair it with an extra cut
				// before the offending definition and retry.
				for _, pos := range defPos[v] {
					if pos != r.Header && inRegion[pos] {
						return nil, &LiveInViolation{Func: vf.Name, VReg: v, Header: r.Header, DefPos: pos}
					}
				}
			}
		}
	}

	// Everything live across a call is spilled (all registers are
	// caller-saved), as are call arguments and results (so the call
	// expansion can move them without conflicting with the allocation).
	for pos, ref := range lin {
		in := instrAt(vf, ref)
		if in.Kind != KCall {
			continue
		}
		for _, it := range iv {
			if it != nil && it.start < pos && it.end > pos {
				it.spill = true
			}
		}
		for _, a := range in.Args {
			if iv[a] != nil {
				iv[a].spill = true
			}
		}
		if in.Rd != NoVReg && iv[in.Rd] != nil {
			iv[in.Rd].spill = true
		}
	}

	// Linear scan.
	var list []*interval
	for _, it := range iv {
		if it != nil {
			list = append(list, it)
		}
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].start != list[j].start {
			return list[i].start < list[j].start
		}
		return list[i].vreg < list[j].vreg
	})

	as := &Assignment{
		RegOf:   make([]isa.Reg, vf.NumVRegs),
		Spilled: make([]bool, vf.NumVRegs),
		SlotOf:  make([]int, vf.NumVRegs),
	}
	type active struct {
		it  *interval
		reg isa.Reg
	}
	var actInt, actFloat []active
	freeInt := append([]isa.Reg{}, intPool...)
	freeFloat := append([]isa.Reg{}, floatPool...)
	nextSlot := 0

	spill := func(it *interval) {
		as.Spilled[it.vreg] = true
		as.SlotOf[it.vreg] = nextSlot
		nextSlot++
	}
	expire := func(act []active, free []isa.Reg, pos int) ([]active, []isa.Reg) {
		kept := act[:0]
		for _, a := range act {
			if a.it.end < pos {
				free = append(free, a.reg)
			} else {
				kept = append(kept, a)
			}
		}
		return kept, free
	}

	for _, it := range list {
		actInt, freeInt = expire(actInt, freeInt, it.start)
		actFloat, freeFloat = expire(actFloat, freeFloat, it.start)
		if it.spill {
			spill(it)
			continue
		}
		act, free := &actInt, &freeInt
		if it.float {
			act, free = &actFloat, &freeFloat
		}
		if len(*free) == 0 {
			// Spill the interval that ends last (Poletto & Sarkar).
			victim := it
			vi := -1
			for i, a := range *act {
				if a.it.end > victim.end {
					victim = a.it
					vi = i
				}
			}
			if vi >= 0 {
				reg := (*act)[vi].reg
				*act = append((*act)[:vi], (*act)[vi+1:]...)
				spill(victim)
				as.RegOf[it.vreg] = reg
				*act = append(*act, active{it, reg})
			} else {
				spill(it)
			}
			continue
		}
		reg := (*free)[0]
		*free = (*free)[1:]
		as.RegOf[it.vreg] = reg
		*act = append(*act, active{it, reg})
	}

	as.FrameSlots = nextSlot
	// Spill traffic estimate.
	for pos, ref := range lin {
		_ = pos
		in := instrAt(vf, ref)
		uses = uses[:0]
		uses = in.Uses(uses)
		for _, u := range uses {
			if as.Spilled[u] {
				as.SpillLoads++
			}
		}
		if in.Rd != NoVReg && as.Spilled[in.Rd] {
			as.SpillStores++
		}
	}

	// §4.4 addendum: the KRet expansion stages the return value through
	// physical r0/f0 — a write the interference model never sees as a
	// def. A region live-in occupying that register while its region
	// contains a value-returning ret would be clobbered before the region
	// commits (re-execution after a post-ret fault would then re-read the
	// staged value, e.g. as a store address). Report it like any other
	// live-in redefinition so codegen cuts before the ret and retries;
	// the ret's own region has only the return value live-in, so one cut
	// always suffices.
	if opts.Idempotent {
		for _, r := range vf.Regions {
			retPos, retV := -1, NoVReg
			for _, p := range r.Positions {
				if in := instrAt(vf, lin[p]); in.Kind == KRet && in.Rs1 != NoVReg {
					if retPos < 0 || p < retPos {
						retPos, retV = p, in.Rs1
					}
				}
			}
			if retPos < 0 {
				continue
			}
			retReg := isa.R0
			if vf.FloatReg[retV] {
				retReg = isa.F(0)
			}
			for _, v := range live[r.Header].order {
				if v == retV || iv[v] == nil || as.Spilled[v] || as.RegOf[v] != retReg {
					continue
				}
				return nil, &LiveInViolation{Func: vf.Name, VReg: v, Header: r.Header, DefPos: retPos}
			}
		}
	}
	return as, nil
}

// instrRef locates an instruction by block and index.
type instrRef struct{ b, i int }

func instrAt(vf *VFunc, r instrRef) *VInstr { return &vf.Blocks[r.b].Instrs[r.i] }

// linearize flattens the CFG into a position-indexed list and records
// each block's starting position.
func linearize(vf *VFunc) ([]instrRef, []int) {
	var lin []instrRef
	blockStart := make([]int, len(vf.Blocks))
	for b := range vf.Blocks {
		blockStart[b] = len(lin)
		for i := range vf.Blocks[b].Instrs {
			lin = append(lin, instrRef{b, i})
		}
	}
	return lin, blockStart
}

// liveSet is an ordered set of vregs (deterministic iteration).
type liveSet struct {
	has   map[VReg]bool
	order []VReg
}

func (s *liveSet) add(v VReg) bool {
	if s.has == nil {
		s.has = map[VReg]bool{}
	}
	if s.has[v] {
		return false
	}
	s.has[v] = true
	s.order = append(s.order, v)
	return true
}

// liveness computes, for every linear position, the set of vregs live
// immediately BEFORE that instruction.
func liveness(vf *VFunc, lin []instrRef, blockStart []int) []liveSet {
	n := len(vf.Blocks)
	liveIn := make([]map[VReg]bool, n)
	liveOut := make([]map[VReg]bool, n)
	use := make([]map[VReg]bool, n)
	def := make([]map[VReg]bool, n)
	var buf []VReg
	for b := range vf.Blocks {
		u, d := map[VReg]bool{}, map[VReg]bool{}
		for i := range vf.Blocks[b].Instrs {
			in := &vf.Blocks[b].Instrs[i]
			buf = buf[:0]
			buf = in.Uses(buf)
			for _, s := range buf {
				if !d[s] {
					u[s] = true
				}
			}
			if in.Rd != NoVReg {
				d[in.Rd] = true
			}
		}
		use[b], def[b] = u, d
		liveIn[b], liveOut[b] = map[VReg]bool{}, map[VReg]bool{}
	}
	for changed := true; changed; {
		changed = false
		for b := n - 1; b >= 0; b-- {
			for _, s := range vf.Blocks[b].Succs {
				for v := range liveIn[s] {
					if !liveOut[b][v] {
						liveOut[b][v] = true
						changed = true
					}
				}
			}
			for v := range use[b] {
				if !liveIn[b][v] {
					liveIn[b][v] = true
					changed = true
				}
			}
			for v := range liveOut[b] {
				if !def[b][v] && !liveIn[b][v] {
					liveIn[b][v] = true
					changed = true
				}
			}
		}
	}

	// Per-position liveness within each block, walking backward.
	out := make([]liveSet, len(lin))
	for b := range vf.Blocks {
		cur := map[VReg]bool{}
		for v := range liveOut[b] {
			cur[v] = true
		}
		instrs := vf.Blocks[b].Instrs
		sets := make([][]VReg, len(instrs))
		for i := len(instrs) - 1; i >= 0; i-- {
			in := &instrs[i]
			if in.Rd != NoVReg {
				delete(cur, in.Rd)
			}
			buf = buf[:0]
			buf = in.Uses(buf)
			for _, s := range buf {
				cur[s] = true
			}
			lst := make([]VReg, 0, len(cur))
			for v := range cur {
				lst = append(lst, v)
			}
			sort.Slice(lst, func(x, y int) bool { return lst[x] < lst[y] })
			sets[i] = lst
		}
		for i := range instrs {
			pos := blockStart[b] + i
			for _, v := range sets[i] {
				out[pos].add(v)
			}
		}
	}
	return out
}
