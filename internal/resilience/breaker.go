package resilience

import (
	"sync"
	"time"
)

// breaker is a classic three-state circuit breaker. Closed passes all
// traffic; Threshold consecutive retryable failures open it; after
// Cooldown one probe is admitted (half-open) and its outcome decides
// between re-closing and re-opening. State transitions are driven
// entirely by allow/record, so a fake clock makes the whole lifecycle
// unit-testable without sleeping.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // swappable for tests

	mu          sync.Mutex
	state       string // "closed", "open", "half-open"
	consecutive int
	openedAt    time.Time
	opens       int64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now, state: "closed"}
}

// allow reports whether a request may proceed. When the breaker is open
// and the cooldown has not elapsed, it returns (remaining wait, false);
// the caller sleeps and asks again rather than failing the request —
// idempotent re-execution is cheap, losing a request is not. When the
// cooldown has elapsed the breaker flips to half-open and admits the
// caller as the probe.
func (b *breaker) allow() (time.Duration, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case "open":
		elapsed := b.now().Sub(b.openedAt)
		if elapsed < b.cooldown {
			return b.cooldown - elapsed, false
		}
		b.state = "half-open"
		return 0, true
	default:
		// closed and half-open both admit; concurrent extra probes in
		// half-open are tolerated (their outcomes just feed record too).
		return 0, true
	}
}

// record feeds an outcome back. Only retryable failures count: a 400 is
// the caller's bug, not server sickness, and must not open the circuit.
func (b *breaker) record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.consecutive = 0
		b.state = "closed"
		return
	}
	b.consecutive++
	if b.state == "half-open" || b.consecutive >= b.threshold {
		if b.state != "open" {
			b.opens++
		}
		b.state = "open"
		b.openedAt = b.now()
	}
}

// State names the current state for metrics ("closed", "open",
// "half-open").
func (b *breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens counts closed->open transitions.
func (b *breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// ready is the non-mutating peek behind Client.Ready: it reports
// whether allow would admit a request right now, without flipping an
// open breaker to half-open (the probe slot is only consumed by a
// caller that actually intends to send).
func (b *breaker) ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != "open" {
		return true
	}
	return b.now().Sub(b.openedAt) >= b.cooldown
}
