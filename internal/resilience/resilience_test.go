package resilience

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// instantClient returns a client whose backoff sleeps don't really
// sleep, so retry-loop tests run in microseconds.
func instantClient(p Policy) *Client {
	c := NewClient(p)
	c.sleep = func(ctx context.Context, _ time.Duration) error { return ctx.Err() }
	return c
}

func TestRetryAfterTransientFailure(t *testing.T) {
	var calls atomic.Int64
	attempt := func(context.Context) (int, []byte, error) {
		if calls.Add(1) < 3 {
			return 500, nil, nil
		}
		return 200, []byte("ok"), nil
	}
	c := instantClient(Policy{MaxRetries: 4, Seed: 1})
	res, err := c.Do(context.Background(), 7, attempt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 200 || string(res.Body) != "ok" {
		t.Fatalf("got %d %q", res.Status, res.Body)
	}
	if got := c.Counters().Retries; got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	attempt := func(context.Context) (int, []byte, error) {
		return 0, nil, errors.New("connection reset")
	}
	c := instantClient(Policy{MaxRetries: 3, Seed: 1})
	_, err := c.Do(context.Background(), 1, attempt)
	if err == nil {
		t.Fatal("want permanent failure")
	}
	s := c.Counters()
	if s.Attempts != 4 || s.Failures != 1 {
		t.Errorf("attempts=%d failures=%d, want 4/1", s.Attempts, s.Failures)
	}
}

func TestNonRetryable4xxReturnsImmediately(t *testing.T) {
	var calls atomic.Int64
	attempt := func(context.Context) (int, []byte, error) {
		calls.Add(1)
		return 400, []byte(`{"error":"bad"}`), nil
	}
	c := instantClient(Policy{MaxRetries: 5, Seed: 1})
	res, err := c.Do(context.Background(), 1, attempt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 400 || calls.Load() != 1 {
		t.Errorf("status=%d calls=%d, want 400 after exactly 1 call", res.Status, calls.Load())
	}
}

func TestHedgeWinsSlowPrimary(t *testing.T) {
	var calls atomic.Int64
	attempt := func(ctx context.Context) (int, []byte, error) {
		if calls.Add(1) == 1 {
			// Slow primary: the hedge should beat it.
			select {
			case <-time.After(2 * time.Second):
			case <-ctx.Done():
			}
			return 200, []byte("slow"), nil
		}
		return 200, []byte("slow"), nil
	}
	c := NewClient(Policy{HedgeAfter: 5 * time.Millisecond, Seed: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := c.Do(ctx, 1, attempt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hedged {
		t.Error("winner was not the hedge")
	}
	s := c.Counters()
	if s.Hedges != 1 || s.HedgeWins != 1 {
		t.Errorf("hedges=%d wins=%d, want 1/1", s.Hedges, s.HedgeWins)
	}
}

func TestVerifyIdenticalCatchesDivergence(t *testing.T) {
	var calls atomic.Int64
	attempt := func(ctx context.Context) (int, []byte, error) {
		n := calls.Add(1)
		if n == 1 {
			time.Sleep(20 * time.Millisecond)
			return 200, []byte("version-A"), nil
		}
		return 200, []byte("version-B"), nil
	}
	c := NewClient(Policy{HedgeAfter: 2 * time.Millisecond, VerifyIdentical: true, Seed: 1})
	_, err := c.Do(context.Background(), 1, attempt)
	if !errors.Is(err, ErrDivergent) {
		t.Fatalf("err = %v, want ErrDivergent", err)
	}
	if got := c.Counters().Mismatches; got != 1 {
		t.Errorf("mismatches = %d, want 1", got)
	}
}

func TestVerifyIdenticalPassesWhenEqual(t *testing.T) {
	attempt := func(ctx context.Context) (int, []byte, error) {
		time.Sleep(5 * time.Millisecond)
		return 200, []byte("same"), nil
	}
	c := NewClient(Policy{HedgeAfter: time.Millisecond, VerifyIdentical: true, Seed: 1})
	res, err := c.Do(context.Background(), 1, attempt)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Body) != "same" || c.Counters().Mismatches != 0 {
		t.Errorf("body=%q mismatches=%d", res.Body, c.Counters().Mismatches)
	}
}

func TestDeterministicBackoff(t *testing.T) {
	p := Policy{MaxRetries: 5, Seed: 42, BaseBackoff: 10 * time.Millisecond, MaxBackoff: time.Second}
	a, b := NewClient(p), NewClient(p)
	for try := 1; try <= 5; try++ {
		da, db := a.backoff(9, try), b.backoff(9, try)
		if da != db {
			t.Fatalf("try %d: %v vs %v — backoff not seed-deterministic", try, da, db)
		}
		base := p.BaseBackoff << (try - 1)
		if base > p.MaxBackoff {
			base = p.MaxBackoff
		}
		if da < base/2 || da >= base {
			t.Errorf("try %d: jittered delay %v outside [%v, %v)", try, da, base/2, base)
		}
	}
	// A different seed must produce a different schedule somewhere.
	c := NewClient(Policy{MaxRetries: 5, Seed: 43, BaseBackoff: 10 * time.Millisecond, MaxBackoff: time.Second})
	diff := false
	for try := 1; try <= 5; try++ {
		if a.backoff(9, try) != c.backoff(9, try) {
			diff = true
		}
	}
	if !diff {
		t.Error("seeds 42 and 43 produced identical jitter schedules")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b := newBreaker(3, 100*time.Millisecond)
	clock := time.Unix(0, 0)
	b.now = func() time.Time { return clock }

	if _, ok := b.allow(); !ok {
		t.Fatal("closed breaker rejected a request")
	}
	b.record(false)
	b.record(false)
	if b.State() != "closed" {
		t.Fatalf("state after 2 failures = %s", b.State())
	}
	b.record(false)
	if b.State() != "open" || b.Opens() != 1 {
		t.Fatalf("state after threshold = %s opens=%d", b.State(), b.Opens())
	}
	if wait, ok := b.allow(); ok || wait != 100*time.Millisecond {
		t.Fatalf("open breaker: wait=%v ok=%v", wait, ok)
	}

	// Cooldown elapses: one probe admitted, half-open.
	clock = clock.Add(150 * time.Millisecond)
	if _, ok := b.allow(); !ok {
		t.Fatal("cooldown elapsed but probe rejected")
	}
	if b.State() != "half-open" {
		t.Fatalf("state = %s, want half-open", b.State())
	}

	// Probe fails: back to open immediately.
	b.record(false)
	if b.State() != "open" || b.Opens() != 2 {
		t.Fatalf("failed probe: state=%s opens=%d", b.State(), b.Opens())
	}

	// Second probe succeeds: closed again, full threshold restored.
	clock = clock.Add(150 * time.Millisecond)
	if _, ok := b.allow(); !ok {
		t.Fatal("second probe rejected")
	}
	b.record(true)
	if b.State() != "closed" {
		t.Fatalf("state after good probe = %s", b.State())
	}
}

func TestBreakerShortCircuitDoesNotBurnRetries(t *testing.T) {
	// Server is sick for the first 5 calls, then recovers. With the
	// breaker opening at 2, the client must still converge to success
	// without exhausting MaxRetries on short-circuits.
	var calls atomic.Int64
	attempt := func(context.Context) (int, []byte, error) {
		if calls.Add(1) <= 5 {
			return 503, nil, nil
		}
		return 200, []byte("recovered"), nil
	}
	// Real sleeps (tiny ones): the breaker cooldown is wall-clock, so an
	// instant sleep would spin through the short-circuit cap instead of
	// waiting out the cooldown.
	c := NewClient(Policy{
		MaxRetries:       8,
		Seed:             1,
		BaseBackoff:      100 * time.Microsecond,
		MaxBackoff:       500 * time.Microsecond,
		BreakerThreshold: 2,
		BreakerCooldown:  2 * time.Millisecond,
	})
	res, err := c.Do(context.Background(), 1, attempt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 200 {
		t.Fatalf("status = %d", res.Status)
	}
	s := c.Counters()
	if s.ShortCircuits == 0 {
		t.Error("breaker never short-circuited despite opening")
	}
	if s.BreakerState != "closed" {
		t.Errorf("final breaker state = %s", s.BreakerState)
	}
}

func TestContextCancellationStopsRetries(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	attempt := func(context.Context) (int, []byte, error) {
		if calls.Add(1) == 2 {
			cancel()
		}
		return 500, nil, nil
	}
	c := NewClient(Policy{MaxRetries: 100, Seed: 1, BaseBackoff: time.Millisecond})
	_, err := c.Do(ctx, 1, attempt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() > 3 {
		t.Errorf("kept retrying after cancellation: %d calls", calls.Load())
	}
}

func TestReadyPeeksWithoutConsumingProbe(t *testing.T) {
	c := NewClient(Policy{BreakerThreshold: 2, BreakerCooldown: 100 * time.Millisecond})
	clock := time.Unix(0, 0)
	c.breaker.now = func() time.Time { return clock }

	if !c.Ready() {
		t.Fatal("fresh breaker not ready")
	}
	c.breaker.record(false)
	c.breaker.record(false)
	if c.Ready() {
		t.Fatal("open breaker within cooldown reported ready")
	}
	if c.breaker.State() != "open" {
		t.Fatalf("state = %s after Ready peek, want open (peek must not mutate)", c.breaker.State())
	}

	clock = clock.Add(150 * time.Millisecond)
	if !c.Ready() {
		t.Fatal("cooldown elapsed but not ready")
	}
	// The peek must not consume the half-open probe slot.
	if c.breaker.State() != "open" {
		t.Fatalf("state = %s after Ready peek, want still open", c.breaker.State())
	}
	if _, ok := c.breaker.allow(); !ok {
		t.Fatal("probe rejected after Ready peek")
	}
}

func TestReadyWithoutBreaker(t *testing.T) {
	if !NewClient(Policy{}).Ready() {
		t.Fatal("breakerless client not ready")
	}
}

func TestRetryAfterHintHonored(t *testing.T) {
	var calls atomic.Int64
	attempt := func(context.Context) (int, []byte, error) {
		if calls.Add(1) == 1 {
			return 429, []byte("shed"), &RetryAfterError{After: 2 * time.Second}
		}
		return 200, []byte("ok"), nil
	}
	c := NewClient(Policy{MaxRetries: 2, Seed: 3})
	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return ctx.Err()
	}
	res, err := c.Do(context.Background(), 11, attempt)
	if err != nil || res.Status != 200 {
		t.Fatalf("got %v status %d", err, res.Status)
	}
	if len(slept) != 1 || slept[0] != 2*time.Second {
		t.Fatalf("slept %v, want exactly the server's 2s hint", slept)
	}
	if got := c.Counters().RetryAfterHonored; got != 1 {
		t.Errorf("retry_after_honored = %d, want 1", got)
	}
}

func TestExhaustedBudgetSurfacesStatusWithError(t *testing.T) {
	// A persistent 429 whose attempts carry an error (the RetryAfter
	// wrapper) must still surface the status: callers that distinguish
	// "server responded" from "transport died" — the front tier's
	// health markdown — depend on Status != 0 here.
	attempt := func(context.Context) (int, []byte, error) {
		return 429, []byte("shed"), &RetryAfterError{After: time.Millisecond}
	}
	c := instantClient(Policy{MaxRetries: 1, Seed: 5})
	res, err := c.Do(context.Background(), 13, attempt)
	if err == nil {
		t.Fatal("want exhausted-budget error")
	}
	if res.Status != 429 || string(res.Body) != "shed" {
		t.Fatalf("res = %d %q, want the last round's 429 response", res.Status, res.Body)
	}
}

func TestParseRetryAfter(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"1", time.Second, true},
		{"30", 30 * time.Second, true},
		{"0", 0, true},
		{"99999", time.Hour, true}, // clamped
		{"", 0, false},
		{"-1", 0, false},
		{"1.5", 0, false},
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0, false},
	} {
		got, ok := ParseRetryAfter(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("ParseRetryAfter(%q) = %v,%v want %v,%v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}
