// Package resilience implements safe re-execution over the idemd API:
// seeded-deterministic retries with exponential backoff, hedged requests
// for tail latency, and a circuit breaker around overload.
//
// All three mechanisms are justified by the same property the paper
// exploits at region granularity: idempotence. Every /v1/* response is
// a deterministic function of the request body (content-keyed compiles,
// seeded simulations), so re-executing a failed or slow request cannot
// change the answer — at worst it wastes work, never correctness. The
// package makes that claim checkable: with Policy.VerifyIdentical set,
// hedged siblings that both succeed are compared byte-for-byte and a
// divergence is reported as ErrDivergent instead of being papered over.
//
// Determinism: all jitter and backoff decisions derive from a splitmix64
// stream seeded by (Policy.Seed, request key, attempt), so a campaign
// replayed with the same seed makes the same scheduling decisions.
package resilience

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrBreakerOpen is returned when the circuit breaker gives up: the
// cooldown was waited out repeatedly and the probe kept failing.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// ErrDivergent is returned in VerifyIdentical mode when two successful
// attempts of the same request produced different bodies — a violation
// of the response-idempotence contract that retries rely on. It is not
// retried: re-executing cannot fix a server that is not deterministic.
var ErrDivergent = errors.New("resilience: hedged responses diverged")

// RetryAfterError marks an attempt outcome that carries the server's own
// backoff schedule (a Retry-After header on a 429 shed). Attempts wrap
// their error (or return it alone for a header-bearing status) so Do
// sleeps exactly what the server asked instead of its jittered curve.
type RetryAfterError struct {
	// After is the server-requested delay before the next attempt.
	After time.Duration
	// Err is the underlying failure, if any (nil for a bare 429).
	Err error
}

func (e *RetryAfterError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("retry after %s: %v", e.After, e.Err)
	}
	return fmt.Sprintf("retry after %s", e.After)
}

func (e *RetryAfterError) Unwrap() error { return e.Err }

// ParseRetryAfter parses a Retry-After header value in its
// integer-seconds form (the only form idemd emits). ok is false for
// empty or unparseable values — including the HTTP-date form, which
// callers fall back from onto their own backoff.
func ParseRetryAfter(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	var sec int64
	for i := 0; i < len(v); i++ {
		d := v[i]
		if d < '0' || d > '9' {
			return 0, false
		}
		sec = sec*10 + int64(d-'0')
		if sec > 3600 {
			// Clamp pathological hints to an hour; a server asking for
			// more is effectively saying "go away", which the retry
			// budget will conclude on its own.
			sec = 3600
		}
	}
	return time.Duration(sec) * time.Second, true
}

// Policy configures a Client. The zero value means "no resilience":
// one attempt, no hedge, no breaker.
type Policy struct {
	// MaxRetries is the number of re-executions after the first attempt
	// (0 = fail on first error).
	MaxRetries int
	// BaseBackoff is the first retry delay; each retry doubles it up to
	// MaxBackoff. Defaults 5ms / 1s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// HedgeAfter, when > 0, launches a second identical attempt if the
	// first has not completed within this duration; the first success
	// wins. Safe because responses are idempotent.
	HedgeAfter time.Duration
	// Seed drives the deterministic jitter stream.
	Seed uint64
	// VerifyIdentical waits for a losing hedge sibling and asserts its
	// body is byte-identical to the winner's (200s only) — turning the
	// idempotence assumption into a checked invariant.
	VerifyIdentical bool
	// BreakerThreshold opens the circuit after this many consecutive
	// retryable failures (0 = breaker disabled).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before letting
	// one probe through (default 250ms).
	BreakerCooldown time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 5 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 250 * time.Millisecond
	}
	return p
}

// Attempt performs one execution of a request and reports the HTTP
// status, response body and transport error. Implementations must be
// safe for concurrent calls (hedging runs two at once).
type Attempt func(ctx context.Context) (status int, body []byte, err error)

// Result is the final outcome of a resilient request.
type Result struct {
	Status int
	Body   []byte
	// Attempts is how many executions ran (including hedges).
	Attempts int
	// Hedged reports whether the winning response came from a hedge.
	Hedged bool
}

// Counters aggregates what a Client did, all atomically updated so a
// load generator can snapshot them mid-run.
type Counters struct {
	attempts          atomic.Int64
	retries           atomic.Int64
	hedges            atomic.Int64
	hedgeWins         atomic.Int64
	shortCircuits     atomic.Int64
	mismatches        atomic.Int64
	failures          atomic.Int64
	retryAfterHonored atomic.Int64
}

// Snapshot is a point-in-time copy of a Client's counters.
type Snapshot struct {
	Attempts      int64  `json:"attempts"`
	Retries       int64  `json:"retries"`
	Hedges        int64  `json:"hedges"`
	HedgeWins     int64  `json:"hedge_wins"`
	ShortCircuits int64  `json:"short_circuits"`
	Mismatches    int64  `json:"digest_mismatches"`
	Failures      int64  `json:"failures"`
	BreakerOpens  int64  `json:"breaker_opens"`
	BreakerState  string `json:"breaker_state"`
	// RetryAfterHonored counts retry sleeps whose duration came from a
	// server Retry-After hint instead of the jittered backoff curve.
	RetryAfterHonored int64 `json:"retry_after_honored"`
}

// WriteProm renders the snapshot in Prometheus text format under the
// given metric prefix (the same hand-rolled exposition idemd uses).
func (s Snapshot) WriteProm(b *bytes.Buffer, prefix string) {
	emit := func(name, help string, v int64) {
		fmt.Fprintf(b, "# HELP %s_%s %s\n", prefix, name, help)
		fmt.Fprintf(b, "# TYPE %s_%s counter\n", prefix, name)
		fmt.Fprintf(b, "%s_%s %d\n", prefix, name, v)
	}
	emit("attempts_total", "Request executions, including retries and hedges.", s.Attempts)
	emit("retries_total", "Re-executions after a retryable failure.", s.Retries)
	emit("hedges_total", "Hedge attempts launched.", s.Hedges)
	emit("hedge_wins_total", "Requests won by the hedge attempt.", s.HedgeWins)
	emit("breaker_short_circuits_total", "Rounds delayed by an open breaker.", s.ShortCircuits)
	emit("breaker_opens_total", "Times the circuit breaker opened.", s.BreakerOpens)
	emit("response_mismatches_total", "Idempotence violations: diverging sibling responses.", s.Mismatches)
	emit("failures_total", "Requests that failed permanently.", s.Failures)
	emit("retry_after_honored_total", "Retry sleeps scheduled by a server Retry-After hint.", s.RetryAfterHonored)
}

// Client executes Attempts under a Policy. Safe for concurrent use.
type Client struct {
	policy   Policy
	breaker  *breaker
	counters Counters
	// sleep is swappable for tests; it must honor ctx.
	sleep func(ctx context.Context, d time.Duration) error
}

// NewClient builds a client for the policy.
func NewClient(p Policy) *Client {
	p = p.withDefaults()
	c := &Client{policy: p, sleep: sleepCtx}
	if p.BreakerThreshold > 0 {
		c.breaker = newBreaker(p.BreakerThreshold, p.BreakerCooldown)
	}
	return c
}

// Ready reports whether the client would admit a request immediately:
// no breaker configured, breaker closed or half-open, or an open
// breaker whose cooldown has elapsed (the next Do becomes the probe).
// A front tier routing across replicas uses this to prefer a backend
// it will not have to sleep for — failing over beats waiting out a
// cooldown when any replica can compute any key.
func (c *Client) Ready() bool {
	if c.breaker == nil {
		return true
	}
	return c.breaker.ready()
}

// Counters snapshots the client's activity.
func (c *Client) Counters() Snapshot {
	s := Snapshot{
		Attempts:          c.counters.attempts.Load(),
		Retries:           c.counters.retries.Load(),
		Hedges:            c.counters.hedges.Load(),
		HedgeWins:         c.counters.hedgeWins.Load(),
		ShortCircuits:     c.counters.shortCircuits.Load(),
		Mismatches:        c.counters.mismatches.Load(),
		Failures:          c.counters.failures.Load(),
		RetryAfterHonored: c.counters.retryAfterHonored.Load(),
		BreakerState:      "disabled",
	}
	if c.breaker != nil {
		s.BreakerOpens = c.breaker.Opens()
		s.BreakerState = c.breaker.State()
	}
	return s
}

// retryable reports whether a round outcome justifies re-execution:
// transport errors (the response may never have left the server — but
// idempotence makes re-sending safe either way), 429 shed, and 5xx.
// Other 4xx are the caller's bug; re-execution cannot fix them.
func retryable(status int, err error) bool {
	if err != nil {
		return true
	}
	return status == 429 || status >= 500
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return context.Cause(ctx)
	case <-t.C:
		return nil
	}
}

// backoff returns the delay before retry number try (1-based), with
// deterministic jitter in [d/2, d) drawn from the (seed, key, try)
// splitmix64 stream.
func (c *Client) backoff(key uint64, try int) time.Duration {
	d := c.policy.BaseBackoff << (try - 1)
	if d > c.policy.MaxBackoff || d <= 0 {
		d = c.policy.MaxBackoff
	}
	x := mix(mix(c.policy.Seed^key) + uint64(try))
	half := uint64(d) / 2
	if half == 0 {
		return d
	}
	return time.Duration(half + x%half)
}

// mix is one splitmix64 scramble step — the same generator idemload
// uses for its request mix, so seeded campaigns share one PRNG family.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Do executes attempt under the policy until success, a non-retryable
// response, the retry budget is exhausted, or ctx is done. key names the
// request for the deterministic jitter stream (idemload passes the
// request index).
//
// Breaker short-circuits do not consume the retry budget: an open
// breaker delays the round until the cooldown admits a probe, so a
// burst of faults cannot turn into spurious permanent failures. The
// wait is bounded by ctx and a generous short-circuit cap.
func (c *Client) Do(ctx context.Context, key uint64, attempt Attempt) (Result, error) {
	var res Result
	const maxShortCircuits = 64
	shorted := 0
	for try := 0; ; try++ {
		// Admission: wait out an open breaker rather than burning a try.
		for c.breaker != nil {
			wait, ok := c.breaker.allow()
			if ok {
				break
			}
			shorted++
			c.counters.shortCircuits.Add(1)
			if shorted > maxShortCircuits {
				c.counters.failures.Add(1)
				return res, fmt.Errorf("%w after %d waits", ErrBreakerOpen, shorted)
			}
			if err := c.sleep(ctx, wait); err != nil {
				c.counters.failures.Add(1)
				return res, err
			}
		}

		status, body, hedged, err := c.round(ctx, attempt)
		res.Attempts += 1
		if hedged {
			res.Attempts++
		}
		ok := err == nil && status < 400
		if c.breaker != nil {
			// Only retryable outcomes count against the breaker: a 400 is
			// the caller's bug, not server sickness.
			if ok || !retryable(status, err) {
				c.breaker.record(true)
			} else {
				c.breaker.record(false)
			}
		}
		if err == nil && !retryable(status, err) {
			// Success, or a non-retryable response returned as-is.
			res.Status, res.Body, res.Hedged = status, body, hedged
			return res, nil
		}
		if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, ErrDivergent)) {
			c.counters.failures.Add(1)
			return res, err
		}
		if try >= c.policy.MaxRetries {
			c.counters.failures.Add(1)
			// The last round's status/body are surfaced either way:
			// callers distinguishing "server said 429" from "transport
			// died" (the front tier's health markdown) must not read a
			// zero status just because the error happens to be wrapped.
			res.Status, res.Body = status, body
			if err != nil {
				return res, fmt.Errorf("resilience: %d attempt(s) failed: %w", try+1, err)
			}
			return res, fmt.Errorf("resilience: %d attempt(s) failed: status %d", try+1, status)
		}
		c.counters.retries.Add(1)
		delay := c.backoff(key, try+1)
		var ra *RetryAfterError
		if errors.As(err, &ra) && ra.After > 0 {
			// The server scheduled the retry itself; its hint replaces
			// the guessed curve.
			delay = ra.After
			c.counters.retryAfterHonored.Add(1)
		}
		if err := c.sleep(ctx, delay); err != nil {
			c.counters.failures.Add(1)
			return res, err
		}
	}
}

// outcome is one attempt's result, tagged with which lane ran it.
type outcome struct {
	status int
	body   []byte
	err    error
	hedge  bool
}

// round runs one primary attempt, optionally hedged. It returns the
// winning outcome; hedged reports whether the hedge lane won. In
// VerifyIdentical mode a successful round waits for the sibling and
// compares bodies.
func (c *Client) round(ctx context.Context, attempt Attempt) (status int, body []byte, hedged bool, err error) {
	c.counters.attempts.Add(1)
	if c.policy.HedgeAfter <= 0 {
		status, body, err = attempt(ctx)
		return status, body, false, err
	}

	ch := make(chan outcome, 2)
	run := func(hedge bool) {
		st, b, e := attempt(ctx)
		ch <- outcome{status: st, body: b, err: e, hedge: hedge}
	}
	go run(false)

	timer := time.NewTimer(c.policy.HedgeAfter)
	defer timer.Stop()

	launched := false
	var first *outcome
	for {
		select {
		case <-timer.C:
			if !launched {
				launched = true
				c.counters.hedges.Add(1)
				c.counters.attempts.Add(1)
				go run(true)
			}
			continue
		case o := <-ch:
			good := o.err == nil && o.status < 500 && o.status != 429
			if good {
				if o.hedge {
					c.counters.hedgeWins.Add(1)
				}
				if c.policy.VerifyIdentical && launched && o.status == 200 {
					if d, ok := c.awaitSibling(ch); ok && d.err == nil && d.status == 200 {
						if !bytes.Equal(o.body, d.body) {
							c.counters.mismatches.Add(1)
							return 0, nil, launched, fmt.Errorf("%w (status 200 vs 200)", ErrDivergent)
						}
					}
				}
				return o.status, o.body, o.hedge && launched, nil
			}
			if first == nil && launched {
				// The other lane is still in flight; let it race on.
				first = &o
				continue
			}
			// Both lanes failed (or no hedge launched): surface the
			// primary's outcome for retry accounting.
			if first != nil && !first.hedge {
				o = *first
			}
			return o.status, o.body, launched, o.err
		}
	}
}

// awaitSibling drains the losing lane's outcome, bounded so a hung
// sibling cannot wedge verification (it reports ok=false on timeout and
// the comparison is skipped — verification is best-effort by design).
func (c *Client) awaitSibling(ch chan outcome) (outcome, bool) {
	wait := 4 * c.policy.HedgeAfter
	if min := 50 * time.Millisecond; wait < min {
		wait = min
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case o := <-ch:
		return o, true
	case <-t.C:
		return outcome{}, false
	}
}
