package cfg

import (
	"math/rand"
	"testing"

	"idemproc/internal/ir"
)

const diamond = `
func @f(i64 %a) i64 {
e:
  condbr %a, t, f
t:
  br j
f:
  br j
j:
  ret %a
}
`

func blockByName(f *ir.Func, name string) *ir.Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

func TestDominatorsDiamond(t *testing.T) {
	m := ir.MustParse(diamond)
	f := m.Func("f")
	info := Compute(f)

	e, tt, ff, j := blockByName(f, "e"), blockByName(f, "t"), blockByName(f, "f"), blockByName(f, "j")
	if info.Idom[tt.Index] != e || info.Idom[ff.Index] != e || info.Idom[j.Index] != e {
		t.Fatal("diamond: idom of all blocks should be entry")
	}
	if !info.Dominates(e, j) || info.Dominates(tt, j) || info.StrictlyDominates(j, j) {
		t.Fatal("dominance queries wrong")
	}
	if !info.Dominates(j, j) {
		t.Fatal("dominance must be reflexive")
	}
	// Frontier of t and f is {j}.
	if len(info.Frontier[tt.Index]) != 1 || info.Frontier[tt.Index][0] != j {
		t.Fatalf("frontier(t) = %v", info.Frontier[tt.Index])
	}
}

const nestedLoops = `
func @g(i64 %n) i64 {
e:
  br h1
h1:
  %i = phi [e: 0], [l1: %i2]
  %c1 = lt %i, %n
  condbr %c1, h2pre, x
h2pre:
  br h2
h2:
  %j = phi [h2pre: 0], [b2: %j2]
  %c2 = lt %j, %n
  condbr %c2, b2, l1
b2:
  %j2 = add %j, 1
  br h2
l1:
  %i2 = add %i, 1
  br h1
x:
  ret %i
}
`

func TestLoopForest(t *testing.T) {
	m := ir.MustParse(nestedLoops)
	f := m.Func("g")
	info := Compute(f)

	if len(info.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(info.Loops))
	}
	h1, h2 := blockByName(f, "h1"), blockByName(f, "h2")
	var outer, inner *Loop
	for _, l := range info.Loops {
		switch l.Header {
		case h1:
			outer = l
		case h2:
			inner = l
		}
	}
	if outer == nil || inner == nil {
		t.Fatal("missing loop headers")
	}
	if inner.Parent != outer {
		t.Fatal("inner loop not nested in outer")
	}
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Fatalf("depths = %d, %d; want 1, 2", outer.Depth, inner.Depth)
	}
	if info.Depth[blockByName(f, "b2").Index] != 2 {
		t.Fatal("b2 should be at depth 2")
	}
	if info.Depth[blockByName(f, "x").Index] != 0 {
		t.Fatal("x should be at depth 0")
	}
	if !outer.Contains(h2) || inner.Contains(blockByName(f, "l1")) {
		t.Fatal("loop membership wrong")
	}
	if len(inner.Latches) != 1 || inner.Latches[0] != blockByName(f, "b2") {
		t.Fatalf("inner latches = %v", inner.Latches)
	}
}

func TestRPOStartsAtEntry(t *testing.T) {
	m := ir.MustParse(nestedLoops)
	f := m.Func("g")
	info := Compute(f)
	if info.RPO[0] != f.Entry() {
		t.Fatal("RPO must start at entry")
	}
	if len(info.RPO) != len(f.Blocks) {
		t.Fatal("RPO must cover all blocks")
	}
	// RPO property: every non-back edge goes forward in RPO.
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if info.Dominates(s, b) {
				continue // back edge
			}
			if info.RPONum[s.Index] <= info.RPONum[b.Index] {
				t.Fatalf("edge %s->%s not forward in RPO", b.Name, s.Name)
			}
		}
	}
}

// buildRandomCFG constructs a random reducible-ish function: a chain of
// blocks with random forward edges and occasional well-formed self/back
// edges via conditional branches.
func buildRandomCFG(rng *rand.Rand, nBlocks int) *ir.Func {
	m := ir.NewModule()
	f := m.NewFunc("r", ir.I64, ir.I64)
	bd := ir.NewBuilder(f)
	blocks := []*ir.Block{f.Entry()}
	for i := 1; i < nBlocks; i++ {
		blocks = append(blocks, f.NewBlock())
	}
	for i, b := range blocks {
		bd.SetBlock(b)
		if i == nBlocks-1 {
			bd.Ret(f.Params[0])
			continue
		}
		// Forward target, plus maybe a second target (forward or back).
		t1 := blocks[i+1]
		if rng.Intn(2) == 0 {
			var t2 *ir.Block
			j := rng.Intn(nBlocks)
			if j == i {
				j = i + 1
			}
			t2 = blocks[j]
			bd.CondBr(f.Params[0], t1, t2)
		} else {
			bd.Br(t1)
		}
	}
	f.RemoveUnreachable()
	return f
}

// TestDominatorsAgainstBruteForce cross-checks the iterative dominator
// computation against the set-intersection definition on random CFGs.
func TestDominatorsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		f := buildRandomCFG(rng, 4+rng.Intn(10))
		if err := ir.Verify(f); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		info := Compute(f)
		dom := bruteForceDominators(f)
		for _, a := range f.Blocks {
			for _, b := range f.Blocks {
				want := dom[b.Index][a.Index]
				got := info.Dominates(a, b)
				if want != got {
					t.Fatalf("trial %d: Dominates(%s, %s) = %v, brute force says %v\n%s",
						trial, a.Name, b.Name, got, want, ir.FuncString(f))
				}
			}
		}
	}
}

// bruteForceDominators: dom[b][a] == true iff a dominates b, computed by
// the classic iterative bit-set algorithm.
func bruteForceDominators(f *ir.Func) [][]bool {
	n := len(f.Blocks)
	dom := make([][]bool, n)
	for i := range dom {
		dom[i] = make([]bool, n)
		for j := range dom[i] {
			dom[i][j] = true // initially: everything dominates everything
		}
	}
	entry := f.Entry().Index
	for j := range dom[entry] {
		dom[entry][j] = j == entry
	}
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			if b.Index == entry {
				continue
			}
			newSet := make([]bool, n)
			first := true
			for _, p := range b.Preds {
				if first {
					copy(newSet, dom[p.Index])
					first = false
				} else {
					for j := range newSet {
						newSet[j] = newSet[j] && dom[p.Index][j]
					}
				}
			}
			newSet[b.Index] = true
			for j := range newSet {
				if newSet[j] != dom[b.Index][j] {
					dom[b.Index] = newSet
					changed = true
					break
				}
			}
		}
	}
	return dom
}

func TestComputePanicsOnUnreachable(t *testing.T) {
	src := `
func @f(i64 %a) i64 {
e:
  br out
dead:
  br out
out:
  ret %a
}
`
	m := ir.MustParse(src)
	f := m.Func("f")
	defer func() {
		if recover() == nil {
			t.Fatal("Compute should panic on unreachable blocks")
		}
	}()
	Compute(f)
}
