// Package cfg computes control-flow-graph analyses over ir.Func: reverse
// postorder, dominator trees (Cooper–Harvey–Kennedy iterative algorithm),
// dominance frontiers, and the natural-loop nesting forest.
//
// These are the inputs the paper's region construction needs: dominance for
// the Lemma-1 cut-candidate sets, and loop nesting depth for the §4.3
// dynamic-behaviour heuristic.
package cfg

import (
	"fmt"

	"idemproc/internal/ir"
)

// Info bundles the analyses for one function. Build it with Compute; it is
// invalidated by any CFG mutation.
type Info struct {
	F *ir.Func
	// RPO lists blocks in reverse postorder; RPONum[b.Index] is the
	// position of b in RPO.
	RPO    []*ir.Block
	RPONum []int
	// Idom[b.Index] is b's immediate dominator (nil for entry and
	// unreachable blocks).
	Idom []*ir.Block
	// DomChildren[b.Index] lists the blocks immediately dominated by b.
	DomChildren [][]*ir.Block
	// Frontier[b.Index] is b's dominance frontier.
	Frontier [][]*ir.Block
	// Loops is the loop nesting forest; LoopOf[b.Index] is the innermost
	// loop containing b (nil if none). Depth[b.Index] is the loop nesting
	// depth (0 outside all loops).
	Loops  []*Loop
	LoopOf []*Loop
	Depth  []int
	// domPre/domPost are dominator-tree DFS numbers for O(1) dominance
	// queries.
	domPre, domPost []int
}

// Loop is a natural loop discovered from back edges.
type Loop struct {
	// Header is the loop's entry block (target of its back edges).
	Header *ir.Block
	// Blocks are the loop body, header included.
	Blocks []*ir.Block
	// Parent is the innermost enclosing loop, or nil.
	Parent *Loop
	// Children are loops nested directly inside.
	Children []*Loop
	// Depth is 1 for an outermost loop, 2 for its children, etc.
	Depth int
	// Latches are the sources of back edges to Header.
	Latches []*ir.Block
}

// Contains reports whether b is in the loop body.
func (l *Loop) Contains(b *ir.Block) bool {
	for _, x := range l.Blocks {
		if x == b {
			return true
		}
	}
	return false
}

// Compute runs all analyses on f. Unreachable blocks must be removed first
// (ir.Func.RemoveUnreachable); Compute panics otherwise so analyses never
// silently mis-handle them.
func Compute(f *ir.Func) *Info {
	f.Renumber()
	n := len(f.Blocks)
	info := &Info{F: f}

	// Postorder DFS from entry.
	seen := make([]bool, n)
	var post []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry())
	for _, b := range f.Blocks {
		if !seen[b.Index] {
			panic(fmt.Sprintf("cfg: unreachable block %s in @%s; call RemoveUnreachable first", b.Name, f.Name))
		}
	}

	info.RPO = make([]*ir.Block, len(post))
	info.RPONum = make([]int, n)
	for i := range post {
		b := post[len(post)-1-i]
		info.RPO[i] = b
		info.RPONum[b.Index] = i
	}

	info.computeDominators()
	info.computeFrontiers()
	info.computeLoops()
	info.numberDomTree()
	return info
}

// computeDominators is the Cooper–Harvey–Kennedy iterative algorithm.
func (in *Info) computeDominators() {
	n := len(in.F.Blocks)
	idom := make([]*ir.Block, n)
	entry := in.F.Entry()
	idom[entry.Index] = entry

	intersect := func(a, b *ir.Block) *ir.Block {
		for a != b {
			for in.RPONum[a.Index] > in.RPONum[b.Index] {
				a = idom[a.Index]
			}
			for in.RPONum[b.Index] > in.RPONum[a.Index] {
				b = idom[b.Index]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range in.RPO[1:] {
			var newIdom *ir.Block
			for _, p := range b.Preds {
				if idom[p.Index] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[b.Index] != newIdom {
				idom[b.Index] = newIdom
				changed = true
			}
		}
	}
	idom[entry.Index] = nil // by convention the entry has no idom
	in.Idom = idom
	in.DomChildren = make([][]*ir.Block, n)
	for _, b := range in.RPO {
		if d := idom[b.Index]; d != nil {
			in.DomChildren[d.Index] = append(in.DomChildren[d.Index], b)
		}
	}
}

func (in *Info) computeFrontiers() {
	n := len(in.F.Blocks)
	in.Frontier = make([][]*ir.Block, n)
	// seen[i] is the last join block appended to Frontier[i]. All of a
	// join block's predecessor walks run consecutively, so one stamp per
	// node replaces the linear duplicate scan the old appendUnique helper
	// performed on every step of every walk (quadratic in frontier size
	// for the diamond-heavy CFGs the region construction produces).
	// Membership never needs re-checking across join blocks because each
	// frontier list gains at most one copy of each b by construction.
	seen := make([]*ir.Block, n)
	for _, b := range in.RPO {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			runner := p
			for runner != nil && runner != in.Idom[b.Index] {
				if seen[runner.Index] != b {
					seen[runner.Index] = b
					in.Frontier[runner.Index] = append(in.Frontier[runner.Index], b)
				}
				runner = in.Idom[runner.Index]
			}
		}
	}
}

// numberDomTree assigns DFS pre/post numbers on the dominator tree.
func (in *Info) numberDomTree() {
	n := len(in.F.Blocks)
	in.domPre = make([]int, n)
	in.domPost = make([]int, n)
	t := 0
	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		in.domPre[b.Index] = t
		t++
		for _, c := range in.DomChildren[b.Index] {
			walk(c)
		}
		in.domPost[b.Index] = t
		t++
	}
	walk(in.F.Entry())
}

// Dominates reports whether a dominates b (reflexively: a dominates a).
func (in *Info) Dominates(a, b *ir.Block) bool {
	return in.domPre[a.Index] <= in.domPre[b.Index] && in.domPost[b.Index] <= in.domPost[a.Index]
}

// StrictlyDominates reports whether a dominates b and a != b.
func (in *Info) StrictlyDominates(a, b *ir.Block) bool {
	return a != b && in.Dominates(a, b)
}

// computeLoops finds natural loops from back edges (t→h where h dominates
// t) and builds the nesting forest. Loops sharing a header are merged, as
// is conventional.
func (in *Info) computeLoops() {
	n := len(in.F.Blocks)
	in.numberDomTree() // Dominates needed below

	byHeader := map[*ir.Block]*Loop{}
	for _, b := range in.RPO {
		for _, s := range b.Succs {
			if in.Dominates(s, b) { // back edge b→s
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s}
					byHeader[s] = l
					in.Loops = append(in.Loops, l)
				}
				l.Latches = append(l.Latches, b)
			}
		}
	}

	// Loop bodies: reverse reachability from each latch to the header.
	inBody := make(map[*Loop]map[*ir.Block]bool, len(byHeader))
	for _, l := range in.Loops {
		body := map[*ir.Block]bool{l.Header: true}
		var stack []*ir.Block
		for _, t := range l.Latches {
			if !body[t] {
				body[t] = true
				stack = append(stack, t)
			}
		}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range b.Preds {
				if !body[p] {
					body[p] = true
					stack = append(stack, p)
				}
			}
		}
		inBody[l] = body
		for _, b := range in.RPO { // deterministic order
			if body[b] {
				l.Blocks = append(l.Blocks, b)
			}
		}
	}

	// Nesting: l1 is inside l2 if l2's body contains l1's header and they
	// differ. Parent = smallest containing loop.
	for _, l1 := range in.Loops {
		for _, l2 := range in.Loops {
			if l1 == l2 || !inBody[l2][l1.Header] {
				continue
			}
			if l1.Parent == nil || len(inBody[l2]) < len(inBody[l1.Parent]) {
				l1.Parent = l2
			}
		}
	}
	for _, l := range in.Loops {
		if l.Parent != nil {
			l.Parent.Children = append(l.Parent.Children, l)
		}
	}
	var setDepth func(l *Loop, d int)
	setDepth = func(l *Loop, d int) {
		l.Depth = d
		for _, c := range l.Children {
			setDepth(c, d+1)
		}
	}
	for _, l := range in.Loops {
		if l.Parent == nil {
			setDepth(l, 1)
		}
	}

	// Innermost loop per block.
	in.LoopOf = make([]*Loop, n)
	in.Depth = make([]int, n)
	for _, l := range in.Loops {
		for _, b := range l.Blocks {
			if cur := in.LoopOf[b.Index]; cur == nil || l.Depth > cur.Depth {
				in.LoopOf[b.Index] = l
			}
		}
	}
	for i, l := range in.LoopOf {
		if l != nil {
			in.Depth[i] = l.Depth
		}
	}
}
