package codegen

import (
	"fmt"
	"strings"

	"idemproc/internal/ir"
	"idemproc/internal/isa"
)

// Program is a linked machine executable for the simulator.
//
// Immutability contract: once Link returns, a Program is read-only.
// machine.Machine only ever reads it (each machine keeps its own memory,
// registers and statistics) and fault.Apply builds a fresh instrumented
// Program rather than editing in place, so one linked Program may back
// any number of concurrent simulator runs — internal/buildcache relies on
// this to share compiles across experiment workers. Anything that needs
// to edit instructions must copy first.
type Program struct {
	Instrs []isa.Instr
	// Entry is the index of the startup stub, which calls Main and HALTs.
	Entry int
	// Main is the program's entry function name.
	Main string
	// FuncEntry maps function names to their first instruction.
	FuncEntry map[string]int
	// FuncOf maps each instruction index to its function name ("" for the
	// stub), for per-function statistics.
	FuncOf []string
	// GlobalBase maps global names to absolute word addresses; GlobalEnd
	// is one past the last global word.
	GlobalBase map[string]int64
	GlobalEnd  int64
	// Globals carries the initializers for machine reset.
	Globals []*ir.GlobalVar
	// MemWords is the memory size the program was linked for; the stack
	// grows down from MemWords.
	MemWords int
	// Marks counts region-boundary instructions across all functions.
	Marks int
}

// LayoutGlobals assigns absolute addresses to a module's globals exactly
// like the reference interpreter (address 0 reserved, globals from 1).
func LayoutGlobals(m *ir.Module) (map[string]int64, int64) {
	base := map[string]int64{}
	addr := int64(1)
	for _, g := range m.Globals {
		base[g.Name] = addr
		addr += g.Size
	}
	return base, addr
}

// Link assembles compiled functions into an executable. main is the
// function the stub calls; memWords sizes the machine memory.
func Link(m *ir.Module, funcs []*Compiled, main string, memWords int) (*Program, error) {
	globalBase, end := LayoutGlobals(m)
	p := &Program{
		Main:       main,
		FuncEntry:  map[string]int{},
		GlobalBase: globalBase,
		GlobalEnd:  end,
		Globals:    m.Globals,
		MemWords:   memWords,
	}

	// Startup stub: sp = memWords, call main, halt.
	p.Entry = 0
	p.Instrs = append(p.Instrs,
		isa.Instr{Op: isa.MOVI, Rd: isa.SP, Imm: int64(memWords)},
		isa.Instr{Op: isa.CALL, Sym: main, Imm: -1},
		isa.Instr{Op: isa.HALT},
	)
	p.FuncOf = append(p.FuncOf, "", "", "")

	for _, c := range funcs {
		base := len(p.Instrs)
		p.FuncEntry[c.Name] = base
		p.Marks += c.Marks
		for _, in := range c.Code {
			if in.IsBranch() && in.Op != isa.CALL && in.Op != isa.RET {
				in.Imm += int64(base)
			}
			p.Instrs = append(p.Instrs, in)
			p.FuncOf = append(p.FuncOf, c.Name)
		}
	}

	// Resolve calls.
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Op == isa.CALL {
			tgt, ok := p.FuncEntry[in.Sym]
			if !ok {
				return nil, fmt.Errorf("link: call to undefined function %q", in.Sym)
			}
			in.Imm = int64(tgt)
		}
	}
	return p, nil
}

// Disassemble renders the program for debugging: function labels at
// their entry points and a running region index at every MARK (the
// region numbering the verifier and the recovery machinery share —
// region 0 is the startup pseudo-region entered at the stub).
func Disassemble(p *Program) string {
	return DisassembleAnnotated(p, nil)
}

// DisassembleAnnotated is Disassemble with per-pc notes appended after
// the instructions they describe (one indented line per note), so
// callers like `idemc -disasm -verify` can print criterion violations
// inline. A nil or empty notes map renders exactly like Disassemble.
func DisassembleAnnotated(p *Program, notes map[int][]string) string {
	// Function labels keyed by entry pc, printed in address order (the
	// FuncEntry map itself carries no order).
	labels := make(map[int]string, len(p.FuncEntry))
	for name, e := range p.FuncEntry {
		labels[e] = name
	}
	var b strings.Builder
	region := 0
	for i, in := range p.Instrs {
		if name, ok := labels[i]; ok {
			fmt.Fprintf(&b, "<%s>:\n", name)
		}
		if in.Op == isa.MARK && in.Shadow == 0 {
			region++
			fmt.Fprintf(&b, "%5d: %-24s ; region %d\n", i, in.String(), region)
		} else {
			fmt.Fprintf(&b, "%5d: %s\n", i, in)
		}
		for _, note := range notes[i] {
			fmt.Fprintf(&b, "       ^ %s\n", note)
		}
	}
	return b.String()
}
