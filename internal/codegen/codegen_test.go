package codegen

import (
	"strings"
	"testing"

	"idemproc/internal/core"
	"idemproc/internal/ir"
	"idemproc/internal/isa"
)

func compileSrc(t *testing.T, src, main string, idem bool) (*Program, *BuildStats) {
	t.Helper()
	m := ir.MustParse(src)
	p, st, err := CompileModule(m, main, 4096, idem, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return p, st
}

func TestFallthroughElidesBranches(t *testing.T) {
	src := `
func @f(i64 %a) i64 {
e:
  condbr %a, t, u
t:
  br j
u:
  br j
j:
  %r = phi [t: 1], [u: 2]
  ret %r
}
`
	p, _ := compileSrc(t, src, "f", false)
	// The block layout e,t,u,j (+ split blocks) should keep unconditional
	// branch count low: every block-to-next fallthrough is elided.
	branches := 0
	for _, in := range p.Instrs {
		if in.Op == isa.B {
			branches++
		}
	}
	if branches > 2 {
		t.Fatalf("too many unconditional branches (%d):\n%s", branches, Disassemble(p))
	}
}

func TestLinkResolvesCalls(t *testing.T) {
	src := `
func @g() i64 {
e:
  ret 7
}

func @f() i64 {
e:
  %x = call @g()
  ret %x
}
`
	p, _ := compileSrc(t, src, "f", false)
	for i, in := range p.Instrs {
		if in.Op == isa.CALL {
			if in.Imm < 0 || int(in.Imm) >= len(p.Instrs) {
				t.Fatalf("unresolved call at %d: %v", i, in)
			}
			if in.Sym == "g" && int(in.Imm) != p.FuncEntry["g"] {
				t.Fatalf("call to g resolved to %d, entry is %d", in.Imm, p.FuncEntry["g"])
			}
		}
	}
	if p.FuncOf[p.FuncEntry["g"]] != "g" {
		t.Fatal("FuncOf mapping wrong")
	}
}

func TestLinkRejectsUndefinedCall(t *testing.T) {
	src := `
func @f() i64 {
e:
  %x = call @nosuch()
  ret %x
}
`
	m := ir.MustParse(src)
	// Must reach the linker: the callee is syntactically fine.
	if _, _, err := CompileModule(m, "f", 4096, false, core.DefaultOptions()); err == nil {
		t.Fatal("expected link error for undefined callee")
	}
}

func TestMarksOnlyInIdempotentBuild(t *testing.T) {
	src := `
global @g [2]

func @f(i64 %a) i64 {
e:
  %p = global @g
  %x = load %p
  %y = add %x, %a
  store %p, %y
  ret %y
}
`
	pb, stb := compileSrc(t, src, "f", false)
	pi, sti := compileSrc(t, src, "f", true)
	if stb.Marks != 0 {
		t.Fatal("baseline has marks")
	}
	if sti.Marks == 0 {
		t.Fatal("idempotent build lacks marks")
	}
	count := func(p *Program) int {
		n := 0
		for _, in := range p.Instrs {
			if in.Op == isa.MARK {
				n++
			}
		}
		return n
	}
	if count(pb) != 0 || count(pi) != sti.Marks {
		t.Fatal("mark counts inconsistent with BuildStats")
	}
}

func TestGlobalLayoutMatchesInterpreter(t *testing.T) {
	src := `
global @a [3]
global @b [5]

func @f() i64 {
e:
  ret 0
}
`
	m := ir.MustParse(src)
	base, end := LayoutGlobals(m)
	if base["a"] != 1 || base["b"] != 4 || end != 9 {
		t.Fatalf("layout = %v, end = %d", base, end)
	}
	in := ir.NewInterp(m, 64)
	if in.GlobalAddr("a") != base["a"] || in.GlobalAddr("b") != base["b"] {
		t.Fatal("machine layout diverges from interpreter layout")
	}
}

func TestDisassembleShowsFunctions(t *testing.T) {
	src := `
func @f() i64 {
e:
  ret 3
}
`
	p, _ := compileSrc(t, src, "f", false)
	d := Disassemble(p)
	if !strings.Contains(d, "<f>:") {
		t.Fatalf("disassembly lacks function label:\n%s", d)
	}
}

func TestRepairCutsReported(t *testing.T) {
	// A loop whose cuts land mid-body around a call triggers the
	// live-in-redefinition repair path (the φ value wraps a region).
	src := `
global @acc [16]

func @bump(i64 %s, i64 %v) i64 {
e:
  %g = global @acc
  %p = add %g, %s
  %old = load %p
  %new = add %old, %v
  store %p, %new
  ret %new
}

func @main(i64 %n) i64 {
e:
  br l
l:
  %i = phi [e: 0], [l: %i2]
  %slot = rem %i, 16
  %r = call @bump(%slot, %i)
  %i2 = add %i, 1
  %c = lt %i2, %n
  condbr %c, l, d
d:
  ret %r
}
`
	m := ir.MustParse(src)
	globalBase, _ := LayoutGlobals(m)
	total := 0
	for _, f := range m.Funcs {
		res, err := core.Construct(f, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		c, err := Compile(f, globalBase, Options{Cuts: res.Cuts})
		if err != nil {
			t.Fatal(err)
		}
		total += c.RepairCuts
	}
	if total == 0 {
		t.Log("note: no repair cuts needed (construction covered the case)")
	}
}

func TestManyParamsParallelMoves(t *testing.T) {
	// Four int parameters used in reverse order stress the entry
	// parallel move (registers may permute).
	src := `
func @f(i64 %a, i64 %b, i64 %c, i64 %d) i64 {
e:
  %x = sub %d, %c
  %y = sub %b, %a
  %z = mul %x, %y
  ret %z
}
`
	p, _ := compileSrc(t, src, "f", false)
	_ = p
	// Execution-level validation happens in machine tests; here just
	// check it compiled and no param register is read after being
	// clobbered within the prologue move sequence.
	// (Structural check: the expansion is deterministic, so compiling
	// twice must agree.)
	p2, _ := compileSrc(t, src, "f", false)
	if len(p.Instrs) != len(p2.Instrs) {
		t.Fatal("nondeterministic compilation")
	}
	for i := range p.Instrs {
		if p.Instrs[i] != p2.Instrs[i] {
			t.Fatalf("instruction %d differs between identical compilations", i)
		}
	}
}

func TestMixedFloatIntArgs(t *testing.T) {
	src := `
func @g(f64 %x, i64 %n, f64 %y) f64 {
e:
  %nf = i2f %n
  %t = fmul %x, %nf
  %r = fadd %t, %y
  ret %r
}

func @f(i64 %n) f64 {
e:
  %a = const.f64 2.5
  %b = const.f64 0.5
  %r = call.f64 @g(%a, %n, %b)
  ret %r
}
`
	p, _ := compileSrc(t, src, "f", false)
	// g's params: x→f0, n→r0, y→f1 by per-type position.
	if p.FuncEntry["g"] == 0 {
		t.Fatal("g not linked")
	}
}

// TestStackGrowthModest checks the paper's claim that the idempotent
// compilation "does not grow the size of the stack significantly": summed
// frame sizes stay within 2x of the conventional build across a
// register-pressure-heavy function.
func TestStackGrowthModest(t *testing.T) {
	src := `
global @g [4]

func @f(i64 %n) i64 {
e:
  %p = global @g
  %x = load %p
  br l
l:
  %i = phi [e: 0], [l: %i2]
  %a = phi [e: %x], [l: %a2]
  %b = phi [e: 1], [l: %b2]
  %c = phi [e: 2], [l: %c2]
  %d = phi [e: 3], [l: %d2]
  %a2 = add %a, %b
  %b2 = add %b, %c
  %c2 = add %c, %d
  %d2 = xor %d, %a
  store %p, %a2
  %i2 = add %i, 1
  %cc = lt %i2, %n
  condbr %cc, l, x
x:
  ret %a2
}
`
	frames := func(idem bool) int {
		m := ir.MustParse(src)
		_, st, err := CompileModule(m, "f", 4096, idem, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return st.FrameWords
	}
	base, id := frames(false), frames(true)
	if id > base*2+8 {
		t.Fatalf("idempotent frames %d vs conventional %d — stack grew too much", id, base)
	}
}
