package codegen

// Binary artifact codec for Program + BuildStats. The encoding is the
// persistence format of the buildcache disk tier, so it must be
// deterministic (byte-identical for equal inputs: maps are written in
// sorted key order) and strict on decode (any malformed, truncated or
// trailing byte is an error — the disk tier treats errors as cache
// misses and recompiles). CodecVersion is bumped on any layout change;
// old artifacts then simply miss.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"idemproc/internal/ir"
	"idemproc/internal/isa"
)

// CodecVersion identifies the artifact payload layout. Bump it whenever
// the encoding below changes shape; serialize_test.go pins the field
// counts of every encoded struct so that adding a field without
// extending the codec (and bumping this) fails tests.
const CodecVersion = 1

// EncodeProgram serializes a linked Program and its BuildStats into the
// deterministic binary artifact payload. st may be nil (encoded as an
// empty BuildStats).
func EncodeProgram(p *Program, st *BuildStats) []byte {
	e := &encoder{}
	if st == nil {
		st = &BuildStats{}
	}
	e.program(p)
	e.buildStats(st)
	return e.buf
}

// DecodeProgram parses an artifact payload produced by EncodeProgram.
// It is strict: short input, malformed varints, and trailing bytes all
// return errors (never panic), so corrupt artifacts degrade to cache
// misses.
func DecodeProgram(data []byte) (p *Program, st *BuildStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			p, st, err = nil, nil, fmt.Errorf("decode artifact: %v", r)
		}
	}()
	d := &decoder{buf: data}
	p = d.program()
	st = d.buildStats()
	if len(d.buf) != d.off {
		return nil, nil, fmt.Errorf("decode artifact: %d trailing bytes", len(d.buf)-d.off)
	}
	return p, st, nil
}

// --- encoder ---

type encoder struct{ buf []byte }

func (e *encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) int(v int)        { e.varint(int64(v)) }
func (e *encoder) byte(b uint8)     { e.buf = append(e.buf, b) }
func (e *encoder) bool(b bool) {
	if b {
		e.byte(1)
	} else {
		e.byte(0)
	}
}
func (e *encoder) f64(f float64) { e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(f)) }
func (e *encoder) str(s string)  { e.uvarint(uint64(len(s))); e.buf = append(e.buf, s...) }

// slice writes a slice length prefix that preserves nil-ness: 0 encodes
// a nil slice, n+1 encodes a (possibly empty) slice of length n. This
// keeps decode(encode(x)) DeepEqual to x even for empty-but-non-nil
// slices (workload modules declare some zero-init globals that way).
func (e *encoder) slice(n int, isNil bool) {
	if isNil {
		e.uvarint(0)
		return
	}
	e.uvarint(uint64(n) + 1)
}

func (e *encoder) program(p *Program) {
	e.slice(len(p.Instrs), p.Instrs == nil)
	for i := range p.Instrs {
		in := &p.Instrs[i]
		e.byte(uint8(in.Op))
		e.byte(uint8(in.Rd))
		e.byte(uint8(in.Rs1))
		e.byte(uint8(in.Rs2))
		e.varint(in.Imm)
		e.f64(in.FImm)
		e.str(in.Sym)
		e.byte(in.Shadow)
		e.bool(in.Meta)
	}
	e.int(p.Entry)
	e.str(p.Main)
	e.uvarint(uint64(len(p.FuncEntry)))
	for _, k := range sortedKeys(p.FuncEntry) {
		e.str(k)
		e.int(p.FuncEntry[k])
	}
	// FuncOf is one string per instruction but with long constant runs
	// (all of a function's instructions are contiguous): run-length
	// encode it.
	e.slice(len(p.FuncOf), p.FuncOf == nil)
	for i := 0; i < len(p.FuncOf); {
		j := i
		for j < len(p.FuncOf) && p.FuncOf[j] == p.FuncOf[i] {
			j++
		}
		e.uvarint(uint64(j - i))
		e.str(p.FuncOf[i])
		i = j
	}
	e.uvarint(uint64(len(p.GlobalBase)))
	for _, k := range sortedKeys(p.GlobalBase) {
		e.str(k)
		e.varint(p.GlobalBase[k])
	}
	e.varint(p.GlobalEnd)
	e.slice(len(p.Globals), p.Globals == nil)
	for _, g := range p.Globals {
		e.str(g.Name)
		e.varint(g.Size)
		e.slice(len(g.Init), g.Init == nil)
		for _, v := range g.Init {
			e.varint(v)
		}
	}
	e.int(p.MemWords)
	e.int(p.Marks)
}

func (e *encoder) buildStats(st *BuildStats) {
	e.uvarint(uint64(len(st.Construction)))
	names := make([]string, 0, len(st.Construction))
	for k := range st.Construction {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		e.str(k)
		e.funcConstruction(st.Construction[k])
	}
	e.int(st.Marks)
	e.int(st.SpillLoads)
	e.int(st.SpillStores)
	e.int(st.StaticInstrs)
	e.int(st.FrameWords)
}

func (e *encoder) funcConstruction(fc *FuncConstruction) {
	s := &fc.Stats
	e.int(s.PromotedAllocas)
	e.int(s.ForwardedLoads)
	e.int(s.AntidepsCut)
	e.int(s.CutsFromMulticut)
	e.int(s.CutsFromCalls)
	e.int(s.CutsFromSelfDep)
	e.int(s.CutsFromRetSplit)
	e.int(s.LoopsUnrolled)
	e.int(s.Instructions)
	e.int(s.RegionCount)
	e.f64(s.AvgRegionSize)
	e.int(s.LargestRegionSize)
	e.int(fc.Cuts)
	e.slice(len(fc.Antideps), fc.Antideps == nil)
	for _, d := range fc.Antideps {
		e.str(d.Read)
		e.str(d.Write)
		e.bool(d.MustAlias)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// --- decoder ---

// decoder panics on malformed input; DecodeProgram converts the panic to
// an error. maxCount bounds every length prefix so a corrupt header
// cannot trigger a giant allocation before the bound check fails.
type decoder struct {
	buf []byte
	off int
}

const maxCount = 1 << 28

func (d *decoder) fail(what string) {
	panic(fmt.Sprintf("%s at offset %d", what, d.off))
}

func (d *decoder) uvarint() uint64 {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint")
	}
	d.off += n
	return v
}

func (d *decoder) int() int { return int(d.varint()) }

func (d *decoder) count() int {
	v := d.uvarint()
	if v > maxCount {
		d.fail("count out of range")
	}
	return int(v)
}

// slice reads a nil-preserving length prefix (see encoder.slice).
func (d *decoder) slice() (n int, isNil bool) {
	v := d.uvarint()
	if v == 0 {
		return 0, true
	}
	v--
	if v > maxCount {
		d.fail("count out of range")
	}
	return int(v), false
}

func (d *decoder) byte() uint8 {
	if d.off >= len(d.buf) {
		d.fail("truncated byte")
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) bool() bool {
	switch d.byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bad bool")
		return false
	}
}

func (d *decoder) f64() float64 {
	if d.off+8 > len(d.buf) {
		d.fail("truncated float")
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return math.Float64frombits(v)
}

func (d *decoder) str() string {
	n := d.count()
	if d.off+n > len(d.buf) {
		d.fail("truncated string")
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) program() *Program {
	p := &Program{}
	if n, isNil := d.slice(); !isNil {
		p.Instrs = make([]isa.Instr, n)
		for i := range p.Instrs {
			in := &p.Instrs[i]
			in.Op = isa.Op(d.byte())
			in.Rd = isa.Reg(d.byte())
			in.Rs1 = isa.Reg(d.byte())
			in.Rs2 = isa.Reg(d.byte())
			in.Imm = d.varint()
			in.FImm = d.f64()
			in.Sym = d.str()
			in.Shadow = d.byte()
			in.Meta = d.bool()
		}
	}
	p.Entry = d.int()
	p.Main = d.str()
	p.FuncEntry = make(map[string]int)
	for i, n := 0, d.count(); i < n; i++ {
		k := d.str()
		p.FuncEntry[k] = d.int()
	}
	if n, isNil := d.slice(); !isNil {
		p.FuncOf = make([]string, 0, n)
		for len(p.FuncOf) < n {
			run := d.count()
			if run == 0 || len(p.FuncOf)+run > n {
				d.fail("bad run length")
			}
			s := d.str()
			for j := 0; j < run; j++ {
				p.FuncOf = append(p.FuncOf, s)
			}
		}
	}
	p.GlobalBase = make(map[string]int64)
	for i, n := 0, d.count(); i < n; i++ {
		k := d.str()
		p.GlobalBase[k] = d.varint()
	}
	p.GlobalEnd = d.varint()
	if n, isNil := d.slice(); !isNil {
		p.Globals = make([]*ir.GlobalVar, n)
		for i := range p.Globals {
			g := &ir.GlobalVar{Name: d.str(), Size: d.varint()}
			if m, mNil := d.slice(); !mNil {
				g.Init = make([]int64, m)
				for j := range g.Init {
					g.Init[j] = d.varint()
				}
			}
			p.Globals[i] = g
		}
	}
	p.MemWords = d.int()
	p.Marks = d.int()
	return p
}

func (d *decoder) buildStats() *BuildStats {
	st := &BuildStats{Construction: map[string]*FuncConstruction{}}
	for i, n := 0, d.count(); i < n; i++ {
		k := d.str()
		st.Construction[k] = d.funcConstruction()
	}
	st.Marks = d.int()
	st.SpillLoads = d.int()
	st.SpillStores = d.int()
	st.StaticInstrs = d.int()
	st.FrameWords = d.int()
	return st
}

func (d *decoder) funcConstruction() *FuncConstruction {
	fc := &FuncConstruction{}
	s := &fc.Stats
	s.PromotedAllocas = d.int()
	s.ForwardedLoads = d.int()
	s.AntidepsCut = d.int()
	s.CutsFromMulticut = d.int()
	s.CutsFromCalls = d.int()
	s.CutsFromSelfDep = d.int()
	s.CutsFromRetSplit = d.int()
	s.LoopsUnrolled = d.int()
	s.Instructions = d.int()
	s.RegionCount = d.int()
	s.AvgRegionSize = d.f64()
	s.LargestRegionSize = d.int()
	fc.Cuts = d.int()
	if n, isNil := d.slice(); !isNil {
		fc.Antideps = make([]AntidepInfo, n)
		for i := range fc.Antideps {
			fc.Antideps[i] = AntidepInfo{Read: d.str(), Write: d.str(), MustAlias: d.bool()}
		}
	}
	return fc
}
