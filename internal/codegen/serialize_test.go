package codegen_test

import (
	"bytes"
	"reflect"
	"testing"

	"idemproc/internal/codegen"
	"idemproc/internal/core"
	"idemproc/internal/ir"
	"idemproc/internal/isa"
	"idemproc/internal/machine"
	"idemproc/internal/workloads"
)

func compileWorkload(t *testing.T, w workloads.Workload, mo codegen.ModuleOptions) (*codegen.Program, *codegen.BuildStats) {
	t.Helper()
	p, st, err := codegen.CompileModuleOpts(w.Module(), "main", w.MemWords, mo)
	if err != nil {
		t.Fatalf("compile %s: %v", w.Name, err)
	}
	return p, st
}

// TestSerializeRoundTrip pins the codec against every workload in the
// suite under both pipelines: decode(encode(p)) must DeepEqual the
// original and re-encode byte-identically (determinism).
func TestSerializeRoundTrip(t *testing.T) {
	modes := []struct {
		name string
		mo   codegen.ModuleOptions
	}{
		{"conventional", codegen.ModuleOptions{Core: core.DefaultOptions()}},
		{"idempotent", codegen.ModuleOptions{Idempotent: true, Core: core.DefaultOptions()}},
	}
	for _, w := range workloads.All() {
		for _, m := range modes {
			t.Run(w.Name+"/"+m.name, func(t *testing.T) {
				p, st := compileWorkload(t, w, m.mo)
				enc := codegen.EncodeProgram(p, st)
				p2, st2, err := codegen.DecodeProgram(enc)
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				if !reflect.DeepEqual(p, p2) {
					t.Fatalf("program round-trip mismatch")
				}
				if !reflect.DeepEqual(st, st2) {
					t.Fatalf("stats round-trip mismatch:\n got %+v\nwant %+v", st2, st)
				}
				enc2 := codegen.EncodeProgram(p2, st2)
				if !bytes.Equal(enc, enc2) {
					t.Fatalf("re-encode not byte-identical: %d vs %d bytes", len(enc), len(enc2))
				}
			})
		}
	}
}

// TestSerializeDecodedProgramRuns checks a decoded Program behaves
// identically on the machine: same result and dynamic statistics.
func TestSerializeDecodedProgramRuns(t *testing.T) {
	for _, name := range []string{"mcf", "canneal"} {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("missing workload %s", name)
		}
		p, st := compileWorkload(t, w, codegen.ModuleOptions{Idempotent: true, Core: core.DefaultOptions()})
		p2, _, err := codegen.DecodeProgram(codegen.EncodeProgram(p, st))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		m1 := machine.New(p, machine.Config{BufferStores: true})
		r1, err := m1.Run(w.Args...)
		if err != nil {
			t.Fatalf("run original: %v", err)
		}
		m2 := machine.New(p2, machine.Config{BufferStores: true})
		r2, err := m2.Run(w.Args...)
		if err != nil {
			t.Fatalf("run decoded: %v", err)
		}
		if r1 != r2 {
			t.Fatalf("%s: result differs: %d vs %d", name, r1, r2)
		}
		if m1.Stats.DynInstrs != m2.Stats.DynInstrs || m1.Stats.Cycles != m2.Stats.Cycles {
			t.Fatalf("%s: dynamic stats differ", name)
		}
	}
}

// TestSerializeRejectsCorrupt exercises the strict-decode contract:
// truncations and trailing garbage must error, never panic.
func TestSerializeRejectsCorrupt(t *testing.T) {
	w, _ := workloads.ByName("mcf")
	p, st := compileWorkload(t, w, codegen.ModuleOptions{Idempotent: true, Core: core.DefaultOptions()})
	enc := codegen.EncodeProgram(p, st)

	if _, _, err := codegen.DecodeProgram(nil); err == nil {
		t.Fatal("decode of empty input succeeded")
	}
	// Every truncation point must fail cleanly (sampled stride keeps the
	// test fast; includes cutting inside varints, strings and floats).
	for cut := 0; cut < len(enc); cut += 7 {
		if _, _, err := codegen.DecodeProgram(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(enc))
		}
	}
	if _, _, err := codegen.DecodeProgram(append(append([]byte{}, enc...), 0xff)); err == nil {
		t.Fatal("trailing garbage decoded successfully")
	}
	// A flipped length prefix near the front must not OOM or panic.
	mut := append([]byte{}, enc...)
	mut[0] ^= 0x7f
	if _, _, err := codegen.DecodeProgram(mut); err == nil {
		// A flip may legitimately still parse if it lands in a value
		// field; the guarantee under test is only "no panic", which the
		// deferred recover in DecodeProgram converts to err. Re-encode
		// equality distinguishes a silent corruption from a lucky parse.
		p2, st2, _ := codegen.DecodeProgram(mut)
		if p2 != nil && bytes.Equal(codegen.EncodeProgram(p2, st2), enc) {
			t.Fatal("corrupt input decoded to the original artifact")
		}
	}
}

// TestCodecFieldPins fails when any serialized struct gains a field
// without the codec (and CodecVersion) being updated. Extend the codec
// in serialize.go, bump CodecVersion, then update the pin here.
func TestCodecFieldPins(t *testing.T) {
	pins := []struct {
		name string
		typ  reflect.Type
		want int
	}{
		{"isa.Instr", reflect.TypeOf(isa.Instr{}), 9},
		{"codegen.Program", reflect.TypeOf(codegen.Program{}), 10},
		{"codegen.BuildStats", reflect.TypeOf(codegen.BuildStats{}), 6},
		{"codegen.FuncConstruction", reflect.TypeOf(codegen.FuncConstruction{}), 3},
		{"codegen.AntidepInfo", reflect.TypeOf(codegen.AntidepInfo{}), 3},
		{"core.Stats", reflect.TypeOf(core.Stats{}), 12},
		{"ir.GlobalVar", reflect.TypeOf(ir.GlobalVar{}), 3},
	}
	for _, p := range pins {
		if got := p.typ.NumField(); got != p.want {
			t.Errorf("%s has %d fields, codec encodes %d — extend serialize.go, bump CodecVersion, then update this pin",
				p.name, got, p.want)
		}
	}
}
