package codegen

import (
	"fmt"

	"idemproc/internal/isa"
	"idemproc/internal/regalloc"
)

// Frame layout (word offsets from SP after the prologue):
//
//	[0]                       saved LR
//	[1 .. 1+allocas)          alloca area
//	[1+allocas .. frame)      spill slots, one per spilled vreg
//
// All registers are caller-saved; vregs live across calls are spilled by
// the allocator, so nothing needs saving at call sites beyond LR in the
// prologue.

// fixup records a branch whose target block must be patched to its final
// instruction index.
type fixup struct {
	at     int
	target int
}

// expand rewrites allocated virtual code into physical instructions:
// prologue/epilogue, spill loads/stores via the scratch registers
// (r11/r12, f30/f31), parameter and call sequences, and local branch
// resolution. It returns the code and the number of MARKs.
func expand(vf *regalloc.VFunc, as *regalloc.Assignment) ([]isa.Instr, int, error) {
	frame := int64(1 + vf.AllocaSlots + as.FrameSlots)
	slotOff := func(v regalloc.VReg) int64 { return int64(1+vf.AllocaSlots) + int64(as.SlotOf[v]) }

	var code []isa.Instr
	emit := func(in isa.Instr) { code = append(code, in) }
	marks := 0

	// srcReg materializes vreg v for reading, loading spilled values into
	// the given scratch register.
	srcReg := func(v regalloc.VReg, scratch isa.Reg) isa.Reg {
		if !as.Spilled[v] {
			return as.RegOf[v]
		}
		op := isa.LDR
		if vf.FloatReg[v] {
			op = isa.FLDR
		}
		emit(isa.Instr{Op: op, Rd: scratch, Rs1: isa.SP, Imm: slotOff(v)})
		return scratch
	}
	// dstReg picks the register an instruction should write; finishDst
	// stores it back if spilled.
	dstReg := func(v regalloc.VReg, scratch isa.Reg) isa.Reg {
		if !as.Spilled[v] {
			return as.RegOf[v]
		}
		return scratch
	}
	finishDst := func(v regalloc.VReg) {
		if v == regalloc.NoVReg || !as.Spilled[v] {
			return
		}
		op, scratch := isa.STR, isa.R11
		if vf.FloatReg[v] {
			op, scratch = isa.FSTR, isa.F(30)
		}
		emit(isa.Instr{Op: op, Rs1: isa.SP, Rs2: scratch, Imm: slotOff(v)})
	}

	scratch1 := func(v regalloc.VReg) isa.Reg {
		if vf.FloatReg[v] {
			return isa.F(30)
		}
		return isa.R11
	}
	scratch2 := func(v regalloc.VReg) isa.Reg {
		if vf.FloatReg[v] {
			return isa.F(31)
		}
		return isa.R12
	}

	// Prologue.
	emit(isa.Instr{Op: isa.ADDI, Rd: isa.SP, Rs1: isa.SP, Imm: -frame})
	emit(isa.Instr{Op: isa.STR, Rs1: isa.SP, Rs2: isa.LR, Imm: 0})

	epilogue := func() {
		emit(isa.Instr{Op: isa.LDR, Rd: isa.LR, Rs1: isa.SP, Imm: 0})
		emit(isa.Instr{Op: isa.ADDI, Rd: isa.SP, Rs1: isa.SP, Imm: frame})
		emit(isa.Instr{Op: isa.RET})
	}

	// Branch fixups: (code index, target block).
	var fixups []fixup
	blockStart := make([]int, len(vf.Blocks))

	for b := range vf.Blocks {
		blockStart[b] = len(code)
		// Indexed loop: the KParam case advances ii to absorb the whole
		// run of parameter pseudo-instructions.
		for ii := 0; ii < len(vf.Blocks[b].Instrs); ii++ {
			in := &vf.Blocks[b].Instrs[ii]
			switch in.Kind {
			case regalloc.KMark:
				emit(isa.Instr{Op: isa.MARK})
				marks++

			case regalloc.KParam:
				// Incoming argument i arrives in r_i or f_i by per-type
				// position (codegen and KCall agree on this convention).
				// Consecutive KParams form one parallel move: a move's
				// destination may be a later parameter's incoming
				// register, so they are resolved together.
				var moves []paramMove
				for ; ii < len(vf.Blocks[b].Instrs); ii++ {
					pin := &vf.Blocks[b].Instrs[ii]
					if pin.Kind != regalloc.KParam {
						ii--
						break
					}
					mv := paramMove{src: argRegFor(vf, pin.Imm), float: vf.FloatReg[pin.Rd]}
					if as.Spilled[pin.Rd] {
						mv.toSlot = true
						mv.slot = slotOff(pin.Rd)
					} else {
						mv.dst = as.RegOf[pin.Rd]
					}
					moves = append(moves, mv)
				}
				emitParallelParamMoves(moves, emit)

			case regalloc.KAlloca:
				rd := dstReg(in.Rd, isa.R11)
				emit(isa.Instr{Op: isa.ADDI, Rd: rd, Rs1: isa.SP, Imm: 1 + in.Imm})
				finishDst(in.Rd)

			case regalloc.KCall:
				// Arguments were force-spilled by the allocator; load them
				// straight into the argument registers.
				intIdx, fltIdx := 0, 0
				for _, a := range in.Args {
					var dst isa.Reg
					if vf.FloatReg[a] {
						dst = isa.F(fltIdx)
						fltIdx++
					} else {
						dst = isa.Reg(intIdx)
						intIdx++
					}
					if as.Spilled[a] {
						op := isa.LDR
						if vf.FloatReg[a] {
							op = isa.FLDR
						}
						emit(isa.Instr{Op: op, Rd: dst, Rs1: isa.SP, Imm: slotOff(a)})
					} else if as.RegOf[a] != dst {
						op := isa.MOV
						if vf.FloatReg[a] {
							op = isa.FMOV
						}
						emit(isa.Instr{Op: op, Rd: dst, Rs1: as.RegOf[a]})
					}
				}
				emit(isa.Instr{Op: isa.CALL, Sym: in.Sym, Imm: -1})
				if in.Rd != regalloc.NoVReg {
					ret := isa.Reg(isa.R0)
					op := isa.STR
					if vf.FloatReg[in.Rd] {
						ret, op = isa.F(0), isa.FSTR
					}
					if as.Spilled[in.Rd] {
						emit(isa.Instr{Op: op, Rs1: isa.SP, Rs2: ret, Imm: slotOff(in.Rd)})
					} else {
						mv := isa.MOV
						if vf.FloatReg[in.Rd] {
							mv = isa.FMOV
						}
						emit(isa.Instr{Op: mv, Rd: as.RegOf[in.Rd], Rs1: ret})
					}
				}

			case regalloc.KRet:
				if in.Rs1 != regalloc.NoVReg {
					ret := isa.Reg(isa.R0)
					if vf.FloatReg[in.Rs1] {
						ret = isa.F(0)
					}
					src := srcReg(in.Rs1, ret) // load straight into r0/f0
					if src != ret {
						op := isa.MOV
						if vf.FloatReg[in.Rs1] {
							op = isa.FMOV
						}
						emit(isa.Instr{Op: op, Rd: ret, Rs1: src})
					}
				}
				epilogue()

			case regalloc.KNormal:
				if err := expandNormal(in, b, vf, as, emit, srcReg, dstReg, finishDst, scratch1, scratch2, &fixups, &code); err != nil {
					return nil, 0, err
				}

			default:
				return nil, 0, fmt.Errorf("codegen: unknown vinstr kind %d", in.Kind)
			}
		}
	}

	for _, fx := range fixups {
		code[fx.at].Imm = int64(blockStart[fx.target])
	}
	return code, marks, nil
}

// paramMove is one leg of the entry parallel move from argument registers
// to allocated homes.
type paramMove struct {
	src    isa.Reg
	dst    isa.Reg
	toSlot bool
	slot   int64
	float  bool
}

// emitParallelParamMoves emits the moves so that no source is clobbered
// before it is read: slot stores first (they clobber nothing), then
// register moves in dependency order, breaking cycles through the scratch
// registers (r12/f31).
func emitParallelParamMoves(moves []paramMove, emit func(isa.Instr)) {
	var regMoves []paramMove
	for _, mv := range moves {
		if mv.toSlot {
			op := isa.STR
			if mv.float {
				op = isa.FSTR
			}
			emit(isa.Instr{Op: op, Rs1: isa.SP, Rs2: mv.src, Imm: mv.slot})
			continue
		}
		if mv.dst != mv.src {
			regMoves = append(regMoves, mv)
		}
	}
	for len(regMoves) > 0 {
		emitted := false
		for i, mv := range regMoves {
			blocked := false
			for j, other := range regMoves {
				if j != i && other.src == mv.dst {
					blocked = true
					break
				}
			}
			if !blocked {
				op := isa.MOV
				if mv.float {
					op = isa.FMOV
				}
				emit(isa.Instr{Op: op, Rd: mv.dst, Rs1: mv.src})
				regMoves = append(regMoves[:i], regMoves[i+1:]...)
				emitted = true
				break
			}
		}
		if !emitted {
			// Cycle: rotate one source through scratch.
			mv := regMoves[0]
			scratch := isa.R12
			op := isa.MOV
			if mv.float {
				scratch, op = isa.F(31), isa.FMOV
			}
			emit(isa.Instr{Op: op, Rd: scratch, Rs1: mv.src})
			regMoves[0].src = scratch
		}
	}
}

// argRegFor computes the physical register of the Imm'th parameter using
// per-type positions (the i'th integer parameter in r_i, the j'th float
// parameter in f_j).
func argRegFor(vf *regalloc.VFunc, index int64) isa.Reg {
	intIdx, fltIdx := 0, 0
	for i, p := range vf.Params {
		isF := vf.FloatReg[p]
		if int64(i) == index {
			if isF {
				return isa.F(fltIdx)
			}
			return isa.Reg(intIdx)
		}
		if isF {
			fltIdx++
		} else {
			intIdx++
		}
	}
	panic("codegen: parameter index out of range")
}

// expandNormal lowers a plain operation with spill fills around it.
func expandNormal(in *regalloc.VInstr, curBlock int, vf *regalloc.VFunc, as *regalloc.Assignment,
	emit func(isa.Instr), srcReg func(regalloc.VReg, isa.Reg) isa.Reg,
	dstReg func(regalloc.VReg, isa.Reg) isa.Reg, finishDst func(regalloc.VReg),
	scratch1, scratch2 func(regalloc.VReg) isa.Reg,
	fixups *[]fixup, code *[]isa.Instr) error {

	addFixup := func(target int) {
		*fixups = append(*fixups, fixup{len(*code) - 1, target})
	}

	switch in.Op {
	case isa.B:
		if in.Target == curBlock+1 {
			return nil // fallthrough
		}
		emit(isa.Instr{Op: isa.B})
		addFixup(in.Target)
	case isa.CBNZ:
		cond := srcReg(in.Rs1, isa.R11)
		switch {
		case in.Target2 == curBlock+1: // else falls through
			emit(isa.Instr{Op: isa.CBNZ, Rs1: cond})
			addFixup(in.Target)
		case in.Target == curBlock+1: // then falls through
			emit(isa.Instr{Op: isa.CBZ, Rs1: cond})
			addFixup(in.Target2)
		default:
			emit(isa.Instr{Op: isa.CBNZ, Rs1: cond})
			addFixup(in.Target)
			emit(isa.Instr{Op: isa.B})
			addFixup(in.Target2)
		}
	case isa.STR, isa.FSTR:
		base := srcReg(in.Rs1, isa.R11)
		val := srcReg(in.Rs2, scratch2(in.Rs2))
		emit(isa.Instr{Op: in.Op, Rs1: base, Rs2: val, Imm: in.Imm})
	case isa.LDR, isa.FLDR:
		base := srcReg(in.Rs1, isa.R11)
		rd := dstReg(in.Rd, scratch1(in.Rd))
		emit(isa.Instr{Op: in.Op, Rd: rd, Rs1: base, Imm: in.Imm})
		finishDst(in.Rd)
	case isa.MOVI, isa.FMOVI:
		rd := dstReg(in.Rd, scratch1(in.Rd))
		emit(isa.Instr{Op: in.Op, Rd: rd, Imm: in.Imm, FImm: in.FImm})
		finishDst(in.Rd)
	default:
		// Unary and binary ALU ops (including MOV/FMOV/ITOF/FTOI and the
		// compare-and-set family).
		var rs1, rs2 isa.Reg
		if in.Rs1 != regalloc.NoVReg {
			rs1 = srcReg(in.Rs1, scratch1(in.Rs1))
		}
		if in.Rs2 != regalloc.NoVReg {
			rs2 = srcReg(in.Rs2, scratch2(in.Rs2))
		}
		rd := dstReg(in.Rd, scratch1(in.Rd))
		emit(isa.Instr{Op: in.Op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: in.Imm})
		finishDst(in.Rd)
	}
	return nil
}
